/** @file
 * Exhaustive tests of the TO-MSI transition function against the paper's
 * Figure 3 / Table 1.
 */

#include <gtest/gtest.h>

#include "coherence/protocol.hh"

namespace rc
{
namespace
{

ProtoResult
step(LlcState s, ProtoEvent e, bool owner = false, bool selective = true)
{
    return protocolTransition(ProtoInput{s, e, owner, selective});
}

// ---------------------------------------------------------------------
// Figure 3: the dash-dotted arrows (tag-only -> tag+data) are the reuse
// detections; the dashed DataRepl arrows return to tag-only.
// ---------------------------------------------------------------------

TEST(ToMsi, MissAllocatesTagOnly)
{
    const auto r = step(LlcState::I, ProtoEvent::GETS);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::TO);
    EXPECT_TRUE(r.actions & ActAllocTag);
    EXPECT_TRUE(r.actions & ActFetchMem);
    EXPECT_TRUE(r.actions & ActFillPrivate);
    EXPECT_FALSE(r.actions & ActAllocData) << "a miss is not a reuse";
}

TEST(ToMsi, WriteMissAllocatesTagOnlyWithOwnership)
{
    const auto r = step(LlcState::I, ProtoEvent::GETX);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::TO);
    EXPECT_TRUE(r.actions & ActSetOwner);
    EXPECT_FALSE(r.actions & ActAllocData);
}

TEST(ToMsi, ReuseDetectionAllocatesData)
{
    // Paper Section 3: "On a hit in the tag array with no associated
    // data, a reuse is detected.  Thus, the line is read again from main
    // memory and loaded in the private cache and SLLC data array at the
    // same time."
    const auto r = step(LlcState::TO, ProtoEvent::GETS);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::S);
    EXPECT_TRUE(r.actions & ActAllocData);
    EXPECT_TRUE(r.actions & ActFetchMem) << "the double-fetch cost";
    EXPECT_TRUE(r.actions & ActFillPrivate);
}

TEST(ToMsi, ReuseDetectionOnWrite)
{
    const auto r = step(LlcState::TO, ProtoEvent::GETX);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::S);
    EXPECT_TRUE(r.actions & ActAllocData);
    EXPECT_TRUE(r.actions & ActInvSharers);
    EXPECT_TRUE(r.actions & ActSetOwner);
}

TEST(ToMsi, ReuseWithOwnerFetchesFromOwnerNotMemory)
{
    const auto r = step(LlcState::TO, ProtoEvent::GETS, true);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::M) << "owner data is dirty w.r.t. memory";
    EXPECT_TRUE(r.actions & ActFetchOwner);
    EXPECT_TRUE(r.actions & ActAllocData);
    EXPECT_FALSE(r.actions & ActFetchMem);
    EXPECT_TRUE(r.actions & ActClearOwner);
}

TEST(ToMsi, DataReplKeepsTag)
{
    // "When a line is evicted from the data array, its tag remains in
    // the tag array."
    const auto clean = step(LlcState::S, ProtoEvent::DataRepl);
    ASSERT_TRUE(clean.legal);
    EXPECT_EQ(clean.next, LlcState::TO);
    EXPECT_FALSE(clean.actions & ActWriteMemData) << "clean: no writeback";

    const auto dirty = step(LlcState::M, ProtoEvent::DataRepl);
    ASSERT_TRUE(dirty.legal);
    EXPECT_EQ(dirty.next, LlcState::TO);
    EXPECT_TRUE(dirty.actions & ActWriteMemData);
}

TEST(ToMsi, DataReplWithOwnerSkipsWriteback)
{
    // The owner's private copy is the only valid one; the stale SLLC
    // copy can be dropped silently.
    const auto r = step(LlcState::M, ProtoEvent::DataRepl, true);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::TO);
    EXPECT_FALSE(r.actions & ActWriteMemData);
}

TEST(ToMsi, DataReplIllegalWithoutData)
{
    EXPECT_FALSE(step(LlcState::TO, ProtoEvent::DataRepl).legal);
    EXPECT_FALSE(step(LlcState::I, ProtoEvent::DataRepl).legal);
}

// ---------------------------------------------------------------------
// Hits in the tag+data states.
// ---------------------------------------------------------------------

TEST(ToMsi, SharedHitServesData)
{
    const auto r = step(LlcState::S, ProtoEvent::GETS);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::S);
    EXPECT_TRUE(r.actions & ActDataHit);
    EXPECT_FALSE(r.actions & ActFetchMem);
}

TEST(ToMsi, ModifiedHitStaysModified)
{
    const auto r = step(LlcState::M, ProtoEvent::GETS);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::M);
    EXPECT_TRUE(r.actions & ActDataHit);
}

TEST(ToMsi, WriteHitInvalidatesSharers)
{
    for (LlcState s : {LlcState::S, LlcState::M}) {
        const auto r = step(s, ProtoEvent::GETX);
        ASSERT_TRUE(r.legal) << toString(s);
        EXPECT_TRUE(r.actions & ActInvSharers);
        EXPECT_TRUE(r.actions & ActSetOwner);
        EXPECT_TRUE(r.actions & ActDataHit);
    }
}

TEST(ToMsi, InterventionAbsorbsDirtyData)
{
    const auto r = step(LlcState::S, ProtoEvent::GETS, true);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::M);
    EXPECT_TRUE(r.actions & ActFetchOwner);
    EXPECT_TRUE(r.actions & ActWriteLlcData);
    EXPECT_FALSE(r.actions & ActDataHit) << "the SLLC copy was stale";
}

TEST(ToMsi, UpgradeGrantsExclusivityWithoutData)
{
    for (LlcState s : {LlcState::TO, LlcState::S, LlcState::M}) {
        const auto r = step(s, ProtoEvent::UPG);
        ASSERT_TRUE(r.legal) << toString(s);
        EXPECT_EQ(r.next, s) << "UPG transfers no data";
        EXPECT_TRUE(r.actions & ActInvSharers);
        EXPECT_TRUE(r.actions & ActSetOwner);
        EXPECT_FALSE(r.actions & ActAllocData);
        EXPECT_FALSE(r.actions & ActFetchMem);
    }
}

// ---------------------------------------------------------------------
// Private evictions (PUTS / PUTX).
// ---------------------------------------------------------------------

TEST(ToMsi, PutsIsQuiet)
{
    for (LlcState s : {LlcState::TO, LlcState::S, LlcState::M}) {
        const auto r = step(s, ProtoEvent::PUTS);
        ASSERT_TRUE(r.legal) << toString(s);
        EXPECT_EQ(r.next, s);
        EXPECT_EQ(r.actions, 0u);
    }
}

TEST(ToMsi, PutxIntoDataArrayDirtiesIt)
{
    const auto r = step(LlcState::S, ProtoEvent::PUTX, true);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::M);
    EXPECT_TRUE(r.actions & ActWriteLlcData);
    EXPECT_TRUE(r.actions & ActClearOwner);
    EXPECT_FALSE(r.actions & ActWriteMemPut);
}

TEST(ToMsi, PutxIntoTagOnlyWritesThroughToMemory)
{
    // "An eviction is not a reuse": no data allocation, write to memory.
    const auto r = step(LlcState::TO, ProtoEvent::PUTX, true);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::TO);
    EXPECT_TRUE(r.actions & ActWriteMemPut);
    EXPECT_FALSE(r.actions & ActAllocData);
}

// ---------------------------------------------------------------------
// Tag replacement: "A tag replacement always finishes at I state".
// ---------------------------------------------------------------------

TEST(ToMsi, TagReplAlwaysReachesInvalid)
{
    for (LlcState s : {LlcState::TO, LlcState::S, LlcState::M}) {
        for (bool owner : {false, true}) {
            const auto r = step(s, ProtoEvent::TagRepl, owner);
            ASSERT_TRUE(r.legal) << toString(s) << " owner=" << owner;
            EXPECT_EQ(r.next, LlcState::I);
            EXPECT_TRUE(r.actions & ActRecallSharers);
        }
    }
}

TEST(ToMsi, TagReplWritesBackDirtyData)
{
    EXPECT_TRUE(step(LlcState::M, ProtoEvent::TagRepl).actions &
                ActWriteMemData);
    EXPECT_FALSE(step(LlcState::S, ProtoEvent::TagRepl).actions &
                 ActWriteMemData);
}

TEST(ToMsi, TagReplWithOwnerRetrievesDirtyCopy)
{
    for (LlcState s : {LlcState::TO, LlcState::S, LlcState::M}) {
        const auto r = step(s, ProtoEvent::TagRepl, true);
        EXPECT_TRUE(r.actions & ActFetchOwner) << toString(s);
        EXPECT_TRUE(r.actions & ActWriteMemPut) << toString(s);
    }
}

// ---------------------------------------------------------------------
// Prefetch-aware transitions (Section 6 extension).
// ---------------------------------------------------------------------

TEST(ToMsi, PrefetchTagOnlyHitIsNotAReuse)
{
    ProtoInput in{LlcState::TO, ProtoEvent::GETS, false, true, true};
    const auto r = protocolTransition(in);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::TO) << "no promotion to a data state";
    EXPECT_TRUE(r.actions & ActFetchMem);
    EXPECT_TRUE(r.actions & ActFillPrivate);
    EXPECT_FALSE(r.actions & ActAllocData);
}

TEST(ToMsi, PrefetchTagOnlyWithOwnerWritesThrough)
{
    ProtoInput in{LlcState::TO, ProtoEvent::GETS, true, true, true};
    const auto r = protocolTransition(in);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::TO);
    EXPECT_TRUE(r.actions & ActFetchOwner);
    EXPECT_TRUE(r.actions & ActWriteMemPut)
        << "the surrendered dirty data has no data-array home";
    EXPECT_FALSE(r.actions & ActAllocData);
}

TEST(ToMsi, PrefetchMissStillAllocatesTagOnly)
{
    ProtoInput in{LlcState::I, ProtoEvent::GETS, false, true, true};
    const auto r = protocolTransition(in);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::TO);
    EXPECT_TRUE(r.actions & ActAllocTag);
}

TEST(ToMsi, PrefetchDataHitServesNormally)
{
    for (LlcState st : {LlcState::S, LlcState::M}) {
        ProtoInput in{st, ProtoEvent::GETS, false, true, true};
        const auto r = protocolTransition(in);
        ASSERT_TRUE(r.legal) << toString(st);
        EXPECT_TRUE(r.actions & ActDataHit);
        EXPECT_EQ(r.next, st);
    }
}

// ---------------------------------------------------------------------
// Illegal events (inclusion makes them unreachable).
// ---------------------------------------------------------------------

TEST(ToMsi, InvalidStateRejectsPrivateEvents)
{
    for (ProtoEvent e : {ProtoEvent::UPG, ProtoEvent::PUTS,
                         ProtoEvent::PUTX, ProtoEvent::DataRepl,
                         ProtoEvent::TagRepl}) {
        EXPECT_FALSE(step(LlcState::I, e).legal) << toString(e);
    }
}

// ---------------------------------------------------------------------
// Conventional mode (selectiveAlloc == false).
// ---------------------------------------------------------------------

TEST(ConvMsi, MissAllocatesTagAndData)
{
    const auto r = step(LlcState::I, ProtoEvent::GETS, false, false);
    ASSERT_TRUE(r.legal);
    EXPECT_EQ(r.next, LlcState::S);
    EXPECT_TRUE(r.actions & ActAllocTag);
    EXPECT_TRUE(r.actions & ActAllocData);
}

TEST(ConvMsi, TagOnlyStateUnreachable)
{
    EXPECT_FALSE(step(LlcState::TO, ProtoEvent::GETS, false, false).legal);
}

// ---------------------------------------------------------------------
// Whole-machine sweep: every legal transition lands in a stable state
// and never both fetches memory and serves a data hit.
// ---------------------------------------------------------------------

TEST(ToMsi, SweepConsistency)
{
    for (LlcState s : {LlcState::I, LlcState::TO, LlcState::S, LlcState::M}) {
        for (ProtoEvent e : {ProtoEvent::GETS, ProtoEvent::GETX,
                             ProtoEvent::UPG, ProtoEvent::PUTS,
                             ProtoEvent::PUTX, ProtoEvent::DataRepl,
                             ProtoEvent::TagRepl}) {
            for (bool owner : {false, true}) {
                for (bool sel : {false, true}) {
                    const auto r = step(s, e, owner, sel);
                    if (!r.legal)
                        continue;
                    // No transition both hits the data array and fetches.
                    EXPECT_FALSE((r.actions & ActDataHit) &&
                                 (r.actions & ActFetchMem));
                    // FetchOwner requires an owner in context.
                    if (r.actions & ActFetchOwner)
                        EXPECT_TRUE(owner);
                    // Data allocation only into tag-bearing states.
                    if (r.actions & ActAllocData)
                        EXPECT_TRUE(llcHasData(r.next));
                    // Tag-only next state never claims data.
                    if (r.next == LlcState::TO || r.next == LlcState::I)
                        EXPECT_FALSE(r.actions & ActDataHit);
                }
            }
        }
    }
}

TEST(ToMsi, ActionsToStringReadable)
{
    EXPECT_EQ(actionsToString(0), "none");
    EXPECT_EQ(actionsToString(ActFetchMem | ActAllocData),
              "FetchMem|AllocData");
}

} // namespace
} // namespace rc
