/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace rc
{
namespace
{

TEST(StatSet, AddLookup)
{
    StatSet s("test");
    Counter &a = s.add("a", "first");
    Counter &b = s.add("b", "second");
    a = 5;
    b += 7;
    EXPECT_EQ(s.lookup("a"), 5u);
    EXPECT_EQ(s.lookup("b"), 7u);
    EXPECT_TRUE(s.has("a"));
    EXPECT_FALSE(s.has("c"));
}

TEST(StatSet, ReferencesStableAcrossGrowth)
{
    StatSet s("test");
    Counter &first = s.add("first", "");
    for (int i = 0; i < 100; ++i)
        s.add("x" + std::to_string(i), "");
    first = 42;
    EXPECT_EQ(s.lookup("first"), 42u);
}

TEST(StatSet, Reset)
{
    StatSet s("test");
    Counter &a = s.add("a", "");
    a = 9;
    s.reset();
    EXPECT_EQ(s.lookup("a"), 0u);
}

TEST(StatSet, DuplicateNamePanics)
{
    StatSet s("test");
    s.add("a", "");
    EXPECT_DEATH(s.add("a", ""), "duplicate stat");
}

TEST(StatSet, UnknownLookupPanics)
{
    StatSet s("test");
    EXPECT_DEATH(s.lookup("nope"), "unknown stat");
}

TEST(StatSet, DumpFormat)
{
    StatSet s("llc");
    s.add("hits", "cache hits") = 3;
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "llc.hits = 3  # cache hits\n");
}

TEST(Accum, Empty)
{
    Accum a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accum, Moments)
{
    Accum a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accum, Geomean)
{
    Accum a;
    a.add(1.0);
    a.add(4.0);
    EXPECT_NEAR(a.geomean(), 2.0, 1e-12);
}

TEST(Accum, Reset)
{
    Accum a;
    a.add(3.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Quartiles, Basic)
{
    // 1..9: min 1, Q1 3, median 5, Q3 7, max 9.
    std::vector<double> v{9, 1, 8, 2, 7, 3, 6, 4, 5};
    const Quartiles q = computeQuartiles(v);
    EXPECT_DOUBLE_EQ(q.min, 1.0);
    EXPECT_DOUBLE_EQ(q.q1, 3.0);
    EXPECT_DOUBLE_EQ(q.median, 5.0);
    EXPECT_DOUBLE_EQ(q.q3, 7.0);
    EXPECT_DOUBLE_EQ(q.max, 9.0);
}

TEST(Quartiles, SingleElement)
{
    const Quartiles q = computeQuartiles({4.2});
    EXPECT_DOUBLE_EQ(q.min, 4.2);
    EXPECT_DOUBLE_EQ(q.median, 4.2);
    EXPECT_DOUBLE_EQ(q.max, 4.2);
}

TEST(Quartiles, Empty)
{
    const Quartiles q = computeQuartiles({});
    EXPECT_DOUBLE_EQ(q.median, 0.0);
}

TEST(Quartiles, Interpolated)
{
    const Quartiles q = computeQuartiles({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(q.median, 2.5);
    EXPECT_DOUBLE_EQ(q.q1, 1.75);
    EXPECT_DOUBLE_EQ(q.q3, 3.25);
}

TEST(Quartiles, AllEqualCollapsesEveryCut)
{
    const Quartiles q =
        computeQuartiles({3.5, 3.5, 3.5, 3.5, 3.5, 3.5, 3.5});
    EXPECT_DOUBLE_EQ(q.min, 3.5);
    EXPECT_DOUBLE_EQ(q.q1, 3.5);
    EXPECT_DOUBLE_EQ(q.median, 3.5);
    EXPECT_DOUBLE_EQ(q.q3, 3.5);
    EXPECT_DOUBLE_EQ(q.max, 3.5);
}

TEST(Quartiles, TwoElements)
{
    const Quartiles q = computeQuartiles({1.0, 3.0});
    EXPECT_DOUBLE_EQ(q.min, 1.0);
    EXPECT_DOUBLE_EQ(q.median, 2.0);
    EXPECT_DOUBLE_EQ(q.max, 3.0);
}

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("llc.hits_42"), "llc.hits_42");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(StatSet, DumpJsonShape)
{
    StatSet s("llc");
    s.add("hits", "cache hits") = 3;
    s.add("mis\"ses", "escaping") = 1;
    std::ostringstream os;
    s.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"name\": \"llc\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"hits\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"mis\\\"ses\": 1"), std::string::npos) << json;
}

TEST(StatSet, DumpJsonEmptySetHasEmptyCounters)
{
    StatSet s("empty");
    std::ostringstream os;
    s.dumpJson(os);
    EXPECT_NE(os.str().find("\"counters\": {}"), std::string::npos)
        << os.str();
}

} // namespace
} // namespace rc
