/** @file Unit tests for histograms. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/histogram.hh"

namespace rc
{
namespace
{

TEST(Histogram, RecordAndBuckets)
{
    Histogram h(4);
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(3);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, Overflow)
{
    Histogram h(2);
    h.record(5);
    h.record(100);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.total(), 105u);
}

TEST(Histogram, MeanExactDespiteOverflow)
{
    Histogram h(2);
    h.record(10);
    h.record(20);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, Reset)
{
    Histogram h(4);
    h.record(1);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, Merge)
{
    Histogram a(4), b(4);
    a.record(1);
    b.record(1);
    b.record(7);
    a.merge(b);
    EXPECT_EQ(a.bucket(1), 2u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, MergeMismatchedCapacityPanics)
{
    Histogram a(4), b(8);
    EXPECT_DEATH(a.merge(b), "capacity mismatch");
}

TEST(Histogram, EmptyHistogramIsAllZero)
{
    Histogram h(4);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (std::size_t b = 0; b < 4; ++b)
        EXPECT_EQ(h.bucket(b), 0u);
}

TEST(Histogram, SingleSample)
{
    Histogram h(4);
    h.record(2);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, AllEqualSamplesLandInOneBucket)
{
    Histogram h(8);
    for (int i = 0; i < 100; ++i)
        h.record(5);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.bucket(5), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    for (std::size_t b = 0; b < 8; ++b) {
        if (b != 5)
            EXPECT_EQ(h.bucket(b), 0u) << "bucket " << b;
    }
}

TEST(Log2Histogram, EmptyIsAllZero)
{
    Log2Histogram h(4);
    EXPECT_EQ(h.count(), 0u);
    for (std::size_t b = 0; b < 4; ++b)
        EXPECT_EQ(h.bucket(b), 0u);
}

TEST(Log2Histogram, Buckets)
{
    Log2Histogram h(10);
    h.record(0); // bucket 0
    h.record(1); // bucket 0
    h.record(2); // bucket 1
    h.record(3); // bucket 1
    h.record(4); // bucket 2
    h.record(1023); // bucket 9
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.count(), 6u);
}

TEST(Log2Histogram, ClampsToLastBucket)
{
    Log2Histogram h(4);
    h.record(1ull << 40);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2Histogram, Dump)
{
    Log2Histogram h(4);
    h.record(2);
    std::ostringstream os;
    h.dump(os, "reuse");
    EXPECT_NE(os.str().find("reuse"), std::string::npos);
    EXPECT_NE(os.str().find("2^1: 1"), std::string::npos);
}

} // namespace
} // namespace rc
