/**
 * @file
 * Crash-isolation tests for the bench harness: a poisoned run in a
 * parallel sweep is retried once and quarantined while its siblings
 * complete with bit-identical statistics, the per-run outcomes land in
 * the BENCH_harness.json payload, and a process with quarantined runs
 * exits nonzero.
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hh"
#include "sim/system_config.hh"

namespace rc
{
namespace
{

bench::RunOptions
smokeOptions(std::uint32_t jobs)
{
    bench::RunOptions opt;
    opt.mixCount = 3;
    opt.scale = 8;
    opt.warmup = 20'000;
    opt.measure = 100'000;
    opt.seed = 42;
    opt.jobs = jobs;
    return opt;
}

void
expectIdentical(const bench::RunResult &a, const bench::RunResult &b)
{
    EXPECT_EQ(a.aggregateIpc, b.aggregateIpc);
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c)
        EXPECT_EQ(a.coreIpc[c], b.coreIpc[c]) << "core " << c;
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcMemFetches, b.llcMemFetches);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

/** Serial reference sweep with no checker and no faults. */
std::vector<bench::RunResult>
referenceSweep(const SystemConfig &sys, const std::vector<Mix> &mixes)
{
    auto opt = smokeOptions(1);
    std::vector<bench::RunResult> out(mixes.size());
    const auto outcomes =
        bench::forEachRun(mixes.size(), opt, [&](std::size_t i) {
            out[i] = bench::runMix(sys, mixes[i], opt);
        });
    for (const bench::RunOutcome &o : outcomes)
        EXPECT_EQ(o.status, bench::RunStatus::Ok);
    return out;
}

TEST(HarnessQuarantine, CheckIntervalLeavesCleanRunsUntouched)
{
    // Zero false positives and zero perturbation: enabling the checker
    // must neither throw nor change any statistic, on either LLC
    // organization.
    bench::setExitOnQuarantine(false);
    const auto mixes = makeMixes(2, 8, 7);
    for (const bool reuse : {false, true}) {
        const SystemConfig sys =
            reuse ? reuseSystem(4.0, 1.0, 0, 8) : baselineSystem(8);
        const auto ref = referenceSweep(sys, mixes);

        auto checked = smokeOptions(2);
        checked.checkInterval = 10'000;
        std::vector<bench::RunResult> got(mixes.size());
        const auto outcomes =
            bench::forEachRun(mixes.size(), checked, [&](std::size_t i) {
                got[i] = bench::runMix(sys, mixes[i], checked);
            });
        for (const bench::RunOutcome &o : outcomes) {
            EXPECT_EQ(o.status, bench::RunStatus::Ok) << o.error;
            EXPECT_EQ(o.attempts, 1u);
        }
        for (std::size_t i = 0; i < mixes.size(); ++i)
            expectIdentical(got[i], ref[i]);
    }
}

TEST(HarnessQuarantine, PoisonedRunIsQuarantinedWhileSiblingsComplete)
{
    bench::setExitOnQuarantine(false);
    const SystemConfig sys = reuseSystem(4.0, 1.0, 0, 8);
    const auto mixes = makeMixes(3, 8, 7);
    const auto ref = referenceSweep(sys, mixes);

    auto poisoned = smokeOptions(2);
    poisoned.checkInterval = 10'000;
    poisoned.injectFault = "dir-drop";
    poisoned.injectRun = 1;
    std::vector<bench::RunResult> got(mixes.size());
    const auto outcomes =
        bench::forEachRun(mixes.size(), poisoned, [&](std::size_t i) {
            got[i] = bench::runMix(sys, mixes[i], poisoned);
        });

    ASSERT_EQ(outcomes.size(), mixes.size());
    EXPECT_EQ(outcomes[0].status, bench::RunStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(outcomes[2].status, bench::RunStatus::Ok);
    EXPECT_EQ(outcomes[2].attempts, 1u);

    // The poisoned run: retried once, then quarantined with the
    // integrity diagnosis attached.
    EXPECT_EQ(outcomes[1].index, 1u);
    EXPECT_EQ(outcomes[1].status, bench::RunStatus::Quarantined);
    EXPECT_EQ(outcomes[1].attempts, 2u);
    EXPECT_GT(outcomes[1].wallSeconds, 0.0);
    EXPECT_NE(outcomes[1].error.find("[integrity]"), std::string::npos)
        << outcomes[1].error;

    // Siblings are bit-identical to the clean serial sweep; the
    // quarantined slot keeps its default values.
    expectIdentical(got[0], ref[0]);
    expectIdentical(got[2], ref[2]);
    EXPECT_EQ(got[1].aggregateIpc, 0.0);
    EXPECT_EQ(got[1].llcAccesses, 0u);

    EXPECT_GE(bench::quarantinedRunsTotal(), 1u);
}

TEST(HarnessQuarantine, TransientFaultIsRetriedAndRecovers)
{
    // injectOnRetry = false models a transient corruption: the retry
    // runs clean and must reproduce the reference result exactly.
    bench::setExitOnQuarantine(false);
    const SystemConfig sys = baselineSystem(8);
    const auto mixes = makeMixes(2, 8, 7);
    const auto ref = referenceSweep(sys, mixes);

    auto poisoned = smokeOptions(2);
    poisoned.checkInterval = 10'000;
    poisoned.injectFault = "dir-ghost";
    poisoned.injectRun = 0;
    poisoned.injectOnRetry = false;
    std::vector<bench::RunResult> got(mixes.size());
    const auto outcomes =
        bench::forEachRun(mixes.size(), poisoned, [&](std::size_t i) {
            got[i] = bench::runMix(sys, mixes[i], poisoned);
        });

    EXPECT_EQ(outcomes[0].status, bench::RunStatus::Retried);
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_TRUE(outcomes[0].error.empty());
    EXPECT_EQ(outcomes[1].status, bench::RunStatus::Ok);
    for (std::size_t i = 0; i < mixes.size(); ++i)
        expectIdentical(got[i], ref[i]);
}

TEST(HarnessQuarantine, PerfRecordJsonReportsPerRunOutcomes)
{
    bench::setExitOnQuarantine(false);
    const SystemConfig sys = baselineSystem(8);
    const auto mixes = makeMixes(2, 8, 7);
    auto poisoned = smokeOptions(1);
    poisoned.checkInterval = 10'000;
    poisoned.injectFault = "mshr-leak";
    poisoned.injectRun = 1;
    std::vector<bench::RunResult> got(mixes.size());
    bench::forEachRun(mixes.size(), poisoned, [&](std::size_t i) {
        got[i] = bench::runMix(sys, mixes[i], poisoned);
    });

    const std::string json = bench::perfRecordJson();
    for (const char *needle :
         {"\"runs_ok\"", "\"runs_retried\"", "\"runs_quarantined\"",
          "\"runs\": [", "\"status\": \"quarantined\"",
          "\"attempts\": 2", "\"wall_seconds\"", "\"error\": \"",
          "integrity"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << needle << " missing from:\n" << json;
    }
}

TEST(HarnessQuarantine, ParseArgsReadsCheckIntervalAndInject)
{
    char arg0[] = "bench";
    char arg1[] = "--check-interval=5000";
    char arg2[] = "--inject=mshr-leak@2";
    char *argv[] = {arg0, arg1, arg2, nullptr};
    const auto opt = bench::parseArgs(3, argv);
    EXPECT_EQ(opt.checkInterval, 5000u);
    EXPECT_EQ(opt.injectFault, "mshr-leak");
    EXPECT_EQ(opt.injectRun, 2u);

    char arg3[] = "--inject=tag-state";
    char *argv2[] = {arg0, arg3, nullptr};
    const auto opt2 = bench::parseArgs(2, argv2);
    EXPECT_EQ(opt2.injectFault, "tag-state");
    EXPECT_EQ(opt2.injectRun, 0u);
}

TEST(HarnessQuarantineDeathTest, UnknownFaultClassIsFatal)
{
    char arg0[] = "bench";
    char arg1[] = "--inject=flux-capacitor";
    char *argv[] = {arg0, arg1, nullptr};
    EXPECT_EXIT(bench::parseArgs(2, argv),
                ::testing::ExitedWithCode(1), "unknown fault class");
}

/** Poisoned serial sweep behind parseArgs, ending in a clean exit(0)
 *  that the atexit quarantine guard must turn into exit(1). */
[[noreturn]] void
poisonedSweepThenCleanExit()
{
    bench::setExitOnQuarantine(true);
    char arg0[] = "bench";
    char arg1[] = "--jobs=1";
    char *argv[] = {arg0, arg1, nullptr};
    bench::parseArgs(2, argv);
    auto opt = smokeOptions(1);
    opt.checkInterval = 10'000;
    opt.injectFault = "dir-drop";
    opt.injectRun = 0;
    const SystemConfig sys = baselineSystem(8);
    const auto mixes = makeMixes(1, 8, 7);
    std::vector<bench::RunResult> got(mixes.size());
    bench::forEachRun(mixes.size(), opt, [&](std::size_t i) {
        got[i] = bench::runMix(sys, mixes[i], opt);
    });
    std::exit(0);
}

TEST(HarnessQuarantineDeathTest, ProcessExitsNonzeroWhenQuarantineRemains)
{
    // End to end: parseArgs installs the guard, a poisoned serial sweep
    // quarantines a run, and the process turns a clean exit(0) into
    // exit(1) after writing the perf record.
    EXPECT_EXIT(poisonedSweepThenCleanExit(),
                ::testing::ExitedWithCode(1), "stayed quarantined");
}

} // namespace
} // namespace rc
