/** @file
 * Randomized property tests: throw long random event streams at the
 * cache models and check structural invariants after every step.
 */

#include <gtest/gtest.h>

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "cache/conventional_llc.hh"
#include "ncid/ncid_cache.hh"
#include "reuse/reuse_cache.hh"

namespace rc
{
namespace
{

/**
 * Reference model of the private side: tracks which cores hold which
 * lines (and dirtiness) purely from the request/recall traffic, and
 * verifies the SLLC directory against it.
 */
class PrivateMirror : public RecallHandler
{
  public:
    bool
    recall(Addr line, std::uint32_t mask) override
    {
        bool dirty = false;
        for (CoreId c = 0; c < 32; ++c) {
            if (!(mask & (1u << c)))
                continue;
            const auto it = held[c].find(line);
            if (it != held[c].end()) {
                dirty |= it->second;
                held[c].erase(it);
            }
        }
        return dirty;
    }

    bool
    downgrade(Addr line, std::uint32_t mask) override
    {
        bool dirty = false;
        for (CoreId c = 0; c < 32; ++c) {
            if (!(mask & (1u << c)))
                continue;
            const auto it = held[c].find(line);
            if (it != held[c].end()) {
                dirty |= it->second;
                it->second = false;
            }
        }
        return dirty;
    }

    void grant(Addr line, CoreId core, bool dirty)
    {
        held[core][line] = dirty;
    }

    void drop(Addr line, CoreId core) { held[core].erase(line); }

    bool holds(CoreId core, Addr line) const
    {
        return held[core].count(line) != 0;
    }

    bool isDirty(CoreId core, Addr line) const
    {
        const auto it = held[core].find(line);
        return it != held[core].end() && it->second;
    }

    std::unordered_map<Addr, bool> held[32];
};

/** Drive an Sllc with random traffic from a mirrored private model. */
template <typename LlcT>
void
fuzz(LlcT &llc, PrivateMirror &mirror, std::uint32_t cores,
     std::uint64_t lines, std::uint64_t steps, std::uint64_t seed,
     const std::function<void()> &check)
{
    Rng rng(seed);
    Cycle now = 0;
    for (std::uint64_t i = 0; i < steps; ++i) {
        now += rng.below(20);
        const CoreId core = static_cast<CoreId>(rng.below(cores));
        const Addr line = rng.below(lines) * lineBytes;
        const std::uint64_t action = rng.below(10);
        if (action < 7) {
            // Demand access.
            const bool held_line = mirror.holds(core, line);
            ProtoEvent ev;
            if (held_line) {
                // A private hit would not reach the SLLC except as an
                // upgrade of a clean copy.
                if (mirror.isDirty(core, line))
                    continue;
                ev = ProtoEvent::UPG;
            } else {
                ev = rng.chance(0.3) ? ProtoEvent::GETX : ProtoEvent::GETS;
            }
            llc.request(LlcRequest{line, core, ev, now});
            mirror.grant(line, core, ev != ProtoEvent::GETS);
        } else {
            // Private eviction notification (if the core holds it).
            if (!mirror.holds(core, line))
                continue;
            const bool dirty = mirror.isDirty(core, line);
            llc.evictNotify(line, core, dirty, now);
            mirror.drop(line, core);
        }
        if (i % 64 == 0)
            check();
    }
}

TEST(Property, ReuseCachePointerInvariantsUnderFuzz)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg = ReuseCacheConfig::standard(64 * 1024,
                                                      8 * 1024, 0);
    ReuseCache llc(cfg, mem);
    PrivateMirror mirror;
    llc.setRecallHandler(&mirror);
    fuzz(llc, mirror, 8, 4096, 60'000, 11,
         [&llc] { llc.checkInvariants(); });
    llc.checkInvariants();
}

TEST(Property, ReuseCacheSetAssociativeDataFuzz)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg = ReuseCacheConfig::standard(64 * 1024,
                                                      16 * 1024, 16);
    ReuseCache llc(cfg, mem);
    PrivateMirror mirror;
    llc.setRecallHandler(&mirror);
    fuzz(llc, mirror, 8, 4096, 60'000, 13,
         [&llc] { llc.checkInvariants(); });
}

TEST(Property, ReuseCacheDirectoryMatchesMirror)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg = ReuseCacheConfig::standard(32 * 1024,
                                                      4 * 1024, 0);
    ReuseCache llc(cfg, mem);
    PrivateMirror mirror;
    llc.setRecallHandler(&mirror);
    const std::uint64_t lines = 1024;
    fuzz(llc, mirror, 4, lines, 60'000, 17, [&] {
        // Inclusion: every privately held line has an SLLC tag, and the
        // directory presence matches the mirror exactly.
        for (CoreId c = 0; c < 4; ++c) {
            for (const auto &[line, dirty] : mirror.held[c]) {
                const DirectoryEntry *d = llc.dirOf(line);
                ASSERT_NE(d, nullptr)
                    << "private line without an SLLC tag (inclusion)";
                EXPECT_TRUE(d->isSharer(c));
            }
        }
        for (std::uint64_t l = 0; l < lines; ++l) {
            const Addr line = l * lineBytes;
            if (const DirectoryEntry *d = llc.dirOf(line)) {
                for (CoreId c = 0; c < 4; ++c) {
                    EXPECT_EQ(d->isSharer(c), mirror.holds(c, line))
                        << "directory drift on line " << l;
                }
            }
        }
    });
}

TEST(Property, ConventionalDirectoryMatchesMirror)
{
    MemCtrl mem(MemCtrlConfig{});
    ConvLlcConfig cfg;
    cfg.capacityBytes = 32 * 1024;
    cfg.numCores = 4;
    ConventionalLlc llc(cfg, mem);
    PrivateMirror mirror;
    llc.setRecallHandler(&mirror);
    const std::uint64_t lines = 1024;
    fuzz(llc, mirror, 4, lines, 60'000, 19, [&] {
        for (CoreId c = 0; c < 4; ++c) {
            for (const auto &[line, dirty] : mirror.held[c]) {
                const DirectoryEntry *d = llc.dirOf(line);
                ASSERT_NE(d, nullptr);
                EXPECT_TRUE(d->isSharer(c));
            }
        }
    });
}

TEST(Property, NcidSurvivesFuzz)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidConfig cfg;
    cfg.tagEquivBytes = 64 * 1024;
    cfg.dataBytes = 8 * 1024;
    cfg.numCores = 8;
    NcidCache llc(cfg, mem);
    PrivateMirror mirror;
    llc.setRecallHandler(&mirror);
    fuzz(llc, mirror, 8, 4096, 60'000, 23, [] {});
}

TEST(Property, ReuseDataNeverExceedsTagsWithData)
{
    // Fuzz with a stats cross-check: dataAllocs - dataEvictions must
    // equal the data array's resident count.
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg = ReuseCacheConfig::standard(64 * 1024,
                                                      8 * 1024, 0);
    ReuseCache llc(cfg, mem);
    PrivateMirror mirror;
    llc.setRecallHandler(&mirror);
    fuzz(llc, mirror, 8, 2048, 40'000, 29, [&llc] {
        // Data residency can only shrink via DataRepl or tag evictions
        // freeing entries, so resident <= allocs always, and the
        // resident count can never exceed the array capacity.
        const StatSet &s = llc.stats();
        EXPECT_LE(llc.dataArray().residentCount(),
                  s.lookup("dataAllocs"));
        EXPECT_LE(llc.dataArray().residentCount(),
                  llc.dataArray().geometry().numLines());
    });
}

TEST(Property, ReuseGenerationsWithDataNeverExceedAllocs)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg = ReuseCacheConfig::standard(32 * 1024,
                                                      4 * 1024, 0);
    ReuseCache llc(cfg, mem);
    PrivateMirror mirror;
    llc.setRecallHandler(&mirror);
    fuzz(llc, mirror, 8, 1024, 40'000, 31, [&llc] {
        const StatSet &s = llc.stats();
        EXPECT_LE(s.lookup("generationsWithData"), s.lookup("tagAllocs"));
        EXPECT_LE(s.lookup("generationsWithData"), s.lookup("dataAllocs"));
        const double f = llc.fractionNeverEnteredData();
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
    });
}

} // namespace
} // namespace rc
