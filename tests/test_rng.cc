/** @file Unit tests for common/rng.hh (determinism and distributions). */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace rc
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng z(0);
    EXPECT_NE(z.next(), 0u); // xorshift would be stuck at 0 otherwise
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(9);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng r(11);
    constexpr int buckets = 16;
    constexpr int draws = 160000;
    int count[buckets] = {};
    for (int i = 0; i < draws; ++i)
        ++count[r.below(buckets)];
    for (int c : count) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        lo |= v == 5;
        hi |= v == 8;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, GeometricMean)
{
    Rng r(19);
    double sum = 0.0;
    constexpr int draws = 20000;
    for (int i = 0; i < draws; ++i)
        sum += static_cast<double>(r.geometric(4.0));
    EXPECT_NEAR(sum / draws, 4.0, 0.3);
}

TEST(Rng, GeometricMinimumOne)
{
    Rng r(21);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.geometric(0.5), 1u);
}

TEST(SplitMix, DistinctStreams)
{
    SplitMix64 a(42);
    const auto x = a.next();
    const auto y = a.next();
    EXPECT_NE(x, y);
    SplitMix64 b(42);
    EXPECT_EQ(b.next(), x);
}

} // namespace
} // namespace rc
