/**
 * @file
 * Logging-hygiene tests: the WarnThrottle budget/suppression counters,
 * throttled warnings going quiet after their budget, and the once-only
 * macro staying once-only across a hot loop.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"

namespace rc
{
namespace
{

/** Silence stderr for the duration of a test body. */
class QuietScope
{
  public:
    QuietScope() : was(quiet()) { setQuiet(true); }
    ~QuietScope() { setQuiet(was); }

  private:
    bool was;
};

TEST(WarnThrottleBudget, FirstNReportsThenSuppresses)
{
    WarnThrottle throttle(3);
    EXPECT_EQ(throttle.maxReports(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(throttle.shouldReport()) << "call " << i;
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(throttle.shouldReport());
    EXPECT_EQ(throttle.suppressed(), 5u);

    throttle.reset();
    EXPECT_TRUE(throttle.shouldReport());
    EXPECT_EQ(throttle.suppressed(), 0u);
}

TEST(WarnThrottleBudget, ConcurrentClaimsNeverOverReport)
{
    WarnThrottle throttle(10);
    std::atomic<std::uint64_t> reported{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                if (throttle.shouldReport())
                    reported.fetch_add(1);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(reported.load(), 10u);
    EXPECT_EQ(throttle.suppressed(), 8u * 1000u - 10u);
}

TEST(WarnThrottleBudget, ThrottledWarnCountsEveryCall)
{
    QuietScope q;
    WarnThrottle throttle(2);
    for (int i = 0; i < 7; ++i)
        warnThrottled(throttle, "complaint %d", i);
    EXPECT_EQ(throttle.suppressed(), 5u);
}

TEST(WarnOnce, FiresOncePerSiteAcrossALoop)
{
    QuietScope q;
    // The macro keeps a function-local static throttle; the only
    // observable from outside is that nothing crashes and the loop
    // stays cheap, so drive it hard and through two distinct sites.
    for (int i = 0; i < 10'000; ++i) {
        RC_WARN_ONCE("site one fired (i=%d)", i);
        RC_WARN_ONCE("site two fired (i=%d)", i);
    }
    SUCCEED();
}

} // namespace
} // namespace rc
