/**
 * @file
 * Determinism and flag-validation tests for the parallel bench harness:
 * the same seed must produce bit-identical RunResults whether the
 * (SystemConfig × Mix) batch runs serially (--jobs=1) or on a pool
 * (--jobs=4), and --jobs=0 must be rejected.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hh"
#include "sim/system_config.hh"

namespace rc
{
namespace
{

/** Short windows keep the smoke runs fast; still long enough that the
 *  caches see real traffic. */
bench::RunOptions
smokeOptions(std::uint32_t jobs)
{
    bench::RunOptions opt;
    opt.mixCount = 2;
    opt.scale = 8;
    opt.warmup = 20'000;
    opt.measure = 100'000;
    opt.seed = 42;
    opt.jobs = jobs;
    return opt;
}

void
expectIdentical(const bench::RunResult &a, const bench::RunResult &b)
{
    EXPECT_EQ(a.aggregateIpc, b.aggregateIpc);
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c)
        EXPECT_EQ(a.coreIpc[c], b.coreIpc[c]) << "core " << c;
    ASSERT_EQ(a.mpki.size(), b.mpki.size());
    for (std::size_t c = 0; c < a.mpki.size(); ++c) {
        EXPECT_EQ(a.mpki[c].l1, b.mpki[c].l1) << "core " << c;
        EXPECT_EQ(a.mpki[c].l2, b.mpki[c].l2) << "core " << c;
        EXPECT_EQ(a.mpki[c].llc, b.mpki[c].llc) << "core " << c;
    }
    EXPECT_EQ(a.fracNeverEnteredData, b.fracNeverEnteredData);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcMemFetches, b.llcMemFetches);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST(HarnessParallel, BaselineRunsBitIdenticalAcrossJobCounts)
{
    const auto serial = smokeOptions(1);
    const auto parallel = smokeOptions(4);
    const auto mixes = makeMixes(serial.mixCount, 8, 7);

    const auto a = bench::runBaselineOverMixes(baselineSystem(serial.scale),
                                               mixes, serial);
    const auto b = bench::runBaselineOverMixes(
        baselineSystem(parallel.scale), mixes, parallel);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

TEST(HarnessParallel, SpeedupSummaryBitIdenticalAcrossJobCounts)
{
    const auto serial = smokeOptions(1);
    const auto parallel = smokeOptions(4);
    const auto mixes = makeMixes(serial.mixCount, 8, 7);
    const auto sys = reuseSystem(4.0, 1.0, 0, serial.scale);

    const auto a =
        bench::compareOverMixes(sys, baselineSystem(serial.scale), mixes,
                                serial);
    const auto b =
        bench::compareOverMixes(sys, baselineSystem(parallel.scale),
                                mixes, parallel);

    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    ASSERT_EQ(a.perMix.size(), b.perMix.size());
    for (std::size_t i = 0; i < a.perMix.size(); ++i)
        EXPECT_EQ(a.perMix[i], b.perMix[i]) << "mix " << i;
}

TEST(HarnessParallel, SummaryStatsAreOnePassConsistent)
{
    const auto opt = smokeOptions(2);
    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto s = bench::compareOverMixes(
        reuseSystem(4.0, 1.0, 0, opt.scale), baselineSystem(opt.scale),
        mixes, opt);
    ASSERT_EQ(s.perMix.size(), mixes.size());
    EXPECT_LE(s.min, s.mean);
    EXPECT_LE(s.mean, s.max);
    for (double v : s.perMix) {
        EXPECT_GE(v, s.min);
        EXPECT_LE(v, s.max);
        EXPECT_GT(v, 0.0);
    }
}

TEST(HarnessParallel, SpeedupRatioGuardsZeroBaseline)
{
    EXPECT_EQ(bench::speedupRatio(1.5, 0.0), 0.0);
    EXPECT_EQ(bench::speedupRatio(1.5, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(bench::speedupRatio(3.0, 2.0), 1.5);
}

TEST(HarnessParallel, EffectiveJobsResolvesAutoAndExplicit)
{
    bench::RunOptions opt;
    opt.jobs = 0;
    EXPECT_GE(bench::effectiveJobs(opt), 1u);
    opt.jobs = 3;
    EXPECT_EQ(bench::effectiveJobs(opt), 3u);
}

TEST(HarnessParallelDeathTest, RejectsJobsZero)
{
    char arg0[] = "bench";
    char arg1[] = "--jobs=0";
    char *argv[] = {arg0, arg1, nullptr};
    EXPECT_EXIT(bench::parseArgs(2, argv),
                ::testing::ExitedWithCode(1), "--jobs must be >= 1");
}

TEST(HarnessParallelDeathTest, UnknownFlagPrintsUsage)
{
    char arg0[] = "bench";
    char arg1[] = "--bogus";
    char *argv[] = {arg0, arg1, nullptr};
    EXPECT_EXIT(bench::parseArgs(2, argv),
                ::testing::ExitedWithCode(1), "--jobs=N");
}

TEST(HarnessParallel, ParseArgsReadsJobsFlag)
{
    char arg0[] = "bench";
    char arg1[] = "--jobs=4";
    char arg2[] = "--mixes=3";
    char *argv[] = {arg0, arg1, arg2, nullptr};
    const auto opt = bench::parseArgs(3, argv);
    EXPECT_EQ(opt.jobs, 4u);
    EXPECT_EQ(opt.mixCount, 3u);
}

TEST(HarnessParallel, UsageStringDocumentsEveryFlag)
{
    const char *usage = bench::usageString();
    for (const char *flag : {"--mixes=", "--scale=", "--warmup=",
                             "--measure=", "--seed=", "--jobs=",
                             "--check-interval=", "--inject=",
                             "--full", "--help"}) {
        EXPECT_NE(std::strstr(usage, flag), nullptr) << flag;
    }
}

} // namespace
} // namespace rc
