/** @file Unit tests for cache geometry. */

#include <gtest/gtest.h>

#include "cache/geometry.hh"

namespace rc
{
namespace
{

TEST(Geometry, BaselineLlc)
{
    // Paper Table 4: 8 MB, 16-way, 64 B lines -> 131072 lines, 8192 sets.
    const auto g = CacheGeometry::fromBytes(8ull << 20, 16);
    EXPECT_EQ(g.numLines(), 131072u);
    EXPECT_EQ(g.numSets(), 8192u);
    EXPECT_EQ(g.numWays(), 16u);
    EXPECT_EQ(g.sizeBytes(), 8ull << 20);
    EXPECT_FALSE(g.fullyAssociative());
}

TEST(Geometry, FullyAssociative)
{
    const CacheGeometry g(16384, 16384); // 1 MB FA data array
    EXPECT_TRUE(g.fullyAssociative());
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.setIndex(0xdeadbeefc0), 0u);
}

TEST(Geometry, IndexAndTagRoundTrip)
{
    const auto g = CacheGeometry::fromBytes(1ull << 20, 16);
    for (Addr a : {Addr{0}, Addr{0x40}, Addr{0xfffc0},
                   Addr{0x123456780}, (Addr{1} << 39) + 0x1c0}) {
        const Addr line = lineAlign(a);
        EXPECT_EQ(g.lineAddr(g.tagOf(line), g.setIndex(line)), line);
    }
}

TEST(Geometry, SetIndexUsesLowLineBits)
{
    const auto g = CacheGeometry::fromBytes(1ull << 20, 16); // 1024 sets
    EXPECT_EQ(g.setIndex(0), 0u);
    EXPECT_EQ(g.setIndex(64), 1u);
    EXPECT_EQ(g.setIndex(64 * 1024), 0u); // wraps after 1024 lines
    EXPECT_EQ(g.setIndex(64 * 1023), 1023u);
}

TEST(Geometry, TagSkipsSetBits)
{
    const auto g = CacheGeometry::fromBytes(1ull << 20, 16); // 1024 sets
    EXPECT_EQ(g.tagOf(0), 0u);
    EXPECT_EQ(g.tagOf(64ull * 1024), 1u);
    EXPECT_EQ(g.tagOf(64ull * 1024 * 5 + 64), 5u);
}

TEST(Geometry, SuffixPropertyForDecoupledArrays)
{
    // Paper Section 3.3: tag and data arrays share low index bits, so a
    // line's data-set index is a suffix of its tag-set index.
    const auto tag = CacheGeometry::fromBytes(4ull << 20, 16);  // 4096 sets
    const auto data = CacheGeometry::fromBytes(1ull << 20, 16); // 1024 sets
    for (Addr a = 0; a < (1ull << 26); a += 64 * 977) {
        EXPECT_EQ(data.setIndex(a),
                  tag.setIndex(a) & (data.numSets() - 1));
    }
}

TEST(Geometry, RejectsNonPowerOf2Sets)
{
    EXPECT_DEATH(CacheGeometry(48, 16), "power of two");
}

TEST(Geometry, RejectsIndivisibleWays)
{
    EXPECT_DEATH(CacheGeometry(100, 16), "multiple of ways");
}

} // namespace
} // namespace rc
