/** @file Unit tests for the NCID baseline. */

#include <gtest/gtest.h>

#include "ncid/ncid_cache.hh"

namespace rc
{
namespace
{

class NullRecaller : public RecallHandler
{
  public:
    bool recall(Addr, std::uint32_t) override { return false; }
    bool downgrade(Addr, std::uint32_t) override { return false; }
};

NcidConfig
smallCfg()
{
    NcidConfig cfg;
    cfg.tagEquivBytes = 64 * 1024;  // 1024 tags, 64 sets of 16
    cfg.dataBytes = 16 * 1024;      // 256 data lines -> 4 ways per set
    cfg.numCores = 8;
    cfg.seed = 3;
    return cfg;
}

Addr
line(std::uint64_t n)
{
    return n * lineBytes;
}

TEST(Ncid, DataWaysDerivedFromSetCount)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    // Paper Section 5.5: an NCID with a 16-way 8 MBeq tag array and a
    // 1 MB data array has 2 data ways; here 256 lines / 64 sets = 4.
    EXPECT_EQ(llc.dataWays(), 4u);
}

TEST(Ncid, RejectsIndivisibleDataSize)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidConfig cfg = smallCfg();
    cfg.dataBytes = 1000; // not a multiple of 64 sets * 64 B
    EXPECT_DEATH(NcidCache llc(cfg, mem), "multiple");
}

TEST(Ncid, NormalModeFillsTagAndData)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    // Set 0 is core 0's normal-fill leader set (policy A).
    llc.request(LlcRequest{line(0), 0, ProtoEvent::GETS, 0});
    EXPECT_EQ(llc.stateOf(line(0)), LlcState::S);
    EXPECT_EQ(llc.stats().lookup("normalFills"), 1u);
}

TEST(Ncid, SelectiveModeMostlyFillsTagOnly)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    // Set 32 is core 0's selective leader set: fill many lines mapping
    // to it and check ~95% stay tag-only.
    int tag_only = 0;
    constexpr int n = 200;
    for (int i = 0; i < n; ++i) {
        const Addr a = line(32 + 64ull * i);
        llc.request(LlcRequest{a, 0, ProtoEvent::GETS, 0});
        tag_only += llc.stateOf(a) == LlcState::TO;
        llc.evictNotify(a, 0, false, 0);
    }
    EXPECT_GT(tag_only, n * 3 / 4);
    EXPECT_LT(tag_only, n); // but the 5% exists
    EXPECT_GT(llc.stats().lookup("tagOnlyFills"), 0u);
}

TEST(Ncid, TagOnlyHitAllocatesData)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    // Find a tag-only fill in the selective leader set, then hit it.
    Addr victim = invalidAddr;
    for (int i = 0; i < 50 && victim == invalidAddr; ++i) {
        const Addr a = line(32 + 64ull * i);
        llc.request(LlcRequest{a, 0, ProtoEvent::GETS, 0});
        llc.evictNotify(a, 0, false, 0);
        if (llc.stateOf(a) == LlcState::TO)
            victim = a;
    }
    ASSERT_NE(victim, invalidAddr);
    const auto r = llc.request(LlcRequest{victim, 0, ProtoEvent::GETS, 0});
    EXPECT_TRUE(r.tagHit);
    EXPECT_TRUE(r.memFetched) << "NCID pays the same refetch cost";
    EXPECT_EQ(llc.stateOf(victim), LlcState::S);
    EXPECT_EQ(llc.stats().lookup("tagOnlyHits"), 1u);
}

TEST(Ncid, MissesSteerTheDuelingMonitor)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    const auto before = llc.dueling().psel(0);
    for (int i = 0; i < 10; ++i) {
        const Addr a = line(0 + 64ull * (i + 1));
        llc.request(LlcRequest{a, 0, ProtoEvent::GETS, 0});
        llc.evictNotify(a, 0, false, 0);
    }
    EXPECT_GT(llc.dueling().psel(0), before);
}

TEST(Ncid, DataHitsServeFromArray)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    llc.request(LlcRequest{line(0), 0, ProtoEvent::GETS, 0});
    ASSERT_EQ(llc.stateOf(line(0)), LlcState::S);
    const auto r = llc.request(LlcRequest{line(0), 1, ProtoEvent::GETS, 0});
    EXPECT_TRUE(r.dataHit);
    EXPECT_FALSE(r.memFetched);
    EXPECT_EQ(llc.stats().lookup("dataHits"), 1u);
}

TEST(Ncid, DataPressureWithinSetEvictsToTagOnly)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    // Five normal-mode (leader set 0) data fills into 4 data ways.
    for (std::uint64_t i = 0; i < 5; ++i)
        llc.request(LlcRequest{line(64ull * i), 0, ProtoEvent::GETS, 0});
    std::uint64_t with_data = 0, tag_only = 0;
    for (std::uint64_t i = 0; i < 5; ++i) {
        const LlcState s = llc.stateOf(line(64ull * i));
        with_data += llcHasData(s);
        tag_only += s == LlcState::TO;
    }
    EXPECT_EQ(with_data, 4u);
    EXPECT_EQ(tag_only, 1u);
}

TEST(Ncid, Describe)
{
    MemCtrl mem(MemCtrlConfig{});
    NcidCache llc(smallCfg(), mem);
    EXPECT_NE(llc.describe().find("NCID-"), std::string::npos);
}

} // namespace
} // namespace rc
