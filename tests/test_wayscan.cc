/**
 * @file
 * Equivalence tests for the vectorized way-scans: whatever backend this
 * binary compiled in (AVX2, NEON or the branchless scalar loop) must
 * agree with a plain first-match reference scan on every input shape
 * the arrays can present — exhaustive placement of the key, the
 * invalid-way sentinel and duplicate keys at associativities 4/8/16,
 * plus the continuation and free-way scans.
 *
 * CI runs this once per backend: the default legs pick up AVX2/NEON
 * where the toolchain enables them, and a -DRC_SIMD=OFF leg forces the
 * scalar fallback, so a lane-ordering bug in any variant fails the
 * matrix rather than hiding behind whichever backend a developer built.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/wayscan.hh"

namespace
{

using namespace rc;

/** Unmistakable first-match reference. */
std::int32_t
refScan(const std::uint64_t *lane, std::uint32_t ways, std::uint64_t key)
{
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (lane[w] == key)
            return static_cast<std::int32_t>(w);
    }
    return -1;
}

const std::uint32_t kWidths[] = {4, 8, 16};

/** A tag value distinct from both the probe key and the sentinel. */
constexpr std::uint64_t kOther = 0x0123456789abull;
constexpr std::uint64_t kKey = 0x00deadbeef42ull;

TEST(WayScan, BackendNameIsKnown)
{
    const std::string name = wayScanBackend();
    EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar")
        << "unexpected way-scan backend '" << name << "'";
}

/** Every single-occupancy placement: key at way k, rest filler. */
TEST(WayScan, SingleMatchEveryPosition)
{
    for (std::uint32_t ways : kWidths) {
        for (std::uint32_t k = 0; k < ways; ++k) {
            std::vector<std::uint64_t> lane(ways, kOther);
            lane[k] = kKey;
            EXPECT_EQ(static_cast<std::int32_t>(k),
                      scanWays(lane.data(), ways, kKey))
                << "ways=" << ways << " pos=" << k;
        }
    }
}

TEST(WayScan, MissReturnsMinusOne)
{
    for (std::uint32_t ways : kWidths) {
        std::vector<std::uint64_t> lane(ways, kOther);
        EXPECT_EQ(-1, scanWays(lane.data(), ways, kKey)) << "ways=" << ways;
        // The sentinel itself must be scannable too (free-way searches
        // in the LLC arrays probe for it directly).
        EXPECT_EQ(-1, scanWays(lane.data(), ways, kInvalidTagLane));
    }
}

/**
 * Exhaustive valid-mask sweep: every subset of ways holds the sentinel,
 * the rest filler, with the key then placed at each valid way in turn.
 * 2^16 masks x 16 positions at the widest shape keeps this exact, not
 * sampled.
 */
TEST(WayScan, ExhaustiveSentinelMasks)
{
    for (std::uint32_t ways : kWidths) {
        for (std::uint32_t mask = 0; mask < (1u << ways); ++mask) {
            std::vector<std::uint64_t> lane(ways);
            for (std::uint32_t w = 0; w < ways; ++w)
                lane[w] = (mask >> w) & 1 ? kInvalidTagLane : kOther;
            ASSERT_EQ(refScan(lane.data(), ways, kKey),
                      scanWays(lane.data(), ways, kKey))
                << "ways=" << ways << " mask=" << mask;
            ASSERT_EQ(refScan(lane.data(), ways, kInvalidTagLane),
                      scanWays(lane.data(), ways, kInvalidTagLane))
                << "ways=" << ways << " mask=" << mask << " (sentinel)";
            for (std::uint32_t k = 0; k < ways; ++k) {
                if ((mask >> k) & 1)
                    continue;
                const std::uint64_t saved = lane[k];
                lane[k] = kKey;
                ASSERT_EQ(static_cast<std::int32_t>(k),
                          scanWays(lane.data(), ways, kKey))
                    << "ways=" << ways << " mask=" << mask << " pos=" << k;
                lane[k] = saved;
            }
        }
    }
}

/**
 * Duplicate keys: fault injection can forge a second copy of a tag, and
 * the contract is FIRST match so the continuation scan can resume past
 * a rejected candidate.  Check every (first, second) pair.
 */
TEST(WayScan, DuplicatesReturnFirstMatch)
{
    for (std::uint32_t ways : kWidths) {
        for (std::uint32_t a = 0; a < ways; ++a) {
            for (std::uint32_t b = a + 1; b < ways; ++b) {
                std::vector<std::uint64_t> lane(ways, kOther);
                lane[a] = kKey;
                lane[b] = kKey;
                ASSERT_EQ(static_cast<std::int32_t>(a),
                          scanWays(lane.data(), ways, kKey))
                    << "ways=" << ways << " a=" << a << " b=" << b;
                ASSERT_EQ(static_cast<std::int32_t>(b),
                          scanWaysFrom(lane.data(), ways, kKey, a + 1))
                    << "continuation past " << a;
                ASSERT_EQ(-1, scanWaysFrom(lane.data(), ways, kKey, b + 1));
            }
        }
    }
}

/** Non-power-of-two widths fall back to the generic loop. */
TEST(WayScan, OddWidthsUseGenericLoop)
{
    for (std::uint32_t ways : {1u, 2u, 3u, 5u, 7u, 12u, 24u}) {
        for (std::uint32_t k = 0; k < ways; ++k) {
            std::vector<std::uint64_t> lane(ways, kOther);
            lane[k] = kKey;
            ASSERT_EQ(static_cast<std::int32_t>(k),
                      scanWays(lane.data(), ways, kKey))
                << "ways=" << ways << " pos=" << k;
        }
        std::vector<std::uint64_t> empty(ways, kOther);
        ASSERT_EQ(-1, scanWays(empty.data(), ways, kKey));
    }
}

/** scanFirstFree over occupancy bytes: every placement of the first
 *  zero, at sizes spanning below and above the vector strides. */
TEST(WayScan, FirstFreeEveryPosition)
{
    for (std::uint32_t n : {1u, 8u, 15u, 16u, 31u, 32u, 33u, 64u, 100u}) {
        for (std::uint32_t k = 0; k < n; ++k) {
            std::vector<std::uint8_t> lane(n, 1);
            lane[k] = 0;
            ASSERT_EQ(static_cast<std::int32_t>(k),
                      scanFirstFree(lane.data(), n))
                << "n=" << n << " pos=" << k;
            // A second zero later must not win.
            if (k + 1 < n) {
                lane[n - 1] = 0;
                ASSERT_EQ(static_cast<std::int32_t>(k),
                          scanFirstFree(lane.data(), n));
            }
        }
        std::vector<std::uint8_t> full(n, 1);
        ASSERT_EQ(-1, scanFirstFree(full.data(), n)) << "n=" << n;
    }
}

} // namespace
