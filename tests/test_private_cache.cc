/** @file Unit tests for the private L1/L2 hierarchy. */

#include <gtest/gtest.h>

#include "cache/private_cache.hh"

namespace rc
{
namespace
{

PrivateConfig
smallCfg()
{
    PrivateConfig cfg;
    cfg.l1Bytes = 1024;  // 16 lines
    cfg.l1Ways = 4;
    cfg.l2Bytes = 4096;  // 64 lines
    cfg.l2Ways = 8;
    return cfg;
}

Addr
line(std::uint64_t n)
{
    return n * lineBytes;
}

// ---------------------------------------------------------------------
// TagStore.
// ---------------------------------------------------------------------

TEST(TagStore, FillLookupInvalidate)
{
    TagStore ts(CacheGeometry(16, 4), "t");
    EXPECT_EQ(ts.lookup(line(1)), nullptr);
    ts.fill(line(1), PrivState::S);
    ASSERT_NE(ts.lookup(line(1)), nullptr);
    EXPECT_EQ(ts.lookup(line(1))->state, PrivState::S);
    const auto ev = ts.invalidate(line(1));
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ts.lookup(line(1)), nullptr);
}

TEST(TagStore, EvictsLruWhenFull)
{
    TagStore ts(CacheGeometry(4, 4), "t"); // one set of 4 ways
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_FALSE(ts.fill(line(i), PrivState::S).valid);
    ts.lookup(line(0)); // touch 0: LRU is now 1
    const auto ev = ts.fill(line(9), PrivState::S);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, line(1));
}

TEST(TagStore, EvictionCarriesDirtyState)
{
    TagStore ts(CacheGeometry(1, 1), "t");
    ts.fill(line(0), PrivState::M);
    ts.lookup(line(0))->dirty = true;
    const auto ev = ts.fill(line(1), PrivState::S);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.state, PrivState::M);
}

TEST(TagStore, DoubleFillPanics)
{
    TagStore ts(CacheGeometry(16, 4), "t");
    ts.fill(line(1), PrivState::S);
    EXPECT_DEATH(ts.fill(line(1), PrivState::S), "already-resident");
}

// ---------------------------------------------------------------------
// PrivateHierarchy: classify / fill / upgrade / invalidate.
// ---------------------------------------------------------------------

TEST(Private, ColdReadMissesEverything)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    const auto act = ph.classify(line(100), MemOp::Read, false);
    EXPECT_TRUE(act.needLlc);
    EXPECT_EQ(act.event, ProtoEvent::GETS);
    EXPECT_EQ(act.latency, smallCfg().l1Latency + smallCfg().l2Latency);
}

TEST(Private, ColdWriteIssuesGetx)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    const auto act = ph.classify(line(100), MemOp::Write, false);
    EXPECT_TRUE(act.needLlc);
    EXPECT_EQ(act.event, ProtoEvent::GETX);
}

TEST(Private, FillThenReadHitsL1)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(100), false, false, ev, dirty);
    const auto act = ph.classify(line(100), MemOp::Read, false);
    EXPECT_FALSE(act.needLlc);
    EXPECT_EQ(act.latency, smallCfg().l1Latency);
}

TEST(Private, WriteToSharedNeedsUpgrade)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(100), false, false, ev, dirty); // S fill
    const auto act = ph.classify(line(100), MemOp::Write, false);
    EXPECT_TRUE(act.needLlc);
    EXPECT_EQ(act.event, ProtoEvent::UPG);
    ph.upgraded(line(100));
    const auto again = ph.classify(line(100), MemOp::Write, false);
    EXPECT_FALSE(again.needLlc);
    EXPECT_EQ(ph.state(line(100)), PrivState::M);
}

TEST(Private, WritableFillAllowsImmediateWrite)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(100), false, true, ev, dirty); // GETX fill
    const auto act = ph.classify(line(100), MemOp::Write, false);
    EXPECT_FALSE(act.needLlc);
}

TEST(Private, InstrFetchUsesL1i)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(100), true, false, ev, dirty);
    const auto act = ph.classify(line(100), MemOp::Read, true);
    EXPECT_FALSE(act.needLlc);
    EXPECT_EQ(ph.stats().lookup("l1iHits"), 1u);
    // The same line is NOT in the L1D, but is in the L2.
    const auto dact = ph.classify(line(100), MemOp::Read, false);
    EXPECT_FALSE(dact.needLlc);
    EXPECT_EQ(dact.latency, smallCfg().l1Latency + smallCfg().l2Latency);
}

TEST(Private, L2HitFillsL1)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(1), false, false, ev, dirty);
    // Push line 1 out of the tiny L1D with conflicting fills (same set
    // every 4 lines for a 16-line 4-way L1).
    for (std::uint64_t i = 0; i < 8; ++i)
        ph.fill(line(1 + 4 * (i + 1)), false, false, ev, dirty);
    const auto act = ph.classify(line(1), MemOp::Read, false);
    // Either still in L1 (if not displaced) or an L2 hit; never an LLC
    // miss, since the L2 is big enough here.
    EXPECT_FALSE(act.needLlc);
}

TEST(Private, L2EvictionReportedForNotification)
{
    PrivateConfig tiny = smallCfg();
    tiny.l2Bytes = 128; // 2 lines
    tiny.l2Ways = 2;
    tiny.l1Bytes = 64;  // 1 line
    tiny.l1Ways = 1;
    PrivateHierarchy ph(tiny, 0, "p");
    Addr ev;
    bool dirty;
    EXPECT_FALSE(ph.fill(line(0), false, false, ev, dirty));
    EXPECT_FALSE(ph.fill(line(1), false, false, ev, dirty));
    EXPECT_TRUE(ph.fill(line(2), false, false, ev, dirty));
    EXPECT_EQ(ev, line(0));
    EXPECT_FALSE(dirty);
    // The victim may not survive anywhere in the hierarchy (inclusion).
    EXPECT_FALSE(ph.present(line(0)));
}

TEST(Private, DirtyEvictionReportsDirty)
{
    PrivateConfig tiny = smallCfg();
    tiny.l2Bytes = 128;
    tiny.l2Ways = 2;
    tiny.l1Bytes = 64;
    tiny.l1Ways = 1;
    PrivateHierarchy ph(tiny, 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(0), false, true, ev, dirty); // written
    ph.fill(line(1), false, false, ev, dirty);
    ph.fill(line(2), false, false, ev, dirty);
    EXPECT_EQ(ev, line(0));
    EXPECT_TRUE(dirty);
}

TEST(Private, InvalidateReturnsDirtiness)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(5), false, true, ev, dirty);
    EXPECT_TRUE(ph.invalidate(line(5)));
    EXPECT_FALSE(ph.present(line(5)));
    ph.fill(line(6), false, false, ev, dirty);
    EXPECT_FALSE(ph.invalidate(line(6)));
}

TEST(Private, DowngradeSurrendersDirtyData)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    Addr ev;
    bool dirty;
    ph.fill(line(5), false, true, ev, dirty);
    EXPECT_TRUE(ph.downgrade(line(5)));
    EXPECT_EQ(ph.state(line(5)), PrivState::S);
    // A second downgrade has nothing dirty to give.
    EXPECT_FALSE(ph.downgrade(line(5)));
    // Writing again requires an upgrade.
    const auto act = ph.classify(line(5), MemOp::Write, false);
    EXPECT_TRUE(act.needLlc);
    EXPECT_EQ(act.event, ProtoEvent::UPG);
}

TEST(Private, StatsAccumulate)
{
    PrivateHierarchy ph(smallCfg(), 0, "p");
    ph.classify(line(1), MemOp::Read, false);
    EXPECT_EQ(ph.stats().lookup("l1dMisses"), 1u);
    EXPECT_EQ(ph.stats().lookup("l2Misses"), 1u);
}

} // namespace
} // namespace rc
