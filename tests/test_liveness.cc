/** @file Unit tests for the generation tracker and live-line analysis. */

#include <gtest/gtest.h>

#include "analysis/liveness.hh"

namespace rc
{
namespace
{

TEST(GenerationTracker, BasicLifecycle)
{
    GenerationTracker t;
    t.onDataFill(0x1000, 10);
    t.onDataHit(0x1000, 20);
    t.onDataHit(0x1000, 30);
    t.onDataEvict(0x1000, 50);
    ASSERT_EQ(t.records().size(), 1u);
    const GenRecord &g = t.records()[0];
    EXPECT_EQ(g.fill, 10u);
    EXPECT_EQ(g.lastHit, 30u);
    EXPECT_EQ(g.evict, 50u);
    EXPECT_EQ(g.hits, 2u);
    EXPECT_EQ(t.totalHits(), 2u);
}

TEST(GenerationTracker, MultipleGenerationsOfSameLine)
{
    GenerationTracker t;
    t.onDataFill(0x40, 0);
    t.onDataEvict(0x40, 10);
    t.onDataFill(0x40, 20);
    t.onDataHit(0x40, 25);
    t.onDataEvict(0x40, 30);
    ASSERT_EQ(t.records().size(), 2u);
    EXPECT_EQ(t.records()[0].hits, 0u);
    EXPECT_EQ(t.records()[1].hits, 1u);
}

TEST(GenerationTracker, FinalizeClosesResidents)
{
    GenerationTracker t;
    t.onDataFill(0x40, 5);
    t.onDataFill(0x80, 6);
    EXPECT_EQ(t.residentCount(), 2u);
    t.finalize(100);
    EXPECT_EQ(t.residentCount(), 0u);
    EXPECT_EQ(t.records().size(), 2u);
    for (const auto &g : t.records())
        EXPECT_EQ(g.evict, 100u);
}

TEST(GenerationTracker, HitOnUnknownLineOpensImplicitGeneration)
{
    GenerationTracker t;
    t.onDataHit(0x40, 50); // resident before the tracker attached
    t.onDataEvict(0x40, 80);
    ASSERT_EQ(t.records().size(), 1u);
    EXPECT_EQ(t.records()[0].fill, 50u);
    EXPECT_EQ(t.records()[0].hits, 1u);
}

TEST(GenerationTracker, EvictOfUnknownLineIgnored)
{
    GenerationTracker t;
    t.onDataEvict(0x40, 10);
    EXPECT_TRUE(t.records().empty());
}

TEST(GenerationTracker, SubLineAddressesAlias)
{
    GenerationTracker t;
    t.onDataFill(0x1000, 0);
    t.onDataHit(0x1010, 5); // same line, different offset
    t.onDataEvict(0x103f, 9);
    ASSERT_EQ(t.records().size(), 1u);
    EXPECT_EQ(t.records()[0].hits, 1u);
}

// ---------------------------------------------------------------------
// Live series (Figure 1a semantics: live == will be hit again).
// ---------------------------------------------------------------------

TEST(LiveSeries, SingleGenerationLiveUntilLastHit)
{
    // One line in a 1-line cache: filled at 0, hit at 50, evicted at
    // 100.  Live on samples in [0, 50), dead on [50, 100).
    std::vector<GenRecord> recs{{0, 100, 50, 1}};
    const LiveSeries s = computeLiveSeries(recs, 0, 100, 10, 1);
    ASSERT_EQ(s.fraction.size(), 10u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(s.fraction[i], 1.0) << i;
    for (std::size_t i = 5; i < 10; ++i)
        EXPECT_DOUBLE_EQ(s.fraction[i], 0.0) << i;
    EXPECT_DOUBLE_EQ(s.mean, 0.5);
}

TEST(LiveSeries, ZeroHitGenerationsNeverLive)
{
    std::vector<GenRecord> recs{{0, 100, 0, 0}};
    const LiveSeries s = computeLiveSeries(recs, 0, 100, 10, 4);
    for (double f : s.fraction)
        EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(LiveSeries, CapacityNormalizes)
{
    std::vector<GenRecord> recs{{0, 100, 100, 3}, {0, 100, 100, 2}};
    const LiveSeries s = computeLiveSeries(recs, 0, 100, 10, 4);
    for (double f : s.fraction)
        EXPECT_DOUBLE_EQ(f, 0.5); // 2 live lines of 4
}

TEST(LiveSeries, WindowClipping)
{
    // Generation entirely before the window contributes nothing.
    std::vector<GenRecord> recs{{0, 40, 30, 1}, {60, 200, 190, 5}};
    const LiveSeries s = computeLiveSeries(recs, 100, 200, 10, 1);
    EXPECT_GT(s.mean, 0.8); // only the second, live during the window
}

TEST(LiveSeries, AverageHelperMatches)
{
    std::vector<GenRecord> recs{{0, 100, 50, 1}};
    EXPECT_DOUBLE_EQ(averageLiveFraction(recs, 0, 100, 10, 1),
                     computeLiveSeries(recs, 0, 100, 10, 1).mean);
}

TEST(LiveSeries, InvalidArgumentsPanic)
{
    std::vector<GenRecord> recs;
    EXPECT_DEATH(computeLiveSeries(recs, 0, 100, 0, 1), "period");
    EXPECT_DEATH(computeLiveSeries(recs, 100, 100, 10, 1), "window");
    EXPECT_DEATH(computeLiveSeries(recs, 0, 100, 10, 0), "capacity");
}

} // namespace
} // namespace rc
