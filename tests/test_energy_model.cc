/** @file Unit tests for the SLLC energy surrogate. */

#include <gtest/gtest.h>

#include "model/energy_model.hh"

namespace rc
{
namespace
{

constexpr std::uint64_t MiB = 1ull << 20;

TEST(EnergyModel, ReferenceNormalization)
{
    const EnergyEstimate conv = conventionalEnergy(8 * MiB, 16);
    EXPECT_NEAR(conv.tagProbe, 1.0, 1e-9);
    EXPECT_NEAR(conv.leakage, 1.0, 1e-9);
    EXPECT_NEAR(conv.dataAccess, 3.0, 0.01)
        << "data access ~3x a tag probe at the reference point";
}

TEST(EnergyModel, ReuseCacheLeakageMatchesStorageFraction)
{
    // Leakage tracks bit counts: RC-4/1 has 16.7% of the bits.
    const EnergyEstimate rc = reuseEnergy(4 * MiB, 16, 1 * MiB, 0);
    EXPECT_NEAR(rc.leakage, 0.167, 0.001);
}

TEST(EnergyModel, SmallerDataArrayCheaperAccess)
{
    const EnergyEstimate conv = conventionalEnergy(8 * MiB, 16);
    const EnergyEstimate rc = reuseEnergy(8 * MiB, 16, 1 * MiB, 0);
    EXPECT_LT(rc.dataAccess, conv.dataAccess);
}

TEST(EnergyModel, ReuseTagProbeCostsMore)
{
    // Wider tag entries (forward pointers) make each probe pricier.
    const EnergyEstimate conv = conventionalEnergy(8 * MiB, 16);
    const EnergyEstimate rc = reuseEnergy(8 * MiB, 16, 1 * MiB, 0);
    EXPECT_GT(rc.tagProbe, conv.tagProbe);
    EXPECT_LT(rc.tagProbe, conv.tagProbe * 2.0);
}

TEST(EnergyModel, FullyAssociativeDataNotPenalized)
{
    // The forward pointer removes associative search: an FA data array
    // activates one entry just like a 16-way one (same entry bits up to
    // the reverse-pointer width).
    const EnergyEstimate fa = reuseEnergy(4 * MiB, 16, 1 * MiB, 0);
    const EnergyEstimate sa = reuseEnergy(4 * MiB, 16, 1 * MiB, 16);
    EXPECT_NEAR(fa.dataAccess, sa.dataAccess, 0.1);
}

TEST(EnergyModel, WindowEnergyAccumulates)
{
    const EnergyEstimate conv = conventionalEnergy(8 * MiB, 16);
    SllcActivity a;
    a.tagProbes = 1000;
    a.dataAccesses = 500;
    a.windowCycles = 0;
    const double dynamic_only = windowEnergy(conv, a);
    EXPECT_NEAR(dynamic_only,
                1000.0 * conv.tagProbe + 500.0 * conv.dataAccess, 1e-6);
    a.windowCycles = 1'000'000;
    EXPECT_NEAR(windowEnergy(conv, a) - dynamic_only, 10000.0, 1e-6);
}

TEST(EnergyModel, HeadlineLeakageReduction)
{
    // The motivation claim: downsizing to RC-4/1 cuts static power by
    // ~83%, dominating total SLLC energy in leakage-bound designs.
    const EnergyEstimate conv = conventionalEnergy(8 * MiB, 16);
    const EnergyEstimate rc = reuseEnergy(4 * MiB, 16, 1 * MiB, 0);
    SllcActivity idle;
    idle.windowCycles = 10'000'000;
    EXPECT_LT(windowEnergy(rc, idle), 0.2 * windowEnergy(conv, idle));
}

} // namespace
} // namespace rc
