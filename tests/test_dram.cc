/** @file Unit tests for the DDR3 channel model. */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace rc
{
namespace
{

DramConfig
cfg()
{
    return DramConfig{}; // Table 4 defaults
}

TEST(Dram, FirstAccessIsRowMiss)
{
    DramChannel ch(cfg(), "d");
    const DramResult r = ch.access(0, 100, false);
    EXPECT_FALSE(r.rowHit);
    // raw access + bus transfer
    EXPECT_EQ(r.doneAt, 100 + cfg().rowMissLatency + cfg().busCyclesPerLine);
    EXPECT_EQ(ch.stats().lookup("rowMisses"), 1u);
}

TEST(Dram, SecondAccessSameRowHits)
{
    DramChannel ch(cfg(), "d");
    ch.access(0, 0, false);
    // Same bank and row: line + numBanks lines later is the same row.
    const Cycle late = 10'000;
    const DramResult r = ch.access(
        static_cast<Addr>(cfg().numBanks) * lineBytes, late, false);
    EXPECT_TRUE(r.rowHit);
    EXPECT_EQ(r.doneAt, late + cfg().rowHitLatency + cfg().busCyclesPerLine);
}

TEST(Dram, RowConflictCostsExtra)
{
    DramChannel ch(cfg(), "d");
    ch.access(0, 0, false);
    // Same bank, different row.
    const Addr other_row =
        static_cast<Addr>(cfg().pageBytes) * cfg().numBanks;
    const DramResult r = ch.access(other_row, 10'000, false);
    EXPECT_FALSE(r.rowHit);
    EXPECT_EQ(r.doneAt, 10'000 + cfg().rowMissLatency +
                            cfg().rowConflictExtra + cfg().busCyclesPerLine);
    EXPECT_EQ(ch.stats().lookup("rowConflicts"), 1u);
}

TEST(Dram, BankContentionQueues)
{
    DramChannel ch(cfg(), "d");
    const DramResult a = ch.access(0, 0, false);
    // Immediate same-bank access must wait for the bank occupancy window.
    const DramResult b = ch.access(
        static_cast<Addr>(cfg().numBanks) * lineBytes, 0, false);
    EXPECT_GT(b.doneAt, a.doneAt);
    EXPECT_GT(ch.stats().lookup("bankWaitCycles"), 0u);
}

TEST(Dram, DifferentBanksOverlapButShareBus)
{
    DramChannel ch(cfg(), "d");
    const DramResult a = ch.access(0, 0, false);
    const DramResult b = ch.access(lineBytes, 0, false); // next bank
    // The second access overlaps its array access but serializes on the
    // data bus: exactly one extra bus slot later.
    EXPECT_EQ(b.doneAt, a.doneAt + cfg().busCyclesPerLine);
    EXPECT_EQ(ch.stats().lookup("bankWaitCycles"), 0u);
    EXPECT_GT(ch.stats().lookup("busWaitCycles"), 0u);
}

TEST(Dram, WritesCountedSeparately)
{
    DramChannel ch(cfg(), "d");
    ch.access(0, 0, true);
    ch.access(lineBytes, 0, false);
    EXPECT_EQ(ch.stats().lookup("writes"), 1u);
    EXPECT_EQ(ch.stats().lookup("reads"), 1u);
}

TEST(Dram, ResetClearsState)
{
    DramChannel ch(cfg(), "d");
    ch.access(0, 0, false);
    ch.reset();
    EXPECT_EQ(ch.stats().lookup("reads"), 0u);
    const DramResult r = ch.access(0, 0, false);
    EXPECT_FALSE(r.rowHit); // open row was forgotten
}

TEST(Dram, StreamThroughputBusBound)
{
    // A long stream of sequential lines must be limited by the bus:
    // ~busCyclesPerLine per line once the pipeline fills.
    DramChannel ch(cfg(), "d");
    Cycle done = 0;
    constexpr int n = 1000;
    for (int i = 0; i < n; ++i)
        done = ch.access(static_cast<Addr>(i) * lineBytes, 0, false).doneAt;
    EXPECT_NEAR(static_cast<double>(done),
                static_cast<double>(n) * cfg().busCyclesPerLine, 200.0);
}

TEST(Dram, PostedWritesDoNotBlockReads)
{
    // The controller drains writebacks in idle bus slots: a burst of
    // writes must not delay a subsequent read's bus transfer.
    DramChannel with_writes(cfg(), "w");
    DramChannel reads_only(cfg(), "r");
    // Writes to banks 0..7 only; the probe goes to untouched bank 8,
    // so any delay could only come from (removed) bus blocking.
    for (int i = 0; i < 8; ++i)
        with_writes.access(static_cast<Addr>(i) * lineBytes, 0, true);
    const Addr probe = 1000 * lineBytes; // 1000 % 16 == bank 8
    const Cycle a = with_writes.access(probe, 0, false).doneAt;
    const Cycle b = reads_only.access(probe, 0, false).doneAt;
    EXPECT_EQ(a, b);
}

TEST(Dram, ReadsStillSerializeOnBus)
{
    DramChannel ch(cfg(), "d");
    Cycle last = 0;
    for (int i = 0; i < 8; ++i)
        last = ch.access(static_cast<Addr>(i) * lineBytes, 0, false).doneAt;
    // Eight reads at cycle 0: the last one completes at least
    // 8 * busCyclesPerLine after the first data became ready.
    EXPECT_GE(last, cfg().rowMissLatency + 8 * cfg().busCyclesPerLine);
}

} // namespace
} // namespace rc
