/** @file Unit tests for the full-map directory entry. */

#include <gtest/gtest.h>

#include "coherence/directory.hh"

namespace rc
{
namespace
{

TEST(Directory, StartsEmpty)
{
    DirectoryEntry d;
    EXPECT_TRUE(d.empty());
    EXPECT_FALSE(d.hasOwner());
    EXPECT_EQ(d.sharerCount(), 0u);
}

TEST(Directory, AddRemoveSharers)
{
    DirectoryEntry d;
    d.addSharer(0);
    d.addSharer(7);
    EXPECT_TRUE(d.isSharer(0));
    EXPECT_TRUE(d.isSharer(7));
    EXPECT_FALSE(d.isSharer(3));
    EXPECT_EQ(d.sharerCount(), 2u);
    d.removeSharer(0);
    EXPECT_FALSE(d.isSharer(0));
    EXPECT_EQ(d.sharerCount(), 1u);
}

TEST(Directory, OwnerIsAlsoSharer)
{
    DirectoryEntry d;
    d.setOwner(3);
    EXPECT_TRUE(d.hasOwner());
    EXPECT_EQ(d.owner(), 3u);
    EXPECT_TRUE(d.isSharer(3));
}

TEST(Directory, RemovingOwnerDissolvesOwnership)
{
    DirectoryEntry d;
    d.setOwner(2);
    d.removeSharer(2);
    EXPECT_FALSE(d.hasOwner());
    EXPECT_TRUE(d.empty());
}

TEST(Directory, ClearOwnerKeepsPresence)
{
    DirectoryEntry d;
    d.setOwner(2);
    d.clearOwner();
    EXPECT_FALSE(d.hasOwner());
    EXPECT_TRUE(d.isSharer(2));
}

TEST(Directory, OthersMask)
{
    DirectoryEntry d;
    d.addSharer(0);
    d.addSharer(1);
    d.addSharer(5);
    EXPECT_EQ(d.othersMask(1), (1u << 0) | (1u << 5));
    EXPECT_EQ(d.othersMask(7), d.presenceMask());
}

TEST(Directory, Clear)
{
    DirectoryEntry d;
    d.setOwner(4);
    d.addSharer(1);
    d.clear();
    EXPECT_TRUE(d.empty());
    EXPECT_FALSE(d.hasOwner());
}

TEST(Directory, PresenceToString)
{
    EXPECT_EQ(presenceToString(0), "{}");
    EXPECT_EQ(presenceToString((1u << 0) | (1u << 3) | (1u << 7)),
              "{0,3,7}");
}

} // namespace
} // namespace rc
