/**
 * @file
 * TaskPool unit tests: slot ordering under parallelFor, futures-based
 * submit, exception propagation, pool reuse and worker tagging.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/task_pool.hh"

namespace rc
{
namespace
{

TEST(TaskPool, ParallelForFillsEverySlotInOrder)
{
    TaskPool pool(4);
    constexpr std::size_t n = 100;
    std::vector<std::size_t> out(n, 0);
    pool.parallelFor(0, n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(TaskPool, ParallelForRespectsBeginOffset)
{
    TaskPool pool(3);
    std::vector<int> touched(10, 0);
    pool.parallelFor(4, 8, [&](std::size_t i) { touched[i] = 1; });
    for (std::size_t i = 0; i < touched.size(); ++i)
        EXPECT_EQ(touched[i], (i >= 4 && i < 8) ? 1 : 0) << i;
}

TEST(TaskPool, ParallelForEmptyRangeIsNoop)
{
    TaskPool pool(2);
    bool ran = false;
    pool.parallelFor(5, 5, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(TaskPool, SubmitReturnsFutureValue)
{
    TaskPool pool(2);
    auto f1 = pool.submit([] { return 41 + 1; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(TaskPool, SubmitPropagatesExceptions)
{
    TaskPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(TaskPool, ParallelForPropagatesBodyException)
{
    TaskPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 64,
                                  [&](std::size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error("13");
                                  }),
                 std::runtime_error);
}

TEST(TaskPool, PoolIsReusableAcrossBatches)
{
    TaskPool pool(4);
    std::vector<int> a(32, 0), b(32, 0);
    pool.parallelFor(0, a.size(), [&](std::size_t i) { a[i] = 1; });
    pool.parallelFor(0, b.size(), [&](std::size_t i) { b[i] = 2; });
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 32);
    EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0), 64);
}

TEST(TaskPool, SurvivesExceptionThenRunsNextBatch)
{
    TaskPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 8,
                                  [](std::size_t) {
                                      throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.parallelFor(0, 8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8);
}

TEST(TaskPool, InlinePoolRunsOnCallerInIndexOrder)
{
    TaskPool pool(1);
    EXPECT_EQ(pool.size(), 0u);
    std::vector<std::size_t> order;
    pool.parallelFor(0, 5, [&](std::size_t i) {
        order.push_back(i);
        EXPECT_EQ(TaskPool::workerId(), -1);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskPool, WorkerIdTaggedInsidePoolAndNotOutside)
{
    EXPECT_EQ(TaskPool::workerId(), -1);
    TaskPool pool(3);
    std::atomic<int> badIds{0};
    pool.parallelFor(0, 32, [&](std::size_t) {
        const int id = TaskPool::workerId();
        if (id < 0 || id >= 3)
            ++badIds;
    });
    EXPECT_EQ(badIds.load(), 0);
    EXPECT_EQ(TaskPool::workerId(), -1);
}

TEST(TaskPool, ManyMoreTasksThanWorkers)
{
    TaskPool pool(2);
    constexpr std::size_t n = 1000;
    std::vector<std::uint8_t> seen(n, 0);
    pool.parallelFor(0, n, [&](std::size_t i) { seen[i] = 1; });
    EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0u), n);
}

TEST(TaskPool, DefaultConcurrencyIsAtLeastOne)
{
    EXPECT_GE(TaskPool::defaultConcurrency(), 1u);
}

} // namespace
} // namespace rc
