/**
 * @file
 * Policy-arena coverage: the string-keyed registry (lookup rules,
 * did-you-mean suggestions), unit behavior of every CRC2-family port
 * (victim legality, metadata sanity + fault injection, byte-stable
 * snapshot round trips), fast-vs-virtual dispatch equivalence, the
 * canonical-request-encoding sensitivity to the policy id, Cmp-level
 * save -> restore -> run bit-identity, and a golden stat fingerprint
 * per arena policy mirroring the kernel-identity matrix.
 *
 * Regenerate the golden (only when arena behavior changes on purpose):
 *   RC_REGEN_ARENA_GOLDEN=1 ./rc_tests --gtest_filter=ArenaGolden.*
 */

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "arena/arena_registry.hh"
#include "cache/policy_dispatch.hh"
#include "cache/replacement.hh"
#include "common/log.hh"
#include "service/run_request.hh"
#include "sim/cmp.hh"
#include "sim/system_config.hh"
#include "snapshot/serializer.hh"
#include "workloads/mixes.hh"

#ifndef RC_TEST_DATA_DIR
#define RC_TEST_DATA_DIR "."
#endif

namespace
{

using namespace rc;

/** The twelve kinds the arena adds on top of the paper's built-ins. */
const ReplKind kArenaKinds[] = {
    ReplKind::Ship, ReplKind::ShipMem,  ReplKind::Redre,
    ReplKind::DeadBlock, ReplKind::RdAware, ReplKind::Lip,
    ReplKind::Bip,  ReplKind::Dip,      ReplKind::DuelShip,
    ReplKind::Stream, ReplKind::Plru,   ReplKind::Mru,
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ArenaRegistry, EveryKindRegisteredWithRoundTrippingName)
{
    const auto &reg = arena::policyRegistry();
    ASSERT_EQ(reg.size(), 20u);
    std::set<std::string> names;
    for (const arena::PolicyInfo &info : reg) {
        EXPECT_TRUE(names.insert(info.name).second)
            << "duplicate name " << info.name;
        const arena::PolicyInfo *found = arena::findPolicy(info.name);
        ASSERT_NE(found, nullptr) << info.name;
        EXPECT_EQ(found->kind, info.kind) << info.name;
        EXPECT_EQ(&arena::policyInfo(info.kind), &info);
        EXPECT_NE(std::string(arena::policyNameList()).find(info.name),
                  std::string::npos)
            << info.name << " missing from the usage name list";
    }
}

TEST(ArenaRegistry, LookupIgnoresCaseAndSeparators)
{
    for (const char *spelling :
         {"ship-mem", "ship_mem", "shipmem", "SHiP-Mem", "SHIP_MEM"}) {
        const arena::PolicyInfo *info = arena::findPolicy(spelling);
        ASSERT_NE(info, nullptr) << spelling;
        EXPECT_EQ(info->kind, ReplKind::ShipMem) << spelling;
    }
    ASSERT_NE(arena::findPolicy("DRRIP"), nullptr);
    EXPECT_EQ(arena::findPolicy("DRRIP")->kind, ReplKind::DRRIP);
    ASSERT_NE(arena::findPolicy("Duel_Ship"), nullptr);
    EXPECT_EQ(arena::findPolicy("Duel_Ship")->kind, ReplKind::DuelShip);
    EXPECT_EQ(arena::findPolicy("no-such-policy"), nullptr);
    EXPECT_EQ(arena::findPolicy(""), nullptr);
}

TEST(ArenaRegistry, TyposEarnSuggestions)
{
    const auto shp = arena::suggestPolicies("shp");
    ASSERT_FALSE(shp.empty());
    EXPECT_EQ(shp.front(), "ship");

    const auto dead = arena::suggestPolicies("deadblok");
    ASSERT_FALSE(dead.empty());
    EXPECT_EQ(dead.front(), "deadblock");

    // A prefix of a canonical name always suggests it.
    const auto rd = arena::suggestPolicies("rd");
    ASSERT_FALSE(rd.empty());
    EXPECT_EQ(rd.front(), "rdaware");

    // Garbage far from every name suggests nothing.
    EXPECT_TRUE(arena::suggestPolicies("qqqqzzzzweirdxx").empty());
}

TEST(ArenaRegistry, ParseResolvesEveryCanonicalName)
{
    for (const arena::PolicyInfo &info : arena::policyRegistry())
        EXPECT_EQ(arena::parsePolicyName(info.name), info.kind)
            << info.name;
}

// ---------------------------------------------------------------------------
// Per-policy unit behavior
// ---------------------------------------------------------------------------

/** Deterministic exercise of @p p: fills, hits and victims over every
 *  set, with synthetic PCs and line addresses. */
void
drive(ReplacementPolicy &p, std::uint64_t rounds)
{
    const std::uint64_t sets = p.numSets();
    const std::uint32_t ways = p.numWays();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t set = 0; set < sets; ++set) {
            ReplAccess a;
            a.core = static_cast<CoreId>((set + r) % 8);
            a.pc = 0x400000 + ((set * 7 + r * 13) % 97) * 4;
            a.lineAddr = (set + r * sets) << 6;
            a.isMiss = (r + set) % 3 != 0;
            const std::uint32_t way =
                static_cast<std::uint32_t>((set + r) % ways);
            if (r == 0 || (r + set) % 4 == 0)
                p.onFill(set, way, a);
            else if ((r + set) % 4 == 1)
                p.onHit(set, way, a);
            else if ((r + set) % 4 == 2)
                p.onInvalidate(set, way);
            else {
                VictimQuery q;
                q.core = a.core;
                q.pc = a.pc;
                q.lineAddr = a.lineAddr;
                const std::uint32_t v = p.victim(set, q);
                ASSERT_LT(v, ways);
                p.onFill(set, v, a); // evict-and-refill like a cache
            }
        }
    }
}

TEST(ArenaPolicy, VictimLegalMetadataSaneAndCorruptible)
{
    for (const ReplKind kind : kArenaKinds) {
        SCOPED_TRACE(toString(kind));
        auto p = makeReplacement(kind, 64, 16, 8, 1);
        ASSERT_NE(p, nullptr);
        drive(*p, 12);
        std::string why;
        EXPECT_TRUE(p->metadataSane(&why)) << why;
        ASSERT_TRUE(p->corruptMetadata(3, 5));
        EXPECT_FALSE(p->metadataSane(&why))
            << "corruption not detected for " << toString(kind);
        EXPECT_FALSE(why.empty());
    }
}

TEST(ArenaPolicy, NonPowerOfTwoAssociativityVictimsStayLegal)
{
    // PLRU pads its tree to the next power of two; the padding leaves
    // must never be chosen.  The others must simply stay in range.
    for (const ReplKind kind : kArenaKinds) {
        SCOPED_TRACE(toString(kind));
        auto p = makeReplacement(kind, 16, 12, 8, 1);
        drive(*p, 8);
        std::string why;
        EXPECT_TRUE(p->metadataSane(&why)) << why;
    }
}

TEST(ArenaPolicy, SnapshotRoundTripIsByteStable)
{
    for (const ReplKind kind : kArenaKinds) {
        SCOPED_TRACE(toString(kind));
        auto a = makeReplacement(kind, 64, 16, 8, 1);
        drive(*a, 10);

        Serializer s1;
        s1.beginSection("repl");
        a->save(s1);
        s1.endSection("repl");

        auto b = makeReplacement(kind, 64, 16, 8, 1);
        Deserializer d(s1.image());
        d.beginSection("repl");
        b->restore(d);
        d.endSection("repl");

        Serializer s2;
        s2.beginSection("repl");
        b->save(s2);
        s2.endSection("repl");
        EXPECT_EQ(s1.image(), s2.image())
            << toString(kind)
            << " snapshot is not byte-stable across a round trip";

        // The restored copy must behave identically, not just encode
        // identically: same victims under the same queries.
        for (std::uint64_t set = 0; set < a->numSets(); ++set) {
            VictimQuery q;
            q.core = static_cast<CoreId>(set % 8);
            q.pc = 0x400000 + set * 4;
            q.lineAddr = set << 6;
            EXPECT_EQ(a->victim(set, q), b->victim(set, q))
                << toString(kind) << " set " << set;
        }
    }
}

TEST(ArenaPolicy, RestoreRejectsForeignGeometry)
{
    auto a = makeReplacement(ReplKind::Ship, 64, 16, 8, 1);
    drive(*a, 4);
    Serializer s;
    s.beginSection("repl");
    a->save(s);
    s.endSection("repl");

    auto b = makeReplacement(ReplKind::Ship, 32, 16, 8, 1);
    Deserializer d(s.image());
    d.beginSection("repl");
    try {
        b->restore(d);
        FAIL() << "expected SimError(Snapshot) on geometry mismatch";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimError::Kind::Snapshot) << err.what();
    }
}

// ---------------------------------------------------------------------------
// Cmp-level: golden fingerprints, dispatch equivalence, resume identity
// ---------------------------------------------------------------------------

constexpr Cycle kWarmup = 30'000;
constexpr Cycle kMeasure = 120'000;
constexpr std::uint32_t kScale = 8;

/** Full-stats fingerprint of one short run (kernel-identity idiom). */
std::string
fingerprint(const SystemConfig &cfg)
{
    Mix mix;
    for (std::uint32_t c = 0; c < cfg.numCores; ++c)
        mix.apps.push_back(c % 2 == 0 ? "mcf" : "libquantum");
    Cmp sim(cfg, buildMixStreams(mix, 42, kScale));
    sim.run(kWarmup);
    sim.beginMeasurement();
    sim.run(kMeasure);

    std::ostringstream os;
    sim.llc().stats().dumpJson(os);
    os << "\n";
    for (std::uint32_t i = 0; i < sim.numCores(); ++i) {
        sim.core(i).priv().stats().dumpJson(os);
        os << "\n";
    }
    os << "refs=" << sim.referencesProcessed() << " cycles=" << sim.now()
       << "\n";
    return os.str();
}

std::string
goldenPath()
{
    return std::string(RC_TEST_DATA_DIR) + "/arena_golden.txt";
}

bool
loadGolden(std::vector<std::pair<std::string, std::string>> &out)
{
    std::ifstream in(goldenPath());
    if (!in)
        return false;
    std::string line, name, body;
    auto flush = [&] {
        if (!name.empty())
            out.emplace_back(name, body);
        name.clear();
        body.clear();
    };
    while (std::getline(in, line)) {
        if (line.rfind("=== ", 0) == 0 && line.size() > 8 &&
            line.substr(line.size() - 4) == " ===") {
            flush();
            name = line.substr(4, line.size() - 8);
        } else if (!name.empty()) {
            body += line;
            body += '\n';
        }
    }
    flush();
    return true;
}

TEST(ArenaGolden, MatchesGolden)
{
    std::vector<std::pair<std::string, SystemConfig>> cells;
    for (const ReplKind kind : kArenaKinds)
        cells.emplace_back(std::string("conv-") +
                               arena::policyInfo(kind).name,
                           conventionalSystem(8.0, kind, kScale));

    if (std::getenv("RC_REGEN_ARENA_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << "# Generated by RC_REGEN_ARENA_GOLDEN=1 rc_tests\n"
            << "# --gtest_filter=ArenaGolden.*  -- see the file comment\n"
            << "# of tests/test_arena.cc before regenerating.\n";
        for (const auto &c : cells)
            out << "=== " << c.first << " ===\n" << fingerprint(c.second);
        GTEST_SKIP() << "golden regenerated at " << goldenPath();
    }

    std::vector<std::pair<std::string, std::string>> golden;
    ASSERT_TRUE(loadGolden(golden))
        << "missing golden file " << goldenPath()
        << " -- run RC_REGEN_ARENA_GOLDEN=1 rc_tests "
           "--gtest_filter=ArenaGolden.*";
    ASSERT_EQ(golden.size(), cells.size())
        << "golden cell count drifted from the arena kind list";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(golden[i].first, cells[i].first);
        EXPECT_EQ(golden[i].second, fingerprint(cells[i].second))
            << "stat fingerprint drifted for " << cells[i].first;
    }
}

TEST(ArenaDispatch, FastMatchesVirtual)
{
    for (const ReplKind kind : kArenaKinds) {
        SCOPED_TRACE(toString(kind));
        const SystemConfig cfg = conventionalSystem(8.0, kind, kScale);
        setForceVirtualReplDispatch(false);
        const std::string fast = fingerprint(cfg);
        setForceVirtualReplDispatch(true);
        const std::string slow = fingerprint(cfg);
        setForceVirtualReplDispatch(false);
        EXPECT_EQ(fast, slow)
            << "devirtualized dispatch diverges from the virtual "
               "interface for " << toString(kind);
    }
}

TEST(ArenaSnapshotCmp, EveryArenaPolicyResumesBitIdentically)
{
    const Mix mix = makeMixes(1, 8, 41)[0];
    for (const ReplKind kind : kArenaKinds) {
        SCOPED_TRACE(toString(kind));
        const SystemConfig sys = conventionalSystem(8.0, kind, kScale);

        std::vector<std::uint8_t> image;
        int capturedPhase = -1;
        int phase = 0;
        Cmp a(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
        a.setSnapshotHook(2'000, [&](const Cmp &c, Cycle) {
            Serializer s;
            c.save(s);
            image = s.image();
            capturedPhase = phase;
        });
        a.run(kWarmup);
        a.beginMeasurement();
        phase = 1;
        a.run(kMeasure);
        std::ostringstream ref;
        a.llc().stats().dumpJson(ref);
        ref << " refs=" << a.referencesProcessed()
            << " cycles=" << a.now();

        ASSERT_EQ(capturedPhase, 1)
            << "no snapshot fired during measurement";

        Cmp b(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
        Deserializer d(image);
        b.restore(d);
        b.run(kMeasure);
        std::ostringstream got;
        b.llc().stats().dumpJson(got);
        got << " refs=" << b.referencesProcessed()
            << " cycles=" << b.now();
        EXPECT_EQ(ref.str(), got.str())
            << toString(kind) << " resume diverged";
    }
}

// ---------------------------------------------------------------------------
// Canonical request encoding
// ---------------------------------------------------------------------------

TEST(ArenaCanonical, PolicyIdSeparatesRequestDigests)
{
    // Identical requests except for conv.repl: every digest must be
    // distinct (the policy id is part of the canonical bytes), and the
    // encoding must stay deterministic for equal requests.
    const Mix mix = makeMixes(1, 8, 7)[0];
    std::vector<std::uint64_t> digests;
    for (const arena::PolicyInfo &info : arena::policyRegistry()) {
        svc::RunRequest r;
        r.config = conventionalSystem(8.0, info.kind, 8);
        r.mix = mix;
        r.seed = 42;
        r.scale = 8;
        r.warmup = 60'000;
        r.measure = 300'000;
        EXPECT_EQ(svc::requestDigest(r), svc::requestDigest(r));
        digests.push_back(svc::requestDigest(r));
    }
    std::set<std::uint64_t> uniq(digests.begin(), digests.end());
    EXPECT_EQ(uniq.size(), digests.size())
        << "two policies share a canonical request digest";

    // The deadline must NOT separate digests (it is not canonical).
    svc::RunRequest r;
    r.config = conventionalSystem(8.0, ReplKind::Ship, 8);
    r.mix = mix;
    const std::uint64_t before = svc::requestDigest(r);
    r.deadlineMs = 5'000;
    EXPECT_EQ(svc::requestDigest(r), before);
}

} // namespace
