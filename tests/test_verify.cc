/**
 * @file
 * Tests for the verify layer: SimError / RC_CHECK semantics, the
 * per-structure sanity hooks, the whole-system IntegrityChecker, and
 * the checker-vs-FaultInjector matrix (every fault class must be caught
 * by exactly the invariants it advertises).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cache/mshr.hh"
#include "cache/policies.hh"
#include "coherence/directory.hh"
#include "common/log.hh"
#include "sim/cmp.hh"
#include "verify/fault_injector.hh"
#include "verify/integrity.hh"
#include "workloads/mixes.hh"

namespace rc
{
namespace
{

SystemConfig
tinySystem(LlcKind kind)
{
    return kind == LlcKind::Reuse ? reuseSystem(4, 1, 0, 8)
                                  : baselineSystem(8);
}

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------
// SimError and the RC_CHECK / RC_ASSERT macros
// ---------------------------------------------------------------------

TEST(SimErrorTest, CarriesKindAndTaggedMessage)
{
    bool threw = false;
    try {
        throwSimError(SimError::Kind::Trace, "record %d of '%s'", 7,
                      "demo.rct");
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Trace);
        EXPECT_TRUE(contains(err.what(), "[trace]"));
        EXPECT_TRUE(contains(err.what(), "record 7 of 'demo.rct'"));
    }
    EXPECT_TRUE(threw);
}

TEST(SimErrorTest, KindNames)
{
    EXPECT_STREQ(toString(SimError::Kind::Integrity), "integrity");
    EXPECT_STREQ(toString(SimError::Kind::Protocol), "protocol");
    EXPECT_STREQ(toString(SimError::Kind::Trace), "trace");
    EXPECT_STREQ(toString(SimError::Kind::Config), "config");
}

TEST(SimErrorTest, RcCheckEvaluatesConditionExactlyOnce)
{
    int calls = 0;
    auto pass = [&] {
        ++calls;
        return true;
    };
    RC_CHECK(pass(), SimError::Kind::Protocol, "must pass");
    EXPECT_EQ(calls, 1);

    calls = 0;
    bool threw = false;
    try {
        RC_CHECK(pass() && false, SimError::Kind::Integrity, "value %d",
                 42);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Integrity);
        EXPECT_TRUE(contains(err.what(), "[integrity]"));
        EXPECT_TRUE(contains(err.what(), "value 42"));
        EXPECT_TRUE(contains(err.what(), "test_verify.cc"));
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(calls, 1);
}

TEST(SimErrorTest, MacrosBehaveAsSingleStatements)
{
    // An unbraced if/else around either macro must compile and bind the
    // else to the outer if (the do-while(0) contract).
    bool reached_else = false;
    if (false)
        RC_CHECK(false, SimError::Kind::Config, "never evaluated");
    else
        reached_else = true;
    EXPECT_TRUE(reached_else);

    reached_else = false;
    if (false)
        RC_ASSERT(false, "never evaluated");
    else
        reached_else = true;
    EXPECT_TRUE(reached_else);
}

TEST(SimErrorTest, RcAssertEvaluatesConditionExactlyOnce)
{
    int calls = 0;
    auto pass = [&] {
        ++calls;
        return true;
    };
    RC_ASSERT(pass(), "side effects must not be duplicated");
    EXPECT_EQ(calls, 1);
}

TEST(SimErrorDeathTest, RcAssertStillPanics)
{
    // RC_ASSERT stays a hard abort (programmer error), and must be
    // active in every build type now that NDEBUG no longer disables it.
    EXPECT_DEATH(RC_ASSERT(1 + 1 == 3, "math is broken: %d", 7),
                 "math is broken: 7");
}

// ---------------------------------------------------------------------
// Per-structure sanity hooks
// ---------------------------------------------------------------------

TEST(ReplMetadataSanity, EveryPolicyDetectsItsOwnCorruption)
{
    std::string why;

    NruPolicy nru(4, 4);
    EXPECT_TRUE(nru.metadataSane(&why)) << why;
    EXPECT_TRUE(nru.corruptMetadata(2, 1));
    EXPECT_FALSE(nru.metadataSane(&why));
    EXPECT_TRUE(contains(why, "NRU"));

    NrrPolicy nrr(4, 4, 42);
    EXPECT_TRUE(nrr.metadataSane(&why)) << why;
    EXPECT_TRUE(nrr.corruptMetadata(1, 3));
    EXPECT_FALSE(nrr.metadataSane(&why));
    EXPECT_TRUE(contains(why, "NRR"));

    ClockPolicy clock(2, 8);
    EXPECT_TRUE(clock.metadataSane(&why)) << why;
    EXPECT_TRUE(clock.corruptMetadata(1, 0));
    EXPECT_FALSE(clock.metadataSane(&why));
    EXPECT_TRUE(contains(why, "hand"));

    RripPolicy rrip(4, 4, RripPolicy::Mode::SRRIP, 8, 42);
    EXPECT_TRUE(rrip.metadataSane(&why)) << why;
    EXPECT_TRUE(rrip.corruptMetadata(0, 2));
    EXPECT_FALSE(rrip.metadataSane(&why));
    EXPECT_TRUE(contains(why, "RRPV"));
}

TEST(DirectoryEncoding, AcceptsLegalEntries)
{
    std::string why;
    DirectoryEntry e;
    EXPECT_TRUE(e.encodingSane(8, &why)) << why;
    e.addSharer(3);
    EXPECT_TRUE(e.encodingSane(8, &why)) << why;
    e.setOwner(3);
    EXPECT_TRUE(e.encodingSane(8, &why)) << why;
}

TEST(DirectoryEncoding, RejectsGhostPresenceBeyondCoreCount)
{
    std::string why;
    DirectoryEntry e;
    e.addSharer(9); // only 8 cores exist
    EXPECT_FALSE(e.encodingSane(8, &why));
    EXPECT_TRUE(contains(why, "presence"));
}

TEST(DirectoryEncoding, RejectsOutOfRangeOwner)
{
    std::string why;
    DirectoryEntry e;
    e.addSharer(1);
    e.corruptOwnerForTest(8);
    EXPECT_FALSE(e.encodingSane(8, &why));
    EXPECT_TRUE(contains(why, "owner"));
}

TEST(DirectoryEncoding, RejectsOwnerThatIsNotASharer)
{
    std::string why;
    DirectoryEntry e;
    e.addSharer(2);
    e.corruptOwnerForTest(1); // in range, but has no presence bit
    EXPECT_FALSE(e.encodingSane(8, &why));
    EXPECT_TRUE(contains(why, "sharer"));
}

TEST(MshrLeakCounters, DistinguishInFlightFromLeaked)
{
    MshrFile f(4, "test");
    EXPECT_EQ(f.leakedEntries(), 0u);
    EXPECT_EQ(f.inFlightAt(0), 0u);

    ASSERT_EQ(f.request(0x1000, 10, 50), MshrFile::Outcome::Allocated);
    EXPECT_EQ(f.leakedEntries(), 0u); // retires at 50: not a leak
    EXPECT_EQ(f.inFlightAt(20), 1u);
    EXPECT_EQ(f.inFlightAt(60), 0u); // already complete by then

    ASSERT_EQ(f.request(0x2000, 10, neverCycle),
              MshrFile::Outcome::Allocated);
    EXPECT_EQ(f.leakedEntries(), 1u);
    EXPECT_EQ(f.inFlightAt(60), 1u); // a leak never completes
}

// ---------------------------------------------------------------------
// Whole-system checker
// ---------------------------------------------------------------------

TEST(IntegrityChecker, CleanAcrossSeedsAndOrganizations)
{
    // Zero false positives: undisturbed runs over several seeds must
    // stay clean under a periodic check hook and at quiesce, for both
    // LLC organizations.
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
        for (const LlcKind kind :
             {LlcKind::Reuse, LlcKind::Conventional}) {
            SCOPED_TRACE(std::string(kind == LlcKind::Reuse
                                         ? "reuse"
                                         : "conventional") +
                         " seed " + std::to_string(seed));
            SystemConfig cfg = tinySystem(kind);
            cfg.seed = seed;
            Cmp cmp(cfg, buildMixStreams(exampleMix(), seed, 8));
            IntegrityChecker checker(cmp);
            std::uint64_t fired = 0;
            cmp.setCheckHook(10'000, [&](const Cmp &, Cycle now) {
                ++fired;
                checker.enforce(now);
            });
            // Long enough that reuse is detected and the data array
            // fills at every seed (data allocation needs a second hit).
            EXPECT_NO_THROW(cmp.run(200'000));
            EXPECT_GT(fired, 0u);
            const IntegrityReport r = checker.checkQuiesce(cmp.now());
            EXPECT_TRUE(r.clean()) << r.summary();
            EXPECT_GT(r.tagsWalked, 0u);
            EXPECT_GT(r.privateWalked, 0u);
            EXPECT_GT(r.mshrWalked, 0u);
            if (kind == LlcKind::Reuse) {
                EXPECT_GT(r.dataWalked, 0u);
            }
            EXPECT_EQ(checker.walks(), fired + 1);
        }
    }
}

TEST(IntegrityChecker, CheckHookCadenceMatchesReferenceCount)
{
    SystemConfig cfg = tinySystem(LlcKind::Reuse);
    Cmp cmp(cfg, buildMixStreams(exampleMix(), 42, 8));
    std::uint64_t fired = 0;
    cmp.setCheckHook(5'000, [&](const Cmp &, Cycle) { ++fired; });
    cmp.run(30'000);
    EXPECT_EQ(fired, cmp.referencesProcessed() / 5'000);
}

TEST(IntegrityChecker, SummaryNamesTheViolatedInvariant)
{
    SystemConfig cfg = tinySystem(LlcKind::Reuse);
    Cmp cmp(cfg, buildMixStreams(exampleMix(), 42, 8));
    cmp.run(50'000);
    IntegrityChecker checker(cmp);
    FaultInjector inj(7);
    const InjectionResult res =
        inj.inject(cmp, FaultClass::OwnerCorrupt);
    ASSERT_TRUE(res.applied) << res.detail;
    const IntegrityReport r = checker.check(cmp.now());
    ASSERT_FALSE(r.clean());
    EXPECT_TRUE(contains(r.summary(), "DirectoryEncoding"));
    EXPECT_EQ(r.countOf(Invariant::DirectoryEncoding),
              r.violations.size());

    bool threw = false;
    try {
        checker.enforce(cmp.now());
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Integrity);
        EXPECT_TRUE(contains(err.what(), "DirectoryEncoding"));
    }
    EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------
// Checker-vs-injector matrix
// ---------------------------------------------------------------------

TEST(FaultClassNames, RoundTripThroughTheCliSpelling)
{
    for (std::size_t i = 0; i < numFaultClasses; ++i) {
        const auto cls = static_cast<FaultClass>(i);
        FaultClass out = FaultClass::ReplMetadata;
        EXPECT_TRUE(faultClassFromName(toString(cls), out))
            << toString(cls);
        EXPECT_EQ(out, cls);
    }
    FaultClass out;
    EXPECT_FALSE(faultClassFromName("bogus", out));
    EXPECT_FALSE(faultClassFromName("", out));
}

TEST(FaultMatrix, EveryFaultClassIsCaughtByItsAdvertisedInvariant)
{
    for (const LlcKind kind : {LlcKind::Reuse, LlcKind::Conventional}) {
        for (std::size_t i = 0; i < numFaultClasses; ++i) {
            const auto cls = static_cast<FaultClass>(i);
            SCOPED_TRACE(std::string(kind == LlcKind::Reuse
                                         ? "reuse/"
                                         : "conventional/") +
                         toString(cls));
            SystemConfig cfg = tinySystem(kind);
            Cmp cmp(cfg, buildMixStreams(exampleMix(), 42, 8));
            cmp.run(50'000);
            IntegrityChecker checker(cmp);
            const IntegrityReport before = checker.check(cmp.now());
            ASSERT_TRUE(before.clean()) << before.summary();

            FaultInjector inj(99 + i);
            const InjectionResult res = inj.inject(cmp, cls);
            if (isServiceFault(cls)) {
                // Service-layer faults have no Cmp target; their
                // detection contracts (FrameIntegrity/BlobIntegrity,
                // CrashContainment/PoisonQuarantine) are exercised in
                // test_service.cc and test_daemon.cc.
                EXPECT_FALSE(res.applied);
                continue;
            }
            if (kind == LlcKind::Conventional &&
                cls == FaultClass::OrphanDataBlock) {
                // Coupled tag/data caches cannot orphan a data block.
                EXPECT_FALSE(res.applied);
                continue;
            }
            ASSERT_TRUE(res.applied) << res.detail;
            ASSERT_FALSE(res.expected.empty());

            const IntegrityReport after = checker.check(cmp.now());
            EXPECT_FALSE(after.clean())
                << "undetected fault: " << res.detail;
            // Every advertised invariant fires...
            for (const Invariant inv : res.expected)
                EXPECT_TRUE(after.has(inv))
                    << toString(inv) << " did not fire for '"
                    << res.detail << "'; report: " << after.summary();
            // ...and nothing else does (detection is precise).
            for (const Violation &v : after.violations) {
                const bool expected =
                    std::find(res.expected.begin(), res.expected.end(),
                              v.invariant) != res.expected.end();
                EXPECT_TRUE(expected)
                    << "unexpected " << toString(v.invariant) << ": "
                    << v.detail << " (injected: " << res.detail << ")";
            }
        }
    }
}

TEST(FaultMatrix, InjectionIsDeterministicForAFixedSeed)
{
    auto injectOnce = [](std::uint64_t seed) {
        SystemConfig cfg = tinySystem(LlcKind::Reuse);
        Cmp cmp(cfg, buildMixStreams(exampleMix(), 42, 8));
        cmp.run(50'000);
        FaultInjector inj(seed);
        return inj.inject(cmp, FaultClass::DirectoryDropBit).detail;
    };
    EXPECT_EQ(injectOnce(5), injectOnce(5));
    EXPECT_FALSE(injectOnce(5).empty());
}

TEST(FaultMatrix, MshrLeakIsInvisibleMidFlightButCaughtAtQuiesce)
{
    // A leaked entry is caught even by the mid-run walk (doneAt ==
    // never is unambiguous), and the quiesce walk agrees.
    SystemConfig cfg = tinySystem(LlcKind::Conventional);
    Cmp cmp(cfg, buildMixStreams(exampleMix(), 42, 8));
    cmp.run(50'000);
    IntegrityChecker checker(cmp);
    ASSERT_TRUE(checker.check(cmp.now()).clean());
    FaultInjector inj(3);
    const InjectionResult res = inj.inject(cmp, FaultClass::LeakedMshr);
    ASSERT_TRUE(res.applied) << res.detail;
    EXPECT_TRUE(checker.check(cmp.now()).has(Invariant::MshrLeak));
    EXPECT_TRUE(
        checker.checkQuiesce(cmp.now()).has(Invariant::MshrLeak));
}

} // namespace
} // namespace rc
