/**
 * @file
 * Bit-identity tests for the single-pass fan-out front end: a
 * FanoutCmp driving {conventional, reuse, NCID} back ends off one
 * shared reference stream must leave every member in exactly the state
 * an independent Cmp run of the same config reaches — same stats, same
 * cycle count, same checkpoint bytes, same telemetry samples.
 *
 * The comparison is full-state: every component StatSet (SLLC, per-core
 * private hierarchies, DRAM channels, crossbar MSHRs) plus the
 * reference and cycle totals.  Conventional and NCID members recall
 * private lines, so these runs exercise the divergence-tracking
 * fallback path, not just pure replay.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/replacement.hh"
#include "sim/cmp.hh"
#include "sim/fanout.hh"
#include "sim/system_config.hh"
#include "snapshot/serializer.hh"
#include "workloads/mixes.hh"

namespace
{

using namespace rc;

constexpr Cycle kWarmup = 60'000;
constexpr Cycle kMeasure = 240'000;
constexpr std::uint32_t kScale = 8;
constexpr std::uint64_t kSeed = 42;

Mix
testMix()
{
    Mix mix;
    for (int c = 0; c < 8; ++c)
        mix.apps.push_back(c % 2 == 0 ? "mcf" : "libquantum");
    return mix;
}

StreamFactory
mixFactory()
{
    return [] { return buildMixStreams(testMix(), kSeed, kScale); };
}

/** The fan-out matrix: every SLLC organization behind one front end. */
std::vector<SystemConfig>
matrixConfigs()
{
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(conventionalSystem(8.0, ReplKind::LRU, kScale));
    cfgs.push_back(conventionalSystem(8.0, ReplKind::DRRIP, kScale));
    {
        SystemConfig c = reuseSystem(4.0, 1.0, 16, kScale);
        c.reuse.tagRepl = ReplKind::SRRIP;
        cfgs.push_back(c);
    }
    cfgs.push_back(reuseSystem(4.0, 1.0, 0, kScale));
    cfgs.push_back(ncidSystem(8.0, 1.0, kScale));
    for (SystemConfig &c : cfgs)
        c.seed = kSeed;
    return cfgs;
}

/** Full-state fingerprint, mirroring tests/test_kernel_identity.cc. */
std::string
fingerprint(const Cmp &sim)
{
    std::ostringstream os;
    sim.llc().stats().dumpJson(os);
    os << "\n";
    for (std::uint32_t i = 0; i < sim.numCores(); ++i) {
        sim.core(i).priv().stats().dumpJson(os);
        os << "\n";
    }
    for (const auto &chan : sim.memory().channels()) {
        chan->stats().dumpJson(os);
        os << "\n";
    }
    for (const auto &mshr : sim.crossbar().mshrs()) {
        mshr->stats().dumpJson(os);
        os << "\n";
    }
    os << "refs=" << sim.referencesProcessed() << " cycles=" << sim.now()
       << "\n";
    return os.str();
}

/** Independent reference run of @p cfg (the ground truth). */
std::string
independentFingerprint(const SystemConfig &cfg)
{
    Cmp sim(cfg, buildMixStreams(testMix(), kSeed, kScale));
    sim.run(kWarmup);
    sim.beginMeasurement();
    sim.run(kMeasure);
    return fingerprint(sim);
}

TEST(Fanout, MatchesIndependentRuns)
{
    const std::vector<SystemConfig> cfgs = matrixConfigs();

    FanoutCmp fan(cfgs, mixFactory());
    fan.run(kWarmup);
    fan.beginMeasurement();
    fan.run(kMeasure);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(independentFingerprint(cfgs[i]),
                  fingerprint(fan.member(i)))
            << "fan-out member " << i
            << " diverged from its independent run";
    }
}

TEST(Fanout, SingleMemberMatchesIndependent)
{
    SystemConfig cfg = reuseSystem(4.0, 1.0, 16, kScale);
    cfg.seed = kSeed;

    FanoutCmp fan({cfg}, mixFactory());
    fan.run(kWarmup);
    fan.beginMeasurement();
    fan.run(kMeasure);

    EXPECT_EQ(independentFingerprint(cfg), fingerprint(fan.member(0)));
}

/**
 * Mid-run checkpoints of a fan-out member must serialize the same bytes
 * an independent run serializes at the same reference boundaries: the
 * feed reconstructs true stream state for the member's cursor, and the
 * sliced run loop commits horizons exactly like an unsliced one.
 */
TEST(Fanout, CheckpointsMatchIndependent)
{
    const std::vector<SystemConfig> cfgs = matrixConfigs();
    constexpr std::uint64_t kCkptEvery = 40'000;

    auto capture = [](std::vector<std::vector<std::uint8_t>> &dst) {
        return [&dst](const Cmp &c, Cycle) {
            Serializer s;
            c.save(s);
            dst.push_back(s.image());
        };
    };

    std::vector<std::vector<std::vector<std::uint8_t>>> indep(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        Cmp sim(cfgs[i], buildMixStreams(testMix(), kSeed, kScale));
        sim.setSnapshotHook(kCkptEvery, capture(indep[i]));
        sim.run(kWarmup);
        sim.beginMeasurement();
        sim.run(kMeasure);
    }

    std::vector<std::vector<std::vector<std::uint8_t>>> fanned(cfgs.size());
    FanoutCmp fan(cfgs, mixFactory());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        fan.member(i).setSnapshotHook(kCkptEvery, capture(fanned[i]));
    fan.run(kWarmup);
    fan.beginMeasurement();
    fan.run(kMeasure);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        ASSERT_FALSE(indep[i].empty())
            << "checkpoint cadence never fired; raise kMeasure";
        ASSERT_EQ(indep[i].size(), fanned[i].size())
            << "member " << i << " checkpointed a different number of "
            << "times than its independent run";
        for (std::size_t k = 0; k < indep[i].size(); ++k) {
            EXPECT_EQ(indep[i][k], fanned[i][k])
                << "checkpoint " << k << " of member " << i
                << " is not byte-identical to the independent run's";
        }
    }
}

/**
 * Cycle-cadence telemetry sampling observes the same quiescent points
 * with the same stat values whether the member runs fanned out or
 * independently.
 */
TEST(Fanout, TelemetrySamplesMatchIndependent)
{
    const std::vector<SystemConfig> cfgs = matrixConfigs();
    constexpr Cycle kSampleEvery = 30'000;

    auto capture = [](std::vector<std::string> &dst) {
        return [&dst](const Cmp &c, Cycle at) {
            std::ostringstream os;
            os << "at=" << at << " refs=" << c.referencesProcessed()
               << " ";
            c.llc().stats().dumpJson(os);
            dst.push_back(os.str());
        };
    };

    std::vector<std::vector<std::string>> indep(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        Cmp sim(cfgs[i], buildMixStreams(testMix(), kSeed, kScale));
        sim.setSampleHook(kSampleEvery, capture(indep[i]));
        sim.run(kWarmup);
        sim.beginMeasurement();
        sim.run(kMeasure);
    }

    std::vector<std::vector<std::string>> fanned(cfgs.size());
    FanoutCmp fan(cfgs, mixFactory());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        fan.member(i).setSampleHook(kSampleEvery, capture(fanned[i]));
    fan.run(kWarmup);
    fan.beginMeasurement();
    fan.run(kMeasure);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        ASSERT_FALSE(indep[i].empty());
        EXPECT_EQ(indep[i], fanned[i])
            << "telemetry samples of member " << i
            << " diverged from the independent run's";
    }
}

/** The grouping predicate the harness keys fan-out batches on. */
TEST(Fanout, SamePrivatePrefixPredicate)
{
    const SystemConfig a = conventionalSystem(8.0, ReplKind::LRU, kScale);
    SystemConfig b = reuseSystem(4.0, 1.0, 16, kScale);
    EXPECT_TRUE(FanoutCmp::samePrivatePrefix(a, b))
        << "SLLC organization must not affect the front-end prefix";

    SystemConfig c = a;
    c.seed = a.seed + 1;
    EXPECT_FALSE(FanoutCmp::samePrivatePrefix(a, c));

    SystemConfig d = a;
    d.priv.l2Bytes *= 2;
    EXPECT_FALSE(FanoutCmp::samePrivatePrefix(a, d));

    SystemConfig e = a;
    e.prefetch.enable = true;
    EXPECT_FALSE(FanoutCmp::samePrivatePrefix(a, e));

    SystemConfig f = a;
    f.capacityScale = a.capacityScale * 2;
    EXPECT_FALSE(FanoutCmp::samePrivatePrefix(a, f));
}

/** Records are trimmed as the lockstep quanta advance: the feed's live
 *  window must stay near the quantum, not grow with the run. */
TEST(Fanout, FeedWindowStaysBounded)
{
    const std::vector<SystemConfig> cfgs = matrixConfigs();
    FanoutCmp fan(cfgs, mixFactory());
    fan.run(kWarmup + kMeasure);

    const FanoutFeed &feed = fan.sharedFeed();
    for (CoreId c = 0; c < feed.numCores(); ++c) {
        EXPECT_GT(feed.generatedCount(c), 0u);
    }
}

} // namespace
