/** @file Unit and property tests for the replacement policies. */

#include <gtest/gtest.h>

#include "cache/policies.hh"

namespace rc
{
namespace
{

// ---------------------------------------------------------------------
// Generic properties every policy must satisfy (parameterized).
// ---------------------------------------------------------------------

class PolicyProperty : public ::testing::TestWithParam<ReplKind>
{
  protected:
    static constexpr std::uint64_t sets = 64;
    static constexpr std::uint32_t ways = 16;

    std::unique_ptr<ReplacementPolicy>
    make() const
    {
        return makeReplacement(GetParam(), sets, ways, 8, 12345);
    }
};

TEST_P(PolicyProperty, VictimAlwaysInRange)
{
    auto p = make();
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t set = rng.below(sets);
        // Random interleave of fills and hits to reach varied states.
        if (rng.chance(0.5))
            p->onFill(set, static_cast<std::uint32_t>(rng.below(ways)),
                      ReplAccess{static_cast<CoreId>(rng.below(8)), true});
        else
            p->onHit(set, static_cast<std::uint32_t>(rng.below(ways)),
                     ReplAccess{static_cast<CoreId>(rng.below(8)), false});
        const std::uint32_t v = p->victim(set, VictimQuery{});
        EXPECT_LT(v, ways);
    }
}

TEST_P(PolicyProperty, VictimOnUntouchedSetInRange)
{
    auto p = make();
    EXPECT_LT(p->victim(0, VictimQuery{}), ways);
}

TEST_P(PolicyProperty, InvalidateIsSafe)
{
    auto p = make();
    for (std::uint32_t w = 0; w < ways; ++w) {
        p->onFill(3, w, ReplAccess{});
        p->onInvalidate(3, w);
    }
    EXPECT_LT(p->victim(3, VictimQuery{}), ways);
}

TEST_P(PolicyProperty, HitPromotionProtectsLine)
{
    // A line hit on every round must never be the victim under any
    // recency-based policy (Random exempted below).
    if (GetParam() == ReplKind::Random)
        GTEST_SKIP() << "random selection has no recency";
    auto p = make();
    for (std::uint32_t w = 0; w < ways; ++w)
        p->onFill(7, w, ReplAccess{});
    for (int round = 0; round < 50; ++round) {
        p->onHit(7, 5, ReplAccess{});
        const std::uint32_t v = p->victim(7, VictimQuery{});
        EXPECT_NE(v, 5u);
        // Model the eviction + refill of the victim.
        p->onFill(7, v, ReplAccess{});
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Values(ReplKind::LRU, ReplKind::NRU, ReplKind::NRR,
                      ReplKind::Random, ReplKind::Clock, ReplKind::SRRIP,
                      ReplKind::BRRIP, ReplKind::DRRIP),
    [](const ::testing::TestParamInfo<ReplKind> &info) {
        return toString(info.param);
    });

// ---------------------------------------------------------------------
// LRU specifics.
// ---------------------------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy p(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, ReplAccess{});
    p.onHit(0, 0, ReplAccess{});
    p.onHit(0, 2, ReplAccess{});
    // Order (oldest first): 1, 3, 0, 2.
    EXPECT_EQ(p.victim(0, VictimQuery{}), 1u);
    p.onHit(0, 1, ReplAccess{});
    EXPECT_EQ(p.victim(0, VictimQuery{}), 3u);
}

TEST(Lru, InsertLruGoesOutFirst)
{
    LruPolicy p(1, 4);
    for (std::uint32_t w = 0; w < 3; ++w)
        p.onFill(0, w, ReplAccess{});
    ReplAccess demoted;
    demoted.insertLru = true;
    p.onFill(0, 3, demoted);
    EXPECT_EQ(p.victim(0, VictimQuery{}), 3u);
    // ...unless referenced before the eviction.
    p.onHit(0, 3, ReplAccess{});
    EXPECT_EQ(p.victim(0, VictimQuery{}), 0u);
}

TEST(Lru, CyclicLoopOverCapacityNeverHits)
{
    // Classic LRU pathology the workload generator relies on: a loop one
    // line larger than the set always evicts the next-needed line.
    LruPolicy p(1, 4);
    std::uint64_t resident[4] = {0, 1, 2, 3};
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, ReplAccess{});
    int hits = 0;
    std::uint64_t next = 4;
    for (int i = 0; i < 100; ++i) {
        bool found = false;
        for (std::uint32_t w = 0; w < 4; ++w)
            found |= resident[w] == next % 5;
        if (found) {
            ++hits;
        } else {
            const std::uint32_t v = p.victim(0, VictimQuery{});
            resident[v] = next % 5;
            p.onFill(0, v, ReplAccess{});
        }
        ++next;
    }
    EXPECT_EQ(hits, 0);
}

// ---------------------------------------------------------------------
// NRU specifics.
// ---------------------------------------------------------------------

TEST(Nru, VictimHasClearBit)
{
    NruPolicy p(1, 4);
    p.onFill(0, 0, ReplAccess{});
    p.onFill(0, 1, ReplAccess{});
    const std::uint32_t v = p.victim(0, VictimQuery{});
    EXPECT_FALSE(p.usedBit(0, v));
}

TEST(Nru, AgingClearsOthers)
{
    NruPolicy p(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, ReplAccess{});
    // The last fill saturated the set: only way 3 keeps its bit.
    EXPECT_TRUE(p.usedBit(0, 3));
    EXPECT_FALSE(p.usedBit(0, 0));
    EXPECT_FALSE(p.usedBit(0, 1));
    EXPECT_FALSE(p.usedBit(0, 2));
}

// ---------------------------------------------------------------------
// NRR specifics (paper Section 3.2).
// ---------------------------------------------------------------------

TEST(Nrr, FillSetsBitHitClearsBit)
{
    NrrPolicy p(1, 4, 1);
    p.onFill(0, 2, ReplAccess{});
    EXPECT_TRUE(p.nrrBit(0, 2)); // not recently reused
    p.onHit(0, 2, ReplAccess{});
    EXPECT_FALSE(p.nrrBit(0, 2)); // reused
}

TEST(Nrr, PrefersNotReusedAndNotPresent)
{
    NrrPolicy p(1, 4, 99);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, ReplAccess{});
    p.onHit(0, 0, ReplAccess{}); // way 0 reused
    p.onHit(0, 1, ReplAccess{}); // way 1 reused
    VictimQuery q;
    q.avoidMask = 1u << 2; // way 2 present in a private cache
    // Only way 3 is both not-reused and not-present.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(p.victim(0, q), 3u);
}

TEST(Nrr, FallsBackToNotPresent)
{
    NrrPolicy p(1, 4, 7);
    for (std::uint32_t w = 0; w < 4; ++w) {
        p.onFill(0, w, ReplAccess{});
        p.onHit(0, w, ReplAccess{}); // everything reused
    }
    VictimQuery q;
    q.avoidMask = 0b0111; // ways 0..2 in private caches
    // Aging resets the NRR bits, and way 3 is the only non-present one.
    EXPECT_EQ(p.victim(0, q), 3u);
}

TEST(Nrr, AllPresentStillFindsVictim)
{
    NrrPolicy p(1, 4, 11);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, ReplAccess{});
    VictimQuery q;
    q.avoidMask = 0b1111;
    EXPECT_LT(p.victim(0, q), 4u);
}

TEST(Nrr, RandomAmongCandidates)
{
    NrrPolicy p(1, 8, 5);
    for (std::uint32_t w = 0; w < 8; ++w)
        p.onFill(0, w, ReplAccess{});
    bool seen[8] = {};
    for (int i = 0; i < 400; ++i)
        seen[p.victim(0, VictimQuery{})] = true;
    int distinct = 0;
    for (bool s : seen)
        distinct += s;
    EXPECT_GE(distinct, 4); // random choice spreads across the set
}

// ---------------------------------------------------------------------
// Clock specifics.
// ---------------------------------------------------------------------

TEST(Clock, SecondChanceSweep)
{
    ClockPolicy p(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, ReplAccess{});
    // All reference bits set: the sweep clears 0..3 and returns to 0.
    EXPECT_EQ(p.victim(0, VictimQuery{}), 0u);
    // Bits are now clear except those re-referenced.
    p.onHit(0, 1, ReplAccess{});
    EXPECT_EQ(p.victim(0, VictimQuery{}), 2u); // hand at 1, skips it
}

TEST(Clock, HandAdvances)
{
    ClockPolicy p(1, 4);
    p.onFill(0, 0, ReplAccess{});
    const auto before = p.hand(0);
    p.victim(0, VictimQuery{});
    EXPECT_NE(p.hand(0), before);
}

// ---------------------------------------------------------------------
// RRIP specifics.
// ---------------------------------------------------------------------

TEST(Rrip, SrripInsertsLongReRef)
{
    RripPolicy p(1, 4, RripPolicy::Mode::SRRIP, 1, 1);
    p.onFill(0, 0, ReplAccess{});
    EXPECT_EQ(p.rrpv(0, 0), 2u); // max-1 with 2-bit RRPVs
    p.onHit(0, 0, ReplAccess{});
    EXPECT_EQ(p.rrpv(0, 0), 0u); // hit promotion
}

TEST(Rrip, BrripMostlyInsertsDistant)
{
    RripPolicy p(1, 4, RripPolicy::Mode::BRRIP, 1, 1);
    int distant = 0;
    for (int i = 0; i < 640; ++i) {
        p.onFill(0, 0, ReplAccess{});
        distant += p.rrpv(0, 0) == 3;
    }
    // Epsilon is 1/32: expect the overwhelming majority at max RRPV.
    EXPECT_GT(distant, 560);
    EXPECT_LT(distant, 640); // but not all
}

TEST(Rrip, VictimIsMaxRrpv)
{
    RripPolicy p(1, 4, RripPolicy::Mode::SRRIP, 1, 1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(0, w, ReplAccess{});
    p.onHit(0, 0, ReplAccess{});
    // Ways 1..3 at RRPV 2, way 0 at 0.  Aging pushes 1..3 to 3 first.
    EXPECT_EQ(p.victim(0, VictimQuery{}), 1u);
}

TEST(Rrip, AgingTerminates)
{
    RripPolicy p(1, 4, RripPolicy::Mode::SRRIP, 1, 1);
    for (std::uint32_t w = 0; w < 4; ++w) {
        p.onFill(0, w, ReplAccess{});
        p.onHit(0, w, ReplAccess{}); // everything at RRPV 0
    }
    EXPECT_LT(p.victim(0, VictimQuery{}), 4u);
}

TEST(Rrip, DrripLeadersSteerPsel)
{
    RripPolicy p(64, 4, RripPolicy::Mode::DRRIP, 2, 1);
    const auto &duel = p.dueling();
    const auto before = duel.psel(0);
    // Misses by core 0 in its SRRIP leader set (set 0 with modulus 64)
    // push PSEL up.
    for (int i = 0; i < 10; ++i)
        p.onFill(0, 0, ReplAccess{0, true});
    EXPECT_GT(duel.psel(0), before);
    // Misses in its BRRIP leader set (set 32) push PSEL down.
    for (int i = 0; i < 20; ++i)
        p.onFill(32, 0, ReplAccess{0, true});
    EXPECT_LT(duel.psel(0), before);
}

// ---------------------------------------------------------------------
// Factory.
// ---------------------------------------------------------------------

TEST(Factory, ProducesEveryKind)
{
    for (ReplKind k : {ReplKind::LRU, ReplKind::NRU, ReplKind::NRR,
                       ReplKind::Random, ReplKind::Clock, ReplKind::SRRIP,
                       ReplKind::BRRIP, ReplKind::DRRIP}) {
        auto p = makeReplacement(k, 4, 4, 2, 3);
        ASSERT_NE(p, nullptr) << toString(k);
        EXPECT_EQ(p->numSets(), 4u);
        EXPECT_EQ(p->numWays(), 4u);
    }
}

} // namespace
} // namespace rc
