/**
 * @file
 * Checkpoint/restore tests: the snapshot codec itself (framing, CRC,
 * section discipline, corruption rejection), RNG and trace-cursor round
 * trips, and the headline property — saving a full Cmp mid-measurement
 * and restoring it into a fresh system continues to a bit-identical
 * end-of-run, for every SLLC organization and replacement policy.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/private_cache.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sim/cmp.hh"
#include "sim/system_config.hh"
#include "sim/trace_file.hh"
#include "snapshot/serializer.hh"
#include "verify/integrity.hh"
#include "workloads/mixes.hh"

namespace rc
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Expect @p fn to throw SimError(Kind::Snapshot). */
template <typename Fn>
void
expectSnapshotError(Fn &&fn)
{
    try {
        fn();
        FAIL() << "expected SimError(Snapshot)";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimError::Kind::Snapshot) << err.what();
    }
}

TEST(SnapshotFormat, ScalarRoundTrip)
{
    Serializer s;
    s.beginSection("outer");
    s.putBool(true);
    s.putU8(0xab);
    s.putU32(0xdeadbeef);
    s.putU64(0x0123456789abcdefULL);
    s.putI64(-42);
    s.putDouble(3.25);
    s.beginSection("inner");
    s.putString("hello");
    s.endSection("inner");
    s.endSection("outer");

    Deserializer d(s.image());
    d.beginSection("outer");
    EXPECT_TRUE(d.getBool());
    EXPECT_EQ(d.getU8(), 0xab);
    EXPECT_EQ(d.getU32(), 0xdeadbeefu);
    EXPECT_EQ(d.getU64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.getI64(), -42);
    EXPECT_EQ(d.getDouble(), 3.25);
    d.beginSection("inner");
    EXPECT_EQ(d.getString(), "hello");
    d.endSection("inner");
    d.endSection("outer");
    EXPECT_EQ(d.payloadCrc(), s.payloadCrc());
}

TEST(SnapshotFormat, VectorRoundTripAndCountMismatch)
{
    const std::vector<std::uint64_t> v64 = {1, 2, 3};
    const std::vector<std::uint32_t> v32 = {7, 8};
    const std::vector<std::uint8_t> v8 = {0xaa, 0xbb, 0xcc, 0xdd};
    Serializer s;
    s.beginSection("vecs");
    saveVec(s, v64);
    saveVec(s, v32);
    saveVec(s, v8);
    s.endSection("vecs");

    {
        Deserializer d(s.image());
        d.beginSection("vecs");
        std::vector<std::uint64_t> a(3);
        std::vector<std::uint32_t> b(2);
        std::vector<std::uint8_t> c(4);
        restoreVec(d, a, "a");
        restoreVec(d, b, "b");
        restoreVec(d, c, "c");
        d.endSection("vecs");
        EXPECT_EQ(a, v64);
        EXPECT_EQ(b, v32);
        EXPECT_EQ(c, v8);
    }
    {
        // A live vector of the wrong size must be rejected, not resized:
        // geometry is construction-derived, never restored.
        Deserializer d(s.image());
        d.beginSection("vecs");
        std::vector<std::uint64_t> wrong(5);
        expectSnapshotError([&] { restoreVec(d, wrong, "wrong"); });
    }
}

TEST(SnapshotFormat, FileRoundTripIsAtomicAndValid)
{
    const std::string path = tempPath("snap_roundtrip.bin");
    Serializer s;
    s.beginSection("top");
    s.putU64(99);
    s.endSection("top");
    s.writeFile(path);

    // No .tmp litter after a successful rename.
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);

    Deserializer d(path);
    d.beginSection("top");
    EXPECT_EQ(d.getU64(), 99u);
    d.endSection("top");
    std::remove(path.c_str());
}

TEST(SnapshotFormat, CorruptImagesAreRejected)
{
    Serializer s;
    s.beginSection("top");
    s.putU64(1234);
    s.endSection("top");
    const std::vector<std::uint8_t> good = s.image();

    // Bad magic.
    auto badMagic = good;
    badMagic[0] ^= 0xff;
    expectSnapshotError([&] { Deserializer d(badMagic); });

    // Unsupported schema version.
    auto badVersion = good;
    badVersion[8] ^= 0xff;
    expectSnapshotError([&] { Deserializer d(badVersion); });

    // Payload bit flip breaks the CRC.
    auto badPayload = good;
    badPayload[14] ^= 0x01;
    expectSnapshotError([&] { Deserializer d(badPayload); });

    // Trailer bit flip breaks the CRC comparison too.
    auto badCrc = good;
    badCrc[badCrc.size() - 1] ^= 0x01;
    expectSnapshotError([&] { Deserializer d(badCrc); });

    // Truncation: shorter than header+trailer, and mid-payload.
    expectSnapshotError(
        [&] { Deserializer d(std::vector<std::uint8_t>(8, 0)); });
    auto truncated = good;
    truncated.resize(truncated.size() - 5);
    expectSnapshotError([&] { Deserializer d(truncated); });
}

TEST(SnapshotFormat, SectionDisciplineIsEnforced)
{
    Serializer s;
    s.beginSection("alpha");
    s.putU64(7);
    s.endSection("alpha");

    // Wrong section name.
    {
        Deserializer d(s.image());
        expectSnapshotError([&] { d.beginSection("beta"); });
    }
    // Reading past the section boundary.
    {
        Deserializer d(s.image());
        d.beginSection("alpha");
        EXPECT_EQ(d.getU64(), 7u);
        expectSnapshotError([&] { d.getU64(); });
    }
    // Leaving a section before consuming it.
    {
        Deserializer d(s.image());
        d.beginSection("alpha");
        expectSnapshotError([&] { d.endSection("alpha"); });
    }
}

TEST(SnapshotRng, RawStateResumesTheStream)
{
    Rng a(12345);
    for (int i = 0; i < 17; ++i)
        (void)a.next();
    const std::uint64_t state = a.rawState();
    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 32; ++i)
        expect.push_back(a.next());

    Rng b(999); // deliberately different seed; setRawState overrides it
    b.setRawState(state);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(b.next(), expect[i]);
}

TEST(SnapshotTrace, SeekAndCursorRoundTrip)
{
    const std::string path = tempPath("snap_trace.bin");
    {
        TraceWriter w(path);
        for (std::uint64_t i = 0; i < 50; ++i) {
            MemRef ref;
            ref.addr = 0x1000 + i * 64;
            ref.think = static_cast<std::uint32_t>(i % 7);
            ref.op = (i % 3) == 0 ? MemOp::Write : MemOp::Read;
            w.write(ref);
        }
        w.close();
    }

    TraceReader a(path);
    for (int i = 0; i < 23; ++i)
        (void)a.next();
    EXPECT_EQ(a.consumed(), 23u);

    // seekToRecord lands exactly where sequential reads would.
    TraceReader sought(path);
    sought.seekToRecord(23);
    EXPECT_EQ(sought.consumed(), 23u);
    EXPECT_EQ(sought.next().addr, a.next().addr);

    // Seeking past the file size wraps like replay does.
    TraceReader wrapped(path);
    wrapped.seekToRecord(50 * 2 + 5);
    EXPECT_EQ(wrapped.wraps(), 2u);
    TraceReader slow(path);
    slow.seekToRecord(5);
    EXPECT_EQ(wrapped.next().addr, slow.next().addr);

    // save/restore moves the cursor through the snapshot codec.
    Serializer s;
    s.beginSection("cursor");
    a.save(s);
    s.endSection("cursor");
    TraceReader restored(path);
    Deserializer d(s.image());
    d.beginSection("cursor");
    restored.restore(d);
    d.endSection("cursor");
    EXPECT_EQ(restored.consumed(), a.consumed());
    EXPECT_EQ(restored.next().addr, a.next().addr);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The headline property: a mid-measurement snapshot restored into a
// fresh Cmp continues to a bit-identical end of run.
// ---------------------------------------------------------------------------

constexpr Cycle kWarmup = 20'000;
constexpr Cycle kMeasure = 80'000;

struct EndOfRun
{
    double aggregateIpc = 0.0;
    std::vector<double> coreIpc;
    std::vector<MpkiTriple> mpki;
    std::uint64_t refs = 0;
    Cycle horizon = 0;
    std::vector<std::pair<std::string, Counter>> llcStats;
};

EndOfRun
endOfRun(const Cmp &cmp)
{
    EndOfRun e;
    e.aggregateIpc = cmp.aggregateIpc();
    for (CoreId c = 0; c < cmp.numCores(); ++c) {
        e.coreIpc.push_back(cmp.ipc(c));
        e.mpki.push_back(cmp.measuredMpki(c));
    }
    e.refs = cmp.referencesProcessed();
    e.horizon = cmp.now();
    for (const StatSet::Entry &entry : cmp.llc().stats().entries())
        e.llcStats.emplace_back(entry.name, entry.value);
    return e;
}

void
expectSameEnd(const EndOfRun &a, const EndOfRun &b)
{
    EXPECT_EQ(a.aggregateIpc, b.aggregateIpc);
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c) {
        EXPECT_EQ(a.coreIpc[c], b.coreIpc[c]) << "core " << c;
        EXPECT_EQ(a.mpki[c].l1, b.mpki[c].l1) << "core " << c;
        EXPECT_EQ(a.mpki[c].l2, b.mpki[c].l2) << "core " << c;
        EXPECT_EQ(a.mpki[c].llc, b.mpki[c].llc) << "core " << c;
    }
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_EQ(a.horizon, b.horizon);
    ASSERT_EQ(a.llcStats.size(), b.llcStats.size());
    for (std::size_t i = 0; i < a.llcStats.size(); ++i) {
        EXPECT_EQ(a.llcStats[i].first, b.llcStats[i].first);
        EXPECT_EQ(a.llcStats[i].second, b.llcStats[i].second)
            << "counter " << a.llcStats[i].first;
    }
}

/** Last snapshot image the hook captured, plus which phase it saw. */
struct Captured
{
    std::vector<std::uint8_t> image;
    int phase = -1; // 0 = warmup, 1 = measurement
};

/**
 * Run warmup+measure on a fresh Cmp, capturing a snapshot from the
 * periodic hook (exactly like the harness does); then restore the last
 * mid-measurement image into a second fresh Cmp and drive it to the
 * same end the way a resumed run would.
 */
void
checkSaveRestoreProperty(const SystemConfig &sys, const Mix &mix)
{
    Captured cap;
    int phase = 0;

    Cmp a(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
    a.setSnapshotHook(2'000, [&cap, &phase](const Cmp &c, Cycle) {
        Serializer s;
        c.save(s);
        cap.image = s.image();
        cap.phase = phase;
    });
    a.run(kWarmup);
    a.beginMeasurement();
    phase = 1;
    a.run(kMeasure);
    const EndOfRun ref = endOfRun(a);

    ASSERT_EQ(cap.phase, 1)
        << "no snapshot fired during measurement -- lower the cadence";

    Cmp b(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
    Deserializer d(cap.image);
    b.restore(d);
    IntegrityChecker(b).enforce(b.now());
    // The snapshot was taken inside run(kMeasure), before the horizon
    // advanced, so replaying the same call reaches the identical end.
    b.run(kMeasure);
    expectSameEnd(endOfRun(b), ref);
}

TEST(SnapshotCmp, ConventionalEveryPolicyResumesBitIdentically)
{
    const Mix mix = makeMixes(1, 8, 31)[0];
    for (const ReplKind kind :
         {ReplKind::LRU, ReplKind::NRU, ReplKind::NRR, ReplKind::Random,
          ReplKind::Clock, ReplKind::SRRIP, ReplKind::BRRIP,
          ReplKind::DRRIP}) {
        SCOPED_TRACE(toString(kind));
        checkSaveRestoreProperty(conventionalSystem(8.0, kind, 8), mix);
    }
}

TEST(SnapshotCmp, ReuseCacheResumesBitIdentically)
{
    const Mix mix = makeMixes(1, 8, 32)[0];
    checkSaveRestoreProperty(reuseSystem(4.0, 1.0, 0, 8), mix);
    // Set-associative data array exercises the fwd/back pointer paths.
    checkSaveRestoreProperty(reuseSystem(4.0, 1.0, 8, 8), mix);
}

TEST(SnapshotCmp, NcidResumesBitIdentically)
{
    const Mix mix = makeMixes(1, 8, 33)[0];
    checkSaveRestoreProperty(ncidSystem(4.0, 1.0, 8), mix);
}

TEST(SnapshotCmp, MismatchedConfigurationIsRejected)
{
    const Mix mix = makeMixes(1, 8, 34)[0];
    const SystemConfig reuse = reuseSystem(4.0, 1.0, 0, 8);
    Cmp a(reuse, buildMixStreams(mix, reuse.seed, reuse.capacityScale));
    a.run(5'000);
    Serializer s;
    a.save(s);

    // A reuse-cache checkpoint must not restore into a conventional
    // system: the meta section catches it before any state moves.
    const SystemConfig conv = baselineSystem(8);
    Cmp b(conv, buildMixStreams(mix, conv.seed, conv.capacityScale));
    Deserializer d(s.image());
    expectSnapshotError([&] { b.restore(d); });
}

TEST(SnapshotCmp, CorruptedCheckpointIsRejected)
{
    const Mix mix = makeMixes(1, 8, 35)[0];
    const SystemConfig sys = baselineSystem(8);
    Cmp a(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
    a.run(5'000);
    Serializer s;
    a.save(s);
    auto bytes = s.image();
    bytes[bytes.size() / 2] ^= 0x10;
    expectSnapshotError([&] { Deserializer d(bytes); });
}

// ---------------------------------------------------------------------------
// SoA tag arrays: the split tag/valid/payload lanes serialize through a
// translation layer (invalid ways write a zero tag regardless of the
// in-memory sentinel).  save -> restore -> save must reproduce the
// exact bytes, or the translation is asymmetric and the second
// generation of checkpoints diverges from the first.
// ---------------------------------------------------------------------------

TEST(SnapshotSoA, TagStoreDoubleSaveIsByteStable)
{
    TagStore a(CacheGeometry(16, 4), "a");
    // Populate with history: fills, LRU touches and invalidations, so
    // some ways are invalid-with-a-past rather than never-used.
    const auto line = [](std::uint64_t n) { return Addr{n} << 6; };
    for (std::uint64_t n = 0; n < 24; ++n)
        a.fill(line(n * 3 + 1), n % 2 ? PrivState::M : PrivState::S);
    for (std::uint64_t n = 0; n < 24; n += 4)
        a.lookup(line(n * 3 + 1));
    for (std::uint64_t n = 0; n < 24; n += 5)
        a.invalidate(line(n * 3 + 1));

    Serializer s1;
    a.save(s1);

    TagStore b(CacheGeometry(16, 4), "b");
    Deserializer d(s1.image());
    b.restore(d);

    // Behavior carries over: resident lines resident, invalidated gone.
    EXPECT_EQ(a.residentCount(), b.residentCount());
    EXPECT_EQ(b.peek(line(1)) != nullptr, a.peek(line(1)) != nullptr);
    EXPECT_EQ(b.peek(line(16)), nullptr); // line(5*3+1) was invalidated

    Serializer s2;
    b.save(s2);
    EXPECT_EQ(s1.image(), s2.image())
        << "TagStore snapshot is not byte-stable across a round trip";
}

TEST(SnapshotSoA, CmpDoubleSaveIsByteStable)
{
    const Mix mix = makeMixes(1, 8, 37)[0];
    // One system per SLLC organization: covers the private TagStore
    // lanes plus the conventional tag lane, the reuse tag/data lanes
    // and the NCID arrays in a single sweep.
    const SystemConfig systems[] = {
        conventionalSystem(8.0, ReplKind::SRRIP, 8),
        reuseSystem(4.0, 1.0, 8, 8),
        ncidSystem(4.0, 1.0, 8),
    };
    for (const SystemConfig &sys : systems) {
        Cmp a(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
        a.run(20'000);
        Serializer s1;
        a.save(s1);

        Cmp b(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
        Deserializer d(s1.image());
        b.restore(d);
        Serializer s2;
        b.save(s2);
        EXPECT_EQ(s1.image(), s2.image())
            << "Cmp snapshot is not byte-stable across a round trip";
    }
}

TEST(SnapshotCmp, AbortFlagThrowsHang)
{
    const Mix mix = makeMixes(1, 8, 36)[0];
    const SystemConfig sys = baselineSystem(8);
    Cmp cmp(sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
    std::atomic<bool> abortFlag{false};
    bool dumped = false;
    cmp.setAbortFlag(&abortFlag, [&dumped](const Cmp &) { dumped = true; });
    std::atomic<std::uint64_t> beat{0};
    cmp.setProgressCounter(&beat);

    cmp.run(5'000);
    EXPECT_GT(beat.load(), 0u);

    abortFlag.store(true);
    try {
        cmp.run(5'000);
        FAIL() << "expected SimError(Hang)";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimError::Kind::Hang) << err.what();
    }
    EXPECT_TRUE(dumped);
}

} // namespace
} // namespace rc
