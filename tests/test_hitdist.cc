/** @file Unit tests for the hits-per-generation distribution (Fig 1b). */

#include <gtest/gtest.h>

#include "analysis/hitdist.hh"

namespace rc
{
namespace
{

GenRecord
gen(std::uint32_t hits)
{
    return GenRecord{0, 1, 0, hits};
}

TEST(HitDist, Empty)
{
    const HitDistribution d = hitDistribution({}, 10);
    EXPECT_EQ(d.generations, 0u);
    EXPECT_EQ(d.totalHits, 0u);
}

TEST(HitDist, GroupsSortedHottestFirst)
{
    std::vector<GenRecord> recs;
    for (std::uint32_t h : {0, 5, 1, 0, 10, 0, 2, 0})
        recs.push_back(gen(h));
    const HitDistribution d = hitDistribution(recs, 4);
    ASSERT_EQ(d.groups.size(), 4u);
    EXPECT_EQ(d.totalHits, 18u);
    // Sorted: 10,5 | 2,1 | 0,0 | 0,0
    EXPECT_DOUBLE_EQ(d.groups[0].hitShare, 15.0 / 18.0);
    EXPECT_DOUBLE_EQ(d.groups[0].avgHits, 7.5);
    EXPECT_DOUBLE_EQ(d.groups[1].hitShare, 3.0 / 18.0);
    EXPECT_DOUBLE_EQ(d.groups[2].hitShare, 0.0);
    EXPECT_DOUBLE_EQ(d.groups[3].hitShare, 0.0);
}

TEST(HitDist, SharesSumToOne)
{
    std::vector<GenRecord> recs;
    for (int i = 0; i < 1000; ++i)
        recs.push_back(gen(i % 7));
    const HitDistribution d = hitDistribution(recs, 200);
    double sum = 0.0;
    for (const auto &g : d.groups)
        sum += g.hitShare;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HitDist, UsefulFraction)
{
    std::vector<GenRecord> recs;
    for (int i = 0; i < 95; ++i)
        recs.push_back(gen(0));
    for (int i = 0; i < 5; ++i)
        recs.push_back(gen(3));
    const HitDistribution d = hitDistribution(recs, 10);
    EXPECT_NEAR(d.usefulFraction, 0.05, 1e-9);
}

TEST(HitDist, PaperShapedInput)
{
    // Synthetic input shaped like Figure 1b: 0.5% of generations very
    // hot, ~5% mildly hot, 95% dead.  The top 0.5% group must dominate.
    std::vector<GenRecord> recs;
    for (int i = 0; i < 10; ++i)
        recs.push_back(gen(12)); // 0.5% of 2000
    for (int i = 0; i < 90; ++i)
        recs.push_back(gen(1));
    for (int i = 0; i < 1900; ++i)
        recs.push_back(gen(0));
    const HitDistribution d = hitDistribution(recs, 200);
    EXPECT_NEAR(d.groups[0].hitShare,
                120.0 / 210.0, 0.01); // ~57% of hits in 0.5% of lines
    EXPECT_NEAR(d.groups[0].avgHits, 12.0, 0.01);
    EXPECT_NEAR(d.usefulFraction, 0.05, 0.0001);
}

TEST(HitDist, FewerGenerationsThanGroups)
{
    std::vector<GenRecord> recs{gen(2), gen(1)};
    const HitDistribution d = hitDistribution(recs, 200);
    EXPECT_EQ(d.groups.size(), 200u);
    double sum = 0.0;
    for (const auto &g : d.groups)
        sum += g.hitShare;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

} // namespace
} // namespace rc
