/**
 * @file
 * Service-layer unit tests below the daemon: wire framing and its
 * defect matrix, request canonicalization and digesting, the persistent
 * result cache (store/lookup, corruption demotion, collision safety,
 * crash recovery), the flock guard under concurrent multi-process
 * appenders, and the two service-layer fault-injection classes.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/filelock.hh"
#include "common/log.hh"
#include "service/frame.hh"
#include "service/result_cache.hh"
#include "service/run_request.hh"
#include "sim/run_result.hh"
#include "sim/system_config.hh"
#include "snapshot/serializer.hh"
#include "verify/fault_injector.hh"
#include "verify/integrity.hh"
#include "workloads/mixes.hh"

namespace rc
{
namespace
{

using svc::decodeFrame;
using svc::encodeFrame;
using svc::Frame;
using svc::MsgType;
using svc::RunRequest;

svc::RunRequest
tinyRequest(std::uint64_t seed = 42)
{
    svc::RunRequest req;
    req.config = baselineSystem(8);
    req.mix = makeMixes(1, req.config.numCores, 7)[0];
    req.seed = seed;
    req.scale = 8;
    req.warmup = 1'000;
    req.measure = 4'000;
    return req;
}

RunResult
syntheticResult(double salt)
{
    RunResult r;
    r.aggregateIpc = 1.25 + salt;
    r.coreIpc = {0.5 + salt, 0.75, 1.0};
    r.mpki = {{1.0, 2.0, 3.0 + salt}, {4.0, 5.0, 6.0}};
    r.fracNeverEnteredData = 0.42;
    r.llcAccesses = 1'000 + static_cast<Counter>(salt * 100);
    r.llcMemFetches = 200;
    r.dramReads = 150;
    return r;
}

std::string
scratchDir(const std::string &name)
{
    return std::string(::testing::TempDir()) + name + "-" +
           std::to_string(::getpid());
}

void
removeTree(const std::string &dir)
{
    // Only the flat files the cache creates; no recursion needed.
    const std::string cmd = "rm -rf '" + dir + "'";
    (void)std::system(cmd.c_str());
}

SimError::Kind
kindOfDecode(const std::vector<std::uint8_t> &bytes)
{
    try {
        decodeFrame(bytes);
    } catch (const SimError &err) {
        return err.kind();
    }
    return SimError::Kind::Integrity; // sentinel: "did not throw"
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(ServiceFrame, RoundTripsEveryMessageType)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
    for (const MsgType type :
         {MsgType::SimRequest, MsgType::SimResult, MsgType::Busy,
          MsgType::Error, MsgType::StatsRequest, MsgType::StatsReply,
          MsgType::Shutdown, MsgType::Ack}) {
        const Frame got = decodeFrame(encodeFrame(type, payload));
        EXPECT_EQ(got.type, type);
        EXPECT_EQ(got.payload, payload);
    }
    // Empty payloads are legal (StatsRequest, Shutdown, Ack).
    EXPECT_TRUE(decodeFrame(encodeFrame(MsgType::Ack, {})).payload.empty());
}

TEST(ServiceFrame, DefectMatrixIsClassifiedAsProtocol)
{
    const std::vector<std::uint8_t> payload(64, 0xab);
    const std::vector<std::uint8_t> good =
        encodeFrame(MsgType::SimResult, payload);
    ASSERT_EQ(kindOfDecode(good), SimError::Kind::Integrity); // clean

    // Bad magic.
    auto badMagic = good;
    badMagic[0] ^= 0xff;
    EXPECT_EQ(kindOfDecode(badMagic), SimError::Kind::Protocol);

    // Version mismatch.
    auto badVersion = good;
    badVersion[4] = static_cast<std::uint8_t>(svc::protocolVersion + 1);
    EXPECT_EQ(kindOfDecode(badVersion), SimError::Kind::Protocol);

    // Oversized length claim (rejected before any payload is read).
    auto oversized = good;
    const std::uint64_t huge = svc::maxFramePayload + 1;
    std::memcpy(oversized.data() + 8, &huge, sizeof(huge));
    EXPECT_EQ(kindOfDecode(oversized), SimError::Kind::Protocol);

    // Payload CRC mismatch.
    auto flipped = good;
    flipped[svc::frameHeaderBytes + 10] ^= 0x01;
    EXPECT_EQ(kindOfDecode(flipped), SimError::Kind::Protocol);

    // Truncation at every prefix length (header and payload).
    for (const std::size_t keep : {1ul, 8ul, 19ul, 20ul, 40ul,
                                   good.size() - 1}) {
        const std::vector<std::uint8_t> cut(good.begin(),
                                            good.begin() + keep);
        EXPECT_EQ(kindOfDecode(cut), SimError::Kind::Protocol)
            << "prefix of " << keep << " bytes";
    }
}

TEST(ServiceFrame, InjectedTruncationIsAlwaysDetected)
{
    FaultInjector inj(11);
    const std::vector<std::uint8_t> good =
        encodeFrame(MsgType::SimRequest, std::vector<std::uint8_t>(97, 3));
    for (int trial = 0; trial < 64; ++trial) {
        const std::vector<std::uint8_t> cut = inj.truncateFrame(good);
        ASSERT_FALSE(cut.empty());
        ASSERT_LT(cut.size(), good.size());
        EXPECT_EQ(kindOfDecode(cut), SimError::Kind::Protocol)
            << "kept " << cut.size() << " of " << good.size();
    }
}

TEST(ServiceFrame, SocketReadHonoursCleanEofVsTornFrame)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // A whole frame arrives intact.
    const std::vector<std::uint8_t> payload = {9, 8, 7};
    svc::writeFrame(fds[0], MsgType::Busy, payload, 1'000);
    Frame got;
    ASSERT_TRUE(svc::readFrame(fds[1], got, 1'000));
    EXPECT_EQ(got.type, MsgType::Busy);
    EXPECT_EQ(got.payload, payload);

    // Peer closes between frames: clean end-of-stream, not an error.
    ::close(fds[0]);
    EXPECT_FALSE(svc::readFrame(fds[1], got, 1'000));
    ::close(fds[1]);

    // Peer dies mid-frame: that IS an error (torn stream).
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::vector<std::uint8_t> full =
        encodeFrame(MsgType::SimResult, payload);
    svc::writeRaw(fds[0], full.data(), full.size() / 2, 1'000);
    ::close(fds[0]);
    bool threw = false;
    try {
        svc::readFrame(fds[1], got, 1'000);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_TRUE(err.kind() == SimError::Kind::Protocol ||
                    err.kind() == SimError::Kind::Io)
            << err.what();
    }
    EXPECT_TRUE(threw);
    ::close(fds[1]);
}

// ---------------------------------------------------------------------
// Canonicalization and digests
// ---------------------------------------------------------------------

TEST(ServiceRequest, DigestIsStableAndSensitiveToEveryKnob)
{
    const RunRequest base = tinyRequest();
    const std::uint64_t d0 = svc::requestDigest(base);
    EXPECT_EQ(svc::requestDigest(base), d0) << "digest must be pure";
    EXPECT_EQ(svc::canonicalBytes(base), svc::canonicalBytes(base));

    auto differs = [d0](const RunRequest &req, const char *what) {
        EXPECT_NE(svc::requestDigest(req), d0) << what;
    };
    RunRequest r = base;
    r.seed = 43;
    differs(r, "seed");
    r = base;
    r.scale = 4;
    differs(r, "scale");
    r = base;
    r.warmup += 1;
    differs(r, "warmup");
    r = base;
    r.measure += 1;
    differs(r, "measure");
    r = base;
    r.config = reuseSystem(1.0, 1.0, 0, 8);
    differs(r, "config");
    r = base;
    r.config.reuse.dataWays += 1;
    differs(r, "an inactive sub-config field still keys the digest");
    r = base;
    r.mix = makeMixes(2, base.config.numCores, 7)[1];
    differs(r, "mix");

    // The deadline shapes scheduling, never the answer: same key.
    r = base;
    r.deadlineMs = 5'000;
    EXPECT_EQ(svc::requestDigest(r), d0);
    EXPECT_EQ(svc::canonicalBytes(r), svc::canonicalBytes(base));
}

TEST(ServiceRequest, WireEncodingRoundTripsIncludingDeadline)
{
    RunRequest req = tinyRequest(1234);
    req.deadlineMs = 750;
    Serializer s;
    svc::encodeRequest(s, req);
    Deserializer d(s.image());
    const RunRequest back = svc::decodeRequest(d);
    EXPECT_EQ(svc::requestDigest(back), svc::requestDigest(req));
    EXPECT_EQ(back.deadlineMs, 750u);
    EXPECT_EQ(back.seed, req.seed);
    EXPECT_EQ(back.mix.apps, req.mix.apps);
}

TEST(ServiceRequest, DecodeRejectsSemanticGarbage)
{
    RunRequest req = tinyRequest();
    req.measure = 0; // a zero-length measurement is meaningless
    Serializer s;
    svc::encodeRequest(s, req);
    Deserializer d(s.image());
    bool threw = false;
    try {
        svc::decodeRequest(d);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Protocol);
    }
    EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

TEST(ResultCacheTest, StoreThenLookupIsBitIdentical)
{
    const std::string dir = scratchDir("svc-cache-roundtrip");
    removeTree(dir);
    svc::ResultCache cache(dir);
    const RunRequest req = tinyRequest();
    const RunResult res = syntheticResult(0.5);

    RunResult out;
    EXPECT_FALSE(cache.lookup(req, out));
    cache.store(req, res);
    ASSERT_TRUE(cache.lookup(req, out));
    EXPECT_TRUE(runResultsEqual(out, res));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    // A repeat hit is served from memory; evicting that layer forces
    // (and verifies) the disk path.
    ASSERT_TRUE(cache.lookup(req, out));
    EXPECT_EQ(cache.stats().memoryHits, 2u);
    cache.evictMemory(svc::requestDigest(req));
    ASSERT_TRUE(cache.lookup(req, out));
    EXPECT_TRUE(runResultsEqual(out, res));
    EXPECT_EQ(cache.stats().memoryHits, 2u) << "third hit came from disk";
    removeTree(dir);
}

TEST(ResultCacheTest, CorruptBlobDemotesToMissAndIsDropped)
{
    const std::string dir = scratchDir("svc-cache-corrupt");
    removeTree(dir);
    svc::ResultCache cache(dir);
    const RunRequest req = tinyRequest();
    cache.store(req, syntheticResult(1.0));
    const std::uint64_t digest = svc::requestDigest(req);

    FaultInjector inj(5);
    ASSERT_TRUE(inj.corruptBlobFile(cache.blobPath(digest)));
    cache.evictMemory(digest); // the disk copy must be re-read

    RunResult out;
    EXPECT_FALSE(cache.lookup(req, out)) << "corrupt blob served";
    EXPECT_EQ(cache.stats().corruptDropped, 1u);
    // The blob is unlinked on detection, so the next lookup is a plain
    // miss, not another CRC failure.
    EXPECT_FALSE(cache.lookup(req, out));
    EXPECT_EQ(cache.stats().corruptDropped, 1u);
    EXPECT_EQ(cache.size(), 0u);

    // The detection contract the injector advertises.
    EXPECT_EQ(detectedBy(FaultClass::CorruptBlob, LlcKind::Reuse),
              Invariant::BlobIntegrity);

    // Re-storing heals the entry.
    cache.store(req, syntheticResult(1.0));
    EXPECT_TRUE(cache.lookup(req, out));
    removeTree(dir);
}

TEST(ResultCacheTest, DigestCollisionMissesWithoutUnlinking)
{
    const std::string dir = scratchDir("svc-cache-collision");
    removeTree(dir);
    const RunRequest alice = tinyRequest(1);
    const RunRequest bob = tinyRequest(2);
    const std::uint64_t bobDigest = svc::requestDigest(bob);

    // Fabricate what a 64-bit collision would look like: a blob under
    // bob's digest whose canonical key bytes are alice's.
    {
        svc::ResultCache cache(dir);
        const std::vector<std::uint8_t> key = svc::canonicalBytes(alice);
        Serializer s;
        s.beginSection("memo");
        s.putU64(bobDigest);
        s.putString(std::string(key.begin(), key.end()));
        s.beginSection("result");
        saveRunResult(s, syntheticResult(9.0));
        s.endSection("result");
        s.endSection("memo");
        s.writeFile(cache.blobPath(bobDigest));
    }

    svc::ResultCache cache(dir); // adopts the blob on recovery
    ASSERT_EQ(cache.size(), 1u);
    RunResult out;
    EXPECT_FALSE(cache.lookup(bob, out))
        << "a collision must never serve the other request's result";
    EXPECT_EQ(cache.stats().corruptDropped, 0u)
        << "a collision is not corruption";
    // The foreign entry survives: it is some other request's valid data.
    struct stat st;
    EXPECT_EQ(::stat(cache.blobPath(bobDigest).c_str(), &st), 0);
    removeTree(dir);
}

TEST(ResultCacheTest, RecoveryAdoptsBlobsDropsTmpAndSurvivesTornEntries)
{
    const std::string dir = scratchDir("svc-cache-recover");
    removeTree(dir);
    const RunRequest a = tinyRequest(1), b = tinyRequest(2);
    const RunResult ra = syntheticResult(1.0), rb = syntheticResult(2.0);
    std::string tornPath;
    {
        svc::ResultCache cache(dir);
        cache.store(a, ra);
        cache.store(b, rb);
        tornPath = cache.blobPath(svc::requestDigest(b));
    }
    // Emulate kill -9: the index never saw entry b (rewrite it with only
    // a), blob b is torn mid-write, and a stale tmp file lingers.
    {
        std::FILE *f = std::fopen((dir + "/cache.index").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("# rc result cache index v1\n", f);
        std::fprintf(f, "entry digest=%s\n",
                     svc::digestHex(svc::requestDigest(a)).c_str());
        std::fclose(f);
    }
    ASSERT_EQ(::truncate(tornPath.c_str(), 9), 0);
    {
        std::FILE *f =
            std::fopen((dir + "/memo-feed.bin.tmp").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("half a write", f);
        std::fclose(f);
    }

    svc::ResultCache cache(dir);
    EXPECT_EQ(cache.size(), 2u) << "both blobs adopted";
    EXPECT_GE(cache.stats().recovered, 1u) << "unindexed blob adopted";
    struct stat st;
    EXPECT_NE(::stat((dir + "/memo-feed.bin.tmp").c_str(), &st), 0)
        << "stale tmp not cleaned";

    RunResult out;
    ASSERT_TRUE(cache.lookup(a, out));
    EXPECT_TRUE(runResultsEqual(out, ra));
    EXPECT_FALSE(cache.lookup(b, out)) << "torn blob served";
    EXPECT_EQ(cache.stats().corruptDropped, 1u);
    removeTree(dir);
}

// ---------------------------------------------------------------------
// flock guard under concurrent multi-process appenders (ctest -L
// integrity runs this under TSan too)
// ---------------------------------------------------------------------

TEST(ServiceLock, ConcurrentProcessAppendersNeverTearRecords)
{
    const std::string dir = scratchDir("svc-lock");
    removeTree(dir);
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    const std::string path = dir + "/shared.index";
    constexpr int children = 4, linesEach = 64;

    std::vector<pid_t> pids;
    for (int c = 0; c < children; ++c) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: append records the way appendIndex does, but split
            // each line into several flushed writes so only the lock
            // keeps them contiguous.
            for (int i = 0; i < linesEach; ++i) {
                std::FILE *f = std::fopen(path.c_str(), "ab");
                if (!f)
                    ::_exit(2);
                try {
                    ScopedFileLock lock(::fileno(f));
                    std::fprintf(f, "entry child=%d", c);
                    std::fflush(f);
                    std::fprintf(f, " line=%d", i);
                    std::fflush(f);
                    std::fprintf(f, " tail=ok\n");
                    std::fflush(f);
                } catch (const SimError &) {
                    std::fclose(f);
                    ::_exit(3);
                }
                std::fclose(f);
            }
            ::_exit(0);
        }
        pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // Every line must be a complete, well-formed record.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    int seen[children] = {0};
    int total = 0;
    char line[128];
    while (std::fgets(line, sizeof(line), f)) {
        int c = -1, i = -1;
        ASSERT_EQ(std::sscanf(line, "entry child=%d line=%d tail=ok", &c,
                              &i),
                  2)
            << "torn record: '" << line << "'";
        ASSERT_GE(c, 0);
        ASSERT_LT(c, children);
        ++seen[c];
        ++total;
    }
    std::fclose(f);
    EXPECT_EQ(total, children * linesEach);
    for (int c = 0; c < children; ++c)
        EXPECT_EQ(seen[c], linesEach) << "child " << c;
    removeTree(dir);
}

// ---------------------------------------------------------------------
// The two service-layer fault classes
// ---------------------------------------------------------------------

TEST(ServiceFaults, ClassSpellingsAndContracts)
{
    FaultInjector inj(1);
    EXPECT_STREQ(toString(FaultClass::TruncatedFrame), "truncated-frame");
    EXPECT_STREQ(toString(FaultClass::CorruptBlob), "corrupt-blob");
    EXPECT_EQ(detectedBy(FaultClass::TruncatedFrame, LlcKind::Reuse),
              Invariant::FrameIntegrity);
    EXPECT_EQ(detectedBy(FaultClass::CorruptBlob, LlcKind::Reuse),
              Invariant::BlobIntegrity);
    FaultClass out;
    EXPECT_TRUE(faultClassFromName("truncated-frame", out));
    EXPECT_EQ(out, FaultClass::TruncatedFrame);
    EXPECT_TRUE(faultClassFromName("corrupt-blob", out));
    EXPECT_EQ(out, FaultClass::CorruptBlob);
}

TEST(ServiceLock, AcquisitionRetriesThroughSignalInterruptions)
{
    const std::string dir = scratchDir("svc-lock-eintr");
    removeTree(dir);
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    const std::string path = dir + "/locked.bin";
    // Two separate open file descriptions: flock held on one must block
    // (not no-op) acquisition through the other.
    const int holder = ::open(path.c_str(), O_CREAT | O_RDWR, 0666);
    const int waiter = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(holder, 0);
    ASSERT_GE(waiter, 0);
    ASSERT_EQ(::flock(holder, LOCK_EX), 0);

    // A handler installed WITHOUT SA_RESTART: each SIGUSR1 makes the
    // blocked flock(2) in ScopedFileLock return EINTR, which the
    // constructor must absorb by retrying instead of throwing.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0;
    struct sigaction old;
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    std::atomic<bool> entered{false}, acquired{false};
    std::thread blocked([&] {
        entered.store(true);
        ScopedFileLock lock(waiter);
        acquired.store(true);
    });
    while (!entered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Pepper the blocked thread with signals; it must neither throw nor
    // acquire while the holder still owns the lock.
    for (int i = 0; i < 20; ++i) {
        ::pthread_kill(blocked.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ASSERT_FALSE(acquired.load())
            << "lock acquired while still held elsewhere";
    }
    ASSERT_EQ(::flock(holder, LOCK_UN), 0);
    blocked.join();
    EXPECT_TRUE(acquired.load());

    ::sigaction(SIGUSR1, &old, nullptr);
    ::close(waiter);
    ::close(holder);
    removeTree(dir);
}

TEST(ServiceFrame, PartialWritesAreCompletedOverATinySendBuffer)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Shrink both buffers so a ~1 MiB frame cannot possibly fit: the
    // writeRaw loop must survive many short send()s, and readExact on
    // the other side must stitch the frame back from many short reads.
    const int tiny = 4096;
    ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &tiny,
                           sizeof(tiny)),
              0);
    ASSERT_EQ(::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &tiny,
                           sizeof(tiny)),
              0);

    std::vector<std::uint8_t> payload(1u << 20);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);

    std::thread writer([&] {
        svc::writeFrame(fds[0], MsgType::SimResult, payload, 10'000);
        ::close(fds[0]);
    });
    // Let the send buffer fill first so the writer really blocks.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Frame got;
    ASSERT_TRUE(svc::readFrame(fds[1], got, 10'000));
    writer.join();
    EXPECT_EQ(got.type, MsgType::SimResult);
    EXPECT_EQ(got.payload, payload); // bitwise, CRC already verified
    ::close(fds[1]);
}

TEST(ServiceFrame, ErrorPayloadCodecRoundTripsEveryKind)
{
    for (const SimError::Kind kind :
         {SimError::Kind::Config, SimError::Kind::Protocol,
          SimError::Kind::Integrity, SimError::Kind::Hang,
          SimError::Kind::Io, SimError::Kind::Crash}) {
        const auto payload =
            svc::encodeErrorPayload(kind, "message for the peer");
        SimError::Kind outKind = SimError::Kind::Io;
        std::string msg;
        ASSERT_TRUE(svc::decodeErrorPayload(payload, outKind, msg));
        EXPECT_EQ(outKind, kind);
        EXPECT_EQ(msg, "message for the peer");
    }
    // Malformed payloads decode to a safe fallback, never a throw.
    SimError::Kind k = SimError::Kind::Io;
    std::string msg;
    EXPECT_FALSE(svc::decodeErrorPayload({0x01, 0x02, 0x03}, k, msg));
}

TEST(ServiceFaults, ChaosSeedsRoundTripAndNeverCollideWithRealSeeds)
{
    for (const FaultClass cls :
         {FaultClass::WorkerCrash, FaultClass::WorkerOom,
          FaultClass::WorkerHang}) {
        const std::uint64_t seed = chaosSeed(cls, 0x1234);
        FaultClass out;
        ASSERT_TRUE(chaosFromSeed(seed, out)) << toString(cls);
        EXPECT_EQ(out, cls);
        EXPECT_EQ(detectedBy(cls, LlcKind::Reuse),
                  Invariant::CrashContainment);
    }
    FaultClass out;
    EXPECT_FALSE(chaosFromSeed(42, out));
    EXPECT_FALSE(chaosFromSeed(0xdeadbeef, out));
    // The magic alone is not enough: the class byte must be a worker
    // class, so non-chaos classes can never detonate.
    EXPECT_FALSE(chaosFromSeed(0xCA05ull << 48, out));
}

TEST(ServiceFaults, CorruptBlobFileRefusesMissingOrEmptyFiles)
{
    FaultInjector inj(2);
    EXPECT_FALSE(inj.corruptBlobFile("/nonexistent/nope.bin"));
    const std::string dir = scratchDir("svc-fault-empty");
    removeTree(dir);
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    const std::string empty = dir + "/empty.bin";
    {
        std::FILE *f = std::fopen(empty.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
    }
    EXPECT_FALSE(inj.corruptBlobFile(empty));
    removeTree(dir);
}

} // namespace
} // namespace rc
