/**
 * @file
 * Resumable-sweep and watchdog tests for the bench harness: a journaled
 * sweep relaunched with resume skips finished runs and reloads their
 * results, a sweep killed mid-run restores from its checkpoints to a
 * bit-identical aggregate, a livelocked run is detected, state-dumped
 * and quarantined while its siblings complete, and a quarantine retry
 * with a generation tracker attached reproduces a clean run exactly.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "analysis/liveness.hh"
#include "harness.hh"
#include "sim/system_config.hh"
#include "snapshot/journal.hh"
#include "snapshot/serializer.hh"

namespace rc
{
namespace
{

bench::RunOptions
smokeOptions(std::uint32_t jobs)
{
    bench::RunOptions opt;
    opt.mixCount = 3;
    opt.scale = 8;
    opt.warmup = 20'000;
    opt.measure = 100'000;
    opt.seed = 42;
    opt.jobs = jobs;
    return opt;
}

/** Per-test sweep directory, unique per process so reruns start clean. */
std::string
sweepDir(const std::string &name)
{
    return std::string(::testing::TempDir()) + name + "-" +
           std::to_string(::getpid());
}

/** Drop any journal/blob/checkpoint litter a previous test left. */
void
scrubDir(const std::string &dir)
{
    std::remove((dir + "/sweep.journal").c_str());
    for (int b = 0; b < 4; ++b)
        for (int r = 0; r < 8; ++r)
            for (const char *pat : {"result-b%d-r%d.bin",
                                    "ckpt-b%d-r%d.ckpt",
                                    "hang-b%d-r%d.dump"}) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), pat, b, r);
                std::remove((dir + "/" + buf).c_str());
            }
}

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

void
expectIdentical(const bench::RunResult &a, const bench::RunResult &b)
{
    EXPECT_EQ(a.aggregateIpc, b.aggregateIpc);
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c)
        EXPECT_EQ(a.coreIpc[c], b.coreIpc[c]) << "core " << c;
    ASSERT_EQ(a.mpki.size(), b.mpki.size());
    for (std::size_t c = 0; c < a.mpki.size(); ++c) {
        EXPECT_EQ(a.mpki[c].l1, b.mpki[c].l1) << "core " << c;
        EXPECT_EQ(a.mpki[c].l2, b.mpki[c].l2) << "core " << c;
        EXPECT_EQ(a.mpki[c].llc, b.mpki[c].llc) << "core " << c;
    }
    EXPECT_EQ(a.fracNeverEnteredData, b.fracNeverEnteredData);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcMemFetches, b.llcMemFetches);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

/** The same full-RunResult persistence the production sweeps use. */
bench::ResultCodec
makeCodec(std::vector<bench::RunResult> &results)
{
    bench::ResultCodec codec;
    codec.save = [&results](std::size_t i, Serializer &s) {
        const bench::RunResult &r = results[i];
        s.putDouble(r.aggregateIpc);
        s.putU64(r.coreIpc.size());
        for (double v : r.coreIpc)
            s.putDouble(v);
        s.putU64(r.mpki.size());
        for (const MpkiTriple &m : r.mpki) {
            s.putDouble(m.l1);
            s.putDouble(m.l2);
            s.putDouble(m.llc);
        }
        s.putDouble(r.fracNeverEnteredData);
        s.putU64(r.llcAccesses);
        s.putU64(r.llcMemFetches);
        s.putU64(r.dramReads);
    };
    codec.load = [&results](std::size_t i, Deserializer &d) {
        bench::RunResult r;
        r.aggregateIpc = d.getDouble();
        r.coreIpc.resize(d.getU64());
        for (double &v : r.coreIpc)
            v = d.getDouble();
        r.mpki.resize(d.getU64());
        for (MpkiTriple &m : r.mpki) {
            m.l1 = d.getDouble();
            m.l2 = d.getDouble();
            m.llc = d.getDouble();
        }
        r.fracNeverEnteredData = d.getDouble();
        r.llcAccesses = d.getU64();
        r.llcMemFetches = d.getU64();
        r.dramReads = d.getU64();
        results[i] = r;
    };
    return codec;
}

/** Serial reference sweep: no journal, no checkpoints, no watchdog. */
std::vector<bench::RunResult>
referenceSweep(const SystemConfig &sys, const std::vector<Mix> &mixes,
               const bench::RunOptions &base)
{
    auto opt = base;
    opt.jobs = 1;
    opt.sweepDir.clear();
    opt.resume = false;
    opt.checkpointInterval = 0;
    opt.crashAfterRefs = 0;
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> out(mixes.size());
    const auto outcomes =
        bench::forEachRun(mixes.size(), opt, [&](std::size_t i) {
            out[i] = bench::runMix(sys, mixes[i], opt);
        });
    for (const bench::RunOutcome &o : outcomes)
        EXPECT_EQ(o.status, bench::RunStatus::Ok) << o.error;
    return out;
}

TEST(HarnessResume, ParseArgsReadsResumeAndWatchdogFlags)
{
    char arg0[] = "bench";
    char arg1[] = "--sweep-dir=/tmp/sweep-x";
    char arg2[] = "--checkpoint-interval=5000";
    char arg3[] = "--hang-timeout=12.5";
    char *argv[] = {arg0, arg1, arg2, arg3, nullptr};
    const auto opt = bench::parseArgs(4, argv);
    EXPECT_EQ(opt.sweepDir, "/tmp/sweep-x");
    EXPECT_FALSE(opt.resume);
    EXPECT_EQ(opt.checkpointInterval, 5000u);
    EXPECT_DOUBLE_EQ(opt.hangTimeout, 12.5);

    char arg4[] = "--resume=/tmp/sweep-y";
    char *argv2[] = {arg0, arg4, nullptr};
    const auto opt2 = bench::parseArgs(2, argv2);
    EXPECT_TRUE(opt2.resume);
    EXPECT_EQ(opt2.sweepDir, "/tmp/sweep-y");

    // The CLIs get the watchdog on by default; RunOptions built directly
    // (tests) keep it off.
    char *argv3[] = {arg0, nullptr};
    EXPECT_DOUBLE_EQ(bench::parseArgs(1, argv3).hangTimeout, 300.0);
    EXPECT_DOUBLE_EQ(bench::RunOptions{}.hangTimeout, 0.0);
}

TEST(HarnessResume, JournaledRunsAreSkippedAndReloadedOnResume)
{
    bench::setExitOnQuarantine(false);
    const SystemConfig sys = baselineSystem(8);
    const auto mixes = makeMixes(3, 8, 7);
    const auto base = smokeOptions(2);
    const auto ref = referenceSweep(sys, mixes, base);

    const std::string dir = sweepDir("resume-skip");
    scrubDir(dir);

    // First launch: everything runs and is journaled.
    auto first = base;
    first.sweepDir = dir;
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> got(mixes.size());
    const auto codec = makeCodec(got);
    const auto outcomes1 =
        bench::forEachRun(mixes.size(), first, [&](std::size_t i) {
            got[i] = bench::runMix(sys, mixes[i], first);
        }, &codec);
    for (const bench::RunOutcome &o : outcomes1) {
        EXPECT_EQ(o.status, bench::RunStatus::Ok) << o.error;
        EXPECT_FALSE(o.fromJournal);
    }
    EXPECT_EQ(SweepJournal::load(dir).size(), mixes.size());

    // Relaunch with resume: no body runs, every slot reloads from its
    // digest-checked blob, and the aggregate matches the serial sweep.
    auto second = first;
    second.resume = true;
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> reloaded(mixes.size());
    const auto codec2 = makeCodec(reloaded);
    std::vector<char> ran(mixes.size(), 0);
    const auto outcomes2 =
        bench::forEachRun(mixes.size(), second, [&](std::size_t i) {
            ran[i] = 1;
            reloaded[i] = bench::runMix(sys, mixes[i], second);
        }, &codec2);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        EXPECT_FALSE(ran[i]) << "run " << i << " re-executed";
        EXPECT_EQ(outcomes2[i].status, bench::RunStatus::Ok);
        EXPECT_TRUE(outcomes2[i].fromJournal);
        expectIdentical(reloaded[i], ref[i]);
    }

    // A corrupted result blob must force a re-run, not bad data.
    auto third = second;
    {
        const std::string blob = dir + "/result-b0-r1.bin";
        std::FILE *f = std::fopen(blob.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 20, SEEK_SET);
        std::fputc(0xff, f);
        std::fclose(f);
    }
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> fixed(mixes.size());
    const auto codec3 = makeCodec(fixed);
    std::vector<char> ran3(mixes.size(), 0);
    const auto outcomes3 =
        bench::forEachRun(mixes.size(), third, [&](std::size_t i) {
            ran3[i] = 1;
            fixed[i] = bench::runMix(sys, mixes[i], third);
        }, &codec3);
    EXPECT_FALSE(ran3[0]);
    EXPECT_TRUE(ran3[1]) << "corrupt blob must re-run its run";
    EXPECT_FALSE(ran3[2]);
    EXPECT_EQ(outcomes3[1].status, bench::RunStatus::Ok);
    EXPECT_FALSE(outcomes3[1].fromJournal);
    for (std::size_t i = 0; i < mixes.size(); ++i)
        expectIdentical(fixed[i], ref[i]);
}

TEST(HarnessResume, CrashedSweepResumesFromCheckpointsBitIdentically)
{
    // The acceptance scenario: a --jobs=4 sweep dies mid-measurement on
    // every run (simulated kill right after a checkpoint lands), is
    // relaunched with resume, restores each run from its checkpoint and
    // produces aggregates bit-identical to an uninterrupted serial
    // sweep.
    bench::setExitOnQuarantine(false);
    const SystemConfig sys = reuseSystem(4.0, 1.0, 0, 8);
    const auto mixes = makeMixes(3, 8, 7);
    const auto base = smokeOptions(4);
    const auto ref = referenceSweep(sys, mixes, base);

    const std::string dir = sweepDir("resume-crash");
    scrubDir(dir);

    auto crashing = base;
    crashing.sweepDir = dir;
    crashing.checkpointInterval = 5'000;
    // ~8.3k references happen in warmup and ~1.3/cycle in measurement,
    // so 40k lands mid-measurement — the checkpoint carries phase 1.
    crashing.crashAfterRefs = 40'000;
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> got(mixes.size());
    const auto codec = makeCodec(got);
    const auto outcomes1 =
        bench::forEachRun(mixes.size(), crashing, [&](std::size_t i) {
            got[i] = bench::runMix(sys, mixes[i], crashing);
        }, &codec);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        EXPECT_EQ(outcomes1[i].status, bench::RunStatus::Quarantined)
            << outcomes1[i].error;
        EXPECT_TRUE(fileExists(dir + "/ckpt-b0-r" + std::to_string(i) +
                               ".ckpt"))
            << "crashed run " << i << " left no checkpoint";
    }

    // Relaunch: quarantined runs re-execute, restoring mid-measurement
    // state from their checkpoints instead of starting over.
    auto resumed = crashing;
    resumed.resume = true;
    resumed.crashAfterRefs = 0;
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> after(mixes.size());
    const auto codec2 = makeCodec(after);
    const auto outcomes2 =
        bench::forEachRun(mixes.size(), resumed, [&](std::size_t i) {
            after[i] = bench::runMix(sys, mixes[i], resumed);
        }, &codec2);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        EXPECT_EQ(outcomes2[i].status, bench::RunStatus::Ok)
            << outcomes2[i].error;
        EXPECT_FALSE(outcomes2[i].fromJournal);
        expectIdentical(after[i], ref[i]);
        EXPECT_FALSE(fileExists(dir + "/ckpt-b0-r" + std::to_string(i) +
                                ".ckpt"))
            << "checkpoint of run " << i << " not removed on success";
    }

    // A third launch skips everything: the journal's latest records win.
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> third(mixes.size());
    const auto codec3 = makeCodec(third);
    std::vector<char> ran(mixes.size(), 0);
    bench::forEachRun(mixes.size(), resumed, [&](std::size_t i) {
        ran[i] = 1;
        third[i] = bench::runMix(sys, mixes[i], resumed);
    }, &codec3);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        EXPECT_FALSE(ran[i]);
        expectIdentical(third[i], ref[i]);
    }
}

TEST(HarnessResume, WatchdogQuarantinesLivelockedRunWhileSiblingsComplete)
{
    bench::setExitOnQuarantine(false);
    const SystemConfig sys = baselineSystem(8);
    const auto mixes = makeMixes(2, 8, 9);

    const std::string dir = sweepDir("resume-hang");
    scrubDir(dir);

    auto opt = smokeOptions(2);
    // Long enough that the livelocked run is still going when the
    // watchdog (100 ms timeout, 25 ms poll) fires.
    opt.measure = 2'000'000;
    opt.hangTimeout = 0.1;
    opt.livelockRun = 1;
    opt.sweepDir = dir;
    bench::resetSweepBatchesForTest();
    std::vector<bench::RunResult> got(mixes.size());
    const auto outcomes =
        bench::forEachRun(mixes.size(), opt, [&](std::size_t i) {
            got[i] = bench::runMix(sys, mixes[i], opt);
        });

    // The healthy sibling completes untouched.
    EXPECT_EQ(outcomes[0].status, bench::RunStatus::Ok)
        << outcomes[0].error;
    EXPECT_GT(got[0].llcAccesses, 0u);

    // The livelocked run: aborted on both attempts, quarantined, with
    // the hang diagnosis in the outcome and a state dump on disk.
    EXPECT_EQ(outcomes[1].status, bench::RunStatus::Quarantined);
    EXPECT_EQ(outcomes[1].attempts, 2u);
    EXPECT_NE(outcomes[1].error.find("no forward progress"),
              std::string::npos)
        << outcomes[1].error;
    const std::string dump = dir + "/hang-b0-r1.dump";
    ASSERT_TRUE(fileExists(dump));
    // The dump is a valid snapshot image (CRC verifies on open).
    Deserializer d(dump);
    d.beginSection("run");
}

TEST(HarnessResume, HangDumpRetentionKeepsOnlyTheNewest)
{
    const std::string dir = sweepDir("resume-retention");
    scrubDir(dir);
    ::mkdir(dir.c_str(), 0777);

    // Twelve dumps with strictly increasing, explicitly set mtimes (the
    // clock's granularity is too coarse to rely on), plus bystanders
    // that must never be touched.
    auto makeFile = [&dir](const std::string &name, long mtime) {
        const std::string path = dir + "/" + name;
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr) << path;
        std::fputs("dump", f);
        std::fclose(f);
        struct timeval times[2] = {{mtime, 0}, {mtime, 0}};
        ASSERT_EQ(::utimes(path.c_str(), times), 0);
    };
    for (int i = 0; i < 12; ++i)
        makeFile("hang-b0-r" + std::to_string(i) + ".dump",
                 1'000'000 + i);
    makeFile("result-b0-r0.bin", 999);     // not a dump: untouched
    makeFile("hang-unrelated.notdump", 998); // wrong suffix: untouched

    bench::pruneHangDumps(dir, 8); // the RunOptions default
    int dumps = 0;
    for (int i = 0; i < 12; ++i)
        if (fileExists(dir + "/hang-b0-r" + std::to_string(i) + ".dump"))
            ++dumps;
    EXPECT_EQ(dumps, 8);
    // Specifically the newest eight: 0..3 pruned, 4..11 kept.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(
            fileExists(dir + "/hang-b0-r" + std::to_string(i) + ".dump"))
            << "oldest dump " << i << " not pruned";
    for (int i = 4; i < 12; ++i)
        EXPECT_TRUE(
            fileExists(dir + "/hang-b0-r" + std::to_string(i) + ".dump"))
            << "newest dump " << i << " wrongly pruned";
    EXPECT_TRUE(fileExists(dir + "/result-b0-r0.bin"));
    EXPECT_TRUE(fileExists(dir + "/hang-unrelated.notdump"));

    // keep == 0 disables retention entirely.
    bench::pruneHangDumps(dir, 0);
    EXPECT_TRUE(fileExists(dir + "/hang-b0-r11.dump"));

    // Tighter cap prunes further; idempotent at the cap.
    bench::pruneHangDumps(dir, 2);
    bench::pruneHangDumps(dir, 2);
    dumps = 0;
    for (int i = 0; i < 12; ++i)
        if (fileExists(dir + "/hang-b0-r" + std::to_string(i) + ".dump"))
            ++dumps;
    EXPECT_EQ(dumps, 2);
    EXPECT_TRUE(fileExists(dir + "/hang-b0-r11.dump"));
    EXPECT_TRUE(fileExists(dir + "/hang-b0-r10.dump"));

    std::remove((dir + "/hang-unrelated.notdump").c_str());
    std::remove((dir + "/hang-b0-r10.dump").c_str());
    std::remove((dir + "/hang-b0-r11.dump").c_str());
}

TEST(HarnessResume, TrackerRetryAfterTransientFaultIsBitIdentical)
{
    // Satellite of the quarantine path: a retry with a GenerationTracker
    // attached starts from a reset tracker and a fresh Cmp, so a
    // transient fault leaves no trace in either the RunResult or the
    // liveness records.
    bench::setExitOnQuarantine(false);
    const SystemConfig sys = reuseSystem(4.0, 1.0, 0, 8);
    const auto mixes = makeMixes(1, 8, 11);
    auto opt = smokeOptions(1);
    opt.checkInterval = 10'000;

    bench::resetSweepBatchesForTest();
    GenerationTracker clean;
    bench::RunResult ref;
    Cycle refStart = 0, refEnd = 0;
    bench::forEachRun(1, opt, [&](std::size_t) {
        ref = bench::runMix(sys, mixes[0], opt, &clean, &refStart,
                            &refEnd);
    });

    auto poisoned = opt;
    poisoned.injectFault = "dir-drop";
    poisoned.injectRun = 0;
    poisoned.injectOnRetry = false;
    bench::resetSweepBatchesForTest();
    GenerationTracker tracker;
    bench::RunResult got;
    Cycle gotStart = 0, gotEnd = 0;
    const auto outcomes = bench::forEachRun(1, poisoned, [&](std::size_t) {
        got = bench::runMix(sys, mixes[0], poisoned, &tracker, &gotStart,
                            &gotEnd);
    });
    ASSERT_EQ(outcomes[0].status, bench::RunStatus::Retried)
        << outcomes[0].error;

    expectIdentical(got, ref);
    EXPECT_EQ(gotStart, refStart);
    EXPECT_EQ(gotEnd, refEnd);
    EXPECT_EQ(tracker.records().size(), clean.records().size());
    EXPECT_EQ(tracker.totalHits(), clean.totalHits());
}

} // namespace
} // namespace rc
