/** @file Unit tests for the synthetic stream generator. */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "workloads/generator.hh"

namespace rc
{
namespace
{

AppProfile
simpleApp()
{
    AppProfile app;
    app.name = "test";
    app.memRatio = 0.35;
    app.writeRatio = 0.25;
    app.codeBytes = 16 * 1024;
    Component stream;
    stream.pattern = AccessPattern::Stream;
    stream.weight = 0.1;
    stream.regionBytes = 64ull << 20;
    Component zipf;
    zipf.pattern = AccessPattern::Zipf;
    zipf.weight = 0.05;
    zipf.regionBytes = 1ull << 20;
    zipf.zipfS = 0.9;
    app.components = {stream, zipf};
    return app;
}

TEST(Generator, Deterministic)
{
    SyntheticStream a(simpleApp(), 0, 42, 8);
    SyntheticStream b(simpleApp(), 0, 42, 8);
    for (int i = 0; i < 5000; ++i) {
        const MemRef ra = a.next();
        const MemRef rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.op, rb.op);
        EXPECT_EQ(ra.think, rb.think);
        EXPECT_EQ(ra.isInstr, rb.isInstr);
    }
}

TEST(Generator, CoresGetDisjointPrivateRegions)
{
    SyntheticStream a(simpleApp(), 0, 42, 8);
    SyntheticStream b(simpleApp(), 1, 42, 8);
    std::unordered_set<Addr> lines_a;
    for (int i = 0; i < 20000; ++i)
        lines_a.insert(lineAlign(a.next().addr));
    for (int i = 0; i < 20000; ++i)
        EXPECT_EQ(lines_a.count(lineAlign(b.next().addr)), 0u);
}

TEST(Generator, MemRatioRealized)
{
    SyntheticStream s(simpleApp(), 0, 42, 8);
    std::uint64_t instr = 0, data_refs = 0;
    for (int i = 0; i < 100000; ++i) {
        const MemRef r = s.next();
        if (r.isInstr)
            continue;
        instr += r.think + 1;
        ++data_refs;
    }
    const double ratio = static_cast<double>(data_refs) /
                         static_cast<double>(instr);
    EXPECT_NEAR(ratio, 0.35, 0.01);
}

TEST(Generator, WriteRatioRealized)
{
    SyntheticStream s(simpleApp(), 0, 42, 8);
    std::uint64_t writes = 0, data_refs = 0;
    for (int i = 0; i < 100000; ++i) {
        const MemRef r = s.next();
        if (r.isInstr) {
            EXPECT_EQ(r.op, MemOp::Read);
            continue;
        }
        ++data_refs;
        writes += r.op == MemOp::Write;
    }
    EXPECT_NEAR(static_cast<double>(writes) / data_refs, 0.25, 0.02);
}

TEST(Generator, InstructionFetchCadence)
{
    SyntheticStream s(simpleApp(), 0, 42, 8);
    std::uint64_t instr = 0, fetches = 0;
    for (int i = 0; i < 100000; ++i) {
        const MemRef r = s.next();
        if (r.isInstr)
            ++fetches;
        else
            instr += r.think + 1;
    }
    // One fetch per 32 instructions.
    EXPECT_NEAR(static_cast<double>(instr) / fetches, 32.0, 1.0);
}

TEST(Generator, ZipfConcentratesTraffic)
{
    // The hottest few lines of the Zipf component must receive a
    // disproportionate share - that is the reuse locality of Section 2.
    AppProfile app = simpleApp();
    app.components[1].weight = 0.5; // crank up zipf for signal
    app.components[0].weight = 0.0;
    SyntheticStream s(app, 0, 42, 8);
    std::unordered_map<Addr, std::uint64_t> counts;
    std::uint64_t zipf_total = 0;
    for (int i = 0; i < 200000; ++i) {
        const MemRef r = s.next();
        if (r.isInstr)
            continue;
        ++counts[lineAlign(r.addr)];
        ++zipf_total;
    }
    std::vector<std::uint64_t> sorted;
    for (const auto &[a, c] : counts)
        sorted.push_back(c);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    std::uint64_t top_decile = 0;
    for (std::size_t i = 0; i < counts.size() / 10 + 1; ++i)
        top_decile += sorted[i];
    EXPECT_GT(static_cast<double>(top_decile) / zipf_total, 0.4);
}

TEST(Generator, StreamNeverRepeatsWithinWindow)
{
    AppProfile app = simpleApp();
    app.components[0].weight = 1.0;
    app.components[1].weight = 0.0;
    SyntheticStream s(app, 0, 42, 8);
    std::unordered_set<Addr> seen;
    for (int i = 0; i < 50000; ++i) {
        const MemRef r = s.next();
        if (r.isInstr)
            continue;
        EXPECT_TRUE(seen.insert(lineAlign(r.addr)).second);
    }
}

TEST(Generator, PhaseChangesRelocateHotSet)
{
    AppProfile app = simpleApp();
    app.components.clear(); // hot loop only
    app.phaseRefs = 80'000; // scaled by 8 -> 10'000 refs per phase
    SyntheticStream s(app, 0, 42, 8);
    // Collect the data-line set in two windows separated by > one phase.
    auto collect = [&s](int n) {
        std::set<Addr> lines;
        int taken = 0;
        while (taken < n) {
            const MemRef r = s.next();
            if (r.isInstr)
                continue;
            lines.insert(lineAlign(r.addr));
            ++taken;
        }
        return lines;
    };
    const auto w1 = collect(2000);
    collect(30000); // cross several phase boundaries
    const auto w2 = collect(2000);
    std::size_t common = 0;
    for (Addr a : w2)
        common += w1.count(a);
    // The hot window moved inside its universe: overlap is partial at
    // most (identical windows would mean phases are broken).
    EXPECT_LT(common, std::min(w1.size(), w2.size()));
}

TEST(Generator, ScaleShrinksRegions)
{
    AppProfile app = simpleApp();
    app.components[0].weight = 0.0;
    app.components[1].weight = 1.0; // zipf over 1 MB
    SyntheticStream s1(app, 0, 42, 1);
    SyntheticStream s8(app, 0, 42, 8);
    auto span = [](SyntheticStream &s) {
        std::set<Addr> lines;
        for (int i = 0; i < 50000; ++i) {
            const MemRef r = s.next();
            if (!r.isInstr)
                lines.insert(lineAlign(r.addr));
        }
        return lines.size();
    };
    EXPECT_GT(span(s1), 2 * span(s8));
}

TEST(Generator, AddressesFitPhysicalSpace)
{
    SyntheticStream s(simpleApp(), 7, 42, 1, 8);
    for (int i = 0; i < 50000; ++i)
        EXPECT_LT(s.next().addr, Addr{1} << physAddrBits);
}

TEST(Generator, Label)
{
    SyntheticStream s(simpleApp(), 0, 42, 8);
    EXPECT_STREQ(s.label(), "test");
}

TEST(Generator, SharedComponentsOverlapAcrossCores)
{
    AppProfile app;
    app.name = "par";
    Component shared;
    shared.pattern = AccessPattern::Zipf;
    shared.weight = 1.0;
    shared.regionBytes = 256 * 1024;
    shared.shared = true;
    shared.sharedId = 9;
    app.components = {shared};
    SyntheticStream a(app, 0, 42, 8);
    SyntheticStream b(app, 5, 42, 8);
    std::unordered_set<Addr> lines_a;
    for (int i = 0; i < 20000; ++i) {
        const MemRef r = a.next();
        if (!r.isInstr)
            lines_a.insert(lineAlign(r.addr));
    }
    std::uint64_t overlap = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        const MemRef r = b.next();
        if (r.isInstr)
            continue;
        ++total;
        overlap += lines_a.count(lineAlign(r.addr));
    }
    EXPECT_GT(static_cast<double>(overlap) / total, 0.5);
}

} // namespace
} // namespace rc
