/** @file Unit tests for the system-configuration presets. */

#include <gtest/gtest.h>

#include "sim/system_config.hh"

namespace rc
{
namespace
{

TEST(SystemConfig, BaselineMatchesTable4AtFullScale)
{
    const SystemConfig sys = baselineSystem(1);
    EXPECT_EQ(sys.numCores, 8u);
    EXPECT_EQ(sys.priv.l1Bytes, 32u * 1024);
    EXPECT_EQ(sys.priv.l1Ways, 4u);
    EXPECT_EQ(sys.priv.l1Latency, 1u);
    EXPECT_EQ(sys.priv.l2Bytes, 256u * 1024);
    EXPECT_EQ(sys.priv.l2Ways, 8u);
    EXPECT_EQ(sys.priv.l2Latency, 7u);
    EXPECT_EQ(sys.conv.capacityBytes, 8ull << 20);
    EXPECT_EQ(sys.conv.ways, 16u);
    EXPECT_EQ(sys.conv.repl, ReplKind::LRU);
    EXPECT_EQ(sys.memory.numChannels, 1u);
    EXPECT_EQ(sys.xbar.numBanks, 4u);
    EXPECT_EQ(sys.xbar.mshrPerBank, 16u);
    EXPECT_EQ(sys.llcKind, LlcKind::Conventional);
}

TEST(SystemConfig, ScalingDividesEveryCapacity)
{
    const SystemConfig sys = baselineSystem(8);
    EXPECT_EQ(sys.priv.l1Bytes, 4u * 1024);
    EXPECT_EQ(sys.priv.l2Bytes, 32u * 1024);
    EXPECT_EQ(sys.conv.capacityBytes, 1ull << 20);
    EXPECT_EQ(sys.capacityScale, 8u);
    EXPECT_EQ(sys.scaled(8ull << 20), 1ull << 20);
}

TEST(SystemConfig, ReusePresetSelectsKindAndSizes)
{
    const SystemConfig sys = reuseSystem(4.0, 1.0, 0, 1);
    EXPECT_EQ(sys.llcKind, LlcKind::Reuse);
    EXPECT_EQ(sys.reuse.tagEquivBytes, 4ull << 20);
    EXPECT_EQ(sys.reuse.dataBytes, 1ull << 20);
    EXPECT_EQ(sys.reuse.dataWays, 0u);
    EXPECT_EQ(sys.reuse.dataRepl, ReplKind::Clock);
    EXPECT_EQ(sys.reuse.tagRepl, ReplKind::NRR);
    EXPECT_EQ(sys.reuse.numCores, 8u);
}

TEST(SystemConfig, ReusePresetSetAssociative)
{
    const SystemConfig sys = reuseSystem(8.0, 2.0, 16, 1);
    EXPECT_EQ(sys.reuse.dataWays, 16u);
    EXPECT_EQ(sys.reuse.dataRepl, ReplKind::NRU);
}

TEST(SystemConfig, FractionalMbSizes)
{
    const SystemConfig sys = reuseSystem(4.0, 0.5, 0, 1);
    EXPECT_EQ(sys.reuse.dataBytes, 512u * 1024);
}

TEST(SystemConfig, ConventionalPresetReplacement)
{
    const SystemConfig sys = conventionalSystem(16.0, ReplKind::DRRIP, 2);
    EXPECT_EQ(sys.llcKind, LlcKind::Conventional);
    EXPECT_EQ(sys.conv.capacityBytes, 8ull << 20);
    EXPECT_EQ(sys.conv.repl, ReplKind::DRRIP);
}

TEST(SystemConfig, NcidPreset)
{
    const SystemConfig sys = ncidSystem(8.0, 1.0, 1);
    EXPECT_EQ(sys.llcKind, LlcKind::Ncid);
    EXPECT_EQ(sys.ncid.tagEquivBytes, 8ull << 20);
    EXPECT_EQ(sys.ncid.dataBytes, 1ull << 20);
}

TEST(SystemConfig, ZeroScaleRejected)
{
    EXPECT_DEATH(baselineSystem(0), "scale");
}

} // namespace
} // namespace rc
