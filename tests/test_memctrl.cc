/** @file Unit tests for the multi-channel memory controller. */

#include <gtest/gtest.h>

#include "mem/memctrl.hh"

namespace rc
{
namespace
{

TEST(MemCtrl, SingleChannelCountsEverything)
{
    MemCtrlConfig cfg;
    cfg.numChannels = 1;
    MemCtrl mc(cfg);
    mc.readLine(0, 0);
    mc.readLine(64, 0);
    mc.writeLine(128, 0);
    EXPECT_EQ(mc.totalReads(), 2u);
    EXPECT_EQ(mc.totalWrites(), 1u);
}

TEST(MemCtrl, LinesInterleaveAcrossChannels)
{
    MemCtrlConfig cfg;
    cfg.numChannels = 2;
    MemCtrl mc(cfg);
    // Consecutive lines alternate channels.
    for (int i = 0; i < 8; ++i)
        mc.readLine(static_cast<Addr>(i) * lineBytes, 0);
    EXPECT_EQ(mc.channels()[0]->stats().lookup("reads"), 4u);
    EXPECT_EQ(mc.channels()[1]->stats().lookup("reads"), 4u);
}

TEST(MemCtrl, MoreChannelsReduceContention)
{
    // Section 5.8 of the paper: extra channels relieve bus pressure.
    // Issue a burst of same-cycle reads and compare the final completion.
    auto burst = [](std::uint32_t channels) {
        MemCtrlConfig cfg;
        cfg.numChannels = channels;
        MemCtrl mc(cfg);
        Cycle last = 0;
        for (int i = 0; i < 64; ++i)
            last = std::max(last,
                            mc.readLine(static_cast<Addr>(i) * lineBytes, 0));
        return last;
    };
    EXPECT_GT(burst(1), burst(2));
    EXPECT_GT(burst(2), burst(4));
}

TEST(MemCtrl, ResetPropagates)
{
    MemCtrlConfig cfg;
    cfg.numChannels = 2;
    MemCtrl mc(cfg);
    mc.readLine(0, 0);
    mc.reset();
    EXPECT_EQ(mc.totalReads(), 0u);
}

TEST(MemCtrl, ZeroChannelsRejected)
{
    MemCtrlConfig cfg;
    cfg.numChannels = 0;
    EXPECT_DEATH(MemCtrl mc(cfg), "at least one memory channel");
}

} // namespace
} // namespace rc
