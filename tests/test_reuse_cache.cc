/** @file Unit tests for the reuse cache (the paper's core contribution). */

#include <gtest/gtest.h>

#include <vector>

#include "reuse/reuse_cache.hh"

namespace rc
{
namespace
{

class MockRecaller : public RecallHandler
{
  public:
    bool
    recall(Addr line_addr, std::uint32_t mask) override
    {
        recalls.push_back({line_addr, mask});
        return nextDirty;
    }

    bool
    downgrade(Addr line_addr, std::uint32_t mask) override
    {
        downgrades.push_back({line_addr, mask});
        return nextDirty;
    }

    std::vector<std::pair<Addr, std::uint32_t>> recalls;
    std::vector<std::pair<Addr, std::uint32_t>> downgrades;
    bool nextDirty = false;
};

class ReuseCacheTest : public ::testing::Test
{
  protected:
    ReuseCacheTest() : mem(MemCtrlConfig{}), llc(makeCfg(), mem)
    {
        llc.setRecallHandler(&recaller);
    }

    static ReuseCacheConfig
    makeCfg()
    {
        // Tag array "64 KB-eq" (1024 tags, 64 sets), 16 KB FA data
        // array (256 lines) - a miniature RC-4/1.
        ReuseCacheConfig cfg =
            ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
        cfg.numCores = 8;
        return cfg;
    }

    LlcResponse
    req(Addr a, CoreId core, ProtoEvent e, Cycle now = 0)
    {
        return llc.request(LlcRequest{a, core, e, now});
    }

    static Addr line(std::uint64_t n) { return n * lineBytes; }

    MemCtrl mem;
    MockRecaller recaller;
    ReuseCache llc;
};

TEST_F(ReuseCacheTest, MissAllocatesTagOnly)
{
    const auto r = req(line(1), 0, ProtoEvent::GETS);
    EXPECT_FALSE(r.tagHit);
    EXPECT_TRUE(r.memFetched);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::TO);
    EXPECT_EQ(llc.dataArray().residentCount(), 0u)
        << "a miss must not allocate data";
    EXPECT_EQ(mem.totalReads(), 1u);
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, SecondAccessDetectsReuseAndPaysDoubleFetch)
{
    req(line(1), 0, ProtoEvent::GETS);
    llc.evictNotify(line(1), 0, false, 10); // line left the private cache
    const auto r = req(line(1), 0, ProtoEvent::GETS, 20);
    EXPECT_TRUE(r.tagHit);
    EXPECT_FALSE(r.dataHit) << "data was not there yet";
    EXPECT_TRUE(r.memFetched) << "the reuse re-reads main memory";
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::S);
    EXPECT_EQ(llc.dataArray().residentCount(), 1u);
    EXPECT_EQ(mem.totalReads(), 2u) << "paid the memory cost twice";
    EXPECT_EQ(llc.stats().lookup("tagHitsTagOnly"), 1u);
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, ThirdAccessHitsDataArray)
{
    req(line(1), 0, ProtoEvent::GETS);
    llc.evictNotify(line(1), 0, false, 0);
    req(line(1), 0, ProtoEvent::GETS);
    llc.evictNotify(line(1), 0, false, 0);
    const auto r = req(line(1), 0, ProtoEvent::GETS, 100);
    EXPECT_TRUE(r.dataHit);
    EXPECT_FALSE(r.memFetched);
    EXPECT_EQ(r.doneAt,
              100 + makeCfg().tagLatency + makeCfg().dataLatency);
    EXPECT_EQ(mem.totalReads(), 2u);
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, ReuseFromDifferentCoreCounts)
{
    // Reuse detection is independent of which private cache requests
    // (paper Section 6): core 1's access to a line core 0 loaded is a
    // reuse.
    req(line(1), 0, ProtoEvent::GETS);
    const auto r = req(line(1), 1, ProtoEvent::GETS);
    EXPECT_TRUE(r.tagHit);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::S);
    EXPECT_EQ(llc.dataArray().residentCount(), 1u);
}

TEST_F(ReuseCacheTest, DataEvictionRevertsTagToTagOnly)
{
    // Fill the FA data array (256 lines) with reused lines, then one
    // more: the Clock victim's tag must revert to TO via its reverse
    // pointer.
    const std::uint64_t n = llc.dataArray().geometry().numLines();
    for (std::uint64_t i = 0; i < n + 1; ++i) {
        req(line(i), 0, ProtoEvent::GETS);
        llc.evictNotify(line(i), 0, false, 0);
        req(line(i), 0, ProtoEvent::GETS); // reuse -> data alloc
        llc.evictNotify(line(i), 0, false, 0);
    }
    EXPECT_EQ(llc.dataArray().residentCount(), n);
    EXPECT_EQ(llc.stats().lookup("dataEvictions"), 1u);
    // Exactly one line is back to TO with its tag still present.
    std::uint64_t tag_only = 0;
    for (std::uint64_t i = 0; i < n + 1; ++i)
        tag_only += llc.stateOf(line(i)) == LlcState::TO;
    EXPECT_EQ(tag_only, 1u);
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, EvictedDataReusedAgainReloads)
{
    const std::uint64_t n = llc.dataArray().geometry().numLines();
    // Line 0 becomes reused, then its data gets evicted by pressure.
    req(line(0), 0, ProtoEvent::GETS);
    llc.evictNotify(line(0), 0, false, 0);
    req(line(0), 0, ProtoEvent::GETS);
    llc.evictNotify(line(0), 0, false, 0);
    for (std::uint64_t i = 1; i <= n; ++i) {
        req(line(i), 0, ProtoEvent::GETS);
        llc.evictNotify(line(i), 0, false, 0);
        req(line(i), 0, ProtoEvent::GETS);
        llc.evictNotify(line(i), 0, false, 0);
    }
    // If line 0's data was the victim, a further access is a TO hit that
    // allocates again.
    if (llc.stateOf(line(0)) == LlcState::TO) {
        const auto r = req(line(0), 0, ProtoEvent::GETS);
        EXPECT_TRUE(r.memFetched);
        EXPECT_EQ(llc.stateOf(line(0)), LlcState::S);
    }
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, DirtyDataEvictionWritesBack)
{
    // Make line 0 dirty at the SLLC: GETX, then PUTX absorbs the data.
    req(line(0), 0, ProtoEvent::GETX);
    req(line(0), 1, ProtoEvent::GETS); // reuse; owner intervention
    // State is M (absorbed dirty data from owner).
    EXPECT_EQ(llc.stateOf(line(0)), LlcState::M);
    const auto writes_before = mem.totalWrites();
    // Evict its data entry by filling the array with other reused lines.
    const std::uint64_t n = llc.dataArray().geometry().numLines();
    for (std::uint64_t i = 1; i <= n; ++i) {
        req(line(i), 0, ProtoEvent::GETS);
        llc.evictNotify(line(i), 0, false, 0);
        req(line(i), 0, ProtoEvent::GETS);
        llc.evictNotify(line(i), 0, false, 0);
    }
    EXPECT_GT(mem.totalWrites(), writes_before);
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, UpgradeDoesNotAllocateData)
{
    req(line(1), 0, ProtoEvent::GETS);
    const auto r = req(line(1), 0, ProtoEvent::UPG);
    EXPECT_TRUE(r.tagHit);
    EXPECT_FALSE(r.memFetched);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::TO);
    EXPECT_EQ(llc.dataArray().residentCount(), 0u);
    EXPECT_EQ(llc.dirOf(line(1))->owner(), 0u);
}

TEST_F(ReuseCacheTest, PutxOnTagOnlyWritesThrough)
{
    req(line(1), 0, ProtoEvent::GETX);
    const auto writes_before = mem.totalWrites();
    llc.evictNotify(line(1), 0, true, 50);
    EXPECT_EQ(mem.totalWrites(), writes_before + 1);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::TO);
    EXPECT_FALSE(llc.dirOf(line(1))->hasOwner());
    EXPECT_EQ(llc.dataArray().residentCount(), 0u);
}

TEST_F(ReuseCacheTest, ReuseWithOwnerAvoidsMemoryFetch)
{
    req(line(1), 0, ProtoEvent::GETX); // core 0 owns a dirty copy
    recaller.nextDirty = true;
    const auto reads_before = mem.totalReads();
    const auto r = req(line(1), 1, ProtoEvent::GETS);
    EXPECT_TRUE(r.tagHit);
    EXPECT_FALSE(r.memFetched) << "data comes from the owner";
    EXPECT_EQ(mem.totalReads(), reads_before);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::M);
    EXPECT_EQ(llc.dataArray().residentCount(), 1u);
    ASSERT_EQ(recaller.downgrades.size(), 1u);
    EXPECT_EQ(recaller.downgrades[0].second, 1u << 0);
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, TagEvictionFreesDataAndRecalls)
{
    // Fill one tag set (16 ways) with reused lines held by core 2.
    // Tag geometry: 64 sets, so same-set lines are 64 apart.
    std::vector<Addr> lines;
    for (std::uint64_t i = 0; i < 16; ++i)
        lines.push_back(line(1 + 64 * i));
    for (Addr a : lines) {
        req(a, 2, ProtoEvent::GETS);
        llc.evictNotify(a, 2, false, 0);
        req(a, 2, ProtoEvent::GETS); // reuse, data allocated, present
    }
    EXPECT_EQ(llc.dataArray().residentCount(), 16u);
    recaller.recalls.clear();
    // A 17th line forces a tag eviction; every candidate is present in
    // core 2's caches, so a recall must happen.
    req(line(1 + 64 * 16), 3, ProtoEvent::GETS);
    EXPECT_EQ(recaller.recalls.size(), 1u);
    EXPECT_EQ(llc.dataArray().residentCount(), 15u)
        << "the victim's data entry must be freed";
    EXPECT_EQ(llc.stats().lookup("inclusionRecalls"), 1u);
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, NrrPrefersTagOnlyNonPresentVictims)
{
    // 15 reused lines (NRR bit clear) + 1 fresh tag-only line that has
    // also left the private caches: the fresh one must be the victim.
    for (std::uint64_t i = 0; i < 15; ++i) {
        const Addr a = line(1 + 64 * i);
        req(a, 2, ProtoEvent::GETS);
        llc.evictNotify(a, 2, false, 0);
        req(a, 2, ProtoEvent::GETS);
        llc.evictNotify(a, 2, false, 0);
    }
    const Addr fresh = line(1 + 64 * 15);
    req(fresh, 2, ProtoEvent::GETS);
    llc.evictNotify(fresh, 2, false, 0);
    req(line(1 + 64 * 16), 3, ProtoEvent::GETS);
    EXPECT_EQ(llc.stateOf(fresh), LlcState::I) << "NRR victimizes the "
        "not-recently-reused, non-present line";
    llc.checkInvariants();
}

TEST_F(ReuseCacheTest, FractionNeverEnteredData)
{
    // 10 tags allocated, 2 reused.
    for (std::uint64_t i = 0; i < 10; ++i) {
        req(line(i), 0, ProtoEvent::GETS);
        llc.evictNotify(line(i), 0, false, 0);
    }
    req(line(0), 0, ProtoEvent::GETS);
    req(line(1), 0, ProtoEvent::GETS);
    EXPECT_NEAR(llc.fractionNeverEnteredData(), 0.8, 1e-9);
}

TEST_F(ReuseCacheTest, ObserverSeesDataArrayEventsOnly)
{
    struct Obs : LlcObserver
    {
        int fills = 0, hits = 0, evicts = 0;
        void onDataFill(Addr, Cycle) override { ++fills; }
        void onDataHit(Addr, Cycle) override { ++hits; }
        void onDataEvict(Addr, Cycle) override { ++evicts; }
    } obs;
    llc.setObserver(&obs);
    req(line(1), 0, ProtoEvent::GETS); // tag-only: no event
    EXPECT_EQ(obs.fills, 0);
    llc.evictNotify(line(1), 0, false, 0);
    req(line(1), 0, ProtoEvent::GETS); // reuse: data fill
    EXPECT_EQ(obs.fills, 1);
    llc.evictNotify(line(1), 0, false, 0);
    req(line(1), 0, ProtoEvent::GETS); // data hit
    EXPECT_EQ(obs.hits, 1);
}

TEST_F(ReuseCacheTest, PerCoreMissCounters)
{
    req(line(1), 4, ProtoEvent::GETS); // tag miss
    llc.evictNotify(line(1), 4, false, 0);
    req(line(1), 4, ProtoEvent::GETS); // TO hit: memory fetch -> miss
    llc.evictNotify(line(1), 4, false, 0);
    req(line(1), 4, ProtoEvent::GETS); // data hit
    EXPECT_EQ(llc.missesBy(4), 2u);
    EXPECT_EQ(llc.accessesBy(4), 3u);
}

TEST_F(ReuseCacheTest, SetAssociativeDataArrayWorks)
{
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 16);
    MemCtrl m2(MemCtrlConfig{});
    ReuseCache rc(cfg, m2);
    MockRecaller rec;
    rc.setRecallHandler(&rec);
    EXPECT_EQ(rc.dataArray().geometry().numSets(), 16u);
    EXPECT_EQ(rc.dataArray().geometry().numWays(), 16u);
    for (std::uint64_t i = 0; i < 600; ++i) {
        rc.request(LlcRequest{line(i), 0, ProtoEvent::GETS, 0});
        rc.evictNotify(line(i), 0, false, 0);
        rc.request(LlcRequest{line(i), 0, ProtoEvent::GETS, 0});
        rc.evictNotify(line(i), 0, false, 0);
        rc.checkInvariants();
    }
    EXPECT_EQ(rc.dataArray().residentCount(),
              rc.dataArray().geometry().numLines());
}

TEST_F(ReuseCacheTest, DescribeNamesThePaperConfig)
{
    EXPECT_NE(llc.describe().find("RC-"), std::string::npos);
    EXPECT_NE(llc.describe().find("FA"), std::string::npos);
}

TEST(ReuseCacheConfigTest, StandardPicksClockForFa)
{
    const auto fa = ReuseCacheConfig::standard(4u << 20, 1u << 20, 0);
    EXPECT_EQ(fa.dataRepl, ReplKind::Clock);
    const auto sa = ReuseCacheConfig::standard(4u << 20, 1u << 20, 16);
    EXPECT_EQ(sa.dataRepl, ReplKind::NRU);
}

TEST(ReuseCacheConfigTest, RejectsMoreDataSetsThanTagSets)
{
    // 64 KB-eq tags (64 sets of 16) with a 32 KB 2-way data array would
    // need 256 data sets > 64 tag sets.
    ReuseCacheConfig cfg = ReuseCacheConfig::standard(64 * 1024,
                                                      32 * 1024, 2);
    MemCtrl mem(MemCtrlConfig{});
    EXPECT_DEATH(ReuseCache rc(cfg, mem), "more sets");
}

} // namespace
} // namespace rc
