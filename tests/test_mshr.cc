/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace rc
{
namespace
{

TEST(Mshr, AllocateAndMerge)
{
    MshrFile m(4, "m");
    EXPECT_EQ(m.request(0x1000, 0, 100), MshrFile::Outcome::Allocated);
    EXPECT_EQ(m.request(0x1000, 10, 100), MshrFile::Outcome::Merged);
    EXPECT_EQ(m.request(0x1040, 10, 100), MshrFile::Outcome::Allocated);
    EXPECT_EQ(m.occupancy(20), 2u);
    EXPECT_EQ(m.stats().lookup("merges"), 1u);
}

TEST(Mshr, SubLineAddressesMerge)
{
    MshrFile m(4, "m");
    m.request(0x1000, 0, 100);
    EXPECT_EQ(m.request(0x1004, 0, 100), MshrFile::Outcome::Merged);
}

TEST(Mshr, FullRejects)
{
    MshrFile m(2, "m");
    m.request(0x0, 0, 1000);
    m.request(0x40, 0, 1000);
    EXPECT_EQ(m.request(0x80, 0, 1000), MshrFile::Outcome::Full);
    EXPECT_EQ(m.stats().lookup("fullStalls"), 1u);
}

TEST(Mshr, LazyRetirementFreesEntries)
{
    MshrFile m(2, "m");
    m.request(0x0, 0, 50);
    m.request(0x40, 0, 60);
    // At cycle 55 the first entry has completed.
    EXPECT_EQ(m.request(0x80, 55, 200), MshrFile::Outcome::Allocated);
    EXPECT_EQ(m.occupancy(55), 2u);
}

TEST(Mshr, TrackedUntil)
{
    MshrFile m(2, "m");
    m.request(0x1000, 0, 123);
    EXPECT_EQ(m.trackedUntil(0x1000), 123u);
    EXPECT_EQ(m.trackedUntil(0x2000), neverCycle);
}

TEST(Mshr, EarliestRelease)
{
    MshrFile m(4, "m");
    m.request(0x0, 0, 300);
    m.request(0x40, 0, 100);
    m.request(0x80, 0, 200);
    EXPECT_EQ(m.earliestRelease(), 100u);
}

TEST(Mshr, EarliestReleaseEmpty)
{
    MshrFile m(4, "m");
    EXPECT_EQ(m.earliestRelease(), neverCycle);
}

TEST(Mshr, PeakOccupancyTracked)
{
    MshrFile m(4, "m");
    m.request(0x0, 0, 1000);
    m.request(0x40, 0, 1000);
    m.request(0x80, 0, 1000);
    EXPECT_EQ(m.stats().lookup("peakOccupancy"), 3u);
}

TEST(Mshr, Reset)
{
    MshrFile m(2, "m");
    m.request(0x0, 0, 1000);
    m.reset();
    EXPECT_EQ(m.occupancy(0), 0u);
    EXPECT_EQ(m.stats().lookup("allocations"), 0u);
}

} // namespace
} // namespace rc
