/** @file Unit tests for common/bitops.hh. */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/types.hh"

namespace rc
{
namespace
{

TEST(Bitops, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
    EXPECT_EQ(floorLog2((1ull << 20) - 1), 19u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2((1ull << 20) + 1), 21u);
}

TEST(Bitops, BitsFor)
{
    // Table 2 of the paper: a 16-way data array needs 4 forward-pointer
    // bits, a 16 K-line fully-associative one needs 14.
    EXPECT_EQ(bitsFor(16), 4u);
    EXPECT_EQ(bitsFor(16 * 1024), 14u);
    EXPECT_EQ(bitsFor(1), 0u);
    EXPECT_EQ(bitsFor(17), 5u);
}

TEST(Bitops, BitField)
{
    EXPECT_EQ(bitField(0xdeadbeef, 0, 4), 0xfull);
    EXPECT_EQ(bitField(0xdeadbeef, 4, 8), 0xeeull);
    EXPECT_EQ(bitField(0xff, 4, 0), 0ull);
    EXPECT_EQ(bitField(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(bitField(~0ull, 1, 64), ~0ull >> 1);
}

TEST(Bitops, LineHelpers)
{
    EXPECT_EQ(lineAlign(0x12345), 0x12340ull);
    EXPECT_EQ(lineAlign(0x12340), 0x12340ull);
    EXPECT_EQ(lineNumber(0x12345), 0x12345ull >> 6);
    EXPECT_EQ(lineBytes, 64u);
    EXPECT_EQ(1u << lineShift, lineBytes);
}

} // namespace
} // namespace rc
