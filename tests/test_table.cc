/** @file Unit tests for the ASCII table renderer and formatters. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace rc
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t("My Table");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("My Table"), std::string::npos);
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1 "), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, MismatchedRowPanics)
{
    Table t("t");
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "row width");
}

TEST(Table, ColumnsAligned)
{
    Table t("t");
    t.header({"x", "y"});
    t.row({"longvalue", "1"});
    std::ostringstream os;
    t.print(os);
    // Both data and header cells are padded to the same width, so every
    // line has equal length.
    std::istringstream in(os.str());
    std::string line;
    std::size_t width = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] != '|')
            continue;
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Formatters, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(Formatters, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.167, 1), "16.7%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Formatters, FmtInt)
{
    EXPECT_EQ(fmtInt(0), "0");
    EXPECT_EQ(fmtInt(999), "999");
    EXPECT_EQ(fmtInt(1000), "1,000");
    EXPECT_EQ(fmtInt(69888), "69,888");
    EXPECT_EQ(fmtInt(1234567890), "1,234,567,890");
}

} // namespace
} // namespace rc
