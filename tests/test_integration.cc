/** @file
 * Integration tests: whole-system runs asserting the paper's qualitative
 * claims on small workloads (fast versions of the bench experiments).
 */

#include <gtest/gtest.h>

#include "analysis/hitdist.hh"
#include "analysis/liveness.hh"
#include "sim/cmp.hh"
#include "workloads/mixes.hh"
#include "workloads/parallel.hh"

namespace rc
{
namespace
{

constexpr Cycle warmup = 1'000'000;
constexpr Cycle window = 4'000'000;

double
runIpc(const SystemConfig &sys, const Mix &mix)
{
    Cmp cmp(sys, buildMixStreams(mix, 42, 8));
    cmp.run(warmup);
    cmp.beginMeasurement();
    cmp.run(window);
    return cmp.aggregateIpc();
}

TEST(Integration, ReuseCacheTracksBaselineAtEighthData)
{
    // Headline claim (scaled-down, one mix): RC-8/1 performs within a
    // few percent of the conventional 8 MB baseline.
    const Mix mix = exampleMix();
    const double base = runIpc(baselineSystem(8), mix);
    const double rc = runIpc(reuseSystem(8, 1, 0, 8), mix);
    EXPECT_GT(rc / base, 0.9);
    EXPECT_LT(rc / base, 1.15);
}

TEST(Integration, BiggerDataArrayNeverLoses)
{
    const Mix mix = exampleMix();
    const double rc_small = runIpc(reuseSystem(8, 0.5, 0, 8), mix);
    const double rc_large = runIpc(reuseSystem(8, 4, 0, 8), mix);
    EXPECT_GE(rc_large, rc_small * 0.995);
}

TEST(Integration, ConventionalSizeOrdering)
{
    const Mix mix = exampleMix();
    const double c4 = runIpc(conventionalSystem(4, ReplKind::LRU, 8), mix);
    const double c8 = runIpc(baselineSystem(8), mix);
    const double c16 = runIpc(conventionalSystem(16, ReplKind::LRU, 8),
                              mix);
    EXPECT_LT(c4, c8);
    EXPECT_LE(c8, c16 * 1.005);
}

TEST(Integration, SelectiveAllocationDiscardsMostLines)
{
    // Table 6: >= 80% of tags never enter the data array even in the
    // most demanding workloads; the mean is ~93-95%.
    Cmp cmp(reuseSystem(8, 1, 0, 8), buildMixStreams(exampleMix(), 42, 8));
    cmp.run(warmup + window);
    const auto &rc = dynamic_cast<const ReuseCache &>(cmp.llc());
    EXPECT_GT(rc.fractionNeverEnteredData(), 0.7);
}

TEST(Integration, LiveFractionLowUnderLruBaseline)
{
    // Section 2.1: most lines in a conventional LRU SLLC are dead.
    GenerationTracker tracker;
    Cmp cmp(baselineSystem(8), buildMixStreams(exampleMix(), 42, 8));
    cmp.llc().setObserver(&tracker);
    cmp.run(warmup);
    const Cycle start = cmp.now();
    cmp.run(window);
    tracker.finalize(cmp.now());
    const ConvLlcConfig &cfg = baselineSystem(8).conv;
    const double live = averageLiveFraction(
        tracker.records(), start, cmp.now(), 20'000,
        cfg.capacityBytes / lineBytes);
    EXPECT_LT(live, 0.45);
    EXPECT_GT(live, 0.02);
}

TEST(Integration, ReuseCacheLiveFractionHigherThanBaseline)
{
    // Figure 7: the reuse cache data array holds mostly live lines.
    auto live_of = [](const SystemConfig &sys, std::uint64_t cap_lines) {
        GenerationTracker tracker;
        Cmp cmp(sys, buildMixStreams(exampleMix(), 42, 8));
        cmp.llc().setObserver(&tracker);
        cmp.run(warmup);
        const Cycle start = cmp.now();
        cmp.run(window);
        tracker.finalize(cmp.now());
        return averageLiveFraction(tracker.records(), start, cmp.now(),
                                   20'000, cap_lines);
    };
    const SystemConfig base = baselineSystem(8);
    const SystemConfig rc = reuseSystem(8, 2, 0, 8);
    const double base_live =
        live_of(base, base.conv.capacityBytes / lineBytes);
    const double rc_live =
        live_of(rc, rc.reuse.dataBytes / lineBytes);
    EXPECT_GT(rc_live, base_live);
}

TEST(Integration, HitsConcentratedInFewGenerations)
{
    // Figure 1b: a small fraction of generations receives most hits.
    GenerationTracker tracker;
    Cmp cmp(baselineSystem(8), buildMixStreams(exampleMix(), 42, 8));
    cmp.llc().setObserver(&tracker);
    cmp.run(warmup + window);
    tracker.finalize(cmp.now());
    const HitDistribution d = hitDistribution(tracker.records(), 200);
    ASSERT_GT(d.generations, 1000u);
    EXPECT_LT(d.usefulFraction, 0.5) << "most generations must be dead";
    // The hottest 1% of generations (2 groups) holds a large share.
    EXPECT_GT(d.groups[0].hitShare + d.groups[1].hitShare, 0.2);
}

TEST(Integration, ReuseCacheBeatsNcidAtEqualBudget)
{
    // Figure 9's ordering on one mix.
    const Mix mix = exampleMix();
    const double rc = runIpc(reuseSystem(8, 1, 0, 8), mix);
    const double ncid = runIpc(ncidSystem(8, 1, 8), mix);
    EXPECT_GT(rc, ncid);
}

TEST(Integration, ParallelWorkloadRunsCoherently)
{
    const AppProfile *ocean = findParallelProfile("ocean");
    ASSERT_NE(ocean, nullptr);
    SystemConfig sys = reuseSystem(8, 1, 0, 8);
    Cmp cmp(sys, buildParallelStreams(*ocean, sys.numCores, 42, 8));
    cmp.run(500'000);
    cmp.beginMeasurement();
    cmp.run(1'000'000);
    EXPECT_GT(cmp.aggregateIpc(), 0.1);
    // Sharing must actually occur: interventions or invalidations.
    const StatSet &s = cmp.llc().stats();
    EXPECT_GT(s.lookup("invalidationsSent") + s.lookup("interventions"),
              0u);
}

TEST(Integration, MemoryChannelsBarelyMatter)
{
    // Section 5.8: 2 or 4 channels change performance by ~1%.
    const Mix mix = exampleMix();
    SystemConfig one = baselineSystem(8);
    SystemConfig four = baselineSystem(8);
    four.memory.numChannels = 4;
    const double ipc1 = runIpc(one, mix);
    const double ipc4 = runIpc(four, mix);
    EXPECT_GT(ipc4, ipc1 * 0.99); // more channels never hurt
    EXPECT_LT(ipc4, ipc1 * 1.10); // and buy little
}

TEST(Integration, DataAssociativityBarelyMatters)
{
    // Figure 4: 16-way vs fully associative differ by ~1%.
    const Mix mix = exampleMix();
    const double fa = runIpc(reuseSystem(8, 1, 0, 8), mix);
    const double sa = runIpc(reuseSystem(8, 1, 16, 8), mix);
    EXPECT_NEAR(sa / fa, 1.0, 0.05);
}

} // namespace
} // namespace rc
