/** @file Unit tests for the optional reuse predictor extension. */

#include <gtest/gtest.h>

#include "reuse/reuse_cache.hh"
#include "reuse/reuse_predictor.hh"

namespace rc
{
namespace
{

TEST(ReusePredictor, DefaultsToNotReused)
{
    ReusePredictor p(1024);
    // Weakly not-reused initialization: Section 2 says ~95% of lines
    // never show reuse, so the cold prediction must be "no".
    for (Addr a = 0; a < 64 * 1024; a += 64)
        EXPECT_FALSE(p.predictReused(a));
}

TEST(ReusePredictor, LearnsReuse)
{
    ReusePredictor p(1024);
    const Addr line = 0x4000;
    p.train(line, true);
    EXPECT_TRUE(p.predictReused(line)); // 1 -> 2 crosses the threshold
}

TEST(ReusePredictor, Hysteresis)
{
    ReusePredictor p(1024);
    const Addr line = 0x4000;
    p.train(line, true);
    p.train(line, true); // saturate at 3
    p.train(line, false); // back to 2: still predicted reused
    EXPECT_TRUE(p.predictReused(line));
    p.train(line, false);
    EXPECT_FALSE(p.predictReused(line));
}

TEST(ReusePredictor, SaturatesBothEnds)
{
    ReusePredictor p(64);
    const Addr line = 0x80;
    for (int i = 0; i < 10; ++i)
        p.train(line, false);
    EXPECT_FALSE(p.predictReused(line));
    for (int i = 0; i < 2; ++i)
        p.train(line, true);
    EXPECT_TRUE(p.predictReused(line));
}

TEST(ReusePredictor, RoundsUpToPowerOfTwo)
{
    ReusePredictor p(1000);
    EXPECT_EQ(p.size(), 1024u);
    EXPECT_EQ(p.costBits(), 2048u);
}

TEST(ReusePredictor, HashSpreadsNeighbours)
{
    // Consecutive lines must not all alias to the same entry.
    ReusePredictor p(4096);
    p.train(0, true);
    p.train(0, true);
    int affected = 0;
    for (Addr a = 64; a < 64 * 64; a += 64)
        affected += p.predictReused(a);
    EXPECT_LT(affected, 4);
}

// ---------------------------------------------------------------------
// Integration with the reuse cache.
// ---------------------------------------------------------------------

class NullRecaller : public RecallHandler
{
  public:
    bool recall(Addr, std::uint32_t) override { return false; }
    bool downgrade(Addr, std::uint32_t) override { return false; }
};

TEST(PredictedReuseCache, LearnedLinesSkipTagOnlyStage)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
    cfg.usePredictor = true;
    // LRU tags make the conflict evictions below deterministic (NRR
    // would protect the reused line, which is the behaviour the main
    // reuse-cache tests cover).
    cfg.tagRepl = ReplKind::LRU;
    ReuseCache llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);

    const Addr line = 0x9000;
    // Teach the predictor: generations of this line get reused, then
    // evicted (train happens at tag eviction).  Conflict-evict by
    // filling the tag set (64 sets -> same-set stride is 64 lines).
    for (int round = 0; round < 2; ++round) {
        llc.request(LlcRequest{line, 0, ProtoEvent::GETS, 0});
        llc.evictNotify(line, 0, false, 0);
        llc.request(LlcRequest{line, 0, ProtoEvent::GETS, 0}); // reuse
        llc.evictNotify(line, 0, false, 0);
        for (std::uint64_t i = 1; i <= 16; ++i) {
            const Addr other = line + i * 64 * lineBytes;
            llc.request(LlcRequest{other, 1, ProtoEvent::GETS, 0});
            llc.evictNotify(other, 1, false, 0);
        }
    }
    ASSERT_EQ(llc.stateOf(line), LlcState::I) << "line must be evicted";

    // Next miss on the line: predicted reused -> data allocated at once.
    const auto r = llc.request(LlcRequest{line, 0, ProtoEvent::GETS, 0});
    EXPECT_FALSE(r.tagHit);
    EXPECT_EQ(llc.stateOf(line), LlcState::S)
        << "predicted fill must install data with the tag";
    EXPECT_GE(llc.stats().lookup("predictedFills"), 1u);
    llc.checkInvariants();

    // And the next access is a data hit with no extra memory fetch.
    const auto reads = mem.totalReads();
    const auto r2 = llc.request(LlcRequest{line, 1, ProtoEvent::GETS, 0});
    EXPECT_TRUE(r2.dataHit);
    EXPECT_EQ(mem.totalReads(), reads);
}

TEST(PredictedReuseCache, DisabledByDefault)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
    ReuseCache llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    llc.request(LlcRequest{0x9000, 0, ProtoEvent::GETS, 0});
    EXPECT_EQ(llc.stateOf(0x9000), LlcState::TO);
    EXPECT_EQ(llc.stats().lookup("predictedFills"), 0u);
}

TEST(PredictedReuseCache, WastedPredictionsCounted)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
    cfg.usePredictor = true;
    cfg.tagRepl = ReplKind::LRU; // deterministic conflict evictions
    ReuseCache llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);

    // Train a line as reused, then stop reusing it: its next predicted
    // generation is wasted and the counter must notice at eviction.
    const Addr line = 0xa000;
    auto conflict_evict = [&](int salt) {
        for (std::uint64_t i = 1; i <= 16; ++i) {
            const Addr other =
                line + (i + 100ull * salt) * 64 * lineBytes;
            llc.request(LlcRequest{other, 1, ProtoEvent::GETS, 0});
            llc.evictNotify(other, 1, false, 0);
        }
    };
    for (int round = 0; round < 2; ++round) {
        llc.request(LlcRequest{line, 0, ProtoEvent::GETS, 0});
        llc.evictNotify(line, 0, false, 0);
        llc.request(LlcRequest{line, 0, ProtoEvent::GETS, 0});
        llc.evictNotify(line, 0, false, 0);
        conflict_evict(round);
    }
    // Predicted fill, never touched again, evicted:
    llc.request(LlcRequest{line, 0, ProtoEvent::GETS, 0});
    llc.evictNotify(line, 0, false, 0);
    conflict_evict(7);
    EXPECT_GE(llc.stats().lookup("predictedFillsWasted"), 1u);
    llc.checkInvariants();
}

} // namespace
} // namespace rc
