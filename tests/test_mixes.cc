/** @file Unit tests for workload mixes and parallel analogs. */

#include <gtest/gtest.h>

#include <map>

#include "workloads/mixes.hh"
#include "workloads/parallel.hh"

namespace rc
{
namespace
{

TEST(Profiles, TwentyNineSpecAnalogs)
{
    EXPECT_EQ(specProfiles().size(), 29u);
}

TEST(Profiles, FindByName)
{
    EXPECT_NE(findProfile("mcf"), nullptr);
    EXPECT_NE(findProfile("libquantum"), nullptr);
    EXPECT_EQ(findProfile("doom"), nullptr);
}

TEST(Profiles, WeightsWithinBudget)
{
    for (const auto &app : specProfiles()) {
        double sum = 0.0;
        for (const auto &c : app.components) {
            EXPECT_GT(c.weight, 0.0) << app.name;
            sum += c.weight;
        }
        EXPECT_LE(sum, 1.0) << app.name;
    }
}

TEST(Profiles, PureStreamingAppsHaveNoReuseComponent)
{
    // libquantum: L2 MPKI == LLC MPKI == 36.6, so the analog must not
    // contain a Zipf (SLLC-reuse) component.
    const AppProfile *lq = findProfile("libquantum");
    ASSERT_NE(lq, nullptr);
    for (const auto &c : lq->components)
        EXPECT_NE(c.pattern, AccessPattern::Zipf);
}

TEST(Profiles, ReuseHeavyAppsHaveZipf)
{
    for (const char *name : {"mcf", "omnetpp", "gcc", "bzip2"}) {
        const AppProfile *app = findProfile(name);
        ASSERT_NE(app, nullptr) << name;
        bool has_zipf = false;
        for (const auto &c : app->components)
            has_zipf |= c.pattern == AccessPattern::Zipf;
        EXPECT_TRUE(has_zipf) << name;
    }
}

TEST(Profiles, MakeSpecAnalogRejectsNonMonotoneMpki)
{
    EXPECT_DEATH(makeSpecAnalog("bad", 1.0, 2.0, 0.5, MissStyle::Chase),
                 "monotonically");
}

TEST(Mixes, CountAndWidth)
{
    const auto mixes = makeMixes(100, 8, 7);
    EXPECT_EQ(mixes.size(), 100u);
    for (const auto &m : mixes)
        EXPECT_EQ(m.apps.size(), 8u);
}

TEST(Mixes, Reproducible)
{
    const auto a = makeMixes(10, 8, 7);
    const auto b = makeMixes(10, 8, 7);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].apps, b[i].apps);
    const auto c = makeMixes(10, 8, 8);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].apps != c[i].apps;
    EXPECT_TRUE(any_diff);
}

TEST(Mixes, OccurrencesRoughlyBalanced)
{
    // Paper Section 4.1: across 100 mixes of 8, applications appear
    // 16-35 times (mean 27.6).  Check ours is in the same ballpark.
    const auto mixes = makeMixes(100, 8, 7);
    std::map<std::string, int> occurrences;
    for (const auto &m : mixes)
        for (const auto &a : m.apps)
            ++occurrences[a];
    for (const auto &[name, n] : occurrences) {
        EXPECT_GT(n, 10) << name;
        EXPECT_LT(n, 50) << name;
    }
}

TEST(Mixes, ExampleWorkloadMatchesPaperFootnote)
{
    const Mix m = exampleMix();
    const std::vector<std::string> expect{
        "gcc", "mcf", "povray", "leslie3d", "h264ref", "lbm", "namd",
        "gcc"};
    EXPECT_EQ(m.apps, expect);
    EXPECT_EQ(m.label(), "gcc+mcf+povray+leslie3d+h264ref+lbm+namd+gcc");
}

TEST(Mixes, BuildStreamsOnePerCore)
{
    const auto streams = buildMixStreams(exampleMix(), 42, 8);
    EXPECT_EQ(streams.size(), 8u);
    EXPECT_STREQ(streams[0]->label(), "gcc");
    EXPECT_STREQ(streams[1]->label(), "mcf");
}

TEST(Mixes, UnknownAppIsFatal)
{
    Mix bad;
    bad.apps = {"nonexistent"};
    EXPECT_DEATH(buildMixStreams(bad, 42, 8), "unknown application");
}

TEST(Parallel, FiveApplications)
{
    const auto &apps = parallelProfiles();
    ASSERT_EQ(apps.size(), 5u);
    EXPECT_EQ(apps[0].name, "blackscholes");
    EXPECT_EQ(apps[1].name, "canneal");
    EXPECT_EQ(apps[2].name, "ferret");
    EXPECT_EQ(apps[3].name, "fluidanimate");
    EXPECT_EQ(apps[4].name, "ocean");
}

TEST(Parallel, EveryAppHasASharedComponent)
{
    for (const auto &app : parallelProfiles()) {
        bool shared = false;
        for (const auto &c : app.components)
            shared |= c.shared;
        EXPECT_TRUE(shared) << app.name;
    }
}

TEST(Parallel, SharedIdsDistinct)
{
    std::map<std::uint32_t, std::string> ids;
    for (const auto &app : parallelProfiles()) {
        for (const auto &c : app.components) {
            if (!c.shared)
                continue;
            auto [it, fresh] = ids.emplace(c.sharedId, app.name);
            EXPECT_TRUE(fresh) << app.name << " reuses shared id of "
                               << it->second;
        }
    }
}

TEST(Parallel, BuildStreams)
{
    const auto streams =
        buildParallelStreams(parallelProfiles()[1], 8, 42, 8);
    EXPECT_EQ(streams.size(), 8u);
    EXPECT_STREQ(streams[3]->label(), "canneal");
}

TEST(Parallel, FindByName)
{
    EXPECT_NE(findParallelProfile("ocean"), nullptr);
    EXPECT_EQ(findParallelProfile("mcf"), nullptr);
}

} // namespace
} // namespace rc
