/**
 * @file
 * Harness-level fan-out tests: a grouped sweep (one front-end pass per
 * mix feeding every SLLC config) must aggregate bit-identically to
 * independent runMix calls, at any job count, with telemetry enabled,
 * and when a journaled sweep forces the independent fallback.  Also
 * covers the baseline memoization: repeated sweeps with identical
 * deterministic options reuse results instead of re-simulating.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <cstdlib>

#include "cache/replacement.hh"
#include "harness.hh"
#include "sim/feed_cache.hh"
#include "sim/system_config.hh"
#include "workloads/mixes.hh"

namespace rc
{
namespace
{

bench::RunOptions
smokeOptions(std::uint32_t jobs)
{
    bench::RunOptions opt;
    opt.mixCount = 2;
    opt.scale = 8;
    opt.warmup = 20'000;
    opt.measure = 100'000;
    opt.seed = 42;
    opt.jobs = jobs;
    return opt;
}

/** Every SLLC organization; all share the front-end prefix. */
std::vector<SystemConfig>
sllcMatrix(std::uint32_t scale)
{
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(conventionalSystem(8.0, ReplKind::LRU, scale));
    cfgs.push_back(reuseSystem(4.0, 1.0, 16, scale));
    cfgs.push_back(ncidSystem(8.0, 1.0, scale));
    return cfgs;
}

void
expectIdentical(const bench::RunResult &a, const bench::RunResult &b,
                const char *what)
{
    EXPECT_EQ(a.aggregateIpc, b.aggregateIpc) << what;
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size()) << what;
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c)
        EXPECT_EQ(a.coreIpc[c], b.coreIpc[c]) << what << " core " << c;
    ASSERT_EQ(a.mpki.size(), b.mpki.size()) << what;
    for (std::size_t c = 0; c < a.mpki.size(); ++c) {
        EXPECT_EQ(a.mpki[c].l1, b.mpki[c].l1) << what << " core " << c;
        EXPECT_EQ(a.mpki[c].l2, b.mpki[c].l2) << what << " core " << c;
        EXPECT_EQ(a.mpki[c].llc, b.mpki[c].llc) << what << " core " << c;
    }
    EXPECT_EQ(a.fracNeverEnteredData, b.fracNeverEnteredData) << what;
    EXPECT_EQ(a.llcAccesses, b.llcAccesses) << what;
    EXPECT_EQ(a.llcMemFetches, b.llcMemFetches) << what;
    EXPECT_EQ(a.dramReads, b.dramReads) << what;
}

TEST(HarnessFanout, GroupedSweepMatchesIndependentRuns)
{
    const auto opt = smokeOptions(1);
    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto cfgs = sllcMatrix(opt.scale);
    bench::clearBaselineMemoForTest();

    const auto grouped = bench::runConfigsOverMixes(cfgs, mixes, opt);
    ASSERT_EQ(grouped.size(), cfgs.size());

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        ASSERT_EQ(grouped[i].size(), mixes.size());
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            const bench::RunResult ref =
                bench::runMix(cfgs[i], mixes[m], opt);
            char what[64];
            std::snprintf(what, sizeof(what), "config %zu mix %zu", i, m);
            expectIdentical(ref, grouped[i][m], what);
        }
    }
}

TEST(HarnessFanout, GroupedSweepBitIdenticalAcrossJobCounts)
{
    const auto serial = smokeOptions(1);
    const auto parallel = smokeOptions(4);
    const auto mixes = makeMixes(serial.mixCount, 8, 7);
    const auto cfgs = sllcMatrix(serial.scale);
    bench::clearBaselineMemoForTest();

    const auto a = bench::runConfigsOverMixes(cfgs, mixes, serial);
    const auto b = bench::runConfigsOverMixes(cfgs, mixes, parallel);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            char what[64];
            std::snprintf(what, sizeof(what), "config %zu mix %zu", i, m);
            expectIdentical(a[i][m], b[i][m], what);
        }
    }
}

/** Configs with different front-end prefixes must not share a feed —
 *  and the sweep must still produce correct independent results. */
TEST(HarnessFanout, MixedPrefixesSplitIntoGroups)
{
    const auto opt = smokeOptions(2);
    const auto mixes = makeMixes(1, 8, 7);
    std::vector<SystemConfig> cfgs = sllcMatrix(opt.scale);
    SystemConfig bigL2 = baselineSystem(opt.scale);
    bigL2.priv.l2Bytes *= 2;
    cfgs.push_back(bigL2);
    bench::clearBaselineMemoForTest();

    const auto grouped = bench::runConfigsOverMixes(cfgs, mixes, opt);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const bench::RunResult ref = bench::runMix(cfgs[i], mixes[0], opt);
        char what[32];
        std::snprintf(what, sizeof(what), "config %zu", i);
        expectIdentical(ref, grouped[i][0], what);
    }
}

TEST(HarnessFanout, FanoutWithTelemetryMatchesPlainRun)
{
    auto opt = smokeOptions(1);
    const auto mixes = makeMixes(1, 8, 7);
    const auto cfgs = sllcMatrix(opt.scale);
    bench::clearBaselineMemoForTest();

    const auto plain = bench::runConfigsOverMixes(cfgs, mixes, opt);

    opt.telemetryDir = ::testing::TempDir() + "rc-fanout-telemetry";
    opt.sampleInterval = 25'000;
    const auto instrumented = bench::runConfigsOverMixes(cfgs, mixes, opt);

    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expectIdentical(plain[i][0], instrumented[i][0], "telemetry");
}

TEST(HarnessFanout, RunMixFanoutMatchesRunMix)
{
    const auto opt = smokeOptions(1);
    const auto mixes = makeMixes(1, 8, 7);
    const auto cfgs = sllcMatrix(opt.scale);

    const auto fanned = bench::runMixFanout(cfgs, mixes[0], opt);
    ASSERT_EQ(fanned.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const bench::RunResult ref = bench::runMix(cfgs[i], mixes[0], opt);
        char what[32];
        std::snprintf(what, sizeof(what), "config %zu", i);
        expectIdentical(ref, fanned[i], what);
    }
}

/**
 * Feed-cached sweeps through the harness wiring (opt.feedCacheDir):
 * the cold capturing sweep and the warm replaying sweep must both be
 * bit-identical to a feed-free sweep, and the second sweep must
 * actually hit the blob the first one stored.
 */
TEST(HarnessFanout, FeedCachedSweepMatchesPlain)
{
    const auto plainOpt = smokeOptions(1);
    const auto mixes = makeMixes(plainOpt.mixCount, 8, 7);
    const auto cfgs = sllcMatrix(plainOpt.scale);
    bench::clearBaselineMemoForTest();
    const auto plain = bench::runConfigsOverMixes(cfgs, mixes, plainOpt);

    auto opt = plainOpt;
    opt.feedCacheDir = ::testing::TempDir() + "rc-harness-feedcache";
    const std::string rm = "rm -rf '" + opt.feedCacheDir + "'";
    (void)std::system(rm.c_str());

    bench::clearBaselineMemoForTest();
    const auto cold = bench::runConfigsOverMixes(cfgs, mixes, opt);
    const auto fc = FeedCache::open(opt.feedCacheDir);
    EXPECT_EQ(fc->size(), mixes.size()) << "one blob per mix expected";
    const auto statsAfterCold = fc->stats();
    EXPECT_EQ(statsAfterCold.stores, mixes.size());

    bench::clearBaselineMemoForTest();
    const auto warm = bench::runConfigsOverMixes(cfgs, mixes, opt);
    EXPECT_EQ(fc->stats().hits, statsAfterCold.hits + mixes.size())
        << "warm sweep should replay every mix's blob";

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            char what[64];
            std::snprintf(what, sizeof(what), "config %zu mix %zu", i, m);
            expectIdentical(plain[i][m], cold[i][m], what);
            expectIdentical(plain[i][m], warm[i][m], what);
        }
    }
    (void)std::system(rm.c_str());
}

/**
 * Baseline memoization: a second sweep with identical deterministic
 * options must reuse the first sweep's results without re-simulating.
 * The proof is the perf record: forEachRun accounts every executed
 * simulation, so a full memo hit adds no sims.
 */
TEST(HarnessFanout, RepeatedBaselineSweepIsMemoized)
{
    const auto opt = smokeOptions(1);
    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const SystemConfig baseline = baselineSystem(opt.scale);
    bench::clearBaselineMemoForTest();

    const auto first = bench::runBaselineOverMixes(baseline, mixes, opt);
    const std::string recordAfterFirst = bench::perfRecordJson();
    const auto second = bench::runBaselineOverMixes(baseline, mixes, opt);
    const std::string recordAfterSecond = bench::perfRecordJson();

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdentical(first[i], second[i], "memoized baseline");
    EXPECT_EQ(recordAfterFirst, recordAfterSecond)
        << "the second sweep re-simulated memoized runs";

    // A different seed must miss the memo and simulate again.
    auto reseeded = opt;
    reseeded.seed = opt.seed + 1;
    (void)bench::runBaselineOverMixes(baseline, mixes, reseeded);
    EXPECT_NE(bench::perfRecordJson(), recordAfterSecond)
        << "a different seed should not hit the memo";
    bench::clearBaselineMemoForTest();
}

} // namespace
} // namespace rc
