/**
 * @file
 * Telemetry subsystem tests: ring-buffer overflow discipline (drop vs
 * spill), Chrome trace_event JSON validity and per-track timestamp
 * monotonicity, epoch deltas summing to end-of-run aggregates, the
 * simulation staying bit-identical with telemetry on vs off, and the
 * sampler surviving checkpoint/restore mid-measurement.
 */

#include <cctype>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cmp.hh"
#include "sim/system_config.hh"
#include "snapshot/serializer.hh"
#include "telemetry/epoch_sampler.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_event.hh"
#include "verify/integrity.hh"
#include "workloads/mixes.hh"

namespace rc
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

// ---------------------------------------------------------------------
// Minimal JSON validator for the subset the exporter emits (objects,
// arrays, strings without exotic escapes, numbers, literals).  Consumes
// one value and returns the position after it; returns npos on any
// syntax error.

std::size_t skipValue(const std::string &s, std::size_t i);

std::size_t
skipWs(const std::string &s, std::size_t i)
{
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    return i;
}

std::size_t
skipString(const std::string &s, std::size_t i)
{
    if (i >= s.size() || s[i] != '"')
        return std::string::npos;
    for (++i; i < s.size(); ++i) {
        if (s[i] == '\\')
            ++i;
        else if (s[i] == '"')
            return i + 1;
    }
    return std::string::npos;
}

std::size_t
skipContainer(const std::string &s, std::size_t i, char open, char close,
              bool keyed)
{
    i = skipWs(s, i + 1); // past the opener
    if (i < s.size() && s[i] == close)
        return i + 1;
    while (i < s.size()) {
        if (keyed) {
            i = skipString(s, skipWs(s, i));
            if (i == std::string::npos)
                return i;
            i = skipWs(s, i);
            if (i >= s.size() || s[i] != ':')
                return std::string::npos;
            ++i;
        }
        i = skipValue(s, skipWs(s, i));
        if (i == std::string::npos)
            return i;
        i = skipWs(s, i);
        if (i < s.size() && s[i] == ',') {
            i = skipWs(s, i + 1);
            continue;
        }
        if (i < s.size() && s[i] == close)
            return i + 1;
        return std::string::npos;
    }
    return std::string::npos;
    (void)open;
}

std::size_t
skipValue(const std::string &s, std::size_t i)
{
    if (i >= s.size())
        return std::string::npos;
    switch (s[i]) {
    case '{':
        return skipContainer(s, i, '{', '}', true);
    case '[':
        return skipContainer(s, i, '[', ']', false);
    case '"':
        return skipString(s, i);
    default:
        break;
    }
    static const char *literals[] = {"true", "false", "null"};
    for (const char *lit : literals) {
        if (s.compare(i, std::strlen(lit), lit) == 0)
            return i + std::strlen(lit);
    }
    std::size_t j = i;
    if (j < s.size() && (s[j] == '-' || s[j] == '+'))
        ++j;
    const std::size_t digits = j;
    while (j < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '.' ||
            s[j] == 'e' || s[j] == 'E' || s[j] == '-' || s[j] == '+'))
        ++j;
    return j > digits ? j : std::string::npos;
}

::testing::AssertionResult
isValidJson(const std::string &s)
{
    const std::size_t end = skipValue(s, skipWs(s, 0));
    if (end == std::string::npos)
        return ::testing::AssertionFailure() << "JSON syntax error";
    if (skipWs(s, end) != s.size())
        return ::testing::AssertionFailure()
               << "trailing garbage at offset " << end;
    return ::testing::AssertionSuccess();
}

/** Extract the integer following @p key inside the object at @p pos. */
std::uint64_t
numberAfter(const std::string &s, std::size_t pos, const std::string &key)
{
    const std::size_t k = s.find("\"" + key + "\":", pos);
    EXPECT_NE(k, std::string::npos) << key;
    return std::strtoull(s.c_str() + k + key.size() + 3, nullptr, 10);
}

// ---------------------------------------------------------------------
// Ring-buffer overflow discipline.

TEST(TelemetryTracer, OverflowWithoutSpillDropsNewestAndCounts)
{
    EventTracer::Config cfg;
    cfg.ringCapacity = 8;
    EventTracer tracer(cfg);
    for (std::uint64_t i = 0; i < 20; ++i)
        tracer.record("evt", TraceDomain::Sim, 0, i);

    EXPECT_EQ(tracer.recorded(), 8u);
    EXPECT_EQ(tracer.dropped(), 12u);
    EXPECT_EQ(tracer.spilled(), 0u);

    std::ostringstream os;
    tracer.exportChromeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(isValidJson(json)) << json;
    // The survivors are the oldest 8 (drop-newest), and the drop count
    // is surfaced in the metadata.
    std::size_t events = 0;
    for (std::size_t p = json.find("\"evt\""); p != std::string::npos;
         p = json.find("\"evt\"", p + 1))
        ++events;
    EXPECT_EQ(events, 8u);
    EXPECT_NE(json.find("\"droppedEvents\":12"), std::string::npos)
        << json;
}

TEST(TelemetryTracer, OverflowWithSpillKeepsEveryEvent)
{
    EventTracer::Config cfg;
    cfg.ringCapacity = 8;
    cfg.spillPath = tempPath("tracer-overflow.spill");
    EventTracer tracer(cfg);
    for (std::uint64_t i = 0; i < 20; ++i)
        tracer.record("evt", TraceDomain::Sim, 0, i * 10);

    EXPECT_EQ(tracer.recorded(), 20u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_GE(tracer.spilled(), 12u);

    std::ostringstream os;
    tracer.exportChromeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(isValidJson(json)) << json;
    std::size_t events = 0;
    for (std::size_t p = json.find("\"evt\""); p != std::string::npos;
         p = json.find("\"evt\"", p + 1))
        ++events;
    EXPECT_EQ(events, 20u);
    EXPECT_EQ(json.find("droppedEvents"), std::string::npos);
}

TEST(TelemetryTracer, SpillFileIsRemovedByDestructor)
{
    const std::string path = tempPath("tracer-cleanup.spill");
    {
        EventTracer::Config cfg;
        cfg.ringCapacity = 2;
        cfg.spillPath = path;
        EventTracer tracer(cfg);
        for (std::uint64_t i = 0; i < 10; ++i)
            tracer.record("evt", TraceDomain::Sim, 0, i);
        struct ::stat st;
        EXPECT_EQ(::stat(path.c_str(), &st), 0);
    }
    struct ::stat st;
    EXPECT_NE(::stat(path.c_str(), &st), 0);
}

// ---------------------------------------------------------------------
// Export format.

TEST(TelemetryTracer, ExportIsValidAndTracksAreMonotonic)
{
    EventTracer tracer;
    // Deliberately out of order within each track, spread over both
    // clock domains and several tracks.
    tracer.record("a", TraceDomain::Sim, 0, 50, 5, 1);
    tracer.record("b", TraceDomain::Sim, 0, 10);
    tracer.record("c", TraceDomain::Sim, 1, 30, 0, 7);
    tracer.record("d", TraceDomain::Sim, 0, 30);
    tracer.record("e", TraceDomain::Host, 0, 40);
    tracer.record("f", TraceDomain::Host, 0, 20);

    std::ostringstream os;
    tracer.exportChromeJson(os);
    const std::string json = os.str();
    ASSERT_TRUE(isValidJson(json)) << json;

    // Perfetto-required scaffolding: a traceEvents array and the two
    // clock-domain process names.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("simulated (cycles)"), std::string::npos);
    EXPECT_NE(json.find("host (us)"), std::string::npos);

    // Walk the emitted event objects in order; timestamps must never
    // decrease within one (pid, tid) track.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> seenTracks;
    std::vector<std::uint64_t> lastTs;
    std::size_t events = 0;
    // Event objects sit one per line and open with {"name":...;
    // metadata rows open with {"ph":"M" and their args objects are
    // inline, so neither matches the newline-anchored pattern.
    for (std::size_t p = json.find("\n{\"name\":\"");
         p != std::string::npos; p = json.find("\n{\"name\":\"", p + 1)) {
        const std::uint64_t pid = numberAfter(json, p, "pid");
        const std::uint64_t tid = numberAfter(json, p, "tid");
        const std::uint64_t ts = numberAfter(json, p, "ts");
        const auto key = std::make_pair(pid, tid);
        bool found = false;
        for (std::size_t t = 0; t < seenTracks.size(); ++t) {
            if (seenTracks[t] == key) {
                EXPECT_LE(lastTs[t], ts)
                    << "track (" << pid << "," << tid << ")";
                lastTs[t] = ts;
                found = true;
            }
        }
        if (!found) {
            seenTracks.push_back(key);
            lastTs.push_back(ts);
        }
        ++events;
    }
    EXPECT_EQ(events, 6u);
    // Three distinct tracks: (1,0), (1,1), (2,0).
    EXPECT_EQ(seenTracks.size(), 3u);
}

// ---------------------------------------------------------------------
// Epoch sampling against a real simulation.

constexpr Cycle kWarmup = 20'000;
constexpr Cycle kMeasure = 30'000;

std::unique_ptr<Cmp>
makeSystem(std::uint32_t mix_seed)
{
    const SystemConfig sys = reuseSystem(4.0, 1.0, 0, 8);
    const Mix mix = makeMixes(1, 8, mix_seed)[0];
    return std::make_unique<Cmp>(
        sys, buildMixStreams(mix, sys.seed, sys.capacityScale));
}

TEST(TelemetryEpochs, DeltasSumToEndOfRunAggregates)
{
    auto cmp = makeSystem(61);
    EpochSampler sampler(5'000);
    sampler.attach(*cmp);
    cmp->run(kWarmup);
    cmp->beginMeasurement();
    cmp->run(kMeasure);
    sampler.finish(*cmp, cmp->now());

    ASSERT_GE(sampler.rows().size(),
              (kWarmup + kMeasure) / 5'000 - 1);

    std::uint64_t refs = 0, accesses = 0, tagMisses = 0, dataHits = 0;
    std::uint64_t dramReads = 0, dramWrites = 0;
    std::vector<std::uint64_t> instr(cmp->numCores(), 0);
    for (const EpochSample &row : sampler.rows()) {
        refs += row.refs;
        accesses += row.llcAccesses;
        tagMisses += row.llcTagMisses;
        dataHits += row.llcDataHits;
        dramReads += row.dramReads;
        dramWrites += row.dramWrites;
        for (std::size_t c = 0; c < row.instr.size(); ++c)
            instr[c] += row.instr[c];
    }

    EXPECT_EQ(refs, cmp->referencesProcessed());
    EXPECT_EQ(accesses, cmp->llc().stats().ref("accesses"));
    EXPECT_EQ(tagMisses, cmp->llc().stats().ref("tagMisses"));
    // The reuse cache registers data hits as "tagHitsData".
    const Counter *dh = cmp->llc().stats().tryRef("tagHitsData");
    ASSERT_NE(dh, nullptr);
    EXPECT_EQ(dataHits, *dh);
    std::uint64_t endReads = 0, endWrites = 0;
    for (const auto &ch : cmp->memory().channels()) {
        endReads += ch->stats().ref("reads");
        endWrites += ch->stats().ref("writes");
    }
    EXPECT_EQ(dramReads, endReads);
    EXPECT_EQ(dramWrites, endWrites);
    for (CoreId c = 0; c < cmp->numCores(); ++c)
        EXPECT_EQ(instr[c], cmp->core(c).instructions()) << "core " << c;
    EXPECT_GT(accesses, 0u);
}

TEST(TelemetryEpochs, SimulationIsBitIdenticalWithTelemetryOnAndOff)
{
    auto plain = makeSystem(62);
    plain->run(kWarmup);
    plain->beginMeasurement();
    plain->run(kMeasure);

    auto traced = makeSystem(62);
    EventTracer tracer;
    ScopedTracer scope(&tracer);
    EpochSampler sampler(5'000);
    sampler.attach(*traced);
    traced->run(kWarmup);
    traced->beginMeasurement();
    traced->run(kMeasure);

#if RC_TRACE_ENABLED
    EXPECT_GT(tracer.recorded() + tracer.dropped(), 0u)
        << "tracer saw no events -- are the hooks compiled in?";
#endif
    EXPECT_EQ(plain->now(), traced->now());
    EXPECT_EQ(plain->referencesProcessed(),
              traced->referencesProcessed());
    EXPECT_EQ(plain->aggregateIpc(), traced->aggregateIpc());
    const auto &pa = plain->llc().stats().entries();
    const auto &pb = traced->llc().stats().entries();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(pa[i].value, pb[i].value) << pa[i].name;
}

TEST(TelemetryEpochs, SamplerSurvivesCheckpointRestore)
{
    EpochSampler samplerA(5'000);
    std::vector<std::uint8_t> image;
    int phase = 0, capturedPhase = -1;

    auto a = makeSystem(63);
    samplerA.attach(*a);
    a->setSnapshotHook(2'000, [&](const Cmp &c, Cycle) {
        Serializer s;
        s.beginSection("cmp");
        c.save(s);
        s.endSection("cmp");
        samplerA.save(s);
        image = s.image();
        capturedPhase = phase;
    });
    a->run(kWarmup);
    a->beginMeasurement();
    phase = 1;
    a->run(kMeasure);
    ASSERT_EQ(capturedPhase, 1)
        << "no snapshot fired during measurement -- lower the cadence";
    samplerA.finish(*a, a->now());
    std::ostringstream csvA;
    samplerA.writeCsv(csvA);

    auto b = makeSystem(63);
    EpochSampler samplerB(5'000);
    Deserializer d(image);
    d.beginSection("cmp");
    b->restore(d);
    d.endSection("cmp");
    samplerB.restore(d);
    IntegrityChecker(*b).enforce(b->now());
    samplerB.attach(*b); // restored baselines survive the attach
    b->run(kMeasure);
    samplerB.finish(*b, b->now());
    std::ostringstream csvB;
    samplerB.writeCsv(csvB);

    EXPECT_GT(samplerA.rows().size(), 2u);
    EXPECT_EQ(csvA.str(), csvB.str());
}

TEST(TelemetryEpochs, MismatchedIntervalIsRejectedOnRestore)
{
    EpochSampler samplerA(5'000);
    auto cmp = makeSystem(64);
    samplerA.attach(*cmp);
    cmp->run(10'000);
    Serializer s;
    samplerA.save(s);

    EpochSampler samplerB(7'000);
    Deserializer d(s.image());
    try {
        samplerB.restore(d);
        FAIL() << "expected SimError(Snapshot)";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimError::Kind::Snapshot) << err.what();
    }
}

// ---------------------------------------------------------------------
// Stats export and the session plumbing.

TEST(TelemetryStats, StatsJsonIsValid)
{
    auto cmp = makeSystem(65);
    cmp->run(kWarmup);
    cmp->beginMeasurement();
    cmp->run(kMeasure);
    std::ostringstream os;
    writeStatsJson(*cmp, os);
    const std::string json = os.str();
    ASSERT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("\"organization\""), std::string::npos);
    EXPECT_NE(json.find("\"cores\""), std::string::npos);
    EXPECT_NE(json.find("\"dram\""), std::string::npos);
}

TEST(TelemetrySession, WritesAllArtifacts)
{
    TelemetryConfig cfg;
    cfg.dir = tempPath("telemetry-session");
    cfg.traceEvents = true;
    cfg.sampleInterval = 5'000;
    ASSERT_TRUE(cfg.enabled());

    {
        TelemetrySession session(cfg, "unit");
        auto cmp = makeSystem(66);
        session.attach(*cmp);
        cmp->run(kWarmup);
        cmp->beginMeasurement();
        cmp->run(kMeasure);
        session.finalize(*cmp, cmp->now());
    }

    std::ifstream trace(cfg.dir + "/trace-unit.json");
    ASSERT_TRUE(trace.good());
    std::stringstream buf;
    buf << trace.rdbuf();
    EXPECT_TRUE(isValidJson(buf.str()));
#if RC_TRACE_ENABLED
    // The short window sees tag misses and tag-only hits; data hits
    // need a third touch and may not occur, so assert on the family.
    EXPECT_NE(buf.str().find("\"rc.tagMiss\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"dram.read\""), std::string::npos);
#endif

    std::ifstream epochs(cfg.dir + "/epochs-unit.csv");
    ASSERT_TRUE(epochs.good());
    std::string header;
    std::getline(epochs, header);
    EXPECT_NE(header.find("epoch_end"), std::string::npos);
    EXPECT_NE(header.find("llc_tag_hit_rate"), std::string::npos);
    std::size_t rows = 0;
    for (std::string line; std::getline(epochs, line);)
        ++rows;
    EXPECT_GE(rows, (kWarmup + kMeasure) / cfg.sampleInterval - 1);

    std::ifstream stats(cfg.dir + "/stats-unit.json");
    ASSERT_TRUE(stats.good());
    std::stringstream sbuf;
    sbuf << stats.rdbuf();
    EXPECT_TRUE(isValidJson(sbuf.str()));
}

TEST(TelemetrySession, ConfigGatesRequireDirectory)
{
    TelemetryConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    cfg.traceEvents = true;
    EXPECT_FALSE(cfg.enabled()); // no directory, nowhere to write
    cfg.dir = "/tmp/x";
    EXPECT_TRUE(cfg.enabled());
    cfg.traceEvents = false;
    EXPECT_FALSE(cfg.enabled());
    cfg.sampleInterval = 100;
    EXPECT_TRUE(cfg.enabled());
}

} // namespace
} // namespace rc
