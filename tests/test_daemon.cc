/**
 * @file
 * End-to-end tests of the sweep daemon + client pair over a real Unix
 * socket: bit-identity with the in-process path, cache-hit serving,
 * Busy backpressure with client backoff and fallback, malformed-frame
 * connection isolation, watchdog deadline aborts, graceful drain,
 * daemon-down fallback, truncated-reply retry, and kill -9 recovery on
 * a shared cache directory.  `ctest -L daemon` runs exactly this file.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/frame.hh"
#include "service/poison.hh"
#include "service/supervisor.hh"
#include "telemetry/trace_event.hh"
#include "verify/fault_injector.hh"

namespace rc
{
namespace
{

using svc::ClientConfig;
using svc::Daemon;
using svc::DaemonConfig;
using svc::Frame;
using svc::MsgType;
using svc::RcClient;
using svc::RunRequest;

svc::SimulateFn
directSim()
{
    return [](const RunRequest &req, const std::atomic<bool> *abort,
              std::atomic<std::uint64_t> *heartbeat) {
        return bench::simulateRequest(req, abort, heartbeat);
    };
}

RunRequest
tinyRequest(std::uint64_t seed = 42)
{
    RunRequest req;
    req.config = baselineSystem(8);
    req.mix = makeMixes(1, req.config.numCores, 7)[0];
    req.seed = seed;
    req.scale = 8;
    req.warmup = 1'000;
    req.measure = 4'000;
    return req;
}

/** Per-test socket + cache dir, unique per pid so reruns start clean. */
struct Scratch
{
    std::string sock;
    std::string cacheDir;
    explicit Scratch(const std::string &name)
    {
        const std::string base = std::string(::testing::TempDir()) +
                                 name + "-" + std::to_string(::getpid());
        (void)std::system(("rm -rf '" + base + "'").c_str());
        ::mkdir(base.c_str(), 0777);
        cacheDir = base + "/cache";
        sock = base + "/d.sock";
    }
};

DaemonConfig
daemonConfig(const Scratch &s)
{
    DaemonConfig cfg;
    cfg.socketPath = s.sock;
    cfg.cacheDir = s.cacheDir;
    cfg.workers = 2;
    cfg.retryAfterMs = 5;
    return cfg;
}

ClientConfig
clientConfig(const Scratch &s)
{
    ClientConfig cfg;
    cfg.socketPath = s.sock;
    cfg.backoffBaseMs = 2;
    cfg.ioTimeoutMs = 5'000;
    return cfg;
}

/** Raw protocol-level connection for sending hand-crafted bytes. */
int
rawConnect(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Spin until @p pred or ~2 s pass (daemon threads run asynchronously). */
template <typename Pred>
bool
eventually(Pred pred)
{
    for (int i = 0; i < 200; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

TEST(DaemonService, ServesBitIdenticalResultsAndCachesRepeats)
{
    Scratch s("daemon-identity");
    Daemon daemon(daemonConfig(s), directSim());
    daemon.start();

    const RunRequest r1 = tinyRequest(1), r2 = tinyRequest(2);
    const RunResult ref1 = bench::simulateRequest(r1);
    const RunResult ref2 = bench::simulateRequest(r2);

    RcClient client(clientConfig(s));
    EXPECT_TRUE(runResultsEqual(client.simulate(r1), ref1));
    EXPECT_TRUE(runResultsEqual(client.simulate(r2), ref2));
    EXPECT_TRUE(runResultsEqual(client.simulate(r1), ref1));

    const auto c = daemon.counters();
    EXPECT_EQ(c.requests, 3u);
    EXPECT_EQ(c.simulated, 2u);
    EXPECT_EQ(c.cacheHits, 1u);
    EXPECT_EQ(c.cacheMisses, 2u);
    EXPECT_EQ(client.counters().results, 3u);
    EXPECT_EQ(client.counters().fallbacks, 0u);

    // The stats endpoint works and mentions the hit.
    EXPECT_TRUE(client.ping());
    const std::string json = client.daemonStatsJson();
    EXPECT_NE(json.find("\"cache_hits\": 1"), std::string::npos) << json;

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, BusyShedsAreRetriedThenFellBackBitIdentically)
{
    Scratch s("daemon-busy");
    // queueDepth=0: every miss sheds, deterministically.
    DaemonConfig dcfg = daemonConfig(s);
    dcfg.queueDepth = 0;
    Daemon daemon(dcfg, directSim());
    daemon.start();

    const RunRequest req = tinyRequest();
    const RunResult ref = bench::simulateRequest(req);

    ClientConfig ccfg = clientConfig(s);
    ccfg.maxAttempts = 3;
    ccfg.fallback = directSim();
    RcClient client(ccfg);
    EXPECT_TRUE(runResultsEqual(client.simulate(req), ref));

    const auto cc = client.counters();
    EXPECT_EQ(cc.busyRetries, 3u);
    EXPECT_EQ(cc.fallbacks, 1u);
    EXPECT_GT(cc.backoffMsTotal, 0u);
    EXPECT_EQ(daemon.counters().sheds, 3u);

    // Without a fallback the same situation is a hard, typed error.
    ClientConfig bare = clientConfig(s);
    bare.maxAttempts = 2;
    RcClient strict(bare);
    bool threw = false;
    try {
        strict.simulate(req);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Io);
    }
    EXPECT_TRUE(threw);

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, MalformedFramesPoisonOnlyTheirOwnConnection)
{
    Scratch s("daemon-isolation");
    Daemon daemon(daemonConfig(s), directSim());
    daemon.start();

    // Connection 1: plain garbage (bad magic).
    {
        const int fd = rawConnect(s.sock);
        ASSERT_GE(fd, 0);
        const char junk[] = "this is not a frame at all, sorry";
        ASSERT_EQ(::send(fd, junk, sizeof(junk), 0),
                  static_cast<ssize_t>(sizeof(junk)));
        ::close(fd);
    }
    // Connection 2: well-formed frame with a version from the future.
    {
        const int fd = rawConnect(s.sock);
        ASSERT_GE(fd, 0);
        auto bytes = svc::encodeFrame(MsgType::StatsRequest, {});
        bytes[4] = 0x7f; // version
        svc::writeRaw(fd, bytes.data(), bytes.size(), 1'000);
        // The daemon answers Error (still framed at version 1) before
        // closing this connection.
        Frame reply;
        bool gotError = false;
        try {
            gotError = svc::readFrame(fd, reply, 2'000) &&
                       reply.type == MsgType::Error;
        } catch (const SimError &) {
            gotError = false; // reply raced the close; counter test below
        }
        EXPECT_TRUE(gotError);
        ::close(fd);
    }
    // Connection 3: a truncated frame, cut mid-payload by the injector.
    {
        FaultInjector inj(3);
        const auto full = svc::encodeFrame(
            MsgType::StatsRequest, std::vector<std::uint8_t>(64, 1));
        const auto cut = inj.truncateFrame(full);
        const int fd = rawConnect(s.sock);
        ASSERT_GE(fd, 0);
        svc::writeRaw(fd, cut.data(), cut.size(), 1'000);
        ::close(fd);
    }

    EXPECT_TRUE(eventually([&] {
        return daemon.counters().protocolErrors +
                   daemon.counters().ioErrors >=
               3;
    })) << "daemon did not classify all three defects";

    // A well-behaved client right after: totally unaffected.
    const RunRequest req = tinyRequest();
    RcClient client(clientConfig(s));
    EXPECT_TRUE(
        runResultsEqual(client.simulate(req),
                        bench::simulateRequest(req)));

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, UnexpectedTypeGetsErrorButKeepsTheStream)
{
    Scratch s("daemon-unexpected");
    Daemon daemon(daemonConfig(s), directSim());
    daemon.start();

    const int fd = rawConnect(s.sock);
    ASSERT_GE(fd, 0);
    // Ack is a daemon->client type; a client must never send it.
    svc::writeFrame(fd, MsgType::Ack, {}, 1'000);
    Frame reply;
    ASSERT_TRUE(svc::readFrame(fd, reply, 2'000));
    EXPECT_EQ(reply.type, MsgType::Error);
    // The framing was valid, so the connection survives: a StatsRequest
    // on the very same socket still works.
    svc::writeFrame(fd, MsgType::StatsRequest, {}, 1'000);
    ASSERT_TRUE(svc::readFrame(fd, reply, 2'000));
    EXPECT_EQ(reply.type, MsgType::StatsReply);
    ::close(fd);

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, DeadlineExpiryAbortsTheRunAndReportsTyped)
{
    Scratch s("daemon-deadline");
    DaemonConfig dcfg = daemonConfig(s);
    dcfg.workers = 1;
    // A job that makes progress but far too slowly for its deadline;
    // the abort flag is the daemon watchdog's.
    Daemon daemon(dcfg, [](const RunRequest &req,
                           const std::atomic<bool> *abort,
                           std::atomic<std::uint64_t> *heartbeat) {
        if (req.deadlineMs > 0) {
            for (int i = 0; i < 1'000; ++i) {
                if (abort != nullptr && abort->load())
                    throwSimError(SimError::Kind::Hang,
                                  "aborted at the deadline");
                if (heartbeat != nullptr)
                    heartbeat->fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
        }
        return bench::simulateRequest(req, abort, heartbeat);
    });
    daemon.start();

    RunRequest req = tinyRequest();
    req.deadlineMs = 60;
    ClientConfig ccfg = clientConfig(s); // no fallback: surface it
    RcClient client(ccfg);
    bool threw = false;
    try {
        client.simulate(req);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Hang) << err.what();
    }
    EXPECT_TRUE(threw);
    EXPECT_TRUE(eventually(
        [&] { return daemon.counters().deadlineAborts == 1; }));
    EXPECT_EQ(daemon.counters().quarantines, 1u);

    // The same request without a deadline completes fine.
    req.deadlineMs = 0;
    EXPECT_TRUE(runResultsEqual(client.simulate(req),
                                bench::simulateRequest(req)));

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, DrainRefusesNewWorkAndPersistsTheIndex)
{
    Scratch s("daemon-drain");
    Daemon daemon(daemonConfig(s), directSim());
    daemon.start();

    const RunRequest req = tinyRequest();
    RcClient client(clientConfig(s));
    (void)client.simulate(req);

    // The wire-level drain: a Shutdown frame, as rc-client --shutdown
    // sends.
    EXPECT_TRUE(client.shutdownDaemon());
    EXPECT_TRUE(daemon.isDraining());

    // New work is shed while draining.
    ClientConfig ccfg = clientConfig(s);
    ccfg.maxAttempts = 2;
    ccfg.fallback = directSim();
    RcClient late(ccfg);
    EXPECT_TRUE(runResultsEqual(late.simulate(tinyRequest(9)),
                                bench::simulateRequest(tinyRequest(9))));
    EXPECT_EQ(late.counters().fallbacks, 1u);

    daemon.stop();
    // The drain persisted a compacted index naming the stored entry.
    std::FILE *f = std::fopen((s.cacheDir + "/cache.index").c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[256] = {0};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    EXPECT_NE(std::string(buf, n).find(
                  svc::digestHex(svc::requestDigest(req))),
              std::string::npos);
}

TEST(DaemonService, UnreachableDaemonFallsBackBitIdentically)
{
    Scratch s("daemon-down");
    ClientConfig ccfg = clientConfig(s); // nothing listens on s.sock
    ccfg.fallback = directSim();
    RcClient client(ccfg);
    const RunRequest req = tinyRequest();
    EXPECT_TRUE(runResultsEqual(client.simulate(req),
                                bench::simulateRequest(req)));
    EXPECT_EQ(client.counters().fallbacks, 1u);
    EXPECT_EQ(client.counters().results, 0u);

    ClientConfig bare = clientConfig(s);
    RcClient strict(bare);
    bool threw = false;
    try {
        strict.simulate(req);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Io);
    }
    EXPECT_TRUE(threw);
}

TEST(DaemonService, TruncatedRepliesAreRetriedToSuccess)
{
    Scratch s("daemon-torn");
    DaemonConfig dcfg = daemonConfig(s);
    dcfg.faultTruncateReplies = 1;
    Daemon daemon(dcfg, directSim());
    daemon.start();

    const RunRequest req = tinyRequest();
    ClientConfig ccfg = clientConfig(s); // no fallback: the daemon must
    ccfg.maxAttempts = 3;                // deliver after the retry
    RcClient client(ccfg);
    EXPECT_TRUE(runResultsEqual(client.simulate(req),
                                bench::simulateRequest(req)));
    EXPECT_GE(client.counters().reconnects, 1u);

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, RestartOnTheSameCacheDirRecoversIntactEntries)
{
    Scratch s("daemon-restart");
    const RunRequest r1 = tinyRequest(1), r2 = tinyRequest(2);
    const RunResult ref1 = bench::simulateRequest(r1);
    const RunResult ref2 = bench::simulateRequest(r2);
    std::string tornBlob;

    {
        Daemon daemon(daemonConfig(s), directSim());
        daemon.start();
        RcClient client(clientConfig(s));
        (void)client.simulate(r1);
        (void)client.simulate(r2);
        tornBlob = daemon.cache().blobPath(svc::requestDigest(r2));
        // kill -9: no drain, no index persistence, threads just die.
        // (In-process we still must join the threads; the on-disk state
        // below is what a real SIGKILL leaves.)
        daemon.requestStop();
        daemon.stop();
    }
    // Tear r2's blob mid-write and drop tmp litter, as a SIGKILL between
    // fwrite and rename would.
    ASSERT_EQ(::truncate(tornBlob.c_str(), 7), 0);
    {
        std::FILE *f = std::fopen(
            (s.cacheDir + "/memo-dead.bin.tmp").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
    }

    Daemon daemon(daemonConfig(s), directSim());
    daemon.start();
    RcClient client(clientConfig(s));
    EXPECT_TRUE(runResultsEqual(client.simulate(r1), ref1));
    EXPECT_TRUE(runResultsEqual(client.simulate(r2), ref2));
    const auto c = daemon.counters();
    EXPECT_EQ(c.cacheHits, 1u) << "intact entry must be recovered";
    EXPECT_EQ(c.simulated, 1u) << "torn entry must re-simulate";
    EXPECT_EQ(daemon.cache().stats().corruptDropped, 1u);
    struct stat st;
    EXPECT_NE(::stat((s.cacheDir + "/memo-dead.bin.tmp").c_str(), &st), 0)
        << "stale tmp survived recovery";
    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, CoalescesConcurrentDuplicateRequests)
{
    Scratch s("daemon-coalesce");
    DaemonConfig dcfg = daemonConfig(s);
    dcfg.workers = 1;
    // Slow the single worker down enough that duplicates pile up.
    Daemon daemon(dcfg, [](const RunRequest &req,
                           const std::atomic<bool> *abort,
                           std::atomic<std::uint64_t> *heartbeat) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return bench::simulateRequest(req, abort, heartbeat);
    });
    daemon.start();

    const RunRequest req = tinyRequest();
    const RunResult ref = bench::simulateRequest(req);
    std::atomic<int> wrong{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t)
        pool.emplace_back([&] {
            RcClient client(clientConfig(s));
            if (!runResultsEqual(client.simulate(req), ref))
                wrong.fetch_add(1);
        });
    for (std::thread &th : pool)
        th.join();
    EXPECT_EQ(wrong.load(), 0);
    const auto c = daemon.counters();
    EXPECT_EQ(c.simulated, 1u) << "duplicates must not re-simulate";
    EXPECT_GE(c.coalesced + c.cacheHits, 3u);

    daemon.requestStop();
    daemon.stop();
}

// ---------------------------------------------------------------------
// Process-isolated workers: the DaemonIsolated suite runs every job in
// a forked, rlimit-capped child supervised for crash containment.
// Chaos markers (verify/fault_injector.hh) ride the request seed.
// ---------------------------------------------------------------------

/** directSim plus chaos detonation for marked seeds (worker-side). */
svc::SimulateFn
chaosSim()
{
    return [](const RunRequest &req, const std::atomic<bool> *abort,
              std::atomic<std::uint64_t> *heartbeat) {
        FaultClass cls;
        if (chaosFromSeed(req.seed, cls))
            detonateChaos(cls, heartbeat);
        return bench::simulateRequest(req, abort, heartbeat);
    };
}

DaemonConfig
isolatedConfig(const Scratch &s)
{
    DaemonConfig cfg = daemonConfig(s);
    cfg.isolateWorkers = true;
    // Tests kill workers on purpose; production backoff would just
    // slow them down.
    cfg.workerRestartBackoffMs = 2;
    cfg.workerRestartBackoffCapMs = 20;
    return cfg;
}

TEST(DaemonIsolated, ServesBitIdenticalResultsAcrossTheProcessBoundary)
{
    Scratch s("isolated-identity");
    Daemon daemon(isolatedConfig(s), directSim());
    EXPECT_TRUE(daemon.isolated());
    daemon.start();

    const RunRequest r1 = tinyRequest(1), r2 = tinyRequest(2);
    RcClient client(clientConfig(s));
    EXPECT_TRUE(runResultsEqual(client.simulate(r1),
                                bench::simulateRequest(r1)));
    EXPECT_TRUE(runResultsEqual(client.simulate(r2),
                                bench::simulateRequest(r2)));
    // Repeat: served from the cache, no third job.
    EXPECT_TRUE(runResultsEqual(client.simulate(r1),
                                bench::simulateRequest(r1)));

    const svc::SupervisorCounters fc = daemon.fleetCounters();
    EXPECT_EQ(fc.jobs, 2u);
    EXPECT_EQ(fc.crashes, 0u);
    const std::string json = daemon.statsJson();
    EXPECT_NE(json.find("\"enabled\": true"), std::string::npos) << json;

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonIsolated, WorkerCrashIsTypedRestartedAndTraced)
{
    Scratch s("isolated-crash");
    EventTracer tracer;
    DaemonConfig dcfg = isolatedConfig(s);
    dcfg.tracer = &tracer;
    Daemon daemon(dcfg, chaosSim());
    daemon.start();

    RunRequest doomed = tinyRequest();
    doomed.seed = chaosSeed(FaultClass::WorkerCrash, 1);
    ClientConfig ccfg = clientConfig(s); // no fallback: surface it
    RcClient client(ccfg);
    bool threw = false;
    try {
        client.simulate(doomed);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Crash) << err.what();
    }
    EXPECT_TRUE(threw);

    // The daemon survived, a fresh worker serves the next job.
    const RunRequest healthy = tinyRequest(3);
    EXPECT_TRUE(runResultsEqual(client.simulate(healthy),
                                bench::simulateRequest(healthy)));
    const svc::SupervisorCounters fc = daemon.fleetCounters();
    EXPECT_EQ(fc.crashes, 1u);
    EXPECT_GE(fc.restarts, 1u);

    daemon.requestStop();
    daemon.stop();

    std::ostringstream os;
    tracer.exportChromeJson(os);
    EXPECT_NE(os.str().find("svc.crash"), std::string::npos)
        << "crash span missing from the exported trace";
}

TEST(DaemonIsolated, AllocationBombIsContainedWithoutAWorkerDeath)
{
    Scratch s("isolated-oom");
    DaemonConfig dcfg = isolatedConfig(s);
    // Cap the child's address space so the bomb dies at the allocator,
    // quickly.  (Compiled out under ASan, where the bomb's own 2 GiB
    // budget produces the same bad_alloc.)
    dcfg.workerAddressSpaceBytes = 512ull << 20;
    Daemon daemon(dcfg, chaosSim());
    daemon.start();

    RunRequest doomed = tinyRequest();
    doomed.seed = chaosSeed(FaultClass::WorkerOom, 2);
    RcClient client(clientConfig(s));
    bool threw = false;
    try {
        client.simulate(doomed);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Crash) << err.what();
    }
    EXPECT_TRUE(threw);

    // bad_alloc was caught INSIDE the child: a typed reply, no death,
    // and the same worker (same incarnation) serves the next job.
    const svc::SupervisorCounters fc = daemon.fleetCounters();
    EXPECT_EQ(fc.containedErrors, 1u);
    EXPECT_EQ(fc.crashes, 0u);
    EXPECT_EQ(fc.restarts, 0u);
    const RunRequest healthy = tinyRequest(4);
    EXPECT_TRUE(runResultsEqual(client.simulate(healthy),
                                bench::simulateRequest(healthy)));

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonIsolated, AbortIgnoringHangIsForceKilledAndTypedHang)
{
    Scratch s("isolated-hang");
    DaemonConfig dcfg = isolatedConfig(s);
    dcfg.workers = 1;
    dcfg.hangTimeout = 0.15;       // silence budget before abort
    dcfg.workerAbortGraceMs = 100; // grace before SIGKILL
    Daemon daemon(dcfg, chaosSim());
    daemon.start();

    RunRequest doomed = tinyRequest();
    doomed.seed = chaosSeed(FaultClass::WorkerHang, 3);
    RcClient client(clientConfig(s));
    bool threw = false;
    try {
        client.simulate(doomed);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Hang) << err.what();
    }
    EXPECT_TRUE(threw);

    const svc::SupervisorCounters fc = daemon.fleetCounters();
    EXPECT_EQ(fc.hangKills, 1u);
    EXPECT_EQ(fc.crashes, 1u); // the forced kill is a death too
    const RunRequest healthy = tinyRequest(5);
    EXPECT_TRUE(runResultsEqual(client.simulate(healthy),
                                bench::simulateRequest(healthy)));

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonIsolated, RlimitCpuKillsARunawaySpinTyped)
{
    Scratch s("isolated-rlimit");
    DaemonConfig dcfg = isolatedConfig(s);
    dcfg.workers = 1;
    dcfg.workerCpuLimitSeconds = 1;
    // A spin that heartbeats (so no watchdog involvement) but burns CPU
    // forever: only RLIMIT_CPU can end it.
    const std::uint64_t spinSeed = 0xb41f;
    Daemon daemon(dcfg, [spinSeed](const RunRequest &req,
                                   const std::atomic<bool> *abort,
                                   std::atomic<std::uint64_t> *beat) {
        if (req.seed == spinSeed) {
            for (volatile std::uint64_t i = 0;; ++i)
                if (beat != nullptr && i % 65536 == 0)
                    beat->fetch_add(1);
        }
        return bench::simulateRequest(req, abort, beat);
    });
    daemon.start();

    RunRequest doomed = tinyRequest();
    doomed.seed = spinSeed;
    ClientConfig ccfg = clientConfig(s);
    ccfg.ioTimeoutMs = 20'000; // SIGXCPU needs a real CPU-second
    RcClient client(ccfg);
    bool threw = false;
    try {
        client.simulate(doomed);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Crash) << err.what();
        EXPECT_NE(std::string(err.what()).find("RLIMIT_CPU"),
                  std::string::npos)
            << err.what();
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(daemon.fleetCounters().rlimitCpuKills, 1u);

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonIsolated, PoisonQuarantineFiresAtKAndSurvivesRestart)
{
    Scratch s("isolated-poison");
    DaemonConfig dcfg = isolatedConfig(s);
    dcfg.poisonThreshold = 3;
    RunRequest doomed = tinyRequest();
    doomed.seed = chaosSeed(FaultClass::WorkerCrash, 0xbeef);
    ClientConfig ccfg = clientConfig(s);

    {
        Daemon daemon(dcfg, chaosSim());
        daemon.start();
        RcClient client(ccfg);
        int kills = 0, refusals = 0;
        for (int i = 0; i < 5; ++i) {
            try {
                client.simulate(doomed);
                FAIL() << "a doomed request must never succeed";
            } catch (const SimError &err) {
                ASSERT_EQ(err.kind(), SimError::Kind::Crash)
                    << err.what();
                if (std::string(err.what()).find("quarantined") !=
                    std::string::npos)
                    ++refusals;
                else
                    ++kills;
            }
        }
        EXPECT_EQ(kills, 3);    // K distinct workers died
        EXPECT_EQ(refusals, 2); // then the index refused, worker-free
        EXPECT_EQ(daemon.counters().poisonRefused, 2u);
        EXPECT_EQ(daemon.fleetCounters().poisonQuarantines, 1u);
        EXPECT_EQ(daemon.poisonStats().quarantined, 1u);
        daemon.requestStop();
        daemon.stop();
    }

    // The verdict is in poison.index, not in memory: a NEW daemon on
    // the same cache dir refuses immediately, no worker dies for it.
    {
        Daemon daemon(dcfg, chaosSim());
        daemon.start();
        RcClient client(ccfg);
        bool refused = false;
        try {
            client.simulate(doomed);
        } catch (const SimError &err) {
            refused = err.kind() == SimError::Kind::Crash &&
                      std::string(err.what()).find("quarantined") !=
                          std::string::npos;
        }
        EXPECT_TRUE(refused);
        EXPECT_EQ(daemon.fleetCounters().crashes, 0u);
        EXPECT_GE(daemon.poisonStats().recovered, 1u);
        daemon.requestStop();
        daemon.stop();
    }
}

TEST(DaemonIsolated, ClientDeadlineClampsBackoffAndFailsFast)
{
    Scratch s("client-deadline");
    DaemonConfig dcfg = daemonConfig(s);
    dcfg.queueDepth = 0; // every miss sheds Busy, deterministically
    Daemon daemon(dcfg, directSim());
    daemon.start();

    ClientConfig ccfg = clientConfig(s);
    ccfg.maxAttempts = 10;
    ccfg.backoffBaseMs = 50; // un-clamped sum would be seconds
    RcClient client(ccfg);
    RunRequest req = tinyRequest();
    req.deadlineMs = 80;
    const auto t0 = std::chrono::steady_clock::now();
    bool threw = false;
    try {
        client.simulate(req);
    } catch (const SimError &err) {
        threw = true;
        EXPECT_EQ(err.kind(), SimError::Kind::Io) << err.what();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_TRUE(threw);
    EXPECT_LT(elapsed, 1.5) << "deadline did not clamp the backoff";
    EXPECT_GE(client.counters().deadlineRespected, 1u);

    daemon.requestStop();
    daemon.stop();
}

TEST(DaemonService, TracerRecordsTheRequestLifecycleSpans)
{
    Scratch s("daemon-telemetry");
    EventTracer tracer;
    DaemonConfig dcfg = daemonConfig(s);
    dcfg.tracer = &tracer;
    Daemon daemon(dcfg, directSim());
    daemon.start();

    const RunRequest req = tinyRequest();
    {
        RcClient client(clientConfig(s));
        (void)client.simulate(req); // miss: svc.request + svc.simulate
        (void)client.simulate(req); // hit: svc.cacheHit
    }
    daemon.requestStop(); // draining: the next request is shed
    {
        ClientConfig ccfg = clientConfig(s);
        ccfg.maxAttempts = 1;
        ccfg.fallback = directSim();
        RcClient late(ccfg);
        (void)late.simulate(tinyRequest(77));
    }
    daemon.stop();

    EXPECT_GT(tracer.recorded(), 0u);
    std::ostringstream os;
    tracer.exportChromeJson(os);
    const std::string json = os.str();
    for (const char *span :
         {"svc.request", "svc.simulate", "svc.cacheHit", "svc.shed"})
        EXPECT_NE(json.find(span), std::string::npos)
            << span << " missing from the exported trace";
}

} // namespace
} // namespace rc
