/**
 * @file
 * Persistent feed-cache tests: a FanoutCmp replaying records out of a
 * warm RCFEED1 blob must leave every member — including the arena's
 * CRC2-family ports — in exactly the state the cold capturing run
 * reached (same stats, same cycle count, same mid-run checkpoint
 * bytes); the canonical key must be sensitive to everything that shapes
 * the front end and insensitive to SLLC-only config changes; a corrupt
 * blob of every feed FaultClass must demote to a verified recompute and
 * be unlinked; and two processes racing one cold key through the flock
 * lease must end with one blob and identical results.
 */

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <cstdio>
#include <cstdlib>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "cache/replacement.hh"
#include "sim/cmp.hh"
#include "sim/fanout.hh"
#include "sim/feed_cache.hh"
#include "sim/system_config.hh"
#include "snapshot/serializer.hh"
#include "verify/fault_injector.hh"
#include "workloads/mixes.hh"

namespace
{

using namespace rc;

constexpr Cycle kWarmup = 40'000;
constexpr Cycle kMeasure = 160'000;
constexpr std::uint32_t kScale = 8;
constexpr std::uint64_t kSeed = 42;

Mix
testMix()
{
    Mix mix;
    for (int c = 0; c < 8; ++c)
        mix.apps.push_back(c % 2 == 0 ? "mcf" : "libquantum");
    return mix;
}

StreamFactory
mixFactory()
{
    return [] { return buildMixStreams(testMix(), kSeed, kScale); };
}

/** {conventional, arena ports, reuse, NCID} behind one front end. */
std::vector<SystemConfig>
matrixConfigs()
{
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(conventionalSystem(8.0, ReplKind::LRU, kScale));
    cfgs.push_back(conventionalSystem(8.0, ReplKind::Ship, kScale));
    cfgs.push_back(conventionalSystem(8.0, ReplKind::Redre, kScale));
    cfgs.push_back(reuseSystem(4.0, 1.0, 16, kScale));
    cfgs.push_back(ncidSystem(8.0, 1.0, kScale));
    for (SystemConfig &c : cfgs)
        c.seed = kSeed;
    return cfgs;
}

/** Full-state fingerprint, mirroring tests/test_fanout.cc. */
std::string
fingerprint(const Cmp &sim)
{
    std::ostringstream os;
    sim.llc().stats().dumpJson(os);
    os << "\n";
    for (std::uint32_t i = 0; i < sim.numCores(); ++i) {
        sim.core(i).priv().stats().dumpJson(os);
        os << "\n";
    }
    for (const auto &chan : sim.memory().channels()) {
        chan->stats().dumpJson(os);
        os << "\n";
    }
    for (const auto &mshr : sim.crossbar().mshrs()) {
        mshr->stats().dumpJson(os);
        os << "\n";
    }
    os << "refs=" << sim.referencesProcessed() << " cycles=" << sim.now()
       << "\n";
    return os.str();
}

std::string
scratchDir(const std::string &name)
{
    return std::string(::testing::TempDir()) + name + "-" +
           std::to_string(::getpid());
}

void
removeTree(const std::string &dir)
{
    const std::string cmd = "rm -rf '" + dir + "'";
    (void)std::system(cmd.c_str());
}

/** Drive @p fan through the standard warmup+measure window. */
void
runWindow(FanoutCmp &fan, Cycle warmup, Cycle measure)
{
    fan.run(warmup);
    fan.beginMeasurement();
    fan.run(measure);
}

/** All members' fingerprints, concatenated (order = config order). */
std::string
fleetFingerprint(FanoutCmp &fan, std::size_t n)
{
    std::string out;
    for (std::size_t i = 0; i < n; ++i)
        out += fingerprint(fan.member(i));
    return out;
}

/**
 * The executeFanout cold/warm protocol in miniature: look up, take the
 * key lease on a miss, re-look-up, then capture-and-store or replay.
 * Returns the fleet fingerprint either way (they must never differ).
 */
std::string
runViaProtocol(const std::string &dir,
               const std::vector<SystemConfig> &cfgs, Cycle warmup,
               Cycle measure, bool *was_warm = nullptr)
{
    FeedCache fc(dir);
    const FeedKey key =
        feedKeyOf(cfgs.front(), testMix(), kSeed, kScale, warmup, measure);
    std::shared_ptr<const FeedBlob> blob = fc.lookup(key);
    std::unique_ptr<FeedKeyLease> lease;
    if (!blob) {
        lease = fc.lockKey(key.digest);
        blob = fc.lookup(key);
    }
    if (was_warm)
        *was_warm = blob != nullptr;
    const bool capture = blob == nullptr;
    FanoutCmp fan(cfgs, mixFactory(), blob, capture);
    runWindow(fan, warmup, measure);
    if (capture)
        fc.store(key, fan.sharedFeed());
    return fleetFingerprint(fan, cfgs.size());
}

// ---------------------------------------------------------------------
// Warm-vs-cold bitwise identity
// ---------------------------------------------------------------------

TEST(FeedCacheTest, WarmReplayBitIdenticalToColdCapture)
{
    const std::string dir = scratchDir("rc-feed-identity");
    removeTree(dir);
    const std::vector<SystemConfig> cfgs = matrixConfigs();

    FeedCache fc(dir);
    const FeedKey key = feedKeyOf(cfgs.front(), testMix(), kSeed, kScale,
                                  kWarmup, kMeasure);
    EXPECT_EQ(fc.lookup(key), nullptr) << "fresh dir should miss";

    FanoutCmp cold(cfgs, mixFactory(), nullptr, /*capture=*/true);
    runWindow(cold, kWarmup, kMeasure);
    fc.store(key, cold.sharedFeed());
    EXPECT_EQ(fc.size(), 1u);

    const std::shared_ptr<const FeedBlob> blob = fc.lookup(key);
    ASSERT_NE(blob, nullptr) << "stored key must hit";
    EXPECT_EQ(blob->numCores(), cfgs.front().numCores);

    FanoutCmp warm(cfgs, mixFactory(), blob);
    EXPECT_TRUE(warm.sharedFeed().warm());
    EXPECT_FALSE(warm.sharedFeed().capturing());
    runWindow(warm, kWarmup, kMeasure);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(fingerprint(cold.member(i)), fingerprint(warm.member(i)))
            << "member " << i << " diverged when replaying the blob";
    }

    const FeedCacheStats st = fc.stats();
    EXPECT_EQ(st.stores, 1u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_GE(st.misses, 1u);
    removeTree(dir);
}

// ---------------------------------------------------------------------
// Mid-run checkpoints off a warm feed
// ---------------------------------------------------------------------

TEST(FeedCacheTest, WarmCheckpointsByteIdenticalToCold)
{
    const std::string dir = scratchDir("rc-feed-ckpt");
    removeTree(dir);
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(conventionalSystem(8.0, ReplKind::LRU, kScale));
    cfgs.push_back(reuseSystem(4.0, 1.0, 16, kScale));
    for (SystemConfig &c : cfgs)
        c.seed = kSeed;
    constexpr std::uint64_t kCkptEvery = 30'000;

    auto capture = [](std::vector<std::vector<std::uint8_t>> &dst) {
        return [&dst](const Cmp &c, Cycle) {
            Serializer s;
            c.save(s);
            dst.push_back(s.image());
        };
    };

    FeedCache fc(dir);
    const FeedKey key = feedKeyOf(cfgs.front(), testMix(), kSeed, kScale,
                                  kWarmup, kMeasure);

    std::vector<std::vector<std::vector<std::uint8_t>>> coldCk(cfgs.size());
    FanoutCmp cold(cfgs, mixFactory(), nullptr, /*capture=*/true);
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        cold.member(i).setSnapshotHook(kCkptEvery, capture(coldCk[i]));
    runWindow(cold, kWarmup, kMeasure);
    fc.store(key, cold.sharedFeed());

    const auto blob = fc.lookup(key);
    ASSERT_NE(blob, nullptr);
    std::vector<std::vector<std::vector<std::uint8_t>>> warmCk(cfgs.size());
    FanoutCmp warm(cfgs, mixFactory(), blob);
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        warm.member(i).setSnapshotHook(kCkptEvery, capture(warmCk[i]));
    runWindow(warm, kWarmup, kMeasure);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        ASSERT_FALSE(coldCk[i].empty())
            << "checkpoint cadence never fired; raise kMeasure";
        ASSERT_EQ(coldCk[i].size(), warmCk[i].size()) << "member " << i;
        for (std::size_t k = 0; k < coldCk[i].size(); ++k) {
            EXPECT_EQ(coldCk[i][k], warmCk[i][k])
                << "checkpoint " << k << " of member " << i
                << " differs between cold capture and warm replay";
        }
    }
    removeTree(dir);
}

// ---------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------

TEST(FeedCacheTest, KeySensitivity)
{
    const SystemConfig conv =
        conventionalSystem(8.0, ReplKind::LRU, kScale);
    const Mix mix = testMix();
    const FeedKey base =
        feedKeyOf(conv, mix, kSeed, kScale, kWarmup, kMeasure);

    // SLLC-only differences share the front end, so they MUST share the
    // key — that sharing is the entire point of the cache.
    for (const SystemConfig &peer :
         {conventionalSystem(8.0, ReplKind::Ship, kScale),
          conventionalSystem(4.0, ReplKind::NRU, kScale),
          reuseSystem(4.0, 1.0, 16, kScale),
          ncidSystem(8.0, 1.0, kScale)}) {
        ASSERT_TRUE(FanoutCmp::samePrivatePrefix(conv, peer));
        const FeedKey k =
            feedKeyOf(peer, mix, kSeed, kScale, kWarmup, kMeasure);
        EXPECT_EQ(k.bytes, base.bytes);
        EXPECT_EQ(k.digest, base.digest);
    }

    // Anything that reshapes reference generation or private-hierarchy
    // classification must change the key.
    auto expectDiffers = [&](const FeedKey &k, const char *what) {
        EXPECT_NE(k.bytes, base.bytes) << what;
        EXPECT_NE(k.digest, base.digest) << what;
    };
    expectDiffers(
        feedKeyOf(conv, mix, kSeed + 1, kScale, kWarmup, kMeasure),
        "seed");
    expectDiffers(feedKeyOf(conv, mix, kSeed, 4, kWarmup, kMeasure),
                  "scale");
    expectDiffers(
        feedKeyOf(conv, mix, kSeed, kScale, kWarmup + 1, kMeasure),
        "warmup");
    expectDiffers(
        feedKeyOf(conv, mix, kSeed, kScale, kWarmup, kMeasure + 1),
        "measure");
    Mix other = mix;
    other.apps[0] = "milc";
    expectDiffers(feedKeyOf(conv, other, kSeed, kScale, kWarmup, kMeasure),
                  "mix");
    SystemConfig bigL2 = conv;
    bigL2.priv.l2Bytes *= 2;
    expectDiffers(
        feedKeyOf(bigL2, mix, kSeed, kScale, kWarmup, kMeasure),
        "private prefix (L2 bytes)");
}

// ---------------------------------------------------------------------
// Corruption demotion matrix
// ---------------------------------------------------------------------

TEST(FeedCacheTest, CorruptBlobDemotesToVerifiedRecompute)
{
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(conventionalSystem(8.0, ReplKind::LRU, kScale));
    cfgs.push_back(reuseSystem(4.0, 1.0, 16, kScale));
    for (SystemConfig &c : cfgs)
        c.seed = kSeed;
    constexpr Cycle kW = 20'000, kM = 60'000;

    for (const FaultClass cls : {FaultClass::FeedTruncate,
                                 FaultClass::FeedFlip,
                                 FaultClass::FeedVersion}) {
        SCOPED_TRACE(toString(cls));
        EXPECT_TRUE(isServiceFault(cls));
        EXPECT_EQ(detectedBy(cls, LlcKind::Conventional),
                  Invariant::FeedIntegrity);
        EXPECT_EQ(detectedBy(cls, LlcKind::Reuse),
                  Invariant::FeedIntegrity);

        const std::string dir =
            scratchDir(std::string("rc-feed-") + toString(cls));
        removeTree(dir);
        const FeedKey key =
            feedKeyOf(cfgs.front(), testMix(), kSeed, kScale, kW, kM);
        std::string pristine;
        {
            FeedCache fc(dir);
            FanoutCmp cold(cfgs, mixFactory(), nullptr, /*capture=*/true);
            runWindow(cold, kW, kM);
            fc.store(key, cold.sharedFeed());
            pristine = fleetFingerprint(cold, cfgs.size());
        }

        FaultInjector injector(kSeed);
        FeedCache fc(dir);
        const std::string path = fc.blobPath(key.digest);
        ASSERT_TRUE(injector.corruptFeedBlob(path, cls));

        // The damaged blob must demote to a miss and be unlinked —
        // never replayed.
        EXPECT_EQ(fc.lookup(key), nullptr);
        EXPECT_EQ(fc.stats().corruptDropped, 1u);
        EXPECT_NE(::access(path.c_str(), F_OK), 0)
            << "corrupt blob left on disk";

        // The demoted key recomputes bit-identically and re-stores.
        bool warm = true;
        const std::string recomputed =
            runViaProtocol(dir, cfgs, kW, kM, &warm);
        EXPECT_FALSE(warm) << "recompute should not have found a blob";
        EXPECT_EQ(recomputed, pristine);
        // A fresh instance (fc's in-memory view predates the re-store):
        // the recompute must have landed a replayable blob.
        FeedCache after(dir);
        EXPECT_NE(after.lookup(key), nullptr)
            << "recompute should have re-stored the blob";
        removeTree(dir);
    }
}

TEST(FeedCacheTest, InjectorRejectsNonFeedClassesAndMissingBlobs)
{
    FaultInjector injector(kSeed);
    EXPECT_FALSE(injector.corruptFeedBlob("/nonexistent/feed.bin",
                                          FaultClass::FeedFlip));
    EXPECT_FALSE(injector.corruptFeedBlob("/nonexistent/feed.bin",
                                          FaultClass::TagStateFlip));

    // The --inject spellings round-trip like every other class.
    for (const FaultClass cls : {FaultClass::FeedTruncate,
                                 FaultClass::FeedFlip,
                                 FaultClass::FeedVersion}) {
        FaultClass parsed;
        ASSERT_TRUE(faultClassFromName(toString(cls), parsed));
        EXPECT_EQ(parsed, cls);
    }
}

// ---------------------------------------------------------------------
// Two processes racing one cold key
// ---------------------------------------------------------------------

TEST(FeedCacheTest, ColdKeyRaceSerializesViaFlock)
{
    const std::string dir = scratchDir("rc-feed-race");
    removeTree(dir);
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(conventionalSystem(8.0, ReplKind::LRU, kScale));
    cfgs.push_back(reuseSystem(4.0, 1.0, 16, kScale));
    for (SystemConfig &c : cfgs)
        c.seed = kSeed;
    constexpr Cycle kW = 20'000, kM = 60'000;

    // mkdir up front so both racers open the same directory.
    { FeedCache fc(dir); }
    const std::string childFp = dir + "/child.fp";

    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        // Child: run the cold/warm protocol and report its fingerprint;
        // no gtest assertions on this side of the fork.
        const std::string fp = runViaProtocol(dir, cfgs, kW, kM);
        std::FILE *f = std::fopen(childFp.c_str(), "w");
        if (!f)
            ::_exit(2);
        std::fwrite(fp.data(), 1, fp.size(), f);
        std::fclose(f);
        ::_exit(0);
    }

    const std::string parentFp = runViaProtocol(dir, cfgs, kW, kM);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child racer failed";

    std::string childResult;
    {
        std::FILE *f = std::fopen(childFp.c_str(), "r");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            childResult.append(buf, n);
        std::fclose(f);
    }
    EXPECT_EQ(childResult, parentFp)
        << "racers disagreed on the simulated state";

    // However the race went, the dir holds exactly the one blob and a
    // fresh lookup replays it.
    FeedCache fc(dir);
    EXPECT_EQ(fc.size(), 1u);
    const FeedKey key =
        feedKeyOf(cfgs.front(), testMix(), kSeed, kScale, kW, kM);
    EXPECT_NE(fc.lookup(key), nullptr);

    bool warm = false;
    const std::string replayed = runViaProtocol(dir, cfgs, kW, kM, &warm);
    EXPECT_TRUE(warm);
    EXPECT_EQ(replayed, parentFp);
    removeTree(dir);
}

} // namespace
