/** @file Unit tests for the conventional inclusive SLLC. */

#include <gtest/gtest.h>

#include <vector>

#include "cache/conventional_llc.hh"

namespace rc
{
namespace
{

/** Records recalls/downgrades and plays back scripted dirtiness. */
class MockRecaller : public RecallHandler
{
  public:
    struct Call
    {
        Addr line;
        std::uint32_t mask;
        bool wasDowngrade;
    };

    bool
    recall(Addr line_addr, std::uint32_t mask) override
    {
        calls.push_back({line_addr, mask, false});
        return nextDirty;
    }

    bool
    downgrade(Addr line_addr, std::uint32_t mask) override
    {
        calls.push_back({line_addr, mask, true});
        return nextDirty;
    }

    std::vector<Call> calls;
    bool nextDirty = false;
};

class ConvLlcTest : public ::testing::Test
{
  protected:
    ConvLlcTest()
        : mem(MemCtrlConfig{}),
          llc(makeCfg(), mem)
    {
        llc.setRecallHandler(&recaller);
    }

    static ConvLlcConfig
    makeCfg()
    {
        ConvLlcConfig cfg;
        cfg.capacityBytes = 64 * 1024; // 1024 lines, 64 sets
        cfg.ways = 16;
        cfg.numCores = 8;
        cfg.repl = ReplKind::LRU;
        return cfg;
    }

    LlcResponse
    req(Addr line, CoreId core, ProtoEvent e, Cycle now = 0)
    {
        return llc.request(LlcRequest{line, core, e, now});
    }

    static Addr line(std::uint64_t n) { return n * lineBytes; }

    MemCtrl mem;
    MockRecaller recaller;
    ConventionalLlc llc;
};

TEST_F(ConvLlcTest, MissAllocatesAndFetches)
{
    const auto r = req(line(1), 0, ProtoEvent::GETS);
    EXPECT_FALSE(r.tagHit);
    EXPECT_TRUE(r.memFetched);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::S);
    ASSERT_NE(llc.dirOf(line(1)), nullptr);
    EXPECT_TRUE(llc.dirOf(line(1))->isSharer(0));
    EXPECT_EQ(mem.totalReads(), 1u);
}

TEST_F(ConvLlcTest, HitServesFromDataArray)
{
    req(line(1), 0, ProtoEvent::GETS);
    const auto r = req(line(1), 1, ProtoEvent::GETS, 100);
    EXPECT_TRUE(r.tagHit);
    EXPECT_TRUE(r.dataHit);
    EXPECT_FALSE(r.memFetched);
    EXPECT_EQ(r.doneAt, 100 + makeCfg().tagLatency + makeCfg().dataLatency);
    EXPECT_TRUE(llc.dirOf(line(1))->isSharer(1));
}

TEST_F(ConvLlcTest, GetxInvalidatesOtherSharers)
{
    req(line(1), 0, ProtoEvent::GETS);
    req(line(1), 1, ProtoEvent::GETS);
    recaller.calls.clear();
    req(line(1), 2, ProtoEvent::GETX);
    ASSERT_EQ(recaller.calls.size(), 1u);
    EXPECT_EQ(recaller.calls[0].mask, 0b011u);
    EXPECT_FALSE(recaller.calls[0].wasDowngrade);
    const DirectoryEntry *d = llc.dirOf(line(1));
    EXPECT_TRUE(d->isSharer(2));
    EXPECT_FALSE(d->isSharer(0));
    EXPECT_EQ(d->owner(), 2u);
}

TEST_F(ConvLlcTest, UpgradeKeepsDataState)
{
    req(line(1), 0, ProtoEvent::GETS);
    req(line(1), 1, ProtoEvent::GETS);
    recaller.calls.clear();
    const auto r = req(line(1), 0, ProtoEvent::UPG);
    EXPECT_TRUE(r.tagHit);
    EXPECT_FALSE(r.memFetched);
    ASSERT_EQ(recaller.calls.size(), 1u);
    EXPECT_EQ(recaller.calls[0].mask, 0b010u);
    EXPECT_EQ(llc.dirOf(line(1))->owner(), 0u);
    EXPECT_EQ(llc.stats().lookup("upgrades"), 1u);
}

TEST_F(ConvLlcTest, ReadInterventionDowngradesOwner)
{
    req(line(1), 0, ProtoEvent::GETX); // core 0 owns
    recaller.calls.clear();
    recaller.nextDirty = true;
    const auto r = req(line(1), 1, ProtoEvent::GETS);
    EXPECT_TRUE(r.tagHit);
    ASSERT_EQ(recaller.calls.size(), 1u);
    EXPECT_TRUE(recaller.calls[0].wasDowngrade);
    EXPECT_EQ(recaller.calls[0].mask, 0b001u);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::M) << "absorbed dirty data";
    EXPECT_FALSE(llc.dirOf(line(1))->hasOwner());
    EXPECT_EQ(llc.stats().lookup("interventions"), 1u);
}

TEST_F(ConvLlcTest, WriteInterventionTransfersOwnership)
{
    req(line(1), 0, ProtoEvent::GETX);
    recaller.calls.clear();
    req(line(1), 1, ProtoEvent::GETX);
    // The old owner is invalidated (not downgraded).
    ASSERT_EQ(recaller.calls.size(), 1u);
    EXPECT_FALSE(recaller.calls[0].wasDowngrade);
    EXPECT_EQ(llc.dirOf(line(1))->owner(), 1u);
}

TEST_F(ConvLlcTest, PutxMakesLineDirtyAtLlc)
{
    req(line(1), 0, ProtoEvent::GETX);
    llc.evictNotify(line(1), 0, true, 50);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::M);
    EXPECT_FALSE(llc.dirOf(line(1))->hasOwner());
    EXPECT_TRUE(llc.dirOf(line(1))->empty());
}

TEST_F(ConvLlcTest, PutsJustClearsPresence)
{
    req(line(1), 0, ProtoEvent::GETS);
    llc.evictNotify(line(1), 0, false, 50);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::S);
    EXPECT_TRUE(llc.dirOf(line(1))->empty());
}

TEST_F(ConvLlcTest, CapacityEvictionRecallsAndWritesBack)
{
    // Fill one set (16 ways map to set 1: lines 1, 65, 129, ...).
    for (std::uint64_t i = 0; i < 16; ++i)
        req(line(1 + 64 * i), 0, ProtoEvent::GETS);
    // Make the LRU victim dirty at the LLC.
    llc.evictNotify(line(1), 0, true, 0);
    for (std::uint64_t i = 1; i < 16; ++i)
        llc.evictNotify(line(1 + 64 * i), 0, false, 0);
    const auto writes_before = mem.totalWrites();
    recaller.calls.clear();
    // A 17th line in the same set evicts line(1) (LRU, dirty, not
    // present in any private cache anymore).
    req(line(1 + 64 * 16), 0, ProtoEvent::GETS);
    EXPECT_EQ(llc.stateOf(line(1)), LlcState::I);
    EXPECT_EQ(mem.totalWrites(), writes_before + 1);
    EXPECT_TRUE(recaller.calls.empty()) << "no private copies to recall";
}

TEST_F(ConvLlcTest, InclusionVictimRecallsPrivateCopies)
{
    for (std::uint64_t i = 0; i < 17; ++i)
        req(line(1 + 64 * i), 3, ProtoEvent::GETS);
    // All 17 lines were loaded by core 3 and no eviction notifications
    // arrived, so the victim was recalled.
    EXPECT_EQ(llc.stats().lookup("inclusionRecalls"), 1u);
    bool saw_recall = false;
    for (const auto &c : recaller.calls)
        saw_recall |= !c.wasDowngrade && (c.mask & (1u << 3));
    EXPECT_TRUE(saw_recall);
}

TEST_F(ConvLlcTest, MissLatencyIncludesMemory)
{
    const auto r = req(line(1), 0, ProtoEvent::GETS, 1000);
    EXPECT_GT(r.doneAt,
              1000 + makeCfg().tagLatency + makeCfg().dataLatency);
}

TEST_F(ConvLlcTest, PerCoreCounters)
{
    req(line(1), 2, ProtoEvent::GETS);
    req(line(1), 2, ProtoEvent::GETS);
    req(line(2), 5, ProtoEvent::GETS);
    EXPECT_EQ(llc.accessesBy(2), 2u);
    EXPECT_EQ(llc.missesBy(2), 1u);
    EXPECT_EQ(llc.missesBy(5), 1u);
    EXPECT_EQ(llc.missesBy(0), 0u);
}

TEST_F(ConvLlcTest, ObserverSeesFillsHitsEvictions)
{
    struct Obs : LlcObserver
    {
        int fills = 0, hits = 0, evicts = 0;
        void onDataFill(Addr, Cycle) override { ++fills; }
        void onDataHit(Addr, Cycle) override { ++hits; }
        void onDataEvict(Addr, Cycle) override { ++evicts; }
    } obs;
    llc.setObserver(&obs);
    for (std::uint64_t i = 0; i < 17; ++i)
        req(line(1 + 64 * i), 0, ProtoEvent::GETS);
    req(line(1 + 64 * 16), 0, ProtoEvent::GETS); // hit
    EXPECT_EQ(obs.fills, 17);
    EXPECT_EQ(obs.hits, 1);
    EXPECT_EQ(obs.evicts, 1);
}

TEST_F(ConvLlcTest, NrrPolicyAvoidsRecallsWherePossible)
{
    // Build an NRR-managed conventional cache: inclusion victims prefer
    // lines absent from the private caches.
    ConvLlcConfig cfg = makeCfg();
    cfg.repl = ReplKind::NRR;
    MemCtrl m2(MemCtrlConfig{});
    ConventionalLlc nrr(cfg, m2);
    MockRecaller rec;
    nrr.setRecallHandler(&rec);
    // 15 lines still held by core 1; one line (the 16th) was PUTS'd.
    for (std::uint64_t i = 0; i < 16; ++i)
        nrr.request(LlcRequest{line(1 + 64 * i), 1, ProtoEvent::GETS, 0});
    nrr.evictNotify(line(1 + 64 * 7), 1, false, 0);
    rec.calls.clear();
    // The 17th line must victimize the non-present one: no recall.
    nrr.request(LlcRequest{line(1 + 64 * 16), 2, ProtoEvent::GETS, 0});
    EXPECT_TRUE(rec.calls.empty());
    EXPECT_EQ(nrr.stateOf(line(1 + 64 * 7)), LlcState::I);
}

TEST_F(ConvLlcTest, PrefetchFillGoesToLruPosition)
{
    // Fill a set with 15 demand lines + 1 prefetched line (all PUTS'd so
    // inclusion does not interfere); the prefetched one is evicted first.
    for (std::uint64_t i = 0; i < 15; ++i) {
        req(line(1 + 64 * i), 0, ProtoEvent::GETS);
        llc.evictNotify(line(1 + 64 * i), 0, false, 0);
    }
    LlcRequest pf{line(1 + 64 * 15), 0, ProtoEvent::GETS, 0};
    pf.prefetch = true;
    llc.request(pf);
    llc.evictNotify(line(1 + 64 * 15), 0, false, 0);
    req(line(1 + 64 * 16), 0, ProtoEvent::GETS);
    EXPECT_EQ(llc.stateOf(line(1 + 64 * 15)), LlcState::I)
        << "the prefetched line entered at LRU and leaves first";
}

TEST_F(ConvLlcTest, Describe)
{
    EXPECT_EQ(llc.describe(), "conv-0.0625MB-LRU");
}

} // namespace
} // namespace rc
