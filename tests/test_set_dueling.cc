/** @file Unit tests for the thread-aware set-dueling monitor. */

#include <gtest/gtest.h>

#include "cache/set_dueling.hh"

namespace rc
{
namespace
{

TEST(SetDueling, LeaderMapping)
{
    SetDueling d(1024, 8);
    // With modulus 64: set c is core c's A-leader, set 32+c its B-leader.
    for (CoreId c = 0; c < 8; ++c) {
        EXPECT_EQ(d.role(c, c), SetDueling::Role::LeaderA);
        EXPECT_EQ(d.role(32 + c, c), SetDueling::Role::LeaderB);
        EXPECT_EQ(d.role(c + 64, c), SetDueling::Role::LeaderA);
    }
    // A set that leads for core 0 is a follower for core 1.
    EXPECT_EQ(d.role(0, 1), SetDueling::Role::Follower);
    EXPECT_EQ(d.role(40, 3), SetDueling::Role::Follower);
}

TEST(SetDueling, LeadersForceTheirPolicy)
{
    SetDueling d(1024, 8);
    EXPECT_FALSE(d.chooseB(0, 0));  // A-leader of core 0
    EXPECT_TRUE(d.chooseB(32, 0));  // B-leader of core 0
}

TEST(SetDueling, PselStartsMid)
{
    SetDueling d(1024, 4, 10);
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(d.psel(c), 512u);
}

TEST(SetDueling, MissesInLeadersMovePsel)
{
    SetDueling d(1024, 2);
    const auto mid = d.psel(0);
    d.onMiss(0, 0); // A-leader miss: A looks bad
    EXPECT_EQ(d.psel(0), mid + 1);
    d.onMiss(32, 0); // B-leader miss
    d.onMiss(32, 0);
    EXPECT_EQ(d.psel(0), mid - 1);
    // Other cores unaffected.
    EXPECT_EQ(d.psel(1), mid);
}

TEST(SetDueling, FollowerMissesIgnored)
{
    SetDueling d(1024, 2);
    const auto mid = d.psel(0);
    d.onMiss(5, 0); // follower set for core 0
    EXPECT_EQ(d.psel(0), mid);
}

TEST(SetDueling, FollowersTrackPsel)
{
    SetDueling d(1024, 2);
    // Make policy A look terrible for core 0.
    for (int i = 0; i < 600; ++i)
        d.onMiss(0, 0);
    EXPECT_TRUE(d.chooseB(5, 0));
    EXPECT_FALSE(d.chooseB(5, 1)); // core 1 still neutral -> A
}

TEST(SetDueling, PselSaturates)
{
    SetDueling d(1024, 1, 4); // 4-bit PSEL: 0..15
    for (int i = 0; i < 100; ++i)
        d.onMiss(0, 0);
    EXPECT_EQ(d.psel(0), 15u);
    for (int i = 0; i < 200; ++i)
        d.onMiss(32, 0);
    EXPECT_EQ(d.psel(0), 0u);
}

TEST(SetDueling, PerThreadIsolation)
{
    SetDueling d(1024, 8);
    for (int i = 0; i < 600; ++i)
        d.onMiss(3, 3); // core 3's A-leader
    // Set 20 is a follower set for every core (leaders live at
    // slots 0..7 and 32..39 with modulus 64).
    EXPECT_TRUE(d.chooseB(20, 3));
    for (CoreId c = 0; c < 8; ++c) {
        if (c != 3)
            EXPECT_FALSE(d.chooseB(20, c));
    }
}

TEST(SetDueling, TinyArrayDegradesGracefully)
{
    SetDueling d(2, 8); // cannot host leaders for 8 cores
    EXPECT_LT(d.psel(0), 1u << 10);
    // No crash; role queries stay valid.
    (void)d.role(0, 0);
    (void)d.chooseB(1, 7);
}

} // namespace
} // namespace rc
