/** @file Tests of the CACTI-lite latency surrogate against Table 3. */

#include <gtest/gtest.h>

#include "model/latency_model.hh"

namespace rc
{
namespace
{

constexpr std::uint64_t MiB = 1ull << 20;

TEST(LatencyModel, Conv8MbAnchors)
{
    const LatencyEstimate conv = conventionalLatency(8 * MiB, 16);
    EXPECT_NEAR(conv.tag, 1.0, 1e-9) << "tag latency is the unit";
    // Section 3.6: "the data array access latency ... is roughly three
    // times larger than its tag array access latency".
    EXPECT_NEAR(conv.data / conv.tag, 3.0, 1e-9);
}

TEST(LatencyModel, Rc88TagPenalty)
{
    // Table 3: RC-8/8 tag access +36% vs the conventional 8 MB cache.
    const LatencyEstimate conv = conventionalLatency(8 * MiB, 16);
    const LatencyEstimate rc = reuseLatency(8 * MiB, 16, 8 * MiB, 0);
    EXPECT_NEAR(relativeChange(rc.tag, conv.tag), 0.36, 0.03);
}

TEST(LatencyModel, Rc84DataSavings)
{
    // Table 3: data access -16% when halved from 8 to 4 MB.
    const LatencyEstimate conv = conventionalLatency(8 * MiB, 16);
    const LatencyEstimate rc = reuseLatency(8 * MiB, 16, 4 * MiB, 0);
    EXPECT_NEAR(relativeChange(rc.data, conv.data), -0.16, 0.02);
}

TEST(LatencyModel, Rc84TotalSlightlyFaster)
{
    // Table 3 bottom line: RC-8/4 total -3%.
    const LatencyEstimate conv = conventionalLatency(8 * MiB, 16);
    const LatencyEstimate rc = reuseLatency(8 * MiB, 16, 4 * MiB, 0);
    EXPECT_NEAR(relativeChange(rc.total, conv.total), -0.03, 0.02);
}

TEST(LatencyModel, Rc88TotalSlightlySlower)
{
    // Table 3: RC-8/8 total +10%.
    const LatencyEstimate conv = conventionalLatency(8 * MiB, 16);
    const LatencyEstimate rc = reuseLatency(8 * MiB, 16, 8 * MiB, 0);
    EXPECT_NEAR(relativeChange(rc.total, conv.total), 0.10, 0.02);
}

TEST(LatencyModel, SmallerArraysAreFaster)
{
    // Section 3.6's closing claim: every evaluated reuse configuration
    // is no slower than the conventional cache it replaces.
    const LatencyEstimate conv = conventionalLatency(8 * MiB, 16);
    for (double data_mb : {4.0, 2.0, 1.0, 0.5}) {
        const LatencyEstimate rc = reuseLatency(
            8 * MiB, 16,
            static_cast<std::uint64_t>(data_mb * MiB), 0);
        EXPECT_LE(rc.total, conv.total * 1.001) << data_mb;
    }
}

TEST(LatencyModel, MonotonicInSize)
{
    EXPECT_LT(conventionalLatency(4 * MiB, 16).total,
              conventionalLatency(8 * MiB, 16).total);
    EXPECT_LT(conventionalLatency(8 * MiB, 16).total,
              conventionalLatency(16 * MiB, 16).total);
}

TEST(LatencyModel, RelativeChangeHelper)
{
    EXPECT_DOUBLE_EQ(relativeChange(1.36, 1.0), 0.36);
    EXPECT_DOUBLE_EQ(relativeChange(0.84, 1.0), -0.16);
    EXPECT_DOUBLE_EQ(relativeChange(5.0, 0.0), 0.0);
}

} // namespace
} // namespace rc
