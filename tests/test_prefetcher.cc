/** @file
 * Unit tests for the stride prefetcher and the prefetch-aware SLLC
 * policies (paper Section 6).
 */

#include <gtest/gtest.h>

#include "cache/prefetcher.hh"
#include "reuse/reuse_cache.hh"
#include "sim/cmp.hh"

namespace rc
{
namespace
{

PrefetcherConfig
pfCfg(std::uint32_t degree = 2)
{
    PrefetcherConfig cfg;
    cfg.enable = true;
    cfg.degree = degree;
    return cfg;
}

Addr
line(std::uint64_t n)
{
    return n * lineBytes;
}

TEST(StridePf, DetectsUnitStride)
{
    StridePrefetcher pf(pfCfg(2), "pf");
    std::vector<Addr> out;
    pf.observeMiss(line(100), out);
    EXPECT_TRUE(out.empty()) << "first miss trains only";
    pf.observeMiss(line(101), out);
    EXPECT_TRUE(out.empty()) << "stride seen once: below confidence";
    pf.observeMiss(line(102), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], line(103));
    EXPECT_EQ(out[1], line(104));
}

TEST(StridePf, DetectsLargeStride)
{
    StridePrefetcher pf(pfCfg(1), "pf");
    std::vector<Addr> out;
    // Strides within one 4 KB region (64 lines): use stride 7.
    pf.observeMiss(line(0), out);
    pf.observeMiss(line(7), out);
    pf.observeMiss(line(14), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], line(21));
}

TEST(StridePf, IrregularPatternStaysQuiet)
{
    StridePrefetcher pf(pfCfg(2), "pf");
    Rng rng(3);
    std::vector<Addr> out;
    for (int i = 0; i < 200; ++i)
        pf.observeMiss(line(rng.below(64)), out);
    // Random lines inside one region rarely repeat a stride twice.
    EXPECT_LT(out.size(), 40u);
}

TEST(StridePf, RegionsTrackedIndependently)
{
    StridePrefetcher pf(pfCfg(1), "pf");
    std::vector<Addr> out;
    // Interleave two sequential streams in adjacent 4 KB regions (the
    // 16-entry table indexes region & 15, so these use distinct slots).
    const std::uint64_t a = 0, b = 64;
    pf.observeMiss(line(a + 0), out);
    pf.observeMiss(line(b + 0), out);
    pf.observeMiss(line(a + 1), out);
    pf.observeMiss(line(b + 1), out);
    pf.observeMiss(line(a + 2), out);
    pf.observeMiss(line(b + 2), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], line(a + 3));
    EXPECT_EQ(out[1], line(b + 3));
}

TEST(StridePf, StatsCount)
{
    StridePrefetcher pf(pfCfg(2), "pf");
    std::vector<Addr> out;
    for (std::uint64_t i = 0; i < 10; ++i)
        pf.observeMiss(line(i), out);
    EXPECT_EQ(pf.stats().lookup("misses"), 10u);
    EXPECT_GT(pf.stats().lookup("candidates"), 0u);
}

// ---------------------------------------------------------------------
// Prefetch-aware reuse cache (Section 6: prefetched lines keep the
// lowest priority; a prefetch hit on a TO tag is not a reuse).
// ---------------------------------------------------------------------

class NullRecaller : public RecallHandler
{
  public:
    bool recall(Addr, std::uint32_t) override { return false; }
    bool downgrade(Addr, std::uint32_t) override { return false; }
};

TEST(PrefetchAwareReuse, PrefetchTagOnlyHitDoesNotAllocateData)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
    ReuseCache llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);

    // Demand miss creates a TO tag; the line leaves the private cache.
    llc.request(LlcRequest{line(5), 0, ProtoEvent::GETS, 0});
    llc.evictNotify(line(5), 0, false, 0);
    ASSERT_EQ(llc.stateOf(line(5)), LlcState::TO);

    // A prefetch touching the TO tag must NOT be treated as a reuse.
    LlcRequest pf{line(5), 1, ProtoEvent::GETS, 10};
    pf.prefetch = true;
    const auto r = llc.request(pf);
    EXPECT_TRUE(r.tagHit);
    EXPECT_TRUE(r.memFetched);
    EXPECT_EQ(llc.stateOf(line(5)), LlcState::TO)
        << "prefetches are as low priority as non-reused lines";
    EXPECT_EQ(llc.dataArray().residentCount(), 0u);
    llc.checkInvariants();

    // A later demand access is still a genuine reuse.
    llc.evictNotify(line(5), 1, false, 20);
    llc.request(LlcRequest{line(5), 0, ProtoEvent::GETS, 30});
    EXPECT_EQ(llc.stateOf(line(5)), LlcState::S);
}

TEST(PrefetchAwareReuse, PrefetchMissAllocatesTagOnly)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
    ReuseCache llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);

    LlcRequest pf{line(7), 0, ProtoEvent::GETS, 0};
    pf.prefetch = true;
    llc.request(pf);
    EXPECT_EQ(llc.stateOf(line(7)), LlcState::TO);
    EXPECT_EQ(llc.dataArray().residentCount(), 0u);
}

// ---------------------------------------------------------------------
// System integration.
// ---------------------------------------------------------------------

class SeqStream : public RefStream
{
  public:
    explicit SeqStream(Addr base_) : base(base_) {}

    MemRef
    next() override
    {
        MemRef r{base + pos * lineBytes, MemOp::Read, 3, false};
        ++pos;
        return r;
    }

    const char *label() const override { return "seq"; }

  private:
    Addr base;
    std::uint64_t pos = 0;
};

TEST(PrefetchSystem, SequentialStreamSpeedsUp)
{
    auto run = [](bool enable) {
        SystemConfig sys = baselineSystem(8);
        sys.prefetch.enable = enable;
        sys.prefetch.degree = 4;
        std::vector<std::unique_ptr<RefStream>> streams;
        for (CoreId i = 0; i < 8; ++i)
            streams.push_back(
                std::make_unique<SeqStream>(Addr{i} << 32));
        Cmp cmp(sys, std::move(streams));
        cmp.run(100'000);
        cmp.beginMeasurement();
        cmp.run(400'000);
        return cmp.aggregateIpc();
    };
    const double off = run(false);
    const double on = run(true);
    EXPECT_GT(on, off * 1.2)
        << "a pure sequential stream must benefit from prefetching";
}

TEST(PrefetchSystem, IssueCounterTracks)
{
    SystemConfig sys = baselineSystem(8);
    sys.prefetch.enable = true;
    std::vector<std::unique_ptr<RefStream>> streams;
    for (CoreId i = 0; i < 8; ++i)
        streams.push_back(std::make_unique<SeqStream>(Addr{i} << 32));
    Cmp cmp(sys, std::move(streams));
    cmp.run(200'000);
    EXPECT_GT(cmp.prefetchesIssued(), 0u);
    ASSERT_NE(cmp.prefetcher(0), nullptr);
    EXPECT_GT(cmp.prefetcher(0)->stats().lookup("triggers"), 0u);
}

TEST(PrefetchSystem, DisabledByDefault)
{
    SystemConfig sys = baselineSystem(8);
    std::vector<std::unique_ptr<RefStream>> streams;
    for (CoreId i = 0; i < 8; ++i)
        streams.push_back(std::make_unique<SeqStream>(Addr{i} << 32));
    Cmp cmp(sys, std::move(streams));
    cmp.run(100'000);
    EXPECT_EQ(cmp.prefetchesIssued(), 0u);
    EXPECT_EQ(cmp.prefetcher(0), nullptr);
}

TEST(PrefetchSystem, ReuseCacheWithPrefetchingRunsCoherently)
{
    SystemConfig sys = reuseSystem(4, 1, 0, 8);
    sys.prefetch.enable = true;
    std::vector<std::unique_ptr<RefStream>> streams;
    for (CoreId i = 0; i < 8; ++i)
        streams.push_back(std::make_unique<SeqStream>(Addr{i} << 32));
    Cmp cmp(sys, std::move(streams));
    cmp.run(300'000);
    EXPECT_GT(cmp.prefetchesIssued(), 0u);
}

} // namespace
} // namespace rc
