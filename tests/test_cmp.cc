/** @file Unit tests for the CMP system model. */

#include <gtest/gtest.h>

#include "sim/cmp.hh"
#include "workloads/mixes.hh"

namespace rc
{
namespace
{

/** Fixed synthetic stream for deterministic micro-scenarios. */
class ScriptStream : public RefStream
{
  public:
    /** @param offset added to every address (per-core privatization). */
    explicit ScriptStream(std::vector<MemRef> script_, Addr offset = 0)
        : script(std::move(script_)), base(offset)
    {}

    MemRef
    next() override
    {
        MemRef r = script[pos % script.size()];
        r.addr += base;
        ++pos;
        return r;
    }

    const char *label() const override { return "script"; }

  private:
    std::vector<MemRef> script;
    Addr base;
    std::size_t pos = 0;
};

SystemConfig
tinySystem(LlcKind kind)
{
    SystemConfig sys = kind == LlcKind::Reuse ? reuseSystem(4, 1, 0, 8)
                                              : baselineSystem(8);
    return sys;
}

std::vector<std::unique_ptr<RefStream>>
scriptedCores(std::uint32_t n, const std::vector<MemRef> &script,
              bool privatize = false)
{
    std::vector<std::unique_ptr<RefStream>> out;
    for (std::uint32_t i = 0; i < n; ++i)
        out.push_back(std::make_unique<ScriptStream>(
            script, privatize ? Addr{i} << 32 : 0));
    return out;
}

TEST(Cmp, L1HitLoopRetiresAtFullRate)
{
    // One address hit in the L1 forever: IPC -> (think+1)/(think+1) = 1.
    std::vector<MemRef> script{{0x1000, MemOp::Read, 3, false}};
    Cmp cmp(tinySystem(LlcKind::Conventional), scriptedCores(8, script));
    cmp.run(10'000);
    cmp.beginMeasurement();
    cmp.run(100'000);
    // First access misses; everything after hits with 1-cycle latency:
    // 4 instructions per 4 cycles.
    EXPECT_NEAR(cmp.ipc(0), 1.0, 0.01);
    EXPECT_EQ(cmp.measuredMpki(0).llc, 0.0);
}

TEST(Cmp, UniqueLinesMissEverywhere)
{
    // Striding far apart forever: every access is an LLC miss.
    std::vector<MemRef> script;
    for (int i = 0; i < 4096; ++i)
        script.push_back({0x100000ull + 0x10000ull * i + 0x40ull *
                          (i * 7 % 64), MemOp::Read, 0, false});
    Cmp cmp(tinySystem(LlcKind::Conventional),
            scriptedCores(8, script, /*privatize=*/true));
    cmp.beginMeasurement();
    cmp.run(50'000);
    const MpkiTriple m = cmp.measuredMpki(0);
    EXPECT_NEAR(m.l1, 1000.0, 50.0); // every instruction misses
    EXPECT_NEAR(m.llc, m.l1, 50.0);
    EXPECT_LT(cmp.ipc(0), 0.05);
}

TEST(Cmp, SharedLineCoherence)
{
    // All 8 cores hammer one shared line with reads and writes; the
    // directory, upgrades and interventions must keep counters sane and
    // nothing may assert.
    std::vector<MemRef> script{
        {0x7000, MemOp::Read, 1, false},
        {0x7000, MemOp::Write, 1, false},
        {0x7000, MemOp::Read, 1, false},
    };
    Cmp cmp(tinySystem(LlcKind::Conventional), scriptedCores(8, script));
    cmp.run(200'000);
    const StatSet &s = cmp.llc().stats();
    EXPECT_GT(s.lookup("invalidationsSent"), 0u);
    EXPECT_GT(s.lookup("upgrades") + s.lookup("interventions"), 0u);
}

TEST(Cmp, SharedLineCoherenceOnReuseCache)
{
    std::vector<MemRef> script{
        {0x7000, MemOp::Read, 1, false},
        {0x7000, MemOp::Write, 1, false},
    };
    Cmp cmp(tinySystem(LlcKind::Reuse), scriptedCores(8, script));
    cmp.run(200'000);
    const StatSet &s = cmp.llc().stats();
    EXPECT_GT(s.lookup("invalidationsSent"), 0u);
}

TEST(Cmp, MeasurementWindowDeltas)
{
    std::vector<MemRef> script{{0x1000, MemOp::Read, 3, false}};
    Cmp cmp(tinySystem(LlcKind::Conventional), scriptedCores(8, script));
    cmp.run(10'000);
    const auto before = cmp.core(0).instructions();
    cmp.beginMeasurement();
    EXPECT_EQ(cmp.measuredInstructions(0), 0u);
    cmp.run(10'000);
    EXPECT_EQ(cmp.measuredInstructions(0),
              cmp.core(0).instructions() - before);
    EXPECT_EQ(cmp.measuredCycles(), 10'000u);
}

TEST(Cmp, DeterministicAcrossRuns)
{
    const Mix mix = exampleMix();
    auto run = [&mix]() {
        Cmp cmp(baselineSystem(8), buildMixStreams(mix, 42, 8));
        cmp.run(200'000);
        cmp.beginMeasurement();
        cmp.run(400'000);
        return cmp.aggregateIpc();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Cmp, StreamCountMustMatchCores)
{
    std::vector<MemRef> script{{0x1000, MemOp::Read, 3, false}};
    EXPECT_DEATH(Cmp(tinySystem(LlcKind::Conventional),
                     scriptedCores(3, script)),
                 "one stream per core");
}

TEST(Cmp, WritebacksReachMemory)
{
    // Write a footprint larger than the (scaled, 1 MB = 16 Ki lines)
    // LLC so dirty lines flow all the way out to DRAM.
    std::vector<MemRef> script;
    for (int i = 0; i < 32768; ++i)
        script.push_back({0x4000000ull + 0x40ull * i, MemOp::Write, 0,
                          false});
    Cmp cmp(tinySystem(LlcKind::Conventional),
            scriptedCores(8, script, /*privatize=*/true));
    cmp.run(2'000'000);
    EXPECT_GT(cmp.memory().totalWrites(), 0u);
}

TEST(Cmp, MshrsObserveMisses)
{
    std::vector<MemRef> script;
    for (int i = 0; i < 4096; ++i)
        script.push_back({0x300000ull + 0x10000ull * i, MemOp::Read, 0,
                          false});
    Cmp cmp(tinySystem(LlcKind::Conventional), scriptedCores(8, script));
    cmp.run(100'000);
    Counter allocs = 0;
    for (const auto &m : cmp.crossbar().mshrs())
        allocs += m->stats().lookup("allocations");
    EXPECT_GT(allocs, 0u);
}

TEST(Cmp, AggregateIpcSumsCores)
{
    std::vector<MemRef> script{{0x1000, MemOp::Read, 3, false}};
    Cmp cmp(tinySystem(LlcKind::Conventional), scriptedCores(8, script));
    cmp.run(10'000);
    cmp.beginMeasurement();
    cmp.run(50'000);
    double sum = 0.0;
    for (CoreId c = 0; c < cmp.numCores(); ++c)
        sum += cmp.ipc(c);
    EXPECT_DOUBLE_EQ(cmp.aggregateIpc(), sum);
}

} // namespace
} // namespace rc
