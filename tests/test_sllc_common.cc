/** @file
 * Parameterized battery over every SLLC organization through the common
 * Sllc interface: the CMP swaps organizations freely, so they must all
 * honour the same contract.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "cache/conventional_llc.hh"
#include "ncid/ncid_cache.hh"
#include "reuse/reuse_cache.hh"

namespace rc
{
namespace
{

enum class Organization
{
    ConvLru,
    ConvDrrip,
    ConvNrr,
    Reuse,
    ReusePredicted,
    ReuseSetAssoc,
    Ncid,
};

const char *
orgName(Organization o)
{
    switch (o) {
      case Organization::ConvLru: return "ConvLru";
      case Organization::ConvDrrip: return "ConvDrrip";
      case Organization::ConvNrr: return "ConvNrr";
      case Organization::Reuse: return "Reuse";
      case Organization::ReusePredicted: return "ReusePredicted";
      case Organization::ReuseSetAssoc: return "ReuseSetAssoc";
      case Organization::Ncid: return "Ncid";
    }
    return "?";
}

class CountingRecaller : public RecallHandler
{
  public:
    bool
    recall(Addr, std::uint32_t mask) override
    {
        recalls += __builtin_popcount(mask);
        return false;
    }

    bool
    downgrade(Addr, std::uint32_t mask) override
    {
        downgrades += __builtin_popcount(mask);
        return true;
    }

    std::uint64_t recalls = 0;
    std::uint64_t downgrades = 0;
};

std::unique_ptr<Sllc>
makeOrg(Organization o, MemCtrl &mem)
{
    switch (o) {
      case Organization::ConvLru:
      case Organization::ConvDrrip:
      case Organization::ConvNrr: {
        ConvLlcConfig cfg;
        cfg.capacityBytes = 64 * 1024;
        cfg.numCores = 8;
        cfg.repl = o == Organization::ConvLru ? ReplKind::LRU
                 : o == Organization::ConvDrrip ? ReplKind::DRRIP
                                                : ReplKind::NRR;
        return std::make_unique<ConventionalLlc>(cfg, mem);
      }
      case Organization::Reuse:
      case Organization::ReusePredicted: {
        ReuseCacheConfig cfg =
            ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
        cfg.usePredictor = o == Organization::ReusePredicted;
        return std::make_unique<ReuseCache>(cfg, mem);
      }
      case Organization::ReuseSetAssoc: {
        ReuseCacheConfig cfg =
            ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 16);
        return std::make_unique<ReuseCache>(cfg, mem);
      }
      case Organization::Ncid: {
        NcidConfig cfg;
        cfg.tagEquivBytes = 64 * 1024;
        cfg.dataBytes = 16 * 1024;
        cfg.numCores = 8;
        return std::make_unique<NcidCache>(cfg, mem);
      }
    }
    return nullptr;
}

class SllcContract : public ::testing::TestWithParam<Organization>
{
  protected:
    SllcContract() : mem(MemCtrlConfig{})
    {
        llc = makeOrg(GetParam(), mem);
        llc->setRecallHandler(&recaller);
    }

    LlcResponse
    req(Addr a, CoreId core, ProtoEvent e, Cycle now = 0)
    {
        return llc->request(LlcRequest{a, core, e, now});
    }

    static Addr line(std::uint64_t n) { return n * lineBytes; }

    MemCtrl mem;
    CountingRecaller recaller;
    std::unique_ptr<Sllc> llc;
};

TEST_P(SllcContract, ColdMissFetchesMemory)
{
    const auto r = req(line(1), 0, ProtoEvent::GETS);
    EXPECT_FALSE(r.tagHit);
    EXPECT_TRUE(r.memFetched);
    EXPECT_GT(r.doneAt, 0u);
    EXPECT_EQ(mem.totalReads(), 1u);
}

TEST_P(SllcContract, RepeatedAccessEventuallyHitsData)
{
    for (int i = 0; i < 4; ++i) {
        req(line(1), 0, ProtoEvent::GETS);
        llc->evictNotify(line(1), 0, false, 0);
    }
    const auto r = req(line(1), 0, ProtoEvent::GETS);
    EXPECT_TRUE(r.tagHit);
    EXPECT_TRUE(r.dataHit) << "4 prior accesses must establish the line";
}

TEST_P(SllcContract, ResponseTimeNeverBeforeRequest)
{
    // A core that owns a line would hit privately and never re-request
    // it at the SLLC; mirror that protocol precondition here.
    std::unordered_map<Addr, CoreId> owner;
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const Cycle now = i * 7;
        const Addr a = line(rng.below(512));
        const auto core = static_cast<CoreId>(rng.below(8));
        const bool write = rng.chance(0.3);
        if (owner.count(a) && owner[a] == core)
            continue;
        if (write)
            owner[a] = core;
        else
            owner.erase(a);
        const auto r = req(a, core,
                           write ? ProtoEvent::GETX : ProtoEvent::GETS,
                           now);
        EXPECT_GT(r.doneAt, now);
    }
}

TEST_P(SllcContract, WriteRequestsInvalidateSharers)
{
    req(line(1), 0, ProtoEvent::GETS);
    req(line(1), 1, ProtoEvent::GETS);
    const auto before = recaller.recalls;
    req(line(1), 2, ProtoEvent::GETX);
    EXPECT_GT(recaller.recalls, before);
}

TEST_P(SllcContract, UpgradeAfterSharedRead)
{
    req(line(1), 0, ProtoEvent::GETS);
    const auto r = req(line(1), 0, ProtoEvent::UPG);
    EXPECT_TRUE(r.tagHit);
    // An upgrade moves no data: no memory read beyond the initial one.
    EXPECT_EQ(mem.totalReads(), 1u);
}

TEST_P(SllcContract, PerCoreCountersMonotone)
{
    req(line(1), 3, ProtoEvent::GETS);
    req(line(2), 3, ProtoEvent::GETS);
    EXPECT_EQ(llc->accessesBy(3), 2u);
    EXPECT_GE(llc->missesBy(3), 1u);
    EXPECT_LE(llc->missesBy(3), 2u);
    EXPECT_EQ(llc->accessesBy(0), 0u);
}

TEST_P(SllcContract, DescribeNonEmpty)
{
    EXPECT_FALSE(llc->describe().empty());
}

TEST_P(SllcContract, DeterministicReplay)
{
    auto run = [this]() {
        MemCtrl m(MemCtrlConfig{});
        auto cache = makeOrg(GetParam(), m);
        CountingRecaller rec;
        cache->setRecallHandler(&rec);
        Rng rng(99);
        std::unordered_map<Addr, CoreId> owner;
        for (int i = 0; i < 5000; ++i) {
            const Addr a = line(rng.below(2048));
            const auto core = static_cast<CoreId>(rng.below(8));
            const bool write = rng.chance(0.25);
            if (owner.count(a) && owner[a] == core)
                continue;
            if (write)
                owner[a] = core;
            else
                owner.erase(a);
            cache->request(LlcRequest{
                a, core, write ? ProtoEvent::GETX : ProtoEvent::GETS,
                static_cast<Cycle>(i) * 3});
        }
        std::uint64_t sum = 0;
        for (const auto &e : cache->stats().entries())
            sum = sum * 31 + e.value;
        return sum;
    };
    EXPECT_EQ(run(), run());
}

TEST_P(SllcContract, DirtyEvictionsEventuallyReachMemory)
{
    // Write a footprint far beyond the 64 KB tag reach so dirty data is
    // forced out of the hierarchy.
    Rng rng(13);
    std::unordered_map<Addr, CoreId> owner;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = line(rng.below(16384));
        const auto core = static_cast<CoreId>(rng.below(8));
        if (owner.count(a) && owner[a] == core)
            continue;
        req(a, core, ProtoEvent::GETX, static_cast<Cycle>(i) * 5);
        // The private cache evicts the dirty copy right away.
        llc->evictNotify(a, core, true, static_cast<Cycle>(i) * 5 + 1);
        owner.erase(a);
    }
    EXPECT_GT(mem.totalWrites(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, SllcContract,
    ::testing::Values(Organization::ConvLru, Organization::ConvDrrip,
                      Organization::ConvNrr, Organization::Reuse,
                      Organization::ReusePredicted,
                      Organization::ReuseSetAssoc, Organization::Ncid),
    [](const ::testing::TestParamInfo<Organization> &info) {
        return orgName(info.param);
    });

} // namespace
} // namespace rc
