/** @file
 * Tests of the hardware cost model against the paper's Table 2 numbers.
 */

#include <gtest/gtest.h>

#include "model/cost_model.hh"

namespace rc
{
namespace
{

constexpr std::uint64_t MiB = 1ull << 20;

TEST(CostModel, Conventional8MbMatchesTable2)
{
    // Table 2, column "Conv. 8MB, 16-way": tag 21 bits, coherence 4,
    // presence 8, replacement 1 -> 34 bits/entry; data 512 bits;
    // total 69888 Kbits.
    const CacheCost c = conventionalCost(8 * MiB, 16, 8, ReplKind::NRU);
    EXPECT_EQ(c.tagFieldBits, 21u);
    EXPECT_EQ(c.coherenceBits, 4u);
    EXPECT_EQ(c.presenceBits, 8u);
    EXPECT_EQ(c.replacementBits, 1u);
    EXPECT_EQ(c.tag.bitsPerEntry, 34u);
    EXPECT_EQ(c.data.bitsPerEntry, 512u);
    EXPECT_EQ(c.tag.entries, 131072u);
    EXPECT_DOUBLE_EQ(c.totalKbits(), 69888.0);
}

TEST(CostModel, ReuseRc41FullyAssociativeMatchesTable2)
{
    // Table 2, column "RC-4/1 FA": tag entry 50 bits (22 tag + 5 coh +
    // 8 presence + 1 repl + 14 fwd), data entry 530 bits (512 + valid +
    // repl + 16 rev), total 11680 Kbits.
    const CacheCost c = reuseCost(4 * MiB, 16, 1 * MiB, 0);
    EXPECT_EQ(c.tagFieldBits, 22u);
    EXPECT_EQ(c.coherenceBits, 5u);
    EXPECT_EQ(c.fwdPointerBits, 14u);
    EXPECT_EQ(c.tag.bitsPerEntry, 50u);
    EXPECT_EQ(c.revPointerBits, 16u);
    EXPECT_EQ(c.data.bitsPerEntry, 530u);
    EXPECT_EQ(c.tag.entries, 65536u);
    EXPECT_EQ(c.data.entries, 16384u);
    EXPECT_DOUBLE_EQ(c.totalKbits(), 11680.0);
}

TEST(CostModel, ReuseRc41SixteenWayMatchesTable2)
{
    // Table 2, column "RC-4/1 16-way": tag entry 40 bits (fwd 4), data
    // entry 520 bits (rev 6 = 4 way + 2 set), total 10880 Kbits.
    const CacheCost c = reuseCost(4 * MiB, 16, 1 * MiB, 16);
    EXPECT_EQ(c.fwdPointerBits, 4u);
    EXPECT_EQ(c.tag.bitsPerEntry, 40u);
    EXPECT_EQ(c.revPointerBits, 6u);
    EXPECT_EQ(c.data.bitsPerEntry, 520u);
    EXPECT_DOUBLE_EQ(c.totalKbits(), 10880.0);
}

TEST(CostModel, HeadlineStorageReduction)
{
    // Section 3.5: RC-4/1 FA needs 16.7% of the conventional 8 MB
    // storage (15.6% set-associative).
    const double conv =
        conventionalCost(8 * MiB, 16, 8, ReplKind::NRU).totalKbits();
    const double fa = reuseCost(4 * MiB, 16, 1 * MiB, 0).totalKbits();
    const double sa = reuseCost(4 * MiB, 16, 1 * MiB, 16).totalKbits();
    EXPECT_NEAR(fa / conv, 0.167, 0.001);
    EXPECT_NEAR(sa / conv, 0.156, 0.001);
    EXPECT_NEAR(1.0 - fa / conv, 0.833, 0.001); // "reduction 83.3%"
    EXPECT_NEAR(1.0 - sa / conv, 0.844, 0.001); // "reduction 84.4%"
}

TEST(CostModel, SetAssociativeCheaperThanFa)
{
    // Section 3.5: the set-associative data array needs ~6.8% fewer bits.
    const double fa = reuseCost(4 * MiB, 16, 1 * MiB, 0).totalKbits();
    const double sa = reuseCost(4 * MiB, 16, 1 * MiB, 16).totalKbits();
    EXPECT_NEAR((fa - sa) / fa, 0.068, 0.002);
}

TEST(CostModel, ReplacementBitWidths)
{
    EXPECT_EQ(replacementBitsPerLine(ReplKind::NRU), 1u);
    EXPECT_EQ(replacementBitsPerLine(ReplKind::NRR), 1u);
    EXPECT_EQ(replacementBitsPerLine(ReplKind::Clock), 1u);
    EXPECT_EQ(replacementBitsPerLine(ReplKind::DRRIP), 2u);
    EXPECT_EQ(replacementBitsPerLine(ReplKind::Random), 0u);
}

TEST(CostModel, DrripCostsOneExtraBitPerLine)
{
    const CacheCost nru = conventionalCost(8 * MiB, 16, 8, ReplKind::NRU);
    const CacheCost dr = conventionalCost(8 * MiB, 16, 8, ReplKind::DRRIP);
    EXPECT_EQ(dr.tag.bitsPerEntry, nru.tag.bitsPerEntry + 1);
}

TEST(CostModel, TagFieldShrinksWithMoreSets)
{
    const CacheCost small = conventionalCost(1 * MiB, 16);
    const CacheCost big = conventionalCost(16 * MiB, 16);
    EXPECT_EQ(small.tagFieldBits, big.tagFieldBits + 4);
}

TEST(CostModel, ScalesLinearly)
{
    const CacheCost a = conventionalCost(2 * MiB, 16);
    const CacheCost b = conventionalCost(4 * MiB, 16);
    EXPECT_EQ(b.data.totalBits(), 2 * a.data.totalBits());
}

} // namespace
} // namespace rc
