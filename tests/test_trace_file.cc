/** @file Unit tests for trace recording and replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/log.hh"
#include "sim/trace_file.hh"
#include "workloads/generator.hh"

namespace rc
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Construct a reader and return the SimError it must throw. */
SimError
readerError(const std::string &path)
{
    try {
        TraceReader r(path);
    } catch (const SimError &err) {
        return err;
    }
    ADD_FAILURE() << "TraceReader('" << path << "') did not throw";
    return SimError(SimError::Kind::Trace, "missing throw");
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = tempPath("roundtrip.rct");
    std::vector<MemRef> refs{
        {0x123456789a, MemOp::Read, 3, false},
        {0xdeadbeefc0, MemOp::Write, 0, false},
        {0x0, MemOp::Read, 0xffffff, false},
        {0x40, MemOp::Read, 7, true},
    };
    {
        TraceWriter w(path);
        for (const MemRef &r : refs)
            w.write(r);
        EXPECT_EQ(w.count(), refs.size());
    }
    TraceReader r(path);
    EXPECT_EQ(r.size(), refs.size());
    for (const MemRef &want : refs) {
        const MemRef got = r.next();
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.think, want.think);
        EXPECT_EQ(got.isInstr, want.isInstr);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, LoopsAtEof)
{
    const std::string path = tempPath("loop.rct");
    {
        TraceWriter w(path);
        w.write({0x40, MemOp::Read, 1, false});
        w.write({0x80, MemOp::Read, 2, false});
    }
    TraceReader r(path);
    EXPECT_EQ(r.next().addr, 0x40u);
    EXPECT_EQ(r.next().addr, 0x80u);
    EXPECT_EQ(r.next().addr, 0x40u); // wrapped
    EXPECT_EQ(r.wraps(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFile, RecordHelperCapturesSyntheticStream)
{
    const AppProfile *app = findProfile("mcf");
    ASSERT_NE(app, nullptr);
    const std::string path = tempPath("mcf.rct");
    {
        SyntheticStream src(*app, 0, 42, 8);
        recordTrace(src, 5000, path);
    }
    // Replay must match a fresh instance of the same stream exactly.
    TraceReader replay(path);
    SyntheticStream fresh(*app, 0, 42, 8);
    for (int i = 0; i < 5000; ++i) {
        const MemRef a = replay.next();
        const MemRef b = fresh.next();
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.think, b.think);
        EXPECT_EQ(a.isInstr, b.isInstr);
    }
    std::remove(path.c_str());
}

// A corrupt trace is a per-run condition: it must throw a recoverable
// SimError(Trace) that the harness quarantines, not kill the process.

TEST(TraceFile, RejectsGarbage)
{
    const std::string path = tempPath("garbage.rct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace, but it is header-sized!", f);
    std::fclose(f);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("not a reuse-cache trace"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsEmptyTrace)
{
    const std::string path = tempPath("empty.rct");
    {
        TraceWriter w(path);
    }
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("no records"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows)
{
    const SimError err = readerError("/nonexistent/dir/nope.rct");
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("cannot open"),
              std::string::npos);
}

TEST(TraceFile, RejectsTruncatedHeader)
{
    const std::string path = tempPath("shortheader.rct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("RCTRACE1\x00\x00", 1, 10, f); // 10 of 16 bytes
    std::fclose(f);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("truncated"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsShortReadMidRecord)
{
    const std::string path = tempPath("midrecord.rct");
    {
        TraceWriter w(path);
        w.write({0x40, MemOp::Read, 1, false});
        w.write({0x80, MemOp::Read, 2, false});
    }
    // Chop 5 bytes off the last 12-byte record.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long full = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), full - 5), 0);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("ends mid-record"),
              std::string::npos);
    EXPECT_NE(std::string(err.what()).find("7 trailing byte(s)"),
              std::string::npos);
    EXPECT_NE(std::string(err.what()).find("1 full record(s)"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, LabelIsPath)
{
    const std::string path = tempPath("label.rct");
    {
        TraceWriter w(path);
        w.write({0x40, MemOp::Read, 1, false});
    }
    TraceReader r(path);
    EXPECT_EQ(std::string(r.label()), path);
    std::remove(path.c_str());
}

} // namespace
} // namespace rc
