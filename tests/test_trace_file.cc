/** @file Unit tests for trace recording and replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/log.hh"
#include "sim/trace_file.hh"
#include "workloads/generator.hh"

namespace rc
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Construct a reader and return the SimError it must throw. */
SimError
readerError(const std::string &path)
{
    try {
        TraceReader r(path);
    } catch (const SimError &err) {
        return err;
    }
    ADD_FAILURE() << "TraceReader('" << path << "') did not throw";
    return SimError(SimError::Kind::Trace, "missing throw");
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = tempPath("roundtrip.rct");
    std::vector<MemRef> refs{
        {0x123456789a, MemOp::Read, 3, false, 0x400123},
        {0xdeadbeefc0, MemOp::Write, 0, false, 0xfffffffffff0},
        {0x0, MemOp::Read, 0xffffff, false, 0},
        {0x40, MemOp::Read, 7, true, 0x40},
    };
    {
        TraceWriter w(path);
        for (const MemRef &r : refs)
            w.write(r);
        EXPECT_EQ(w.count(), refs.size());
    }
    TraceReader r(path);
    EXPECT_EQ(r.size(), refs.size());
    EXPECT_EQ(r.formatVersion(), 2u);
    for (const MemRef &want : refs) {
        const MemRef got = r.next();
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.think, want.think);
        EXPECT_EQ(got.isInstr, want.isInstr);
        EXPECT_EQ(got.pc, want.pc);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, LoopsAtEof)
{
    const std::string path = tempPath("loop.rct");
    {
        TraceWriter w(path);
        w.write({0x40, MemOp::Read, 1, false});
        w.write({0x80, MemOp::Read, 2, false});
    }
    TraceReader r(path);
    EXPECT_EQ(r.next().addr, 0x40u);
    EXPECT_EQ(r.next().addr, 0x80u);
    EXPECT_EQ(r.next().addr, 0x40u); // wrapped
    EXPECT_EQ(r.wraps(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFile, RecordHelperCapturesSyntheticStream)
{
    const AppProfile *app = findProfile("mcf");
    ASSERT_NE(app, nullptr);
    const std::string path = tempPath("mcf.rct");
    {
        SyntheticStream src(*app, 0, 42, 8);
        recordTrace(src, 5000, path);
    }
    // Replay must match a fresh instance of the same stream exactly.
    TraceReader replay(path);
    SyntheticStream fresh(*app, 0, 42, 8);
    for (int i = 0; i < 5000; ++i) {
        const MemRef a = replay.next();
        const MemRef b = fresh.next();
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.think, b.think);
        EXPECT_EQ(a.isInstr, b.isInstr);
        EXPECT_EQ(a.pc, b.pc);
    }
    std::remove(path.c_str());
}

// A corrupt trace is a per-run condition: it must throw a recoverable
// SimError(Trace) that the harness quarantines, not kill the process.

TEST(TraceFile, RejectsGarbage)
{
    const std::string path = tempPath("garbage.rct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace, but it is header-sized!", f);
    std::fclose(f);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("not a reuse-cache trace"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsEmptyTrace)
{
    const std::string path = tempPath("empty.rct");
    {
        TraceWriter w(path);
    }
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("no records"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows)
{
    const SimError err = readerError("/nonexistent/dir/nope.rct");
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("cannot open"),
              std::string::npos);
}

TEST(TraceFile, RejectsTruncatedHeader)
{
    const std::string path = tempPath("shortheader.rct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("RCTRACE1\x00\x00", 1, 10, f); // 10 of 16 bytes
    std::fclose(f);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("truncated"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsShortReadMidRecord)
{
    const std::string path = tempPath("midrecord.rct");
    {
        TraceWriter w(path);
        w.write({0x40, MemOp::Read, 1, false});
        w.write({0x80, MemOp::Read, 2, false});
    }
    // Chop 5 bytes off the last 20-byte record.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long full = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), full - 5), 0);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("ends mid-record"),
              std::string::npos);
    EXPECT_NE(std::string(err.what()).find("15 trailing byte(s)"),
              std::string::npos);
    EXPECT_NE(std::string(err.what()).find("1 full record(s)"),
              std::string::npos);
    std::remove(path.c_str());
}

// Version-1 traces (12-byte records, no PC field) predate the arena's
// PC plumbing; they must keep replaying, with pc = 0.
TEST(TraceFile, ReadsVersion1WithZeroPc)
{
    const std::string path = tempPath("v1.rct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    unsigned char header[16] = {};
    std::memcpy(header, "RCTRACE1", 8);
    ASSERT_EQ(std::fwrite(header, 1, sizeof(header), f), sizeof(header));
    // Two hand-encoded v1 records: addr, 24-bit think, flags.
    const unsigned char recs[24] = {
        0x40, 0x01, 0, 0, 0, 0, 0, 0, /* think */ 3, 0, 0, /* read */ 0,
        0x80, 0x02, 0, 0, 0, 0, 0, 0, /* think */ 0, 0, 0, /* write */ 1,
    };
    ASSERT_EQ(std::fwrite(recs, 1, sizeof(recs), f), sizeof(recs));
    std::fclose(f);

    TraceReader r(path);
    EXPECT_EQ(r.formatVersion(), 1u);
    EXPECT_EQ(r.size(), 2u);
    const MemRef a = r.next();
    EXPECT_EQ(a.addr, 0x140u);
    EXPECT_EQ(a.think, 3u);
    EXPECT_EQ(a.op, MemOp::Read);
    EXPECT_EQ(a.pc, 0u);
    const MemRef b = r.next();
    EXPECT_EQ(b.addr, 0x280u);
    EXPECT_EQ(b.op, MemOp::Write);
    EXPECT_EQ(b.pc, 0u);
    std::remove(path.c_str());
}

// An unknown version byte after a valid "RCTRACE" prefix is a distinct,
// actionable defect (not just "bad magic").
TEST(TraceFile, RejectsGarbageVersionByte)
{
    const std::string path = tempPath("badversion.rct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    unsigned char header[16] = {};
    std::memcpy(header, "RCTRACE9", 8);
    ASSERT_EQ(std::fwrite(header, 1, sizeof(header), f), sizeof(header));
    const unsigned char zeros[20] = {};
    ASSERT_EQ(std::fwrite(zeros, 1, sizeof(zeros), f), sizeof(zeros));
    std::fclose(f);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("unsupported trace version"),
              std::string::npos);
    std::remove(path.c_str());
}

// A truncated version byte (file shorter than the header) stays a
// truncation error, version-independent.
TEST(TraceFile, RejectsTruncatedVersionByte)
{
    const std::string path = tempPath("shortversion.rct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite("RCTRACE", 1, 7, f), 7u); // magic cut mid-way
    std::fclose(f);
    const SimError err = readerError(path);
    EXPECT_EQ(err.kind(), SimError::Kind::Trace);
    EXPECT_NE(std::string(err.what()).find("truncated"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceFile, LabelIsPath)
{
    const std::string path = tempPath("label.rct");
    {
        TraceWriter w(path);
        w.write({0x40, MemOp::Read, 1, false});
    }
    TraceReader r(path);
    EXPECT_EQ(std::string(r.label()), path);
    std::remove(path.c_str());
}

} // namespace
} // namespace rc
