/** @file Unit tests for the banked-SLLC crossbar. */

#include <gtest/gtest.h>

#include "sim/crossbar.hh"

namespace rc
{
namespace
{

CrossbarConfig
cfg()
{
    return CrossbarConfig{}; // 4 banks, link 4, occupancy 2, 16 MSHRs
}

TEST(Crossbar, LineInterleavedBanks)
{
    Crossbar xb(cfg());
    // Table 4: banks are interleaved at 64 B line granularity.
    EXPECT_EQ(xb.bankOf(0 * lineBytes), 0u);
    EXPECT_EQ(xb.bankOf(1 * lineBytes), 1u);
    EXPECT_EQ(xb.bankOf(2 * lineBytes), 2u);
    EXPECT_EQ(xb.bankOf(3 * lineBytes), 3u);
    EXPECT_EQ(xb.bankOf(4 * lineBytes), 0u);
    // Sub-line offsets stay in the same bank.
    EXPECT_EQ(xb.bankOf(lineBytes + 17), 1u);
}

TEST(Crossbar, LinkLatencyApplied)
{
    Crossbar xb(cfg());
    EXPECT_EQ(xb.requestSlot(0, 100), 100 + cfg().linkLatency);
    EXPECT_EQ(xb.responseLatency(), cfg().linkLatency);
}

TEST(Crossbar, SameBankSerializes)
{
    Crossbar xb(cfg());
    const Cycle a = xb.requestSlot(0, 100);
    const Cycle b = xb.requestSlot(4 * lineBytes, 100); // same bank 0
    EXPECT_EQ(b, a + cfg().bankOccupancy);
}

TEST(Crossbar, DifferentBanksOverlap)
{
    Crossbar xb(cfg());
    const Cycle a = xb.requestSlot(0, 100);
    const Cycle b = xb.requestSlot(lineBytes, 100); // bank 1
    EXPECT_EQ(a, b);
}

TEST(Crossbar, MshrBackPressureDelaysRequests)
{
    CrossbarConfig c = cfg();
    c.mshrPerBank = 2;
    Crossbar xb(c);
    // Two in-flight misses fill bank 0's MSHRs until cycle 500.
    Cycle s1 = xb.requestSlot(0, 0);
    xb.noteMiss(0, s1, 500);
    Cycle s2 = xb.requestSlot(4 * lineBytes, 0);
    xb.noteMiss(4 * lineBytes, s2, 500);
    // The third request cannot start before an entry retires.
    const Cycle s3 = xb.requestSlot(8 * lineBytes, 10);
    EXPECT_GE(s3, 500u);
}

TEST(Crossbar, MshrsTrackPerBank)
{
    Crossbar xb(cfg());
    const Cycle s = xb.requestSlot(0, 0);
    xb.noteMiss(0, s, 1000);
    EXPECT_EQ(xb.mshrs()[0]->occupancy(10), 1u);
    EXPECT_EQ(xb.mshrs()[1]->occupancy(10), 0u);
}

} // namespace
} // namespace rc
