/**
 * @file
 * Trace tooling: record a synthetic application to a trace file, then
 * replay it through the CMP on both the baseline and a reuse cache.
 *
 * Usage: trace_tools [app] [refs] [path]
 *   app   SPEC analog name (default mcf)
 *   refs  references to record per core (default 2000000)
 *   path  trace-file prefix (default /tmp/rc_trace)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sim/cmp.hh"
#include "sim/trace_file.hh"
#include "workloads/generator.hh"

namespace
{

constexpr std::uint32_t scale = 8;

double
replay(const rc::SystemConfig &sys, const std::string &prefix,
       std::uint32_t cores)
{
    std::vector<std::unique_ptr<rc::RefStream>> streams;
    for (rc::CoreId c = 0; c < cores; ++c)
        streams.push_back(std::make_unique<rc::TraceReader>(
            prefix + "." + std::to_string(c) + ".rct"));
    rc::Cmp cmp(sys, std::move(streams));
    cmp.run(1'000'000);
    cmp.beginMeasurement();
    cmp.run(6'000'000);
    return cmp.aggregateIpc();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "mcf";
    const auto refs = static_cast<std::uint64_t>(
        argc > 2 ? std::atoll(argv[2]) : 2'000'000);
    const std::string prefix = argc > 3 ? argv[3] : "/tmp/rc_trace";

    const rc::AppProfile *app = rc::findProfile(app_name);
    if (!app) {
        std::fprintf(stderr, "unknown application '%s'\n", app_name);
        return 1;
    }

    constexpr std::uint32_t cores = 8;
    std::printf("recording %llu refs/core of '%s' (8 cores) to %s.*.rct "
                "...\n", static_cast<unsigned long long>(refs), app_name,
                prefix.c_str());
    for (rc::CoreId c = 0; c < cores; ++c) {
        rc::SyntheticStream src(*app, c, 42, scale, cores);
        rc::recordTrace(src, refs,
                        prefix + "." + std::to_string(c) + ".rct");
    }

    std::printf("replaying through conv-8MB-LRU and RC-4/1 ...\n");
    const double base = replay(rc::baselineSystem(scale), prefix, cores);
    const double rc41 = replay(rc::reuseSystem(4, 1, 0, scale), prefix,
                               cores);
    std::printf("\n  conv-8MB aggregate IPC: %.3f\n", base);
    std::printf("  RC-4/1   aggregate IPC: %.3f  (speedup %.3f)\n",
                rc41, rc41 / base);
    std::printf("\ntraces left in %s.*.rct (12 bytes/record)\n",
                prefix.c_str());
    return 0;
}
