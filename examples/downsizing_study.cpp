/**
 * @file
 * Downsizing study: the paper's headline experiment in miniature.
 *
 * Sweeps the reuse-cache data array from 4 MB down to 512 KB (paper
 * scale) against the conventional 8 MB baseline on a few random
 * multiprogrammed mixes, and prints speedups next to the storage cost of
 * each configuration - reproducing the "RC-4/1 matches an 8 MB
 * conventional cache with 16.7% of the storage" story.
 *
 * Usage: downsizing_study [num_mixes] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "model/cost_model.hh"
#include "sim/cmp.hh"
#include "workloads/mixes.hh"

namespace
{

double
runIpc(const rc::SystemConfig &sys, const rc::Mix &mix, std::uint32_t scale)
{
    rc::Cmp cmp(sys, rc::buildMixStreams(mix, 42, scale));
    cmp.run(3'000'000);
    cmp.beginMeasurement();
    cmp.run(10'000'000);
    return cmp.aggregateIpc();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto num_mixes = static_cast<std::uint32_t>(
        argc > 1 ? std::atoi(argv[1]) : 4);
    const auto scale = static_cast<std::uint32_t>(
        argc > 2 ? std::atoi(argv[2]) : 8);
    constexpr std::uint64_t MiB = 1ull << 20;

    const auto mixes = rc::makeMixes(num_mixes, 8, 7);

    std::printf("Simulating %u mixes at capacity scale 1/%u "
                "(sizes below are paper-equivalent)...\n",
                num_mixes, scale);

    std::vector<double> base;
    for (const auto &mix : mixes)
        base.push_back(runIpc(rc::baselineSystem(scale), mix, scale));

    const double conv_kbits =
        rc::conventionalCost(8 * MiB, 16).totalKbits();

    struct Config
    {
        const char *name;
        double tagMbeq;
        double dataMb;
    };
    const Config configs[] = {
        {"RC-8/4", 8, 4}, {"RC-8/2", 8, 2}, {"RC-8/1", 8, 1},
        {"RC-4/1", 4, 1}, {"RC-4/0.5", 4, 0.5},
    };

    rc::Table table("Reuse-cache downsizing vs conventional 8 MB LRU");
    table.header({"config", "speedup", "storage (Kbits)", "vs conv 8MB"});
    table.row({"conv-8MB", "1.000", rc::fmtInt(static_cast<std::uint64_t>(
                                        conv_kbits)), "100%"});
    for (const Config &c : configs) {
        double sum = 0.0;
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            const rc::SystemConfig sys =
                rc::reuseSystem(c.tagMbeq, c.dataMb, 0, scale);
            sum += runIpc(sys, mixes[i], scale) / base[i];
        }
        const double cost = rc::reuseCost(
            static_cast<std::uint64_t>(c.tagMbeq * MiB), 16,
            static_cast<std::uint64_t>(c.dataMb * MiB), 0).totalKbits();
        table.row({c.name,
                   rc::fmtDouble(sum / static_cast<double>(mixes.size())),
                   rc::fmtInt(static_cast<std::uint64_t>(cost)),
                   rc::fmtPercent(cost / conv_kbits)});
        std::printf("  %s done\n", c.name);
    }
    table.print(std::cout);
    return 0;
}
