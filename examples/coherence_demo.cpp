/**
 * @file
 * Coherence demo: walks the TO-MSI protocol (paper Fig. 3 / Table 1)
 * through its interesting transitions on a tiny reuse cache, printing
 * each step - a runnable version of the paper's protocol description.
 */

#include <cstdio>

#include "coherence/protocol.hh"
#include "mem/memctrl.hh"
#include "reuse/reuse_cache.hh"

namespace
{

/** Recall handler that narrates what the SLLC asks of the cores. */
class NarratingRecaller : public rc::RecallHandler
{
  public:
    bool
    recall(rc::Addr line, std::uint32_t mask) override
    {
        std::printf("      [SLLC -> cores %s] invalidate line 0x%llx\n",
                    rc::presenceToString(mask).c_str(),
                    static_cast<unsigned long long>(line));
        return dirtyOnRecall;
    }

    bool
    downgrade(rc::Addr line, std::uint32_t mask) override
    {
        std::printf("      [SLLC -> cores %s] downgrade line 0x%llx "
                    "(M -> S)\n",
                    rc::presenceToString(mask).c_str(),
                    static_cast<unsigned long long>(line));
        return true;
    }

    bool dirtyOnRecall = false;
};

void
show(const rc::ReuseCache &llc, rc::Addr line)
{
    std::printf("      state(0x%llx) = %s, data array holds %llu line(s)\n",
                static_cast<unsigned long long>(line),
                rc::toString(llc.stateOf(line)),
                static_cast<unsigned long long>(
                    llc.dataArray().residentCount()));
}

} // namespace

int
main()
{
    rc::MemCtrl mem(rc::MemCtrlConfig{});
    // A miniature RC-4/1: 64 KBeq tags, 16 KB fully-associative data.
    rc::ReuseCacheConfig cfg =
        rc::ReuseCacheConfig::standard(64 * 1024, 16 * 1024, 0);
    rc::ReuseCache llc(cfg, mem);
    NarratingRecaller recaller;
    llc.setRecallHandler(&recaller);

    const rc::Addr line = 0x4000;
    rc::Cycle now = 0;

    std::printf("TO-MSI walkthrough (paper Figure 3)\n");
    std::printf("===================================\n\n");

    std::printf("1. Core 0 GETS - tag miss: fetch from memory, allocate "
                "TAG ONLY\n");
    llc.request(rc::LlcRequest{line, 0, rc::ProtoEvent::GETS, now += 100});
    show(llc, line);

    std::printf("\n2. Core 0 evicts the line (clean PUTS)\n");
    llc.evictNotify(line, 0, false, now += 100);
    show(llc, line);

    std::printf("\n3. Core 0 GETS again - REUSE detected: the line is "
                "read from memory a second time\n   and enters the data "
                "array (TO -> S, the dash-dotted arrow)\n");
    llc.request(rc::LlcRequest{line, 0, rc::ProtoEvent::GETS, now += 100});
    show(llc, line);

    std::printf("\n4. Core 1 GETS - data-array hit, both cores share\n");
    llc.request(rc::LlcRequest{line, 1, rc::ProtoEvent::GETS, now += 100});
    show(llc, line);

    std::printf("\n5. Core 1 UPG - upgrade: core 0's copy is "
                "invalidated, core 1 owns the line\n");
    llc.request(rc::LlcRequest{line, 1, rc::ProtoEvent::UPG, now += 100});
    show(llc, line);

    std::printf("\n6. Core 1 PUTX - dirty eviction absorbed by the data "
                "array (S -> M)\n");
    llc.evictNotify(line, 1, true, now += 100);
    show(llc, line);

    std::printf("\n7. Data-array pressure: other reused lines evict this "
                "one (DataRepl, M -> TO,\n   dirty data written back to "
                "memory; the tag remains)\n");
    const std::uint64_t cap = llc.dataArray().geometry().numLines();
    for (std::uint64_t i = 1; i <= cap; ++i) {
        const rc::Addr other = 0x100000 + i * rc::lineBytes;
        llc.request(rc::LlcRequest{other, 2, rc::ProtoEvent::GETS,
                                   now += 10});
        llc.evictNotify(other, 2, false, now += 10);
        llc.request(rc::LlcRequest{other, 2, rc::ProtoEvent::GETS,
                                   now += 10});
        llc.evictNotify(other, 2, false, now += 10);
    }
    show(llc, line);

    std::printf("\n8. Core 2 GETX on the TO line - reuse on a write: "
                "data allocated again, core 2 owns it\n");
    llc.request(rc::LlcRequest{line, 2, rc::ProtoEvent::GETX, now += 100});
    show(llc, line);

    std::printf("\nFinal SLLC counters:\n");
    for (const auto &e : llc.stats().entries()) {
        if (e.value)
            std::printf("  %-22s %8llu\n", e.name.c_str(),
                        static_cast<unsigned long long>(e.value));
    }
    llc.checkInvariants();
    std::printf("\npointer invariants hold.\n");
    return 0;
}
