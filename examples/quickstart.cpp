/**
 * @file
 * Quickstart: build an eight-core CMP with a reuse-cache SLLC, run a
 * multiprogrammed SPEC-analog mix, and print the headline statistics.
 *
 * Usage: quickstart [scale]
 *   scale  capacity divisor (default 8; 1 = paper-size caches)
 */

#include <cstdio>
#include <cstdlib>

#include "sim/cmp.hh"
#include "workloads/mixes.hh"

int
main(int argc, char **argv)
{
    const auto scale = static_cast<std::uint32_t>(
        argc > 1 ? std::atoi(argv[1]) : 8);

    // The paper's Section 2 example workload on the RC-4/1 reuse cache:
    // a tag array equivalent to a 4 MB conventional cache and a 1 MB
    // fully-associative data array.
    const rc::Mix mix = rc::exampleMix();
    rc::SystemConfig sys = rc::reuseSystem(4.0, 1.0, /*data_ways=*/0,
                                           scale);

    rc::Cmp cmp(sys, rc::buildMixStreams(mix, /*seed=*/42, scale));

    std::printf("workload: %s\n", mix.label().c_str());
    std::printf("SLLC: %s\n\n", cmp.llc().describe().c_str());

    cmp.run(1'000'000);      // warm the hierarchy
    cmp.beginMeasurement();
    cmp.run(4'000'000);      // measure

    std::printf("per-core IPC (measured over %llu cycles):\n",
                static_cast<unsigned long long>(cmp.measuredCycles()));
    for (rc::CoreId c = 0; c < cmp.numCores(); ++c) {
        const rc::MpkiTriple mpki = cmp.measuredMpki(c);
        std::printf("  core %u (%-10s)  IPC %.3f   MPKI L1 %6.2f  "
                    "L2 %6.2f  LLC %6.2f\n",
                    c, cmp.core(c).workloadLabel(), cmp.ipc(c),
                    mpki.l1, mpki.l2, mpki.llc);
    }
    std::printf("\naggregate IPC: %.3f\n\n", cmp.aggregateIpc());

    std::printf("SLLC counters:\n");
    for (const auto &e : cmp.llc().stats().entries()) {
        std::printf("  %-22s %12llu  # %s\n", e.name.c_str(),
                    static_cast<unsigned long long>(e.value),
                    e.desc.c_str());
    }
    return 0;
}
