/**
 * @file
 * Policy explorer: compare SLLC replacement policies on a conventional
 * cache (the Section 5.5 comparison, interactively sized).
 *
 * Usage: policy_explorer [mb] [num_mixes]
 *   mb         conventional cache size in paper-equivalent MB (default 8)
 *   num_mixes  workloads to average over (default 4)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/cmp.hh"
#include "workloads/mixes.hh"

namespace
{

constexpr std::uint32_t scale = 8;

double
runIpc(const rc::SystemConfig &sys, const rc::Mix &mix)
{
    rc::Cmp cmp(sys, rc::buildMixStreams(mix, 42, scale));
    cmp.run(3'000'000);
    cmp.beginMeasurement();
    cmp.run(10'000'000);
    return cmp.aggregateIpc();
}

} // namespace

int
main(int argc, char **argv)
{
    const double mb = argc > 1 ? std::atof(argv[1]) : 8.0;
    const auto num_mixes = static_cast<std::uint32_t>(
        argc > 2 ? std::atoi(argv[2]) : 4);

    const auto mixes = rc::makeMixes(num_mixes, 8, 7);
    std::printf("Comparing replacement policies on a %.3g MB "
                "conventional SLLC (%u mixes)...\n", mb, num_mixes);

    std::vector<double> base;
    for (const auto &mix : mixes)
        base.push_back(
            runIpc(rc::conventionalSystem(mb, rc::ReplKind::LRU, scale),
                   mix));

    rc::Table table("Replacement policies vs LRU");
    table.header({"policy", "mean speedup", "min", "max"});
    table.row({"LRU", "1.000", "-", "-"});
    for (rc::ReplKind kind :
         {rc::ReplKind::NRU, rc::ReplKind::Random, rc::ReplKind::SRRIP,
          rc::ReplKind::BRRIP, rc::ReplKind::DRRIP, rc::ReplKind::NRR}) {
        double sum = 0.0, mn = 1e9, mx = 0.0;
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            const double r =
                runIpc(rc::conventionalSystem(mb, kind, scale),
                       mixes[i]) / base[i];
            sum += r;
            mn = std::min(mn, r);
            mx = std::max(mx, r);
        }
        table.row({rc::toString(kind),
                   rc::fmtDouble(sum / static_cast<double>(mixes.size())),
                   rc::fmtDouble(mn), rc::fmtDouble(mx)});
        std::printf("  %s done\n", rc::toString(kind));
    }
    table.print(std::cout);
    return 0;
}
