/**
 * @file
 * rc-client: submit simulation runs to a running rc-daemon.
 *
 * Sweeps the paper's baseline (conventional 8 MB LRU) and the RC-1/1
 * reuse cache over --mixes multiprogrammed workloads through the
 * daemon, printing per-mix IPC and the reuse cache's speedup.  Repeated
 * invocations with the same parameters are served from the daemon's
 * persistent result cache instead of re-simulating.
 *
 * Resilience is the client library's: Busy replies back off with
 * deterministic jitter (honouring the server's retry-after hint), torn
 * replies reconnect and retry, and when the daemon is unreachable the
 * same simulation runs in-process — results are bit-identical either
 * way (--no-fallback turns that off to surface hard failures).
 *
 * Usage:
 *   rc-client [--socket=PATH] [--mixes=N] [--scale=N] [--seed=N]
 *             [--warmup=N] [--measure=N] [--deadline-ms=N]
 *             [--attempts=N] [--no-fallback]
 *   rc-client --stats      print the daemon's counters and exit
 *   rc-client --shutdown   ask the daemon to drain and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness.hh"
#include "service/client.hh"

namespace
{

const char *usage =
    "usage: rc-client [options]\n"
    "  --socket=PATH     daemon socket (default /tmp/rc-daemon.sock)\n"
    "  --mixes=N         workloads to sweep (default 3)\n"
    "  --scale=N         capacity divisor (default 8)\n"
    "  --seed=N          base RNG seed (default 42)\n"
    "  --warmup=N        warmup cycles (default 3000000)\n"
    "  --measure=N       measured cycles (default 12000000)\n"
    "  --deadline-ms=N   per-request deadline (default 0 = none)\n"
    "  --attempts=N      tries before falling back (default 6)\n"
    "  --no-fallback     fail instead of simulating in-process\n"
    "  --stats           print daemon counters and exit\n"
    "  --shutdown        drain the daemon and exit\n";

} // namespace

int
main(int argc, char **argv)
{
    rc::svc::ClientConfig ccfg;
    ccfg.socketPath = "/tmp/rc-daemon.sock";
    std::uint32_t mixes = 3;
    rc::svc::RunRequest proto;
    bool wantStats = false, wantShutdown = false, fallback = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() +
                                                   std::strlen(prefix)
                                             : nullptr;
        };
        if (const char *v = value("--socket=")) {
            ccfg.socketPath = v;
        } else if (const char *v = value("--mixes=")) {
            mixes = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--scale=")) {
            proto.scale = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--seed=")) {
            proto.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--warmup=")) {
            proto.warmup = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--measure=")) {
            proto.measure = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--deadline-ms=")) {
            proto.deadlineMs = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--attempts=")) {
            ccfg.maxAttempts = static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg == "--no-fallback") {
            fallback = false;
        } else if (arg == "--stats") {
            wantStats = true;
        } else if (arg == "--shutdown") {
            wantShutdown = true;
        } else if (arg == "--help") {
            std::fputs(usage, stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n%s", arg.c_str(),
                         usage);
            return 2;
        }
    }

    if (fallback)
        ccfg.fallback = [](const rc::svc::RunRequest &req,
                           const std::atomic<bool> *abort,
                           std::atomic<std::uint64_t> *heartbeat) {
            return rc::bench::simulateRequest(req, abort, heartbeat);
        };
    rc::svc::RcClient client(ccfg);

    if (wantStats) {
        const std::string json = client.daemonStatsJson();
        if (json.empty()) {
            std::fprintf(stderr, "rc-client: no daemon on '%s'\n",
                         ccfg.socketPath.c_str());
            return 1;
        }
        std::fputs(json.c_str(), stdout);
        return 0;
    }
    if (wantShutdown) {
        if (!client.shutdownDaemon()) {
            std::fprintf(stderr, "rc-client: no daemon on '%s'\n",
                         ccfg.socketPath.c_str());
            return 1;
        }
        std::printf("rc-client: daemon on '%s' is draining\n",
                    ccfg.socketPath.c_str());
        return 0;
    }

    const rc::SystemConfig baseline = rc::baselineSystem(proto.scale);
    const rc::SystemConfig reuse =
        rc::reuseSystem(1.0, 1.0, 0, proto.scale);
    const std::vector<rc::Mix> workloads =
        rc::makeMixes(mixes, baseline.numCores,
                      static_cast<std::uint32_t>(proto.seed));

    std::printf("%-28s %12s %12s %9s\n", "mix", "baseline-ipc",
                "reuse-ipc", "speedup");
    try {
        for (const rc::Mix &mix : workloads) {
            rc::svc::RunRequest base_req = proto, reuse_req = proto;
            base_req.config = baseline;
            base_req.mix = mix;
            reuse_req.config = reuse;
            reuse_req.mix = mix;
            const rc::RunResult b = client.simulate(base_req);
            const rc::RunResult r = client.simulate(reuse_req);
            std::printf("%-28s %12.4f %12.4f %8.3fx\n",
                        mix.label().c_str(), b.aggregateIpc,
                        r.aggregateIpc,
                        rc::bench::speedupRatio(r.aggregateIpc,
                                                b.aggregateIpc));
        }
    } catch (const rc::SimError &err) {
        std::fprintf(stderr, "rc-client: %s\n", err.what());
        return 1;
    }

    const rc::svc::ClientCounters c = client.counters();
    std::printf("client: %llu requests, %llu daemon results, %llu busy "
                "retries, %llu reconnects, %llu fallbacks\n",
                static_cast<unsigned long long>(c.requests),
                static_cast<unsigned long long>(c.results),
                static_cast<unsigned long long>(c.busyRetries),
                static_cast<unsigned long long>(c.reconnects),
                static_cast<unsigned long long>(c.fallbacks));
    return 0;
}
