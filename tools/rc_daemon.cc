/**
 * @file
 * rc-daemon: the resident sweep-simulation service.
 *
 * Listens on a Unix-domain socket, serves (SystemConfig x Mix) runs
 * from the persistent result cache, and simulates misses through a
 * bounded worker pool.  SIGTERM/SIGINT (or a client Shutdown frame)
 * drains gracefully: in-flight runs finish, the cache index is
 * persisted, new work is refused with Busy.  After a kill -9, simply
 * restart on the same --cache-dir: completed entries are recovered from
 * their blobs, torn ones are re-simulated.
 *
 * Usage:
 *   rc-daemon --socket=/tmp/rc.sock --cache-dir=rc-cache \
 *             [--workers=N] [--queue-depth=N] [--hang-timeout=S]
 *             [--retry-after-ms=N]
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/log.hh"
#include "harness.hh"
#include "service/daemon.hh"

namespace
{

std::atomic<bool> stopRequested{false};

void
onSignal(int)
{
    stopRequested.store(true);
}

const char *usage =
    "usage: rc-daemon [options]\n"
    "  --socket=PATH        Unix socket to listen on "
    "(default /tmp/rc-daemon.sock)\n"
    "  --cache-dir=DIR      persistent result cache (default rc-cache)\n"
    "  --workers=N          simulation worker threads (default 2)\n"
    "  --queue-depth=N      bounded job queue capacity (default 64)\n"
    "  --hang-timeout=S     abort runs with no forward progress for S "
    "seconds (default 300, 0 = off)\n"
    "  --retry-after-ms=N   backpressure hint in Busy replies "
    "(default 50)\n";

} // namespace

int
main(int argc, char **argv)
{
    rc::svc::DaemonConfig cfg;
    cfg.socketPath = "/tmp/rc-daemon.sock";
    cfg.cacheDir = "rc-cache";
    cfg.hangTimeout = 300.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() +
                                                   std::strlen(prefix)
                                             : nullptr;
        };
        if (const char *v = value("--socket=")) {
            cfg.socketPath = v;
        } else if (const char *v = value("--cache-dir=")) {
            cfg.cacheDir = v;
        } else if (const char *v = value("--workers=")) {
            cfg.workers = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--queue-depth=")) {
            cfg.queueDepth = static_cast<std::size_t>(std::atoll(v));
        } else if (const char *v = value("--hang-timeout=")) {
            cfg.hangTimeout = std::atof(v);
        } else if (const char *v = value("--retry-after-ms=")) {
            cfg.retryAfterMs = static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg == "--help") {
            std::fputs(usage, stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n%s", arg.c_str(),
                         usage);
            return 2;
        }
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    rc::svc::Daemon daemon(
        cfg, [](const rc::svc::RunRequest &req,
                const std::atomic<bool> *abort,
                std::atomic<std::uint64_t> *heartbeat) {
            return rc::bench::simulateRequest(req, abort, heartbeat);
        });
    try {
        daemon.start();
    } catch (const rc::SimError &err) {
        std::fprintf(stderr, "rc-daemon: %s\n", err.what());
        return 1;
    }
    rc::inform("rc-daemon: serving on '%s', cache '%s' (%zu entries)",
               cfg.socketPath.c_str(), cfg.cacheDir.c_str(),
               daemon.cache().size());

    while (!stopRequested.load() && !daemon.isDraining())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    rc::inform("rc-daemon: draining (in-flight runs finish, new work is "
               "refused)");
    daemon.requestStop();
    daemon.stop();
    std::fputs(daemon.statsJson().c_str(), stdout);
    return 0;
}
