/**
 * @file
 * rc-daemon: the resident sweep-simulation service.
 *
 * Listens on a Unix-domain socket, serves (SystemConfig x Mix) runs
 * from the persistent result cache, and simulates misses through a
 * bounded worker pool.  SIGTERM/SIGINT (or a client Shutdown frame)
 * drains gracefully: in-flight runs finish, the cache index is
 * persisted, new work is refused with Busy.  A SECOND SIGTERM/SIGINT
 * during the drain gives up on it and exits nonzero immediately (an
 * operator mashing ^C means "now", not "eventually").  After a kill -9,
 * simply restart on the same --cache-dir: completed entries are
 * recovered from their blobs, torn ones are re-simulated.
 *
 * With --isolate every simulation runs in a forked, rlimit-capped
 * worker process: a crashing or runaway run costs one child and one
 * typed Error reply, and a request that keeps killing workers is
 * quarantined persistently (see src/service/supervisor.hh).
 *
 * Usage:
 *   rc-daemon --socket=/tmp/rc.sock --cache-dir=rc-cache \
 *             [--workers=N] [--queue-depth=N] [--hang-timeout=S]
 *             [--retry-after-ms=N] [--isolate] [--rlimit-cpu=S]
 *             [--rlimit-as-mb=N] [--poison-threshold=K]
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <sys/wait.h>

#include "common/log.hh"
#include "harness.hh"
#include "service/daemon.hh"

namespace
{

std::atomic<int> stopSignals{0};

void
onStopSignal(int)
{
    stopSignals.fetch_add(1);
    // The second signal is handled in the main loop: _Exit from a
    // handler would skip the cache-index persist that is still safe to
    // attempt, and fprintf here is not async-signal-safe.
}

void
onChild(int)
{
    // Worker children are reaped synchronously by their WorkerProcess
    // (waitpid on the specific pid); this handler exists only so
    // SIGCHLD interrupts blocking syscalls instead of being ignored
    // outright — an ignored SIGCHLD (SIG_IGN) would make the kernel
    // auto-reap and break those targeted waitpids.
}

/** sigaction without SA_RESTART: a stop signal must interrupt, not be
 *  transparently retried around. */
void
installHandler(int sig, void (*fn)(int))
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = fn;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(sig, &sa, nullptr);
}

const char *usage =
    "usage: rc-daemon [options]\n"
    "  --socket=PATH        Unix socket to listen on "
    "(default /tmp/rc-daemon.sock)\n"
    "  --cache-dir=DIR      persistent result cache (default rc-cache)\n"
    "  --workers=N          simulation workers (default 2)\n"
    "  --queue-depth=N      bounded job queue capacity (default 64)\n"
    "  --hang-timeout=S     abort runs with no forward progress for S "
    "seconds (default 300, 0 = off)\n"
    "  --retry-after-ms=N   backpressure hint in Busy replies "
    "(default 50)\n"
    "  --isolate            run every simulation in a forked, sandboxed "
    "worker process\n"
    "  --rlimit-cpu=S       RLIMIT_CPU seconds per worker child "
    "(default 0 = uncapped; needs --isolate)\n"
    "  --rlimit-as-mb=N     RLIMIT_AS megabytes per worker child "
    "(default 0 = uncapped; needs --isolate)\n"
    "  --poison-threshold=K distinct worker kills before a request is "
    "quarantined (default 3; needs --isolate)\n"
    "  --feed-cache=DIR     persistent front-end feed cache: misses "
    "whose private prefix,\n"
    "                       mix and windows were seen before replay the "
    "classified record\n"
    "                       stream instead of re-simulating the front "
    "end (default off)\n";

} // namespace

int
main(int argc, char **argv)
{
    rc::svc::DaemonConfig cfg;
    cfg.socketPath = "/tmp/rc-daemon.sock";
    cfg.cacheDir = "rc-cache";
    cfg.hangTimeout = 300.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() +
                                                   std::strlen(prefix)
                                             : nullptr;
        };
        if (const char *v = value("--socket=")) {
            cfg.socketPath = v;
        } else if (const char *v = value("--cache-dir=")) {
            cfg.cacheDir = v;
        } else if (const char *v = value("--workers=")) {
            cfg.workers = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--queue-depth=")) {
            cfg.queueDepth = static_cast<std::size_t>(std::atoll(v));
        } else if (const char *v = value("--hang-timeout=")) {
            cfg.hangTimeout = std::atof(v);
        } else if (const char *v = value("--retry-after-ms=")) {
            cfg.retryAfterMs = static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg == "--isolate") {
            cfg.isolateWorkers = true;
        } else if (const char *v = value("--rlimit-cpu=")) {
            cfg.workerCpuLimitSeconds =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--rlimit-as-mb=")) {
            cfg.workerAddressSpaceBytes =
                static_cast<std::uint64_t>(std::atoll(v)) * 1024 * 1024;
        } else if (const char *v = value("--poison-threshold=")) {
            cfg.poisonThreshold =
                static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--feed-cache=")) {
            cfg.feedCacheDir = v;
        } else if (arg == "--help") {
            std::fputs(usage, stdout);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n%s", arg.c_str(),
                         usage);
            return 2;
        }
    }
    if (!cfg.isolateWorkers &&
        (cfg.workerCpuLimitSeconds != 0 ||
         cfg.workerAddressSpaceBytes != 0)) {
        std::fprintf(stderr,
                     "rc-daemon: --rlimit-cpu/--rlimit-as-mb need "
                     "--isolate\n");
        return 2;
    }

    installHandler(SIGTERM, onStopSignal);
    installHandler(SIGINT, onStopSignal);
    if (cfg.isolateWorkers)
        installHandler(SIGCHLD, onChild);

    rc::svc::Daemon daemon(
        cfg, [feedDir = cfg.feedCacheDir](
                 const rc::svc::RunRequest &req,
                 const std::atomic<bool> *abort,
                 std::atomic<std::uint64_t> *heartbeat) {
            return rc::bench::simulateRequest(req, abort, heartbeat,
                                              feedDir);
        });
    try {
        daemon.start();
    } catch (const rc::SimError &err) {
        std::fprintf(stderr, "rc-daemon: %s\n", err.what());
        return 1;
    }
    rc::inform("rc-daemon: serving on '%s', cache '%s' (%zu entries)%s",
               cfg.socketPath.c_str(), cfg.cacheDir.c_str(),
               daemon.cache().size(),
               cfg.isolateWorkers ? ", process-isolated workers" : "");

    while (stopSignals.load() == 0 && !daemon.isDraining())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    rc::inform("rc-daemon: draining (in-flight runs finish, new work is "
               "refused; signal again to abort the drain)");
    daemon.requestStop();

    // Drain in a helper so the main thread can keep watching for the
    // impatient second signal.
    std::atomic<bool> drained{false};
    std::thread drainThread([&daemon, &drained] {
        daemon.stop();
        drained.store(true);
    });
    const int signalsAtDrain = stopSignals.load();
    bool forced = false;
    while (!drained.load()) {
        if (stopSignals.load() > signalsAtDrain) {
            // Second signal mid-drain: the operator wants out NOW.  The
            // index was already persisted by requestStop(); anything
            // in-flight is recoverable from blobs on restart.
            std::fprintf(stderr,
                         "rc-daemon: second signal during drain, "
                         "aborting\n");
            forced = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (forced) {
        drainThread.detach();
        std::_Exit(130);
    }
    drainThread.join();
    std::fputs(daemon.statsJson().c_str(), stdout);
    return 0;
}
