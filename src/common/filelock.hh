/**
 * @file
 * Advisory whole-file lock (flock) with RAII scoping.
 *
 * The sweep journal and the daemon's cache index are append-only files
 * that several PROCESSES may legitimately share (two sweeps resumed
 * into one directory, a daemon restarted while its predecessor drains).
 * An in-process mutex cannot order those appends; flock(LOCK_EX) can,
 * and because the lock is attached to the open file description it is
 * released automatically when the process dies — a crashed writer can
 * never wedge the file for its successors.
 */

#ifndef RC_COMMON_FILELOCK_HH
#define RC_COMMON_FILELOCK_HH

#include <cerrno>
#include <cstring>

#include <sys/file.h>

#include "common/log.hh"

namespace rc
{

/**
 * Holds flock(LOCK_EX) on @p fd for the enclosing scope.  Construction
 * blocks until the lock is granted (retrying through signal
 * interruptions); destruction releases it.  Throws SimError(Io) when
 * the descriptor cannot be locked at all.
 */
class ScopedFileLock
{
  public:
    explicit ScopedFileLock(int fd) : fd(fd)
    {
        int rc;
        do {
            rc = ::flock(fd, LOCK_EX);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0)
            throwSimError(SimError::Kind::Io,
                          "cannot take the advisory lock on fd %d: %s",
                          fd, std::strerror(errno));
    }

    ~ScopedFileLock() { ::flock(fd, LOCK_UN); }

    ScopedFileLock(const ScopedFileLock &) = delete;
    ScopedFileLock &operator=(const ScopedFileLock &) = delete;

  private:
    int fd;
};

} // namespace rc

#endif // RC_COMMON_FILELOCK_HH
