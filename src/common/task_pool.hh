/**
 * @file
 * Fixed-size worker pool for running independent simulations in
 * parallel.
 *
 * The experiment harness sweeps (SystemConfig × Mix) grids whose runs
 * share nothing, so a plain pool with a futures-based submit() and a
 * dynamically scheduled parallelFor() over an index range is all the
 * scheduling the benches need.  Determinism contract: callers write
 * results into pre-sized slots keyed by index, so the aggregation order
 * (and therefore every reported statistic) is independent of the
 * execution interleaving.
 *
 * A pool constructed with fewer than two workers spawns no threads and
 * runs everything inline on the calling thread, in index order — the
 * legacy serial path (`--jobs=1`) goes through the exact same code the
 * parallel one does.
 */

#ifndef RC_COMMON_TASK_POOL_HH
#define RC_COMMON_TASK_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rc
{

/** Fixed-size worker pool; see the file comment for the contract. */
class TaskPool
{
  public:
    /**
     * @param workers worker threads to spawn; values below 2 create an
     *        inline (serial) pool that runs tasks on the caller.
     */
    explicit TaskPool(std::size_t workers);

    /** Drains the queue and joins every worker. */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Worker threads actually spawned (0 for an inline pool). */
    std::size_t size() const { return threads.size(); }

    /**
     * Sensible default worker count: the hardware thread count, at
     * least 1 (hardware_concurrency() may legally return 0).
     */
    static std::size_t defaultConcurrency();

    /**
     * Id of the pool worker running the calling thread, or -1 when
     * called from outside any pool (log sinks use this for tagging).
     */
    static int workerId();

    /**
     * Enqueue @p fn and return a future for its result.  Exceptions
     * thrown by @p fn surface from future::get().  Called from a worker
     * thread (nested use) or on an inline pool, @p fn runs immediately
     * on the caller — nesting must not deadlock on a bounded pool.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        if (threads.empty() || workerId() >= 0) {
            (*task)();
            return fut;
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            queue.emplace_back([task] { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    /**
     * Run body(i) for every i in [begin, end), dynamically scheduled
     * across the workers; returns when all indices completed.  The
     * first exception thrown by any body is rethrown on the caller
     * after the remaining workers stop claiming new indices.  On an
     * inline pool (or when nested inside a worker) the range runs
     * serially in index order.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

  private:
    void workerMain(std::size_t id);

    std::vector<std::thread> threads;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace rc

#endif // RC_COMMON_TASK_POOL_HH
