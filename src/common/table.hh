/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print the
 * paper's tables and figure series in a uniform format.
 */

#ifndef RC_COMMON_TABLE_HH
#define RC_COMMON_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rc
{

/** Column-aligned text table with a title and header row. */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cols);

    /** Append one data row; must match the header width. */
    void row(std::vector<std::string> cols);

    /** Render with aligned columns and separators. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rows() const { return body.size(); }

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with @p digits decimal places. */
std::string fmtDouble(double v, int digits = 3);

/** Format a fraction (0..1) as a percentage with @p digits decimals. */
std::string fmtPercent(double fraction, int digits = 1);

/** Format an integer with thousands separators: 69888 -> "69,888". */
std::string fmtInt(std::uint64_t v);

} // namespace rc

#endif // RC_COMMON_TABLE_HH
