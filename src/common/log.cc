#include "common/log.hh"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <unistd.h>

#include "common/task_pool.hh"

namespace rc
{

namespace
{

std::atomic<bool> quietFlag{false};

thread_local std::string threadTag;

/** Forked-child mode: bypass the mutex-guarded stdio sink entirely. */
std::atomic<bool> childMode{false};
char childTag[64] = {0};

std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

/** Single-write(2) report for forked workers (no locks, no stdio). */
void
vreportChildSafe(const char *tag, const char *fmt, std::va_list ap)
{
    char buf[1024];
    int at = std::snprintf(buf, sizeof(buf), "[%s] %s: ", childTag, tag);
    if (at < 0)
        return;
    if (static_cast<std::size_t>(at) < sizeof(buf) - 2) {
        const int n = std::vsnprintf(buf + at, sizeof(buf) - 1 - at, fmt,
                                     ap);
        if (n > 0)
            at = std::min(at + n,
                          static_cast<int>(sizeof(buf)) - 2);
    }
    buf[at++] = '\n';
    (void)!::write(2, buf, static_cast<std::size_t>(at));
}

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    if (childMode.load(std::memory_order_relaxed)) {
        vreportChildSafe(tag, fmt, ap);
        return;
    }
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (!threadTag.empty())
        std::fprintf(stderr, "[%s] ", threadTag.c_str());
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::fflush(stdout);
    std::fflush(stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::fflush(stdout);
    std::fflush(stderr);
    // exit() from a pool worker would run atexit handlers and static
    // destructors underneath threads that are still simulating; _Exit
    // keeps the abort clean.  The main thread keeps the normal exit.
    // A forked worker child must _Exit too: exit() would run the
    // parent's atexit handlers a second time in the child.
    if (TaskPool::workerId() >= 0 ||
        childMode.load(std::memory_order_relaxed))
        std::_Exit(1);
    std::exit(1);
}

const char *
toString(SimError::Kind kind)
{
    switch (kind) {
      case SimError::Kind::Integrity: return "integrity";
      case SimError::Kind::Protocol: return "protocol";
      case SimError::Kind::Trace: return "trace";
      case SimError::Kind::Config: return "config";
      case SimError::Kind::Snapshot: return "snapshot";
      case SimError::Kind::Hang: return "hang";
      case SimError::Kind::Io: return "io";
      case SimError::Kind::Crash: return "crash";
    }
    return "unknown";
}

void
throwSimError(SimError::Kind kind, const char *fmt, ...)
{
    char buf[1024];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    throw SimError(kind,
                   std::string("[") + toString(kind) + "] " + buf);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
warnThrottled(WarnThrottle &throttle, const char *fmt, ...)
{
    // Claim the slot before formatting so concurrent callers cannot
    // both believe they hold the last one.
    const std::uint64_t slot =
        throttle.claimSlot();
    if (slot >= throttle.maxReports())
        return;
    char buf[1024];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (slot + 1 == throttle.maxReports())
        warn("%s (budget of %llu reached; further warnings from this "
             "site suppressed)", buf,
             static_cast<unsigned long long>(throttle.maxReports()));
    else
        warn("%s", buf);
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
setThreadLogTag(const std::string &tag)
{
    threadTag = tag;
}

void
enterChildProcessLogMode(const std::string &tag)
{
    std::strncpy(childTag, tag.c_str(), sizeof(childTag) - 1);
    childTag[sizeof(childTag) - 1] = '\0';
    childMode.store(true, std::memory_order_relaxed);
}

bool
childProcessLogMode()
{
    return childMode.load(std::memory_order_relaxed);
}

} // namespace rc
