#include "common/histogram.hh"

#include <ostream>

#include "common/bitops.hh"
#include "common/log.hh"

namespace rc
{

Histogram::Histogram(std::size_t cap) : buckets(cap, 0)
{
    RC_ASSERT(cap > 0, "histogram needs at least one bucket");
}

void
Histogram::record(std::uint64_t value)
{
    if (value < buckets.size())
        ++buckets[value];
    else
        ++over;
    ++samples;
    sum += value;
}

double
Histogram::mean() const
{
    return samples ? static_cast<double>(sum) / static_cast<double>(samples)
                   : 0.0;
}

std::uint64_t
Histogram::bucket(std::size_t value) const
{
    RC_ASSERT(value < buckets.size(), "bucket %zu out of range", value);
    return buckets[value];
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    over = 0;
    samples = 0;
    sum = 0;
}

void
Histogram::merge(const Histogram &other)
{
    RC_ASSERT(other.buckets.size() == buckets.size(),
              "histogram capacity mismatch");
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    over += other.over;
    samples += other.samples;
    sum += other.sum;
}

Log2Histogram::Log2Histogram(std::size_t num_buckets)
    : buckets(num_buckets, 0)
{
    RC_ASSERT(num_buckets > 0, "log2 histogram needs at least one bucket");
}

void
Log2Histogram::record(std::uint64_t value)
{
    std::size_t idx = value <= 1 ? 0 : floorLog2(value);
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    ++buckets[idx];
    ++samples;
}

std::uint64_t
Log2Histogram::bucket(std::size_t i) const
{
    RC_ASSERT(i < buckets.size(), "log bucket %zu out of range", i);
    return buckets[i];
}

void
Log2Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    samples = 0;
}

void
Log2Histogram::dump(std::ostream &os, const std::string &label) const
{
    os << label << " (" << samples << " samples)\n";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i])
            os << "  2^" << i << ": " << buckets[i] << '\n';
    }
}

} // namespace rc
