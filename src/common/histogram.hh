/**
 * @file
 * Fixed-bucket and log2-bucket histograms for reuse-distance and
 * hits-per-generation distributions.
 */

#ifndef RC_COMMON_HISTOGRAM_HH
#define RC_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rc
{

/**
 * Histogram with unit-width buckets [0, cap); samples >= cap go to an
 * overflow bucket.  Tracks the exact sum so means stay exact.
 */
class Histogram
{
  public:
    /** @param cap number of unit buckets before overflow. */
    explicit Histogram(std::size_t cap);

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return samples; }

    /** Sum of all samples. */
    std::uint64_t total() const { return sum; }

    /** Mean of all samples (0 when empty). */
    double mean() const;

    /** Count in bucket @p value (overflow excluded). */
    std::uint64_t bucket(std::size_t value) const;

    /** Count of samples >= cap. */
    std::uint64_t overflow() const { return over; }

    /** Number of unit buckets. */
    std::size_t capacity() const { return buckets.size(); }

    /** Zero everything. */
    void reset();

    /** Merge another histogram of identical capacity into this one. */
    void merge(const Histogram &other);

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t over = 0;
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
};

/**
 * Log2-bucket histogram: bucket i counts samples in [2^i, 2^(i+1)),
 * bucket 0 counts {0, 1}.  Used for reuse-distance profiles.
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(std::size_t num_buckets = 40);

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Count in log bucket @p i. */
    std::uint64_t bucket(std::size_t i) const;

    /** Number of log buckets. */
    std::size_t size() const { return buckets.size(); }

    /** Number of samples recorded. */
    std::uint64_t count() const { return samples; }

    /** Zero everything. */
    void reset();

    /** Render "2^i: count" lines. */
    void dump(std::ostream &os, const std::string &label) const;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t samples = 0;
};

} // namespace rc

#endif // RC_COMMON_HISTOGRAM_HH
