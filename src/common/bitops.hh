/**
 * @file
 * Small bit-manipulation helpers used by cache geometry and cost models.
 */

#ifndef RC_COMMON_BITOPS_HH
#define RC_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace rc
{

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; @p v must be non-zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/** Ceiling of log2; @p v must be non-zero. */
constexpr std::uint32_t
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/**
 * Number of bits needed to encode @p n distinct values.
 * bitsFor(1) == 0, bitsFor(16) == 4, bitsFor(17) == 5.
 */
constexpr std::uint32_t
bitsFor(std::uint64_t n)
{
    return ceilLog2(n);
}

/** Extract @p num_bits starting at bit @p lsb from @p v. */
constexpr std::uint64_t
bitField(std::uint64_t v, std::uint32_t lsb, std::uint32_t num_bits)
{
    if (num_bits == 0)
        return 0;
    if (num_bits >= 64)
        return v >> lsb;
    return (v >> lsb) & ((std::uint64_t{1} << num_bits) - 1);
}

} // namespace rc

#endif // RC_COMMON_BITOPS_HH
