/**
 * @file
 * Small deterministic pseudo-random number generators.
 *
 * Every source of randomness in the simulator (victim selection, workload
 * generation, mix construction) draws from a seeded Xorshift64Star so that
 * identical seeds reproduce identical simulations.
 */

#ifndef RC_COMMON_RNG_HH
#define RC_COMMON_RNG_HH

#include <cstdint>

#include "common/log.hh"

namespace rc
{

/** SplitMix64: used to expand a user seed into well-mixed stream seeds. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xorshift64*: fast, decent-quality generator for simulation decisions.
 * Not suitable for cryptography; perfect for victim selection.
 */
class Rng
{
  public:
    /** Seed 0 is remapped (xorshift state must be non-zero). */
    explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL)
        : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        RC_ASSERT(bound > 0, "below() needs a positive bound");
        // 128-bit multiply rejection-free mapping (Lemire).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        RC_ASSERT(lo <= hi, "range() needs lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Raw generator state, for checkpointing.  Restoring rawState()
     * into setRawState() resumes the stream exactly where it left off.
     */
    std::uint64_t rawState() const { return state; }

    /** Restore a previously captured rawState() (0 is remapped as in the
     *  constructor, so a hostile snapshot cannot wedge the generator). */
    void
    setRawState(std::uint64_t s)
    {
        state = s ? s : 0x9e3779b97f4a7c15ULL;
    }

    /**
     * Geometric-ish draw: integer >= 1 with mean roughly @p mean.
     * Used for burst lengths in workload generation.
     */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        std::uint64_t n = 1;
        // Cap to keep pathological draws bounded.
        while (n < 64 * static_cast<std::uint64_t>(mean) && !chance(p))
            ++n;
        return n;
    }

  private:
    std::uint64_t state;
};

} // namespace rc

#endif // RC_COMMON_RNG_HH
