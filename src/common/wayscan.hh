/**
 * @file
 * Vectorized way-scans over contiguous SoA lanes.
 *
 * Every set-associative array in the repository keeps its scan key in a
 * packed lane (64-bit tags, or an 8-bit occupancy byte per way), so the
 * per-access search is a fixed-width compare over contiguous memory.
 * This header centralizes that search and selects an implementation at
 * compile time: AVX2 on x86-64, NEON on AArch64, and a branchless
 * scalar loop everywhere else (or when RC_SIMD is disabled).
 *
 * All variants return the FIRST matching way, which is what the callers
 * need: private tag stores never hold duplicate tags (a sentinel marks
 * invalid ways), and the LLC arrays resolve the rare duplicate-after-
 * corruption case by resuming the scan past a rejected candidate.
 */

#ifndef RC_COMMON_WAYSCAN_HH
#define RC_COMMON_WAYSCAN_HH

#include <bit>
#include <cstdint>

#if !defined(RC_SIMD_DISABLED) && defined(__AVX2__)
#define RC_WAYSCAN_AVX2 1
#include <immintrin.h>
#elif !defined(RC_SIMD_DISABLED) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__))
#define RC_WAYSCAN_NEON 1
#include <arm_neon.h>
#endif

namespace rc
{

/** Name of the way-scan implementation compiled in (reports/tests). */
inline const char *
wayScanBackend()
{
#if defined(RC_WAYSCAN_AVX2)
    return "avx2";
#elif defined(RC_WAYSCAN_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/**
 * Tag-lane value no real tag can take: line addresses are at most 40
 * bits, so an all-ones 64-bit word marks an invalid way and keeps the
 * scan a single compare per way with no validity load.
 */
inline constexpr std::uint64_t kInvalidTagLane = ~std::uint64_t{0};

/**
 * First way in [0, W) of @p lane equal to @p key, or -1.
 * W must be a multiple of 4 (the repository uses 4, 8 and 16).
 */
template <std::uint32_t W>
inline std::int32_t
scanWays(const std::uint64_t *lane, std::uint64_t key)
{
    static_assert(W % 4 == 0, "scanWays widths are multiples of 4");
#if defined(RC_WAYSCAN_AVX2)
    const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
    std::uint32_t mask = 0;
    for (std::uint32_t w = 0; w < W; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lane + w));
        const __m256i eq = _mm256_cmpeq_epi64(v, k);
        mask |= static_cast<std::uint32_t>(
                    _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
                << w;
    }
    return mask ? std::countr_zero(mask) : -1;
#elif defined(RC_WAYSCAN_NEON)
    const uint64x2_t k = vdupq_n_u64(key);
    for (std::uint32_t w = 0; w < W; w += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(lane + w), k);
        // Narrow each 64-bit lane to 32 bits: one u64 whose halves are
        // all-ones/all-zeros per way, checked in ascending way order.
        const std::uint64_t bits =
            vget_lane_u64(vreinterpret_u64_u32(vmovn_u64(eq)), 0);
        if (bits)
            return static_cast<std::int32_t>(
                w + ((bits & 0xffffffffull) ? 0 : 1));
    }
    return -1;
#else
    // Branchless first-match: walk downwards so the smallest matching
    // way is the last assignment the compiler keeps.
    std::int32_t hit = -1;
    for (std::int32_t w = static_cast<std::int32_t>(W) - 1; w >= 0; --w) {
        if (lane[w] == key)
            hit = w;
    }
    return hit;
#endif
}

/** Runtime-width dispatch over the fixed-width kernels. */
inline std::int32_t
scanWays(const std::uint64_t *lane, std::uint32_t ways, std::uint64_t key)
{
    switch (ways) {
      case 4: return scanWays<4>(lane, key);
      case 8: return scanWays<8>(lane, key);
      case 16: return scanWays<16>(lane, key);
      default:
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (lane[w] == key)
                return static_cast<std::int32_t>(w);
        }
        return -1;
    }
}

/**
 * First way in [from, ways) equal to @p key, or -1.  Cold continuation
 * of scanWays() for callers that reject a candidate (an LLC way whose
 * tag matches but whose state was forced invalid by fault injection).
 */
inline std::int32_t
scanWaysFrom(const std::uint64_t *lane, std::uint32_t ways,
             std::uint64_t key, std::uint32_t from)
{
    for (std::uint32_t w = from; w < ways; ++w) {
        if (lane[w] == key)
            return static_cast<std::int32_t>(w);
    }
    return -1;
}

/**
 * First zero byte in @p lane[0, n), or -1 when every byte is non-zero.
 * Free-way search over an occupancy lane; the reuse cache's preferred
 * data array is fully associative (a single set of thousands of ways),
 * so this scan is worth vectorizing.
 */
inline std::int32_t
scanFirstFree(const std::uint8_t *lane, std::uint32_t n)
{
    std::uint32_t w = 0;
#if defined(RC_WAYSCAN_AVX2)
    const __m256i zero = _mm256_setzero_si256();
    for (; w + 32 <= n; w += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lane + w));
        const std::uint32_t mask = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
        if (mask)
            return static_cast<std::int32_t>(w + std::countr_zero(mask));
    }
#elif defined(RC_WAYSCAN_NEON)
    for (; w + 16 <= n; w += 16) {
        const uint8x16_t eq = vceqq_u8(vld1q_u8(lane + w), vdupq_n_u8(0));
        // Shift-narrow to a 64-bit mask of 4 bits per byte.
        const std::uint64_t bits = vget_lane_u64(
            vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)),
            0);
        if (bits)
            return static_cast<std::int32_t>(
                w + (std::countr_zero(bits) >> 2));
    }
#endif
    for (; w < n; ++w) {
        if (!lane[w])
            return static_cast<std::int32_t>(w);
    }
    return -1;
}

} // namespace rc

#endif // RC_COMMON_WAYSCAN_HH
