/**
 * @file
 * Fundamental scalar types and constants shared by every subsystem.
 */

#ifndef RC_COMMON_TYPES_HH
#define RC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace rc
{

/** Physical byte address. The paper assumes a 40-bit physical space. */
using Addr = std::uint64_t;

/** Simulated processor cycle count. */
using Cycle = std::uint64_t;

/** Per-core identifier (0..numCores-1). */
using CoreId = std::uint32_t;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no cycle" / "never". */
constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/** Cache line size in bytes (64 B throughout the paper). */
constexpr std::uint32_t lineBytes = 64;

/** log2(lineBytes). */
constexpr std::uint32_t lineShift = 6;

/** Physical address width assumed by the cost model (paper Section 3.5). */
constexpr std::uint32_t physAddrBits = 40;

/** Convert a byte address to its line-aligned address. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Convert a byte address to a line number. */
constexpr Addr
lineNumber(Addr a)
{
    return a >> lineShift;
}

/** Kinds of memory operation a core can issue. */
enum class MemOp : std::uint8_t {
    Read,
    Write,
};

} // namespace rc

#endif // RC_COMMON_TYPES_HH
