/**
 * @file
 * gem5-style status / error reporting.
 *
 * panic()  - internal invariant violated (a bug in this library); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something questionable happened; execution continues.
 * inform() - plain status output.
 */

#ifndef RC_COMMON_LOG_HH
#define RC_COMMON_LOG_HH

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace rc
{

/**
 * Recoverable simulation failure.
 *
 * Where panic()/fatal() kill the process, a SimError unwinds one
 * simulation: the bench harness catches it per (config x mix) run,
 * retries once and quarantines the run into its RunOutcome report, so a
 * single poisoned run cannot destroy a --jobs=N sweep.  Thrown by
 * RC_CHECK on the simulation path and by the verify layer's enforce().
 */
class SimError : public std::runtime_error
{
  public:
    /** Broad failure category, used for reporting and test filtering. */
    enum class Kind : std::uint8_t
    {
        Integrity, //!< simulated state failed a structural invariant
        Protocol,  //!< illegal coherence transition, or a malformed /
                   //!< mismatched service-protocol frame
        Trace,     //!< trace file truncated, corrupt or empty
        Config,    //!< a run asked for an unsupported combination
        Snapshot,  //!< checkpoint/journal truncated, corrupt or mismatched
        Hang,      //!< watchdog aborted a run with no forward progress
        Io,        //!< socket/file I/O failed or timed out (service layer)
        Crash,     //!< a sandboxed worker process died (signal, rlimit
                   //!< kill, OOM) or its request is poison-quarantined
    };

    SimError(Kind kind, const std::string &what)
        : std::runtime_error(what), errKind(kind)
    {}

    Kind kind() const { return errKind; }

  private:
    Kind errKind;
};

/** Human-readable name of a SimError kind ("integrity", "trace", ...). */
const char *toString(SimError::Kind kind);

/**
 * Throw a SimError with a printf-formatted message (the throwing
 * counterpart of panic/fatal; used by the RC_CHECK macro).
 */
[[noreturn]] void throwSimError(SimError::Kind kind, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Emission budget for a warning site that can fire from a hot loop.
 *
 * The first maxReports calls to shouldReport() return true; everything
 * after that is suppressed (and counted), so a sweep cannot drown its
 * own output in thousands of copies of the same complaint.  Thread-safe:
 * concurrent runs sharing one throttle never over-report.
 */
class WarnThrottle
{
  public:
    explicit WarnThrottle(std::uint64_t max_reports = 5)
        : budget(max_reports)
    {}

    /** Claim one emission slot; true for the first maxReports calls. */
    bool shouldReport()
    {
        return claimSlot() < budget;
    }

    /** Claim and return the next slot index (0-based, unbounded). */
    std::uint64_t claimSlot()
    {
        return fired.fetch_add(1, std::memory_order_relaxed);
    }

    /** Calls swallowed so far. */
    std::uint64_t suppressed() const
    {
        const std::uint64_t n = fired.load(std::memory_order_relaxed);
        return n > budget ? n - budget : 0;
    }

    /** Emission budget given at construction. */
    std::uint64_t maxReports() const { return budget; }

    /** Forget history (tests). */
    void reset() { fired.store(0, std::memory_order_relaxed); }

  private:
    std::uint64_t budget;
    std::atomic<std::uint64_t> fired{0};
};

/**
 * warn() through a WarnThrottle: the first throttle.maxReports() calls
 * print (the last one with a "further warnings suppressed" notice),
 * later calls are silently counted.
 */
void warnThrottled(WarnThrottle &throttle, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * warn() that fires at most once per call site for the process lifetime
 * (a function-local throttle with a budget of 1).  Safe in hot loops.
 */
#define RC_WARN_ONCE(...)                                                     \
    do {                                                                      \
        static ::rc::WarnThrottle rc_warn_once_throttle_{1};                  \
        if (rc_warn_once_throttle_.shouldReport())                            \
            ::rc::warn(__VA_ARGS__);                                          \
    } while (0)

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (benches use this to keep tables clean). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() are currently suppressed. */
bool quiet();

/**
 * Tag every log line emitted by the calling thread with "[tag]"
 * (TaskPool workers use "w<id>").  The sink itself is mutex-guarded,
 * so concurrent reports from different workers never interleave.
 * An empty tag restores untagged output.
 */
void setThreadLogTag(const std::string &tag);

/**
 * Switch the log sink into forked-child mode: every report is formatted
 * into a fixed stack buffer and emitted with a single write(2), never
 * touching the mutex-guarded stdio sink.  A worker forked from a
 * multithreaded daemon MUST call this first thing after fork() — the
 * parent's sink mutex (or stdio's own locks) may have been held by
 * another thread at fork time, in which case the child's copy is locked
 * forever and the first warn() would deadlock the worker.
 *
 * @p tag prefixes every line ("[tag] ..."); the mode is process-wide
 * and irreversible by design (the child never goes back).
 */
void enterChildProcessLogMode(const std::string &tag);

/** Whether enterChildProcessLogMode() ran in this process. */
bool childProcessLogMode();

/**
 * Assert-like check that stays enabled in release builds (no NDEBUG
 * dependence — the integrity checker relies on it in Release too).
 * Prefer this over <cassert> for simulator invariants.
 *
 * The condition is captured into a local bool, so it is evaluated
 * exactly once even when it carries side effects, and the do/while(0)
 * wrapper makes the macro a single statement that is safe as the body
 * of an if/else without braces.
 */
#define RC_ASSERT(cond, msg, ...)                                             \
    do {                                                                      \
        const bool rc_assert_ok_ = static_cast<bool>(cond);                   \
        if (!rc_assert_ok_) {                                                 \
            ::rc::panic("assertion '%s' failed at %s:%d: " msg,               \
                        #cond, __FILE__, __LINE__ __VA_OPT__(,) __VA_ARGS__); \
        }                                                                     \
    } while (0)

/**
 * Recoverable counterpart of RC_ASSERT for the simulation path: on
 * failure it throws SimError(kind) instead of aborting, so the bench
 * harness can quarantine the run.  Same guarantees as RC_ASSERT:
 * single evaluation, if/else-safe, enabled in Release builds.
 */
#define RC_CHECK(cond, kind, msg, ...)                                        \
    do {                                                                      \
        const bool rc_check_ok_ = static_cast<bool>(cond);                    \
        if (!rc_check_ok_) {                                                  \
            ::rc::throwSimError(kind, "check '%s' failed at %s:%d: " msg,     \
                                #cond, __FILE__,                              \
                                __LINE__ __VA_OPT__(,) __VA_ARGS__);          \
        }                                                                     \
    } while (0)

} // namespace rc

#endif // RC_COMMON_LOG_HH
