/**
 * @file
 * gem5-style status / error reporting.
 *
 * panic()  - internal invariant violated (a bug in this library); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something questionable happened; execution continues.
 * inform() - plain status output.
 */

#ifndef RC_COMMON_LOG_HH
#define RC_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace rc
{

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (benches use this to keep tables clean). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() are currently suppressed. */
bool quiet();

/**
 * Tag every log line emitted by the calling thread with "[tag]"
 * (TaskPool workers use "w<id>").  The sink itself is mutex-guarded,
 * so concurrent reports from different workers never interleave.
 * An empty tag restores untagged output.
 */
void setThreadLogTag(const std::string &tag);

/**
 * Assert-like check that stays enabled in release builds.
 * Prefer this over <cassert> for simulator invariants.
 */
#define RC_ASSERT(cond, msg, ...)                                             \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::rc::panic("assertion '%s' failed at %s:%d: " msg,               \
                        #cond, __FILE__, __LINE__ __VA_OPT__(,) __VA_ARGS__); \
        }                                                                     \
    } while (0)

} // namespace rc

#endif // RC_COMMON_LOG_HH
