/**
 * @file
 * Minimal statistics framework.
 *
 * Components own a StatSet and register named counters in it; harnesses
 * read, reset, and pretty-print them.  An Accum aggregates doubles across
 * workloads (mean / min / max / stddev), which is what the paper's figures
 * report.
 */

#ifndef RC_COMMON_STATS_HH
#define RC_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace rc
{

class Serializer;
class Deserializer;

/** Monotonic event counter. */
using Counter = std::uint64_t;

/**
 * A named collection of counters with stable references.
 *
 * Counters are stored in a deque so that references returned by add()
 * remain valid as more counters are registered.
 */
class StatSet
{
  public:
    /** One registered counter. */
    struct Entry
    {
        std::string name;
        std::string desc;
        Counter value = 0;
    };

    explicit StatSet(std::string name_) : setName(std::move(name_)) {}

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /**
     * Register a counter.
     * @param name Short dotted name, unique within the set.
     * @param desc One-line human description.
     * @return Reference valid for the lifetime of this StatSet.
     */
    Counter &add(const std::string &name, const std::string &desc);

    /** Look a counter up by name; panics if absent. */
    Counter lookup(const std::string &name) const;

    /**
     * Stable reference to a counter; panics if absent.  Harnesses that
     * read the same counter once per measurement cache this instead of
     * paying a string lookup per read.
     */
    const Counter &ref(const std::string &name) const;

    /** Stable pointer to a counter, or nullptr when absent. */
    const Counter *tryRef(const std::string &name) const;

    /** @return true iff a counter with @p name exists. */
    bool has(const std::string &name) const;

    /** Zero every counter. */
    void reset();

    /** Checkpoint: counter values in registration order. */
    void save(Serializer &s) const;

    /** Restore save()'d values; throws SimError(Snapshot) when the
     *  checkpoint's counter count disagrees with this set's. */
    void restore(Deserializer &d);

    /** All registered entries, in registration order. */
    const std::deque<Entry> &entries() const { return stats; }

    /** Name given at construction. */
    const std::string &name() const { return setName; }

    /** Print "name.counter = value  # desc" lines. */
    void dump(std::ostream &os) const;

    /**
     * Machine-readable form: one JSON object
     * `{"name": "<set>", "counters": {"<stat>": <value>, ...}}` in
     * registration order, no trailing newline.  @p indent spaces prefix
     * every line so the object nests cleanly inside a larger document.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

  private:
    std::string setName;
    std::deque<Entry> stats;
};

/** Streaming aggregation of doubles: count/mean/min/max/stddev. */
class Accum
{
  public:
    /** Incorporate one sample. */
    void add(double x);

    /** Number of samples so far. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    double min() const;

    /** Largest sample (0 when empty). */
    double max() const;

    /** Population standard deviation (0 when empty). */
    double stddev() const;

    /** Geometric mean; samples must be positive (0 when empty). */
    double geomean() const;

    /** Forget all samples. */
    void reset();

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double sumLog = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Quartile summary of a sample set (Figure 10 of the paper reports
 * min / Q1 / median / Q3 / max per application).
 */
struct Quartiles
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
};

/** Compute quartiles of @p samples (copied and sorted internally). */
Quartiles computeQuartiles(std::vector<double> samples);

/**
 * Escape @p in for embedding inside a JSON string literal (quotes,
 * backslashes and control characters).  Shared by every JSON emitter in
 * the repository (stats export, telemetry traces, the bench perf
 * record).
 */
std::string jsonEscape(const std::string &in);

} // namespace rc

#endif // RC_COMMON_STATS_HH
