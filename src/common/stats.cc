#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

Counter &
StatSet::add(const std::string &name, const std::string &desc)
{
    for (const auto &e : stats) {
        if (e.name == name)
            panic("duplicate stat '%s' in set '%s'",
                  name.c_str(), setName.c_str());
    }
    stats.push_back(Entry{name, desc, 0});
    return stats.back().value;
}

Counter
StatSet::lookup(const std::string &name) const
{
    return ref(name);
}

const Counter &
StatSet::ref(const std::string &name) const
{
    if (const Counter *c = tryRef(name))
        return *c;
    panic("unknown stat '%s' in set '%s'", name.c_str(), setName.c_str());
}

const Counter *
StatSet::tryRef(const std::string &name) const
{
    for (const auto &e : stats) {
        if (e.name == name)
            return &e.value;
    }
    return nullptr;
}

bool
StatSet::has(const std::string &name) const
{
    for (const auto &e : stats) {
        if (e.name == name)
            return true;
    }
    return false;
}

void
StatSet::reset()
{
    for (auto &e : stats)
        e.value = 0;
}

void
StatSet::save(Serializer &s) const
{
    s.putU64(stats.size());
    for (const auto &e : stats)
        s.putU64(e.value);
}

void
StatSet::restore(Deserializer &d)
{
    const std::uint64_t count = d.getU64();
    if (count != stats.size())
        throwSimError(SimError::Kind::Snapshot,
                      "stat set '%s' has %zu counters but the checkpoint "
                      "carries %llu", setName.c_str(), stats.size(),
                      static_cast<unsigned long long>(count));
    for (auto &e : stats)
        e.value = d.getU64();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &e : stats) {
        os << setName << '.' << e.name << " = " << e.value
           << "  # " << e.desc << '\n';
    }
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
StatSet::dumpJson(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    os << pad << "{\n"
       << pad << "  \"name\": \"" << jsonEscape(setName) << "\",\n"
       << pad << "  \"counters\": {";
    bool first = true;
    for (const auto &e : stats) {
        os << (first ? "" : ",") << "\n"
           << pad << "    \"" << jsonEscape(e.name) << "\": " << e.value;
        first = false;
    }
    if (!first)
        os << "\n" << pad << "  ";
    os << "}\n" << pad << "}";
}

void
Accum::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    sum += x;
    sumSq += x * x;
    sumLog += x > 0.0 ? std::log(x) : 0.0;
}

double
Accum::mean() const
{
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
Accum::min() const
{
    return n ? lo : 0.0;
}

double
Accum::max() const
{
    return n ? hi : 0.0;
}

double
Accum::stddev() const
{
    if (n == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Accum::geomean() const
{
    return n ? std::exp(sumLog / static_cast<double>(n)) : 0.0;
}

void
Accum::reset()
{
    *this = Accum{};
}

namespace
{

/** Linear-interpolated quantile of a sorted vector. */
double
quantileSorted(const std::vector<double> &v, double q)
{
    if (v.empty())
        return 0.0;
    if (v.size() == 1)
        return v.front();
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= v.size())
        return v.back();
    return v[idx] * (1.0 - frac) + v[idx + 1] * frac;
}

} // namespace

Quartiles
computeQuartiles(std::vector<double> samples)
{
    Quartiles q;
    if (samples.empty())
        return q;
    std::sort(samples.begin(), samples.end());
    q.min = samples.front();
    q.q1 = quantileSorted(samples, 0.25);
    q.median = quantileSorted(samples, 0.5);
    q.q3 = quantileSorted(samples, 0.75);
    q.max = samples.back();
    return q;
}

} // namespace rc
