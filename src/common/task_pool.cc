#include "common/task_pool.hh"

#include <atomic>
#include <string>

#include "common/log.hh"

namespace rc
{

namespace
{

thread_local int tlsWorkerId = -1;

} // namespace

TaskPool::TaskPool(std::size_t workers)
{
    if (workers < 2)
        return;
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads.emplace_back([this, i] { workerMain(i); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

std::size_t
TaskPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

int
TaskPool::workerId()
{
    return tlsWorkerId;
}

void
TaskPool::workerMain(std::size_t id)
{
    tlsWorkerId = static_cast<int>(id);
    setThreadLogTag("w" + std::to_string(id));
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
    }
}

void
TaskPool::parallelFor(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)> &body)
{
    if (end <= begin)
        return;
    const std::size_t n = end - begin;
    if (threads.empty() || n == 1 || workerId() >= 0) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{begin};
    std::atomic<bool> failed{false};
    std::mutex errMu;
    std::exception_ptr firstError;

    const std::size_t drivers = std::min(threads.size(), n);
    std::vector<std::future<void>> futures;
    futures.reserve(drivers);
    for (std::size_t d = 0; d < drivers; ++d) {
        futures.push_back(submit([&] {
            for (;;) {
                if (failed.load(std::memory_order_acquire))
                    return;
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= end)
                    return;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMu);
                    if (!firstError)
                        firstError = std::current_exception();
                    failed.store(true, std::memory_order_release);
                    return;
                }
            }
        }));
    }
    for (auto &f : futures)
        f.get();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace rc
