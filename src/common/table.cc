#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/log.hh"

namespace rc
{

Table::Table(std::string title_) : title(std::move(title_)) {}

void
Table::header(std::vector<std::string> cols)
{
    head = std::move(cols);
}

void
Table::row(std::vector<std::string> cols)
{
    RC_ASSERT(head.empty() || cols.size() == head.size(),
              "row width %zu does not match header width %zu",
              cols.size(), head.size());
    body.push_back(std::move(cols));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(head.size(), 0);
    auto widen = [&widths](const std::vector<std::string> &cols) {
        if (widths.size() < cols.size())
            widths.resize(cols.size(), 0);
        for (std::size_t i = 0; i < cols.size(); ++i)
            widths[i] = std::max(widths[i], cols[i].size());
    };
    widen(head);
    for (const auto &r : body)
        widen(r);

    auto emit = [&os, &widths](const std::vector<std::string> &cols) {
        os << "| ";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cols.size() ? cols[i] : "";
            os << cell << std::string(widths[i] - cell.size(), ' ');
            os << (i + 1 < widths.size() ? " | " : " |");
        }
        os << '\n';
    };

    std::size_t total = 4;
    for (auto w : widths)
        total += w + 3;

    os << '\n' << title << '\n';
    os << std::string(total > 4 ? total - 4 : title.size(), '-') << '\n';
    if (!head.empty()) {
        emit(head);
        os << std::string(total > 4 ? total - 4 : 0, '-') << '\n';
    }
    for (const auto &r : body)
        emit(r);
    os.flush();
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

std::string
fmtInt(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    out.reserve(raw.size() + raw.size() / 3);
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (i != 0 && (raw.size() - i) % 3 == 0)
            out.push_back(',');
        out.push_back(raw[i]);
    }
    return out;
}

} // namespace rc
