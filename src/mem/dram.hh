/**
 * @file
 * Occupancy-based DDR3 DRAM channel model.
 *
 * Mirrors the paper's baseline memory (Table 4): one rank of 16 banks with
 * 4 KB pages behind a DDR3-1333 channel; a raw access costs 92 processor
 * cycles and transferring one 64 B line occupies the 8-byte bus for 16
 * processor cycles.  Banks keep an open row, so consecutive accesses to
 * the same row are cheaper and row conflicts pay a precharge penalty.
 *
 * The model is atomic: a request presented at cycle `now` returns its
 * completion cycle, and the bank/bus busy windows it consumed are recorded
 * so later requests queue behind it.  This captures bandwidth contention
 * without a full command-level (tRCD/tRP/tCAS) scheduler.
 */

#ifndef RC_MEM_DRAM_HH
#define RC_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rc
{

/** Timing and geometry of one DRAM channel. */
struct DramConfig
{
    std::uint32_t numBanks = 16;      //!< banks per channel (1 rank)
    std::uint32_t pageBytes = 4096;   //!< row-buffer (page) size
    Cycle rowMissLatency = 92;        //!< closed-row access, CPU cycles
    Cycle rowHitLatency = 40;         //!< open-row access, CPU cycles
    Cycle rowConflictExtra = 24;      //!< extra precharge on row conflict
    Cycle busCyclesPerLine = 16;      //!< 64 B line on an 8 B DDR3-1333 bus
    Cycle bankOccupancy = 24;         //!< bank busy window per access
};

/** Completion information for one DRAM access. */
struct DramResult
{
    Cycle doneAt = 0;      //!< cycle at which the line is available
    bool rowHit = false;   //!< serviced from the open row buffer
};

/**
 * One DDR3 channel: a set of banks with open-row tracking plus a shared
 * data bus.  Deterministic and allocation-free on the access path.
 */
class DramChannel
{
  public:
    /**
     * @param cfg timing parameters.
     * @param name stat-set name (e.g. "dram0").
     */
    explicit DramChannel(const DramConfig &cfg, const std::string &name);

    /**
     * Perform one line read or write.
     *
     * Reads return the cycle at which data is available.  Writes are
     * posted: they consume bank and bus occupancy but the returned
     * completion time never stalls the requester.
     *
     * @param line_addr line-aligned physical address.
     * @param now cycle at which the request reaches the channel.
     * @param is_write true for a writeback.
     */
    DramResult access(Addr line_addr, Cycle now, bool is_write);

    /** Counter access for harnesses. */
    const StatSet &stats() const { return statSet; }

    /** Reset open rows, busy windows and counters. */
    void reset();

    /** Timing parameters in force. */
    const DramConfig &config() const { return cfg; }

    /** Checkpoint open rows, busy windows and counters. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    struct Bank
    {
        std::uint64_t openRow = UINT64_MAX;
        Cycle busyUntil = 0;
    };

    DramConfig cfg;
    std::vector<Bank> banks;
    Cycle busBusyUntil = 0;

    StatSet statSet;
    Counter &reads;
    Counter &writes;
    Counter &rowHits;
    Counter &rowMisses;
    Counter &rowConflicts;
    Counter &busWaitCycles;
    Counter &bankWaitCycles;
};

} // namespace rc

#endif // RC_MEM_DRAM_HH
