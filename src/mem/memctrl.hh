/**
 * @file
 * Multi-channel memory controller.
 *
 * The paper's baseline has a single DDR3 channel; Section 5.8 repeats the
 * experiments with 2 and 4 channels and observes <1% performance change.
 * The controller interleaves line addresses across channels and forwards
 * requests to the owning DramChannel.
 */

#ifndef RC_MEM_MEMCTRL_HH
#define RC_MEM_MEMCTRL_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/dram.hh"

namespace rc
{

/** Memory-controller configuration. */
struct MemCtrlConfig
{
    std::uint32_t numChannels = 1;  //!< DDR3 channels (paper: 1; §5.8: 2, 4)
    DramConfig dram;                //!< per-channel timing
};

/**
 * Routes line requests to channels (line-interleaved) and aggregates
 * statistics.  This is the single point through which every cache model
 * in the repository reaches main memory, so "pays the memory latency
 * twice" effects (reuse-cache reloads) show up here.
 */
class MemCtrl
{
  public:
    explicit MemCtrl(const MemCtrlConfig &cfg, const std::string &name = "mem");

    /**
     * Read one line.
     * @return completion cycle (includes queuing and bus transfer).
     */
    Cycle readLine(Addr line_addr, Cycle now);

    /**
     * Post one line writeback; does not stall the requester but consumes
     * bank/bus occupancy.
     */
    void writeLine(Addr line_addr, Cycle now);

    /** Total reads across channels. */
    Counter totalReads() const;

    /** Total writes across channels. */
    Counter totalWrites() const;

    /** Per-channel models (for detailed stats). */
    const std::vector<std::unique_ptr<DramChannel>> &channels() const
    {
        return chans;
    }

    /** Reset all channels. */
    void reset();

    /** Number of configured channels. */
    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(chans.size());
    }

    /** Checkpoint every channel. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    DramChannel &channelFor(Addr line_addr);

    std::vector<std::unique_ptr<DramChannel>> chans;
};

} // namespace rc

#endif // RC_MEM_MEMCTRL_HH
