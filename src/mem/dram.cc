#include "mem/dram.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/log.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

DramChannel::DramChannel(const DramConfig &cfg_, const std::string &name)
    : cfg(cfg_),
      banks(cfg_.numBanks),
      statSet(name),
      reads(statSet.add("reads", "line reads serviced")),
      writes(statSet.add("writes", "line writebacks accepted")),
      rowHits(statSet.add("rowHits", "accesses hitting the open row")),
      rowMisses(statSet.add("rowMisses", "accesses to a closed bank")),
      rowConflicts(statSet.add("rowConflicts",
                               "accesses evicting a different open row")),
      busWaitCycles(statSet.add("busWaitCycles",
                                "cycles spent waiting for the data bus")),
      bankWaitCycles(statSet.add("bankWaitCycles",
                                 "cycles spent waiting for a busy bank"))
{
    RC_ASSERT(cfg.numBanks > 0, "channel needs at least one bank");
    RC_ASSERT(isPowerOf2(cfg.pageBytes), "page size must be a power of two");
}

DramResult
DramChannel::access(Addr line_addr, Cycle now, bool is_write)
{
    // Interleave banks on line address bits just above the line offset so
    // a streaming access pattern spreads across banks.
    const Addr line = lineNumber(line_addr);
    const std::size_t bank_idx = line % banks.size();
    const std::uint64_t row = line_addr / (cfg.pageBytes * banks.size());

    Bank &bank = banks[bank_idx];

    const Cycle bank_ready = std::max(now, bank.busyUntil);
    bankWaitCycles += bank_ready - now;

    DramResult res;
    Cycle access_lat;
    if (bank.openRow == row) {
        res.rowHit = true;
        access_lat = cfg.rowHitLatency;
        ++rowHits;
    } else if (bank.openRow == UINT64_MAX) {
        access_lat = cfg.rowMissLatency;
        ++rowMisses;
    } else {
        access_lat = cfg.rowMissLatency + cfg.rowConflictExtra;
        ++rowConflicts;
    }
    bank.openRow = row;

    const Cycle data_ready = bank_ready + access_lat;
    Cycle done;
    if (is_write) {
        // Posted writebacks drain through the controller's write buffer
        // in idle bus slots (standard controller behaviour); they hold
        // their bank but do not head-of-line-block demand reads.
        done = data_ready + cfg.busCyclesPerLine;
        ++writes;
    } else {
        const Cycle bus_start = std::max(data_ready, busBusyUntil);
        busWaitCycles += bus_start - data_ready;
        done = bus_start + cfg.busCyclesPerLine;
        busBusyUntil = done;
        ++reads;
    }

    bank.busyUntil = bank_ready + access_lat + cfg.bankOccupancy;

    res.doneAt = done;
    RC_TEVENT(is_write ? "dram.write" : "dram.read", TraceDomain::Sim,
              static_cast<std::uint32_t>(bank_idx), now, done - now,
              res.rowHit ? 1 : 0);
    return res;
}

void
DramChannel::reset()
{
    for (auto &b : banks)
        b = Bank{};
    busBusyUntil = 0;
    statSet.reset();
}

void
DramChannel::save(Serializer &s) const
{
    s.putU64(banks.size());
    for (const Bank &b : banks) {
        s.putU64(b.openRow);
        s.putU64(b.busyUntil);
    }
    s.putU64(busBusyUntil);
    statSet.save(s);
}

void
DramChannel::restore(Deserializer &d)
{
    const std::uint64_t n = d.getU64();
    if (n != banks.size())
        throwSimError(SimError::Kind::Snapshot,
                      "DRAM channel has %zu banks but the checkpoint "
                      "carries %llu",
                      banks.size(), (unsigned long long)n);
    for (Bank &b : banks) {
        b.openRow = d.getU64();
        b.busyUntil = d.getU64();
    }
    busBusyUntil = d.getU64();
    statSet.restore(d);
}

} // namespace rc
