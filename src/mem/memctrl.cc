#include "mem/memctrl.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

MemCtrl::MemCtrl(const MemCtrlConfig &cfg, const std::string &name)
{
    RC_ASSERT(cfg.numChannels > 0, "need at least one memory channel");
    chans.reserve(cfg.numChannels);
    for (std::uint32_t i = 0; i < cfg.numChannels; ++i) {
        chans.push_back(std::make_unique<DramChannel>(
            cfg.dram, name + std::to_string(i)));
    }
}

DramChannel &
MemCtrl::channelFor(Addr line_addr)
{
    return *chans[lineNumber(line_addr) % chans.size()];
}

Cycle
MemCtrl::readLine(Addr line_addr, Cycle now)
{
    return channelFor(line_addr).access(line_addr, now, false).doneAt;
}

void
MemCtrl::writeLine(Addr line_addr, Cycle now)
{
    channelFor(line_addr).access(line_addr, now, true);
}

Counter
MemCtrl::totalReads() const
{
    Counter n = 0;
    for (const auto &c : chans)
        n += c->stats().lookup("reads");
    return n;
}

Counter
MemCtrl::totalWrites() const
{
    Counter n = 0;
    for (const auto &c : chans)
        n += c->stats().lookup("writes");
    return n;
}

void
MemCtrl::reset()
{
    for (auto &c : chans)
        c->reset();
}

void
MemCtrl::save(Serializer &s) const
{
    s.putU64(chans.size());
    for (const auto &c : chans) {
        s.beginSection("channel");
        c->save(s);
        s.endSection("channel");
    }
}

void
MemCtrl::restore(Deserializer &d)
{
    const std::uint64_t n = d.getU64();
    if (n != chans.size())
        throwSimError(SimError::Kind::Snapshot,
                      "memory controller has %zu channels but the "
                      "checkpoint carries %llu",
                      chans.size(), (unsigned long long)n);
    for (auto &c : chans) {
        d.beginSection("channel");
        c->restore(d);
        d.endSection("channel");
    }
}

} // namespace rc
