#include "mem/memctrl.hh"

#include "common/log.hh"

namespace rc
{

MemCtrl::MemCtrl(const MemCtrlConfig &cfg, const std::string &name)
{
    RC_ASSERT(cfg.numChannels > 0, "need at least one memory channel");
    chans.reserve(cfg.numChannels);
    for (std::uint32_t i = 0; i < cfg.numChannels; ++i) {
        chans.push_back(std::make_unique<DramChannel>(
            cfg.dram, name + std::to_string(i)));
    }
}

DramChannel &
MemCtrl::channelFor(Addr line_addr)
{
    return *chans[lineNumber(line_addr) % chans.size()];
}

Cycle
MemCtrl::readLine(Addr line_addr, Cycle now)
{
    return channelFor(line_addr).access(line_addr, now, false).doneAt;
}

void
MemCtrl::writeLine(Addr line_addr, Cycle now)
{
    channelFor(line_addr).access(line_addr, now, true);
}

Counter
MemCtrl::totalReads() const
{
    Counter n = 0;
    for (const auto &c : chans)
        n += c->stats().lookup("reads");
    return n;
}

Counter
MemCtrl::totalWrites() const
{
    Counter n = 0;
    for (const auto &c : chans)
        n += c->stats().lookup("writes");
    return n;
}

void
MemCtrl::reset()
{
    for (auto &c : chans)
        c->reset();
}

} // namespace rc
