#include "snapshot/journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "common/filelock.hh"
#include "common/log.hh"

namespace rc
{

namespace
{

constexpr const char *journalName = "sweep.journal";
constexpr const char *journalHeader = "# rc sweep journal v1\n";

/** Newlines would tear the one-record-per-line framing. */
std::string
oneLine(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c == '\n' || c == '\r')
            c = ' ';
    return out;
}

} // namespace

SweepJournal::SweepJournal(const std::string &dir)
    : filePath(dir + "/" + journalName)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot create sweep directory '%s': %s",
                      dir.c_str(), std::strerror(errno));
    const bool fresh = ::access(filePath.c_str(), F_OK) != 0;
    file = std::fopen(filePath.c_str(), "ab");
    if (!file)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot open sweep journal '%s': %s",
                      filePath.c_str(), std::strerror(errno));
    if (fresh) {
        std::fputs(journalHeader, file);
        std::fflush(file);
        ::fsync(::fileno(file));
    }
}

SweepJournal::~SweepJournal()
{
    if (file)
        std::fclose(file);
}

void
SweepJournal::append(const JournalRecord &rec)
{
    char line[512];
    std::snprintf(line, sizeof(line),
                  "run b=%llu r=%llu status=%s attempts=%u digest=0x%08x "
                  "wall=%.6f err=%s\n",
                  static_cast<unsigned long long>(rec.batch),
                  static_cast<unsigned long long>(rec.run),
                  rec.status.c_str(), rec.attempts, rec.digest,
                  rec.wallSeconds, oneLine(rec.error).c_str());
    std::lock_guard<std::mutex> lock(mtx);
    // The mutex orders appends within this process; the advisory file
    // lock orders them against OTHER processes sharing the journal (a
    // resumed sweep overlapping its dying predecessor), so records from
    // two writers can never interleave into a torn line.
    ScopedFileLock flock(::fileno(file));
    if (std::fputs(line, file) == EOF || std::fflush(file) != 0 ||
        ::fsync(::fileno(file)) != 0)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot append to sweep journal '%s'",
                      filePath.c_str());
}

std::vector<JournalRecord>
SweepJournal::load(const std::string &dir)
{
    std::vector<JournalRecord> out;
    std::ifstream in(dir + "/" + journalName, std::ios::binary);
    if (!in)
        return out;
    std::stringstream all;
    all << in.rdbuf();
    const std::string text = all.str();
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            break; // torn tail line: the append never completed
        const std::string line = text.substr(start, nl - start);
        start = nl + 1;
        if (line.rfind("run ", 0) != 0)
            continue;
        JournalRecord rec;
        unsigned long long b = 0, r = 0;
        unsigned attempts = 0, digest = 0;
        double wall = 0.0;
        char status[32] = {};
        const int matched =
            std::sscanf(line.c_str(),
                        "run b=%llu r=%llu status=%31s attempts=%u "
                        "digest=%x wall=%lf",
                        &b, &r, status, &attempts, &digest, &wall);
        if (matched != 6)
            continue; // malformed line: skip, the run simply re-runs
        rec.batch = b;
        rec.run = r;
        rec.status = status;
        rec.attempts = attempts;
        rec.digest = digest;
        rec.wallSeconds = wall;
        const std::size_t errAt = line.find(" err=");
        if (errAt != std::string::npos)
            rec.error = line.substr(errAt + 5);
        out.push_back(std::move(rec));
    }
    return out;
}

} // namespace rc
