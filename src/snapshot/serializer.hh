/**
 * @file
 * Versioned, CRC-guarded binary checkpoint format.
 *
 * A snapshot image is:
 *
 *   [0..7]   magic "RCSNAP01"
 *   [8..11]  schema version (u32, little-endian)
 *   [12..N)  payload: nested named sections
 *   [N..N+4) CRC32 of the payload
 *
 * A section is framed as `u16 name length, name bytes, u64 payload
 * length, payload`; the length is back-patched when the section is
 * closed, so a reader can both verify it is looking at the structure it
 * expects (name check) and bound every read (length check).  All scalar
 * encodings are fixed-width little-endian.
 *
 * Every corruption path — short file, bad magic, unknown schema version,
 * CRC mismatch, wrong section name, reads past a section boundary, a
 * section not fully consumed — throws SimError(Kind::Snapshot), so a bad
 * checkpoint quarantines (or restarts) one run instead of killing the
 * sweep, exactly like a corrupt trace file.
 */

#ifndef RC_SNAPSHOT_SERIALIZER_HH
#define RC_SNAPSHOT_SERIALIZER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rc
{

/** CRC-32 (IEEE 802.3) of @p len bytes, chainable via @p crc. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t crc = 0);

/** Builds a snapshot image in memory; see the file comment for layout. */
class Serializer
{
  public:
    Serializer() = default;

    /** Open a named section (sections nest). */
    void beginSection(const char *name);

    /**
     * Close the innermost section, back-patching its length.  The
     * optional @p name is documentation at the call site only; pairing
     * is strictly LIFO.
     */
    void endSection(const char *name = nullptr);

    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v) { putU64(static_cast<std::uint64_t>(v)); }
    void putDouble(double v);
    void putString(const std::string &v);
    void putBytes(const void *data, std::size_t len);

    /** Complete image (header + payload + CRC); all sections must be
     *  closed. */
    std::vector<std::uint8_t> image() const;

    /** CRC32 of the payload alone (used as the journal's stat digest). */
    std::uint32_t payloadCrc() const;

    /**
     * Atomically write image() to @p path: the bytes go to a ".tmp"
     * sibling which is fsync'd and then renamed over the target, so a
     * crash mid-write can never leave a half-written checkpoint under
     * the final name.  Throws SimError(Snapshot) on any I/O failure.
     */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::uint8_t> buf;  //!< payload only
    std::vector<std::size_t> open;  //!< offsets of unpatched length fields
};

/**
 * Reads a snapshot image.  The constructor validates magic, schema
 * version and CRC before any field is decoded; every get*() is bounds-
 * checked against the innermost open section.
 */
class Deserializer
{
  public:
    /** Load and validate @p path; throws SimError(Snapshot). */
    explicit Deserializer(const std::string &path);

    /** Validate an in-memory image (tests, in-process round trips). */
    explicit Deserializer(std::vector<std::uint8_t> image_bytes);

    /** Enter a section; throws if the next section is not @p name. */
    void beginSection(const char *name);

    /**
     * Leave a section; throws unless it was consumed exactly.  The
     * optional @p name is call-site documentation, like the writer's.
     */
    void endSection(const char *name = nullptr);

    bool getBool() { return getU8() != 0; }
    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64() { return static_cast<std::int64_t>(getU64()); }
    double getDouble();
    std::string getString();
    void getBytes(void *out, std::size_t len);

    /** CRC32 of the payload (matches Serializer::payloadCrc()). */
    std::uint32_t payloadCrc() const { return crc; }

  private:
    void validate();
    const std::uint8_t *need(std::size_t len, const char *what);

    std::string origin;             //!< path or "<memory>", for messages
    std::vector<std::uint8_t> buf;  //!< payload only
    std::size_t cur = 0;
    std::vector<std::size_t> bounds;  //!< end offsets of open sections
    std::uint32_t crc = 0;
};

/**
 * Vector-of-scalars helpers for the dominant "count + values" pattern.
 * The restore side requires the checkpointed count to match the live
 * vector's size (cache geometry is construction-derived, never restored)
 * and throws SimError(Snapshot) labelled with @p what otherwise.
 */
void saveVec(Serializer &s, const std::vector<std::uint8_t> &v);
void saveVec(Serializer &s, const std::vector<std::uint32_t> &v);
void saveVec(Serializer &s, const std::vector<std::uint64_t> &v);
void restoreVec(Deserializer &d, std::vector<std::uint8_t> &v,
                const char *what);
void restoreVec(Deserializer &d, std::vector<std::uint32_t> &v,
                const char *what);
void restoreVec(Deserializer &d, std::vector<std::uint64_t> &v,
                const char *what);

} // namespace rc

#endif // RC_SNAPSHOT_SERIALIZER_HH
