#include "snapshot/serializer.hh"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/log.hh"

namespace rc
{

namespace
{

constexpr char snapMagic[8] = {'R', 'C', 'S', 'N', 'A', 'P', '0', '1'};
// v2: Cmp's "clock" section gained the telemetry sampler's next epoch
// boundary (sampleNext).
constexpr std::uint32_t snapVersion = 2;
constexpr std::size_t headerBytes = sizeof(snapMagic) + 4;
constexpr std::size_t trailerBytes = 4;

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t crc)
{
    static const auto table = [] {
        std::vector<std::uint32_t> t(256);
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

// --------------------------------------------------------------------------
// Serializer
// --------------------------------------------------------------------------

void
Serializer::beginSection(const char *name)
{
    const std::size_t len = std::strlen(name);
    RC_ASSERT(len > 0 && len < 0x10000, "section name length out of range");
    putU8(static_cast<std::uint8_t>(len));
    putU8(static_cast<std::uint8_t>(len >> 8));
    putBytes(name, len);
    open.push_back(buf.size());
    putU64(0); // length, patched by endSection
}

void
Serializer::endSection(const char *)
{
    RC_ASSERT(!open.empty(), "endSection without matching beginSection");
    const std::size_t at = open.back();
    open.pop_back();
    const std::uint64_t len = buf.size() - (at + 8);
    for (int i = 0; i < 8; ++i)
        buf[at + i] = static_cast<std::uint8_t>(len >> (8 * i));
}

void
Serializer::putU8(std::uint8_t v)
{
    buf.push_back(v);
}

void
Serializer::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Serializer::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Serializer::putDouble(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
Serializer::putString(const std::string &v)
{
    putU64(v.size());
    putBytes(v.data(), v.size());
}

void
Serializer::putBytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf.insert(buf.end(), p, p + len);
}

std::uint32_t
Serializer::payloadCrc() const
{
    return crc32(buf.data(), buf.size());
}

std::vector<std::uint8_t>
Serializer::image() const
{
    RC_ASSERT(open.empty(), "snapshot image with %zu unclosed section(s)",
              open.size());
    std::vector<std::uint8_t> out;
    out.reserve(headerBytes + buf.size() + trailerBytes);
    out.insert(out.end(), snapMagic, snapMagic + sizeof(snapMagic));
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(snapVersion >> (8 * i)));
    out.insert(out.end(), buf.begin(), buf.end());
    const std::uint32_t crc = payloadCrc();
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    return out;
}

void
Serializer::writeFile(const std::string &path) const
{
    const std::vector<std::uint8_t> bytes = image();
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot open '%s' for writing", tmp.c_str());
    const bool wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
        std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (!wrote) {
        std::remove(tmp.c_str());
        throwSimError(SimError::Kind::Snapshot,
                      "short write persisting snapshot '%s'", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throwSimError(SimError::Kind::Snapshot,
                      "cannot rename '%s' into place", tmp.c_str());
    }
}

// --------------------------------------------------------------------------
// Deserializer
// --------------------------------------------------------------------------

Deserializer::Deserializer(const std::string &path) : origin(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot open snapshot '%s'", path.c_str());
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(size > 0 ? size : 0);
    const std::size_t got = bytes.empty()
        ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        throwSimError(SimError::Kind::Snapshot,
                      "short read loading snapshot '%s'", path.c_str());
    buf = std::move(bytes);
    validate();
}

Deserializer::Deserializer(std::vector<std::uint8_t> image_bytes)
    : origin("<memory>"), buf(std::move(image_bytes))
{
    validate();
}

void
Deserializer::validate()
{
    // Strip and verify header/trailer; `buf` keeps the payload only.
    if (buf.size() < headerBytes + trailerBytes)
        throwSimError(SimError::Kind::Snapshot,
                      "snapshot '%s' is truncated: %zu byte(s), need at "
                      "least %zu", origin.c_str(), buf.size(),
                      headerBytes + trailerBytes);
    if (std::memcmp(buf.data(), snapMagic, sizeof(snapMagic)) != 0)
        throwSimError(SimError::Kind::Snapshot,
                      "'%s' is not a reuse-cache snapshot (bad magic)",
                      origin.c_str());
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= std::uint32_t{buf[sizeof(snapMagic) + i]} << (8 * i);
    if (version != snapVersion)
        throwSimError(SimError::Kind::Snapshot,
                      "snapshot '%s' has unsupported schema version %u "
                      "(expected %u)", origin.c_str(), version, snapVersion);
    const std::size_t payloadEnd = buf.size() - trailerBytes;
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= std::uint32_t{buf[payloadEnd + i]} << (8 * i);
    crc = crc32(buf.data() + headerBytes, payloadEnd - headerBytes);
    if (stored != crc)
        throwSimError(SimError::Kind::Snapshot,
                      "snapshot '%s' failed its CRC check "
                      "(stored %08x, computed %08x)",
                      origin.c_str(), stored, crc);
    buf.erase(buf.begin() + payloadEnd, buf.end());
    buf.erase(buf.begin(), buf.begin() + headerBytes);
}

const std::uint8_t *
Deserializer::need(std::size_t len, const char *what)
{
    const std::size_t bound = bounds.empty() ? buf.size() : bounds.back();
    if (cur + len > bound)
        throwSimError(SimError::Kind::Snapshot,
                      "snapshot '%s': reading %s (%zu byte(s)) would cross "
                      "a section boundary at offset %zu",
                      origin.c_str(), what, len, bound);
    const std::uint8_t *p = buf.data() + cur;
    cur += len;
    return p;
}

void
Deserializer::beginSection(const char *name)
{
    const std::uint8_t *lenBytes = need(2, "section name length");
    const std::size_t nameLen = lenBytes[0] | (std::size_t{lenBytes[1]} << 8);
    const std::uint8_t *nameBytes = need(nameLen, "section name");
    if (nameLen != std::strlen(name) ||
        std::memcmp(nameBytes, name, nameLen) != 0)
        throwSimError(SimError::Kind::Snapshot,
                      "snapshot '%s': expected section '%s', found '%.*s'",
                      origin.c_str(), name, static_cast<int>(nameLen),
                      reinterpret_cast<const char *>(nameBytes));
    const std::uint64_t len = getU64();
    const std::size_t bound = bounds.empty() ? buf.size() : bounds.back();
    if (len > bound - cur)
        throwSimError(SimError::Kind::Snapshot,
                      "snapshot '%s': section '%s' claims %llu byte(s) but "
                      "only %zu remain", origin.c_str(), name,
                      static_cast<unsigned long long>(len), bound - cur);
    bounds.push_back(cur + len);
}

void
Deserializer::endSection(const char *)
{
    RC_ASSERT(!bounds.empty(), "endSection without matching beginSection");
    if (cur != bounds.back())
        throwSimError(SimError::Kind::Snapshot,
                      "snapshot '%s': section not fully consumed "
                      "(%zu byte(s) left)", origin.c_str(),
                      bounds.back() - cur);
    bounds.pop_back();
}

std::uint8_t
Deserializer::getU8()
{
    return *need(1, "u8");
}

std::uint32_t
Deserializer::getU32()
{
    const std::uint8_t *p = need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t
Deserializer::getU64()
{
    const std::uint8_t *p = need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

double
Deserializer::getDouble()
{
    const std::uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deserializer::getString()
{
    const std::uint64_t len = getU64();
    const std::uint8_t *p = need(len, "string payload");
    return std::string(reinterpret_cast<const char *>(p), len);
}

void
Deserializer::getBytes(void *out, std::size_t len)
{
    std::memcpy(out, need(len, "byte array"), len);
}

// --------------------------------------------------------------------------
// Vector helpers
// --------------------------------------------------------------------------

namespace
{

void
checkCount(std::uint64_t have, std::size_t want, const char *what)
{
    if (have != want)
        throwSimError(SimError::Kind::Snapshot,
                      "%s: checkpoint carries %llu element(s), the live "
                      "structure has %zu", what,
                      static_cast<unsigned long long>(have), want);
}

} // namespace

void
saveVec(Serializer &s, const std::vector<std::uint8_t> &v)
{
    s.putU64(v.size());
    s.putBytes(v.data(), v.size());
}

void
saveVec(Serializer &s, const std::vector<std::uint32_t> &v)
{
    s.putU64(v.size());
    for (std::uint32_t x : v)
        s.putU32(x);
}

void
saveVec(Serializer &s, const std::vector<std::uint64_t> &v)
{
    s.putU64(v.size());
    for (std::uint64_t x : v)
        s.putU64(x);
}

void
restoreVec(Deserializer &d, std::vector<std::uint8_t> &v, const char *what)
{
    checkCount(d.getU64(), v.size(), what);
    d.getBytes(v.data(), v.size());
}

void
restoreVec(Deserializer &d, std::vector<std::uint32_t> &v, const char *what)
{
    checkCount(d.getU64(), v.size(), what);
    for (std::uint32_t &x : v)
        x = d.getU32();
}

void
restoreVec(Deserializer &d, std::vector<std::uint64_t> &v, const char *what)
{
    checkCount(d.getU64(), v.size(), what);
    for (std::uint64_t &x : v)
        x = d.getU64();
}

} // namespace rc
