/**
 * @file
 * Append-only sweep journal.
 *
 * `forEachRun` records one line per completed run, fsync'd before the
 * append returns, so a killed sweep can be relaunched with `--resume=DIR`
 * and skip everything that already finished.  The format is plain text —
 * one `run` line per record, human-readable for post-mortems:
 *
 *   # rc sweep journal v1
 *   run b=0 r=2 status=ok attempts=1 digest=0x5f3a9c01 wall=1.042 err=
 *
 * `b` is the batch index (which forEachRun call within the process — a
 * bench executes the same batch sequence on every launch, so the pair
 * (b, r) names a run stably across relaunches), `digest` is the CRC32 of
 * the run's persisted result payload (0 when no result blob was written),
 * and `err` holds the final SimError text for quarantined runs.  A torn
 * final line (no trailing newline — the process died mid-append) is
 * ignored on load.
 */

#ifndef RC_SNAPSHOT_JOURNAL_HH
#define RC_SNAPSHOT_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace rc
{

/** One completed-run record. */
struct JournalRecord
{
    std::uint64_t batch = 0;
    std::uint64_t run = 0;
    std::string status;        //!< "ok" | "retried" | "quarantined"
    std::uint32_t attempts = 1;
    std::uint32_t digest = 0;  //!< CRC32 of the result blob payload; 0 = none
    double wallSeconds = 0.0;
    std::string error;         //!< final SimError text (quarantined runs)
};

/** Appender + loader for `<dir>/sweep.journal`; append() is thread-safe. */
class SweepJournal
{
  public:
    /**
     * Create @p dir if needed and open its journal for appending,
     * writing the header line first when the file is new.  Throws
     * SimError(Snapshot) when the directory or file cannot be created.
     */
    explicit SweepJournal(const std::string &dir);

    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Append one record and fsync before returning. */
    void append(const JournalRecord &rec);

    /** Full path of the journal file. */
    const std::string &path() const { return filePath; }

    /**
     * Parse `<dir>/sweep.journal`.  A missing file yields an empty
     * vector (fresh sweep); malformed or torn lines are skipped.
     */
    static std::vector<JournalRecord> load(const std::string &dir);

  private:
    std::string filePath;
    std::FILE *file = nullptr;
    std::mutex mtx;
};

} // namespace rc

#endif // RC_SNAPSHOT_JOURNAL_HH
