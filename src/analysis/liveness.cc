#include "analysis/liveness.hh"

#include <algorithm>

#include "common/log.hh"

namespace rc
{

void
GenerationTracker::onDataFill(Addr line_addr, Cycle now)
{
    const Addr line = lineAlign(line_addr);
    auto [it, inserted] = resident.try_emplace(line);
    if (!inserted) {
        // Defensive: a fill over an open generation closes the old one.
        GenRecord old = it->second;
        old.evict = now;
        done.push_back(old);
        it->second = GenRecord{};
    }
    it->second.fill = now;
    it->second.lastHit = now;
    it->second.hits = 0;
}

void
GenerationTracker::onDataHit(Addr line_addr, Cycle now)
{
    const Addr line = lineAlign(line_addr);
    auto it = resident.find(line);
    if (it == resident.end()) {
        // Line resident before the tracker attached: open an implicit
        // generation starting now.
        it = resident.try_emplace(line).first;
        it->second.fill = now;
    }
    it->second.lastHit = now;
    ++it->second.hits;
    ++hitsSeen;
}

void
GenerationTracker::onDataEvict(Addr line_addr, Cycle now)
{
    const Addr line = lineAlign(line_addr);
    auto it = resident.find(line);
    if (it == resident.end())
        return; // resident since before the tracker attached, never hit
    GenRecord rec = it->second;
    rec.evict = now;
    resident.erase(it);
    done.push_back(rec);
}

void
GenerationTracker::reset()
{
    resident.clear();
    done.clear();
    hitsSeen = 0;
}

void
GenerationTracker::finalize(Cycle end)
{
    for (auto &[line, rec] : resident) {
        (void)line;
        GenRecord closed = rec;
        closed.evict = end;
        done.push_back(closed);
    }
    resident.clear();
}

LiveSeries
computeLiveSeries(const std::vector<GenRecord> &records, Cycle start,
                  Cycle end, Cycle period, std::uint64_t capacity_lines)
{
    RC_ASSERT(period > 0, "sampling period must be positive");
    RC_ASSERT(end > start, "empty observation window");
    RC_ASSERT(capacity_lines > 0, "capacity must be positive");

    const std::size_t samples =
        static_cast<std::size_t>((end - start) / period);
    LiveSeries series;
    series.start = start;
    series.period = period;
    series.fraction.assign(samples, 0.0);
    if (samples == 0)
        return series;

    // Difference array over sample bins: a generation is live on samples
    // in [fill, lastHit).
    std::vector<std::int64_t> diff(samples + 1, 0);
    auto bin_of = [&](Cycle t) -> std::int64_t {
        if (t <= start)
            return 0;
        const Cycle rel = t - start;
        const auto b = static_cast<std::int64_t>((rel + period - 1) /
                                                 period);
        return std::min<std::int64_t>(b, static_cast<std::int64_t>(samples));
    };

    for (const GenRecord &g : records) {
        if (g.hits == 0 || g.lastHit <= start || g.fill >= end)
            continue;
        const std::int64_t b0 = bin_of(g.fill);
        const std::int64_t b1 = bin_of(g.lastHit);
        if (b1 <= b0)
            continue;
        ++diff[static_cast<std::size_t>(b0)];
        --diff[static_cast<std::size_t>(b1)];
    }

    std::int64_t live = 0;
    double sum = 0.0;
    for (std::size_t s = 0; s < samples; ++s) {
        live += diff[s];
        series.fraction[s] =
            static_cast<double>(live) / static_cast<double>(capacity_lines);
        sum += series.fraction[s];
    }
    series.mean = sum / static_cast<double>(samples);
    return series;
}

double
averageLiveFraction(const std::vector<GenRecord> &records, Cycle start,
                    Cycle end, Cycle period, std::uint64_t capacity_lines)
{
    return computeLiveSeries(records, start, end, period,
                             capacity_lines).mean;
}

} // namespace rc
