/**
 * @file
 * Line-generation tracking and live-line analysis.
 *
 * A generation is one stay of a line in the SLLC data array (paper
 * Section 2.2 follows [Kaxiras et al.] in calling reloads new
 * generations).  A line is LIVE at time t if it will receive another hit
 * before being evicted (Section 2.1); its live interval is therefore
 * [fill, lastHit).  The tracker observes data-array fill/hit/evict
 * events through the LlcObserver interface and produces the records
 * behind Figures 1a, 1b and 7.
 */

#ifndef RC_ANALYSIS_LIVENESS_HH
#define RC_ANALYSIS_LIVENESS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/llc_iface.hh"
#include "common/types.hh"

namespace rc
{

/** One completed (or force-closed) data-array generation. */
struct GenRecord
{
    Cycle fill = 0;      //!< data-array entry cycle
    Cycle evict = 0;     //!< data-array exit cycle
    Cycle lastHit = 0;   //!< cycle of the final hit (== fill when none)
    std::uint32_t hits = 0; //!< hits received during the stay
};

/** Observer that logs every data-array generation. */
class GenerationTracker : public LlcObserver
{
  public:
    void onDataFill(Addr line_addr, Cycle now) override;
    void onDataHit(Addr line_addr, Cycle now) override;
    void onDataEvict(Addr line_addr, Cycle now) override;

    /**
     * Close every still-resident generation with @p end as its eviction
     * time.  Call once when the simulation window ends.
     */
    void finalize(Cycle end);

    /** Completed generations (finalize() moves residents here). */
    const std::vector<GenRecord> &records() const { return done; }

    /** Generations still open. */
    std::uint64_t residentCount() const { return resident.size(); }

    /** Total hits observed across all generations. */
    std::uint64_t totalHits() const { return hitsSeen; }

    /**
     * Drop all recorded state so the tracker can observe a fresh run.
     * Quarantine retries re-create the Cmp from scratch; a tracker that
     * stayed attached across the failed attempt must start clean too.
     */
    void reset();

  private:
    std::unordered_map<Addr, GenRecord> resident;
    std::vector<GenRecord> done;
    std::uint64_t hitsSeen = 0;
};

/** Sampled live-line fraction over time (Figure 1a). */
struct LiveSeries
{
    Cycle start = 0;                //!< first sample time
    Cycle period = 0;               //!< sampling period
    std::vector<double> fraction;   //!< live lines / capacity per sample
    double mean = 0.0;              //!< average across samples
};

/**
 * Compute the instantaneous live fraction at each sample point.
 *
 * @param records completed generations (finalize() first).
 * @param start first cycle of the observation window.
 * @param end last cycle of the observation window.
 * @param period sampling period (the paper samples every 100 Kcycles).
 * @param capacity_lines data-array capacity in lines (denominator).
 */
LiveSeries computeLiveSeries(const std::vector<GenRecord> &records,
                             Cycle start, Cycle end, Cycle period,
                             std::uint64_t capacity_lines);

/**
 * Average live fraction over the window (Figure 7's bar heights):
 * shorthand for computeLiveSeries(...).mean.
 */
double averageLiveFraction(const std::vector<GenRecord> &records,
                           Cycle start, Cycle end, Cycle period,
                           std::uint64_t capacity_lines);

} // namespace rc

#endif // RC_ANALYSIS_LIVENESS_HH
