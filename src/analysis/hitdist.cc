#include "analysis/hitdist.hh"

#include <algorithm>

#include "common/log.hh"

namespace rc
{

HitDistribution
hitDistribution(const std::vector<GenRecord> &records,
                std::uint32_t num_groups)
{
    RC_ASSERT(num_groups > 0, "need at least one group");

    HitDistribution dist;
    dist.generations = records.size();
    if (records.empty())
        return dist;

    std::vector<std::uint32_t> hits;
    hits.reserve(records.size());
    std::uint64_t useful = 0;
    for (const GenRecord &g : records) {
        hits.push_back(g.hits);
        dist.totalHits += g.hits;
        useful += g.hits > 0;
    }
    dist.usefulFraction =
        static_cast<double>(useful) / static_cast<double>(records.size());

    std::sort(hits.begin(), hits.end(), std::greater<>());

    dist.groups.resize(num_groups);
    const double group_size =
        static_cast<double>(hits.size()) / num_groups;
    for (std::uint32_t g = 0; g < num_groups; ++g) {
        const auto begin = static_cast<std::size_t>(g * group_size);
        auto end = static_cast<std::size_t>((g + 1) * group_size);
        if (g + 1 == num_groups)
            end = hits.size();
        if (end <= begin) {
            dist.groups[g] = HitGroup{};
            continue;
        }
        std::uint64_t sum = 0;
        for (std::size_t i = begin; i < end; ++i)
            sum += hits[i];
        dist.groups[g].hitShare = dist.totalHits
            ? static_cast<double>(sum) /
                  static_cast<double>(dist.totalHits)
            : 0.0;
        dist.groups[g].avgHits =
            static_cast<double>(sum) / static_cast<double>(end - begin);
    }
    return dist;
}

} // namespace rc
