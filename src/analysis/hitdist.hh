/**
 * @file
 * Hits-per-generation distribution (paper Figure 1b).
 *
 * After the simulation, the hit count of every line generation is sorted
 * descending and split into equal-size groups (the paper uses 200 groups
 * of 0.5% each); each group reports its share of all hits and its average
 * hits per generation.  The paper's headline: the top 0.5% of loaded
 * lines receives 47% of all SLLC hits, and only ~5% of loaded lines are
 * ever hit at all.
 */

#ifndef RC_ANALYSIS_HITDIST_HH
#define RC_ANALYSIS_HITDIST_HH

#include <cstdint>
#include <vector>

#include "analysis/liveness.hh"

namespace rc
{

/** One group of the sorted hits-per-generation distribution. */
struct HitGroup
{
    double hitShare = 0.0; //!< fraction of all hits landing in the group
    double avgHits = 0.0;  //!< mean hits per generation in the group
};

/** Summary of the full distribution. */
struct HitDistribution
{
    std::vector<HitGroup> groups;    //!< sorted: hottest group first
    std::uint64_t generations = 0;   //!< total line generations
    std::uint64_t totalHits = 0;     //!< total hits across generations
    double usefulFraction = 0.0;     //!< generations with >= 1 hit
};

/**
 * Build the distribution.
 * @param records completed generations.
 * @param num_groups number of equal-size groups (paper: 200).
 */
HitDistribution hitDistribution(const std::vector<GenRecord> &records,
                                std::uint32_t num_groups = 200);

} // namespace rc

#endif // RC_ANALYSIS_HITDIST_HH
