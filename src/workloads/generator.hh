/**
 * @file
 * Synthetic reference-stream generator: turns an AppProfile into the
 * deterministic MemRef stream a core consumes.
 */

#ifndef RC_WORKLOADS_GENERATOR_HH
#define RC_WORKLOADS_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/trace.hh"
#include "workloads/app_profile.hh"

namespace rc
{

/**
 * RefStream implementation over an AppProfile.
 *
 * Memory layout: each core owns a 64 GB window of the 40-bit physical
 * space ((core << 36)); every component gets a 1 GB slot inside it.
 * Shared components (parallel workloads) instead live in a common window
 * at (8 << 36) so all cores touch the same lines.  Working-set sizes are
 * divided by the capacity scale so scaled caches see proportionate
 * pressure.
 *
 * One instruction fetch is emitted per 16 retired instructions, walking
 * the profile's code region sequentially.
 */
class SyntheticStream final : public RefStream
{
  public:
    /**
     * @param app the profile to synthesize.
     * @param core owning core (address window, shared-stream offsets).
     * @param seed RNG seed (combine workload and core ids for variety).
     * @param scale capacity divisor matching SystemConfig::capacityScale.
     * @param num_cores cores sharing the parallel regions.
     */
    SyntheticStream(const AppProfile &app, CoreId core, std::uint64_t seed,
                    std::uint32_t scale, std::uint32_t num_cores = 8);

    MemRef next() override;

    const char *label() const override { return appName.c_str(); }

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

    /** Number of mixture components (incl. code and hot; tests). */
    std::size_t componentCount() const { return comps.size(); }

  private:
    struct CompState
    {
        AccessPattern pattern = AccessPattern::Loop;
        Addr base = 0;
        std::uint64_t lines = 1;
        std::uint32_t burstLines = 4;
        std::uint64_t cursor = 0;
        std::uint32_t burstLeft = 0;
        std::uint64_t scatter = 1;        //!< rank->line multiplier (Zipf)
        std::uint64_t salt = 0;           //!< rank->line offset (Zipf)
        std::vector<double> zipfCdf;      //!< cumulative Zipf weights
        std::vector<std::uint32_t> zipfGuide; //!< CDF search accelerator
        double zipfGuideScale = 0.0;      //!< buckets per unit weight
        std::uint64_t universeLines = 1;  //!< Loop: relocation universe
        std::uint64_t window = 0;         //!< Loop: current window start
        Addr pcBase = 0;                  //!< synthetic PC of this
                                          //!< component's access site
                                          //!< (ctor-derived, never
                                          //!< serialized)
    };

    static void buildZipfGuide(CompState &comp);
    static std::uint64_t zipfRank(const CompState &comp, double u);
    Addr genLine(CompState &comp);
    MemRef makeDataRef();
    void advancePhase();
    void reseedComponent(CompState &comp, std::uint64_t mix);

    std::string appName;
    double writeRatio;
    std::uint32_t thinkLo;
    double thinkFrac;

    Rng rng;
    std::vector<CompState> comps;     //!< profile components
    std::vector<double> pickCdf;      //!< cumulative component weights
    CompState hot;                    //!< L1-resident remainder component
    CompState code;                   //!< instruction stream

    std::uint64_t instrSinceFetch = 0;
    static constexpr std::uint64_t instrPerFetch = 32;

    // Phase machinery (see AppProfile::phaseRefs).
    std::uint64_t refsPerPhase = 0;   //!< 0 disables phases
    std::uint64_t refsInPhase = 0;
    std::uint64_t phaseIndex = 0;
    std::uint64_t phaseSeed = 0;
};

} // namespace rc

#endif // RC_WORKLOADS_GENERATOR_HH
