/**
 * @file
 * Parallel-application analogs (paper Section 5.7): blackscholes,
 * canneal, ferret and fluidanimate from PARSEC plus ocean from SPLASH-2,
 * modeled as profiles with shared components so the TO-MSI protocol's
 * sharing transitions are exercised.
 */

#ifndef RC_WORKLOADS_PARALLEL_HH
#define RC_WORKLOADS_PARALLEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/trace.hh"
#include "workloads/app_profile.hh"

namespace rc
{

/** The five parallel analogs, in the paper's order. */
const std::vector<AppProfile> &parallelProfiles();

/** Look a parallel analog up by name; nullptr when unknown. */
const AppProfile *findParallelProfile(const std::string &name);

/**
 * Instantiate one stream per core running @p app; shared components
 * reference common regions across all cores.
 */
std::vector<std::unique_ptr<RefStream>>
buildParallelStreams(const AppProfile &app, std::uint32_t num_cores,
                     std::uint64_t seed, std::uint32_t scale);

} // namespace rc

#endif // RC_WORKLOADS_PARALLEL_HH
