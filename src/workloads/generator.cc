#include "workloads/generator.hh"
#include <cstdlib>

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace
{

/** Per-core private window: 64 GB apart within the 40-bit space. */
Addr
privateBase(CoreId core, std::uint32_t slot)
{
    return (static_cast<Addr>(core) << 36) |
           (static_cast<Addr>(slot) << 30);
}

/** Shared window common to all cores. */
Addr
sharedBase(std::uint32_t shared_id)
{
    return (Addr{8} << 36) | (static_cast<Addr>(shared_id + 1) << 30);
}

std::uint64_t
scaledLines(std::uint64_t region_bytes, std::uint32_t scale)
{
    const std::uint64_t lines = region_bytes / scale / lineBytes;
    return std::max<std::uint64_t>(lines, 1);
}

/** Lines per 1 GB component slot. */
constexpr std::uint64_t slotLines = (1ull << 30) / lineBytes;

/**
 * Scatter a region inside its slot.  Slot bases are 1 GB aligned, so
 * without an offset every region of every core would start at set 0 of
 * every cache and pile up in the low sets.  The offset is derived
 * deterministically from the slot identity (not the stream RNG) so
 * shared regions land at the same place for every core.
 */
Addr
scatterOffset(Addr base, std::uint64_t region_lines)
{
    if (region_lines >= slotLines)
        return 0;
    const std::uint64_t room = slotLines - region_lines;
    SplitMix64 h(base ^ 0xa2c1e7f3d4b59617ULL);
    return (h.next() % room) * lineBytes;
}

/**
 * Synthetic PC of a component's access site.  Derived from the app name
 * (FNV-1a) and the component slot — not the core — so two cores running
 * the same binary issue the same PCs, and PC-indexed predictors share
 * their training the way they would for a real multiprogrammed mix.
 * Never drawn from the stream RNG: adding PCs must not perturb the
 * generated address/think sequence.
 */
Addr
synthPcBase(const std::string &name, std::uint32_t slot)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char ch : name)
        h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
    SplitMix64 mix(h ^ (std::uint64_t{slot} * 0x9e3779b97f4a7c15ULL));
    // A 40-bit, 4-byte-aligned "text segment" address.
    return static_cast<Addr>(mix.next()) & ((Addr{1} << 40) - 4);
}

} // namespace

SyntheticStream::SyntheticStream(const AppProfile &app, CoreId core,
                                 std::uint64_t seed, std::uint32_t scale,
                                 std::uint32_t num_cores)
    : appName(app.name),
      writeRatio(app.writeRatio),
      rng(SplitMix64(seed ^ (0x5851f42d4c957f2dULL * (core + 1))).next())
{
    RC_ASSERT(scale >= 1, "capacity scale must be at least 1");
    RC_ASSERT(app.memRatio > 0.0 && app.memRatio <= 1.0,
              "memRatio out of range for %s", app.name.c_str());

    const double mean_think = 1.0 / app.memRatio - 1.0;
    thinkLo = static_cast<std::uint32_t>(mean_think);
    thinkFrac = mean_think - thinkLo;

    double cumulative = 0.0;
    std::uint32_t slot = 1;
    for (const Component &c : app.components) {
        CompState st;
        st.pattern = c.pattern;
        st.lines = scaledLines(c.regionBytes, scale);
        st.burstLines = std::max<std::uint32_t>(c.burstLines, 1);
        if (c.pattern == AccessPattern::Loop && !c.shared) {
            // Private loops relocate within an 8x universe at phase
            // boundaries.
            st.universeLines = st.lines * 8;
        } else {
            st.universeLines = st.lines;
        }
        st.base = c.shared ? sharedBase(c.sharedId)
                           : privateBase(core, slot);
        st.base += scatterOffset(st.base, st.universeLines);
        st.pcBase = synthPcBase(app.name, slot);
        if (c.pattern == AccessPattern::Stream) {
            // Parallel sweeps start staggered (domain decomposition).
            st.cursor = c.shared && num_cores
                ? (st.lines / num_cores) * core
                : 0;
        }
        if (c.pattern == AccessPattern::Zipf) {
            st.zipfCdf.resize(st.lines);
            double sum = 0.0;
            for (std::uint64_t i = 0; i < st.lines; ++i) {
                sum += 1.0 / std::pow(static_cast<double>(i + 1), c.zipfS);
                st.zipfCdf[i] = sum;
            }
            // Scatter hot ranks across the region so they spread over
            // cache sets; an odd multiplier keeps power-of-two coverage.
            st.scatter = 0x9E3779B9u | 1u;
            buildZipfGuide(st);
        }
        comps.push_back(std::move(st));
        cumulative += c.weight;
        pickCdf.push_back(cumulative);
        ++slot;
    }
    RC_ASSERT(cumulative <= 1.0 + 1e-9,
              "component weights of %s exceed 1", app.name.c_str());

    hot.pattern = AccessPattern::Loop;
    hot.lines = scaledLines(16 * 1024, scale);
    hot.universeLines = hot.lines * 8;
    hot.base = privateBase(core, 62);
    hot.base += scatterOffset(hot.base, hot.universeLines);
    hot.pcBase = synthPcBase(app.name, 62);

    // Instruction fetches follow a skewed popularity distribution over
    // the code region (hot basic blocks dominate); a cyclic walk would
    // pathologically defeat the L1I for any footprint above its size.
    code.pattern = AccessPattern::Zipf;
    code.lines = scaledLines(app.codeBytes, scale);
    code.base = privateBase(core, 63);
    code.base += scatterOffset(code.base, code.lines);
    code.scatter = 0x9E3779B9u | 1u;
    code.zipfCdf.resize(code.lines);
    double code_sum = 0.0;
    for (std::uint64_t i = 0; i < code.lines; ++i) {
        code_sum += 1.0 / std::pow(static_cast<double>(i + 1), 1.3);
        code.zipfCdf[i] = code_sum;
    }
    buildZipfGuide(code);

    // Phase behaviour: every refsPerPhase data references the hot sets
    // relocate and the popularity rankings reshuffle.  Cores start at
    // staggered positions within their first phase.
    refsPerPhase = app.phaseRefs / scale;
    if (const char *p = std::getenv("RC_PHASE_REFS"))
        refsPerPhase = static_cast<std::uint64_t>(std::atoll(p)) / scale;
    phaseSeed = SplitMix64(seed ^ 0xfeedfacecafebeefULL ^ core).next();
    if (refsPerPhase > 0)
        refsInPhase = SplitMix64(phaseSeed).next() % refsPerPhase;
}

void
SyntheticStream::reseedComponent(CompState &comp, std::uint64_t mix)
{
    SplitMix64 h(phaseSeed ^ (phaseIndex * 0x9e3779b97f4a7c15ULL) ^ mix);
    switch (comp.pattern) {
      case AccessPattern::Loop:
        if (comp.universeLines > comp.lines)
            comp.window = h.next() % (comp.universeLines - comp.lines);
        break;
      case AccessPattern::Zipf:
        // New popularity ranking: different lines become hot.
        comp.scatter = h.next() | 1u;
        comp.salt = h.next();
        break;
      default:
        break; // Stream/Chase/Uniform are memoryless
    }
}

void
SyntheticStream::advancePhase()
{
    ++phaseIndex;
    refsInPhase = 0;
    std::uint64_t mix = 1;
    for (auto &c : comps)
        reseedComponent(c, mix++);
    reseedComponent(hot, 0x68f7);
    reseedComponent(code, 0xc0de);
}

// The Zipf CDF inversion is the hottest per-reference operation: a
// binary search over a region-sized array of doubles whose probes miss
// cache.  The guide table maps equal-probability slices of [0, total)
// to the CDF range containing them, shrinking the search to a handful
// of adjacent elements.  It accelerates lower_bound without replacing
// it: for any u the returned rank is exactly the rank the full-array
// lower_bound would return, so the generated stream is bit-identical.
// The table depends only on zipfCdf (ctor-built, never reseeded), so it
// needs no serialization.
void
SyntheticStream::buildZipfGuide(CompState &comp)
{
    const auto &cdf = comp.zipfCdf;
    const std::uint64_t n = cdf.size();
    comp.zipfGuide.assign(n + 1, 0);
    const double total = cdf.back();
    comp.zipfGuideScale = static_cast<double>(n) / total;
    std::uint64_t i = 0;
    for (std::uint64_t g = 0; g <= n; ++g) {
        const double bound =
            total * (static_cast<double>(g) / static_cast<double>(n));
        while (i < n && cdf[i] < bound)
            ++i;
        comp.zipfGuide[g] = static_cast<std::uint32_t>(i);
    }
}

std::uint64_t
SyntheticStream::zipfRank(const CompState &comp, double u)
{
    const auto &cdf = comp.zipfCdf;
    const std::uint64_t n = cdf.size();
    // Reciprocal multiply instead of dividing by the total: the bucket
    // index is only a starting hint, so its rounding is non-semantic —
    // the widening loops below restore exactness.
    std::uint64_t g = static_cast<std::uint64_t>(u * comp.zipfGuideScale);
    if (g >= n)
        g = n - 1;
    std::uint64_t lo = comp.zipfGuide[g];
    std::uint64_t hi = comp.zipfGuide[g + 1];
    if (hi == 0)
        hi = 1; // the bracket must cover at least cdf[0]
    // The bucket index suffers float rounding the guide construction
    // does not; widen until [lo, hi) provably brackets the global
    // lower_bound answer (first index with cdf[i] >= u).
    while (lo > 0 && cdf[lo - 1] >= u)
        --lo;
    while (hi < n && cdf[hi - 1] < u)
        ++hi;
    const auto it = std::lower_bound(cdf.begin() + static_cast<std::ptrdiff_t>(lo),
                                     cdf.begin() + static_cast<std::ptrdiff_t>(hi),
                                     u);
    return static_cast<std::uint64_t>(it - cdf.begin());
}

Addr
SyntheticStream::genLine(CompState &comp)
{
    std::uint64_t line = 0;
    switch (comp.pattern) {
      case AccessPattern::Loop:
        line = comp.window + comp.cursor;
        comp.cursor = (comp.cursor + 1) % comp.lines;
        break;
      case AccessPattern::Stream:
        line = comp.cursor;
        comp.cursor = (comp.cursor + 1) % comp.lines;
        break;
      case AccessPattern::Uniform:
        line = rng.below(comp.lines);
        break;
      case AccessPattern::Zipf: {
        const double u = rng.uniform() * comp.zipfCdf.back();
        const std::uint64_t rank = zipfRank(comp, u);
        line = (rank * comp.scatter + comp.salt) % comp.lines;
        break;
      }
      case AccessPattern::Chase:
        if (comp.burstLeft > 0) {
            --comp.burstLeft;
            comp.cursor = (comp.cursor + 1) % comp.lines;
        } else {
            comp.cursor = rng.below(comp.lines);
            comp.burstLeft = static_cast<std::uint32_t>(
                rng.geometric(comp.burstLines)) - 1;
        }
        line = comp.cursor;
        break;
    }
    return comp.base + line * lineBytes;
}

MemRef
SyntheticStream::makeDataRef()
{
    if (refsPerPhase > 0 && ++refsInPhase >= refsPerPhase)
        advancePhase();

    CompState *comp = &hot;
    if (!pickCdf.empty()) {
        const double u = rng.uniform();
        const auto it = std::lower_bound(pickCdf.begin(), pickCdf.end(), u);
        if (it != pickCdf.end())
            comp = &comps[static_cast<std::size_t>(it - pickCdf.begin())];
    }

    MemRef ref;
    ref.addr = genLine(*comp) + rng.below(8) * 8;
    ref.op = rng.chance(writeRatio) ? MemOp::Write : MemOp::Read;
    ref.think = thinkLo + (rng.chance(thinkFrac) ? 1 : 0);
    ref.isInstr = false;
    // Loads and stores of one component come from two distinct
    // instructions of its loop body.
    ref.pc = comp->pcBase + (ref.op == MemOp::Write ? 4 : 0);
    return ref;
}

MemRef
SyntheticStream::next()
{
    if (instrSinceFetch >= instrPerFetch) {
        instrSinceFetch -= instrPerFetch;
        MemRef ref;
        ref.addr = genLine(code);
        ref.op = MemOp::Read;
        ref.think = 0;
        ref.isInstr = true;
        ref.pc = ref.addr; // a fetch's PC is the fetched address
        return ref;
    }
    MemRef ref = makeDataRef();
    instrSinceFetch += ref.think + 1;
    return ref;
}

// Only the fields next()/advancePhase() mutate are serialized; the layout
// (base, lines, pattern, zipfCdf) is ctor-derived and reconstructed from
// the profile.
void
SyntheticStream::save(Serializer &s) const
{
    s.putU64(rng.rawState());
    const auto put_comp = [&s](const CompState &c) {
        s.putU64(c.cursor);
        s.putU32(c.burstLeft);
        s.putU64(c.scatter);
        s.putU64(c.salt);
        s.putU64(c.window);
    };
    s.putU64(comps.size());
    for (const CompState &c : comps)
        put_comp(c);
    put_comp(hot);
    put_comp(code);
    s.putU64(instrSinceFetch);
    s.putU64(refsInPhase);
    s.putU64(phaseIndex);
}

void
SyntheticStream::restore(Deserializer &d)
{
    rng.setRawState(d.getU64());
    const auto get_comp = [&d](CompState &c) {
        c.cursor = d.getU64();
        c.burstLeft = d.getU32();
        c.scatter = d.getU64();
        c.salt = d.getU64();
        c.window = d.getU64();
    };
    const std::uint64_t n = d.getU64();
    if (n != comps.size())
        throwSimError(SimError::Kind::Snapshot,
                      "stream '%s' has %zu components but the checkpoint "
                      "carries %llu",
                      appName.c_str(), comps.size(), (unsigned long long)n);
    for (CompState &c : comps)
        get_comp(c);
    get_comp(hot);
    get_comp(code);
    instrSinceFetch = d.getU64();
    refsInPhase = d.getU64();
    phaseIndex = d.getU64();
}

} // namespace rc
