/**
 * @file
 * Multiprogrammed workload construction (paper Section 4.1): 100 random
 * mixes of 8 applications drawn from the 29 SPEC CPU 2006 analogs, plus
 * the example workload of Section 2.
 */

#ifndef RC_WORKLOADS_MIXES_HH
#define RC_WORKLOADS_MIXES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "workloads/app_profile.hh"

namespace rc
{

/** One multiprogrammed workload: an application name per core. */
struct Mix
{
    std::vector<std::string> apps;

    /** "gcc+mcf+..." label for reports. */
    std::string label() const;
};

/**
 * Random mixes, reproducible from @p seed (the paper uses 100 mixes of 8
 * applications; apps appear 16-35 times across the set).
 */
std::vector<Mix> makeMixes(std::uint32_t count, std::uint32_t apps_per_mix,
                           std::uint64_t seed);

/** The Section 2 example workload:
 *  gcc, mcf, povray, leslie3d, h264ref, lbm, namd, gcc. */
Mix exampleMix();

/**
 * Instantiate one stream per core for @p mix.
 * @param seed base seed; each core derives its own.
 * @param scale capacity divisor (must match the SystemConfig).
 */
std::vector<std::unique_ptr<RefStream>>
buildMixStreams(const Mix &mix, std::uint64_t seed, std::uint32_t scale);

} // namespace rc

#endif // RC_WORKLOADS_MIXES_HH
