#include "workloads/mixes.hh"

#include "common/log.hh"
#include "workloads/generator.hh"

namespace rc
{

std::string
Mix::label() const
{
    std::string out;
    for (const auto &a : apps) {
        if (!out.empty())
            out += '+';
        out += a;
    }
    return out;
}

std::vector<Mix>
makeMixes(std::uint32_t count, std::uint32_t apps_per_mix,
          std::uint64_t seed)
{
    const auto &profiles = specProfiles();
    Rng rng(SplitMix64(seed).next());
    std::vector<Mix> mixes;
    mixes.reserve(count);
    for (std::uint32_t m = 0; m < count; ++m) {
        Mix mix;
        mix.apps.reserve(apps_per_mix);
        for (std::uint32_t a = 0; a < apps_per_mix; ++a) {
            const std::size_t idx =
                static_cast<std::size_t>(rng.below(profiles.size()));
            mix.apps.push_back(profiles[idx].name);
        }
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

Mix
exampleMix()
{
    // The Section 2 footnote's example workload.
    return Mix{{"gcc", "mcf", "povray", "leslie3d", "h264ref", "lbm",
                "namd", "gcc"}};
}

std::vector<std::unique_ptr<RefStream>>
buildMixStreams(const Mix &mix, std::uint64_t seed, std::uint32_t scale)
{
    std::vector<std::unique_ptr<RefStream>> streams;
    streams.reserve(mix.apps.size());
    for (CoreId core = 0; core < mix.apps.size(); ++core) {
        const AppProfile *app = findProfile(mix.apps[core]);
        if (!app)
            fatal("unknown application '%s'", mix.apps[core].c_str());
        streams.push_back(std::make_unique<SyntheticStream>(
            *app, core, seed, scale,
            static_cast<std::uint32_t>(mix.apps.size())));
    }
    return streams;
}

} // namespace rc
