/**
 * @file
 * Synthetic application profiles.
 *
 * The paper drives its simulations with SPEC CPU 2006 checkpoints; this
 * repository substitutes parameterized synthetic analogs (see DESIGN.md).
 * Each analog is a mixture of access-pattern components calibrated so the
 * baseline system reproduces the qualitative per-application L1/L2/LLC
 * MPKI pattern of Table 5, and so the SLLC-level reference stream shows
 * reuse locality: a skewed (Zipf) hot set that concentrates hits plus
 * streaming traffic whose lines die without reuse.
 */

#ifndef RC_WORKLOADS_APP_PROFILE_HH
#define RC_WORKLOADS_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rc
{

/** Memory access patterns a component can generate. */
enum class AccessPattern : std::uint8_t {
    Loop,    //!< cyclic sequential walk (deterministic reuse distance)
    Uniform, //!< uniform random lines in the region
    Zipf,    //!< Zipf-skewed random lines (hot subset gets most traffic)
    Stream,  //!< monotonic sweep over a huge region (no short-term reuse)
    Chase,   //!< random jump followed by a short sequential burst
};

/** Human-readable pattern name. */
const char *toString(AccessPattern p);

/** One mixture component of an application's data stream. */
struct Component
{
    AccessPattern pattern = AccessPattern::Loop;
    double weight = 0.0;          //!< fraction of data references
    std::uint64_t regionBytes = 0; //!< working-set size, PAPER scale
    double zipfS = 0.9;           //!< Zipf exponent (Zipf pattern only)
    std::uint32_t burstLines = 4; //!< mean burst length (Chase only)
    bool shared = false;          //!< region shared across cores
    std::uint32_t sharedId = 0;   //!< shared-region identifier
};

/** A complete synthetic application. */
struct AppProfile
{
    std::string name;
    double memRatio = 0.35;   //!< data references per instruction
    double writeRatio = 0.25; //!< fraction of data references that write
    std::uint64_t codeBytes = 16 * 1024; //!< instruction working set
    std::vector<Component> components;   //!< weights must sum to <= 1;
                                         //!< the remainder becomes an
                                         //!< L1-resident hot loop

    /**
     * Phase length in data references (PAPER scale; divided by the
     * capacity scale like the region sizes).  At each phase boundary the
     * hot working set relocates and the Zipf popularity ranking
     * reshuffles, modeling the program phase behaviour visible in the
     * paper's Figure 1a.  Without phases, private-resident hot lines
     * would be pinned forever and every inclusion recall would hit an
     * immediately-needed line, wildly exaggerating the recall cost of
     * the LRU baseline.
     */
    std::uint64_t phaseRefs = 2'000'000;
};

/** Flavour of the always-missing traffic of an analog. */
enum class MissStyle : std::uint8_t {
    Stream, //!< sequential sweeps (fp/streaming codes)
    Chase,  //!< pointer chasing (irregular integer codes)
};

/**
 * Build a SPEC analog from its Table 5 MPKI triple.
 *
 * @param name application name.
 * @param l1_mpki baseline L1 (I+D) misses per kilo-instruction.
 * @param l2_mpki baseline L2 MPKI.
 * @param llc_mpki baseline SLLC MPKI.
 * @param style whether the miss floor streams or chases.
 * @param llc_region_bytes size of the SLLC-level Zipf hot region.
 * @param zipf_s skew of that region (higher = more concentrated reuse).
 * @param code_bytes instruction footprint.
 */
AppProfile makeSpecAnalog(const std::string &name, double l1_mpki,
                          double l2_mpki, double llc_mpki, MissStyle style,
                          std::uint64_t llc_region_bytes = 1536 * 1024,
                          double zipf_s = 0.9,
                          std::uint64_t code_bytes = 16 * 1024);

/** The 29 SPEC CPU 2006 analogs (Table 5 order). */
const std::vector<AppProfile> &specProfiles();

/** Look an analog up by name; nullptr when unknown. */
const AppProfile *findProfile(const std::string &name);

} // namespace rc

#endif // RC_WORKLOADS_APP_PROFILE_HH
