#include "workloads/app_profile.hh"

#include <cstdlib>

#include "common/log.hh"

namespace rc
{

const char *
toString(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Loop: return "Loop";
      case AccessPattern::Uniform: return "Uniform";
      case AccessPattern::Zipf: return "Zipf";
      case AccessPattern::Stream: return "Stream";
      case AccessPattern::Chase: return "Chase";
    }
    return "?";
}

AppProfile
makeSpecAnalog(const std::string &name, double l1_mpki, double l2_mpki,
               double llc_mpki, MissStyle style,
               std::uint64_t llc_region_bytes, double zipf_s,
               std::uint64_t code_bytes)
{
    RC_ASSERT(l1_mpki >= l2_mpki && l2_mpki >= llc_mpki,
              "MPKI must be monotonically non-increasing down the "
              "hierarchy (%s)", name.c_str());

    AppProfile app;
    app.name = name;
    app.codeBytes = code_bytes;

    // References per kilo-instruction; all components are line-granular,
    // so a component consuming `rate` MPKI of misses at its deepest
    // hitting level needs weight = rate / refs_per_ki.
    const double refs_per_ki = app.memRatio * 1000.0;

    // Miss floor: traffic that misses every level (the SLLC's dead lines).
    if (llc_mpki > 0.0) {
        Component miss;
        miss.pattern = style == MissStyle::Stream ? AccessPattern::Stream
                                                  : AccessPattern::Chase;
        miss.weight = llc_mpki / refs_per_ki;
        miss.regionBytes = 512ull * 1024 * 1024; // far beyond any cache
        miss.burstLines = 2;
        app.components.push_back(miss);
    }

    // SLLC-level reuse set: misses the private levels, hits the SLLC.
    // Zipf skew concentrates the hits in a small hot subset, which is
    // exactly the reuse locality the paper measures (Section 2).
    const double llc_hit_rate = l2_mpki - llc_mpki;
    if (llc_hit_rate > 0.0) {
        Component reuse;
        reuse.pattern = AccessPattern::Zipf;
        reuse.weight = llc_hit_rate / refs_per_ki;
        reuse.regionBytes = llc_region_bytes;
        reuse.zipfS = zipf_s;
        // Temporary calibration hooks (see DESIGN.md): sweep the reuse
        // region size and skew without recompiling.
        if (const char *m = std::getenv("RC_ZR_MULT"))
            reuse.regionBytes = static_cast<std::uint64_t>(
                reuse.regionBytes * std::atof(m));
        if (const char *a = std::getenv("RC_ZS_ADD"))
            reuse.zipfS += std::atof(a);
        app.components.push_back(reuse);
    }

    // L2-level set: misses the L1, hits the L2.
    const double l2_hit_rate = l1_mpki - l2_mpki;
    if (l2_hit_rate > 0.0) {
        Component l2set;
        l2set.pattern = AccessPattern::Loop;
        l2set.weight = l2_hit_rate / refs_per_ki;
        l2set.regionBytes = 96 * 1024; // between L1 (32 KB) and L2 (256 KB)
        app.components.push_back(l2set);
    }

    double total = 0.0;
    for (const auto &c : app.components)
        total += c.weight;
    RC_ASSERT(total <= 1.0, "MPKI targets of %s exceed the reference "
              "budget (weight sum %.3f)", name.c_str(), total);
    return app;
}

const std::vector<AppProfile> &
specProfiles()
{
    // Table 5 of the paper, in its own order.  Styles and hot-region
    // parameters are chosen per application class: streaming fp codes
    // sweep, irregular integer codes chase; applications whose LLC
    // filters many L2 misses get larger / more skewed hot regions.
    static const std::vector<AppProfile> profiles = {
        makeSpecAnalog("perlbench", 3.7, 0.8, 0.6, MissStyle::Chase,
                       1024 * 1024, 1.0, 96 * 1024),
        makeSpecAnalog("bzip2", 8.2, 4.3, 2.1, MissStyle::Chase,
                       2048 * 1024, 0.9, 24 * 1024),
        makeSpecAnalog("gcc", 21.8, 7.1, 6.2, MissStyle::Chase,
                       1536 * 1024, 0.9, 128 * 1024),
        makeSpecAnalog("bwaves", 20.3, 19.6, 19.6, MissStyle::Stream,
                       1024 * 1024, 0.8, 12 * 1024),
        makeSpecAnalog("gamess", 75.3, 46.2, 28.6, MissStyle::Stream,
                       3072 * 1024, 1.0, 48 * 1024),
        makeSpecAnalog("mcf", 22.9, 22.2, 18.1, MissStyle::Chase,
                       2048 * 1024, 0.8, 16 * 1024),
        makeSpecAnalog("milc", 21.6, 21.6, 21.5, MissStyle::Stream,
                       1024 * 1024, 0.8, 16 * 1024),
        makeSpecAnalog("zeusmp", 12.3, 6.4, 6.3, MissStyle::Stream,
                       1024 * 1024, 0.8, 24 * 1024),
        makeSpecAnalog("gromacs", 8.71, 5.91, 5.91, MissStyle::Stream,
                       1024 * 1024, 0.8, 24 * 1024),
        makeSpecAnalog("cactusADM", 13.9, 1.4, 0.7, MissStyle::Stream,
                       1280 * 1024, 1.0, 24 * 1024),
        makeSpecAnalog("leslie3d", 29.5, 18.1, 17.7, MissStyle::Stream,
                       1024 * 1024, 0.8, 16 * 1024),
        makeSpecAnalog("namd", 1.4, 0.2, 0.1, MissStyle::Chase,
                       768 * 1024, 1.0, 16 * 1024),
        makeSpecAnalog("gobmk", 9.5, 0.5, 0.4, MissStyle::Chase,
                       768 * 1024, 1.0, 96 * 1024),
        makeSpecAnalog("dealII", 2.3, 0.3, 0.3, MissStyle::Chase,
                       768 * 1024, 0.9, 48 * 1024),
        makeSpecAnalog("soplex", 6.7, 5.8, 4.8, MissStyle::Chase,
                       1536 * 1024, 0.9, 24 * 1024),
        makeSpecAnalog("povray", 11.0, 0.3, 0.3, MissStyle::Chase,
                       768 * 1024, 1.0, 48 * 1024),
        makeSpecAnalog("calculix", 13.8, 3.7, 1.5, MissStyle::Stream,
                       1536 * 1024, 1.0, 24 * 1024),
        makeSpecAnalog("hmmer", 2.9, 2.2, 1.7, MissStyle::Chase,
                       1024 * 1024, 0.9, 16 * 1024),
        makeSpecAnalog("sjeng", 4.2, 0.5, 0.5, MissStyle::Chase,
                       768 * 1024, 0.9, 48 * 1024),
        makeSpecAnalog("GemsFDTD", 25.8, 25.7, 21.6, MissStyle::Stream,
                       2048 * 1024, 0.8, 16 * 1024),
        makeSpecAnalog("libquantum", 36.6, 36.6, 36.6, MissStyle::Stream,
                       1024 * 1024, 0.8, 8 * 1024),
        makeSpecAnalog("h264ref", 3.5, 0.7, 0.6, MissStyle::Chase,
                       768 * 1024, 1.0, 96 * 1024),
        makeSpecAnalog("tonto", 4.88, 0.86, 0.52, MissStyle::Stream,
                       1024 * 1024, 1.0, 48 * 1024),
        makeSpecAnalog("lbm", 68.1, 39.2, 39.2, MissStyle::Stream,
                       1024 * 1024, 0.8, 8 * 1024),
        makeSpecAnalog("omnetpp", 7.3, 4.4, 1.2, MissStyle::Chase,
                       2048 * 1024, 1.0, 64 * 1024),
        makeSpecAnalog("astar", 6.9, 0.9, 0.7, MissStyle::Chase,
                       1024 * 1024, 1.0, 24 * 1024),
        makeSpecAnalog("wrf", 4.1, 1.6, 0.5, MissStyle::Stream,
                       1280 * 1024, 1.0, 48 * 1024),
        makeSpecAnalog("sphinx3", 13.8, 8.0, 6.3, MissStyle::Stream,
                       1536 * 1024, 0.9, 24 * 1024),
        makeSpecAnalog("xalancbmk", 8.2, 7.0, 6.4, MissStyle::Chase,
                       1024 * 1024, 0.9, 96 * 1024),
    };
    return profiles;
}

const AppProfile *
findProfile(const std::string &name)
{
    for (const auto &p : specProfiles()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

} // namespace rc
