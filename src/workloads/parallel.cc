#include "workloads/parallel.hh"

#include "common/log.hh"
#include "workloads/generator.hh"

namespace rc
{

namespace
{

Component
comp(AccessPattern pattern, double weight, std::uint64_t region_bytes,
     double zipf_s = 0.9, bool shared = false, std::uint32_t shared_id = 0)
{
    Component c;
    c.pattern = pattern;
    c.weight = weight;
    c.regionBytes = region_bytes;
    c.zipfS = zipf_s;
    c.shared = shared;
    c.sharedId = shared_id;
    return c;
}

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

std::vector<AppProfile>
buildParallelProfiles()
{
    std::vector<AppProfile> apps;

    // blackscholes: embarrassingly parallel; mostly private streaming
    // over option data with a small shared read-mostly parameter table.
    {
        AppProfile a;
        a.name = "blackscholes";
        a.phaseRefs = 0; // steady-state iterative program
        a.writeRatio = 0.15;
        a.codeBytes = 16 * KiB;
        a.components = {
            comp(AccessPattern::Stream, 0.0129, 256 * MiB),
            comp(AccessPattern::Zipf, 0.015, 512 * KiB, 1.0, true, 0),
        };
        apps.push_back(a);
    }

    // canneal: repeated passes over a shared netlist slightly larger
    // than the SLLC - the classic LRU pathology (every pass evicts the
    // next line needed, zero hits), while NRR tags and Clock data let a
    // random subset survive whole passes, get their reuse detected, and
    // stay pinned.  This is why the paper sees canneal gain >10% even
    // with RC-8/0.5.  A small skewed set of hot elements rides on top.
    {
        AppProfile a;
        a.name = "canneal";
        a.writeRatio = 0.2;
        a.codeBytes = 24 * KiB;
        a.phaseRefs = 0; // steady-state iterative program
        a.components = {
            // Per-core slice of the netlist, re-swept every pass
            // (domain decomposition): aggregate 12 MB > SLLC.
            comp(AccessPattern::Loop, 0.010, 1536 * KiB),
            comp(AccessPattern::Zipf, 0.015, 512 * KiB, 1.2, true, 2),
            comp(AccessPattern::Chase, 0.002, 128 * MiB, 0.9, true, 7),
        };
        apps.push_back(a);
    }

    // ferret: pipeline stages with large per-thread similarity tables
    // whose reuse set exceeds a small data array (the one application
    // that loses with the reuse cache, up to -11% at RC-8/0.5).
    {
        AppProfile a;
        a.name = "ferret";
        a.phaseRefs = 0; // steady-state iterative program
        a.writeRatio = 0.1;
        a.codeBytes = 48 * KiB;
        a.components = {
            comp(AccessPattern::Uniform, 0.045, 3 * MiB, 0.4),
            comp(AccessPattern::Stream, 0.0037, 128 * MiB),
            comp(AccessPattern::Zipf, 0.008, 512 * KiB, 0.9, true, 3),
        };
        apps.push_back(a);
    }

    // fluidanimate: grid partitions, mostly private with shared cell
    // boundaries written every step.
    {
        AppProfile a;
        a.name = "fluidanimate";
        a.phaseRefs = 0; // steady-state iterative program
        a.writeRatio = 0.3;
        a.codeBytes = 24 * KiB;
        a.components = {
            comp(AccessPattern::Stream, 0.0049, 96 * MiB),
            comp(AccessPattern::Zipf, 0.012, 768 * KiB, 1.0, true, 4),
        };
        apps.push_back(a);
    }

    // ocean: every timestep re-sweeps shared grids (1026x1026 doubles,
    // several of them) whose aggregate footprint slightly exceeds the
    // SLLC - cyclic reuse that defeats LRU outright but that
    // reuse-based retention partially captures, plus hot shared
    // boundary/reduction data.
    {
        AppProfile a;
        a.name = "ocean";
        a.writeRatio = 0.3;
        a.codeBytes = 16 * KiB;
        a.phaseRefs = 0; // steady-state iterative program
        a.components = {
            // Per-core grid slice re-swept every timestep: 16 MB
            // aggregate, cyclic - LRU-pathological.
            comp(AccessPattern::Loop, 0.034, 2 * MiB),
            comp(AccessPattern::Zipf, 0.012, 512 * KiB, 1.2, true, 6),
        };
        apps.push_back(a);
    }

    return apps;
}

} // namespace

const std::vector<AppProfile> &
parallelProfiles()
{
    static const std::vector<AppProfile> profiles = buildParallelProfiles();
    return profiles;
}

const AppProfile *
findParallelProfile(const std::string &name)
{
    for (const auto &p : parallelProfiles()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

std::vector<std::unique_ptr<RefStream>>
buildParallelStreams(const AppProfile &app, std::uint32_t num_cores,
                     std::uint64_t seed, std::uint32_t scale)
{
    std::vector<std::unique_ptr<RefStream>> streams;
    streams.reserve(num_cores);
    for (CoreId core = 0; core < num_cores; ++core) {
        streams.push_back(std::make_unique<SyntheticStream>(
            app, core, seed, scale, num_cores));
    }
    return streams;
}

} // namespace rc
