/**
 * @file
 * Replacement-policy interface and factory.
 *
 * The paper exercises LRU (baseline), NRU, NRR (tag array), Clock (fully
 * associative data array), Random, and the RRIP family including
 * thread-aware DRRIP (comparison in Section 5.5).  All policies implement
 * one interface so every cache model in the repository can be configured
 * with any of them.
 */

#ifndef RC_CACHE_REPLACEMENT_HH
#define RC_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace rc
{

class Serializer;
class Deserializer;

/** Context accompanying fill/hit notifications. */
struct ReplAccess
{
    CoreId core = 0;    //!< requesting core (thread-aware policies)
    bool isMiss = false; //!< the access that caused this fill was a miss
    bool insertLru = false; //!< demote the fill to the LRU position
                            //!< (honoured by LRU; NCID selective mode)
    Addr pc = 0;         //!< requesting instruction (PC-indexed arena
                         //!< policies; 0 = unknown, e.g. prefetches)
    Addr lineAddr = 0;   //!< the accessed line (signature hashing; 0 =
                         //!< unknown, e.g. the reuse data array)
};

/** Context for victim selection. */
struct VictimQuery
{
    CoreId core = 0;          //!< requesting core
    std::uint64_t avoidMask = 0; //!< ways the policy should prefer NOT to
                                 //!< evict (e.g. present in private caches;
                                 //!< honoured by NRR, ignored by others)
    Addr pc = 0;              //!< instruction causing the fill (0 = unknown)
    Addr lineAddr = 0;        //!< incoming line (0 = unknown)
};

/** Identifiers for every implemented policy. */
enum class ReplKind : std::uint8_t {
    LRU,
    NRU,
    NRR,
    Random,
    Clock,
    SRRIP,
    BRRIP,
    DRRIP,   //!< thread-aware DRRIP (set dueling per core)
    // ChampSim CRC2-family ports (src/arena/).  Appended so the values
    // of the six built-ins above stay stable in snapshots and in the
    // service layer's canonical request encoding.
    Ship,     //!< SHiP: PC-signature outcome history, SRRIP backbone
    ShipMem,  //!< SHiP-Mem: memory-region signatures instead of PCs
    Redre,    //!< REDRE: PC reuse-table priority insertion (Snippet 1)
    DeadBlock, //!< PC-trained dead-block prediction over LRU
    RdAware,  //!< reuse-distance-aware insertion depth over LRU
    Lip,      //!< LRU insertion policy (insert at LRU, promote on hit)
    Bip,      //!< bimodal insertion (LIP with 1/32 MRU fills)
    Dip,      //!< dynamic insertion: LRU vs BIP set dueling
    DuelShip, //!< SRRIP vs SHiP insertion set dueling
    Stream,   //!< PC-stride streaming detector, dead-on-arrival fills
    Plru,     //!< tree pseudo-LRU
    Mru,      //!< evict-MRU (anti-thrash baseline)
};

/** @return short name, e.g. "DRRIP". */
const char *toString(ReplKind kind);

/**
 * Per-array replacement state.
 *
 * The owning cache is responsible for filling invalid ways first; victim()
 * is only consulted when the target set is full.
 */
class ReplacementPolicy
{
  public:
    /**
     * @param num_sets sets in the array.
     * @param num_ways associativity.
     */
    ReplacementPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
        : sets(num_sets), ways(num_ways)
    {}

    virtual ~ReplacementPolicy() = default;

    ReplacementPolicy(const ReplacementPolicy &) = delete;
    ReplacementPolicy &operator=(const ReplacementPolicy &) = delete;

    /** A line was installed in (set, way). */
    virtual void onFill(std::uint64_t set, std::uint32_t way,
                        const ReplAccess &ctx) = 0;

    /** The line in (set, way) was hit. */
    virtual void onHit(std::uint64_t set, std::uint32_t way,
                       const ReplAccess &ctx) = 0;

    /** The line in (set, way) was invalidated (its state is now garbage). */
    virtual void onInvalidate(std::uint64_t set, std::uint32_t way);

    /**
     * Choose a victim way in a full @p set.
     * @param q requester and the protect-preference mask.
     * @return way index in [0, numWays).
     */
    virtual std::uint32_t victim(std::uint64_t set, const VictimQuery &q) = 0;

    std::uint64_t numSets() const { return sets; }  //!< sets in the array
    std::uint32_t numWays() const { return ways; }  //!< associativity

    /**
     * Verify layer: is every piece of replacement metadata within its
     * legal range (NRU/NRR bits 0/1, Clock hand < ways, RRPV <= max)?
     * Policies without range-checkable metadata report sane.
     * @param why filled with a diagnostic on failure when non-null.
     */
    virtual bool
    metadataSane(std::string *why = nullptr) const
    {
        (void)why;
        return true;
    }

    /**
     * Fault-injection hook: force one piece of metadata for
     * (set, way) out of its legal range so metadataSane() must flag it.
     * @return false when this policy has nothing corruptible.
     */
    virtual bool
    corruptMetadata(std::uint64_t set, std::uint32_t way)
    {
        (void)set;
        (void)way;
        return false;
    }

    /** Checkpoint this policy's mutable metadata (stamps, bits, hands,
     *  RNG state...).  Policies without state write nothing. */
    virtual void save(Serializer &s) const;

    /** Restore save()'d metadata; the owning cache frames the call in a
     *  section, so size drift surfaces as SimError(Snapshot). */
    virtual void restore(Deserializer &d);

  protected:
    std::uint64_t sets;
    std::uint32_t ways;
};

/**
 * Instantiate a policy.
 * @param kind which policy.
 * @param num_sets sets in the array.
 * @param num_ways associativity.
 * @param num_cores cores (thread-aware dueling); 1 is fine for private.
 * @param seed RNG seed for randomized policies.
 */
std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, std::uint64_t num_sets, std::uint32_t num_ways,
                std::uint32_t num_cores = 1, std::uint64_t seed = 1);

} // namespace rc

#endif // RC_CACHE_REPLACEMENT_HH
