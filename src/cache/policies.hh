/**
 * @file
 * Concrete replacement-policy classes.
 *
 * Exposed in a header (rather than hidden behind the factory) so unit
 * tests can exercise policy internals such as DRRIP's per-thread PSEL.
 *
 * The classes are `final` and their per-access methods (onFill / onHit /
 * onInvalidate / victim) are defined inline below: the hot paths reach
 * them through PolicyRef (cache/policy_dispatch.hh), whose enum-tag
 * switch statically resolves the sealed type, so the compiler can
 * devirtualize and inline the per-access work.  The virtual interface
 * remains for construction, serialization and the verify layer.
 */

#ifndef RC_CACHE_POLICIES_HH
#define RC_CACHE_POLICIES_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"
#include "cache/set_dueling.hh"
#include "common/rng.hh"

namespace rc
{

/** Exact LRU via per-line timestamps. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint64_t> stamp;
    std::uint64_t tick = 0;
};

/**
 * Not Recently Used: one bit per line.  Setting the last zero bit clears
 * every other bit in the set (classic NRU aging).  Victim is the first
 * way whose bit is clear.
 */
class NruPolicy final : public ReplacementPolicy
{
  public:
    NruPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: the NRU ("recently used") bit of a line. */
    bool usedBit(std::uint64_t set, std::uint32_t way) const;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    void markUsed(std::uint64_t set, std::uint32_t way);

    std::vector<std::uint8_t> used;
};

/**
 * Not Recently Reused (paper Section 3.2): one bit per line, set on fill
 * (not yet reused) and cleared on hit (reused).  Victims are chosen at
 * random among lines with the bit set that are not present in the private
 * caches (the VictimQuery avoid mask); falls back to any non-present way,
 * then to a fully random pick.
 */
class NrrPolicy final : public ReplacementPolicy
{
  public:
    NrrPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
              std::uint64_t seed);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: the NRR ("not recently reused") bit of a line. */
    bool nrrBit(std::uint64_t set, std::uint32_t way) const;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint8_t> nrr;
    Rng rng;
};

/** Uniform random victim selection. */
class RandomPolicy final : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                 std::uint64_t seed);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    Rng rng;
};

/**
 * Clock (second chance), the paper's pick for the fully-associative data
 * array (cost: one bit per line plus one hand per set).
 */
class ClockPolicy final : public ReplacementPolicy
{
  public:
    ClockPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: current hand position of a set. */
    std::uint32_t hand(std::uint64_t set) const;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint8_t> ref;
    std::vector<std::uint32_t> hands;
};

/**
 * RRIP family (Jaleel et al., ISCA 2010) with 2-bit re-reference
 * prediction values.
 *
 * - SRRIP-HP: insert at RRPV = max-1, promote to 0 on hit.
 * - BRRIP: insert at max, with low probability at max-1.
 * - DRRIP (thread-aware): per-core set dueling between the two.
 */
class RripPolicy final : public ReplacementPolicy
{
  public:
    /** Insertion flavour. */
    enum class Mode : std::uint8_t { SRRIP, BRRIP, DRRIP };

    RripPolicy(std::uint64_t num_sets, std::uint32_t num_ways, Mode mode,
               std::uint32_t num_cores, std::uint64_t seed,
               std::uint32_t rrpv_bits = 2);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    void onInvalidate(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: a line's current RRPV. */
    std::uint32_t rrpv(std::uint64_t set, std::uint32_t way) const;

    /** Test hook: the dueling monitor (DRRIP mode only). */
    const SetDueling &dueling() const { return duel; }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    bool useBrrip(std::uint64_t set, CoreId core);

    Mode mode;
    std::uint32_t maxRrpv;
    std::vector<std::uint8_t> rrpvs;
    SetDueling duel;
    Rng rng;
    static constexpr std::uint32_t brripEpsilonInv = 32;
};

// ---------------------------------------------------------------------
// Inline per-access methods.  These run once per simulated cache access;
// keeping the definitions here lets PolicyRef's sealed dispatch inline
// them into the cache models.
// ---------------------------------------------------------------------

inline void
LruPolicy::onFill(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    // insertLru places the line at the bottom of the recency stack: it
    // will be the next victim unless it is referenced first.
    stamp[set * ways + way] = ctx.insertLru ? 0 : ++tick;
}

inline void
LruPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    stamp[set * ways + way] = ++tick;
}

inline std::uint32_t
LruPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::uint32_t best = 0;
    std::uint64_t best_stamp = stamp[base];
    for (std::uint32_t w = 1; w < ways; ++w) {
        if (stamp[base + w] < best_stamp) {
            best_stamp = stamp[base + w];
            best = w;
        }
    }
    return best;
}

inline void
NruPolicy::markUsed(std::uint64_t set, std::uint32_t way)
{
    const std::uint64_t base = set * ways;
    used[base + way] = 1;
    // Classic NRU aging: once every bit in the set would be 1, clear all
    // the others so a victim candidate always exists.
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!used[base + w])
            return;
    }
    for (std::uint32_t w = 0; w < ways; ++w)
        used[base + w] = w == way ? 1 : 0;
}

inline void
NruPolicy::onFill(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    markUsed(set, way);
}

inline void
NruPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    markUsed(set, way);
}

inline std::uint32_t
NruPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!used[base + w])
            return w;
    }
    // Unreachable if markUsed maintained its invariant, but stay safe for
    // sets that never saw a fill.
    return 0;
}

inline void
NrrPolicy::onFill(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    // Freshly loaded lines have not been reused yet.
    nrr[set * ways + way] = 1;
}

inline void
NrrPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    // A hit at this level is a reuse.
    nrr[set * ways + way] = 0;
}

inline std::uint32_t
NrrPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    const std::uint64_t base = set * ways;

    auto pick_random = [this](std::uint64_t mask) -> std::int32_t {
        const auto count = static_cast<std::uint32_t>(
            __builtin_popcountll(mask));
        if (count == 0)
            return -1;
        std::uint32_t skip = static_cast<std::uint32_t>(rng.below(count));
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (mask & (std::uint64_t{1} << w)) {
                if (skip == 0)
                    return static_cast<std::int32_t>(w);
                --skip;
            }
        }
        return -1;
    };

    auto nrr_mask = [this, base]() {
        std::uint64_t m = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (nrr[base + w])
                m |= std::uint64_t{1} << w;
        }
        return m;
    };

    const std::uint64_t all =
        ways >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << ways) - 1;
    const std::uint64_t not_present = all & ~q.avoidMask;

    std::uint64_t candidates = nrr_mask();
    if (candidates == 0) {
        // Every line was recently reused: age the whole set (NRU-style)
        // so the "not recently" distinction regains meaning.
        for (std::uint32_t w = 0; w < ways; ++w)
            nrr[base + w] = 1;
        candidates = all;
    }

    // Preference order: (1) not recently reused and absent from the
    // private caches, (2) any line absent from the private caches,
    // (3) fully random.  (2) protects inclusion victims over reuse bits.
    if (auto v = pick_random(candidates & not_present); v >= 0)
        return static_cast<std::uint32_t>(v);
    if (auto v = pick_random(not_present); v >= 0)
        return static_cast<std::uint32_t>(v);
    if (auto v = pick_random(candidates); v >= 0)
        return static_cast<std::uint32_t>(v);
    return static_cast<std::uint32_t>(rng.below(ways));
}

inline void
RandomPolicy::onFill(std::uint64_t set, std::uint32_t way,
                     const ReplAccess &ctx)
{
    (void)set;
    (void)way;
    (void)ctx;
}

inline void
RandomPolicy::onHit(std::uint64_t set, std::uint32_t way,
                    const ReplAccess &ctx)
{
    (void)set;
    (void)way;
    (void)ctx;
}

inline std::uint32_t
RandomPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)set;
    (void)q;
    return static_cast<std::uint32_t>(rng.below(ways));
}

inline void
ClockPolicy::onFill(std::uint64_t set, std::uint32_t way,
                    const ReplAccess &ctx)
{
    (void)ctx;
    ref[set * ways + way] = 1;
}

inline void
ClockPolicy::onHit(std::uint64_t set, std::uint32_t way,
                   const ReplAccess &ctx)
{
    (void)ctx;
    ref[set * ways + way] = 1;
}

inline std::uint32_t
ClockPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::uint32_t &hand = hands[set];
    // Second chance: sweep forward clearing reference bits; the first
    // line found with a clear bit is the victim.  Bounded by 2*ways.
    for (std::uint32_t step = 0; step < 2 * ways; ++step) {
        const std::uint32_t w = hand;
        hand = (hand + 1) % ways;
        if (!ref[base + w])
            return w;
        ref[base + w] = 0;
    }
    return hand;
}

inline bool
RripPolicy::useBrrip(std::uint64_t set, CoreId core)
{
    switch (mode) {
      case Mode::SRRIP:
        return false;
      case Mode::BRRIP:
        return true;
      case Mode::DRRIP:
        return duel.chooseB(set, core);
    }
    return false;
}

inline void
RripPolicy::onFill(std::uint64_t set, std::uint32_t way,
                   const ReplAccess &ctx)
{
    if (mode == Mode::DRRIP && ctx.isMiss)
        duel.onMiss(set, ctx.core);

    std::uint8_t insert;
    if (useBrrip(set, ctx.core)) {
        // BRRIP: distant re-reference, occasionally long.
        insert = rng.below(brripEpsilonInv) == 0
            ? static_cast<std::uint8_t>(maxRrpv - 1)
            : static_cast<std::uint8_t>(maxRrpv);
    } else {
        // SRRIP-HP: long re-reference interval.
        insert = static_cast<std::uint8_t>(maxRrpv - 1);
    }
    rrpvs[set * ways + way] = insert;
}

inline void
RripPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    // Hit promotion: near-immediate re-reference expected.
    rrpvs[set * ways + way] = 0;
}

inline void
RripPolicy::onInvalidate(std::uint64_t set, std::uint32_t way)
{
    rrpvs[set * ways + way] = static_cast<std::uint8_t>(maxRrpv);
}

inline std::uint32_t
RripPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    for (;;) {
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (rrpvs[base + w] >= maxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < ways; ++w)
            ++rrpvs[base + w];
    }
}

} // namespace rc

#endif // RC_CACHE_POLICIES_HH
