/**
 * @file
 * Concrete replacement-policy classes.
 *
 * Exposed in a header (rather than hidden behind the factory) so unit
 * tests can exercise policy internals such as DRRIP's per-thread PSEL.
 */

#ifndef RC_CACHE_POLICIES_HH
#define RC_CACHE_POLICIES_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"
#include "cache/set_dueling.hh"
#include "common/rng.hh"

namespace rc
{

/** Exact LRU via per-line timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint64_t> stamp;
    std::uint64_t tick = 0;
};

/**
 * Not Recently Used: one bit per line.  Setting the last zero bit clears
 * every other bit in the set (classic NRU aging).  Victim is the first
 * way whose bit is clear.
 */
class NruPolicy : public ReplacementPolicy
{
  public:
    NruPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: the NRU ("recently used") bit of a line. */
    bool usedBit(std::uint64_t set, std::uint32_t way) const;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    void markUsed(std::uint64_t set, std::uint32_t way);

    std::vector<std::uint8_t> used;
};

/**
 * Not Recently Reused (paper Section 3.2): one bit per line, set on fill
 * (not yet reused) and cleared on hit (reused).  Victims are chosen at
 * random among lines with the bit set that are not present in the private
 * caches (the VictimQuery avoid mask); falls back to any non-present way,
 * then to a fully random pick.
 */
class NrrPolicy : public ReplacementPolicy
{
  public:
    NrrPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
              std::uint64_t seed);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: the NRR ("not recently reused") bit of a line. */
    bool nrrBit(std::uint64_t set, std::uint32_t way) const;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint8_t> nrr;
    Rng rng;
};

/** Uniform random victim selection. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                 std::uint64_t seed);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    Rng rng;
};

/**
 * Clock (second chance), the paper's pick for the fully-associative data
 * array (cost: one bit per line plus one hand per set).
 */
class ClockPolicy : public ReplacementPolicy
{
  public:
    ClockPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: current hand position of a set. */
    std::uint32_t hand(std::uint64_t set) const;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint8_t> ref;
    std::vector<std::uint32_t> hands;
};

/**
 * RRIP family (Jaleel et al., ISCA 2010) with 2-bit re-reference
 * prediction values.
 *
 * - SRRIP-HP: insert at RRPV = max-1, promote to 0 on hit.
 * - BRRIP: insert at max, with low probability at max-1.
 * - DRRIP (thread-aware): per-core set dueling between the two.
 */
class RripPolicy : public ReplacementPolicy
{
  public:
    /** Insertion flavour. */
    enum class Mode : std::uint8_t { SRRIP, BRRIP, DRRIP };

    RripPolicy(std::uint64_t num_sets, std::uint32_t num_ways, Mode mode,
               std::uint32_t num_cores, std::uint64_t seed,
               std::uint32_t rrpv_bits = 2);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    void onInvalidate(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: a line's current RRPV. */
    std::uint32_t rrpv(std::uint64_t set, std::uint32_t way) const;

    /** Test hook: the dueling monitor (DRRIP mode only). */
    const SetDueling &dueling() const { return duel; }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    bool useBrrip(std::uint64_t set, CoreId core);

    Mode mode;
    std::uint32_t maxRrpv;
    std::vector<std::uint8_t> rrpvs;
    SetDueling duel;
    Rng rng;
    static constexpr std::uint32_t brripEpsilonInv = 32;
};

} // namespace rc

#endif // RC_CACHE_POLICIES_HH
