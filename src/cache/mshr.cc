#include "cache/mshr.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

MshrFile::MshrFile(std::uint32_t num_entries, const std::string &name)
    : entries(num_entries),
      statSet(name),
      allocations(statSet.add("allocations", "MSHR entries allocated")),
      merges(statSet.add("merges", "misses merged into an existing entry")),
      fullStalls(statSet.add("fullStalls", "requests rejected: file full")),
      peakOccupancy(statSet.add("peakOccupancy", "maximum live entries"))
{
    RC_ASSERT(num_entries > 0, "MSHR file needs at least one entry");
}

void
MshrFile::retire(Cycle now)
{
    if (live == 0)
        return;
    for (auto &e : entries) {
        if (e.valid && e.doneAt <= now) {
            e.valid = false;
            --live;
        }
    }
}

MshrFile::Outcome
MshrFile::request(Addr line_addr, Cycle now, Cycle done_at)
{
    retire(now);
    const Addr line = lineAlign(line_addr);

    Entry *free_entry = nullptr;
    for (auto &e : entries) {
        if (e.valid && e.line == line) {
            ++merges;
            return Outcome::Merged;
        }
        if (!e.valid && !free_entry)
            free_entry = &e;
    }
    if (!free_entry) {
        ++fullStalls;
        RC_TEVENT("mshr.full", TraceDomain::Sim, 0, now, 0, live);
        return Outcome::Full;
    }
    free_entry->valid = true;
    free_entry->line = line;
    free_entry->doneAt = done_at;
    ++live;
    ++allocations;
    peakOccupancy = std::max<Counter>(peakOccupancy, live);
    return Outcome::Allocated;
}

Cycle
MshrFile::trackedUntil(Addr line_addr) const
{
    const Addr line = lineAlign(line_addr);
    for (const auto &e : entries) {
        if (e.valid && e.line == line)
            return e.doneAt;
    }
    return neverCycle;
}

std::uint32_t
MshrFile::occupancy(Cycle now)
{
    retire(now);
    return live;
}

std::uint32_t
MshrFile::inFlightAt(Cycle now) const
{
    std::uint32_t n = 0;
    for (const auto &e : entries) {
        if (e.valid && e.doneAt > now)
            ++n;
    }
    return n;
}

std::uint32_t
MshrFile::leakedEntries() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries) {
        if (e.valid && e.doneAt == neverCycle)
            ++n;
    }
    return n;
}

Cycle
MshrFile::earliestRelease() const
{
    Cycle best = neverCycle;
    for (const auto &e : entries) {
        if (e.valid)
            best = std::min(best, e.doneAt);
    }
    return best;
}

void
MshrFile::reset()
{
    for (auto &e : entries)
        e = Entry{};
    live = 0;
    statSet.reset();
}

void
MshrFile::save(Serializer &s) const
{
    s.putU64(entries.size());
    for (const Entry &e : entries) {
        s.putU64(e.line);
        s.putU64(e.doneAt);
        s.putBool(e.valid);
    }
    s.putU32(live);
    statSet.save(s);
}

void
MshrFile::restore(Deserializer &d)
{
    const std::uint64_t n = d.getU64();
    if (n != entries.size())
        throwSimError(SimError::Kind::Snapshot,
                      "MSHR file holds %zu entries but the checkpoint "
                      "carries %llu",
                      entries.size(), (unsigned long long)n);
    for (Entry &e : entries) {
        e.line = d.getU64();
        e.doneAt = d.getU64();
        e.valid = d.getBool();
    }
    live = d.getU32();
    statSet.restore(d);
}

} // namespace rc
