#include "cache/set_dueling.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

SetDueling::SetDueling(std::uint64_t num_sets, std::uint32_t num_cores,
                       std::uint32_t psel_bits)
    : sets(num_sets),
      pselMax((1u << psel_bits) - 1),
      pselMid(1u << (psel_bits - 1)),
      psels(num_cores, 1u << (psel_bits - 1))
{
    RC_ASSERT(num_cores > 0, "need at least one core");
    RC_ASSERT(psel_bits >= 2 && psel_bits <= 16, "unreasonable PSEL width");
    // Leader mapping is region-based on set % modulus: value c in
    // [0, cores) is core c's A-leader, value 32+c (mod modulus) its
    // B-leader.  With fewer than 2*cores sets, dueling degenerates to
    // always-A followers, which is harmless for tiny test arrays.
    modulus = 64;
    while (modulus > sets && modulus > 1)
        modulus /= 2;
    if (modulus < 2 * num_cores)
        warn("set-dueling: %llu sets cannot host leaders for %u cores",
             static_cast<unsigned long long>(num_sets), num_cores);
}

SetDueling::Role
SetDueling::role(std::uint64_t set, CoreId core) const
{
    if (modulus < 2)
        return Role::Follower;
    const std::uint64_t slot = set % modulus;
    const std::uint64_t b_base = modulus / 2;
    if (slot == core && core < b_base)
        return Role::LeaderA;
    if (slot == b_base + core && core < b_base)
        return Role::LeaderB;
    return Role::Follower;
}

void
SetDueling::onMiss(std::uint64_t set, CoreId core)
{
    if (core >= psels.size())
        core = core % psels.size();
    switch (role(set, core)) {
      case Role::LeaderA:
        // Misses under policy A push toward policy B.
        if (psels[core] < pselMax)
            ++psels[core];
        break;
      case Role::LeaderB:
        if (psels[core] > 0)
            --psels[core];
        break;
      case Role::Follower:
        break;
    }
}

bool
SetDueling::chooseB(std::uint64_t set, CoreId core) const
{
    if (core >= psels.size())
        core = core % psels.size();
    switch (role(set, core)) {
      case Role::LeaderA:
        return false;
      case Role::LeaderB:
        return true;
      case Role::Follower:
        // Strictly above the midpoint: a neutral counter prefers A.
        return psels[core] > pselMid;
    }
    return false;
}

std::uint32_t
SetDueling::psel(CoreId core) const
{
    RC_ASSERT(core < psels.size(), "core %u out of range", core);
    return psels[core];
}

void
SetDueling::save(Serializer &s) const
{
    saveVec(s, psels);
}

void
SetDueling::restore(Deserializer &d)
{
    restoreVec(d, psels, "set-dueling PSEL counters");
}

} // namespace rc
