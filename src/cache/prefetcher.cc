#include "cache/prefetcher.hh"

#include "common/bitops.hh"
#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &cfg_,
                                   const std::string &name)
    : cfg(cfg_),
      statSet(name),
      misses(statSet.add("misses", "demand L2 misses observed")),
      triggers(statSet.add("triggers", "confident strides detected")),
      candidates(statSet.add("candidates", "prefetch candidates emitted"))
{
    std::uint32_t size = 1;
    while (size < cfg.tableEntries)
        size <<= 1;
    table.resize(size);
}

void
StridePrefetcher::observeMiss(Addr line_addr, std::vector<Addr> &out)
{
    ++misses;
    const auto line = static_cast<std::int64_t>(lineNumber(line_addr));
    const std::uint64_t region = line_addr >> cfg.regionShift;
    Entry &e = table[region & (table.size() - 1)];

    if (!e.valid || e.regionTag != region) {
        e.valid = true;
        e.regionTag = region;
        e.lastLine = line;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    const std::int64_t delta = line - e.lastLine;
    e.lastLine = line;
    if (delta == 0)
        return;
    if (delta == e.stride) {
        if (e.confidence < 255)
            ++e.confidence;
    } else {
        e.stride = delta;
        e.confidence = 0;
    }

    if (e.confidence >= cfg.minConfidence) {
        ++triggers;
        for (std::uint32_t k = 1; k <= cfg.degree; ++k) {
            const std::int64_t target =
                line + e.stride * static_cast<std::int64_t>(k);
            if (target <= 0)
                continue;
            const Addr addr = static_cast<Addr>(target) << lineShift;
            if (addr >= (Addr{1} << physAddrBits))
                continue;
            out.push_back(addr);
            ++candidates;
        }
    }
}

void
StridePrefetcher::save(Serializer &s) const
{
    s.putU64(table.size());
    for (const Entry &e : table) {
        s.putBool(e.valid);
        s.putU64(e.regionTag);
        s.putI64(e.lastLine);
        s.putI64(e.stride);
        s.putU32(e.confidence);
    }
    statSet.save(s);
}

void
StridePrefetcher::restore(Deserializer &d)
{
    const std::uint64_t n = d.getU64();
    if (n != table.size())
        throwSimError(SimError::Kind::Snapshot,
                      "prefetcher table holds %zu entries but the "
                      "checkpoint carries %llu",
                      table.size(), (unsigned long long)n);
    for (Entry &e : table) {
        e.valid = d.getBool();
        e.regionTag = d.getU64();
        e.lastLine = d.getI64();
        e.stride = d.getI64();
        e.confidence = d.getU32();
    }
    statSet.restore(d);
}

} // namespace rc
