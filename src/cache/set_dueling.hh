/**
 * @file
 * Thread-aware set-dueling monitor (Qureshi et al., ISCA 2007; the
 * thread-aware form follows Jaleel et al.'s TA-DRRIP).
 *
 * A few sets are dedicated leaders: in a core's A-leader sets that core's
 * fills always use policy A, in its B-leader sets policy B.  Misses a core
 * suffers in its own leader sets steer a per-core saturating PSEL counter;
 * everywhere else the core follows whichever policy its PSEL favours.
 *
 * The same monitor drives both TA-DRRIP (A = SRRIP, B = BRRIP) and the
 * NCID baseline's fill-mode selection (A = normal fill, B = selective).
 */

#ifndef RC_CACHE_SET_DUELING_HH
#define RC_CACHE_SET_DUELING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rc
{

class Serializer;
class Deserializer;

/** Per-core dueling state over one cache array. */
class SetDueling
{
  public:
    /** A set's role from one core's point of view. */
    enum class Role : std::uint8_t {
        Follower, //!< use the PSEL-selected policy
        LeaderA,  //!< always policy A for this core's fills
        LeaderB,  //!< always policy B for this core's fills
    };

    /**
     * @param num_sets sets in the monitored array.
     * @param num_cores independent PSEL counters.
     * @param psel_bits width of each saturating counter.
     */
    SetDueling(std::uint64_t num_sets, std::uint32_t num_cores,
               std::uint32_t psel_bits = 10);

    /** Role of @p set for fills issued by @p core. */
    Role role(std::uint64_t set, CoreId core) const;

    /**
     * Record a miss by @p core in @p set; adjusts the core's PSEL when the
     * set is one of that core's leader sets.
     */
    void onMiss(std::uint64_t set, CoreId core);

    /**
     * Policy decision for a fill by @p core into @p set: false = policy A,
     * true = policy B.  Leader sets force their policy; followers consult
     * the core's PSEL (high PSEL = many misses under A = choose B).
     */
    bool chooseB(std::uint64_t set, CoreId core) const;

    /** Test hook: current PSEL of a core. */
    std::uint32_t psel(CoreId core) const;

    /** Number of cores monitored. */
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(psels.size());
    }

    /** Checkpoint the per-core PSEL counters (everything else is
     *  construction-derived). */
    void save(Serializer &s) const;

    /** Restore save()'d PSELs; throws SimError(Snapshot) on count
     *  mismatch. */
    void restore(Deserializer &d);

  private:
    std::uint64_t sets;
    std::uint32_t modulus;
    std::uint32_t pselMax;
    std::uint32_t pselMid;
    std::vector<std::uint32_t> psels;
};

} // namespace rc

#endif // RC_CACHE_SET_DUELING_HH
