/**
 * @file
 * Set/way geometry of a cache array: index and tag extraction.
 */

#ifndef RC_CACHE_GEOMETRY_HH
#define RC_CACHE_GEOMETRY_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace rc
{

/**
 * Geometry of a set-associative array addressed by line address.
 *
 * The reuse cache indexes both its tag and data arrays with the least
 * significant line-address bits (paper Section 3.3), so one geometry type
 * serves every array in the repository.  A fully-associative array is a
 * geometry with a single set.
 */
class CacheGeometry
{
  public:
    CacheGeometry() = default;

    /**
     * @param num_lines total entries; must be a multiple of @p num_ways.
     * @param num_ways associativity (num_ways == num_lines for FA).
     */
    CacheGeometry(std::uint64_t num_lines, std::uint32_t num_ways)
        : lines(num_lines), ways(num_ways),
          sets(num_ways ? num_lines / num_ways : 0)
    {
        RC_ASSERT(num_ways > 0, "associativity must be positive");
        RC_ASSERT(num_lines % num_ways == 0,
                  "lines (%llu) must be a multiple of ways (%u)",
                  static_cast<unsigned long long>(num_lines), num_ways);
        RC_ASSERT(isPowerOf2(sets), "set count must be a power of two");
        setShift = floorLog2(sets);
    }

    /** Build from a capacity in bytes and an associativity. */
    static CacheGeometry
    fromBytes(std::uint64_t bytes, std::uint32_t num_ways)
    {
        RC_ASSERT(bytes % lineBytes == 0, "capacity not line-aligned");
        return CacheGeometry(bytes / lineBytes, num_ways);
    }

    /** Set index of a line address. */
    std::uint64_t
    setIndex(Addr line_addr) const
    {
        return bitField(lineNumber(line_addr), 0, setShift);
    }

    /** Tag of a line address (line number with the set bits removed). */
    std::uint64_t
    tagOf(Addr line_addr) const
    {
        return lineNumber(line_addr) >> setShift;
    }

    /** Reconstruct the line-aligned address from (tag, set). */
    Addr
    lineAddr(std::uint64_t tag, std::uint64_t set) const
    {
        return ((tag << setShift) | set) << lineShift;
    }

    std::uint64_t numLines() const { return lines; }   //!< total entries
    std::uint32_t numWays() const { return ways; }     //!< associativity
    std::uint64_t numSets() const { return sets; }     //!< number of sets
    std::uint64_t sizeBytes() const { return lines * lineBytes; } //!< bytes
    bool fullyAssociative() const { return sets == 1; } //!< single set?

  private:
    std::uint64_t lines = 0;
    std::uint32_t ways = 1;
    std::uint64_t sets = 0;
    std::uint32_t setShift = 0;
};

} // namespace rc

#endif // RC_CACHE_GEOMETRY_HH
