#include "cache/policies.hh"

#include "snapshot/serializer.hh"

#include "common/log.hh"

namespace rc
{

RripPolicy::RripPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                       Mode mode_, std::uint32_t num_cores,
                       std::uint64_t seed, std::uint32_t rrpv_bits)
    : ReplacementPolicy(num_sets, num_ways),
      mode(mode_),
      maxRrpv((1u << rrpv_bits) - 1),
      rrpvs(num_sets * num_ways, static_cast<std::uint8_t>(maxRrpv)),
      duel(num_sets, num_cores),
      rng(seed)
{
    RC_ASSERT(rrpv_bits >= 1 && rrpv_bits <= 8, "unreasonable RRPV width");
}






std::uint32_t
RripPolicy::rrpv(std::uint64_t set, std::uint32_t way) const
{
    return rrpvs[set * ways + way];
}

bool
RripPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < rrpvs.size(); ++i) {
        if (rrpvs[i] > maxRrpv) {
            if (why)
                *why = "RRPV (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") = " +
                       std::to_string(rrpvs[i]) + " exceeds max " +
                       std::to_string(maxRrpv);
            return false;
        }
    }
    return true;
}

bool
RripPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    if (maxRrpv >= 0xff)
        return false;
    rrpvs[set * ways + way] = 0xff;
    return true;
}

void
RripPolicy::save(Serializer &s) const
{
    s.putU64(rng.rawState());
    saveVec(s, rrpvs);
    duel.save(s);
}

void
RripPolicy::restore(Deserializer &d)
{
    rng.setRawState(d.getU64());
    restoreVec(d, rrpvs, "RRPV counters");
    duel.restore(d);
}

} // namespace rc
