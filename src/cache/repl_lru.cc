#include "cache/policies.hh"

#include "snapshot/serializer.hh"

#include "common/log.hh"

namespace rc
{

LruPolicy::LruPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      stamp(num_sets * num_ways, 0)
{
}

void
LruPolicy::onFill(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    // insertLru places the line at the bottom of the recency stack: it
    // will be the next victim unless it is referenced first.
    stamp[set * ways + way] = ctx.insertLru ? 0 : ++tick;
}

void
LruPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    stamp[set * ways + way] = ++tick;
}

std::uint32_t
LruPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::uint32_t best = 0;
    std::uint64_t best_stamp = stamp[base];
    for (std::uint32_t w = 1; w < ways; ++w) {
        if (stamp[base + w] < best_stamp) {
            best_stamp = stamp[base + w];
            best = w;
        }
    }
    return best;
}

bool
LruPolicy::metadataSane(std::string *why) const
{
    // Stamps are drawn from the monotonic tick, so none may be ahead
    // of it (a "future" stamp would never be victimized).
    for (std::uint64_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] > tick) {
            if (why)
                *why = "LRU stamp of (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") is " +
                       std::to_string(stamp[i]) + ", ahead of tick " +
                       std::to_string(tick);
            return false;
        }
    }
    return true;
}

bool
LruPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    stamp[set * ways + way] = tick + 1'000'000;
    return true;
}

void
LruPolicy::save(Serializer &s) const
{
    s.putU64(tick);
    saveVec(s, stamp);
}

void
LruPolicy::restore(Deserializer &d)
{
    tick = d.getU64();
    restoreVec(d, stamp, "LRU stamps");
}

} // namespace rc
