#include "cache/policies.hh"

#include "snapshot/serializer.hh"

#include "common/log.hh"

namespace rc
{

LruPolicy::LruPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      stamp(num_sets * num_ways, 0)
{
}




bool
LruPolicy::metadataSane(std::string *why) const
{
    // Stamps are drawn from the monotonic tick, so none may be ahead
    // of it (a "future" stamp would never be victimized).
    for (std::uint64_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] > tick) {
            if (why)
                *why = "LRU stamp of (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") is " +
                       std::to_string(stamp[i]) + ", ahead of tick " +
                       std::to_string(tick);
            return false;
        }
    }
    return true;
}

bool
LruPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    stamp[set * ways + way] = tick + 1'000'000;
    return true;
}

void
LruPolicy::save(Serializer &s) const
{
    s.putU64(tick);
    saveVec(s, stamp);
}

void
LruPolicy::restore(Deserializer &d)
{
    tick = d.getU64();
    restoreVec(d, stamp, "LRU stamps");
}

} // namespace rc
