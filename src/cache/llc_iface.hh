/**
 * @file
 * Abstract interface of a shared last-level cache model.
 *
 * Three organizations implement it: the conventional inclusive SLLC
 * (baseline), the reuse cache (the paper's contribution) and NCID (the
 * Section 5.5 comparison point).  The CMP simulator drives whichever is
 * configured through this interface, so every experiment swaps only the
 * SLLC.
 */

#ifndef RC_CACHE_LLC_IFACE_HH
#define RC_CACHE_LLC_IFACE_HH

#include <cstdint>
#include <string>

#include "coherence/protocol.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rc
{

class Serializer;
class Deserializer;

/** A demand request arriving from a private L2. */
struct LlcRequest
{
    Addr lineAddr = 0;     //!< line-aligned address
    CoreId core = 0;       //!< requesting core
    ProtoEvent event = ProtoEvent::GETS; //!< GETS, GETX or UPG
    Cycle now = 0;         //!< arrival cycle at the SLLC bank
    bool prefetch = false; //!< speculative (prefetcher-issued) GETS:
                           //!< treated as low priority by the SLLC
                           //!< policies (paper Section 6)
    Addr pc = 0;           //!< requesting instruction (PC-indexed arena
                           //!< policies; 0 for prefetches / v1 traces)
};

/** Completion information for a demand request. */
struct LlcResponse
{
    Cycle doneAt = 0;      //!< cycle the requester may resume
    bool tagHit = false;   //!< a tag entry existed on arrival
    bool dataHit = false;  //!< served from the SLLC data array
    bool memFetched = false; //!< main memory supplied the data
};

/**
 * Observer of data-array population events; the liveness and
 * hit-distribution analyses (Figs. 1 and 7) attach here.  For a
 * conventional cache the data array holds every line, so these events
 * describe all resident lines.
 */
class LlcObserver
{
  public:
    virtual ~LlcObserver() = default;

    /** A line generation entered the data array. */
    virtual void onDataFill(Addr line_addr, Cycle now)
    {
        (void)line_addr; (void)now;
    }

    /** A data-array resident line was hit. */
    virtual void onDataHit(Addr line_addr, Cycle now)
    {
        (void)line_addr; (void)now;
    }

    /** A line generation left the data array. */
    virtual void onDataEvict(Addr line_addr, Cycle now)
    {
        (void)line_addr; (void)now;
    }
};

/**
 * Back-invalidation callback into the private levels: SLLC tag
 * replacement (inclusion) and GETX/UPG invalidations use it.
 */
class RecallHandler
{
  public:
    virtual ~RecallHandler() = default;

    /**
     * Invalidate @p line_addr in the private caches of every core whose
     * bit is set in @p core_mask.
     * @return true iff one of them held a dirty (modified) copy.
     */
    virtual bool recall(Addr line_addr, std::uint32_t core_mask) = 0;

    /**
     * Downgrade @p line_addr from M to S in the private caches of the
     * cores in @p core_mask (read intervention: the owner keeps a clean
     * shared copy while the SLLC absorbs the dirty data).
     * @return true iff a dirty copy was surrendered.
     */
    virtual bool downgrade(Addr line_addr, std::uint32_t core_mask) = 0;
};

/** Common interface of every SLLC organization. */
class Sllc
{
  public:
    virtual ~Sllc() = default;

    /** Service a GETS/GETX/UPG demand request. */
    virtual LlcResponse request(const LlcRequest &req) = 0;

    /**
     * Private-cache eviction notification (PUTS when clean, PUTX when
     * dirty); keeps the full-map directory precise.
     */
    virtual void evictNotify(Addr line_addr, CoreId core, bool dirty,
                             Cycle now) = 0;

    /** Install the back-invalidation callback (required before use). */
    virtual void setRecallHandler(RecallHandler *handler) = 0;

    /** Attach a data-array observer (optional; may be nullptr). */
    virtual void setObserver(LlcObserver *observer) = 0;

    /** Aggregate counters. */
    virtual const StatSet &stats() const = 0;

    /** Misses by @p core (for MPKI accounting). */
    virtual Counter missesBy(CoreId core) const = 0;

    /** Demand accesses by @p core. */
    virtual Counter accessesBy(CoreId core) const = 0;

    /** Organization name for reports (e.g. "conv-8MB", "RC-4/1"). */
    virtual std::string describe() const = 0;

    /**
     * Lines currently holding data (telemetry occupancy sampling).
     * For decoupled organizations this counts the data array only —
     * tag-only entries are excluded.
     */
    virtual std::uint64_t dataLinesResident() const = 0;

    /** Data-array capacity in lines (denominator of occupancy). */
    virtual std::uint64_t dataLinesTotal() const = 0;

    /** Checkpoint all mutable SLLC state (tags, data, directory,
     *  replacement metadata, dueling monitors, RNGs, counters). */
    virtual void save(Serializer &s) const = 0;

    /** Restore a save()'d image into an identically-configured SLLC;
     *  throws SimError(Snapshot) on shape mismatch. */
    virtual void restore(Deserializer &d) = 0;
};

} // namespace rc

#endif // RC_CACHE_LLC_IFACE_HH
