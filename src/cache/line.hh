/**
 * @file
 * Coherence state enums shared by the private caches and SLLC models.
 */

#ifndef RC_CACHE_LINE_HH
#define RC_CACHE_LINE_HH

#include <cstdint>

namespace rc
{

/**
 * Private-cache (L1/L2) line state: plain MSI as seen from the core side.
 */
enum class PrivState : std::uint8_t {
    I,  //!< invalid / not present
    S,  //!< readable, clean with respect to the SLLC
    M,  //!< writable; may be dirty with respect to the SLLC
};

/**
 * SLLC directory-side stable state (TO-MSI of paper Fig. 3 / Table 1).
 *
 * I  - not present (no tag).
 * S  - tag + data present, data clean with respect to memory.
 * M  - tag + data present, data dirty with respect to memory.
 * TO - tag only, no data at the SLLC.  Memory is up to date unless a
 *      private owner holds a modified copy (ownership is tracked
 *      orthogonally by the directory entry).
 *
 * A conventional cache never uses TO.
 */
enum class LlcState : std::uint8_t {
    I,
    S,
    M,
    TO,
};

/** @return true iff the SLLC data array holds this line. */
constexpr bool
llcHasData(LlcState s)
{
    return s == LlcState::S || s == LlcState::M;
}

/** @return true iff the SLLC data copy is dirty with respect to memory. */
constexpr bool
llcDataDirty(LlcState s)
{
    return s == LlcState::M;
}

/** Human-readable state name. */
constexpr const char *
toString(LlcState s)
{
    switch (s) {
      case LlcState::I: return "I";
      case LlcState::S: return "S";
      case LlcState::M: return "M";
      case LlcState::TO: return "TO";
    }
    return "?";
}

/** Human-readable state name. */
constexpr const char *
toString(PrivState s)
{
    switch (s) {
      case PrivState::I: return "I";
      case PrivState::S: return "S";
      case PrivState::M: return "M";
    }
    return "?";
}

} // namespace rc

#endif // RC_CACHE_LINE_HH
