#include "cache/replacement.hh"

#include "cache/policies.hh"
#include "cache/policy_dispatch.hh"
#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace detail
{
bool forceVirtualReplDispatch = false;
} // namespace detail

void
setForceVirtualReplDispatch(bool enable)
{
    detail::forceVirtualReplDispatch = enable;
}

void
ReplacementPolicy::save(Serializer &s) const
{
    (void)s; // stateless policy: nothing to checkpoint
}

void
ReplacementPolicy::restore(Deserializer &d)
{
    (void)d; // the owning cache's section framing rejects stray bytes
}

const char *
toString(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU: return "LRU";
      case ReplKind::NRU: return "NRU";
      case ReplKind::NRR: return "NRR";
      case ReplKind::Random: return "Random";
      case ReplKind::Clock: return "Clock";
      case ReplKind::SRRIP: return "SRRIP";
      case ReplKind::BRRIP: return "BRRIP";
      case ReplKind::DRRIP: return "DRRIP";
    }
    return "?";
}

void
ReplacementPolicy::onInvalidate(std::uint64_t set, std::uint32_t way)
{
    // Most policies need no action: the owning cache fills invalid ways
    // first, and the stale metadata is overwritten by the next onFill.
    (void)set;
    (void)way;
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, std::uint64_t num_sets, std::uint32_t num_ways,
                std::uint32_t num_cores, std::uint64_t seed)
{
    switch (kind) {
      case ReplKind::LRU:
        return std::make_unique<LruPolicy>(num_sets, num_ways);
      case ReplKind::NRU:
        return std::make_unique<NruPolicy>(num_sets, num_ways);
      case ReplKind::NRR:
        return std::make_unique<NrrPolicy>(num_sets, num_ways, seed);
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>(num_sets, num_ways, seed);
      case ReplKind::Clock:
        return std::make_unique<ClockPolicy>(num_sets, num_ways);
      case ReplKind::SRRIP:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripPolicy::Mode::SRRIP,
                                            num_cores, seed);
      case ReplKind::BRRIP:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripPolicy::Mode::BRRIP,
                                            num_cores, seed);
      case ReplKind::DRRIP:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripPolicy::Mode::DRRIP,
                                            num_cores, seed);
    }
    panic("unknown replacement kind %d", static_cast<int>(kind));
}

} // namespace rc
