#include "cache/replacement.hh"

#include "arena/arena_policies.hh"
#include "cache/policies.hh"
#include "cache/policy_dispatch.hh"
#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace detail
{
bool forceVirtualReplDispatch = false;
} // namespace detail

void
setForceVirtualReplDispatch(bool enable)
{
    detail::forceVirtualReplDispatch = enable;
}

void
ReplacementPolicy::save(Serializer &s) const
{
    (void)s; // stateless policy: nothing to checkpoint
}

void
ReplacementPolicy::restore(Deserializer &d)
{
    (void)d; // the owning cache's section framing rejects stray bytes
}

const char *
toString(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU: return "LRU";
      case ReplKind::NRU: return "NRU";
      case ReplKind::NRR: return "NRR";
      case ReplKind::Random: return "Random";
      case ReplKind::Clock: return "Clock";
      case ReplKind::SRRIP: return "SRRIP";
      case ReplKind::BRRIP: return "BRRIP";
      case ReplKind::DRRIP: return "DRRIP";
      case ReplKind::Ship: return "SHiP";
      case ReplKind::ShipMem: return "SHiP-Mem";
      case ReplKind::Redre: return "REDRE";
      case ReplKind::DeadBlock: return "DeadBlock";
      case ReplKind::RdAware: return "RDAware";
      case ReplKind::Lip: return "LIP";
      case ReplKind::Bip: return "BIP";
      case ReplKind::Dip: return "DIP";
      case ReplKind::DuelShip: return "DuelSHiP";
      case ReplKind::Stream: return "Stream";
      case ReplKind::Plru: return "PLRU";
      case ReplKind::Mru: return "MRU";
    }
    return "?";
}

void
ReplacementPolicy::onInvalidate(std::uint64_t set, std::uint32_t way)
{
    // Most policies need no action: the owning cache fills invalid ways
    // first, and the stale metadata is overwritten by the next onFill.
    (void)set;
    (void)way;
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, std::uint64_t num_sets, std::uint32_t num_ways,
                std::uint32_t num_cores, std::uint64_t seed)
{
    switch (kind) {
      case ReplKind::LRU:
        return std::make_unique<LruPolicy>(num_sets, num_ways);
      case ReplKind::NRU:
        return std::make_unique<NruPolicy>(num_sets, num_ways);
      case ReplKind::NRR:
        return std::make_unique<NrrPolicy>(num_sets, num_ways, seed);
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>(num_sets, num_ways, seed);
      case ReplKind::Clock:
        return std::make_unique<ClockPolicy>(num_sets, num_ways);
      case ReplKind::SRRIP:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripPolicy::Mode::SRRIP,
                                            num_cores, seed);
      case ReplKind::BRRIP:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripPolicy::Mode::BRRIP,
                                            num_cores, seed);
      case ReplKind::DRRIP:
        return std::make_unique<RripPolicy>(num_sets, num_ways,
                                            RripPolicy::Mode::DRRIP,
                                            num_cores, seed);
      case ReplKind::Ship:
        return std::make_unique<ShipPolicy>(num_sets, num_ways,
                                            ShipPolicy::Mode::PC, num_cores);
      case ReplKind::ShipMem:
        return std::make_unique<ShipPolicy>(num_sets, num_ways,
                                            ShipPolicy::Mode::Mem, num_cores);
      case ReplKind::DuelShip:
        return std::make_unique<ShipPolicy>(num_sets, num_ways,
                                            ShipPolicy::Mode::Duel,
                                            num_cores);
      case ReplKind::Redre:
        return std::make_unique<RedrePolicy>(num_sets, num_ways);
      case ReplKind::DeadBlock:
        return std::make_unique<DeadBlockPolicy>(num_sets, num_ways);
      case ReplKind::RdAware:
        return std::make_unique<RdAwarePolicy>(num_sets, num_ways);
      case ReplKind::Lip:
        return std::make_unique<InsertionPolicy>(num_sets, num_ways,
                                                 InsertionPolicy::Mode::LIP,
                                                 num_cores);
      case ReplKind::Bip:
        return std::make_unique<InsertionPolicy>(num_sets, num_ways,
                                                 InsertionPolicy::Mode::BIP,
                                                 num_cores);
      case ReplKind::Dip:
        return std::make_unique<InsertionPolicy>(num_sets, num_ways,
                                                 InsertionPolicy::Mode::DIP,
                                                 num_cores);
      case ReplKind::Stream:
        return std::make_unique<StreamPolicy>(num_sets, num_ways);
      case ReplKind::Plru:
        return std::make_unique<PlruPolicy>(num_sets, num_ways);
      case ReplKind::Mru:
        return std::make_unique<MruPolicy>(num_sets, num_ways);
    }
    panic("unknown replacement kind %d", static_cast<int>(kind));
}

} // namespace rc
