/**
 * @file
 * Miss Status Holding Register file.
 *
 * Each SLLC bank in the baseline has 16 MSHRs (Table 4).  With blocking
 * in-order cores at most one miss per core is outstanding, so the file
 * rarely saturates, but it still (i) merges concurrent requests for the
 * same line and (ii) back-pressures a bank when full, which the crossbar
 * turns into extra queuing delay.
 */

#ifndef RC_CACHE_MSHR_HH
#define RC_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rc
{

/** Fixed-capacity MSHR file tracking in-flight line misses. */
class MshrFile
{
  public:
    /**
     * @param num_entries capacity (16 per bank in the paper).
     * @param name stat-set name.
     */
    MshrFile(std::uint32_t num_entries, const std::string &name);

    /** Outcome of presenting a miss to the file. */
    enum class Outcome : std::uint8_t {
        Allocated, //!< new entry allocated
        Merged,    //!< an entry for this line already existed
        Full,      //!< no free entry; the requester must stall
    };

    /**
     * Present a miss for @p line_addr that will complete at @p done_at.
     * Entries whose completion time has passed are retired lazily first.
     */
    Outcome request(Addr line_addr, Cycle now, Cycle done_at);

    /** @return completion cycle of the entry covering @p line_addr, or
     *  neverCycle when the line is not being tracked. */
    Cycle trackedUntil(Addr line_addr) const;

    /** Entries currently live at @p now (after lazy retirement). */
    std::uint32_t occupancy(Cycle now);

    /**
     * Verify layer: valid entries still completing after @p now
     * (const — no lazy retirement, safe mid-run).
     */
    std::uint32_t inFlightAt(Cycle now) const;

    /**
     * Verify layer: valid entries that can never retire
     * (doneAt == neverCycle) — a leaked slot that lazy retirement will
     * never reclaim.  Legitimate misses always carry a finite doneAt.
     */
    std::uint32_t leakedEntries() const;

    /** Earliest completion among live entries (neverCycle when empty). */
    Cycle earliestRelease() const;

    /** Capacity given at construction. */
    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(entries.size());
    }

    /** Counters: allocations, merges, full-stalls, peak occupancy. */
    const StatSet &stats() const { return statSet; }

    /** Drop all entries and zero the counters. */
    void reset();

    /** Checkpoint entries, live count and counters. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    struct Entry
    {
        Addr line = invalidAddr;
        Cycle doneAt = 0;
        bool valid = false;
    };

    void retire(Cycle now);

    std::vector<Entry> entries;
    std::uint32_t live = 0;

    StatSet statSet;
    Counter &allocations;
    Counter &merges;
    Counter &fullStalls;
    Counter &peakOccupancy;
};

} // namespace rc

#endif // RC_CACHE_MSHR_HH
