#include "cache/policies.hh"

#include "snapshot/serializer.hh"

#include "common/log.hh"

namespace rc
{

NrrPolicy::NrrPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                     std::uint64_t seed)
    : ReplacementPolicy(num_sets, num_ways),
      nrr(num_sets * num_ways, 1),
      rng(seed)
{
    RC_ASSERT(num_ways <= 64, "NRR avoid mask supports at most 64 ways");
}




bool
NrrPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < nrr.size(); ++i) {
        if (nrr[i] > 1) {
            if (why)
                *why = "NRR bit (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") = " +
                       std::to_string(nrr[i]) + ", not 0/1";
            return false;
        }
    }
    return true;
}

bool
NrrPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    nrr[set * ways + way] = 0xff;
    return true;
}

bool
NrrPolicy::nrrBit(std::uint64_t set, std::uint32_t way) const
{
    return nrr[set * ways + way] != 0;
}

void
NrrPolicy::save(Serializer &s) const
{
    s.putU64(rng.rawState());
    saveVec(s, nrr);
}

void
NrrPolicy::restore(Deserializer &d)
{
    rng.setRawState(d.getU64());
    restoreVec(d, nrr, "NRR bits");
}

} // namespace rc
