#include "cache/policies.hh"

#include "snapshot/serializer.hh"

#include "common/log.hh"

namespace rc
{

NrrPolicy::NrrPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                     std::uint64_t seed)
    : ReplacementPolicy(num_sets, num_ways),
      nrr(num_sets * num_ways, 1),
      rng(seed)
{
    RC_ASSERT(num_ways <= 64, "NRR avoid mask supports at most 64 ways");
}

void
NrrPolicy::onFill(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    // Freshly loaded lines have not been reused yet.
    nrr[set * ways + way] = 1;
}

void
NrrPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    // A hit at this level is a reuse.
    nrr[set * ways + way] = 0;
}

std::uint32_t
NrrPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    const std::uint64_t base = set * ways;

    auto pick_random = [this](std::uint64_t mask) -> std::int32_t {
        const auto count = static_cast<std::uint32_t>(
            __builtin_popcountll(mask));
        if (count == 0)
            return -1;
        std::uint32_t skip = static_cast<std::uint32_t>(rng.below(count));
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (mask & (std::uint64_t{1} << w)) {
                if (skip == 0)
                    return static_cast<std::int32_t>(w);
                --skip;
            }
        }
        return -1;
    };

    auto nrr_mask = [this, base]() {
        std::uint64_t m = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (nrr[base + w])
                m |= std::uint64_t{1} << w;
        }
        return m;
    };

    const std::uint64_t all =
        ways >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << ways) - 1;
    const std::uint64_t not_present = all & ~q.avoidMask;

    std::uint64_t candidates = nrr_mask();
    if (candidates == 0) {
        // Every line was recently reused: age the whole set (NRU-style)
        // so the "not recently" distinction regains meaning.
        for (std::uint32_t w = 0; w < ways; ++w)
            nrr[base + w] = 1;
        candidates = all;
    }

    // Preference order: (1) not recently reused and absent from the
    // private caches, (2) any line absent from the private caches,
    // (3) fully random.  (2) protects inclusion victims over reuse bits.
    if (auto v = pick_random(candidates & not_present); v >= 0)
        return static_cast<std::uint32_t>(v);
    if (auto v = pick_random(not_present); v >= 0)
        return static_cast<std::uint32_t>(v);
    if (auto v = pick_random(candidates); v >= 0)
        return static_cast<std::uint32_t>(v);
    return static_cast<std::uint32_t>(rng.below(ways));
}

bool
NrrPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < nrr.size(); ++i) {
        if (nrr[i] > 1) {
            if (why)
                *why = "NRR bit (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") = " +
                       std::to_string(nrr[i]) + ", not 0/1";
            return false;
        }
    }
    return true;
}

bool
NrrPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    nrr[set * ways + way] = 0xff;
    return true;
}

bool
NrrPolicy::nrrBit(std::uint64_t set, std::uint32_t way) const
{
    return nrr[set * ways + way] != 0;
}

void
NrrPolicy::save(Serializer &s) const
{
    s.putU64(rng.rawState());
    saveVec(s, nrr);
}

void
NrrPolicy::restore(Deserializer &d)
{
    rng.setRawState(d.getU64());
    restoreVec(d, nrr, "NRR bits");
}

} // namespace rc
