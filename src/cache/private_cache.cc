#include "cache/private_cache.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace
{

/**
 * Way-scan over a fixed-width tag lane.  At most one way can match: a
 * set never holds duplicate tags (fill asserts non-residency) and
 * invalid ways carry a sentinel no real tag equals, so scanning every
 * way branch-free is equivalent to first-match — and the constant trip
 * count lets the compiler unroll and vectorize the compares.
 */
template <std::uint32_t W>
inline std::int32_t
scanWays(const std::uint64_t *tl, std::uint64_t tag)
{
    std::int32_t hit = -1;
    for (std::uint32_t w = 0; w < W; ++w) {
        if (tl[w] == tag)
            hit = static_cast<std::int32_t>(w);
    }
    return hit;
}

inline std::int32_t
findWay(const std::uint64_t *tl, std::uint64_t tag, std::uint32_t ways)
{
    switch (ways) {
      case 4: return scanWays<4>(tl, tag);
      case 8: return scanWays<8>(tl, tag);
      case 16: return scanWays<16>(tl, tag);
      default:
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (tl[w] == tag)
                return static_cast<std::int32_t>(w);
        }
        return -1;
    }
}

} // namespace

TagStore::TagStore(const CacheGeometry &geometry, const std::string &name)
    : geom(geometry),
      tags(geometry.numLines(), invalidTag),
      valid(geometry.numLines(), 0),
      payload(geometry.numLines()),
      stamp(geometry.numLines(), 0)
{
    (void)name;
}

std::uint32_t
TagStore::lruVictim(std::uint64_t set) const
{
    const std::uint64_t base = set * geom.numWays();
    std::uint32_t best = 0;
    std::uint64_t best_stamp = stamp[base];
    for (std::uint32_t w = 1; w < geom.numWays(); ++w) {
        if (stamp[base + w] < best_stamp) {
            best_stamp = stamp[base + w];
            best = w;
        }
    }
    return best;
}

TagStore::Way *
TagStore::lookup(Addr line_addr)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    const std::int32_t w = findWay(tags.data() + base, tag, geom.numWays());
    if (w < 0)
        return nullptr;
    stamp[base + w] = ++tick;
    return &payload[base + w];
}

const TagStore::Way *
TagStore::peek(Addr line_addr) const
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    const std::int32_t w = findWay(tags.data() + base, tag, geom.numWays());
    return w < 0 ? nullptr : &payload[base + w];
}

TagStore::Eviction
TagStore::fill(Addr line_addr, PrivState state)
{
    RC_ASSERT(peek(line_addr) == nullptr,
              "fill of already-resident line %llx",
              static_cast<unsigned long long>(line_addr));
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t base = set * geom.numWays();

    std::uint32_t way = geom.numWays();
    for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
        if (!valid[base + w]) {
            way = w;
            break;
        }
    }

    Eviction ev;
    if (way == geom.numWays()) {
        way = lruVictim(set);
        ev.valid = true;
        ev.lineAddr = geom.lineAddr(tags[base + way], set);
        ev.state = payload[base + way].state;
        ev.dirty = payload[base + way].dirty;
    }

    tags[base + way] = geom.tagOf(line_addr);
    payload[base + way] = Way{state, false};
    valid[base + way] = 1;
    stamp[base + way] = ++tick;
    return ev;
}

TagStore::Eviction
TagStore::invalidate(Addr line_addr)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
        if (tags[base + w] == tag) {
            Eviction ev;
            ev.valid = true;
            ev.lineAddr = line_addr;
            ev.state = payload[base + w].state;
            ev.dirty = payload[base + w].dirty;
            valid[base + w] = 0;
            tags[base + w] = invalidTag;
            payload[base + w] = Way{};
            return ev;
        }
    }
    return Eviction{};
}

std::uint64_t
TagStore::residentCount() const
{
    std::uint64_t n = 0;
    for (auto v : valid)
        n += v;
    return n;
}

void
TagStore::forEachResident(
    const std::function<void(Addr, const Way &)> &fn) const
{
    for (std::uint64_t s = 0; s < geom.numSets(); ++s) {
        const std::uint64_t base = s * geom.numWays();
        for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
            if (valid[base + w])
                fn(geom.lineAddr(tags[base + w], s), payload[base + w]);
        }
    }
}

PrivateHierarchy::PrivateHierarchy(const PrivateConfig &cfg_, CoreId core,
                                   const std::string &name)
    : cfg(cfg_),
      coreId(core),
      l1i(CacheGeometry::fromBytes(cfg_.l1Bytes, cfg_.l1Ways), name + ".l1i"),
      l1d(CacheGeometry::fromBytes(cfg_.l1Bytes, cfg_.l1Ways), name + ".l1d"),
      l2(CacheGeometry::fromBytes(cfg_.l2Bytes, cfg_.l2Ways), name + ".l2"),
      statSet(name),
      l1iHits(statSet.add("l1iHits", "instruction fetches hitting the L1I")),
      l1iMisses(statSet.add("l1iMisses", "instruction fetches missing L1I")),
      l1dHits(statSet.add("l1dHits", "data accesses hitting the L1D")),
      l1dMisses(statSet.add("l1dMisses", "data accesses missing the L1D")),
      l2Hits(statSet.add("l2Hits", "L1 misses hitting the L2")),
      l2Misses(statSet.add("l2Misses", "L1 misses missing the L2")),
      upgrades(statSet.add("upgrades", "S->M upgrade requests issued")),
      recalls(statSet.add("recalls", "SLLC back-invalidations received")),
      dirtyRecalls(statSet.add("dirtyRecalls",
                               "back-invalidations of a dirty copy"))
{
    (void)coreId;
}

PrivateMissAction
PrivateHierarchy::classify(Addr line_addr, MemOp op, bool is_instr)
{
    PrivateMissAction act;
    act.latency = cfg.l1Latency;

    if (is_instr) {
        RC_ASSERT(op == MemOp::Read, "instruction fetches are reads");
        if (l1i.lookup(line_addr)) {
            ++l1iHits;
            return act;
        }
        ++l1iMisses;
        act.latency += cfg.l2Latency;
        if (TagStore::Way *w = l2.lookup(line_addr)) {
            (void)w;
            ++l2Hits;
            l1i.fill(line_addr, PrivState::S);
            return act;
        }
        ++l2Misses;
        act.needLlc = true;
        act.event = ProtoEvent::GETS;
        return act;
    }

    TagStore::Way *in_l1 = l1d.lookup(line_addr);
    if (in_l1) {
        ++l1dHits;
        if (op == MemOp::Read)
            return act;
        TagStore::Way *in_l2 = l2.lookup(line_addr);
        RC_ASSERT(in_l2, "L1D copy without an L2 copy breaks inclusion");
        if (in_l2->state == PrivState::M) {
            in_l2->dirty = true;
            return act;
        }
        // Write permission missing: upgrade at the SLLC.
        ++upgrades;
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::UPG;
        return act;
    }
    ++l1dMisses;
    act.latency += cfg.l2Latency;

    if (TagStore::Way *in_l2 = l2.lookup(line_addr)) {
        if (op == MemOp::Read) {
            ++l2Hits;
            l1d.fill(line_addr, in_l2->state);
            return act;
        }
        if (in_l2->state == PrivState::M) {
            ++l2Hits;
            in_l2->dirty = true;
            l1d.fill(line_addr, PrivState::M);
            return act;
        }
        ++l2Hits;
        ++upgrades;
        act.needLlc = true;
        act.event = ProtoEvent::UPG;
        return act;
    }
    ++l2Misses;
    act.needLlc = true;
    act.event = op == MemOp::Write ? ProtoEvent::GETX : ProtoEvent::GETS;
    return act;
}

bool
PrivateHierarchy::fill(Addr line_addr, bool is_instr, bool writable,
                       Addr &evict_line, bool &evict_dirty)
{
    const PrivState st = writable ? PrivState::M : PrivState::S;
    TagStore::Eviction ev = l2.fill(line_addr, st);
    if (writable) {
        // The pending write completes right after the fill.
        TagStore::Way *w = l2.lookup(line_addr);
        RC_ASSERT(w, "line vanished during fill");
        w->dirty = true;
    }

    if (ev.valid) {
        // Inclusion within the private hierarchy: an L2 victim may not
        // linger in the L1s.
        l1i.invalidate(ev.lineAddr);
        l1d.invalidate(ev.lineAddr);
    }

    if (is_instr)
        l1i.fill(line_addr, PrivState::S);
    else
        l1d.fill(line_addr, st);

    evict_line = ev.lineAddr;
    evict_dirty = ev.dirty;
    return ev.valid;
}

bool
PrivateHierarchy::fillPrefetch(Addr line_addr, Addr &evict_line,
                               bool &evict_dirty)
{
    if (l2.peek(line_addr))
        return false;
    TagStore::Eviction ev = l2.fill(line_addr, PrivState::S);
    if (ev.valid) {
        l1i.invalidate(ev.lineAddr);
        l1d.invalidate(ev.lineAddr);
    }
    evict_line = ev.lineAddr;
    evict_dirty = ev.dirty;
    return ev.valid;
}

void
PrivateHierarchy::upgraded(Addr line_addr)
{
    TagStore::Way *w = l2.lookup(line_addr);
    RC_ASSERT(w, "upgrade completion for a non-resident line");
    w->state = PrivState::M;
    w->dirty = true;
    if (TagStore::Way *l1w = l1d.lookup(line_addr))
        l1w->state = PrivState::M;
    else
        l1d.fill(line_addr, PrivState::M);
}

bool
PrivateHierarchy::invalidate(Addr line_addr)
{
    ++recalls;
    l1i.invalidate(line_addr);
    l1d.invalidate(line_addr);
    TagStore::Eviction ev = l2.invalidate(line_addr);
    if (ev.valid && ev.dirty) {
        ++dirtyRecalls;
        return true;
    }
    return false;
}

bool
PrivateHierarchy::downgrade(Addr line_addr)
{
    TagStore::Way *w = l2.lookup(line_addr);
    if (!w)
        return false;
    const bool was_dirty = w->dirty;
    w->state = PrivState::S;
    w->dirty = false;
    if (TagStore::Way *l1w = l1d.lookup(line_addr)) {
        l1w->state = PrivState::S;
        l1w->dirty = false;
    }
    return was_dirty;
}

bool
PrivateHierarchy::present(Addr line_addr) const
{
    return l2.peek(line_addr) != nullptr;
}

void
PrivateHierarchy::forEachL2Resident(
    const std::function<void(Addr, const TagStore::Way &)> &fn) const
{
    l2.forEachResident(fn);
}

void
PrivateHierarchy::forEachL1Resident(
    const std::function<void(Addr, const TagStore::Way &, bool)> &fn) const
{
    l1i.forEachResident(
        [&](Addr line, const TagStore::Way &w) { fn(line, w, true); });
    l1d.forEachResident(
        [&](Addr line, const TagStore::Way &w) { fn(line, w, false); });
}

PrivState
PrivateHierarchy::state(Addr line_addr) const
{
    const TagStore::Way *w = l2.peek(line_addr);
    return w ? w->state : PrivState::I;
}

void
TagStore::save(Serializer &s) const
{
    // Same image as the original AoS layout: interleaved per-way
    // (tag, state, dirty) records, then the valid lane, then the LRU
    // state in the "repl" section exactly as LruPolicy::save framed it.
    s.putU64(payload.size());
    for (std::uint64_t i = 0; i < payload.size(); ++i) {
        // Invalid ways serialize a zero tag, exactly the bytes the AoS
        // layout wrote (the in-memory sentinel is a scan-time detail).
        s.putU64(valid[i] ? tags[i] : 0);
        s.putU8(static_cast<std::uint8_t>(payload[i].state));
        s.putBool(payload[i].dirty);
    }
    saveVec(s, valid);
    s.beginSection("repl");
    s.putU64(tick);
    saveVec(s, stamp);
    s.endSection();
}

void
TagStore::restore(Deserializer &d)
{
    const std::uint64_t count = d.getU64();
    if (count != payload.size())
        throwSimError(SimError::Kind::Snapshot,
                      "tag store holds %zu ways but the checkpoint "
                      "carries %llu", payload.size(),
                      static_cast<unsigned long long>(count));
    for (std::uint64_t i = 0; i < payload.size(); ++i) {
        tags[i] = d.getU64();
        payload[i].state = static_cast<PrivState>(d.getU8());
        payload[i].dirty = d.getBool();
    }
    restoreVec(d, valid, "tag-store valid bits");
    for (std::uint64_t i = 0; i < payload.size(); ++i) {
        if (!valid[i])
            tags[i] = invalidTag;
    }
    d.beginSection("repl");
    tick = d.getU64();
    restoreVec(d, stamp, "LRU stamps");
    d.endSection();
}

void
PrivateHierarchy::save(Serializer &s) const
{
    s.beginSection("l1i");
    l1i.save(s);
    s.endSection();
    s.beginSection("l1d");
    l1d.save(s);
    s.endSection();
    s.beginSection("l2");
    l2.save(s);
    s.endSection();
    statSet.save(s);
}

void
PrivateHierarchy::restore(Deserializer &d)
{
    d.beginSection("l1i");
    l1i.restore(d);
    d.endSection();
    d.beginSection("l1d");
    l1d.restore(d);
    d.endSection();
    d.beginSection("l2");
    l2.restore(d);
    d.endSection();
    statSet.restore(d);
}

} // namespace rc
