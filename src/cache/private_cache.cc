#include "cache/private_cache.hh"

#include "common/log.hh"
#include "common/wayscan.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace
{

/**
 * Way-scan over a fixed-width tag lane (see common/wayscan.hh).  At
 * most one way can match: a set never holds duplicate tags (fill
 * asserts non-residency) and invalid ways carry a sentinel no real tag
 * equals, so a single first-match scan is exact.
 */
inline std::int32_t
findWay(const std::uint64_t *tl, std::uint64_t tag, std::uint32_t ways)
{
    return scanWays(tl, ways, tag);
}

} // namespace

TagStore::TagStore(const CacheGeometry &geometry, const std::string &name)
    : geom(geometry),
      tags(geometry.numLines(), invalidTag),
      valid(geometry.numLines(), 0),
      payload(geometry.numLines()),
      stamp(geometry.numLines(), 0)
{
    (void)name;
}

std::uint32_t
TagStore::lruVictim(std::uint64_t set) const
{
    const std::uint64_t base = set * geom.numWays();
    std::uint32_t best = 0;
    std::uint64_t best_stamp = stamp[base];
    for (std::uint32_t w = 1; w < geom.numWays(); ++w) {
        if (stamp[base + w] < best_stamp) {
            best_stamp = stamp[base + w];
            best = w;
        }
    }
    return best;
}

TagStore::Way *
TagStore::lookup(Addr line_addr)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    const std::int32_t w = findWay(tags.data() + base, tag, geom.numWays());
    if (w < 0)
        return nullptr;
    stamp[base + w] = ++tick;
    return &payload[base + w];
}

std::int32_t
TagStore::lookupWay(Addr line_addr)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    const std::int32_t w = findWay(tags.data() + base, tag, geom.numWays());
    if (w >= 0)
        stamp[base + w] = ++tick;
    return w;
}

const TagStore::Way *
TagStore::peek(Addr line_addr) const
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    const std::int32_t w = findWay(tags.data() + base, tag, geom.numWays());
    return w < 0 ? nullptr : &payload[base + w];
}

TagStore::Eviction
TagStore::fill(Addr line_addr, PrivState state, std::uint32_t *way_out)
{
    RC_ASSERT(peek(line_addr) == nullptr,
              "fill of already-resident line %llx",
              static_cast<unsigned long long>(line_addr));
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t base = set * geom.numWays();

    std::uint32_t way = geom.numWays();
    for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
        if (!valid[base + w]) {
            way = w;
            break;
        }
    }

    Eviction ev;
    if (way == geom.numWays()) {
        way = lruVictim(set);
        ev.valid = true;
        ev.lineAddr = geom.lineAddr(tags[base + way], set);
        ev.state = payload[base + way].state;
        ev.dirty = payload[base + way].dirty;
    }

    tags[base + way] = geom.tagOf(line_addr);
    payload[base + way] = Way{state, false};
    valid[base + way] = 1;
    stamp[base + way] = ++tick;
    if (way_out)
        *way_out = way;
    return ev;
}

TagStore::Eviction
TagStore::occupantAt(Addr line_addr, std::uint32_t way) const
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t idx = set * geom.numWays() + way;
    Eviction ev;
    if (!valid[idx])
        return ev;
    ev.valid = true;
    ev.lineAddr = geom.lineAddr(tags[idx], set);
    ev.state = payload[idx].state;
    ev.dirty = payload[idx].dirty;
    return ev;
}

void
TagStore::installAt(Addr line_addr, std::uint32_t way, PrivState state)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t idx = set * geom.numWays() + way;
    tags[idx] = geom.tagOf(line_addr);
    payload[idx] = Way{state, false};
    valid[idx] = 1;
    stamp[idx] = ++tick;
}

TagStore::Eviction
TagStore::invalidate(Addr line_addr)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
        if (tags[base + w] == tag) {
            Eviction ev;
            ev.valid = true;
            ev.lineAddr = line_addr;
            ev.state = payload[base + w].state;
            ev.dirty = payload[base + w].dirty;
            valid[base + w] = 0;
            tags[base + w] = invalidTag;
            payload[base + w] = Way{};
            return ev;
        }
    }
    return Eviction{};
}

std::uint64_t
TagStore::residentCount() const
{
    std::uint64_t n = 0;
    for (auto v : valid)
        n += v;
    return n;
}

void
TagStore::forEachResident(
    const std::function<void(Addr, const Way &)> &fn) const
{
    for (std::uint64_t s = 0; s < geom.numSets(); ++s) {
        const std::uint64_t base = s * geom.numWays();
        for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
            if (valid[base + w])
                fn(geom.lineAddr(tags[base + w], s), payload[base + w]);
        }
    }
}

PrivateHierarchy::PrivateHierarchy(const PrivateConfig &cfg_, CoreId core,
                                   const std::string &name)
    : cfg(cfg_),
      coreId(core),
      l1i(CacheGeometry::fromBytes(cfg_.l1Bytes, cfg_.l1Ways), name + ".l1i"),
      l1d(CacheGeometry::fromBytes(cfg_.l1Bytes, cfg_.l1Ways), name + ".l1d"),
      l2(CacheGeometry::fromBytes(cfg_.l2Bytes, cfg_.l2Ways), name + ".l2"),
      statSet(name),
      l1iHits(statSet.add("l1iHits", "instruction fetches hitting the L1I")),
      l1iMisses(statSet.add("l1iMisses", "instruction fetches missing L1I")),
      l1dHits(statSet.add("l1dHits", "data accesses hitting the L1D")),
      l1dMisses(statSet.add("l1dMisses", "data accesses missing the L1D")),
      l2Hits(statSet.add("l2Hits", "L1 misses hitting the L2")),
      l2Misses(statSet.add("l2Misses", "L1 misses missing the L2")),
      upgrades(statSet.add("upgrades", "S->M upgrade requests issued")),
      recalls(statSet.add("recalls", "SLLC back-invalidations received")),
      dirtyRecalls(statSet.add("dirtyRecalls",
                               "back-invalidations of a dirty copy"))
{
    (void)coreId;
}

template <bool Rec>
PrivateMissAction
PrivateHierarchy::classifyImpl(Addr line_addr, MemOp op, bool is_instr,
                               StepRecord *rec)
{
    PrivateMissAction act;
    act.latency = cfg.l1Latency;

    if (is_instr) {
        RC_ASSERT(op == MemOp::Read, "instruction fetches are reads");
        const std::int32_t w1 = l1i.lookupWay(line_addr);
        if (w1 >= 0) {
            ++l1iHits;
            if constexpr (Rec) {
                rec->kind = StepKind::L1IHit;
                rec->l1Way = static_cast<std::int8_t>(w1);
            }
            return act;
        }
        ++l1iMisses;
        act.latency += cfg.l2Latency;
        const std::int32_t w2 = l2.lookupWay(line_addr);
        if (w2 >= 0) {
            ++l2Hits;
            std::uint32_t fw = 0;
            l1i.fill(line_addr, PrivState::S, Rec ? &fw : nullptr);
            if constexpr (Rec) {
                rec->kind = StepKind::L1IL2Hit;
                rec->l1Way = static_cast<std::int8_t>(fw);
                rec->l2Way = static_cast<std::int8_t>(w2);
            }
            return act;
        }
        ++l2Misses;
        act.needLlc = true;
        act.event = ProtoEvent::GETS;
        if constexpr (Rec)
            rec->kind = StepKind::InstrMiss;
        return act;
    }

    const std::int32_t w1 = l1d.lookupWay(line_addr);
    if (w1 >= 0) {
        ++l1dHits;
        if (op == MemOp::Read) {
            if constexpr (Rec) {
                rec->kind = StepKind::L1DReadHit;
                rec->l1Way = static_cast<std::int8_t>(w1);
            }
            return act;
        }
        const std::int32_t w2 = l2.lookupWay(line_addr);
        RC_ASSERT(w2 >= 0, "L1D copy without an L2 copy breaks inclusion");
        TagStore::Way &in_l2 = l2.wayAt(line_addr, w2);
        if (in_l2.state == PrivState::M) {
            in_l2.dirty = true;
            if constexpr (Rec) {
                rec->kind = StepKind::L1DWriteHitM;
                rec->l1Way = static_cast<std::int8_t>(w1);
                rec->l2Way = static_cast<std::int8_t>(w2);
            }
            return act;
        }
        // Write permission missing: upgrade at the SLLC.
        ++upgrades;
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::UPG;
        if constexpr (Rec) {
            rec->kind = StepKind::L1DWriteHitUpg;
            rec->l1Way = static_cast<std::int8_t>(w1);
            rec->l2Way = static_cast<std::int8_t>(w2);
        }
        return act;
    }
    ++l1dMisses;
    act.latency += cfg.l2Latency;

    const std::int32_t w2 = l2.lookupWay(line_addr);
    if (w2 >= 0) {
        TagStore::Way &in_l2 = l2.wayAt(line_addr, w2);
        if (op == MemOp::Read) {
            ++l2Hits;
            const PrivState st = in_l2.state;
            std::uint32_t fw = 0;
            l1d.fill(line_addr, st, Rec ? &fw : nullptr);
            if constexpr (Rec) {
                rec->kind = StepKind::L2ReadHit;
                rec->l1Way = static_cast<std::int8_t>(fw);
                rec->l2Way = static_cast<std::int8_t>(w2);
                rec->flags = static_cast<std::uint8_t>(
                    rec->flags | (static_cast<std::uint8_t>(st)
                                  << StepRecord::kFillStateShift));
            }
            return act;
        }
        if (in_l2.state == PrivState::M) {
            ++l2Hits;
            in_l2.dirty = true;
            std::uint32_t fw = 0;
            l1d.fill(line_addr, PrivState::M, Rec ? &fw : nullptr);
            if constexpr (Rec) {
                rec->kind = StepKind::L2WriteHitM;
                rec->l1Way = static_cast<std::int8_t>(fw);
                rec->l2Way = static_cast<std::int8_t>(w2);
            }
            return act;
        }
        ++l2Hits;
        ++upgrades;
        act.needLlc = true;
        act.event = ProtoEvent::UPG;
        if constexpr (Rec) {
            rec->kind = StepKind::L2HitUpg;
            rec->l2Way = static_cast<std::int8_t>(w2);
        }
        return act;
    }
    ++l2Misses;
    act.needLlc = true;
    act.event = op == MemOp::Write ? ProtoEvent::GETX : ProtoEvent::GETS;
    if constexpr (Rec)
        rec->kind = op == MemOp::Write ? StepKind::DataMissWrite
                                       : StepKind::DataMissRead;
    return act;
}

PrivateMissAction
PrivateHierarchy::classify(Addr line_addr, MemOp op, bool is_instr)
{
    return classifyImpl<false>(line_addr, op, is_instr, nullptr);
}

PrivateMissAction
PrivateHierarchy::classifyRecord(Addr line_addr, MemOp op, bool is_instr,
                                 StepRecord &rec)
{
    return classifyImpl<true>(line_addr, op, is_instr, &rec);
}

template <bool Rec>
bool
PrivateHierarchy::fillImpl(Addr line_addr, bool is_instr, bool writable,
                           Addr &evict_line, bool &evict_dirty,
                           StepRecord *rec)
{
    const PrivState st = writable ? PrivState::M : PrivState::S;
    std::uint32_t l2w = 0;
    TagStore::Eviction ev = l2.fill(line_addr, st, Rec ? &l2w : nullptr);
    if (writable) {
        // The pending write completes right after the fill.
        TagStore::Way *w = l2.lookup(line_addr);
        RC_ASSERT(w, "line vanished during fill");
        w->dirty = true;
    }

    if (ev.valid) {
        // Inclusion within the private hierarchy: an L2 victim may not
        // linger in the L1s.
        l1i.invalidate(ev.lineAddr);
        l1d.invalidate(ev.lineAddr);
    }

    std::uint32_t l1w = 0;
    if (is_instr)
        l1i.fill(line_addr, PrivState::S, Rec ? &l1w : nullptr);
    else
        l1d.fill(line_addr, st, Rec ? &l1w : nullptr);

    if constexpr (Rec) {
        rec->l1Way = static_cast<std::int8_t>(l1w);
        rec->l2Way = static_cast<std::int8_t>(l2w);
        if (ev.valid) {
            rec->victimLine = ev.lineAddr;
            rec->flags |= StepRecord::kVictim;
            if (ev.dirty)
                rec->flags |= StepRecord::kVictimDirty;
        }
    }

    evict_line = ev.lineAddr;
    evict_dirty = ev.dirty;
    return ev.valid;
}

bool
PrivateHierarchy::fill(Addr line_addr, bool is_instr, bool writable,
                       Addr &evict_line, bool &evict_dirty)
{
    return fillImpl<false>(line_addr, is_instr, writable, evict_line,
                           evict_dirty, nullptr);
}

bool
PrivateHierarchy::fillRecord(Addr line_addr, bool is_instr, bool writable,
                             Addr &evict_line, bool &evict_dirty,
                             StepRecord &rec)
{
    return fillImpl<true>(line_addr, is_instr, writable, evict_line,
                          evict_dirty, &rec);
}

bool
PrivateHierarchy::fillPrefetch(Addr line_addr, Addr &evict_line,
                               bool &evict_dirty)
{
    if (l2.peek(line_addr))
        return false;
    TagStore::Eviction ev = l2.fill(line_addr, PrivState::S);
    if (ev.valid) {
        l1i.invalidate(ev.lineAddr);
        l1d.invalidate(ev.lineAddr);
    }
    evict_line = ev.lineAddr;
    evict_dirty = ev.dirty;
    return ev.valid;
}

template <bool Rec>
void
PrivateHierarchy::upgradedImpl(Addr line_addr, StepRecord *rec)
{
    const std::int32_t w2 = l2.lookupWay(line_addr);
    RC_ASSERT(w2 >= 0, "upgrade completion for a non-resident line");
    TagStore::Way &w = l2.wayAt(line_addr, w2);
    w.state = PrivState::M;
    w.dirty = true;
    const std::int32_t w1 = l1d.lookupWay(line_addr);
    if (w1 >= 0) {
        l1d.wayAt(line_addr, w1).state = PrivState::M;
        if constexpr (Rec) {
            rec->l1Way = static_cast<std::int8_t>(w1);
            rec->flags |= StepRecord::kUpgL1Hit;
        }
    } else {
        std::uint32_t fw = 0;
        l1d.fill(line_addr, PrivState::M, Rec ? &fw : nullptr);
        if constexpr (Rec)
            rec->l1Way = static_cast<std::int8_t>(fw);
    }
    if constexpr (Rec)
        rec->l2Way = static_cast<std::int8_t>(w2);
}

void
PrivateHierarchy::upgraded(Addr line_addr)
{
    upgradedImpl<false>(line_addr, nullptr);
}

void
PrivateHierarchy::upgradedRecord(Addr line_addr, StepRecord &rec)
{
    upgradedImpl<true>(line_addr, &rec);
}

PrivateMissAction
PrivateHierarchy::actionOf(const StepRecord &rec) const
{
    PrivateMissAction act;
    act.latency = cfg.l1Latency;
    switch (rec.kind) {
    case StepKind::L1IHit:
    case StepKind::L1DReadHit:
    case StepKind::L1DWriteHitM:
        break;
    case StepKind::L1IL2Hit:
    case StepKind::L2ReadHit:
    case StepKind::L2WriteHitM:
        act.latency += cfg.l2Latency;
        break;
    case StepKind::L1DWriteHitUpg:
    case StepKind::L2HitUpg:
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::UPG;
        break;
    case StepKind::InstrMiss:
    case StepKind::DataMissRead:
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::GETS;
        break;
    case StepKind::DataMissWrite:
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::GETX;
        break;
    }
    return act;
}

PrivateMissAction
PrivateHierarchy::applyClassify(const StepRecord &rec)
{
    // Mutations, counter bumps and LRU-clock (++tick) sequences below
    // replicate classifyImpl()'s per-kind paths exactly; touchAt/
    // installAt each advance the store's tick once, just as the
    // lookup/fill they stand in for did.  The miss action is built in
    // the same switch (one dispatch on the record kind, not two) and
    // matches actionOf() case for case.
    const Addr line = rec.line;
    PrivateMissAction act;
    act.latency = cfg.l1Latency;
    switch (rec.kind) {
    case StepKind::L1IHit:
        ++l1iHits;
        l1i.touchAt(line, rec.l1Way);
        break;
    case StepKind::L1IL2Hit:
        ++l1iMisses;
        ++l2Hits;
        l2.touchAt(line, rec.l2Way);
        l1i.installAt(line, rec.l1Way, PrivState::S);
        act.latency += cfg.l2Latency;
        break;
    case StepKind::InstrMiss:
        ++l1iMisses;
        ++l2Misses;
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::GETS;
        break;
    case StepKind::L1DReadHit:
        ++l1dHits;
        l1d.touchAt(line, rec.l1Way);
        break;
    case StepKind::L1DWriteHitM:
        ++l1dHits;
        l1d.touchAt(line, rec.l1Way);
        l2.touchAt(line, rec.l2Way);
        l2.wayAt(line, rec.l2Way).dirty = true;
        break;
    case StepKind::L1DWriteHitUpg:
        ++l1dHits;
        l1d.touchAt(line, rec.l1Way);
        l2.touchAt(line, rec.l2Way);
        ++upgrades;
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::UPG;
        break;
    case StepKind::L2ReadHit:
        ++l1dMisses;
        ++l2Hits;
        l2.touchAt(line, rec.l2Way);
        l1d.installAt(line, rec.l1Way, rec.fillState());
        act.latency += cfg.l2Latency;
        break;
    case StepKind::L2WriteHitM:
        ++l1dMisses;
        ++l2Hits;
        l2.touchAt(line, rec.l2Way);
        l2.wayAt(line, rec.l2Way).dirty = true;
        l1d.installAt(line, rec.l1Way, PrivState::M);
        act.latency += cfg.l2Latency;
        break;
    case StepKind::L2HitUpg:
        ++l1dMisses;
        ++l2Hits;
        ++upgrades;
        l2.touchAt(line, rec.l2Way);
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::UPG;
        break;
    case StepKind::DataMissRead:
        ++l1dMisses;
        ++l2Misses;
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::GETS;
        break;
    case StepKind::DataMissWrite:
        ++l1dMisses;
        ++l2Misses;
        act.latency += cfg.l2Latency;
        act.needLlc = true;
        act.event = ProtoEvent::GETX;
        break;
    }
    return act;
}

bool
PrivateHierarchy::applyFill(const StepRecord &rec, Addr &evict_line,
                            bool &evict_dirty)
{
    const Addr line = rec.line;
    const bool is_instr = rec.kind == StepKind::InstrMiss;
    const bool writable = rec.kind == StepKind::DataMissWrite;
    const PrivState st = writable ? PrivState::M : PrivState::S;

    // The victim is whatever occupies the recorded way; under the
    // replay-validity contract it must equal the recorded victim.
    TagStore::Eviction ev = l2.occupantAt(line, rec.l2Way);
    RC_ASSERT(ev.valid == rec.hasVictim() &&
                  (!ev.valid || ev.lineAddr == rec.victimLine),
              "fan-out fill victim diverged from the recorded victim");
    l2.installAt(line, rec.l2Way, st);
    if (writable) {
        l2.touchAt(line, rec.l2Way);
        l2.wayAt(line, rec.l2Way).dirty = true;
    }
    if (ev.valid) {
        l1i.invalidate(ev.lineAddr);
        l1d.invalidate(ev.lineAddr);
    }
    if (is_instr)
        l1i.installAt(line, rec.l1Way, PrivState::S);
    else
        l1d.installAt(line, rec.l1Way, st);

    evict_line = ev.lineAddr;
    evict_dirty = ev.dirty;
    return ev.valid;
}

void
PrivateHierarchy::applyUpgraded(const StepRecord &rec)
{
    const Addr line = rec.line;
    l2.touchAt(line, rec.l2Way);
    TagStore::Way &w2 = l2.wayAt(line, rec.l2Way);
    w2.state = PrivState::M;
    w2.dirty = true;
    if ((rec.flags & StepRecord::kUpgL1Hit) != 0) {
        l1d.touchAt(line, rec.l1Way);
        l1d.wayAt(line, rec.l1Way).state = PrivState::M;
    } else {
        l1d.installAt(line, rec.l1Way, PrivState::M);
    }
}

bool
PrivateHierarchy::invalidate(Addr line_addr)
{
    ++recalls;
    l1i.invalidate(line_addr);
    l1d.invalidate(line_addr);
    TagStore::Eviction ev = l2.invalidate(line_addr);
    if (ev.valid && ev.dirty) {
        ++dirtyRecalls;
        return true;
    }
    return false;
}

bool
PrivateHierarchy::downgrade(Addr line_addr)
{
    TagStore::Way *w = l2.lookup(line_addr);
    if (!w)
        return false;
    const bool was_dirty = w->dirty;
    w->state = PrivState::S;
    w->dirty = false;
    if (TagStore::Way *l1w = l1d.lookup(line_addr)) {
        l1w->state = PrivState::S;
        l1w->dirty = false;
    }
    return was_dirty;
}

bool
PrivateHierarchy::present(Addr line_addr) const
{
    return l2.peek(line_addr) != nullptr;
}

void
PrivateHierarchy::forEachL2Resident(
    const std::function<void(Addr, const TagStore::Way &)> &fn) const
{
    l2.forEachResident(fn);
}

void
PrivateHierarchy::forEachL1Resident(
    const std::function<void(Addr, const TagStore::Way &, bool)> &fn) const
{
    l1i.forEachResident(
        [&](Addr line, const TagStore::Way &w) { fn(line, w, true); });
    l1d.forEachResident(
        [&](Addr line, const TagStore::Way &w) { fn(line, w, false); });
}

PrivState
PrivateHierarchy::state(Addr line_addr) const
{
    const TagStore::Way *w = l2.peek(line_addr);
    return w ? w->state : PrivState::I;
}

void
TagStore::save(Serializer &s) const
{
    // Same image as the original AoS layout: interleaved per-way
    // (tag, state, dirty) records, then the valid lane, then the LRU
    // state in the "repl" section exactly as LruPolicy::save framed it.
    s.putU64(payload.size());
    for (std::uint64_t i = 0; i < payload.size(); ++i) {
        // Invalid ways serialize a zero tag, exactly the bytes the AoS
        // layout wrote (the in-memory sentinel is a scan-time detail).
        s.putU64(valid[i] ? tags[i] : 0);
        s.putU8(static_cast<std::uint8_t>(payload[i].state));
        s.putBool(payload[i].dirty);
    }
    saveVec(s, valid);
    s.beginSection("repl");
    s.putU64(tick);
    saveVec(s, stamp);
    s.endSection();
}

void
TagStore::restore(Deserializer &d)
{
    const std::uint64_t count = d.getU64();
    if (count != payload.size())
        throwSimError(SimError::Kind::Snapshot,
                      "tag store holds %zu ways but the checkpoint "
                      "carries %llu", payload.size(),
                      static_cast<unsigned long long>(count));
    for (std::uint64_t i = 0; i < payload.size(); ++i) {
        tags[i] = d.getU64();
        payload[i].state = static_cast<PrivState>(d.getU8());
        payload[i].dirty = d.getBool();
    }
    restoreVec(d, valid, "tag-store valid bits");
    for (std::uint64_t i = 0; i < payload.size(); ++i) {
        if (!valid[i])
            tags[i] = invalidTag;
    }
    d.beginSection("repl");
    tick = d.getU64();
    restoreVec(d, stamp, "LRU stamps");
    d.endSection();
}

void
PrivateHierarchy::save(Serializer &s) const
{
    s.beginSection("l1i");
    l1i.save(s);
    s.endSection();
    s.beginSection("l1d");
    l1d.save(s);
    s.endSection();
    s.beginSection("l2");
    l2.save(s);
    s.endSection();
    statSet.save(s);
}

void
PrivateHierarchy::restore(Deserializer &d)
{
    d.beginSection("l1i");
    l1i.restore(d);
    d.endSection();
    d.beginSection("l1d");
    l1d.restore(d);
    d.endSection();
    d.beginSection("l2");
    l2.restore(d);
    d.endSection();
    statSet.restore(d);
}

} // namespace rc
