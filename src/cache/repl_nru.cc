#include "cache/policies.hh"

#include "snapshot/serializer.hh"

#include "common/log.hh"

namespace rc
{

NruPolicy::NruPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      used(num_sets * num_ways, 0)
{
}





bool
NruPolicy::usedBit(std::uint64_t set, std::uint32_t way) const
{
    return used[set * ways + way] != 0;
}

bool
NruPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t s = 0; s < sets; ++s) {
        const std::uint64_t base = s * ways;
        bool all_set = true;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (used[base + w] > 1) {
                if (why)
                    *why = "NRU bit (" + std::to_string(s) + "," +
                           std::to_string(w) + ") = " +
                           std::to_string(used[base + w]) + ", not 0/1";
                return false;
            }
            all_set = all_set && used[base + w];
        }
        // markUsed() ages the set whenever the last zero would vanish,
        // so an all-ones set means the metadata was tampered with.
        if (all_set && ways > 1) {
            if (why)
                *why = "NRU set " + std::to_string(s) +
                       " has every bit set (no victim candidate)";
            return false;
        }
    }
    return true;
}

bool
NruPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    used[set * ways + way] = 0xff;
    return true;
}

void
NruPolicy::save(Serializer &s) const
{
    saveVec(s, used);
}

void
NruPolicy::restore(Deserializer &d)
{
    restoreVec(d, used, "NRU used bits");
}

} // namespace rc
