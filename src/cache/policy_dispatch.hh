/**
 * @file
 * Devirtualized replacement-policy dispatch for the per-access hot path.
 *
 * The policy set is sealed: every ReplKind maps onto one of fourteen
 * concrete `final` classes (SRRIP/BRRIP/DRRIP share RripPolicy, the
 * SHiP and LIP/BIP/DIP families likewise share one class each — see
 * arena/arena_policies.hh for the arena's eight).  PolicyRef pairs
 * the base pointer with an enum tag resolved at construction, so the
 * per-access notifications (onFill / onHit / onInvalidate / victim)
 * compile to a predictable switch over sealed types whose bodies
 * (inline in cache/policies.hh) the compiler can inline — no vtable
 * load, no indirect call, per cache access.
 *
 * The virtual ReplacementPolicy interface remains the boundary for
 * construction (makeReplacement), serialization (save/restore) and the
 * verify layer (metadataSane/corruptMetadata); PolicyRef is only a view
 * over a policy owned elsewhere and holds no state of its own, so a
 * restore() that mutates the policy in place never invalidates it.
 *
 * setForceVirtualReplDispatch(true) — tests only — routes every call
 * through the virtual interface instead, letting the kernel-identity
 * suite compare both dispatch paths inside one process.
 */

#ifndef RC_CACHE_POLICY_DISPATCH_HH
#define RC_CACHE_POLICY_DISPATCH_HH

#include "arena/arena_policies.hh"
#include "cache/policies.hh"

namespace rc
{

namespace detail
{
/** Dispatch escape hatch; write only via setForceVirtualReplDispatch. */
extern bool forceVirtualReplDispatch;
} // namespace detail

/**
 * Test-only toggle: when enabled, PolicyRef forwards through the
 * virtual ReplacementPolicy interface, bypassing the sealed switch.
 * Global (not per-instance) so it costs one predictable branch.
 */
void setForceVirtualReplDispatch(bool enable);

/** Non-owning devirtualized view of a ReplacementPolicy. */
class PolicyRef
{
  public:
    PolicyRef() = default;

    /**
     * @param p the policy instance (owned by the cache; must outlive
     *        this view).
     * @param kind the ReplKind @p p was built from (names the sealed
     *        concrete type).
     */
    PolicyRef(ReplacementPolicy *p, ReplKind kind) : base(p)
    {
        switch (kind) {
          case ReplKind::LRU: tag = Tag::Lru; break;
          case ReplKind::NRU: tag = Tag::Nru; break;
          case ReplKind::NRR: tag = Tag::Nrr; break;
          case ReplKind::Random: tag = Tag::Random; break;
          case ReplKind::Clock: tag = Tag::Clock; break;
          case ReplKind::SRRIP:
          case ReplKind::BRRIP:
          case ReplKind::DRRIP: tag = Tag::Rrip; break;
          case ReplKind::Ship:
          case ReplKind::ShipMem:
          case ReplKind::DuelShip: tag = Tag::Ship; break;
          case ReplKind::Redre: tag = Tag::Redre; break;
          case ReplKind::DeadBlock: tag = Tag::DeadBlock; break;
          case ReplKind::RdAware: tag = Tag::RdAware; break;
          case ReplKind::Lip:
          case ReplKind::Bip:
          case ReplKind::Dip: tag = Tag::Insertion; break;
          case ReplKind::Stream: tag = Tag::Stream; break;
          case ReplKind::Plru: tag = Tag::Plru; break;
          case ReplKind::Mru: tag = Tag::Mru; break;
        }
    }

    void
    onFill(std::uint64_t set, std::uint32_t way,
           const ReplAccess &ctx) const
    {
        if (detail::forceVirtualReplDispatch) {
            base->onFill(set, way, ctx);
            return;
        }
        // The paper's six built-ins occupy the front of the Tag enum:
        // one predictable range compare keeps their dispatch a compact
        // six-way switch (what the kernel number was recorded against
        // before the arena ports widened the tag space), and the arena
        // tail pays the wider switch only when one is actually racing.
        if (tag <= Tag::Rrip) [[likely]] {
            switch (tag) {
              case Tag::Lru:
                static_cast<LruPolicy *>(base)->onFill(set, way, ctx);
                break;
              case Tag::Nru:
                static_cast<NruPolicy *>(base)->onFill(set, way, ctx);
                break;
              case Tag::Nrr:
                static_cast<NrrPolicy *>(base)->onFill(set, way, ctx);
                break;
              case Tag::Random:
                static_cast<RandomPolicy *>(base)->onFill(set, way, ctx);
                break;
              case Tag::Clock:
                static_cast<ClockPolicy *>(base)->onFill(set, way, ctx);
                break;
              default:
                static_cast<RripPolicy *>(base)->onFill(set, way, ctx);
                break;
            }
            return;
        }
        switch (tag) {
          case Tag::Ship:
            static_cast<ShipPolicy *>(base)->onFill(set, way, ctx);
            break;
          case Tag::Redre:
            static_cast<RedrePolicy *>(base)->onFill(set, way, ctx);
            break;
          case Tag::DeadBlock:
            static_cast<DeadBlockPolicy *>(base)->onFill(set, way, ctx);
            break;
          case Tag::RdAware:
            static_cast<RdAwarePolicy *>(base)->onFill(set, way, ctx);
            break;
          case Tag::Insertion:
            static_cast<InsertionPolicy *>(base)->onFill(set, way, ctx);
            break;
          case Tag::Stream:
            static_cast<StreamPolicy *>(base)->onFill(set, way, ctx);
            break;
          case Tag::Plru:
            static_cast<PlruPolicy *>(base)->onFill(set, way, ctx);
            break;
          default:
            static_cast<MruPolicy *>(base)->onFill(set, way, ctx);
            break;
        }
    }

    void
    onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx) const
    {
        if (detail::forceVirtualReplDispatch) {
            base->onHit(set, way, ctx);
            return;
        }
        // Built-ins-first split; see onFill().
        if (tag <= Tag::Rrip) [[likely]] {
            switch (tag) {
              case Tag::Lru:
                static_cast<LruPolicy *>(base)->onHit(set, way, ctx);
                break;
              case Tag::Nru:
                static_cast<NruPolicy *>(base)->onHit(set, way, ctx);
                break;
              case Tag::Nrr:
                static_cast<NrrPolicy *>(base)->onHit(set, way, ctx);
                break;
              case Tag::Random:
                static_cast<RandomPolicy *>(base)->onHit(set, way, ctx);
                break;
              case Tag::Clock:
                static_cast<ClockPolicy *>(base)->onHit(set, way, ctx);
                break;
              default:
                static_cast<RripPolicy *>(base)->onHit(set, way, ctx);
                break;
            }
            return;
        }
        switch (tag) {
          case Tag::Ship:
            static_cast<ShipPolicy *>(base)->onHit(set, way, ctx);
            break;
          case Tag::Redre:
            static_cast<RedrePolicy *>(base)->onHit(set, way, ctx);
            break;
          case Tag::DeadBlock:
            static_cast<DeadBlockPolicy *>(base)->onHit(set, way, ctx);
            break;
          case Tag::RdAware:
            static_cast<RdAwarePolicy *>(base)->onHit(set, way, ctx);
            break;
          case Tag::Insertion:
            static_cast<InsertionPolicy *>(base)->onHit(set, way, ctx);
            break;
          case Tag::Stream:
            static_cast<StreamPolicy *>(base)->onHit(set, way, ctx);
            break;
          case Tag::Plru:
            static_cast<PlruPolicy *>(base)->onHit(set, way, ctx);
            break;
          default:
            static_cast<MruPolicy *>(base)->onHit(set, way, ctx);
            break;
        }
    }

    void
    onInvalidate(std::uint64_t set, std::uint32_t way) const
    {
        if (detail::forceVirtualReplDispatch) {
            base->onInvalidate(set, way);
            return;
        }
        // Only RRIP and the eviction-trained arena predictors override
        // onInvalidate; the base no-op covers the rest (sealed set, so
        // this is by inspection, and the identity suite would catch a
        // policy growing an override).  Built-ins-first: five of the
        // six front tags are that no-op, so the common case is two
        // predictable compares and out.
        if (tag <= Tag::Rrip) [[likely]] {
            if (tag == Tag::Rrip)
                static_cast<RripPolicy *>(base)->onInvalidate(set, way);
            return;
        }
        switch (tag) {
          case Tag::Ship:
            static_cast<ShipPolicy *>(base)->onInvalidate(set, way);
            break;
          case Tag::Redre:
            static_cast<RedrePolicy *>(base)->onInvalidate(set, way);
            break;
          case Tag::DeadBlock:
            static_cast<DeadBlockPolicy *>(base)->onInvalidate(set, way);
            break;
          default:
            break;
        }
    }

    std::uint32_t
    victim(std::uint64_t set, const VictimQuery &q) const
    {
        if (detail::forceVirtualReplDispatch)
            return base->victim(set, q);
        // Built-ins-first split; see onFill().
        if (tag <= Tag::Rrip) [[likely]] {
            switch (tag) {
              case Tag::Lru:
                return static_cast<LruPolicy *>(base)->victim(set, q);
              case Tag::Nru:
                return static_cast<NruPolicy *>(base)->victim(set, q);
              case Tag::Nrr:
                return static_cast<NrrPolicy *>(base)->victim(set, q);
              case Tag::Random:
                return static_cast<RandomPolicy *>(base)->victim(set, q);
              case Tag::Clock:
                return static_cast<ClockPolicy *>(base)->victim(set, q);
              default:
                return static_cast<RripPolicy *>(base)->victim(set, q);
            }
        }
        switch (tag) {
          case Tag::Ship:
            return static_cast<ShipPolicy *>(base)->victim(set, q);
          case Tag::Redre:
            return static_cast<RedrePolicy *>(base)->victim(set, q);
          case Tag::DeadBlock:
            return static_cast<DeadBlockPolicy *>(base)->victim(set, q);
          case Tag::RdAware:
            return static_cast<RdAwarePolicy *>(base)->victim(set, q);
          case Tag::Insertion:
            return static_cast<InsertionPolicy *>(base)->victim(set, q);
          case Tag::Stream:
            return static_cast<StreamPolicy *>(base)->victim(set, q);
          case Tag::Plru:
            return static_cast<PlruPolicy *>(base)->victim(set, q);
          default:
            return static_cast<MruPolicy *>(base)->victim(set, q);
        }
    }

  private:
    /** Sealed concrete types (mode families share one class each).
     *  Order matters: the paper's six built-ins come first so the
     *  dispatch methods can route them with one `tag <= Tag::Rrip`
     *  range compare (see onFill()). */
    enum class Tag : std::uint8_t {
        Lru, Nru, Nrr, Random, Clock, Rrip,
        Ship, Redre, DeadBlock, RdAware, Insertion, Stream, Plru, Mru,
    };

    ReplacementPolicy *base = nullptr;
    Tag tag = Tag::Lru;
};

} // namespace rc

#endif // RC_CACHE_POLICY_DISPATCH_HH
