#include "cache/policies.hh"

#include "snapshot/serializer.hh"

namespace rc
{

ClockPolicy::ClockPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      ref(num_sets * num_ways, 0),
      hands(num_sets, 0)
{
}




std::uint32_t
ClockPolicy::hand(std::uint64_t set) const
{
    return hands[set];
}

bool
ClockPolicy::metadataSane(std::string *why) const
{
    // One hand per set, and it must point at a real way.
    for (std::uint64_t s = 0; s < sets; ++s) {
        if (hands[s] >= ways) {
            if (why)
                *why = "Clock hand of set " + std::to_string(s) + " = " +
                       std::to_string(hands[s]) + ", beyond " +
                       std::to_string(ways) + " ways";
            return false;
        }
    }
    for (std::uint64_t i = 0; i < ref.size(); ++i) {
        if (ref[i] > 1) {
            if (why)
                *why = "Clock reference bit (" + std::to_string(i / ways) +
                       "," + std::to_string(i % ways) + ") = " +
                       std::to_string(ref[i]) + ", not 0/1";
            return false;
        }
    }
    return true;
}

bool
ClockPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    hands[set] = ways + 1 + way;
    return true;
}

void
ClockPolicy::save(Serializer &s) const
{
    saveVec(s, ref);
    saveVec(s, hands);
}

void
ClockPolicy::restore(Deserializer &d)
{
    restoreVec(d, ref, "Clock reference bits");
    restoreVec(d, hands, "Clock hands");
}

} // namespace rc
