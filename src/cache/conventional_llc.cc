#include "cache/conventional_llc.hh"

#include <cstdio>

#include "common/log.hh"
#include "common/wayscan.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

ConventionalLlc::ConventionalLlc(const ConvLlcConfig &cfg_, MemCtrl &mem_)
    : cfg(cfg_),
      geom(CacheGeometry::fromBytes(cfg_.capacityBytes, cfg_.ways)),
      tagLane(geom.numLines(), kInvalidTagLane),
      entries(geom.numLines()),
      repl(makeReplacement(cfg_.repl, geom.numSets(), geom.numWays(),
                           cfg_.numCores, cfg_.seed)),
      fast(repl.get(), cfg_.repl),
      mem(mem_),
      statSet(cfg_.name),
      accesses(statSet.add("accesses", "demand requests received")),
      dataHits(statSet.add("dataHits", "requests served by the data array")),
      tagMisses(statSet.add("tagMisses", "requests missing the tag array")),
      upgradeReqs(statSet.add("upgrades", "UPG requests received")),
      interventions(statSet.add("interventions",
                                "requests served by a private owner")),
      invalidationsSent(statSet.add("invalidationsSent",
                                    "private copies invalidated (GETX/UPG)")),
      inclusionRecalls(statSet.add("inclusionRecalls",
                                   "victims recalled from private caches")),
      dirtyWritebacks(statSet.add("dirtyWritebacks",
                                  "dirty lines written to memory")),
      coreAccesses(cfg_.numCores, 0),
      coreMisses(cfg_.numCores, 0)
{
    RC_ASSERT(cfg.numCores > 0 && cfg.numCores <= 32,
              "full-map directory supports 1..32 cores");
}

ConventionalLlc::Entry *
ConventionalLlc::find(Addr line_addr, std::uint32_t &way_out)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    const std::uint64_t *tl = tagLane.data() + base;
    // Invalid ways hold a sentinel, so one vector scan finds the line.
    // A tag can only match an invalid way after fault injection forced
    // its state to I without a protocol transition; resume the scan
    // past such a candidate instead of reporting a false miss.
    std::int32_t w = scanWays(tl, geom.numWays(), tag);
    while (w >= 0) {
        if (entries[base + w].state != LlcState::I) {
            way_out = static_cast<std::uint32_t>(w);
            return &entries[base + w];
        }
        w = scanWaysFrom(tl, geom.numWays(), tag,
                         static_cast<std::uint32_t>(w) + 1);
    }
    return nullptr;
}

ConventionalLlc::Entry *
ConventionalLlc::find(Addr line_addr)
{
    std::uint32_t way = 0;
    return find(line_addr, way);
}

const ConventionalLlc::Entry *
ConventionalLlc::find(Addr line_addr) const
{
    return const_cast<ConventionalLlc *>(this)->find(line_addr);
}

void
ConventionalLlc::evictEntry(std::uint64_t set, std::uint32_t way, Cycle now)
{
    Entry &e = entries[set * geom.numWays() + way];
    RC_CHECK(e.state != LlcState::I, SimError::Kind::Integrity,
             "evicting an invalid entry");
    const Addr line = geom.lineAddr(tagLane[set * geom.numWays() + way], set);

    ProtoInput in{e.state, ProtoEvent::TagRepl, e.dir.hasOwner(), false};
    const ProtoResult res = protocolTransition(in);
    RC_CHECK(res.legal, SimError::Kind::Protocol,
             "TagRepl illegal in state %s", toString(e.state));

    bool dirty_recalled = false;
    if ((res.actions & ActRecallSharers) && !e.dir.empty()) {
        RC_CHECK(recaller, SimError::Kind::Config,
                 "no recall handler installed");
        dirty_recalled = recaller->recall(line, e.dir.presenceMask());
        ++inclusionRecalls;
    }
    if (res.actions & ActWriteMemData) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }
    if ((res.actions & ActWriteMemPut) && dirty_recalled) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }

    if (watcher)
        watcher->onDataEvict(line, now);

    e.state = LlcState::I;
    e.dir.clear();
    tagLane[set * geom.numWays() + way] = kInvalidTagLane;
    fast.onInvalidate(set, way);
}

std::uint32_t
ConventionalLlc::allocateWay(Addr line_addr, const LlcRequest &req)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t base = set * geom.numWays();

    for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
        if (entries[base + w].state == LlcState::I)
            return w;
    }

    VictimQuery q;
    q.core = req.core;
    q.pc = req.pc;
    q.lineAddr = line_addr;
    for (std::uint32_t w = 0; w < geom.numWays() && w < 64; ++w) {
        if (!entries[base + w].dir.empty())
            q.avoidMask |= std::uint64_t{1} << w;
    }
    const std::uint32_t w = fast.victim(set, q);
    RC_CHECK(w < geom.numWays(), SimError::Kind::Integrity,
             "victim way out of range");
    evictEntry(set, w, req.now);
    return w;
}

LlcResponse
ConventionalLlc::request(const LlcRequest &req)
{
    const Addr line = lineAlign(req.lineAddr);
    ++accesses;
    ++coreAccesses[req.core % coreAccesses.size()];
    if (req.event == ProtoEvent::UPG)
        ++upgradeReqs;

    const std::uint64_t set = geom.setIndex(line);
    std::uint32_t hitWay = 0;
    Entry *entry = find(line, hitWay);

    const bool owner_valid = entry && entry->dir.hasOwner();
    RC_CHECK(!owner_valid || entry->dir.owner() != req.core,
             SimError::Kind::Protocol,
             "owner cannot request its own line at the SLLC");

    ProtoInput in;
    in.state = entry ? entry->state : LlcState::I;
    in.event = req.event;
    in.ownerValid = owner_valid;
    in.selectiveAlloc = false;
    // Conventional caches always allocate data; prefetch priority is
    // handled below at insertion/promotion time.
    const ProtoResult res = protocolTransition(in);
    RC_CHECK(res.legal, SimError::Kind::Protocol, "%s illegal in state %s",
             toString(req.event), toString(in.state));

    LlcResponse resp;
    resp.tagHit = entry != nullptr;
    Cycle done = req.now + cfg.tagLatency;

    if (res.actions & ActDataHit) {
        done += cfg.dataLatency;
        resp.dataHit = true;
        ++dataHits;
        if (watcher)
            watcher->onDataHit(line, req.now);
    }

    if (res.actions & ActFetchOwner) {
        RC_CHECK(recaller && entry, SimError::Kind::Config,
                 "intervention needs owner context");
        done += cfg.interventionLatency;
        ++interventions;
        if (req.event == ProtoEvent::GETS) {
            // Read intervention: the owner keeps a shared clean copy.
            recaller->downgrade(line,
                                1u << entry->dir.owner());
        }
        // For GETX the InvSharers recall below retrieves the dirty data
        // while invalidating the old owner.
    }

    if (res.actions & ActInvSharers) {
        RC_CHECK(entry, SimError::Kind::Protocol,
                 "invalidation needs a directory entry");
        const std::uint32_t mask = entry->dir.othersMask(req.core);
        if (mask) {
            RC_CHECK(recaller, SimError::Kind::Config,
                     "no recall handler installed");
            recaller->recall(line, mask);
            invalidationsSent += __builtin_popcount(mask);
            for (CoreId c = 0; c < cfg.numCores; ++c) {
                if (mask & (1u << c))
                    entry->dir.removeSharer(c);
            }
        }
    }

    if (res.actions & ActFetchMem) {
        // Conventional caches only fetch on a tag miss.
        done = mem.readLine(line, req.now + cfg.tagLatency);
        resp.memFetched = true;
        ++tagMisses;
        ++coreMisses[req.core % coreMisses.size()];
    }

    if (entry) {
        // Hit path: update state, directory and recency.
        entry->state = res.next;
        if (res.actions & ActClearOwner)
            entry->dir.clearOwner();
        if (res.actions & ActFillPrivate)
            entry->dir.addSharer(req.core);
        if (res.actions & ActSetOwner)
            entry->dir.setOwner(req.core);
        if (!req.prefetch)
            fast.onHit(set, hitWay,
                       ReplAccess{req.core, false, false, req.pc, line});
    } else {
        RC_CHECK(res.actions & ActAllocTag, SimError::Kind::Protocol,
                 "miss without tag allocation");
        const std::uint32_t way = allocateWay(line, req);
        Entry &e = entries[set * geom.numWays() + way];
        tagLane[set * geom.numWays() + way] = geom.tagOf(line);
        e.state = res.next;
        e.dir.clear();
        if (res.actions & ActFillPrivate)
            e.dir.addSharer(req.core);
        if (res.actions & ActSetOwner)
            e.dir.setOwner(req.core);
        // Prefetched fills enter at the lowest priority [Srinath+07,
        // Wu+11]; with LRU that is the LRU position.
        fast.onFill(set, way,
                    ReplAccess{req.core, true, req.prefetch, req.pc, line});
        if ((res.actions & ActAllocData) && watcher)
            watcher->onDataFill(line, req.now);
    }

    resp.doneAt = done;
#if RC_TRACE_ENABLED
    if (EventTracer *tr = EventTracer::current(); tr && tr->enabled()) {
        tr->record(resp.dataHit ? "llc.hit" : "llc.miss",
                   TraceDomain::Sim, req.core, req.now, done - req.now,
                   line);
        if (const char *coh = coherenceTraceLabel(res.actions))
            tr->record(coh, TraceDomain::Sim, req.core, req.now, 0, line);
    }
#endif
    return resp;
}

void
ConventionalLlc::evictNotify(Addr line_addr, CoreId core, bool dirty,
                             Cycle now)
{
    const Addr line = lineAlign(line_addr);
    Entry *entry = find(line);
    RC_CHECK(entry, SimError::Kind::Integrity,
             "eviction notification for a non-resident line "
             "(inclusion violated)");

    ProtoInput in;
    in.state = entry->state;
    in.event = dirty ? ProtoEvent::PUTX : ProtoEvent::PUTS;
    in.ownerValid = entry->dir.hasOwner();
    in.selectiveAlloc = false;
    const ProtoResult res = protocolTransition(in);
    RC_CHECK(res.legal, SimError::Kind::Protocol, "%s illegal in state %s",
             toString(in.event), toString(in.state));

    if (res.actions & ActWriteMemPut) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }
    entry->state = res.next;
    if (res.actions & ActClearOwner)
        entry->dir.clearOwner();
    entry->dir.removeSharer(core);
}

Counter
ConventionalLlc::missesBy(CoreId core) const
{
    return coreMisses[core % coreMisses.size()];
}

Counter
ConventionalLlc::accessesBy(CoreId core) const
{
    return coreAccesses[core % coreAccesses.size()];
}

std::string
ConventionalLlc::describe() const
{
    const double mb =
        static_cast<double>(cfg.capacityBytes) / (1024.0 * 1024.0);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "conv-%.3gMB-%s", mb,
                  toString(cfg.repl));
    return buf;
}

void
ConventionalLlc::forEachResident(
    const std::function<void(Addr, LlcState, const DirectoryEntry &)> &fn)
    const
{
    for (std::uint64_t s = 0; s < geom.numSets(); ++s) {
        const std::uint64_t base = s * geom.numWays();
        for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
            const Entry &e = entries[base + w];
            if (e.state != LlcState::I)
                fn(geom.lineAddr(tagLane[base + w], s), e.state, e.dir);
        }
    }
}

std::uint64_t
ConventionalLlc::dataLinesResident() const
{
    std::uint64_t n = 0;
    for (const Entry &e : entries) {
        if (e.state != LlcState::I)
            ++n;
    }
    return n;
}

DirectoryEntry *
ConventionalLlc::dirOfMut(Addr line_addr)
{
    Entry *e = find(lineAlign(line_addr));
    return e ? &e->dir : nullptr;
}

bool
ConventionalLlc::corruptStateForTest(Addr line_addr, LlcState state)
{
    Entry *e = find(lineAlign(line_addr));
    if (!e)
        return false;
    e->state = state;
    return true;
}

LlcState
ConventionalLlc::stateOf(Addr line_addr) const
{
    const Entry *e = find(lineAlign(line_addr));
    return e ? e->state : LlcState::I;
}

const DirectoryEntry *
ConventionalLlc::dirOf(Addr line_addr) const
{
    const Entry *e = find(lineAlign(line_addr));
    return e ? &e->dir : nullptr;
}

void
ConventionalLlc::save(Serializer &s) const
{
    s.putU64(entries.size());
    for (std::uint64_t i = 0; i < entries.size(); ++i) {
        // Invalid ways serialize a zero tag: the canonical image stays
        // independent of the in-memory scan sentinel.
        s.putU64(entries[i].state != LlcState::I ? tagLane[i] : 0);
        s.putU8(static_cast<std::uint8_t>(entries[i].state));
        entries[i].dir.save(s);
    }
    s.beginSection("repl");
    repl->save(s);
    s.endSection();
    statSet.save(s);
    saveVec(s, coreAccesses);
    saveVec(s, coreMisses);
}

void
ConventionalLlc::restore(Deserializer &d)
{
    const std::uint64_t count = d.getU64();
    if (count != entries.size())
        throwSimError(SimError::Kind::Snapshot,
                      "conventional LLC holds %zu entries but the "
                      "checkpoint carries %llu", entries.size(),
                      static_cast<unsigned long long>(count));
    for (std::uint64_t i = 0; i < entries.size(); ++i) {
        tagLane[i] = d.getU64();
        entries[i].state = static_cast<LlcState>(d.getU8());
        entries[i].dir.restore(d);
        if (entries[i].state == LlcState::I)
            tagLane[i] = kInvalidTagLane;
    }
    d.beginSection("repl");
    repl->restore(d);
    d.endSection();
    statSet.restore(d);
    restoreVec(d, coreAccesses, "per-core LLC accesses");
    restoreVec(d, coreMisses, "per-core LLC misses");
}

} // namespace rc
