/**
 * @file
 * Per-core stride prefetcher (L2-side).
 *
 * Section 6 of the paper discusses how an SLLC should treat prefetched
 * data: "prefetched data should be assigned a lower priority than the
 * data actually demanded" [Srinath+, Wu+], and notes the reuse cache
 * adopts this naturally by "considering prefetched lines to have a
 * priority as low as the non-reused data".  This module provides the
 * prefetch traffic those policies act on: a classic region-based stride
 * detector observing the L2 miss stream.
 */

#ifndef RC_CACHE_PREFETCHER_HH
#define RC_CACHE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rc
{

/** Prefetcher configuration. */
struct PrefetcherConfig
{
    bool enable = false;
    std::uint32_t degree = 2;        //!< lines prefetched per trigger
    std::uint32_t tableEntries = 16; //!< tracked regions (power of two)
    std::uint32_t regionShift = 12;  //!< region granularity (4 KB pages)
    std::uint32_t minConfidence = 1; //!< stride repeats before issuing
};

/**
 * Region-based stride detector: one table entry per recently missing
 * region tracks the last miss line and the current stride; a stride
 * seen `minConfidence` times triggers prefetches of the next `degree`
 * strided lines.
 */
class StridePrefetcher
{
  public:
    /** @param cfg parameters; @param name stat-set name. */
    StridePrefetcher(const PrefetcherConfig &cfg, const std::string &name);

    /**
     * Observe a demand L2 miss and collect prefetch candidates.
     * @param line_addr missing line (line-aligned).
     * @param out candidate line addresses appended here.
     */
    void observeMiss(Addr line_addr, std::vector<Addr> &out);

    /** Counters (triggers, candidates). */
    const StatSet &stats() const { return statSet; }

    /** Checkpoint the region table and counters. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t regionTag = 0;
        std::int64_t lastLine = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
    };

    PrefetcherConfig cfg;
    std::vector<Entry> table;

    StatSet statSet;
    Counter &misses;
    Counter &triggers;
    Counter &candidates;
};

} // namespace rc

#endif // RC_CACHE_PREFETCHER_HH
