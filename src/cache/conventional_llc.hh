/**
 * @file
 * Conventional inclusive SLLC: the paper's baseline (Table 4).
 *
 * Tag and data are coupled one-to-one, every miss allocates both
 * (non-selective allocation), and a full-map directory keeps the private
 * levels coherent.  Replacement is pluggable: LRU for the baseline,
 * TA-DRRIP and NRR for the Section 5.5 comparisons.
 */

#ifndef RC_CACHE_CONVENTIONAL_LLC_HH
#define RC_CACHE_CONVENTIONAL_LLC_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/geometry.hh"
#include "cache/llc_iface.hh"
#include "cache/policy_dispatch.hh"
#include "cache/replacement.hh"
#include "coherence/directory.hh"
#include "mem/memctrl.hh"

namespace rc
{

/** Conventional SLLC configuration. */
struct ConvLlcConfig
{
    std::uint64_t capacityBytes = 8ull << 20; //!< 8 MB baseline
    std::uint32_t ways = 16;
    ReplKind repl = ReplKind::LRU;
    std::uint32_t numCores = 8;
    Cycle tagLatency = 2;          //!< serial tag-array portion
    Cycle dataLatency = 8;         //!< data-array portion (hit = tag+data)
    Cycle interventionLatency = 14; //!< fetch from a private owner
    std::uint64_t seed = 1;
    std::string name = "llc";
};

/** The baseline inclusive SLLC. */
class ConventionalLlc : public Sllc
{
  public:
    /**
     * @param cfg geometry, policy and latencies.
     * @param mem memory controller servicing misses (not owned).
     */
    ConventionalLlc(const ConvLlcConfig &cfg, MemCtrl &mem);

    LlcResponse request(const LlcRequest &req) override;
    void evictNotify(Addr line_addr, CoreId core, bool dirty,
                     Cycle now) override;
    void setRecallHandler(RecallHandler *handler) override { recaller = handler; }
    void setObserver(LlcObserver *observer) override { watcher = observer; }
    const StatSet &stats() const override { return statSet; }
    Counter missesBy(CoreId core) const override;
    Counter accessesBy(CoreId core) const override;
    std::string describe() const override;
    std::uint64_t dataLinesResident() const override;
    std::uint64_t dataLinesTotal() const override { return geom.numLines(); }
    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

    /** Directory/state of a resident line (tests); I when absent. */
    LlcState stateOf(Addr line_addr) const;

    /** Directory entry of a resident line (tests); nullptr when absent. */
    const DirectoryEntry *dirOf(Addr line_addr) const;

    /** Geometry in force. */
    const CacheGeometry &geometry() const { return geom; }

    /**
     * Verify layer: visit every resident line with its state and
     * directory entry (no replacement-state side effects).
     */
    void forEachResident(
        const std::function<void(Addr, LlcState, const DirectoryEntry &)>
            &fn) const;

    /** Verify layer: the replacement policy (metadata sanity walks). */
    const ReplacementPolicy &policy() const { return *repl; }

    /** Fault-injection hook: mutable replacement policy. */
    ReplacementPolicy &policyMut() { return *repl; }

    /** Fault-injection hook: mutable directory of a resident line. */
    DirectoryEntry *dirOfMut(Addr line_addr);

    /**
     * Fault-injection hook: overwrite the state of a resident line
     * without any protocol action (e.g. force the reuse-cache-only TO
     * encoding, which is illegal here).
     * @return false when the line is not resident.
     */
    bool corruptStateForTest(Addr line_addr, LlcState state);

  private:
    /**
     * Per-way payload; the tag lives in a separate contiguous lane
     * (`tagLane`) so find() scans packed 64-bit tags instead of
     * striding over directory state.
     */
    struct Entry
    {
        LlcState state = LlcState::I;
        DirectoryEntry dir;
    };

    /** Locate a resident line; on a hit @p way_out names its way. */
    Entry *find(Addr line_addr, std::uint32_t &way_out);
    Entry *find(Addr line_addr);
    const Entry *find(Addr line_addr) const;
    std::uint32_t allocateWay(Addr line_addr, const LlcRequest &req);
    void evictEntry(std::uint64_t set, std::uint32_t way, Cycle now);

    ConvLlcConfig cfg;
    CacheGeometry geom;
    std::vector<std::uint64_t> tagLane; //!< SoA tag lane (the scan key)
    std::vector<Entry> entries;
    std::unique_ptr<ReplacementPolicy> repl;
    PolicyRef fast; //!< devirtualized view of *repl for the hot path
    MemCtrl &mem;
    RecallHandler *recaller = nullptr;
    LlcObserver *watcher = nullptr;

    StatSet statSet;
    Counter &accesses;
    Counter &dataHits;
    Counter &tagMisses;
    Counter &upgradeReqs;
    Counter &interventions;
    Counter &invalidationsSent;
    Counter &inclusionRecalls;
    Counter &dirtyWritebacks;
    std::vector<Counter> coreAccesses;
    std::vector<Counter> coreMisses;
};

} // namespace rc

#endif // RC_CACHE_CONVENTIONAL_LLC_HH
