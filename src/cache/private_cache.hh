/**
 * @file
 * Private per-core cache hierarchy: L1 instruction, L1 data and a
 * unified write-back L2 that is inclusive of both L1s (Table 4 of the
 * paper: 32 KB 4-way L1 I/D, 256 KB 8-way L2).
 *
 * Coherence state (MSI) and dirtiness live at the L2; the L1s act as
 * latency filters whose contents are always a subset of the L2.
 */

#ifndef RC_CACHE_PRIVATE_CACHE_HH
#define RC_CACHE_PRIVATE_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/geometry.hh"
#include "cache/line.hh"
#include "coherence/protocol.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rc
{

/** Sizing and latencies of one core's private hierarchy. */
struct PrivateConfig
{
    std::uint64_t l1Bytes = 32 * 1024;   //!< per L1 (I and D each)
    std::uint32_t l1Ways = 4;
    Cycle l1Latency = 1;
    std::uint64_t l2Bytes = 256 * 1024;
    std::uint32_t l2Ways = 8;
    Cycle l2Latency = 7;
};

/**
 * Simple set-associative tag store with LRU replacement; payload is the
 * MSI state plus a dirty bit (only used by the L2 instance).
 *
 * Storage is structure-of-arrays: the way-scan in lookup()/peek()
 * compares a contiguous tag lane and only touches the payload on a hit.
 * Invalid ways hold a sentinel tag no 40-bit address can produce, so
 * the scan is a single compare per way with no validity load; the
 * validity lane still exists for fills, counting and serialization
 * (snapshots store 0 for invalid slots, exactly as the AoS layout did).
 * The LRU stamps live inline as another lane rather than behind a
 * ReplacementPolicy — the policy is fixed, and the serialized image
 * keeps the exact framing the old LruPolicy member produced.
 */
class TagStore
{
  public:
    /** Payload of one resident line (the tag lives in the tag lane). */
    struct Way
    {
        PrivState state = PrivState::I;
        bool dirty = false;
    };

    /** Result of evicting to make room. */
    struct Eviction
    {
        bool valid = false;    //!< an occupied way was displaced
        Addr lineAddr = 0;
        PrivState state = PrivState::I;
        bool dirty = false;
    };

    TagStore(const CacheGeometry &geometry, const std::string &name);

    /** @return pointer to the resident way, or nullptr on miss.
     *  Hits update LRU. */
    Way *lookup(Addr line_addr);

    /** Peek without touching LRU state. */
    const Way *peek(Addr line_addr) const;

    /**
     * Install @p line_addr with @p state, evicting the LRU way of the
     * target set if it is full.
     */
    Eviction fill(Addr line_addr, PrivState state);

    /** Drop @p line_addr if present. @return the displaced way info. */
    Eviction invalidate(Addr line_addr);

    /** Number of valid lines (for tests). */
    std::uint64_t residentCount() const;

    /**
     * Verify layer: visit every resident line without touching LRU
     * state (line address reconstructed from tag and set).
     */
    void forEachResident(
        const std::function<void(Addr, const Way &)> &fn) const;

    /** Geometry in force. */
    const CacheGeometry &geometry() const { return geom; }

    /** Checkpoint resident ways, valid bits and replacement metadata. */
    void save(Serializer &s) const;

    /** Restore a save()'d image; throws SimError(Snapshot) on geometry
     *  drift. */
    void restore(Deserializer &d);

  private:
    /** Tag-lane value of an invalid way (beyond any 40-bit address). */
    static constexpr std::uint64_t invalidTag = ~std::uint64_t{0};

    /** LRU victim: first way carrying the strictly smallest stamp. */
    std::uint32_t lruVictim(std::uint64_t set) const;

    CacheGeometry geom;
    std::vector<std::uint64_t> tags;    //!< tag lane (the scan key)
    std::vector<std::uint8_t> valid;    //!< validity lane
    std::vector<Way> payload;           //!< state + dirty per way
    std::vector<std::uint64_t> stamp;   //!< LRU stamp lane
    std::uint64_t tick = 0;             //!< monotonic LRU clock
};

/** What the private hierarchy needs from the outside world for a miss. */
struct PrivateMissAction
{
    bool needLlc = false;       //!< must send `event` to the SLLC
    ProtoEvent event = ProtoEvent::GETS;
    Cycle latency = 0;          //!< private-level latency accumulated
};

/**
 * One core's L1I + L1D + L2.  The CMP simulator calls classify() to learn
 * whether an access completes privately, then (on a miss or upgrade)
 * performs the SLLC transaction itself and completes the access with
 * fill().
 */
class PrivateHierarchy
{
  public:
    PrivateHierarchy(const PrivateConfig &cfg, CoreId core,
                     const std::string &name);

    /**
     * First phase of an access: consult L1/L2.
     * If the access hits with sufficient permission, needLlc is false and
     * `latency` is the complete access latency.  Otherwise the caller
     * must issue `event` (GETS/GETX/UPG) to the SLLC and then call
     * fill()/upgraded().
     *
     * @param line_addr line-aligned address.
     * @param op read or write.
     * @param is_instr instruction fetch (uses the L1I).
     */
    PrivateMissAction classify(Addr line_addr, MemOp op, bool is_instr);

    /**
     * Complete an SLLC fill after a GETS/GETX: installs into L2 and the
     * appropriate L1.
     * @param writable true when the SLLC granted exclusivity (GETX).
     * @param evict_line out: L2 victim that the SLLC must be notified of.
     * @param evict_dirty out: whether that victim was dirty.
     * @return true when an L2 victim was displaced.
     */
    bool fill(Addr line_addr, bool is_instr, bool writable,
              Addr &evict_line, bool &evict_dirty);

    /** Complete an upgrade (UPG): the resident line becomes M and dirty. */
    void upgraded(Addr line_addr);

    /**
     * Install a prefetched line into the L2 only (no L1 fill, shared
     * state).  No-op when the line is already resident.
     * @param evict_line out: displaced L2 victim, if any.
     * @param evict_dirty out: whether that victim was dirty.
     * @return true when a victim was displaced.
     */
    bool fillPrefetch(Addr line_addr, Addr &evict_line, bool &evict_dirty);

    /**
     * Back-invalidation from the SLLC.
     * @return true iff the dropped copy was dirty.
     */
    bool invalidate(Addr line_addr);

    /**
     * Read-intervention downgrade from the SLLC: an M copy becomes S and
     * its dirty data is surrendered.
     * @return true iff the copy was dirty.
     */
    bool downgrade(Addr line_addr);

    /** Copy present in any private level? (directory cross-check). */
    bool present(Addr line_addr) const;

    /**
     * Verify layer: visit every L2-resident line (the hierarchy's full
     * footprint, since both L1s are inclusive subsets of the L2).
     */
    void forEachL2Resident(
        const std::function<void(Addr, const TagStore::Way &)> &fn) const;

    /**
     * Verify layer: visit every L1-resident line (I and D) for the
     * L1-subset-of-L2 inclusion check.
     * @param fn called with (line, way, is_instr).
     */
    void forEachL1Resident(
        const std::function<void(Addr, const TagStore::Way &, bool)> &fn)
        const;

    /** L2 state of the line (I when absent). */
    PrivState state(Addr line_addr) const;

    /** Counters (l1d/l1i/l2 hits and misses). */
    const StatSet &stats() const { return statSet; }

    /**
     * Demand L1 misses (I + D) without a string lookup; the per-run
     * measurement path reads this once per core per snapshot.
     */
    Counter l1MissTotal() const { return l1iMisses + l1dMisses; }

    /** Demand L2 misses without a string lookup. */
    Counter l2MissTotal() const { return l2Misses; }

    /** Config in force. */
    const PrivateConfig &config() const { return cfg; }

    /** Checkpoint L1I/L1D/L2 contents and counters. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    PrivateConfig cfg;
    CoreId coreId;

    TagStore l1i;
    TagStore l1d;
    TagStore l2;

    StatSet statSet;
    Counter &l1iHits;
    Counter &l1iMisses;
    Counter &l1dHits;
    Counter &l1dMisses;
    Counter &l2Hits;
    Counter &l2Misses;
    Counter &upgrades;
    Counter &recalls;
    Counter &dirtyRecalls;
};

} // namespace rc

#endif // RC_CACHE_PRIVATE_CACHE_HH
