/**
 * @file
 * Private per-core cache hierarchy: L1 instruction, L1 data and a
 * unified write-back L2 that is inclusive of both L1s (Table 4 of the
 * paper: 32 KB 4-way L1 I/D, 256 KB 8-way L2).
 *
 * Coherence state (MSI) and dirtiness live at the L2; the L1s act as
 * latency filters whose contents are always a subset of the L2.
 */

#ifndef RC_CACHE_PRIVATE_CACHE_HH
#define RC_CACHE_PRIVATE_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/geometry.hh"
#include "cache/line.hh"
#include "coherence/protocol.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rc
{

/** Sizing and latencies of one core's private hierarchy. */
struct PrivateConfig
{
    std::uint64_t l1Bytes = 32 * 1024;   //!< per L1 (I and D each)
    std::uint32_t l1Ways = 4;
    Cycle l1Latency = 1;
    std::uint64_t l2Bytes = 256 * 1024;
    std::uint32_t l2Ways = 8;
    Cycle l2Latency = 7;
};

/**
 * Simple set-associative tag store with LRU replacement; payload is the
 * MSI state plus a dirty bit (only used by the L2 instance).
 *
 * Storage is structure-of-arrays: the way-scan in lookup()/peek()
 * compares a contiguous tag lane and only touches the payload on a hit.
 * Invalid ways hold a sentinel tag no 40-bit address can produce, so
 * the scan is a single compare per way with no validity load; the
 * validity lane still exists for fills, counting and serialization
 * (snapshots store 0 for invalid slots, exactly as the AoS layout did).
 * The LRU stamps live inline as another lane rather than behind a
 * ReplacementPolicy — the policy is fixed, and the serialized image
 * keeps the exact framing the old LruPolicy member produced.
 */
class TagStore
{
  public:
    /** Payload of one resident line (the tag lives in the tag lane). */
    struct Way
    {
        PrivState state = PrivState::I;
        bool dirty = false;
    };

    /** Result of evicting to make room. */
    struct Eviction
    {
        bool valid = false;    //!< an occupied way was displaced
        Addr lineAddr = 0;
        PrivState state = PrivState::I;
        bool dirty = false;
    };

    TagStore(const CacheGeometry &geometry, const std::string &name);

    /** @return pointer to the resident way, or nullptr on miss.
     *  Hits update LRU. */
    Way *lookup(Addr line_addr);

    /** lookup() returning the way index instead (-1 on a miss); hits
     *  update LRU exactly like lookup(). */
    std::int32_t lookupWay(Addr line_addr);

    /** Peek without touching LRU state. */
    const Way *peek(Addr line_addr) const;

    /**
     * Install @p line_addr with @p state, evicting the LRU way of the
     * target set if it is full.
     * @param way_out optional: the way the line landed in.
     */
    Eviction fill(Addr line_addr, PrivState state,
                  std::uint32_t *way_out = nullptr);

    /** Payload of (set-of(line_addr), way). */
    Way &wayAt(Addr line_addr, std::uint32_t way)
    {
        return payload[geom.setIndex(line_addr) * geom.numWays() + way];
    }

    /** Record a hit at a known way: stamp = ++tick.  Fan-out replay
     *  uses it to repeat a recorded lookup without the scan. */
    void touchAt(Addr line_addr, std::uint32_t way)
    {
        stamp[geom.setIndex(line_addr) * geom.numWays() + way] = ++tick;
    }

    /** Occupant of (set-of(line_addr), way) as an Eviction record
     *  (invalid when the way is free); fan-out replay derives the fill
     *  victim from it before overwriting the way. */
    Eviction occupantAt(Addr line_addr, std::uint32_t way) const;

    /** Install at a known way, silently displacing any occupant:
     *  replays the exact mutation fill() performs once the way is
     *  chosen (tag, payload, valid, stamp = ++tick). */
    void installAt(Addr line_addr, std::uint32_t way, PrivState state);

    /** Drop @p line_addr if present. @return the displaced way info. */
    Eviction invalidate(Addr line_addr);

    /** Number of valid lines (for tests). */
    std::uint64_t residentCount() const;

    /**
     * Verify layer: visit every resident line without touching LRU
     * state (line address reconstructed from tag and set).
     */
    void forEachResident(
        const std::function<void(Addr, const Way &)> &fn) const;

    /** Geometry in force. */
    const CacheGeometry &geometry() const { return geom; }

    /** Checkpoint resident ways, valid bits and replacement metadata. */
    void save(Serializer &s) const;

    /** Restore a save()'d image; throws SimError(Snapshot) on geometry
     *  drift. */
    void restore(Deserializer &d);

  private:
    /** Tag-lane value of an invalid way (beyond any 40-bit address). */
    static constexpr std::uint64_t invalidTag = ~std::uint64_t{0};

    /** LRU victim: first way carrying the strictly smallest stamp. */
    std::uint32_t lruVictim(std::uint64_t set) const;

    CacheGeometry geom;
    std::vector<std::uint64_t> tags;    //!< tag lane (the scan key)
    std::vector<std::uint8_t> valid;    //!< validity lane
    std::vector<Way> payload;           //!< state + dirty per way
    std::vector<std::uint64_t> stamp;   //!< LRU stamp lane
    std::uint64_t tick = 0;             //!< monotonic LRU clock
};

/** What the private hierarchy needs from the outside world for a miss. */
struct PrivateMissAction
{
    bool needLlc = false;       //!< must send `event` to the SLLC
    ProtoEvent event = ProtoEvent::GETS;
    Cycle latency = 0;          //!< private-level latency accumulated
};

/** Outcome class of one private-hierarchy access, as recorded by the
 *  fan-out front end (see sim/fanout.hh). */
enum class StepKind : std::uint8_t
{
    L1IHit,          //!< instruction fetch hit in the L1I
    L1IL2Hit,        //!< L1I miss, L2 hit (fills the L1I shared)
    InstrMiss,       //!< L2 miss on a fetch: GETS to the SLLC
    L1DReadHit,      //!< data read hit in the L1D
    L1DWriteHitM,    //!< write hit, L2 already M (silent dirtying)
    L1DWriteHitUpg,  //!< write hit on an S copy: UPG to the SLLC
    L2ReadHit,       //!< L1D miss, L2 read hit (fills the L1D)
    L2WriteHitM,     //!< L1D miss, L2 write hit in M
    L2HitUpg,        //!< L1D miss, L2 holds S on a write: UPG
    DataMissRead,    //!< L2 miss on a read: GETS
    DataMissWrite,   //!< L2 miss on a write: GETX
};

/**
 * One reference's private-hierarchy outcome, recorded once by the
 * fan-out front end and replayed into every back-end replica whose
 * affected sets have not diverged (sim/fanout.hh).  The record pins the
 * ways the front end chose so replay skips every tag scan and LRU
 * victim search; `victimLine` carries the L2 fill victim so back-ends
 * that cannot replay the step can still mark the sets it disturbed.
 */
struct StepRecord
{
    static constexpr std::uint8_t kInstr = 1;       //!< instruction fetch
    static constexpr std::uint8_t kWrite = 2;       //!< MemOp::Write
    static constexpr std::uint8_t kVictim = 4;      //!< victimLine valid
    static constexpr std::uint8_t kUpgL1Hit = 8;    //!< upgrade hit in L1D
    /** The L2 fill victim was dirty.  Shares bit 3 with kUpgL1Hit:
     *  upgrades never displace an L2 victim and fills never hit-upgrade
     *  an L1D copy, so the two kinds cannot both claim the bit. */
    static constexpr std::uint8_t kVictimDirty = 8;
    static constexpr std::uint8_t kFillStateShift = 4; //!< L1 fill state bits

    Addr line = 0;          //!< line-aligned reference address
    Addr victimLine = 0;    //!< L2 victim displaced by the fill, if any
    Addr pc = 0;            //!< issuing instruction carried from the MemRef
    std::uint32_t think = 0; //!< think time carried from the MemRef
    StepKind kind = StepKind::L1IHit;
    std::uint8_t flags = 0;
    std::int8_t l1Way = -1; //!< L1 way touched or filled
    std::int8_t l2Way = -1; //!< L2 way touched or filled

    bool isInstr() const { return (flags & kInstr) != 0; }
    MemOp op() const
    {
        return (flags & kWrite) != 0 ? MemOp::Write : MemOp::Read;
    }
    bool hasVictim() const { return (flags & kVictim) != 0; }
    /** Dirtiness of the L2 fill victim (only meaningful with kVictim). */
    bool victimDirty() const { return (flags & kVictimDirty) != 0; }
    /** L1D fill state for L2ReadHit (the L2 copy's state). */
    PrivState fillState() const
    {
        return static_cast<PrivState>(flags >> kFillStateShift);
    }
};

/**
 * One core's L1I + L1D + L2.  The CMP simulator calls classify() to learn
 * whether an access completes privately, then (on a miss or upgrade)
 * performs the SLLC transaction itself and completes the access with
 * fill().
 */
class PrivateHierarchy
{
  public:
    PrivateHierarchy(const PrivateConfig &cfg, CoreId core,
                     const std::string &name);

    /**
     * First phase of an access: consult L1/L2.
     * If the access hits with sufficient permission, needLlc is false and
     * `latency` is the complete access latency.  Otherwise the caller
     * must issue `event` (GETS/GETX/UPG) to the SLLC and then call
     * fill()/upgraded().
     *
     * @param line_addr line-aligned address.
     * @param op read or write.
     * @param is_instr instruction fetch (uses the L1I).
     */
    PrivateMissAction classify(Addr line_addr, MemOp op, bool is_instr);

    /**
     * Complete an SLLC fill after a GETS/GETX: installs into L2 and the
     * appropriate L1.
     * @param writable true when the SLLC granted exclusivity (GETX).
     * @param evict_line out: L2 victim that the SLLC must be notified of.
     * @param evict_dirty out: whether that victim was dirty.
     * @return true when an L2 victim was displaced.
     */
    bool fill(Addr line_addr, bool is_instr, bool writable,
              Addr &evict_line, bool &evict_dirty);

    /** Complete an upgrade (UPG): the resident line becomes M and dirty. */
    void upgraded(Addr line_addr);

    /**
     * classify() that additionally fills @p rec with the outcome kind
     * and the ways it touched, for fan-out replay.  State mutations and
     * counters are exactly those of classify().
     */
    PrivateMissAction classifyRecord(Addr line_addr, MemOp op, bool is_instr,
                                     StepRecord &rec);

    /** fill() that records the chosen ways and the L2 victim in @p rec. */
    bool fillRecord(Addr line_addr, bool is_instr, bool writable,
                    Addr &evict_line, bool &evict_dirty, StepRecord &rec);

    /** upgraded() that records the L1D way (hit or fill) in @p rec. */
    void upgradedRecord(Addr line_addr, StepRecord &rec);

    /** The PrivateMissAction a recorded step implies (pure function of
     *  the kind and this hierarchy's latencies). */
    PrivateMissAction actionOf(const StepRecord &rec) const;

    /**
     * Replay a recorded classify() against this hierarchy.  Valid only
     * while the sets the record touches are bit-identical to the
     * recording hierarchy's (the caller tracks divergence); mutations,
     * counters and LRU-clock bumps are exactly classify()'s.
     */
    PrivateMissAction applyClassify(const StepRecord &rec);

    /** Replay a recorded fill(); same validity contract. */
    bool applyFill(const StepRecord &rec, Addr &evict_line,
                   bool &evict_dirty);

    /** Replay a recorded upgraded(); same validity contract. */
    void applyUpgraded(const StepRecord &rec);

    /**
     * Install a prefetched line into the L2 only (no L1 fill, shared
     * state).  No-op when the line is already resident.
     * @param evict_line out: displaced L2 victim, if any.
     * @param evict_dirty out: whether that victim was dirty.
     * @return true when a victim was displaced.
     */
    bool fillPrefetch(Addr line_addr, Addr &evict_line, bool &evict_dirty);

    /**
     * Back-invalidation from the SLLC.
     * @return true iff the dropped copy was dirty.
     */
    bool invalidate(Addr line_addr);

    /**
     * Read-intervention downgrade from the SLLC: an M copy becomes S and
     * its dirty data is surrendered.
     * @return true iff the copy was dirty.
     */
    bool downgrade(Addr line_addr);

    /** Copy present in any private level? (directory cross-check). */
    bool present(Addr line_addr) const;

    /**
     * Verify layer: visit every L2-resident line (the hierarchy's full
     * footprint, since both L1s are inclusive subsets of the L2).
     */
    void forEachL2Resident(
        const std::function<void(Addr, const TagStore::Way &)> &fn) const;

    /**
     * Verify layer: visit every L1-resident line (I and D) for the
     * L1-subset-of-L2 inclusion check.
     * @param fn called with (line, way, is_instr).
     */
    void forEachL1Resident(
        const std::function<void(Addr, const TagStore::Way &, bool)> &fn)
        const;

    /** L2 state of the line (I when absent). */
    PrivState state(Addr line_addr) const;

    /** Counters (l1d/l1i/l2 hits and misses). */
    const StatSet &stats() const { return statSet; }

    /**
     * Demand L1 misses (I + D) without a string lookup; the per-run
     * measurement path reads this once per core per snapshot.
     */
    Counter l1MissTotal() const { return l1iMisses + l1dMisses; }

    /** Demand L2 misses without a string lookup. */
    Counter l2MissTotal() const { return l2Misses; }

    /** Config in force. */
    const PrivateConfig &config() const { return cfg; }

    /** L1 geometry (shared by the I and D stores). */
    const CacheGeometry &l1Geometry() const { return l1i.geometry(); }

    /** L2 geometry. */
    const CacheGeometry &l2Geometry() const { return l2.geometry(); }

    /** Checkpoint L1I/L1D/L2 contents and counters. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    template <bool Rec>
    PrivateMissAction classifyImpl(Addr line_addr, MemOp op, bool is_instr,
                                   StepRecord *rec);
    template <bool Rec>
    bool fillImpl(Addr line_addr, bool is_instr, bool writable,
                  Addr &evict_line, bool &evict_dirty, StepRecord *rec);
    template <bool Rec>
    void upgradedImpl(Addr line_addr, StepRecord *rec);

    PrivateConfig cfg;
    CoreId coreId;

    TagStore l1i;
    TagStore l1d;
    TagStore l2;

    StatSet statSet;
    Counter &l1iHits;
    Counter &l1iMisses;
    Counter &l1dHits;
    Counter &l1dMisses;
    Counter &l2Hits;
    Counter &l2Misses;
    Counter &upgrades;
    Counter &recalls;
    Counter &dirtyRecalls;
};

} // namespace rc

#endif // RC_CACHE_PRIVATE_CACHE_HH
