#include "cache/policies.hh"

#include "snapshot/serializer.hh"

namespace rc
{

RandomPolicy::RandomPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                           std::uint64_t seed)
    : ReplacementPolicy(num_sets, num_ways),
      rng(seed)
{
}




void
RandomPolicy::save(Serializer &s) const
{
    s.putU64(rng.rawState());
}

void
RandomPolicy::restore(Deserializer &d)
{
    rng.setRawState(d.getU64());
}

} // namespace rc
