#include "cache/policies.hh"

#include "snapshot/serializer.hh"

namespace rc
{

RandomPolicy::RandomPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                           std::uint64_t seed)
    : ReplacementPolicy(num_sets, num_ways),
      rng(seed)
{
}

void
RandomPolicy::onFill(std::uint64_t set, std::uint32_t way,
                     const ReplAccess &ctx)
{
    (void)set;
    (void)way;
    (void)ctx;
}

void
RandomPolicy::onHit(std::uint64_t set, std::uint32_t way,
                    const ReplAccess &ctx)
{
    (void)set;
    (void)way;
    (void)ctx;
}

std::uint32_t
RandomPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)set;
    (void)q;
    return static_cast<std::uint32_t>(rng.below(ways));
}

void
RandomPolicy::save(Serializer &s) const
{
    s.putU64(rng.rawState());
}

void
RandomPolicy::restore(Deserializer &d)
{
    rng.setRawState(d.getU64());
}

} // namespace rc
