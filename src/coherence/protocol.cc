#include "coherence/protocol.hh"

#include "common/log.hh"

namespace rc
{

const char *
toString(ProtoEvent e)
{
    switch (e) {
      case ProtoEvent::GETS: return "GETS";
      case ProtoEvent::GETX: return "GETX";
      case ProtoEvent::UPG: return "UPG";
      case ProtoEvent::PUTS: return "PUTS";
      case ProtoEvent::PUTX: return "PUTX";
      case ProtoEvent::DataRepl: return "DataRepl";
      case ProtoEvent::TagRepl: return "TagRepl";
    }
    return "?";
}

namespace
{

ProtoResult
legalResult(LlcState next, std::uint32_t actions)
{
    return ProtoResult{next, actions, true};
}

ProtoResult
illegal(LlcState state)
{
    return ProtoResult{state, 0, false};
}

/** Transitions out of I: first request allocates a tag. */
ProtoResult
fromInvalid(const ProtoInput &in)
{
    if (in.ownerValid)
        return illegal(in.state);
    switch (in.event) {
      case ProtoEvent::GETS:
        if (in.selectiveAlloc) {
            // Reuse cache: load the private cache only; remember the tag.
            return legalResult(LlcState::TO,
                              ActFetchMem | ActFillPrivate | ActAllocTag);
        }
        return legalResult(LlcState::S,
                          ActFetchMem | ActFillPrivate | ActAllocTag |
                          ActAllocData);
      case ProtoEvent::GETX:
        if (in.selectiveAlloc) {
            return legalResult(LlcState::TO,
                              ActFetchMem | ActFillPrivate | ActAllocTag |
                              ActSetOwner);
        }
        return legalResult(LlcState::S,
                          ActFetchMem | ActFillPrivate | ActAllocTag |
                          ActAllocData | ActSetOwner);
      default:
        // Inclusion guarantees no private copy exists: UPG/PUTS/PUTX
        // cannot arrive, and there is nothing to replace.
        return illegal(in.state);
    }
}

/** Transitions out of TO (tag only): the first hit is a detected reuse. */
ProtoResult
fromTagOnly(const ProtoInput &in)
{
    switch (in.event) {
      case ProtoEvent::GETS:
        if (in.prefetch) {
            // A speculative access is not a reuse (paper Section 6:
            // prefetched lines keep the lowest priority): deliver the
            // line but allocate no data.
            if (in.ownerValid) {
                return legalResult(LlcState::TO,
                                  ActFetchOwner | ActFillPrivate |
                                  ActWriteMemPut | ActClearOwner);
            }
            return legalResult(LlcState::TO,
                              ActFetchMem | ActFillPrivate);
        }
        if (in.ownerValid) {
            // Intervention supplies the data; it is dirty w.r.t. memory,
            // so the allocated data-array copy enters M.
            return legalResult(LlcState::M,
                              ActFetchOwner | ActFillPrivate |
                              ActAllocData | ActClearOwner);
        }
        // The paper's double-fetch: the line is read from memory again
        // and loaded in the private cache and data array simultaneously.
        return legalResult(LlcState::S,
                          ActFetchMem | ActFillPrivate | ActAllocData);
      case ProtoEvent::GETX:
        if (in.ownerValid) {
            return legalResult(LlcState::M,
                              ActFetchOwner | ActFillPrivate | ActAllocData |
                              ActInvSharers | ActSetOwner);
        }
        return legalResult(LlcState::S,
                          ActFetchMem | ActFillPrivate | ActAllocData |
                          ActInvSharers | ActSetOwner);
      case ProtoEvent::UPG:
        // No data transfer: grant exclusivity, stay tag-only.
        return legalResult(LlcState::TO, ActInvSharers | ActSetOwner);
      case ProtoEvent::PUTS:
        return legalResult(LlcState::TO, 0);
      case ProtoEvent::PUTX:
        // No data array entry to absorb the writeback: write through to
        // memory (an eviction is not a reuse).
        return legalResult(LlcState::TO, ActWriteMemPut | ActClearOwner);
      case ProtoEvent::DataRepl:
        return illegal(in.state); // no data to replace
      case ProtoEvent::TagRepl:
        if (in.ownerValid) {
            return legalResult(LlcState::I,
                              ActRecallSharers | ActFetchOwner |
                              ActWriteMemPut | ActClearOwner);
        }
        return legalResult(LlcState::I, ActRecallSharers);
    }
    return illegal(in.state);
}

/** Transitions out of S (tag + data, memory up to date). */
ProtoResult
fromShared(const ProtoInput &in)
{
    switch (in.event) {
      case ProtoEvent::GETS:
        if (in.ownerValid) {
            // The data-array copy is stale w.r.t. the owner: intervene
            // and absorb the dirty line.
            return legalResult(LlcState::M,
                              ActFetchOwner | ActFillPrivate |
                              ActWriteLlcData | ActClearOwner);
        }
        return legalResult(LlcState::S, ActDataHit | ActFillPrivate);
      case ProtoEvent::GETX:
        if (in.ownerValid) {
            return legalResult(LlcState::M,
                              ActFetchOwner | ActFillPrivate |
                              ActWriteLlcData | ActInvSharers |
                              ActSetOwner);
        }
        return legalResult(LlcState::S,
                          ActDataHit | ActFillPrivate | ActInvSharers |
                          ActSetOwner);
      case ProtoEvent::UPG:
        return legalResult(LlcState::S, ActInvSharers | ActSetOwner);
      case ProtoEvent::PUTS:
        return legalResult(LlcState::S, 0);
      case ProtoEvent::PUTX:
        // Absorb the dirty line into the data array.
        return legalResult(LlcState::M, ActWriteLlcData | ActClearOwner);
      case ProtoEvent::DataRepl:
        // Clean data: drop it, keep the tag.
        return legalResult(LlcState::TO, 0);
      case ProtoEvent::TagRepl:
        if (in.ownerValid) {
            return legalResult(LlcState::I,
                              ActRecallSharers | ActFetchOwner |
                              ActWriteMemPut | ActClearOwner);
        }
        return legalResult(LlcState::I, ActRecallSharers);
    }
    return illegal(in.state);
}

/** Transitions out of M (tag + data, memory stale). */
ProtoResult
fromModified(const ProtoInput &in)
{
    switch (in.event) {
      case ProtoEvent::GETS:
        if (in.ownerValid) {
            return legalResult(LlcState::M,
                              ActFetchOwner | ActFillPrivate |
                              ActWriteLlcData | ActClearOwner);
        }
        return legalResult(LlcState::M, ActDataHit | ActFillPrivate);
      case ProtoEvent::GETX:
        if (in.ownerValid) {
            return legalResult(LlcState::M,
                              ActFetchOwner | ActFillPrivate |
                              ActWriteLlcData | ActInvSharers |
                              ActSetOwner);
        }
        return legalResult(LlcState::M,
                          ActDataHit | ActFillPrivate | ActInvSharers |
                          ActSetOwner);
      case ProtoEvent::UPG:
        return legalResult(LlcState::M, ActInvSharers | ActSetOwner);
      case ProtoEvent::PUTS:
        return legalResult(LlcState::M, 0);
      case ProtoEvent::PUTX:
        return legalResult(LlcState::M, ActWriteLlcData | ActClearOwner);
      case ProtoEvent::DataRepl:
        if (in.ownerValid) {
            // The only valid copy lives in the owner's private cache;
            // dropping the stale SLLC copy needs no writeback.
            return legalResult(LlcState::TO, 0);
        }
        return legalResult(LlcState::TO, ActWriteMemData);
      case ProtoEvent::TagRepl:
        if (in.ownerValid) {
            return legalResult(LlcState::I,
                              ActRecallSharers | ActFetchOwner |
                              ActWriteMemPut | ActClearOwner);
        }
        return legalResult(LlcState::I,
                          ActRecallSharers | ActWriteMemData);
    }
    return illegal(in.state);
}

} // namespace

ProtoResult
protocolTransition(const ProtoInput &in)
{
    switch (in.state) {
      case LlcState::I:
        return fromInvalid(in);
      case LlcState::TO:
        return in.selectiveAlloc ? fromTagOnly(in) : illegal(in.state);
      case LlcState::S:
        return fromShared(in);
      case LlcState::M:
        return fromModified(in);
    }
    return illegal(in.state);
}

std::string
actionsToString(std::uint32_t actions)
{
    static const struct { std::uint32_t bit; const char *name; } names[] = {
        {ActFetchMem, "FetchMem"},
        {ActFetchOwner, "FetchOwner"},
        {ActDataHit, "DataHit"},
        {ActFillPrivate, "FillPrivate"},
        {ActAllocTag, "AllocTag"},
        {ActAllocData, "AllocData"},
        {ActWriteMemData, "WriteMemData"},
        {ActWriteMemPut, "WriteMemPut"},
        {ActWriteLlcData, "WriteLlcData"},
        {ActInvSharers, "InvSharers"},
        {ActRecallSharers, "RecallSharers"},
        {ActSetOwner, "SetOwner"},
        {ActClearOwner, "ClearOwner"},
    };
    std::string out;
    for (const auto &n : names) {
        if (actions & n.bit) {
            if (!out.empty())
                out += '|';
            out += n.name;
        }
    }
    return out.empty() ? "none" : out;
}

const char *
coherenceTraceLabel(std::uint32_t actions)
{
    if (actions & ActRecallSharers)
        return "coh.recall";
    if (actions & ActInvSharers)
        return "coh.inval";
    if (actions & ActFetchOwner)
        return "coh.intervention";
    return nullptr;
}

} // namespace rc
