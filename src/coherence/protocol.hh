/**
 * @file
 * TO-MSI coherence protocol (paper Section 3.4, Fig. 3, Table 1).
 *
 * The protocol is expressed as a pure transition function so it can be
 * exhaustively unit-tested against the paper's state diagram and shared
 * by every SLLC model.  States follow Table 1a: I (no tag), S (tag+data,
 * memory up to date), M (tag+data, memory stale) and TO (tag only, no
 * data).  "In every state except I, private caches may or may not have
 * copies of the line" - presence and ownership are tracked orthogonally
 * by the directory entry and enter the transition function as the
 * `ownerValid` context flag.
 *
 * A conventional cache runs the same machine with `selectiveAlloc` off:
 * misses then allocate tag and data together and TO is unreachable.
 */

#ifndef RC_COHERENCE_PROTOCOL_HH
#define RC_COHERENCE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "cache/line.hh"

namespace rc
{

/** Protocol events (Table 1b plus the tag-replacement housekeeping). */
enum class ProtoEvent : std::uint8_t {
    GETS,     //!< data read or fetch request
    GETX,     //!< write request
    UPG,      //!< upgrade request (S -> M in the private cache)
    PUTS,     //!< clean eviction notification from a private cache
    PUTX,     //!< dirty eviction notification from a private cache
    DataRepl, //!< eviction in the SLLC data array
    TagRepl,  //!< eviction in the SLLC tag array
};

/** Human-readable event name. */
const char *toString(ProtoEvent e);

/** Side effects requested by a transition (bitmask). */
enum ProtoAction : std::uint32_t {
    ActFetchMem      = 1u << 0,  //!< read the line from main memory
    ActFetchOwner    = 1u << 1,  //!< intervention: data from private owner
    ActDataHit       = 1u << 2,  //!< serve from the SLLC data array
    ActFillPrivate   = 1u << 3,  //!< deliver the line to the requester
    ActAllocTag      = 1u << 4,  //!< allocate a tag-array entry
    ActAllocData     = 1u << 5,  //!< allocate a data-array entry (reuse!)
    ActWriteMemData  = 1u << 6,  //!< write the SLLC data copy to memory
    ActWriteMemPut   = 1u << 7,  //!< write PUTX/owner data to memory
    ActWriteLlcData  = 1u << 8,  //!< PUTX data absorbed by the data array
    ActInvSharers    = 1u << 9,  //!< invalidate other private copies
    ActRecallSharers = 1u << 10, //!< back-invalidate all private copies
    ActSetOwner      = 1u << 11, //!< requester becomes the private owner
    ActClearOwner    = 1u << 12, //!< ownership dissolves
};

/** Input to the transition function. */
struct ProtoInput
{
    LlcState state = LlcState::I;     //!< current stable state
    ProtoEvent event = ProtoEvent::GETS; //!< triggering event
    bool ownerValid = false;          //!< a private cache owns a dirty copy
    bool selectiveAlloc = true;       //!< reuse cache (true) / conventional
    bool prefetch = false;            //!< speculative GETS: a tag-only hit
                                      //!< is NOT a reuse (no data alloc)
};

/** Output of the transition function. */
struct ProtoResult
{
    LlcState next = LlcState::I; //!< next stable state
    std::uint32_t actions = 0;   //!< ProtoAction bitmask
    bool legal = false;          //!< event permitted in this state?
};

/**
 * The TO-MSI transition function.  Illegal combinations (e.g. PUTS in I,
 * which inclusion makes impossible) return legal == false and leave the
 * state unchanged.
 */
ProtoResult protocolTransition(const ProtoInput &in);

/** Render a ProtoAction mask as "FetchMem|AllocData|...". */
std::string actionsToString(std::uint32_t actions);

/**
 * Telemetry name of the coherence traffic a transition generates, or
 * nullptr when it generates none.  Recalls outrank invalidations
 * outrank interventions when a mask carries several, so each traced
 * request yields at most one coherence event.
 */
const char *coherenceTraceLabel(std::uint32_t actions);

} // namespace rc

#endif // RC_COHERENCE_PROTOCOL_HH
