/**
 * @file
 * Full-map directory entry (paper Section 3.2: NRR uses the full-map
 * directory bits to distinguish lines present in the private caches).
 */

#ifndef RC_COHERENCE_DIRECTORY_HH
#define RC_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rc
{

class Serializer;
class Deserializer;

/** Render a presence mask as e.g. "{0,3,7}" for diagnostics. */
std::string presenceToString(std::uint32_t mask);

/**
 * Presence bit-vector plus ownership for one SLLC line.  Supports up to
 * 32 cores (the paper's CMP has 8).
 */
class DirectoryEntry
{
  public:
    /** Remove every sharer and the owner. */
    void
    clear()
    {
        presence = 0;
        ownerId = noOwner;
    }

    /** Mark @p core as holding a copy. */
    void
    addSharer(CoreId core)
    {
        presence |= bit(core);
    }

    /** Remove @p core; dissolves ownership if it was the owner. */
    void
    removeSharer(CoreId core)
    {
        presence &= ~bit(core);
        if (ownerId == core)
            ownerId = noOwner;
    }

    /** @p core becomes the exclusive modified-copy owner (and a sharer). */
    void
    setOwner(CoreId core)
    {
        presence |= bit(core);
        ownerId = core;
    }

    /** Ownership dissolves; presence is unchanged. */
    void
    clearOwner()
    {
        ownerId = noOwner;
    }

    /** @return true iff @p core holds a copy. */
    bool isSharer(CoreId core) const { return presence & bit(core); }

    /** @return true iff some private cache owns a modified copy. */
    bool hasOwner() const { return ownerId != noOwner; }

    /** Owner core; only meaningful when hasOwner(). */
    CoreId owner() const { return ownerId; }

    /** @return true iff no private cache holds a copy. */
    bool empty() const { return presence == 0; }

    /** Raw presence vector. */
    std::uint32_t presenceMask() const { return presence; }

    /** Number of private caches holding a copy. */
    std::uint32_t
    sharerCount() const
    {
        return static_cast<std::uint32_t>(__builtin_popcount(presence));
    }

    /** Sharers other than @p core. */
    std::uint32_t
    othersMask(CoreId core) const
    {
        return presence & ~bit(core);
    }

    /**
     * Verify layer: is this entry a legal encoding for a @p num_cores
     * CMP?  Checks that no presence bit addresses a nonexistent core
     * and that a recorded owner is a real core that is also a sharer.
     * @param why filled with a diagnostic on failure when non-null.
     */
    bool encodingSane(std::uint32_t num_cores,
                      std::string *why = nullptr) const;

    /**
     * Fault-injection hook: record @p core as owner WITHOUT adding its
     * presence bit, producing an owner-not-sharer (or out-of-range
     * owner) encoding that encodingSane() must flag.  Test/verify use
     * only — never called on the simulation path.
     */
    void corruptOwnerForTest(CoreId core) { ownerId = core; }

    /** Checkpoint presence + owner. */
    void save(Serializer &s) const;

    /** Restore a save()'d entry (the post-restore IntegrityChecker pass
     *  re-validates the encoding against the actual private caches). */
    void restore(Deserializer &d);

  private:
    static std::uint32_t bit(CoreId core) { return 1u << core; }
    static constexpr CoreId noOwner = 0xffffffffu;

    std::uint32_t presence = 0;
    CoreId ownerId = noOwner;
};

} // namespace rc

#endif // RC_COHERENCE_DIRECTORY_HH
