#include "coherence/directory.hh"

#include <string>

namespace rc
{

/**
 * Render a presence mask as e.g. "{0,3,7}" for diagnostics.
 * Defined here (not in the header) to keep <string> out of the hot path.
 */
std::string
presenceToString(std::uint32_t mask)
{
    std::string out = "{";
    bool first = true;
    for (std::uint32_t c = 0; c < 32; ++c) {
        if (mask & (1u << c)) {
            if (!first)
                out += ',';
            out += std::to_string(c);
            first = false;
        }
    }
    out += '}';
    return out;
}

} // namespace rc
