#include "coherence/directory.hh"

#include <string>

#include "snapshot/serializer.hh"

namespace rc
{

/**
 * Render a presence mask as e.g. "{0,3,7}" for diagnostics.
 * Defined here (not in the header) to keep <string> out of the hot path.
 */
std::string
presenceToString(std::uint32_t mask)
{
    std::string out = "{";
    bool first = true;
    for (std::uint32_t c = 0; c < 32; ++c) {
        if (mask & (1u << c)) {
            if (!first)
                out += ',';
            out += std::to_string(c);
            first = false;
        }
    }
    out += '}';
    return out;
}

bool
DirectoryEntry::encodingSane(std::uint32_t num_cores, std::string *why) const
{
    if (num_cores < 32 && (presence >> num_cores) != 0) {
        if (why)
            *why = "presence " + presenceToString(presence) +
                   " addresses cores beyond numCores=" +
                   std::to_string(num_cores);
        return false;
    }
    if (ownerId != noOwner) {
        if (ownerId >= num_cores) {
            if (why)
                *why = "owner " + std::to_string(ownerId) +
                       " is out of range for numCores=" +
                       std::to_string(num_cores);
            return false;
        }
        if (!isSharer(ownerId)) {
            if (why)
                *why = "owner " + std::to_string(ownerId) +
                       " is not a sharer in " + presenceToString(presence);
            return false;
        }
    }
    return true;
}

void
DirectoryEntry::save(Serializer &s) const
{
    s.putU32(presence);
    s.putU32(ownerId);
}

void
DirectoryEntry::restore(Deserializer &d)
{
    presence = d.getU32();
    ownerId = d.getU32();
}

} // namespace rc
