#include "verify/fault_injector.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <utility>

#include "cache/conventional_llc.hh"
#include "cache/mshr.hh"
#include "common/log.hh"
#include "reuse/reuse_cache.hh"
#include "sim/cmp.hh"
#include "sim/feed_cache.hh"

namespace rc
{

namespace
{

struct TagCoord
{
    std::uint64_t set;
    std::uint32_t way;
};

/** Resident tag-array coordinates satisfying @p pred, in array order. */
template <typename Pred>
std::vector<TagCoord>
reuseCandidates(const ReuseTagArray &tags, Pred pred)
{
    std::vector<TagCoord> out;
    const auto &g = tags.geometry();
    for (std::uint64_t s = 0; s < g.numSets(); ++s) {
        for (std::uint32_t w = 0; w < g.numWays(); ++w) {
            const ReuseTagArray::Entry &e = tags.at(s, w);
            if (e.state != LlcState::I && pred(e))
                out.push_back(TagCoord{s, w});
        }
    }
    return out;
}

/** Resident conventional lines satisfying @p pred, in array order. */
template <typename Pred>
std::vector<Addr>
convCandidates(const ConventionalLlc &llc, Pred pred)
{
    std::vector<Addr> out;
    llc.forEachResident(
        [&](Addr line, LlcState st, const DirectoryEntry &dir) {
            if (pred(st, dir))
                out.push_back(line);
        });
    return out;
}

std::string
coordStr(const TagCoord &c)
{
    return "(" + std::to_string(c.set) + "," + std::to_string(c.way) + ")";
}

std::string
lineStr(Addr line)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(line));
    return buf;
}

} // namespace

const char *
toString(FaultClass cls)
{
    switch (cls) {
      case FaultClass::TagStateFlip: return "tag-state";
      case FaultClass::DirectoryDropBit: return "dir-drop";
      case FaultClass::DirectoryGhostBit: return "dir-ghost";
      case FaultClass::OwnerCorrupt: return "owner";
      case FaultClass::OrphanDataBlock: return "orphan-data";
      case FaultClass::LeakedMshr: return "mshr-leak";
      case FaultClass::ReplMetadata: return "repl-meta";
      case FaultClass::TruncatedFrame: return "truncated-frame";
      case FaultClass::CorruptBlob: return "corrupt-blob";
      case FaultClass::WorkerCrash: return "worker-crash";
      case FaultClass::WorkerOom: return "worker-oom";
      case FaultClass::WorkerHang: return "worker-hang";
      case FaultClass::FeedTruncate: return "feed-truncate";
      case FaultClass::FeedFlip: return "feed-flip";
      case FaultClass::FeedVersion: return "feed-version";
    }
    return "unknown";
}

bool
faultClassFromName(const std::string &name, FaultClass &out)
{
    for (std::size_t i = 0; i < numFaultClasses; ++i) {
        const auto cls = static_cast<FaultClass>(i);
        if (name == toString(cls)) {
            out = cls;
            return true;
        }
    }
    return false;
}

Invariant
detectedBy(FaultClass cls, LlcKind kind)
{
    switch (cls) {
      case FaultClass::TagStateFlip:
        return kind == LlcKind::Reuse ? Invariant::TagDataPointers
                                      : Invariant::StateEncoding;
      case FaultClass::DirectoryDropBit:
      case FaultClass::DirectoryGhostBit:
        return Invariant::DirectoryInclusion;
      case FaultClass::OwnerCorrupt:
        return Invariant::DirectoryEncoding;
      case FaultClass::OrphanDataBlock:
        return Invariant::TagDataPointers;
      case FaultClass::LeakedMshr:
        return Invariant::MshrLeak;
      case FaultClass::ReplMetadata:
        return Invariant::ReplMetadata;
      case FaultClass::TruncatedFrame:
        return Invariant::FrameIntegrity;
      case FaultClass::CorruptBlob:
        return Invariant::BlobIntegrity;
      case FaultClass::WorkerCrash:
      case FaultClass::WorkerOom:
      case FaultClass::WorkerHang:
        return Invariant::CrashContainment;
      case FaultClass::FeedTruncate:
      case FaultClass::FeedFlip:
      case FaultClass::FeedVersion:
        return Invariant::FeedIntegrity;
    }
    return Invariant::TagDataPointers;
}

FaultInjector::FaultInjector(std::uint64_t seed) : rng(seed) {}

InjectionResult
FaultInjector::inject(Cmp &cmp, FaultClass cls)
{
    InjectionResult res;
    res.fault = cls;

    auto *reuse = dynamic_cast<ReuseCache *>(&cmp.llc());
    auto *conv = dynamic_cast<ConventionalLlc *>(&cmp.llc());
    const LlcKind kind = reuse ? LlcKind::Reuse : LlcKind::Conventional;
    const std::uint32_t cores = cmp.numCores();

    auto pickTag = [&](const std::vector<TagCoord> &cands) {
        return cands[rng.below(cands.size())];
    };
    auto pickLine = [&](const std::vector<Addr> &cands) {
        return cands[rng.below(cands.size())];
    };
    auto done = [&](std::string detail) {
        res.applied = true;
        res.detail = std::move(detail);
        if (res.expected.empty())
            res.expected.push_back(detectedBy(cls, kind));
    };

    switch (cls) {
      case FaultClass::TagStateFlip: {
        if (reuse) {
            ReuseTagArray &tags = reuse->tagArrayMut();
            // Preferred target: a tag+data state demoted to TO leaves
            // its data entry orphaned (TagDataPointers, both walks).
            auto cands = reuseCandidates(tags, [](const auto &e) {
                return llcHasData(e.state);
            });
            if (!cands.empty()) {
                const TagCoord c = pickTag(cands);
                tags.at(c.set, c.way).state = LlcState::TO;
                done("reuse tag " + coordStr(c) + " demoted to TO with "
                     "its data entry left behind");
                return res;
            }
            // Fallback: promote a TO tag to S with a dangling forward
            // pointer — still a TagDataPointers violation.
            cands = reuseCandidates(tags, [](const auto &e) {
                return e.state == LlcState::TO;
            });
            if (cands.empty())
                break;
            const TagCoord c = pickTag(cands);
            tags.at(c.set, c.way).state = LlcState::S;
            done("reuse TO tag " + coordStr(c) +
                 " promoted to S with no data entry");
            return res;
        }
        if (conv) {
            auto cands = convCandidates(
                *conv, [](LlcState, const DirectoryEntry &) {
                    return true;
                });
            if (cands.empty())
                break;
            const Addr line = pickLine(cands);
            conv->corruptStateForTest(line, LlcState::TO);
            done("conventional line " + lineStr(line) +
                 " forced into the TO state");
            return res;
        }
        break;
      }

      case FaultClass::DirectoryDropBit: {
        auto drop = [&](DirectoryEntry &dir, const std::string &what) {
            std::vector<CoreId> sharers;
            for (CoreId c = 0; c < cores; ++c) {
                if (dir.isSharer(c))
                    sharers.push_back(c);
            }
            const CoreId victim =
                sharers[rng.below(sharers.size())];
            // removeSharer also dissolves ownership when the victim
            // owned the line, so the encoding stays sane and only
            // DirectoryInclusion can fire.
            dir.removeSharer(victim);
            done(what + ": dropped presence bit of core " +
                 std::to_string(victim));
        };
        if (reuse) {
            ReuseTagArray &tags = reuse->tagArrayMut();
            auto cands = reuseCandidates(tags, [](const auto &e) {
                return !e.dir.empty();
            });
            if (cands.empty())
                break;
            const TagCoord c = pickTag(cands);
            drop(tags.at(c.set, c.way).dir, "reuse tag " + coordStr(c));
            return res;
        }
        if (conv) {
            auto cands = convCandidates(
                *conv, [](LlcState, const DirectoryEntry &dir) {
                    return !dir.empty();
                });
            if (cands.empty())
                break;
            const Addr line = pickLine(cands);
            drop(*conv->dirOfMut(line), "line " + lineStr(line));
            return res;
        }
        break;
      }

      case FaultClass::DirectoryGhostBit: {
        auto ghost = [&](DirectoryEntry &dir, const std::string &what) {
            std::vector<CoreId> absent;
            for (CoreId c = 0; c < cores; ++c) {
                if (!dir.isSharer(c))
                    absent.push_back(c);
            }
            const CoreId ghost_core = absent[rng.below(absent.size())];
            dir.addSharer(ghost_core);
            done(what + ": added ghost presence bit for core " +
                 std::to_string(ghost_core));
        };
        if (reuse) {
            ReuseTagArray &tags = reuse->tagArrayMut();
            auto cands = reuseCandidates(tags, [&](const auto &e) {
                return e.dir.sharerCount() < cores;
            });
            if (cands.empty())
                break;
            const TagCoord c = pickTag(cands);
            ghost(tags.at(c.set, c.way).dir, "reuse tag " + coordStr(c));
            return res;
        }
        if (conv) {
            auto cands = convCandidates(
                *conv, [&](LlcState, const DirectoryEntry &dir) {
                    return dir.sharerCount() < cores;
                });
            if (cands.empty())
                break;
            const Addr line = pickLine(cands);
            ghost(*conv->dirOfMut(line), "line " + lineStr(line));
            return res;
        }
        break;
      }

      case FaultClass::OwnerCorrupt: {
        // An owner id == numCores is out of range; encodingSane rejects
        // it before ever using it as a shift amount.
        if (reuse) {
            ReuseTagArray &tags = reuse->tagArrayMut();
            auto cands =
                reuseCandidates(tags, [](const auto &) { return true; });
            if (cands.empty())
                break;
            const TagCoord c = pickTag(cands);
            tags.at(c.set, c.way).dir.corruptOwnerForTest(cores);
            done("reuse tag " + coordStr(c) +
                 ": owner id set out of range");
            return res;
        }
        if (conv) {
            auto cands = convCandidates(
                *conv,
                [](LlcState, const DirectoryEntry &) { return true; });
            if (cands.empty())
                break;
            const Addr line = pickLine(cands);
            conv->dirOfMut(line)->corruptOwnerForTest(cores);
            done("line " + lineStr(line) + ": owner id set out of range");
            return res;
        }
        break;
      }

      case FaultClass::OrphanDataBlock: {
        if (!reuse)
            break; // coupled tag/data caches cannot orphan data
        ReuseTagArray &tags = reuse->tagArrayMut();
        // Prefer a tag with no private copies: invalidating it then
        // violates only the tag/data pointer invariant.
        auto cands = reuseCandidates(tags, [](const auto &e) {
            return llcHasData(e.state) && e.dir.empty();
        });
        if (cands.empty()) {
            cands = reuseCandidates(tags, [](const auto &e) {
                return llcHasData(e.state);
            });
            if (cands.empty())
                break;
            // Dropping a tag with live sharers also breaks inclusion.
            res.expected.push_back(detectedBy(cls, kind));
            res.expected.push_back(Invariant::DirectoryInclusion);
        }
        const TagCoord c = pickTag(cands);
        tags.invalidate(c.set, c.way);
        done("reuse tag " + coordStr(c) +
             " invalidated, orphaning its data entry");
        return res;
      }

      case FaultClass::LeakedMshr: {
        const auto &files = cmp.crossbar().mshrs();
        for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
            const Addr line =
                (Addr{0xdead} << 32) | (rng.below(1u << 20) << 6);
            for (std::size_t bank = 0; bank < files.size(); ++bank) {
                const auto outcome =
                    files[bank]->request(line, cmp.now(), neverCycle);
                if (outcome == MshrFile::Outcome::Allocated) {
                    done("bank " + std::to_string(bank) +
                         ": leaked an MSHR entry for line " +
                         lineStr(line) + " (doneAt = never)");
                    return res;
                }
            }
        }
        break;
      }

      case FaultClass::ReplMetadata: {
        auto corrupt = [&](ReplacementPolicy &p, const std::string &what) {
            const std::uint64_t set = rng.below(p.numSets());
            const std::uint32_t way =
                static_cast<std::uint32_t>(rng.below(p.numWays()));
            if (!p.corruptMetadata(set, way))
                return false;
            done(what + ": replacement metadata of (" +
                 std::to_string(set) + "," + std::to_string(way) +
                 ") forced out of range");
            return true;
        };
        if (reuse) {
            if (corrupt(reuse->dataArrayMut().policyMut(),
                        "reuse data array") ||
                corrupt(reuse->tagArrayMut().policyMut(),
                        "reuse tag array"))
                return res;
            break;
        }
        if (conv && corrupt(conv->policyMut(), "conventional LLC"))
            return res;
        break;
      }

      case FaultClass::TruncatedFrame:
      case FaultClass::CorruptBlob:
      case FaultClass::WorkerCrash:
      case FaultClass::WorkerOom:
      case FaultClass::WorkerHang:
      case FaultClass::FeedTruncate:
      case FaultClass::FeedFlip:
      case FaultClass::FeedVersion:
        // Service-layer classes corrupt bytes in flight/at rest or a
        // worker process, not simulated state; see truncateFrame(),
        // corruptBlobFile(), corruptFeedBlob() and detonateChaos().
        // The checker-vs-injector matrix skips them like any other
        // inapplicable (class, organization) pair.
        break;
    }

    res.applied = false;
    res.detail = std::string("no viable target for ") + toString(cls);
    return res;
}

std::vector<std::uint8_t>
FaultInjector::truncateFrame(const std::vector<std::uint8_t> &frame_bytes)
{
    if (frame_bytes.empty())
        return frame_bytes;
    // Keep at least one byte and lose at least one: a frame cut inside
    // its header and one cut inside its payload are both defects the
    // reader must flag, so any split point in [1, size) is a valid
    // injection.
    const std::size_t keep =
        1 + static_cast<std::size_t>(rng.below(frame_bytes.size() - 1));
    return std::vector<std::uint8_t>(frame_bytes.begin(),
                                     frame_bytes.begin() +
                                         static_cast<std::ptrdiff_t>(keep));
}

namespace
{

/** High bits marking a chaos seed ("CA05" ~ chaos, never a real seed). */
constexpr std::uint64_t chaosMagic = 0xCA05;

} // namespace

std::uint64_t
chaosSeed(FaultClass cls, std::uint32_t salt)
{
    RC_ASSERT(isServiceFault(cls) && cls != FaultClass::TruncatedFrame &&
                  cls != FaultClass::CorruptBlob,
              "chaos seeds encode worker fault classes only");
    return (chaosMagic << 48) |
           (static_cast<std::uint64_t>(cls) << 40) | salt;
}

bool
chaosFromSeed(std::uint64_t seed, FaultClass &out)
{
    if ((seed >> 48) != chaosMagic)
        return false;
    const auto raw = static_cast<std::uint8_t>((seed >> 40) & 0xff);
    if (raw < static_cast<std::uint8_t>(FaultClass::WorkerCrash) ||
        raw > static_cast<std::uint8_t>(FaultClass::WorkerHang))
        return false;
    out = static_cast<FaultClass>(raw);
    return true;
}

void
detonateChaos(FaultClass cls, std::atomic<std::uint64_t> *heartbeat)
{
    switch (cls) {
      case FaultClass::WorkerCrash:
        // abort(), not a raw segfault: identical containment coverage
        // (fatal signal mid-job), without tripping sanitizer
        // crash-report machinery in sanitizer CI legs.
        std::abort();

      case FaultClass::WorkerOom: {
        // Allocate AND touch (a reservation alone never fails under
        // overcommit).  The budget bounds the damage on an uncapped
        // host: with RLIMIT_AS the operator new below throws early,
        // without it the loop throws at the budget — same observable
        // behaviour either way.
        std::vector<std::unique_ptr<char[]>> hoard;
        constexpr std::size_t chunkBytes = 32u << 20;
        constexpr std::size_t budgetChunks = 64; // 2 GiB ceiling
        for (std::size_t i = 0; i < budgetChunks; ++i) {
            auto chunk = std::make_unique<char[]>(chunkBytes);
            for (std::size_t off = 0; off < chunkBytes; off += 4096)
                chunk[off] = static_cast<char>(off);
            hoard.push_back(std::move(chunk));
            // A runaway sim still beats; without this the hang watchdog
            // would kill the bomb before the allocator fails and the
            // death would be mistyped as a hang.
            if (heartbeat)
                heartbeat->fetch_add(1, std::memory_order_relaxed);
        }
        throw std::bad_alloc();
      }

      case FaultClass::WorkerHang:
        // Spin forever WITHOUT consulting the abort flag: only the
        // supervisor's grace-period SIGKILL (or RLIMIT_CPU) ends this.
        for (;;)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));

      default:
        panic("detonateChaos called with non-chaos class %s",
              toString(cls));
    }
}

bool
FaultInjector::corruptBlobFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size <= 0) {
        std::fclose(f);
        return false;
    }
    const long at = static_cast<long>(
        rng.below(static_cast<std::uint64_t>(size)));
    std::fseek(f, at, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, at, SEEK_SET);
    // XOR with a non-zero mask guarantees the byte actually changes.
    std::fputc((c == EOF ? 0 : c) ^ 0x5a, f);
    std::fclose(f);
    return true;
}

bool
FaultInjector::corruptFeedBlob(const std::string &path, FaultClass cls)
{
    try {
        switch (cls) {
          case FaultClass::FeedTruncate:
            feedTruncateBlob(path);
            return true;
          case FaultClass::FeedFlip:
            feedFlipBlobByte(path);
            return true;
          case FaultClass::FeedVersion:
            feedStaleVersionBlob(path);
            return true;
          default:
            return false;
        }
    } catch (const SimError &) {
        // The blob was too damaged to damage further (missing, shorter
        // than a header); an injection that cannot land reports false.
        return false;
    }
}

} // namespace rc
