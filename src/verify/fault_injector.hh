/**
 * @file
 * Deterministic fault injector: corrupts live simulated state so tests
 * can prove each IntegrityChecker invariant actually fires (mutation
 * testing of the checker itself), and so the bench harness can poison a
 * designated run of a sweep to exercise the quarantine path.
 *
 * All randomness comes from a seeded Xorshift64* generator and all
 * candidate scans are in fixed array order, so the same seed on the
 * same simulated state always corrupts the same coordinate.
 */

#ifndef RC_VERIFY_FAULT_INJECTOR_HH
#define RC_VERIFY_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/system_config.hh"
#include "verify/integrity.hh"

namespace rc
{

class Cmp;

/** The state corruptions the injector can introduce. */
enum class FaultClass : std::uint8_t
{
    TagStateFlip,     //!< flip a tag's stable state (S/M -> TO, or TO
                      //!< -> TO in the conventional cache)
    DirectoryDropBit, //!< drop a real sharer's presence bit
    DirectoryGhostBit, //!< add a presence bit for a core with no copy
    OwnerCorrupt,     //!< record an out-of-range owner id
    OrphanDataBlock,  //!< invalidate a data-holding tag, leaving its
                      //!< data entry behind (reuse cache only)
    LeakedMshr,       //!< allocate an MSHR entry that can never retire
    ReplMetadata,     //!< force replacement metadata out of range
    TruncatedFrame,   //!< cut a service-protocol frame short mid-stream
                      //!< (service layer; inject(Cmp&) has no target)
    CorruptBlob,      //!< flip bits in a persisted result-cache blob
                      //!< (service layer; inject(Cmp&) has no target)
    WorkerCrash,      //!< abort() inside a sandboxed worker process
                      //!< (chaos; detonated via detonateChaos)
    WorkerOom,        //!< allocation bomb inside a sandboxed worker
                      //!< (chaos; detonated via detonateChaos)
    WorkerHang,       //!< abort-ignoring busy wait inside a sandboxed
                      //!< worker (chaos; detonated via detonateChaos)
    FeedTruncate,     //!< cut a feed-cache blob short mid-arrays (torn
                      //!< write; service layer, corrupts bytes at rest)
    FeedFlip,         //!< flip one payload byte inside a feed blob's
                      //!< record arrays (silent media corruption)
    FeedVersion,      //!< bump a feed blob's format version word with a
                      //!< re-sealed header CRC (stale-format detection)
};

/** Number of FaultClass values (matrix tests iterate over all). */
inline constexpr std::size_t numFaultClasses = 15;

/**
 * Classes that corrupt the service layer (bytes in flight/at rest, or a
 * worker process) rather than simulated cache state; inject(Cmp&) has
 * no target for them and the checker-vs-injector matrix skips them.
 */
constexpr bool
isServiceFault(FaultClass cls)
{
    return cls == FaultClass::TruncatedFrame ||
           cls == FaultClass::CorruptBlob ||
           cls == FaultClass::WorkerCrash ||
           cls == FaultClass::WorkerOom ||
           cls == FaultClass::WorkerHang ||
           cls == FaultClass::FeedTruncate ||
           cls == FaultClass::FeedFlip || cls == FaultClass::FeedVersion;
}

/** Short name, e.g. "dir-drop" (also the --inject= spelling). */
const char *toString(FaultClass cls);

/**
 * Parse a --inject= spelling ("tag-state", "dir-drop", "dir-ghost",
 * "owner", "orphan-data", "mshr-leak", "repl-meta").
 * @return false when @p name matches no class.
 */
bool faultClassFromName(const std::string &name, FaultClass &out);

/**
 * The invariant expected to catch @p cls on a @p kind organization
 * (the checker-vs-injector matrix contract).
 */
Invariant detectedBy(FaultClass cls, LlcKind kind);

/** What an injection attempt actually did. */
struct InjectionResult
{
    bool applied = false;  //!< a corruption was introduced
    FaultClass fault = FaultClass::TagStateFlip;
    std::string detail;    //!< what was corrupted, with coordinates
    /**
     * Invariants this specific corruption must trip — normally exactly
     * {detectedBy(...)}; a fallback target can add a second entry.
     */
    std::vector<Invariant> expected;
};

/** Seeded corruptor of live Cmp state. */
class FaultInjector
{
  public:
    /** @param seed drives every random choice (determinism). */
    explicit FaultInjector(std::uint64_t seed);

    /**
     * Corrupt @p cmp with one fault of class @p cls.
     * @return applied = false when the organization has no viable
     *         target (e.g. orphan-data on a conventional cache, an
     *         empty cache before warmup, or a service-layer class that
     *         corrupts bytes rather than simulated state).
     */
    InjectionResult inject(Cmp &cmp, FaultClass cls);

    /**
     * TruncatedFrame: deterministically cut encoded frame bytes short —
     * somewhere past the header (when it fits) so the defect is a torn
     * payload, not a missing header.  The contract partner is
     * Invariant::FrameIntegrity: svc::decodeFrame / readFrame must
     * reject the result with SimError(Protocol).
     */
    std::vector<std::uint8_t>
    truncateFrame(const std::vector<std::uint8_t> &frame_bytes);

    /**
     * CorruptBlob: flip one payload byte of the file at @p path (a
     * result-cache blob or any snapshot-container file).  The contract
     * partner is Invariant::BlobIntegrity: the next
     * svc::ResultCache::lookup must demote the entry to a miss.
     * @return false when the file cannot be opened or is empty.
     */
    bool corruptBlobFile(const std::string &path);

    /**
     * Feed-cache blob faults: damage the RCFEED1 blob at @p path the
     * way @p cls describes — FeedTruncate tears the file mid-arrays,
     * FeedFlip flips one record-array byte (caught by the arrays
     * hash), FeedVersion bumps the format version word and re-seals
     * the header CRC so ONLY the version check can fire.  The contract
     * partner is Invariant::FeedIntegrity: the next FeedCache::lookup
     * must unlink the blob and demote the key to a verified recompute,
     * never replay damaged records.
     * @return false when @p path cannot be damaged (missing/short) or
     *         @p cls is not a Feed* class.
     */
    bool corruptFeedBlob(const std::string &path, FaultClass cls);

  private:
    Rng rng;
};

/**
 * Chaos-mode plumbing for the process-isolated worker pool.  A chaos
 * harness (bench/stress_daemon, tests) marks a doomed request by
 * encoding the worker fault class into the request SEED — the seed
 * rides the canonical digest, so retries of the marked request detonate
 * identically in whichever worker picks them up, with zero cooperation
 * from the daemon.  The contract partners are
 * Invariant::CrashContainment and Invariant::PoisonQuarantine.
 */

/** Build a marked seed (cls must be a Worker* chaos class). */
std::uint64_t chaosSeed(FaultClass cls, std::uint32_t salt);

/** @return true (and the class) when @p seed carries a chaos marker. */
bool chaosFromSeed(std::uint64_t seed, FaultClass &out);

/**
 * Execute the failure a marked request asked for.  Call from the
 * simulation callback INSIDE a sandboxed worker: WorkerCrash aborts,
 * WorkerOom allocates-and-touches until bad_alloc (bounded, so an
 * uncapped host survives a missing rlimit), WorkerHang spins without
 * ever checking the abort flag.  Never returns normally.
 *
 * WorkerOom keeps bumping @p heartbeat (when given) while the bomb
 * grows, like a real runaway simulation still making progress — so the
 * hang watchdog doesn't force-kill it before the allocator fails and
 * the death is typed as the OOM it is.  WorkerHang ignores the
 * heartbeat: going silent is its entire point.
 */
[[noreturn]] void
detonateChaos(FaultClass cls,
              std::atomic<std::uint64_t> *heartbeat = nullptr);

} // namespace rc

#endif // RC_VERIFY_FAULT_INJECTOR_HH
