#include "verify/integrity.hh"

#include <cstdio>

#include "cache/conventional_llc.hh"
#include "cache/mshr.hh"
#include "common/log.hh"
#include "reuse/reuse_cache.hh"
#include "sim/cmp.hh"

namespace rc
{

namespace
{

std::string
hexLine(Addr line)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(line));
    return buf;
}

void
add(IntegrityReport &r, Invariant inv, std::string detail)
{
    r.violations.push_back(Violation{inv, std::move(detail)});
}

} // namespace

const char *
toString(Invariant inv)
{
    switch (inv) {
      case Invariant::TagDataPointers: return "TagDataPointers";
      case Invariant::DirectoryInclusion: return "DirectoryInclusion";
      case Invariant::DirectoryEncoding: return "DirectoryEncoding";
      case Invariant::PrivateInclusion: return "PrivateInclusion";
      case Invariant::StateEncoding: return "StateEncoding";
      case Invariant::ReplMetadata: return "ReplMetadata";
      case Invariant::MshrLeak: return "MshrLeak";
      case Invariant::FrameIntegrity: return "FrameIntegrity";
      case Invariant::BlobIntegrity: return "BlobIntegrity";
      case Invariant::CrashContainment: return "CrashContainment";
      case Invariant::PoisonQuarantine: return "PoisonQuarantine";
      case Invariant::FeedIntegrity: return "FeedIntegrity";
    }
    return "unknown";
}

bool
IntegrityReport::has(Invariant inv) const
{
    return countOf(inv) > 0;
}

std::size_t
IntegrityReport::countOf(Invariant inv) const
{
    std::size_t n = 0;
    for (const auto &v : violations)
        n += v.invariant == inv;
    return n;
}

std::string
IntegrityReport::summary(std::size_t max_details) const
{
    std::string out = "integrity walk at cycle " +
                      std::to_string(checkedAt) + ": " +
                      std::to_string(violations.size()) + " violation(s)";
    const std::size_t shown =
        violations.size() < max_details ? violations.size() : max_details;
    for (std::size_t i = 0; i < shown; ++i)
        out += std::string("; [") + toString(violations[i].invariant) +
               "] " + violations[i].detail;
    if (shown < violations.size())
        out += "; ... " + std::to_string(violations.size() - shown) +
               " more";
    return out;
}

IntegrityChecker::IntegrityChecker(const Cmp &cmp) : sys(cmp) {}

void
IntegrityChecker::checkLlc(IntegrityReport &r) const
{
    const std::uint32_t cores = sys.numCores();

    if (const auto *rc = dynamic_cast<const ReuseCache *>(&sys.llc())) {
        const ReuseTagArray &tags = rc->tagArray();
        const ReuseDataArray &data = rc->dataArray();
        const auto &tg = tags.geometry();
        const auto &dg = data.geometry();

        std::uint64_t tags_with_data = 0;
        for (std::uint64_t s = 0; s < tg.numSets(); ++s) {
            for (std::uint32_t w = 0; w < tg.numWays(); ++w) {
                const ReuseTagArray::Entry &e = tags.at(s, w);
                if (e.state == LlcState::I)
                    continue;
                ++r.tagsWalked;
                std::string why;
                if (!e.dir.encodingSane(cores, &why))
                    add(r, Invariant::DirectoryEncoding,
                        "tag (" + std::to_string(s) + "," +
                            std::to_string(w) + "): " + why);
                if (!llcHasData(e.state))
                    continue;
                ++tags_with_data;
                if (e.fwdWay >= dg.numWays()) {
                    add(r, Invariant::TagDataPointers,
                        "tag (" + std::to_string(s) + "," +
                            std::to_string(w) + ") forward pointer " +
                            std::to_string(e.fwdWay) + " out of range");
                    continue;
                }
                const ReuseDataArray::Entry &d =
                    data.at(data.setFor(s), e.fwdWay);
                if (!data.validAt(data.setFor(s), e.fwdWay))
                    add(r, Invariant::TagDataPointers,
                        "tag (" + std::to_string(s) + "," +
                            std::to_string(w) +
                            ") points at an empty data entry");
                else if (d.tagSet != s || d.tagWay != w)
                    add(r, Invariant::TagDataPointers,
                        "tag (" + std::to_string(s) + "," +
                            std::to_string(w) +
                            ") reverse pointer names (" +
                            std::to_string(d.tagSet) + "," +
                            std::to_string(d.tagWay) + ")");
            }
        }

        std::uint64_t valid_data = 0;
        for (std::uint64_t s = 0; s < dg.numSets(); ++s) {
            for (std::uint32_t w = 0; w < dg.numWays(); ++w) {
                const ReuseDataArray::Entry &d = data.at(s, w);
                if (!data.validAt(s, w))
                    continue;
                ++r.dataWalked;
                ++valid_data;
                if (d.tagSet >= tg.numSets() || d.tagWay >= tg.numWays()) {
                    add(r, Invariant::TagDataPointers,
                        "data (" + std::to_string(s) + "," +
                            std::to_string(w) +
                            ") reverse pointer out of range");
                    continue;
                }
                const ReuseTagArray::Entry &e = tags.at(d.tagSet, d.tagWay);
                if (!llcHasData(e.state))
                    add(r, Invariant::TagDataPointers,
                        "data (" + std::to_string(s) + "," +
                            std::to_string(w) +
                            ") owned by a tag in state " +
                            toString(e.state) + " (orphan data block)");
                else if (e.fwdWay != w || data.setFor(d.tagSet) != s)
                    add(r, Invariant::TagDataPointers,
                        "data (" + std::to_string(s) + "," +
                            std::to_string(w) +
                            ") not named back by its owning tag");
            }
        }

        if (tags_with_data != valid_data)
            add(r, Invariant::TagDataPointers,
                "population mismatch: " + std::to_string(tags_with_data) +
                    " data-holding tags vs " + std::to_string(valid_data) +
                    " valid data entries");

        std::string why;
        if (!tags.policy().metadataSane(&why))
            add(r, Invariant::ReplMetadata, "tag array: " + why);
        if (!data.policy().metadataSane(&why))
            add(r, Invariant::ReplMetadata, "data array: " + why);
        return;
    }

    if (const auto *conv =
            dynamic_cast<const ConventionalLlc *>(&sys.llc())) {
        conv->forEachResident([&](Addr line, LlcState st,
                                  const DirectoryEntry &dir) {
            ++r.tagsWalked;
            if (st == LlcState::TO)
                add(r, Invariant::StateEncoding,
                    "line " + hexLine(line) +
                        " holds the reuse-cache-only TO state");
            std::string why;
            if (!dir.encodingSane(cores, &why))
                add(r, Invariant::DirectoryEncoding,
                    "line " + hexLine(line) + ": " + why);
        });
        std::string why;
        if (!conv->policy().metadataSane(&why))
            add(r, Invariant::ReplMetadata, why);
    }
    // Other organizations (NCID) opt out of LLC-specific walks.
}

void
IntegrityChecker::checkDirectoryInclusion(IntegrityReport &r) const
{
    const std::uint32_t cores = sys.numCores();

    // One direction: every directory bit must match an actual private
    // copy.  The walk and dir lookup depend on the organization.
    auto checkLine = [&](Addr line, const DirectoryEntry &dir) {
        for (CoreId c = 0; c < cores; ++c) {
            const bool in_dir = dir.isSharer(c);
            const bool held = sys.core(c).priv().present(line);
            if (in_dir && !held)
                add(r, Invariant::DirectoryInclusion,
                    "line " + hexLine(line) + ": directory lists core " +
                        std::to_string(c) + " but its L2 has no copy");
            else if (!in_dir && held)
                add(r, Invariant::DirectoryInclusion,
                    "line " + hexLine(line) + ": core " +
                        std::to_string(c) +
                        " holds a copy the directory does not list");
        }
    };

    const ReuseCache *rc = dynamic_cast<const ReuseCache *>(&sys.llc());
    const ConventionalLlc *conv =
        dynamic_cast<const ConventionalLlc *>(&sys.llc());
    if (rc) {
        const ReuseTagArray &tags = rc->tagArray();
        const auto &tg = tags.geometry();
        for (std::uint64_t s = 0; s < tg.numSets(); ++s) {
            for (std::uint32_t w = 0; w < tg.numWays(); ++w) {
                const ReuseTagArray::Entry &e = tags.at(s, w);
                if (e.state != LlcState::I)
                    checkLine(tags.lineAddrOf(s, w), e.dir);
            }
        }
    } else if (conv) {
        conv->forEachResident(
            [&](Addr line, LlcState, const DirectoryEntry &dir) {
                checkLine(line, dir);
            });
    } else {
        return; // no directory to cross-check
    }

    // The other direction: every private L2 line must be covered by a
    // resident LLC tag (inclusion over the tag array).
    for (CoreId c = 0; c < cores; ++c) {
        sys.core(c).priv().forEachL2Resident(
            [&](Addr line, const TagStore::Way &) {
                const DirectoryEntry *dir =
                    rc ? rc->dirOf(line) : conv->dirOf(line);
                if (!dir)
                    add(r, Invariant::DirectoryInclusion,
                        "core " + std::to_string(c) + " L2 holds line " +
                            hexLine(line) + " with no LLC tag "
                            "(inclusion violated)");
            });
    }
}

void
IntegrityChecker::checkPrivate(IntegrityReport &r) const
{
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        const PrivateHierarchy &priv = sys.core(c).priv();
        priv.forEachL2Resident(
            [&](Addr, const TagStore::Way &) { ++r.privateWalked; });
        priv.forEachL1Resident(
            [&](Addr line, const TagStore::Way &, bool is_instr) {
                ++r.privateWalked;
                if (!priv.present(line))
                    add(r, Invariant::PrivateInclusion,
                        "core " + std::to_string(c) + " L1" +
                            (is_instr ? "I" : "D") + " holds line " +
                            hexLine(line) + " absent from its L2");
            });
    }
}

void
IntegrityChecker::checkMshrs(IntegrityReport &r, bool quiesce) const
{
    const Cycle latest = quiesce ? sys.maxCoreReadyAt() : 0;
    std::uint32_t bank = 0;
    for (const auto &file : sys.crossbar().mshrs()) {
        ++r.mshrWalked;
        const std::uint32_t leaked = quiesce
            ? file->inFlightAt(latest)  // nothing may outlive quiesce
            : file->leakedEntries();    // mid-run: only unretirable ones
        if (leaked > 0)
            add(r, Invariant::MshrLeak,
                "bank " + std::to_string(bank) + ": " +
                    std::to_string(leaked) + " MSHR entr" +
                    (leaked == 1 ? "y" : "ies") +
                    (quiesce ? " still live at quiesce"
                             : " can never retire"));
        ++bank;
    }
}

IntegrityReport
IntegrityChecker::check(Cycle now) const
{
    IntegrityReport r;
    r.checkedAt = now;
    checkLlc(r);
    checkDirectoryInclusion(r);
    checkPrivate(r);
    checkMshrs(r, false);
    ++walksDone;
    return r;
}

IntegrityReport
IntegrityChecker::checkQuiesce(Cycle now) const
{
    IntegrityReport r;
    r.checkedAt = now;
    checkLlc(r);
    checkDirectoryInclusion(r);
    checkPrivate(r);
    checkMshrs(r, true);
    ++walksDone;
    return r;
}

void
IntegrityChecker::enforce(Cycle now) const
{
    const IntegrityReport r = check(now);
    if (!r.clean())
        throw SimError(SimError::Kind::Integrity,
                       "[integrity] " + r.summary());
}

void
IntegrityChecker::enforceQuiesce(Cycle now) const
{
    const IntegrityReport r = checkQuiesce(now);
    if (!r.clean())
        throw SimError(SimError::Kind::Integrity,
                       "[integrity] " + r.summary());
}

} // namespace rc
