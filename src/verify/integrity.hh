/**
 * @file
 * Whole-system integrity checker (the verify layer).
 *
 * Walks the complete simulated state at a quiescent point and validates
 * the structural invariants the reuse cache's correctness rests on:
 *
 *  - TagDataPointers: every tag in a data-holding state (S/M) names a
 *    valid data entry whose reverse pointer names it back, every valid
 *    data entry is owned by such a tag, and the populations match.
 *  - DirectoryInclusion: the full-map directory agrees bit-for-bit with
 *    the actual private L1/L2 contents, in both directions.
 *  - DirectoryEncoding: presence bits only address real cores; a
 *    recorded owner is a real core and a sharer.
 *  - PrivateInclusion: both L1s are subsets of their L2.
 *  - StateEncoding: the conventional LLC never holds the reuse-cache-
 *    only TO (tag-only) state.
 *  - ReplMetadata: NRU/NRR/Clock-ref bits are 0/1, every Clock set has
 *    exactly one hand and it points at a real way, RRPVs are in range.
 *  - MshrLeak: no MSHR entry can linger forever (doneAt == never); at
 *    quiesce, no entry outlives the last core's ready time.
 *
 * The checker is read-only and runs either every N references (via
 * Cmp::setCheckHook) or at end-of-run.  enforce() turns a dirty report
 * into a SimError(Integrity) that the bench harness quarantines.
 */

#ifndef RC_VERIFY_INTEGRITY_HH
#define RC_VERIFY_INTEGRITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rc
{

class Cmp;

/** The invariant classes the checker can report against. */
enum class Invariant : std::uint8_t
{
    TagDataPointers,    //!< reuse tag/data cross-consistency
    DirectoryInclusion, //!< directory vs actual private contents
    DirectoryEncoding,  //!< presence/owner bit encoding
    PrivateInclusion,   //!< L1 subset of L2
    StateEncoding,      //!< illegal stable state for the organization
    ReplMetadata,       //!< replacement metadata out of range
    MshrLeak,           //!< MSHR entry that can never retire
    FrameIntegrity,     //!< service-protocol frame failed validation
                        //!< (enforced by svc::readFrame/decodeFrame,
                        //!< not by the state walker)
    BlobIntegrity,      //!< result-cache blob failed CRC/key checks
                        //!< (enforced by svc::ResultCache::lookup)
    CrashContainment,   //!< a crashing sandboxed worker must surface as
                        //!< a typed SimError(Crash) reply, never kill
                        //!< the daemon or corrupt another request
                        //!< (enforced by svc::Supervisor)
    PoisonQuarantine,   //!< a request that kills K distinct workers must
                        //!< be refused persistently from then on
                        //!< (enforced by svc::PoisonIndex + Daemon)
    FeedIntegrity,      //!< feed-cache blob failed header/hash/meta/
                        //!< version validation: the key must demote to
                        //!< a verified recompute, never replay damaged
                        //!< records (enforced by FeedCache::lookup)
};

/** Short name, e.g. "TagDataPointers". */
const char *toString(Invariant inv);

/** One invariant violation found during a walk. */
struct Violation
{
    Invariant invariant;
    std::string detail; //!< human-readable diagnosis with coordinates
};

/** Result of one full state walk. */
struct IntegrityReport
{
    std::vector<Violation> violations;
    Cycle checkedAt = 0;            //!< cycle the walk observed
    std::uint64_t tagsWalked = 0;   //!< LLC tag entries visited
    std::uint64_t dataWalked = 0;   //!< reuse data entries visited
    std::uint64_t privateWalked = 0; //!< private L1/L2 lines visited
    std::uint64_t mshrWalked = 0;   //!< MSHR files visited

    /** @return true iff the walk found no violations. */
    bool clean() const { return violations.empty(); }

    /** @return true iff some violation is of class @p inv. */
    bool has(Invariant inv) const;

    /** Number of violations of class @p inv. */
    std::size_t countOf(Invariant inv) const;

    /** One-line summary plus the first few violation details. */
    std::string summary(std::size_t max_details = 4) const;
};

/**
 * Read-only walker over one Cmp.  Stateless apart from the walk
 * counter; safe to invoke from the Cmp check hook (the walk happens on
 * the thread running that simulation, so sweeps with --jobs=N race
 * nothing).
 */
class IntegrityChecker
{
  public:
    /** @param cmp the system to validate (not owned). */
    explicit IntegrityChecker(const Cmp &cmp);

    /**
     * Full mid-run walk at cycle @p now.  MSHR entries still in flight
     * are legitimate; only unretirable ones are leaks.
     */
    IntegrityReport check(Cycle now) const;

    /**
     * End-of-run walk: everything check() covers, plus MSHR entries
     * whose completion lies beyond every core's ready time (nothing can
     * retire them anymore).
     */
    IntegrityReport checkQuiesce(Cycle now) const;

    /** check() and throw SimError(Integrity) if the report is dirty. */
    void enforce(Cycle now) const;

    /** checkQuiesce() and throw SimError(Integrity) if dirty. */
    void enforceQuiesce(Cycle now) const;

    /** Completed walks (tests / cadence accounting). */
    std::uint64_t walks() const { return walksDone; }

  private:
    void checkLlc(IntegrityReport &r) const;
    void checkDirectoryInclusion(IntegrityReport &r) const;
    void checkPrivate(IntegrityReport &r) const;
    void checkMshrs(IntegrityReport &r, bool quiesce) const;

    const Cmp &sys;
    mutable std::uint64_t walksDone = 0;
};

} // namespace rc

#endif // RC_VERIFY_INTEGRITY_HH
