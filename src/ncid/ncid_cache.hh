/**
 * @file
 * NCID: Non-inclusive Cache, Inclusive Directory architecture (Zhao et
 * al., CF 2010), as specialized in Section 5.5 of the reuse-cache paper.
 *
 * NCID keeps a conventional-size inclusive tag/directory array while the
 * data array may be smaller.  Unlike the reuse cache, tag and data arrays
 * have the SAME number of sets, so shrinking the data array reduces its
 * associativity (an 8 MBeq 16-way tag array with a 1 MB data array leaves
 * 2 data ways per set).
 *
 * Fill policy follows the NCID selective-allocation evaluation: set
 * dueling selects per thread between
 *  - normal fill: every miss allocates tag and data, inserted MRU;
 *  - selective fill: a random 5% of misses allocate tag and data at MRU,
 *    the other 95% allocate only the tag, inserted at the LRU position.
 * A later hit on a tag-only line fetches the data from memory and
 * allocates it (paying the same double-fetch cost as the reuse cache).
 * Tag and data replacement are both LRU.
 */

#ifndef RC_NCID_NCID_CACHE_HH
#define RC_NCID_NCID_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/llc_iface.hh"
#include "cache/set_dueling.hh"
#include "common/rng.hh"
#include "mem/memctrl.hh"
#include "reuse/data_array.hh"
#include "reuse/tag_array.hh"

namespace rc
{

/** NCID configuration. */
struct NcidConfig
{
    std::uint64_t tagEquivBytes = 8ull << 20; //!< tag entries * 64
    std::uint32_t tagWays = 16;
    std::uint64_t dataBytes = 1ull << 20;     //!< data capacity
    std::uint32_t numCores = 8;
    Cycle tagLatency = 2;
    Cycle dataLatency = 8;
    Cycle interventionLatency = 14;
    double selectiveFillRate = 0.05; //!< fraction getting data in
                                     //!< selective mode
    std::uint64_t seed = 1;
    std::string name = "ncid";
};

/** The NCID baseline SLLC. */
class NcidCache : public Sllc
{
  public:
    /**
     * @param cfg geometry and latencies; data ways are derived as
     *        dataBytes / (64 * tagSets) and must be at least 1.
     * @param mem memory controller (not owned).
     */
    NcidCache(const NcidConfig &cfg, MemCtrl &mem);

    LlcResponse request(const LlcRequest &req) override;
    void evictNotify(Addr line_addr, CoreId core, bool dirty,
                     Cycle now) override;
    void setRecallHandler(RecallHandler *handler) override { recaller = handler; }
    void setObserver(LlcObserver *observer) override { watcher = observer; }
    const StatSet &stats() const override { return statSet; }
    Counter missesBy(CoreId core) const override;
    Counter accessesBy(CoreId core) const override;
    std::string describe() const override;
    std::uint64_t dataLinesResident() const override
    {
        return data.residentCount();
    }
    std::uint64_t dataLinesTotal() const override
    {
        return data.geometry().numLines();
    }
    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

    /** State of a line (tests); I when absent. */
    LlcState stateOf(Addr line_addr) const;

    /** Dueling monitor (tests). */
    const SetDueling &dueling() const { return duel; }

    /** Data-array ways per set after the size reduction. */
    std::uint32_t dataWays() const { return data.geometry().numWays(); }

  private:
    void evictTag(std::uint64_t set, std::uint32_t way, Cycle now);
    void allocData(std::uint64_t set, std::uint32_t way, Cycle now);

    NcidConfig cfg;
    ReuseTagArray tags;
    ReuseDataArray data;
    SetDueling duel;
    MemCtrl &mem;
    Rng rng;
    RecallHandler *recaller = nullptr;
    LlcObserver *watcher = nullptr;

    StatSet statSet;
    Counter &accesses;
    Counter &tagMisses;
    Counter &dataHits;
    Counter &tagOnlyHits;
    Counter &selectiveFills;
    Counter &normalFills;
    Counter &tagOnlyFills;
    Counter &dirtyWritebacks;
    Counter &inclusionRecalls;
    Counter &invalidationsSent;
    Counter &interventions;
    std::vector<Counter> coreAccesses;
    std::vector<Counter> coreMisses;
};

} // namespace rc

#endif // RC_NCID_NCID_CACHE_HH
