#include "ncid/ncid_cache.hh"

#include <cstdio>

#include "common/log.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

namespace
{

CacheGeometry
ncidDataGeometry(const NcidConfig &cfg)
{
    const CacheGeometry tag_geom =
        CacheGeometry::fromBytes(cfg.tagEquivBytes, cfg.tagWays);
    const std::uint64_t data_lines = cfg.dataBytes / lineBytes;
    RC_ASSERT(data_lines % tag_geom.numSets() == 0,
              "NCID data lines must be a multiple of the tag set count");
    const std::uint64_t ways = data_lines / tag_geom.numSets();
    RC_ASSERT(ways >= 1, "NCID needs at least one data way per set");
    return CacheGeometry(data_lines, static_cast<std::uint32_t>(ways));
}

} // namespace

NcidCache::NcidCache(const NcidConfig &cfg_, MemCtrl &mem_)
    : cfg(cfg_),
      tags(CacheGeometry::fromBytes(cfg_.tagEquivBytes, cfg_.tagWays),
           ReplKind::LRU, cfg_.numCores, cfg_.seed),
      data(ncidDataGeometry(cfg_), ReplKind::LRU, cfg_.seed + 1),
      duel(tags.geometry().numSets(), cfg_.numCores),
      mem(mem_),
      rng(cfg_.seed + 2),
      statSet(cfg_.name),
      accesses(statSet.add("accesses", "demand requests received")),
      tagMisses(statSet.add("tagMisses", "requests missing the tag array")),
      dataHits(statSet.add("dataHits", "hits served by the data array")),
      tagOnlyHits(statSet.add("tagOnlyHits",
                              "hits on tag-only lines (data refetched)")),
      selectiveFills(statSet.add("selectiveFills",
                                 "misses filled in selective mode")),
      normalFills(statSet.add("normalFills",
                              "misses filled in normal mode")),
      tagOnlyFills(statSet.add("tagOnlyFills",
                               "misses that allocated only a tag")),
      dirtyWritebacks(statSet.add("dirtyWritebacks",
                                  "dirty lines written to memory")),
      inclusionRecalls(statSet.add("inclusionRecalls",
                                   "tag victims recalled from private caches")),
      invalidationsSent(statSet.add("invalidationsSent",
                                    "private copies invalidated (GETX/UPG)")),
      interventions(statSet.add("interventions",
                                "requests served by a private owner")),
      coreAccesses(cfg_.numCores, 0),
      coreMisses(cfg_.numCores, 0)
{
    RC_ASSERT(data.geometry().numSets() == tags.geometry().numSets(),
              "NCID requires equal set counts in tag and data arrays");
}

void
NcidCache::allocData(std::uint64_t set, std::uint32_t way, Cycle now)
{
    ReuseTagArray::Entry &entry = tags.at(set, way);

    bool needs_eviction = false;
    const std::uint32_t dway = data.allocateWay(set, needs_eviction);
    if (needs_eviction) {
        const ReuseDataArray::Entry &victim = data.at(set, dway);
        ReuseTagArray::Entry &vtag = tags.at(victim.tagSet, victim.tagWay);
        RC_ASSERT(llcHasData(vtag.state),
                  "data entry owned by a tag without data");
        const Addr vline = tags.lineAddrOf(victim.tagSet, victim.tagWay);

        ProtoInput in{vtag.state, ProtoEvent::DataRepl,
                      vtag.dir.hasOwner(), true};
        const ProtoResult res = protocolTransition(in);
        RC_ASSERT(res.legal, "DataRepl illegal in state %s",
                  toString(vtag.state));
        if (res.actions & ActWriteMemData) {
            mem.writeLine(vline, now);
            ++dirtyWritebacks;
        }
        vtag.state = res.next;
        data.invalidate(set, dway);
        if (watcher)
            watcher->onDataEvict(vline, now);
    }

    data.fill(set, dway, set, way);
    entry.fwdWay = dway;
    entry.enteredData = true;
    if (watcher)
        watcher->onDataFill(tags.lineAddrOf(set, way), now);
}

void
NcidCache::evictTag(std::uint64_t set, std::uint32_t way, Cycle now)
{
    ReuseTagArray::Entry &e = tags.at(set, way);
    RC_ASSERT(e.state != LlcState::I, "evicting an invalid tag");
    const Addr line = tags.lineAddrOf(set, way);

    ProtoInput in{e.state, ProtoEvent::TagRepl, e.dir.hasOwner(), true};
    const ProtoResult res = protocolTransition(in);
    RC_ASSERT(res.legal, "TagRepl illegal in state %s", toString(e.state));

    bool dirty_recalled = false;
    if ((res.actions & ActRecallSharers) && !e.dir.empty()) {
        RC_ASSERT(recaller, "no recall handler installed");
        dirty_recalled = recaller->recall(line, e.dir.presenceMask());
        ++inclusionRecalls;
    }
    if (res.actions & ActWriteMemData) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }
    if ((res.actions & ActWriteMemPut) && dirty_recalled) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }

    if (llcHasData(e.state)) {
        data.invalidate(set, e.fwdWay);
        if (watcher)
            watcher->onDataEvict(line, now);
    }

    tags.invalidate(set, way);
}

LlcResponse
NcidCache::request(const LlcRequest &req)
{
    const Addr line = lineAlign(req.lineAddr);
    ++accesses;
    ++coreAccesses[req.core % coreAccesses.size()];

    const std::uint64_t set = tags.geometry().setIndex(line);
    std::uint32_t way = 0;
    ReuseTagArray::Entry *entry = tags.find(line, way);

    const bool owner_valid = entry && entry->dir.hasOwner();
    RC_ASSERT(!owner_valid || entry->dir.owner() != req.core,
              "owner cannot request its own line at the SLLC");

    LlcResponse resp;
    resp.tagHit = entry != nullptr;
    Cycle done = req.now + cfg.tagLatency;

    if (entry) {
        ProtoInput in{entry->state, req.event, owner_valid, true};
        const ProtoResult res = protocolTransition(in);
        RC_ASSERT(res.legal, "%s illegal in state %s",
                  toString(req.event), toString(entry->state));

        const bool was_tag_only = entry->state == LlcState::TO;

        if (res.actions & ActDataHit) {
            done += cfg.dataLatency;
            resp.dataHit = true;
            ++dataHits;
            data.touchHit(set, entry->fwdWay);
            if (watcher)
                watcher->onDataHit(line, req.now);
        }
        if (res.actions & ActFetchOwner) {
            RC_ASSERT(recaller, "intervention needs a recall handler");
            done += cfg.interventionLatency;
            ++interventions;
            if (req.event == ProtoEvent::GETS)
                recaller->downgrade(line, 1u << entry->dir.owner());
        }
        if (res.actions & ActInvSharers) {
            const std::uint32_t mask = entry->dir.othersMask(req.core);
            if (mask) {
                RC_ASSERT(recaller, "no recall handler installed");
                recaller->recall(line, mask);
                invalidationsSent += __builtin_popcount(mask);
                for (CoreId c = 0; c < cfg.numCores; ++c) {
                    if (mask & (1u << c))
                        entry->dir.removeSharer(c);
                }
            }
        }
        if (res.actions & ActFetchMem) {
            done = mem.readLine(line, req.now + cfg.tagLatency);
            resp.memFetched = true;
            ++coreMisses[req.core % coreMisses.size()];
        }
        if (res.actions & ActAllocData) {
            RC_ASSERT(was_tag_only, "data allocation on a tag+data state");
            ++tagOnlyHits;
            allocData(set, way, req.now);
        }

        entry->state = res.next;
        if (res.actions & ActClearOwner)
            entry->dir.clearOwner();
        if (res.actions & ActFillPrivate)
            entry->dir.addSharer(req.core);
        if (res.actions & ActSetOwner)
            entry->dir.setOwner(req.core);
        tags.touchHit(set, way, req.core, req.pc, line);
        resp.doneAt = done;
#if RC_TRACE_ENABLED
        if (EventTracer *tr = EventTracer::current(); tr && tr->enabled()) {
            tr->record(resp.dataHit ? "ncid.dataHit" : "ncid.tagOnlyHit",
                       TraceDomain::Sim, req.core, req.now,
                       done - req.now, line);
            if (const char *coh = coherenceTraceLabel(res.actions))
                tr->record(coh, TraceDomain::Sim, req.core, req.now, 0,
                           line);
        }
#endif
        return resp;
    }

    // Tag miss: pick the fill mode by thread-aware set dueling.
    duel.onMiss(set, req.core);
    const bool selective = duel.chooseB(set, req.core);
    bool with_data;
    if (selective) {
        ++selectiveFills;
        with_data = rng.uniform() < cfg.selectiveFillRate;
    } else {
        ++normalFills;
        with_data = true;
    }

    ProtoInput in{LlcState::I, req.event, false, !with_data};
    const ProtoResult res = protocolTransition(in);
    RC_ASSERT(res.legal, "%s illegal in state I", toString(req.event));

    bool needs_eviction = false;
    way = tags.allocateWay(set, req.core, needs_eviction, req.pc, line);
    if (needs_eviction)
        evictTag(set, way, req.now);

    ReuseTagArray::Entry &e = tags.at(set, way);
    tags.setTag(set, way, line);
    e.state = res.next;
    e.dir.clear();
    e.enteredData = false;
    if (res.actions & ActFillPrivate)
        e.dir.addSharer(req.core);
    if (res.actions & ActSetOwner)
        e.dir.setOwner(req.core);
    // Selective-mode tag-only fills go to the LRU position.
    tags.touchFill(set, way, req.core, selective && !with_data, req.pc,
                   line);

    if (res.actions & ActAllocData)
        allocData(set, way, req.now);
    else
        ++tagOnlyFills;

    done = mem.readLine(line, req.now + cfg.tagLatency);
    resp.memFetched = true;
    ++tagMisses;
    ++coreMisses[req.core % coreMisses.size()];
    resp.doneAt = done;
    RC_TEVENT("ncid.tagMiss", TraceDomain::Sim, req.core, req.now,
              done - req.now, line);
    return resp;
}

void
NcidCache::evictNotify(Addr line_addr, CoreId core, bool dirty, Cycle now)
{
    const Addr line = lineAlign(line_addr);
    std::uint32_t way = 0;
    ReuseTagArray::Entry *entry = tags.find(line, way);
    RC_ASSERT(entry, "eviction notification for a non-resident tag "
              "(inclusion violated)");

    ProtoInput in;
    in.state = entry->state;
    in.event = dirty ? ProtoEvent::PUTX : ProtoEvent::PUTS;
    in.ownerValid = entry->dir.hasOwner();
    in.selectiveAlloc = true;
    const ProtoResult res = protocolTransition(in);
    RC_ASSERT(res.legal, "%s illegal in state %s",
              toString(in.event), toString(in.state));

    if (res.actions & ActWriteMemPut) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }
    entry->state = res.next;
    if (res.actions & ActClearOwner)
        entry->dir.clearOwner();
    entry->dir.removeSharer(core);
}

Counter
NcidCache::missesBy(CoreId core) const
{
    return coreMisses[core % coreMisses.size()];
}

Counter
NcidCache::accessesBy(CoreId core) const
{
    return coreAccesses[core % coreAccesses.size()];
}

std::string
NcidCache::describe() const
{
    const double tag_mb =
        static_cast<double>(cfg.tagEquivBytes) / (1024.0 * 1024.0);
    const double data_mb =
        static_cast<double>(cfg.dataBytes) / (1024.0 * 1024.0);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "NCID-%.3g/%.3g (%u data ways)",
                  tag_mb, data_mb, data.geometry().numWays());
    return buf;
}

LlcState
NcidCache::stateOf(Addr line_addr) const
{
    std::uint32_t way = 0;
    auto *self = const_cast<NcidCache *>(this);
    const ReuseTagArray::Entry *e =
        self->tags.find(lineAlign(line_addr), way);
    return e ? e->state : LlcState::I;
}

void
NcidCache::save(Serializer &s) const
{
    s.beginSection("tags");
    tags.save(s);
    s.endSection("tags");
    s.beginSection("data");
    data.save(s);
    s.endSection("data");
    s.beginSection("duel");
    duel.save(s);
    s.endSection("duel");
    s.putU64(rng.rawState());
    statSet.save(s);
    saveVec(s, coreAccesses);
    saveVec(s, coreMisses);
}

void
NcidCache::restore(Deserializer &d)
{
    d.beginSection("tags");
    tags.restore(d);
    d.endSection("tags");
    d.beginSection("data");
    data.restore(d);
    d.endSection("data");
    d.beginSection("duel");
    duel.restore(d);
    d.endSection("duel");
    rng.setRawState(d.getU64());
    statSet.restore(d);
    restoreVec(d, coreAccesses, "NCID per-core accesses");
    restoreVec(d, coreMisses, "NCID per-core misses");
}

} // namespace rc
