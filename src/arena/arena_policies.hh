/**
 * @file
 * Policy arena: ChampSim CRC2-family replacement policies.
 *
 * Each class below is a port of a published SLLC replacement scheme onto
 * the repository's ReplacementPolicy ABI.  The ABI is deliberately
 * ChampSim-shaped: policies see the requesting PC and the accessed line
 * (ReplAccess/VictimQuery), the (set, way) coordinates, and three
 * lifecycle notifications — fill, hit, and invalidate (the eviction leg:
 * the owning caches call onInvalidate for every line that leaves, so
 * outcome-trained predictors close their feedback loop there).
 *
 * Like cache/policies.hh, the classes are `final` with their per-access
 * methods inline so PolicyRef (cache/policy_dispatch.hh) statically
 * resolves and inlines them; the virtual interface remains for
 * construction, serialization and the verify layer.  Three classes host
 * several registered kinds through a Mode enum, mirroring how
 * RripPolicy hosts SRRIP/BRRIP/DRRIP:
 *
 *   ShipPolicy      — Ship (PC sigs), ShipMem (region sigs),
 *                     DuelShip (SRRIP vs SHiP insertion dueling)
 *   InsertionPolicy — Lip, Bip, Dip (LRU/BIP set dueling)
 *
 * plus RedrePolicy, DeadBlockPolicy, RdAwarePolicy, StreamPolicy,
 * PlruPolicy and MruPolicy, one kind each.
 */

#ifndef RC_ARENA_ARENA_POLICIES_HH
#define RC_ARENA_ARENA_POLICIES_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"
#include "cache/set_dueling.hh"
#include "common/types.hh"

namespace rc
{

namespace arena
{

/** Fold a 64-bit key (PC or region id) into a table index. */
inline std::uint32_t
foldKey(Addr key, std::uint32_t table_size)
{
    const std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>(h >> 40) & (table_size - 1);
}

} // namespace arena

/**
 * SHiP (Wu et al., MICRO 2011): a signature history counter table
 * remembers whether fills inserted by a signature were re-referenced;
 * fills whose signature never sees reuse insert at distant RRPV.
 *
 * - Mode::PC   signatures hash the requesting PC (SHiP-PC).
 * - Mode::Mem  signatures hash the 16 KiB memory region (SHiP-Mem).
 * - Mode::Duel thread-aware set dueling between plain SRRIP insertion
 *   and SHiP-predicted insertion (both PC-signature trained).
 */
class ShipPolicy final : public ReplacementPolicy
{
  public:
    /** Signature source / insertion-selection flavour. */
    enum class Mode : std::uint8_t { PC, Mem, Duel };

    ShipPolicy(std::uint64_t num_sets, std::uint32_t num_ways, Mode mode,
               std::uint32_t num_cores);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    void onInvalidate(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: a signature's outcome counter. */
    std::uint8_t counterOf(std::uint32_t sig) const { return shct[sig]; }

    /** Test hook: a line's current RRPV. */
    std::uint32_t rrpv(std::uint64_t set, std::uint32_t way) const
    {
        return rrpvs[set * ways + way];
    }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    static constexpr std::uint32_t kTableSize = 16384;
    static constexpr std::uint8_t kCtrMax = 7;
    static constexpr std::uint8_t kCtrInit = 1;
    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kReused = 2;

    std::uint32_t sigOf(const ReplAccess &ctx) const;

    Mode mode;
    std::vector<std::uint8_t> rrpvs;
    std::vector<std::uint32_t> sigs;  //!< per-line fill signature
    std::vector<std::uint8_t> lflags; //!< per-line kValid | kReused
    std::vector<std::uint8_t> shct;   //!< signature history counters
    SetDueling duel;                  //!< Mode::Duel only
};

/**
 * REDRE (PAPERS.md 2402.00533, SNIPPETS.md Snippet 1): a PC-indexed
 * reuse counter table steers three insertion priorities; victims are
 * the lowest-priority, least-recently-touched lines.
 */
class RedrePolicy final : public ReplacementPolicy
{
  public:
    RedrePolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    void onInvalidate(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: a line's insertion priority (0 low .. 2 high). */
    std::uint8_t priorityOf(std::uint64_t set, std::uint32_t way) const
    {
        return prio[set * ways + way];
    }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    static constexpr std::uint32_t kTableSize = 4096;
    static constexpr std::uint8_t kReuseMax = 31;
    static constexpr std::uint8_t kReuseInit = 15;
    static constexpr std::uint8_t kHigh = 20;
    static constexpr std::uint8_t kLow = 10;
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kReused = 2;

    std::vector<std::uint8_t> prio;     //!< 0 low, 1 mid, 2 high
    std::vector<std::uint64_t> stamp;   //!< recency within a priority
    std::vector<std::uint32_t> pcIdx;   //!< per-line table index
    std::vector<std::uint8_t> lflags;
    std::vector<std::uint8_t> table;    //!< PC reuse counters (0..31)
    std::uint64_t tick = 0;
};

/**
 * PC-trained dead-block prediction (after Lai/Falsafi and the CRC2
 * sampler predictors): blocks filled by a PC whose fills historically
 * die unreferenced are marked dead on arrival and evicted first; the
 * LRU stamp lane breaks ties.
 */
class DeadBlockPolicy final : public ReplacementPolicy
{
  public:
    DeadBlockPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    void onInvalidate(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: is the line currently predicted dead? */
    bool deadFlag(std::uint64_t set, std::uint32_t way) const
    {
        return (lflags[set * ways + way] & kDead) != 0;
    }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    static constexpr std::uint32_t kTableSize = 4096;
    static constexpr std::uint8_t kPredMax = 3;
    static constexpr std::uint8_t kDeadThreshold = 2;
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kReused = 2;
    static constexpr std::uint8_t kDead = 4;

    std::vector<std::uint64_t> stamp;
    std::vector<std::uint32_t> sigs;
    std::vector<std::uint8_t> lflags;
    std::vector<std::uint8_t> pred;   //!< 2-bit deadness counters
    std::uint64_t tick = 0;
};

/**
 * Reuse-distance-aware insertion: per-set access clocks measure the
 * observed hit reuse distance (EMA); while the average exceeds the
 * associativity, new fills insert near-LRU so the thrashing working set
 * cannot flush the fraction that does fit (cf. Duong et al., PDP).
 */
class RdAwarePolicy final : public ReplacementPolicy
{
  public:
    RdAwarePolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: current reuse-distance estimate (EMA). */
    std::uint64_t avgReuseDistance() const { return avg16 / 16; }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint64_t> setTick; //!< per-set access clock
    std::vector<std::uint64_t> touch;   //!< per-line last-touch clock
    std::uint64_t avg16 = 0;            //!< 16x EMA of hit reuse distance
};

/**
 * Static/dynamic insertion policies (Qureshi et al., ISCA 2007):
 *
 * - Mode::LIP  every fill inserts at LRU; hits promote to MRU.
 * - Mode::BIP  LIP with a deterministic 1/32 of fills at MRU.
 * - Mode::DIP  thread-aware set dueling between LRU and BIP.
 */
class InsertionPolicy final : public ReplacementPolicy
{
  public:
    /** Insertion flavour. */
    enum class Mode : std::uint8_t { LIP, BIP, DIP };

    InsertionPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                    Mode mode, std::uint32_t num_cores);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: the dueling monitor (DIP mode only). */
    const SetDueling &dueling() const { return duel; }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    static constexpr std::uint64_t kBipEpsilonInv = 32;

    Mode mode;
    std::vector<std::uint64_t> stamp;
    std::uint64_t tick = 0;
    std::uint64_t fills = 0; //!< BIP throttle counter
    SetDueling duel;         //!< Mode::DIP only
};

/**
 * Streaming-bypass baseline: a PC-indexed stride detector marks fills
 * from confirmed streaming instructions dead on arrival — the closest
 * legal approximation of bypass under an inclusive full-map directory,
 * where the tag must be allocated for coherence.
 */
class StreamPolicy final : public ReplacementPolicy
{
  public:
    StreamPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    /** Test hook: is the line marked dead on arrival? */
    bool deadFlag(std::uint64_t set, std::uint32_t way) const
    {
        return lflags[set * ways + way] != 0;
    }

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    static constexpr std::uint32_t kTableSize = 1024;
    static constexpr std::uint8_t kConfMax = 3;
    static constexpr std::uint8_t kConfThreshold = 2;

    std::vector<std::uint64_t> stamp;
    std::vector<std::uint8_t> lflags;    //!< 1 = dead on arrival
    std::vector<std::uint64_t> lastLine; //!< per-PC last line index
    std::vector<std::int64_t> stride;    //!< per-PC last stride
    std::vector<std::uint8_t> conf;      //!< per-PC stride confidence
    std::uint64_t tick = 0;
};

/** Tree pseudo-LRU (the hardware-practical LRU approximation). */
class PlruPolicy final : public ReplacementPolicy
{
  public:
    PlruPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    void touch(std::uint64_t set, std::uint32_t way, bool toward);

    std::uint32_t leaves;            //!< ways rounded up to a power of 2
    std::vector<std::uint8_t> bits;  //!< (leaves-1) tree bits per set
};

/**
 * Evict-MRU (anti-thrash baseline, cf. Belady-adverse cyclic sweeps):
 * keeps old residents by sacrificing the newest line, the optimal
 * strategy for cyclic working sets just above the cache size.
 */
class MruPolicy final : public ReplacementPolicy
{
  public:
    MruPolicy(std::uint64_t num_sets, std::uint32_t num_ways);

    void onFill(std::uint64_t set, std::uint32_t way,
                const ReplAccess &ctx) override;
    void onHit(std::uint64_t set, std::uint32_t way,
               const ReplAccess &ctx) override;
    std::uint32_t victim(std::uint64_t set, const VictimQuery &q) override;

    bool metadataSane(std::string *why = nullptr) const override;
    bool corruptMetadata(std::uint64_t set, std::uint32_t way) override;

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::vector<std::uint64_t> stamp;
    std::uint64_t tick = 0;
};

// ---------------------------------------------------------------------
// Inline per-access methods (see the header comment in
// cache/policies.hh: PolicyRef's sealed dispatch inlines these).
// ---------------------------------------------------------------------

inline std::uint32_t
ShipPolicy::sigOf(const ReplAccess &ctx) const
{
    // SHiP-Mem signatures name 16 KiB regions; the PC modes name the
    // filling instruction.
    const Addr key = mode == Mode::Mem ? (ctx.lineAddr >> 14) : ctx.pc;
    return arena::foldKey(key, kTableSize);
}

inline void
ShipPolicy::onFill(std::uint64_t set, std::uint32_t way,
                   const ReplAccess &ctx)
{
    const std::uint64_t idx = set * ways + way;
    if (mode == Mode::Duel && ctx.isMiss)
        duel.onMiss(set, ctx.core);
    const std::uint32_t sig = sigOf(ctx);
    sigs[idx] = sig;
    lflags[idx] = kValid;
    bool distant = shct[sig] == 0;
    if (mode == Mode::Duel && !duel.chooseB(set, ctx.core))
        distant = false; // policy A: plain SRRIP insertion
    if (ctx.insertLru)
        distant = true;  // prefetches keep the lowest priority
    rrpvs[idx] = distant ? kMaxRrpv : kMaxRrpv - 1;
}

inline void
ShipPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    const std::uint64_t idx = set * ways + way;
    rrpvs[idx] = 0;
    lflags[idx] |= kReused;
    if (shct[sigs[idx]] < kCtrMax)
        ++shct[sigs[idx]];
}

inline void
ShipPolicy::onInvalidate(std::uint64_t set, std::uint32_t way)
{
    const std::uint64_t idx = set * ways + way;
    // Eviction training: a generation that died unreferenced votes its
    // signature towards dead-on-arrival.
    if ((lflags[idx] & kValid) && !(lflags[idx] & kReused) &&
        shct[sigs[idx]] > 0) {
        --shct[sigs[idx]];
    }
    lflags[idx] = 0;
    rrpvs[idx] = kMaxRrpv;
}

inline std::uint32_t
ShipPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    for (;;) {
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (rrpvs[base + w] >= kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < ways; ++w)
            ++rrpvs[base + w];
    }
}

inline void
RedrePolicy::onFill(std::uint64_t set, std::uint32_t way,
                    const ReplAccess &ctx)
{
    const std::uint64_t idx = set * ways + way;
    const std::uint32_t i = arena::foldKey(ctx.pc, kTableSize);
    pcIdx[idx] = i;
    lflags[idx] = kValid;
    const std::uint8_t c = table[i];
    prio[idx] = ctx.insertLru ? 0 : (c >= kHigh ? 2 : c >= kLow ? 1 : 0);
    stamp[idx] = ++tick;
}

inline void
RedrePolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    const std::uint64_t idx = set * ways + way;
    prio[idx] = 2;
    stamp[idx] = ++tick;
    if ((lflags[idx] & kValid) && !(lflags[idx] & kReused)) {
        lflags[idx] |= kReused;
        if (table[pcIdx[idx]] < kReuseMax)
            ++table[pcIdx[idx]];
    }
}

inline void
RedrePolicy::onInvalidate(std::uint64_t set, std::uint32_t way)
{
    const std::uint64_t idx = set * ways + way;
    if ((lflags[idx] & kValid) && !(lflags[idx] & kReused) &&
        table[pcIdx[idx]] > 0) {
        --table[pcIdx[idx]];
    }
    lflags[idx] = 0;
    prio[idx] = 0;
    stamp[idx] = 0;
}

inline std::uint32_t
RedrePolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < ways; ++w) {
        if (prio[base + w] < prio[base + best] ||
            (prio[base + w] == prio[base + best] &&
             stamp[base + w] < stamp[base + best])) {
            best = w;
        }
    }
    return best;
}

inline void
DeadBlockPolicy::onFill(std::uint64_t set, std::uint32_t way,
                        const ReplAccess &ctx)
{
    const std::uint64_t idx = set * ways + way;
    const std::uint32_t sig = arena::foldKey(ctx.pc, kTableSize);
    sigs[idx] = sig;
    const bool dead = pred[sig] >= kDeadThreshold || ctx.insertLru;
    lflags[idx] = static_cast<std::uint8_t>(kValid | (dead ? kDead : 0));
    stamp[idx] = ++tick;
}

inline void
DeadBlockPolicy::onHit(std::uint64_t set, std::uint32_t way,
                       const ReplAccess &ctx)
{
    (void)ctx;
    const std::uint64_t idx = set * ways + way;
    stamp[idx] = ++tick;
    if ((lflags[idx] & kValid) && !(lflags[idx] & kReused)) {
        lflags[idx] |= kReused;
        if (pred[sigs[idx]] > 0)
            --pred[sigs[idx]]; // the signature's fills do get reused
    }
    lflags[idx] &= static_cast<std::uint8_t>(~kDead); // proven alive
}

inline void
DeadBlockPolicy::onInvalidate(std::uint64_t set, std::uint32_t way)
{
    const std::uint64_t idx = set * ways + way;
    if ((lflags[idx] & kValid) && !(lflags[idx] & kReused) &&
        pred[sigs[idx]] < kPredMax) {
        ++pred[sigs[idx]]; // died unreferenced: vote dead
    }
    lflags[idx] = 0;
    stamp[idx] = 0;
}

inline std::uint32_t
DeadBlockPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::int32_t dead_best = -1;
    std::uint32_t lru_best = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if ((lflags[base + w] & kDead) &&
            (dead_best < 0 ||
             stamp[base + w] < stamp[base +
                                     static_cast<std::uint32_t>(dead_best)]))
            dead_best = static_cast<std::int32_t>(w);
        if (stamp[base + w] < stamp[base + lru_best])
            lru_best = w;
    }
    return dead_best >= 0 ? static_cast<std::uint32_t>(dead_best) : lru_best;
}

inline void
RdAwarePolicy::onFill(std::uint64_t set, std::uint32_t way,
                      const ReplAccess &ctx)
{
    const std::uint64_t idx = set * ways + way;
    const std::uint64_t t = ++setTick[set];
    // While the observed reuse distance exceeds the associativity, the
    // set is thrashing: insert deep so part of the loop stays resident.
    const bool deep = ctx.insertLru || avg16 / 16 > ways;
    touch[idx] = deep ? (t > ways ? t - ways : 0) : t;
}

inline void
RdAwarePolicy::onHit(std::uint64_t set, std::uint32_t way,
                     const ReplAccess &ctx)
{
    (void)ctx;
    const std::uint64_t idx = set * ways + way;
    const std::uint64_t t = ++setTick[set];
    const std::uint64_t rd = t - 1 - touch[idx];
    avg16 += rd;
    avg16 -= avg16 / 16;
    touch[idx] = t;
}

inline std::uint32_t
RdAwarePolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < ways; ++w) {
        if (touch[base + w] < touch[base + best])
            best = w;
    }
    return best;
}

inline void
InsertionPolicy::onFill(std::uint64_t set, std::uint32_t way,
                        const ReplAccess &ctx)
{
    const std::uint64_t idx = set * ways + way;
    bool lru_insert;
    switch (mode) {
      case Mode::LIP:
        lru_insert = true;
        break;
      case Mode::BIP:
        lru_insert = fills++ % kBipEpsilonInv != 0;
        break;
      case Mode::DIP:
      default:
        if (ctx.isMiss)
            duel.onMiss(set, ctx.core);
        // Policy A = LRU (MRU insertion), policy B = BIP.
        lru_insert = duel.chooseB(set, ctx.core) &&
                     fills++ % kBipEpsilonInv != 0;
        break;
    }
    if (ctx.insertLru)
        lru_insert = true;
    stamp[idx] = lru_insert ? 0 : ++tick;
}

inline void
InsertionPolicy::onHit(std::uint64_t set, std::uint32_t way,
                       const ReplAccess &ctx)
{
    (void)ctx;
    stamp[set * ways + way] = ++tick;
}

inline std::uint32_t
InsertionPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < ways; ++w) {
        if (stamp[base + w] < stamp[base + best])
            best = w;
    }
    return best;
}

inline void
StreamPolicy::onFill(std::uint64_t set, std::uint32_t way,
                     const ReplAccess &ctx)
{
    const std::uint64_t idx = set * ways + way;
    const std::uint32_t i = arena::foldKey(ctx.pc, kTableSize);
    const std::uint64_t line = ctx.lineAddr >> lineShift;
    const std::int64_t delta =
        static_cast<std::int64_t>(line) -
        static_cast<std::int64_t>(lastLine[i]);
    if (delta == stride[i] && delta != 0) {
        if (conf[i] < kConfMax)
            ++conf[i];
    } else {
        stride[i] = delta;
        conf[i] = 0;
    }
    lastLine[i] = line;
    const bool dead = conf[i] >= kConfThreshold || ctx.insertLru;
    lflags[idx] = dead ? 1 : 0;
    stamp[idx] = ++tick;
}

inline void
StreamPolicy::onHit(std::uint64_t set, std::uint32_t way,
                    const ReplAccess &ctx)
{
    (void)ctx;
    const std::uint64_t idx = set * ways + way;
    lflags[idx] = 0; // it was reused after all
    stamp[idx] = ++tick;
}

inline std::uint32_t
StreamPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::int32_t dead_best = -1;
    std::uint32_t lru_best = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (lflags[base + w] &&
            (dead_best < 0 ||
             stamp[base + w] < stamp[base +
                                     static_cast<std::uint32_t>(dead_best)]))
            dead_best = static_cast<std::int32_t>(w);
        if (stamp[base + w] < stamp[base + lru_best])
            lru_best = w;
    }
    return dead_best >= 0 ? static_cast<std::uint32_t>(dead_best) : lru_best;
}

inline void
PlruPolicy::touch(std::uint64_t set, std::uint32_t way, bool toward)
{
    // Heap-ordered tree: node 1 is the root; bit 1 sends the victim
    // walk right.  Touching a way points every bit on its root path
    // away from it (or towards it for LRU-position inserts).
    std::uint8_t *tree = bits.data() + set * (leaves - 1);
    std::uint32_t node = 1;
    std::uint32_t lo = 0;
    std::uint32_t span = leaves;
    while (span > 1) {
        const std::uint32_t half = span / 2;
        const bool in_left = way < lo + half;
        tree[node - 1] = (in_left != toward) ? 1 : 0;
        if (in_left) {
            node = 2 * node;
        } else {
            lo += half;
            node = 2 * node + 1;
        }
        span = half;
    }
}

inline void
PlruPolicy::onFill(std::uint64_t set, std::uint32_t way,
                   const ReplAccess &ctx)
{
    touch(set, way, ctx.insertLru);
}

inline void
PlruPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    touch(set, way, false);
}

inline std::uint32_t
PlruPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint8_t *tree = bits.data() + set * (leaves - 1);
    std::uint32_t node = 1;
    std::uint32_t lo = 0;
    std::uint32_t span = leaves;
    while (span > 1) {
        const std::uint32_t half = span / 2;
        bool go_right = tree[node - 1] != 0;
        // When the associativity is not a power of two the right
        // subtree may hold no real ways; force left.
        if (lo + half >= ways)
            go_right = false;
        if (go_right) {
            lo += half;
            node = 2 * node + 1;
        } else {
            node = 2 * node;
        }
        span = half;
    }
    return lo;
}

inline void
MruPolicy::onFill(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    // Deep inserts (prefetches) are the next victim either way: MRU
    // evicts the newest stamp first.
    (void)ctx;
    stamp[set * ways + way] = ++tick;
}

inline void
MruPolicy::onHit(std::uint64_t set, std::uint32_t way, const ReplAccess &ctx)
{
    (void)ctx;
    stamp[set * ways + way] = ++tick;
}

inline std::uint32_t
MruPolicy::victim(std::uint64_t set, const VictimQuery &q)
{
    (void)q;
    const std::uint64_t base = set * ways;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < ways; ++w) {
        if (stamp[base + w] > stamp[base + best])
            best = w;
    }
    return best;
}

} // namespace rc

#endif // RC_ARENA_ARENA_POLICIES_HH
