/**
 * @file
 * Recency-order arena policies (tree PLRU, evict-MRU): construction,
 * verify hooks, serialization.
 */

#include "arena/arena_policies.hh"

#include <bit>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

PlruPolicy::PlruPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      leaves(std::bit_ceil(num_ways)),
      bits(num_sets * (leaves - 1), 0)
{
    RC_ASSERT(num_ways >= 2, "PLRU needs at least two ways");
}

bool
PlruPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < bits.size(); ++i) {
        if (bits[i] > 1) {
            if (why)
                *why = "PLRU tree bit " + std::to_string(i) + " = " +
                       std::to_string(bits[i]) + " is not 0/1";
            return false;
        }
    }
    return true;
}

bool
PlruPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    bits[set * (leaves - 1) + way % (leaves - 1)] = 0xff;
    return true;
}

void
PlruPolicy::save(Serializer &s) const
{
    saveVec(s, bits);
}

void
PlruPolicy::restore(Deserializer &d)
{
    restoreVec(d, bits, "PLRU tree bits");
}

MruPolicy::MruPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      stamp(num_sets * num_ways, 0)
{
}

bool
MruPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] > tick) {
            if (why)
                *why = "MRU stamp of (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") is ahead of the tick";
            return false;
        }
    }
    return true;
}

bool
MruPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    stamp[set * ways + way] = tick + 1'000'000;
    return true;
}

void
MruPolicy::save(Serializer &s) const
{
    s.putU64(tick);
    saveVec(s, stamp);
}

void
MruPolicy::restore(Deserializer &d)
{
    tick = d.getU64();
    restoreVec(d, stamp, "MRU stamps");
}

} // namespace rc
