#include "arena/arena_registry.hh"

#include <algorithm>
#include <cctype>

#include "common/log.hh"

namespace rc::arena
{

namespace
{

/** Lower-case @p name with the -/_ separators removed. */
std::string
canonKey(std::string_view name)
{
    std::string key;
    key.reserve(name.size());
    for (char ch : name) {
        if (ch == '-' || ch == '_')
            continue;
        key.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch))));
    }
    return key;
}

/** Levenshtein distance (names are short, quadratic is fine). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

} // namespace

const std::vector<PolicyInfo> &
policyRegistry()
{
    static const std::vector<PolicyInfo> registry = {
        {"lru", ReplKind::LRU, "least recently used (paper baseline)",
         true},
        {"nru", ReplKind::NRU, "not recently used", true},
        {"nrr", ReplKind::NRR, "not recently reused (reuse-cache tags)",
         true},
        {"random", ReplKind::Random, "uniform random victim", true},
        {"clock", ReplKind::Clock, "CLOCK second-chance sweep", true},
        {"srrip", ReplKind::SRRIP, "static RRIP", true},
        {"brrip", ReplKind::BRRIP, "bimodal RRIP", true},
        {"drrip", ReplKind::DRRIP, "thread-aware dynamic RRIP", true},
        {"ship", ReplKind::Ship,
         "SHiP: PC-signature outcome history over SRRIP", true},
        {"ship-mem", ReplKind::ShipMem,
         "SHiP-Mem: memory-region signatures", true},
        {"redre", ReplKind::Redre,
         "REDRE: PC reuse-table priority insertion", true},
        {"deadblock", ReplKind::DeadBlock,
         "PC-trained dead-block prediction", true},
        {"rdaware", ReplKind::RdAware,
         "reuse-distance-aware insertion depth", true},
        {"lip", ReplKind::Lip, "LRU-insertion policy", true},
        {"bip", ReplKind::Bip, "bimodal insertion (1/32 MRU)", true},
        {"dip", ReplKind::Dip, "dynamic insertion: LRU vs BIP dueling",
         true},
        {"duel-ship", ReplKind::DuelShip,
         "SRRIP vs SHiP insertion dueling", true},
        {"stream", ReplKind::Stream,
         "PC-stride streaming detector, dead-on-arrival fills", true},
        {"plru", ReplKind::Plru, "tree pseudo-LRU", true},
        {"mru", ReplKind::Mru, "evict-MRU anti-thrash baseline", true},
    };
    return registry;
}

const PolicyInfo *
findPolicy(std::string_view name)
{
    const std::string key = canonKey(name);
    if (key.empty())
        return nullptr;
    for (const PolicyInfo &info : policyRegistry()) {
        if (canonKey(info.name) == key)
            return &info;
    }
    return nullptr;
}

const PolicyInfo &
policyInfo(ReplKind kind)
{
    for (const PolicyInfo &info : policyRegistry()) {
        if (info.kind == kind)
            return info;
    }
    panic("ReplKind %d is not registered", static_cast<int>(kind));
}

std::string
policyNameList()
{
    std::string out;
    for (const PolicyInfo &info : policyRegistry()) {
        if (!out.empty())
            out += ", ";
        out += info.name;
    }
    return out;
}

std::vector<std::string>
suggestPolicies(std::string_view name, std::size_t max)
{
    const std::string key = canonKey(name);
    std::vector<std::pair<std::size_t, std::string>> scored;
    for (const PolicyInfo &info : policyRegistry()) {
        const std::string cand = canonKey(info.name);
        const std::size_t dist = editDistance(key, cand);
        // Plausible typo: within a third of the name (at least 2 edits),
        // or a prefix of the candidate ("dead" -> "deadblock").
        const std::size_t budget =
            std::max<std::size_t>(2, std::max(key.size(), cand.size()) / 3);
        const bool prefix = !key.empty() && cand.size() > key.size() &&
                            cand.compare(0, key.size(), key) == 0;
        if (dist <= budget || prefix)
            scored.emplace_back(prefix ? 0 : dist, info.name);
    }
    std::sort(scored.begin(), scored.end());
    std::vector<std::string> out;
    for (const auto &[dist, cand] : scored) {
        if (out.size() >= max)
            break;
        out.push_back(cand);
    }
    return out;
}

ReplKind
parsePolicyName(const std::string &name)
{
    if (const PolicyInfo *info = findPolicy(name))
        return info->kind;
    std::string hint;
    for (const std::string &cand : suggestPolicies(name)) {
        hint += hint.empty() ? "did you mean " : " or ";
        hint += "'" + cand + "'";
    }
    if (!hint.empty())
        hint += "? ";
    fatal("unknown policy '%s': %s(known: %s)", name.c_str(), hint.c_str(),
          policyNameList().c_str());
}

} // namespace rc::arena
