/**
 * @file
 * PC-trained arena policies (REDRE, dead-block, streaming-bypass):
 * construction, verify hooks, serialization.
 */

#include "arena/arena_policies.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

RedrePolicy::RedrePolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      prio(num_sets * num_ways, 0),
      stamp(num_sets * num_ways, 0),
      pcIdx(num_sets * num_ways, 0),
      lflags(num_sets * num_ways, 0),
      table(kTableSize, kReuseInit)
{
}

bool
RedrePolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < prio.size(); ++i) {
        if (prio[i] > 2) {
            if (why)
                *why = "REDRE priority (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") = " +
                       std::to_string(prio[i]) + " exceeds max 2";
            return false;
        }
        if (stamp[i] > tick) {
            if (why)
                *why = "REDRE stamp of (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") is ahead of the tick";
            return false;
        }
    }
    for (std::uint32_t i = 0; i < kTableSize; ++i) {
        if (table[i] > kReuseMax) {
            if (why)
                *why = "REDRE reuse counter " + std::to_string(i) + " = " +
                       std::to_string(table[i]) + " exceeds max " +
                       std::to_string(kReuseMax);
            return false;
        }
    }
    return true;
}

bool
RedrePolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    prio[set * ways + way] = 0xff;
    return true;
}

void
RedrePolicy::save(Serializer &s) const
{
    s.putU64(tick);
    saveVec(s, prio);
    saveVec(s, stamp);
    saveVec(s, pcIdx);
    saveVec(s, lflags);
    saveVec(s, table);
}

void
RedrePolicy::restore(Deserializer &d)
{
    tick = d.getU64();
    restoreVec(d, prio, "REDRE priorities");
    restoreVec(d, stamp, "REDRE stamps");
    restoreVec(d, pcIdx, "REDRE line table indices");
    restoreVec(d, lflags, "REDRE line flags");
    restoreVec(d, table, "REDRE reuse table");
}

DeadBlockPolicy::DeadBlockPolicy(std::uint64_t num_sets,
                                 std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      stamp(num_sets * num_ways, 0),
      sigs(num_sets * num_ways, 0),
      lflags(num_sets * num_ways, 0),
      pred(kTableSize, 0)
{
}

bool
DeadBlockPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] > tick) {
            if (why)
                *why = "dead-block stamp of (" + std::to_string(i / ways) +
                       "," + std::to_string(i % ways) +
                       ") is ahead of the tick";
            return false;
        }
    }
    for (std::uint32_t i = 0; i < kTableSize; ++i) {
        if (pred[i] > kPredMax) {
            if (why)
                *why = "dead-block predictor " + std::to_string(i) + " = " +
                       std::to_string(pred[i]) + " exceeds max " +
                       std::to_string(kPredMax);
            return false;
        }
    }
    return true;
}

bool
DeadBlockPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    stamp[set * ways + way] = tick + 1'000'000;
    return true;
}

void
DeadBlockPolicy::save(Serializer &s) const
{
    s.putU64(tick);
    saveVec(s, stamp);
    saveVec(s, sigs);
    saveVec(s, lflags);
    saveVec(s, pred);
}

void
DeadBlockPolicy::restore(Deserializer &d)
{
    tick = d.getU64();
    restoreVec(d, stamp, "dead-block stamps");
    restoreVec(d, sigs, "dead-block line signatures");
    restoreVec(d, lflags, "dead-block line flags");
    restoreVec(d, pred, "dead-block predictor table");
}

StreamPolicy::StreamPolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      stamp(num_sets * num_ways, 0),
      lflags(num_sets * num_ways, 0),
      lastLine(kTableSize, 0),
      stride(kTableSize, 0),
      conf(kTableSize, 0)
{
}

bool
StreamPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] > tick) {
            if (why)
                *why = "stream stamp of (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") is ahead of the tick";
            return false;
        }
    }
    for (std::uint32_t i = 0; i < kTableSize; ++i) {
        if (conf[i] > kConfMax) {
            if (why)
                *why = "stream confidence " + std::to_string(i) + " = " +
                       std::to_string(conf[i]) + " exceeds max " +
                       std::to_string(kConfMax);
            return false;
        }
    }
    return true;
}

bool
StreamPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    stamp[set * ways + way] = tick + 1'000'000;
    return true;
}

void
StreamPolicy::save(Serializer &s) const
{
    s.putU64(tick);
    saveVec(s, stamp);
    saveVec(s, lflags);
    saveVec(s, lastLine);
    for (std::int64_t v : stride)
        s.putI64(v);
    saveVec(s, conf);
}

void
StreamPolicy::restore(Deserializer &d)
{
    tick = d.getU64();
    restoreVec(d, stamp, "stream stamps");
    restoreVec(d, lflags, "stream line flags");
    restoreVec(d, lastLine, "stream last-line table");
    for (std::int64_t &v : stride)
        v = d.getI64();
    restoreVec(d, conf, "stream confidence table");
}

} // namespace rc
