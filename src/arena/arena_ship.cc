/** @file SHiP family: construction, verify hooks, serialization. */

#include "arena/arena_policies.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

ShipPolicy::ShipPolicy(std::uint64_t num_sets, std::uint32_t num_ways,
                       Mode mode_, std::uint32_t num_cores)
    : ReplacementPolicy(num_sets, num_ways),
      mode(mode_),
      rrpvs(num_sets * num_ways, kMaxRrpv),
      sigs(num_sets * num_ways, 0),
      lflags(num_sets * num_ways, 0),
      shct(kTableSize, kCtrInit),
      duel(num_sets, num_cores)
{
}

bool
ShipPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < rrpvs.size(); ++i) {
        if (rrpvs[i] > kMaxRrpv) {
            if (why)
                *why = "SHiP RRPV (" + std::to_string(i / ways) + "," +
                       std::to_string(i % ways) + ") = " +
                       std::to_string(rrpvs[i]) + " exceeds max " +
                       std::to_string(kMaxRrpv);
            return false;
        }
    }
    for (std::uint32_t i = 0; i < kTableSize; ++i) {
        if (shct[i] > kCtrMax) {
            if (why)
                *why = "SHiP counter " + std::to_string(i) + " = " +
                       std::to_string(shct[i]) + " exceeds max " +
                       std::to_string(kCtrMax);
            return false;
        }
    }
    return true;
}

bool
ShipPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    rrpvs[set * ways + way] = 0xff;
    return true;
}

void
ShipPolicy::save(Serializer &s) const
{
    saveVec(s, rrpvs);
    saveVec(s, sigs);
    saveVec(s, lflags);
    saveVec(s, shct);
    duel.save(s);
}

void
ShipPolicy::restore(Deserializer &d)
{
    restoreVec(d, rrpvs, "SHiP RRPVs");
    restoreVec(d, sigs, "SHiP line signatures");
    restoreVec(d, lflags, "SHiP line flags");
    restoreVec(d, shct, "SHiP counter table");
    duel.restore(d);
}

} // namespace rc
