/**
 * @file
 * String-keyed replacement-policy registry.
 *
 * The arena's tournament — and every CLI that accepts --policy=NAME —
 * needs a stable mapping from human-typed names to ReplKind.  The
 * registry covers all twenty policies (the six paper built-ins, the
 * RRIP variants, and the arena's CRC2-family ports), with forgiving
 * lookup (case and -/_ separators ignored) and edit-distance
 * suggestions for typos ("did you mean ...?").
 */

#ifndef RC_ARENA_ARENA_REGISTRY_HH
#define RC_ARENA_ARENA_REGISTRY_HH

#include <string>
#include <string_view>
#include <vector>

#include "cache/replacement.hh"

namespace rc::arena
{

/** One registered policy. */
struct PolicyInfo
{
    const char *name;    //!< canonical CLI spelling, e.g. "ship-mem"
    ReplKind kind;       //!< the factory selector
    const char *summary; //!< one-line description for listings
    bool inTournament;   //!< ranked by bench/arena_tournament by default
};

/** Every registered policy, in ReplKind order. */
const std::vector<PolicyInfo> &policyRegistry();

/**
 * Look up a policy by name; case and the -/_ separators are ignored, so
 * "SHiP-Mem", "ship_mem" and "shipmem" all match.
 * @return the entry, or nullptr when nothing matches.
 */
const PolicyInfo *findPolicy(std::string_view name);

/** The registry entry of @p kind (every ReplKind is registered). */
const PolicyInfo &policyInfo(ReplKind kind);

/** Canonical names, comma-joined, for usage strings. */
std::string policyNameList();

/**
 * Closest canonical names to a misspelt @p name by edit distance —
 * the "did you mean" list.  At most @p max entries, best first; empty
 * when nothing is plausibly close.
 */
std::vector<std::string> suggestPolicies(std::string_view name,
                                         std::size_t max = 3);

/**
 * findPolicy or die: unknown names fatal() with the did-you-mean list
 * and the full spelling list.  The shared --policy=NAME parser.
 */
ReplKind parsePolicyName(const std::string &name);

} // namespace rc::arena

#endif // RC_ARENA_ARENA_REGISTRY_HH
