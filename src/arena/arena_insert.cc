/**
 * @file
 * Insertion-depth arena policies (LIP/BIP/DIP, reuse-distance-aware):
 * construction, verify hooks, serialization.
 */

#include "arena/arena_policies.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

InsertionPolicy::InsertionPolicy(std::uint64_t num_sets,
                                 std::uint32_t num_ways, Mode mode_,
                                 std::uint32_t num_cores)
    : ReplacementPolicy(num_sets, num_ways),
      mode(mode_),
      stamp(num_sets * num_ways, 0),
      duel(num_sets, num_cores)
{
}

bool
InsertionPolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < stamp.size(); ++i) {
        if (stamp[i] > tick) {
            if (why)
                *why = "insertion stamp of (" + std::to_string(i / ways) +
                       "," + std::to_string(i % ways) +
                       ") is ahead of the tick";
            return false;
        }
    }
    return true;
}

bool
InsertionPolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    stamp[set * ways + way] = tick + 1'000'000;
    return true;
}

void
InsertionPolicy::save(Serializer &s) const
{
    s.putU64(tick);
    s.putU64(fills);
    saveVec(s, stamp);
    duel.save(s);
}

void
InsertionPolicy::restore(Deserializer &d)
{
    tick = d.getU64();
    fills = d.getU64();
    restoreVec(d, stamp, "insertion stamps");
    duel.restore(d);
}

RdAwarePolicy::RdAwarePolicy(std::uint64_t num_sets, std::uint32_t num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      setTick(num_sets, 0),
      touch(num_sets * num_ways, 0)
{
}

bool
RdAwarePolicy::metadataSane(std::string *why) const
{
    for (std::uint64_t i = 0; i < touch.size(); ++i) {
        if (touch[i] > setTick[i / ways]) {
            if (why)
                *why = "RD-aware touch of (" + std::to_string(i / ways) +
                       "," + std::to_string(i % ways) +
                       ") is ahead of its set clock";
            return false;
        }
    }
    return true;
}

bool
RdAwarePolicy::corruptMetadata(std::uint64_t set, std::uint32_t way)
{
    touch[set * ways + way] = setTick[set] + 1'000'000;
    return true;
}

void
RdAwarePolicy::save(Serializer &s) const
{
    s.putU64(avg16);
    saveVec(s, setTick);
    saveVec(s, touch);
}

void
RdAwarePolicy::restore(Deserializer &d)
{
    avg16 = d.getU64();
    restoreVec(d, setTick, "RD-aware set clocks");
    restoreVec(d, touch, "RD-aware touch clocks");
}

} // namespace rc
