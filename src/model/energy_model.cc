#include "model/energy_model.hh"

#include <cmath>

#include "common/bitops.hh"

namespace rc
{

namespace
{

// Reference: the conventional 8 MB, 16-way cache (Table 2 geometry).
constexpr double refTagProbeBits = 16.0 * 34.0;  // ways x bits/entry
constexpr double refDecodeBits = 13.0;           // log2(8192 sets)
constexpr double refDataEntryBits = 512.0;
constexpr double refDataArrayBits = 8.0 * 1024 * 1024 * 8;
constexpr double refTotalBits = 71565312.0;      // 69888 Kbit

// Weights of the model terms, chosen so the reference tag probe is 1.0
// and a reference data access ~3x that (mirroring the latency ratio).
constexpr double probeWeight = 0.8 / refTagProbeBits;
constexpr double decodeWeight = 0.2 / refDecodeBits;
constexpr double entryWeight = 1.8 / refDataEntryBits;
constexpr double arrayWeight = 1.2; // x sqrt(bits)/sqrt(refBits)

double
tagProbeEnergy(double ways, double bits_per_entry, double sets)
{
    return probeWeight * ways * bits_per_entry +
           decodeWeight * (sets > 1.0 ? std::log2(sets) : 1.0);
}

double
dataAccessEnergy(double bits_per_entry, double total_bits)
{
    // Entry term (the bits actually read) plus an array term for the
    // shared wordline/bitline capacitance, which shrinks with the array.
    return entryWeight * bits_per_entry +
           arrayWeight * std::sqrt(total_bits / refDataArrayBits);
}

} // namespace

EnergyEstimate
conventionalEnergy(std::uint64_t capacity_bytes, std::uint32_t ways,
                   std::uint32_t num_cores)
{
    const CacheCost cost = conventionalCost(capacity_bytes, ways,
                                            num_cores);
    const double sets = static_cast<double>(cost.tag.entries) / ways;
    EnergyEstimate e;
    e.tagProbe = tagProbeEnergy(ways, cost.tag.bitsPerEntry, sets);
    e.dataAccess = dataAccessEnergy(cost.data.bitsPerEntry,
                                    static_cast<double>(
                                        cost.data.totalBits()));
    e.leakage = static_cast<double>(cost.totalBits()) / refTotalBits;
    return e;
}

EnergyEstimate
reuseEnergy(std::uint64_t tag_equiv_bytes, std::uint32_t tag_ways,
            std::uint64_t data_bytes, std::uint32_t data_ways,
            std::uint32_t num_cores)
{
    const CacheCost cost = reuseCost(tag_equiv_bytes, tag_ways,
                                     data_bytes, data_ways, num_cores);
    const double sets =
        static_cast<double>(cost.tag.entries) / tag_ways;
    EnergyEstimate e;
    e.tagProbe = tagProbeEnergy(tag_ways, cost.tag.bitsPerEntry, sets);
    // The data array is never searched associatively: exactly one entry
    // is activated regardless of its (possibly full) associativity.
    e.dataAccess = dataAccessEnergy(cost.data.bitsPerEntry,
                                    static_cast<double>(
                                        cost.data.totalBits()));
    e.leakage = static_cast<double>(cost.totalBits()) / refTotalBits;
    return e;
}

double
windowEnergy(const EnergyEstimate &e, const SllcActivity &a)
{
    // Leakage calibration: reference cache, 1 M cycles == 10000 probes.
    constexpr double leakagePerCycle = 10000.0 / 1.0e6;
    return e.tagProbe * static_cast<double>(a.tagProbes) +
           e.dataAccess * static_cast<double>(a.dataAccesses) +
           e.leakage * leakagePerCycle *
               static_cast<double>(a.windowCycles);
}

} // namespace rc
