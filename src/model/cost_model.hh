/**
 * @file
 * Hardware storage cost model (paper Section 3.5, Table 2).
 *
 * Counts the bits of tag and data arrays for conventional and reuse
 * organizations: tags sized for a 40-bit physical space, 4-bit coherence
 * state (5 for the reuse cache's extra tag-only states), an 8-bit
 * full-map presence vector, one replacement bit per line, and the
 * forward/reverse decoupling pointers of the reuse cache.
 */

#ifndef RC_MODEL_COST_MODEL_HH
#define RC_MODEL_COST_MODEL_HH

#include <cstdint>

#include "cache/replacement.hh"

namespace rc
{

/** Cost of one array. */
struct ArrayCost
{
    std::uint64_t entries = 0;
    std::uint32_t bitsPerEntry = 0;

    /** Total bits. */
    std::uint64_t totalBits() const { return entries * bitsPerEntry; }
};

/** Cost of a complete SLLC organization. */
struct CacheCost
{
    ArrayCost tag;
    ArrayCost data;

    /** Bit breakdown of a tag entry (Table 2 rows). */
    std::uint32_t tagFieldBits = 0;
    std::uint32_t coherenceBits = 0;
    std::uint32_t presenceBits = 0;
    std::uint32_t replacementBits = 0;
    std::uint32_t fwdPointerBits = 0;   //!< reuse cache only
    std::uint32_t revPointerBits = 0;   //!< reuse cache only (data entry)

    /** Total bits across both arrays. */
    std::uint64_t totalBits() const
    {
        return tag.totalBits() + data.totalBits();
    }

    /** Total in Kbits (the unit of Table 2). */
    double
    totalKbits() const
    {
        return static_cast<double>(totalBits()) / 1024.0;
    }
};

/** Replacement metadata width per line for a policy. */
std::uint32_t replacementBitsPerLine(ReplKind kind);

/**
 * Conventional cache cost.
 * @param capacity_bytes data capacity.
 * @param ways associativity.
 * @param num_cores presence-vector width.
 * @param repl replacement policy (NRU/NRR/LRU-as-NRU = 1 bit, RRIP = 2).
 * @param phys_bits physical address width.
 */
CacheCost conventionalCost(std::uint64_t capacity_bytes, std::uint32_t ways,
                           std::uint32_t num_cores = 8,
                           ReplKind repl = ReplKind::NRU,
                           std::uint32_t phys_bits = 40);

/**
 * Reuse cache cost (RC-x/y).
 * @param tag_equiv_bytes tag array size in MBeq-bytes.
 * @param tag_ways tag associativity.
 * @param data_bytes data array capacity.
 * @param data_ways data associativity; 0 = fully associative.
 * @param num_cores presence-vector width.
 * @param phys_bits physical address width.
 */
CacheCost reuseCost(std::uint64_t tag_equiv_bytes, std::uint32_t tag_ways,
                    std::uint64_t data_bytes, std::uint32_t data_ways = 0,
                    std::uint32_t num_cores = 8,
                    std::uint32_t phys_bits = 40);

} // namespace rc

#endif // RC_MODEL_COST_MODEL_HH
