#include "model/latency_model.hh"

#include <cmath>

namespace rc
{

namespace
{

// Calibration anchors (see the header comment).
constexpr double refTagEntries = 131072.0;   // conventional 8 MB, 64 B lines
constexpr double refTagBits = 34.0;          // conventional tag entry
constexpr double refDataBits = 8.0 * 1024 * 1024 * 8; // 8 MB in bits
constexpr double entryExp = 0.25;
constexpr double widthExp = 0.72;
constexpr double dataExp = 0.25;
constexpr double dataToTagRatio = 3.0;

double
tagLatency(double entries, double bits_per_entry)
{
    return std::pow(entries / refTagEntries, entryExp) *
           std::pow(bits_per_entry / refTagBits, widthExp);
}

double
dataLatency(double total_bits)
{
    return dataToTagRatio * std::pow(total_bits / refDataBits, dataExp);
}

} // namespace

LatencyEstimate
conventionalLatency(std::uint64_t capacity_bytes, std::uint32_t ways,
                    std::uint32_t num_cores)
{
    const CacheCost cost = conventionalCost(capacity_bytes, ways,
                                            num_cores);
    LatencyEstimate est;
    est.tag = tagLatency(static_cast<double>(cost.tag.entries),
                         cost.tag.bitsPerEntry);
    est.data = dataLatency(static_cast<double>(cost.data.totalBits()));
    est.total = est.tag + est.data;
    return est;
}

LatencyEstimate
reuseLatency(std::uint64_t tag_equiv_bytes, std::uint32_t tag_ways,
             std::uint64_t data_bytes, std::uint32_t data_ways,
             std::uint32_t num_cores)
{
    const CacheCost cost = reuseCost(tag_equiv_bytes, tag_ways, data_bytes,
                                     data_ways, num_cores);
    LatencyEstimate est;
    est.tag = tagLatency(static_cast<double>(cost.tag.entries),
                         cost.tag.bitsPerEntry);
    est.data = dataLatency(static_cast<double>(cost.data.totalBits()));
    est.total = est.tag + est.data;
    return est;
}

double
relativeChange(double x, double base)
{
    return base != 0.0 ? (x - base) / base : 0.0;
}

} // namespace rc
