#include "model/cost_model.hh"

#include "common/bitops.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace rc
{

std::uint32_t
replacementBitsPerLine(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:
        // The paper costs the conventional cache with NRU "to not bias
        // the comparison"; true LRU would need log2(ways!) bits shared
        // across the set.  We follow the paper: 1 bit.
      case ReplKind::NRU:
      case ReplKind::NRR:
      case ReplKind::Clock:
        return 1;
      case ReplKind::Random:
        return 0;
      case ReplKind::SRRIP:
      case ReplKind::BRRIP:
      case ReplKind::DRRIP:
        return 2;
      // Arena ports (src/arena/): per-line state only — the shared
      // predictor tables amortize to well under a bit per line at SLLC
      // sizes, matching how CRC2 entries budget their hardware.
      case ReplKind::Ship:
      case ReplKind::ShipMem:
      case ReplKind::DuelShip:
        return 2 + 14 + 1; // RRPV + signature + outcome bit
      case ReplKind::Redre:
        return 2 + 12 + 1; // priority + PC index + reuse bit
      case ReplKind::DeadBlock:
        return 12 + 2;     // signature + dead/reused bits
      case ReplKind::RdAware:
      case ReplKind::Lip:
      case ReplKind::Bip:
      case ReplKind::Dip:
      case ReplKind::Mru:
        return 4;          // recency stamp (hardware uses a few bits)
      case ReplKind::Stream:
        return 4 + 1;      // recency stamp + dead-on-arrival bit
      case ReplKind::Plru:
        return 1;          // one tree bit per line (ways-1 per set)
    }
    return 1;
}

namespace
{

std::uint32_t
tagFieldBits(std::uint64_t sets, std::uint32_t phys_bits)
{
    return phys_bits - bitsFor(sets) - lineShift;
}

} // namespace

CacheCost
conventionalCost(std::uint64_t capacity_bytes, std::uint32_t ways,
                 std::uint32_t num_cores, ReplKind repl,
                 std::uint32_t phys_bits)
{
    const std::uint64_t lines = capacity_bytes / lineBytes;
    const std::uint64_t sets = lines / ways;
    RC_ASSERT(isPowerOf2(sets), "set count must be a power of two");

    CacheCost cost;
    cost.tagFieldBits = tagFieldBits(sets, phys_bits);
    cost.coherenceBits = 4;
    cost.presenceBits = num_cores;
    cost.replacementBits = replacementBitsPerLine(repl);

    cost.tag.entries = lines;
    cost.tag.bitsPerEntry = cost.tagFieldBits + cost.coherenceBits +
                            cost.presenceBits + cost.replacementBits;
    cost.data.entries = lines;
    cost.data.bitsPerEntry = lineBytes * 8;
    return cost;
}

CacheCost
reuseCost(std::uint64_t tag_equiv_bytes, std::uint32_t tag_ways,
          std::uint64_t data_bytes, std::uint32_t data_ways,
          std::uint32_t num_cores, std::uint32_t phys_bits)
{
    const std::uint64_t tag_entries = tag_equiv_bytes / lineBytes;
    const std::uint64_t tag_sets = tag_entries / tag_ways;
    const std::uint64_t data_entries = data_bytes / lineBytes;
    const std::uint32_t dw = data_ways == 0
        ? static_cast<std::uint32_t>(data_entries)
        : data_ways;
    const std::uint64_t data_sets = data_entries / dw;
    RC_ASSERT(isPowerOf2(tag_sets) && isPowerOf2(data_sets),
              "set counts must be powers of two");
    RC_ASSERT(data_sets <= tag_sets,
              "data array may not have more sets than the tag array");

    CacheCost cost;
    cost.tagFieldBits = tagFieldBits(tag_sets, phys_bits);
    // One extra state bit: the TO-MSI protocol roughly doubles the
    // stable-state count (paper Section 3.5, footnote 4).
    cost.coherenceBits = 5;
    cost.presenceBits = num_cores;
    cost.replacementBits = 1; // NRR on tags, NRU/Clock on data
    // Forward pointer: names the data-array way (the set index is a
    // suffix of the tag set index).
    cost.fwdPointerBits = bitsFor(dw);
    // Reverse pointer: tag way plus the tag-set bits the data-set index
    // does not imply.
    cost.revPointerBits = bitsFor(tag_ways) +
                          (bitsFor(tag_sets) - bitsFor(data_sets));

    cost.tag.entries = tag_entries;
    cost.tag.bitsPerEntry = cost.tagFieldBits + cost.coherenceBits +
                            cost.presenceBits + cost.replacementBits +
                            cost.fwdPointerBits;
    cost.data.entries = data_entries;
    // Data entry: the line, one valid bit, one replacement bit, and the
    // reverse pointer.
    cost.data.bitsPerEntry = lineBytes * 8 + 1 + 1 + cost.revPointerBits;
    return cost;
}

} // namespace rc
