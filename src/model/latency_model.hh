/**
 * @file
 * CACTI-lite access-latency surrogate (paper Section 3.6, Table 3).
 *
 * The paper models latencies with CACTI 6.5 at 32 nm and reports
 * relative numbers: serial tag+data access, data array ~3x the tag
 * array's latency at 8 MB, tag access +36% with reuse-cache pointers,
 * data access -16% when halved.  We reproduce those ratios with a
 * calibrated power-law surrogate:
 *
 *   t_tag  = T0 * (entries / E0)^0.25 * (bits_per_entry / 34)^0.72
 *   t_data = 3*T0 * (data_bits / 64 Mbit)^0.25
 *
 * where T0 = 1 normalizes the conventional 8 MB tag-array latency and
 * E0 = 128 Ki entries.  The exponents are fitted to the paper's three
 * anchors (3:1 data:tag, +36%, -16%) and reproduce Table 3's bottom
 * line (RC-8/4 total 3% faster, RC-8/8 total ~+10%).
 */

#ifndef RC_MODEL_LATENCY_MODEL_HH
#define RC_MODEL_LATENCY_MODEL_HH

#include <cstdint>

#include "model/cost_model.hh"

namespace rc
{

/** Normalized latencies (conventional 8 MB tag array == 1.0). */
struct LatencyEstimate
{
    double tag = 0.0;   //!< tag-array access
    double data = 0.0;  //!< data-array access
    double total = 0.0; //!< serial tag + data
};

/** Latency of a conventional cache of @p capacity_bytes, @p ways. */
LatencyEstimate conventionalLatency(std::uint64_t capacity_bytes,
                                    std::uint32_t ways,
                                    std::uint32_t num_cores = 8);

/** Latency of a reuse cache RC-x/y. */
LatencyEstimate reuseLatency(std::uint64_t tag_equiv_bytes,
                             std::uint32_t tag_ways,
                             std::uint64_t data_bytes,
                             std::uint32_t data_ways = 0,
                             std::uint32_t num_cores = 8);

/** Relative change of @p x with respect to @p base: 0.36 means +36%. */
double relativeChange(double x, double base);

} // namespace rc

#endif // RC_MODEL_LATENCY_MODEL_HH
