/**
 * @file
 * SLLC energy surrogate.
 *
 * The paper motivates the reuse cache partly by power: "the saved area
 * could help to ... reduce power consumption" (Section 1).  It does not
 * publish an energy evaluation, so this model is an extension, built on
 * the same bit counts as the Table 2 cost model with standard scaling
 * rules:
 *
 *  - a tag probe reads every way of one set in parallel: energy
 *    proportional to ways x bits-per-tag-entry, plus a decoder term
 *    proportional to log2(sets);
 *  - a data access reads or writes exactly one entry (the reuse cache
 *    never searches the data array associatively - the forward pointer
 *    names the way): energy proportional to bits-per-data-entry, plus
 *    an array term proportional to sqrt(total bits) for the shared
 *    wordlines/bitlines;
 *  - static (leakage) power is proportional to total bits.
 *
 * All values are normalized: the conventional 8 MB cache's tag probe
 * costs 1.0 energy units; its leakage is 1.0 power units.
 */

#ifndef RC_MODEL_ENERGY_MODEL_HH
#define RC_MODEL_ENERGY_MODEL_HH

#include <cstdint>

#include "model/cost_model.hh"

namespace rc
{

/** Normalized per-event energies and static power of one organization. */
struct EnergyEstimate
{
    double tagProbe = 0.0;    //!< one tag-array lookup (all ways)
    double dataAccess = 0.0;  //!< one data-entry read or write
    double leakage = 0.0;     //!< static power (conv 8 MB == 1.0)
};

/** Activity counts of a simulation window (from the SLLC stat sets). */
struct SllcActivity
{
    std::uint64_t tagProbes = 0;   //!< demand requests + evict notifies
    std::uint64_t dataAccesses = 0; //!< data hits + fills + writebacks
    Cycle windowCycles = 0;        //!< for the static-energy term
};

/** Per-event energies for a conventional cache. */
EnergyEstimate conventionalEnergy(std::uint64_t capacity_bytes,
                                  std::uint32_t ways,
                                  std::uint32_t num_cores = 8);

/** Per-event energies for a reuse cache RC-x/y. */
EnergyEstimate reuseEnergy(std::uint64_t tag_equiv_bytes,
                           std::uint32_t tag_ways,
                           std::uint64_t data_bytes,
                           std::uint32_t data_ways = 0,
                           std::uint32_t num_cores = 8);

/**
 * Total (dynamic + static) energy of a window in normalized units.
 * The static term uses a fixed leakage-to-dynamic conversion so that
 * the conventional 8 MB cache's leakage over 1 M cycles costs as much
 * as 10000 tag probes (a typical LLC is leakage-dominated).
 */
double windowEnergy(const EnergyEstimate &e, const SllcActivity &a);

} // namespace rc

#endif // RC_MODEL_ENERGY_MODEL_HH
