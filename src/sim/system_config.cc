#include "sim/system_config.hh"

#include <cmath>

#include "common/log.hh"

namespace rc
{

namespace
{

constexpr std::uint64_t MiB = 1ull << 20;

std::uint64_t
mbToBytes(double mb)
{
    return static_cast<std::uint64_t>(std::llround(mb * 1024.0 * 1024.0));
}

/** Common skeleton shared by all presets (Table 4, scaled). */
SystemConfig
skeleton(std::uint32_t scale)
{
    RC_ASSERT(scale >= 1, "capacity scale must be at least 1");
    SystemConfig sys;
    sys.capacityScale = scale;
    sys.priv.l1Bytes = (32 * 1024) / scale;
    sys.priv.l1Ways = 4;
    sys.priv.l1Latency = 1;
    sys.priv.l2Bytes = (256 * 1024) / scale;
    sys.priv.l2Ways = 8;
    sys.priv.l2Latency = 7;
    sys.memory.numChannels = 1;
    return sys;
}

} // namespace

SystemConfig
baselineSystem(std::uint32_t scale)
{
    SystemConfig sys = skeleton(scale);
    sys.llcKind = LlcKind::Conventional;
    sys.conv.capacityBytes = (8 * MiB) / scale;
    sys.conv.ways = 16;
    sys.conv.repl = ReplKind::LRU;
    sys.conv.numCores = sys.numCores;
    sys.conv.name = "llc";
    return sys;
}

SystemConfig
conventionalSystem(double mb, ReplKind repl, std::uint32_t scale)
{
    SystemConfig sys = skeleton(scale);
    sys.llcKind = LlcKind::Conventional;
    sys.conv.capacityBytes = mbToBytes(mb) / scale;
    sys.conv.ways = 16;
    sys.conv.repl = repl;
    sys.conv.numCores = sys.numCores;
    sys.conv.name = "llc";
    return sys;
}

SystemConfig
reuseSystem(double tag_mbeq, double data_mb, std::uint32_t data_ways,
            std::uint32_t scale)
{
    SystemConfig sys = skeleton(scale);
    sys.llcKind = LlcKind::Reuse;
    sys.reuse = ReuseCacheConfig::standard(mbToBytes(tag_mbeq) / scale,
                                           mbToBytes(data_mb) / scale,
                                           data_ways);
    sys.reuse.numCores = sys.numCores;
    sys.reuse.name = "llc";
    return sys;
}

SystemConfig
ncidSystem(double tag_mbeq, double data_mb, std::uint32_t scale)
{
    SystemConfig sys = skeleton(scale);
    sys.llcKind = LlcKind::Ncid;
    sys.ncid.tagEquivBytes = mbToBytes(tag_mbeq) / scale;
    sys.ncid.dataBytes = mbToBytes(data_mb) / scale;
    sys.ncid.numCores = sys.numCores;
    sys.ncid.name = "llc";
    return sys;
}

} // namespace rc
