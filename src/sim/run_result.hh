/**
 * @file
 * The result of one (SystemConfig x Mix) simulation run, plus its
 * snapshot-codec encoding.
 *
 * This used to live in the bench harness; the sweep daemon moved it
 * into the core library so the service protocol, the persistent result
 * cache and the harness all exchange the same value with one canonical
 * byte encoding (the cache digests and the stress test's correctness
 * oracle both depend on that encoding being unique).
 */

#ifndef RC_SIM_RUN_RESULT_HH
#define RC_SIM_RUN_RESULT_HH

#include <vector>

#include "sim/cmp.hh"

namespace rc
{

class Serializer;
class Deserializer;

/** Results of one simulation run. */
struct RunResult
{
    double aggregateIpc = 0.0;
    std::vector<double> coreIpc;
    std::vector<MpkiTriple> mpki;
    double fracNeverEnteredData = -1.0; //!< reuse cache only
    Counter llcAccesses = 0;
    Counter llcMemFetches = 0;
    Counter dramReads = 0;
};

/** Field-level RunResult serialization (sweep blobs, service replies). */
void saveRunResult(Serializer &s, const RunResult &r);
RunResult loadRunResult(Deserializer &d);

/**
 * Bitwise equality (doubles compared exactly): the daemon's replies and
 * the client's in-process fallback must be indistinguishable, so the
 * comparison is exact, not epsilon-based.
 */
bool runResultsEqual(const RunResult &a, const RunResult &b);

} // namespace rc

#endif // RC_SIM_RUN_RESULT_HH
