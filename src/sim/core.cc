#include "sim/core.hh"

#include "snapshot/serializer.hh"

namespace rc
{

Core::Core(CoreId id, const PrivateConfig &cfg, RefStream &stream)
    : coreId(id),
      streamRef(stream),
      synth(dynamic_cast<SyntheticStream *>(&stream)),
      hierarchy(cfg, id, "core" + std::to_string(id))
{
}

void
Core::save(Serializer &s) const
{
    s.putU64(ready);
    s.putU64(instrRetired);
    s.beginSection("priv");
    hierarchy.save(s);
    s.endSection();
}

void
Core::restore(Deserializer &d)
{
    ready = d.getU64();
    instrRetired = d.getU64();
    d.beginSection("priv");
    hierarchy.restore(d);
    d.endSection();
}

} // namespace rc
