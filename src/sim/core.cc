#include "sim/core.hh"

namespace rc
{

Core::Core(CoreId id, const PrivateConfig &cfg, RefStream &stream)
    : coreId(id),
      streamRef(stream),
      hierarchy(cfg, id, "core" + std::to_string(id))
{
}

} // namespace rc
