#include "sim/fanout.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

FanoutFeed::FanoutFeed(const PrivateConfig &priv, StreamFactory factory_,
                       std::shared_ptr<const FeedBlob> blob_,
                       bool capture_)
    : privCfg(priv), factory(std::move(factory_)), blob(std::move(blob_)),
      capture(capture_)
{
    RC_ASSERT(factory, "fan-out feed needs a stream factory");
    RC_ASSERT(!(blob && capture),
              "a warm feed replays; there is nothing new to capture");
    if (blob) {
        // Replay mode: the blob IS the front end.  No streams, no
        // virgin hierarchies, no record generation — unless a member
        // later consumes past the blob's horizon (goLive()).
        per.resize(blob->numCores());
        labels.reserve(blob->numCores());
        for (std::uint32_t c = 0; c < blob->numCores(); ++c) {
            const FeedBlob::CoreView &view = blob->core(c);
            RC_ASSERT(view.count % kChunk == 0,
                      "feed blob record count %llu is not chunk-aligned",
                      static_cast<unsigned long long>(view.count));
            PerCore &pc = per[c];
            pc.flat = view.recs;
            pc.flatA = view.cumA;
            pc.flatI = view.cumI;
            pc.flatLlc = view.llc;
            pc.flatCount = view.count;
            pc.flatLlcCount = view.llcCount;
            pc.base = view.count;
            pc.generated = view.count;
            pc.aTotal = view.count ? view.cumA[view.count - 1] : 0;
            pc.iTotal = view.count ? view.cumI[view.count - 1] : 0;
            labels.push_back(view.label);
        }
        return;
    }
    streams = factory();
    RC_ASSERT(!streams.empty(), "stream factory produced no streams");
    virgin.reserve(streams.size());
    labels.reserve(streams.size());
    per.resize(streams.size());
    for (std::uint32_t c = 0; c < streams.size(); ++c) {
        RC_ASSERT(streams[c], "stream factory produced a null stream");
        virgin.push_back(std::make_unique<PrivateHierarchy>(
            privCfg, c, "virgin" + std::to_string(c)));
        labels.emplace_back(streams[c]->label());
        per[c].ring.resize(kInitialRing);
        per[c].cumA.resize(kInitialRing);
        per[c].cumI.resize(kInitialRing);
    }
}

FanoutFeed::~FanoutFeed() = default;

void
FanoutFeed::growRing(PerCore &pc)
{
    std::vector<StepRecord> bigger(pc.ring.size() * 2);
    std::vector<std::uint64_t> bigger_a(bigger.size());
    std::vector<std::uint64_t> bigger_i(bigger.size());
    const std::size_t old_mask = pc.ring.size() - 1;
    const std::size_t new_mask = bigger.size() - 1;
    for (std::uint64_t i = pc.base; i < pc.generated; ++i) {
        bigger[i & new_mask] = pc.ring[i & old_mask];
        bigger_a[i & new_mask] = pc.cumA[i & old_mask];
        bigger_i[i & new_mask] = pc.cumI[i & old_mask];
    }
    pc.ring.swap(bigger);
    pc.cumA.swap(bigger_a);
    pc.cumI.swap(bigger_i);
}

void
FanoutFeed::goLive(CoreId core)
{
    // A member outran the blob.  Rebuild exactly the live state a cold
    // run would have at the blob's horizon: fresh streams restored from
    // the newest stream snapshot and advanced, and the virgin hierarchy
    // re-materialized by replaying the flat records past the newest
    // hierarchy snapshot.  Everything generated from here on is
    // bit-identical to a cold run's continuation.
    PerCore &pc = per[core];
    if (streams.empty()) {
        streams = factory();
        RC_ASSERT(streams.size() == per.size(),
                  "stream factory produced %zu streams for %zu cores",
                  streams.size(), per.size());
        virgin.resize(per.size());
    }
    if (virgin[core])
        return;
    const FeedBlob::CoreView &view = blob->core(core);
    {
        RC_ASSERT(!view.streamSnaps.empty(),
                  "feed blob carries no stream snapshots for core %u",
                  core);
        const FeedBlob::Snap &anchor = view.streamSnaps.back();
        RC_ASSERT(anchor.idx <= pc.flatCount,
                  "feed blob stream snapshot beyond its records");
        Deserializer d(anchor.image);
        d.beginSection("stream");
        streams[core]->restore(d);
        d.endSection();
        for (std::uint64_t i = anchor.idx; i < pc.flatCount; ++i)
            (void)streams[core]->next();
    }
    virgin[core] = std::make_unique<PrivateHierarchy>(
        privCfg, core, "virgin" + std::to_string(core));
    materializeHier(core, pc.flatCount, *virgin[core]);
    if (pc.ring.empty()) {
        pc.ring.resize(kInitialRing);
        pc.cumA.resize(kInitialRing);
        pc.cumI.resize(kInitialRing);
    }
}

void
FanoutFeed::extend(CoreId core, std::uint64_t idx)
{
    PerCore &pc = per[core];
    if (blob && (virgin.size() <= core || !virgin[core]))
        goLive(core);
    RefStream &stream = *streams[core];
    PrivateHierarchy &hier = *virgin[core];
    while (pc.generated <= idx) {
        // The live window [base, generated + kChunk) must fit the ring.
        while (pc.generated + kChunk - pc.base > pc.ring.size())
            growRing(pc);
        // Chunk boundary: image the stream state before generating the
        // chunk, so any record index inside it can be reconstructed,
        // and the virgin hierarchy so express-lane members can
        // materialize exact private state at any index inside it.
        {
            Serializer ser;
            ser.beginSection("stream");
            stream.save(ser);
            ser.endSection();
            pc.snaps.push_back(StreamSnap{pc.generated, ser.image()});
        }
        {
            Serializer ser;
            ser.beginSection("hier");
            hier.save(ser);
            ser.endSection();
            pc.hsnaps.push_back(HierSnap{pc.generated, ser.image()});
        }
        const std::size_t mask = pc.ring.size() - 1;
        for (std::uint64_t i = 0; i < kChunk; ++i) {
            StepRecord &rec = pc.ring[pc.generated & mask];
            const MemRef r = stream.next();
            rec = StepRecord{};
            rec.line = lineAlign(r.addr);
            rec.pc = r.pc;
            rec.think = r.think;
            if (r.isInstr)
                rec.flags |= StepRecord::kInstr;
            if (r.op == MemOp::Write)
                rec.flags |= StepRecord::kWrite;
            const PrivateMissAction act =
                hier.classifyRecord(rec.line, r.op, r.isInstr, rec);
            if (act.needLlc) {
                // The virgin hierarchy completes misses immediately:
                // with no SLLC behind it, fills and upgrades always
                // succeed and nothing ever recalls its lines.
                if (act.event == ProtoEvent::UPG) {
                    hier.upgradedRecord(rec.line, rec);
                } else {
                    Addr evict_line = 0;
                    bool evict_dirty = false;
                    hier.fillRecord(rec.line, r.isInstr,
                                    act.event == ProtoEvent::GETX,
                                    evict_line, evict_dirty, rec);
                }
                pc.llcIdx.push_back(pc.generated);
            }
            pc.aTotal += rec.think + act.latency;
            pc.iTotal += rec.think + (r.isInstr ? 0 : 1);
            pc.cumA[pc.generated & mask] = pc.aTotal;
            pc.cumI[pc.generated & mask] = pc.iTotal;
            ++pc.generated;
        }
    }
}

void
FanoutFeed::trim(CoreId core, std::uint64_t min_idx)
{
    // Capture mode keeps the whole window alive: FeedCache::store()
    // serializes it after the run.  Blob-backed records are never
    // trimmed either — they are a read-only mapping, and base already
    // starts at the blob's horizon.
    if (capture)
        return;
    PerCore &pc = per[core];
    // Trim to the chunk boundary below min_idx, not min_idx itself:
    // materializeHier() replays records from the newest hierarchy
    // snapshot at or before a member's cursor, so the records between
    // that boundary and the cursor must stay live.
    const std::uint64_t floor_idx = min_idx & ~(kChunk - 1);
    if (floor_idx > pc.base)
        pc.base = std::min(floor_idx, pc.generated);
    while (!pc.llcIdx.empty() && pc.llcIdx.front() < pc.base)
        pc.llcIdx.pop_front();
    // Keep the newest snapshot at or before the floor: it anchors
    // stream/hierarchy reconstruction for every index a member can
    // still reach.
    while (pc.snaps.size() >= 2 && pc.snaps[1].idx <= floor_idx)
        pc.snaps.pop_front();
    while (pc.hsnaps.size() >= 2 && pc.hsnaps[1].idx <= floor_idx)
        pc.hsnaps.pop_front();
}

FanoutFeed::NextEvent
FanoutFeed::nextLlcBounded(CoreId core, std::uint64_t cursor,
                           std::uint64_t base_cum_a, Cycle base_ready,
                           Cycle end)
{
    PerCore &pc = per[core];
    // Replay fast path: binary-search the blob's flat LLC-bound index.
    // Falls through to the live window only once the flat index is
    // exhausted (the live llcIdx holds indices >= flatCount only).
    if (cursor < pc.flatCount && pc.flatLlcCount != 0) {
        const std::uint64_t *it = std::lower_bound(
            pc.flatLlc, pc.flatLlc + pc.flatLlcCount, cursor);
        if (it != pc.flatLlc + pc.flatLlcCount) {
            const std::uint64_t k = *it;
            const Cycle pre =
                preReadyOf(pc, cursor, base_cum_a, base_ready, k);
            if (pre >= end)
                return NextEvent{};
            return NextEvent{true, k, pre};
        }
    }
    for (;;) {
        const auto it = std::lower_bound(pc.llcIdx.begin(),
                                         pc.llcIdx.end(), cursor);
        if (it != pc.llcIdx.end()) {
            const std::uint64_t k = *it;
            const Cycle pre =
                preReadyOf(pc, cursor, base_cum_a, base_ready, k);
            if (pre >= end)
                return NextEvent{};
            return NextEvent{true, k, pre};
        }
        // No LLC-bound record generated yet: if the core provably
        // reaches the quantum boundary first, stop; otherwise generate
        // another chunk and look again.
        if (preReadyOf(pc, cursor, base_cum_a, base_ready,
                       pc.generated) >= end) {
            return NextEvent{};
        }
        extend(core, pc.generated);
    }
}

std::uint64_t
FanoutFeed::firstAtOrPast(const PerCore &pc, std::uint64_t cursor,
                          std::uint64_t base_cum_a, Cycle base_ready,
                          std::uint64_t limit, Cycle bound,
                          bool strict) const
{
    std::uint64_t lo = cursor;
    std::uint64_t hi = limit;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const Cycle pre =
            preReadyOf(pc, cursor, base_cum_a, base_ready, mid);
        const bool past = strict ? pre > bound : pre >= bound;
        if (past)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

std::uint64_t
FanoutFeed::cursorAtCycle(CoreId core, std::uint64_t cursor,
                          std::uint64_t base_cum_a, Cycle base_ready,
                          Cycle end)
{
    PerCore &pc = per[core];
    while (pc.generated <= cursor ||
           preReadyOf(pc, cursor, base_cum_a, base_ready,
                      pc.generated) < end) {
        extend(core, pc.generated);
    }
    return firstAtOrPast(pc, cursor, base_cum_a, base_ready,
                         pc.generated, end, false);
}

std::uint64_t
FanoutFeed::cursorAtKey(CoreId core, std::uint64_t cursor,
                        std::uint64_t base_cum_a, Cycle base_ready,
                        Cycle key_ready, bool strict)
{
    PerCore &pc = per[core];
    while (pc.generated <= cursor ||
           preReadyOf(pc, cursor, base_cum_a, base_ready,
                      pc.generated) <= key_ready) {
        extend(core, pc.generated);
    }
    return firstAtOrPast(pc, cursor, base_cum_a, base_ready,
                         pc.generated, key_ready, strict);
}

namespace
{

/** Newest snapshot at or before @p idx: the live deque wins when it
 *  has one (its entries all follow the blob's), else the blob's
 *  vector is binary-searched.  Returns {snapIdx, image}; the image
 *  pointer is null when neither side has an anchor. */
template <typename LiveSnap>
std::pair<std::uint64_t, const std::vector<std::uint8_t> *>
newestSnapAtOrBefore(const std::deque<LiveSnap> &live,
                     const std::vector<FeedBlob::Snap> *flat,
                     std::uint64_t idx)
{
    const LiveSnap *anchor = nullptr;
    for (const LiveSnap &snap : live) {
        if (snap.idx > idx)
            break;
        anchor = &snap;
    }
    if (anchor)
        return {anchor->idx, &anchor->image};
    if (flat && !flat->empty()) {
        // First blob snap past idx, then step back one.
        auto it = std::upper_bound(
            flat->begin(), flat->end(), idx,
            [](std::uint64_t v, const FeedBlob::Snap &s) {
                return v < s.idx;
            });
        if (it != flat->begin()) {
            --it;
            return {it->idx, &it->image};
        }
    }
    return {0, nullptr};
}

} // namespace

void
FanoutFeed::materializeHier(CoreId core, std::uint64_t idx,
                            PrivateHierarchy &hier) const
{
    const PerCore &pc = per[core];
    RC_ASSERT(idx <= pc.generated,
              "materializeHier(%llu) beyond generated %llu",
              static_cast<unsigned long long>(idx),
              static_cast<unsigned long long>(pc.generated));
    const auto [anchorIdx, image] = newestSnapAtOrBefore(
        pc.hsnaps, blob ? &blob->core(core).hierSnaps : nullptr, idx);
    RC_ASSERT(image,
              "no hierarchy snapshot at or before record %llu of core %u",
              static_cast<unsigned long long>(idx), core);
    {
        Deserializer d(*image);
        d.beginSection("hier");
        hier.restore(d);
        d.endSection();
    }
    // Replay the intervening records: a never-diverged member replica
    // is bit-identical to the virgin hierarchy at every index, so the
    // apply path reproduces its exact state (and counters) at idx.
    for (std::uint64_t i = anchorIdx; i < idx; ++i) {
        const StepRecord &rec = recAt(pc, i);
        const PrivateMissAction act = hier.applyClassify(rec);
        if (act.needLlc) {
            if (act.event == ProtoEvent::UPG) {
                hier.applyUpgraded(rec);
            } else {
                Addr evict_line = 0;
                bool evict_dirty = false;
                (void)hier.applyFill(rec, evict_line, evict_dirty);
            }
        }
    }
}

void
FanoutFeed::saveStreamAt(CoreId core, std::uint64_t idx,
                         Serializer &s) const
{
    const PerCore &pc = per[core];
    const auto [anchorIdx, image] = newestSnapAtOrBefore(
        pc.snaps, blob ? &blob->core(core).streamSnaps : nullptr, idx);
    RC_ASSERT(image,
              "no stream snapshot at or before record %llu of core %u",
              static_cast<unsigned long long>(idx), core);

    std::vector<std::unique_ptr<RefStream>> fresh = factory();
    RC_ASSERT(core < fresh.size(), "stream factory shrank");
    RefStream &stream = *fresh[core];
    {
        Deserializer d(*image);
        d.beginSection("stream");
        stream.restore(d);
        d.endSection();
    }
    for (std::uint64_t i = anchorIdx; i < idx; ++i)
        (void)stream.next();
    stream.save(s);
}

MemRef
ReplayStream::next()
{
    panic("ReplayStream::next: fan-out members consume StepRecords, "
          "never raw references");
}

void
ReplayStream::restore(Deserializer &d)
{
    (void)d;
    throwSimError(SimError::Kind::Snapshot,
                  "fan-out member systems cannot be restored into; "
                  "resumed runs execute independently");
}

FanoutCmp::FanoutCmp(const std::vector<SystemConfig> &configs,
                     StreamFactory factory_,
                     std::shared_ptr<const FeedBlob> blob,
                     bool capture)
{
    RC_ASSERT(!configs.empty(), "fan-out needs at least one config");
    const SystemConfig &head = configs.front();
    RC_ASSERT(!head.prefetch.enable,
              "fan-out requires prefetching disabled");
    for (const SystemConfig &c : configs) {
        RC_ASSERT(samePrivatePrefix(head, c),
                  "fan-out members must share the private prefix");
    }

    feed = std::make_unique<FanoutFeed>(head.priv, std::move(factory_),
                                        std::move(blob), capture);
    RC_ASSERT(feed->numCores() == head.numCores,
              "stream factory produced %u streams for %u cores",
              feed->numCores(), head.numCores);

    members.reserve(configs.size());
    cursors.reserve(configs.size());
    for (const SystemConfig &c : configs) {
        std::vector<std::unique_ptr<RefStream>> streams;
        std::vector<ReplayStream *> views;
        streams.reserve(c.numCores);
        views.reserve(c.numCores);
        for (CoreId i = 0; i < c.numCores; ++i) {
            auto rs = std::make_unique<ReplayStream>(*feed, i);
            views.push_back(rs.get());
            streams.push_back(std::move(rs));
        }
        auto m = std::make_unique<Cmp>(c, std::move(streams));
        m->attachFeed(feed.get());
        members.push_back(std::move(m));
        cursors.push_back(std::move(views));
    }
}

bool
FanoutCmp::samePrivatePrefix(const SystemConfig &a, const SystemConfig &b)
{
    return a.numCores == b.numCores &&
           a.priv.l1Bytes == b.priv.l1Bytes &&
           a.priv.l1Ways == b.priv.l1Ways &&
           a.priv.l1Latency == b.priv.l1Latency &&
           a.priv.l2Bytes == b.priv.l2Bytes &&
           a.priv.l2Ways == b.priv.l2Ways &&
           a.priv.l2Latency == b.priv.l2Latency &&
           a.prefetch.enable == b.prefetch.enable &&
           a.prefetch.degree == b.prefetch.degree &&
           a.prefetch.tableEntries == b.prefetch.tableEntries &&
           a.prefetch.regionShift == b.prefetch.regionShift &&
           a.prefetch.minConfidence == b.prefetch.minConfidence &&
           a.seed == b.seed && a.capacityScale == b.capacityScale;
}

void
FanoutCmp::run(Cycle cycles)
{
    const Cycle start = now();
    for (const auto &m : members) {
        RC_ASSERT(m->now() == start, "fan-out members out of lockstep");
    }
    const Cycle end = start + cycles;
    // The lockstep quantum exists solely to bound the feed's live
    // record window.  Replaying from a blob, the window is the blob —
    // already materialized, never trimmed — so each member can run its
    // whole horizon in one slice, keeping its SLLC and private
    // metadata hot instead of round-robining every 256K cycles.
    // Results are quantum-invariant either way (members only commit at
    // the end of run()).
    const Cycle quantum =
        feed->warm() && !feed->capturing() ? cycles : kQuantum;
    Cycle target = start;
    while (target < end) {
        target = std::min(target + quantum, end);
        for (auto &m : members)
            m->runSlice(target, target == end);

        // Everything every member has consumed can be dropped.
        for (CoreId c = 0; c < feed->numCores(); ++c) {
            std::uint64_t min_idx = cursors.front()[c]->cursor;
            for (const auto &views : cursors)
                min_idx = std::min(min_idx, views[c]->cursor);
            feed->trim(c, min_idx);
        }
    }
}

void
FanoutCmp::beginMeasurement()
{
    for (auto &m : members)
        m->beginMeasurement();
}

} // namespace rc
