#include "sim/fanout.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

FanoutFeed::FanoutFeed(const PrivateConfig &priv, StreamFactory factory_)
    : privCfg(priv), factory(std::move(factory_))
{
    RC_ASSERT(factory, "fan-out feed needs a stream factory");
    streams = factory();
    RC_ASSERT(!streams.empty(), "stream factory produced no streams");
    virgin.reserve(streams.size());
    labels.reserve(streams.size());
    per.resize(streams.size());
    for (std::uint32_t c = 0; c < streams.size(); ++c) {
        RC_ASSERT(streams[c], "stream factory produced a null stream");
        virgin.push_back(std::make_unique<PrivateHierarchy>(
            privCfg, c, "virgin" + std::to_string(c)));
        labels.emplace_back(streams[c]->label());
        per[c].ring.resize(kInitialRing);
        per[c].cumA.resize(kInitialRing);
        per[c].cumI.resize(kInitialRing);
    }
}

FanoutFeed::~FanoutFeed() = default;

void
FanoutFeed::growRing(PerCore &pc)
{
    std::vector<StepRecord> bigger(pc.ring.size() * 2);
    std::vector<std::uint64_t> bigger_a(bigger.size());
    std::vector<std::uint64_t> bigger_i(bigger.size());
    const std::size_t old_mask = pc.ring.size() - 1;
    const std::size_t new_mask = bigger.size() - 1;
    for (std::uint64_t i = pc.base; i < pc.generated; ++i) {
        bigger[i & new_mask] = pc.ring[i & old_mask];
        bigger_a[i & new_mask] = pc.cumA[i & old_mask];
        bigger_i[i & new_mask] = pc.cumI[i & old_mask];
    }
    pc.ring.swap(bigger);
    pc.cumA.swap(bigger_a);
    pc.cumI.swap(bigger_i);
}

void
FanoutFeed::extend(CoreId core, std::uint64_t idx)
{
    PerCore &pc = per[core];
    RefStream &stream = *streams[core];
    PrivateHierarchy &hier = *virgin[core];
    while (pc.generated <= idx) {
        // The live window [base, generated + kChunk) must fit the ring.
        while (pc.generated + kChunk - pc.base > pc.ring.size())
            growRing(pc);
        // Chunk boundary: image the stream state before generating the
        // chunk, so any record index inside it can be reconstructed,
        // and the virgin hierarchy so express-lane members can
        // materialize exact private state at any index inside it.
        {
            Serializer ser;
            ser.beginSection("stream");
            stream.save(ser);
            ser.endSection();
            pc.snaps.push_back(StreamSnap{pc.generated, ser.image()});
        }
        {
            Serializer ser;
            ser.beginSection("hier");
            hier.save(ser);
            ser.endSection();
            pc.hsnaps.push_back(HierSnap{pc.generated, ser.image()});
        }
        const std::size_t mask = pc.ring.size() - 1;
        for (std::uint64_t i = 0; i < kChunk; ++i) {
            StepRecord &rec = pc.ring[pc.generated & mask];
            const MemRef r = stream.next();
            rec = StepRecord{};
            rec.line = lineAlign(r.addr);
            rec.pc = r.pc;
            rec.think = r.think;
            if (r.isInstr)
                rec.flags |= StepRecord::kInstr;
            if (r.op == MemOp::Write)
                rec.flags |= StepRecord::kWrite;
            const PrivateMissAction act =
                hier.classifyRecord(rec.line, r.op, r.isInstr, rec);
            if (act.needLlc) {
                // The virgin hierarchy completes misses immediately:
                // with no SLLC behind it, fills and upgrades always
                // succeed and nothing ever recalls its lines.
                if (act.event == ProtoEvent::UPG) {
                    hier.upgradedRecord(rec.line, rec);
                } else {
                    Addr evict_line = 0;
                    bool evict_dirty = false;
                    hier.fillRecord(rec.line, r.isInstr,
                                    act.event == ProtoEvent::GETX,
                                    evict_line, evict_dirty, rec);
                }
                pc.llcIdx.push_back(pc.generated);
            }
            pc.aTotal += rec.think + act.latency;
            pc.iTotal += rec.think + (r.isInstr ? 0 : 1);
            pc.cumA[pc.generated & mask] = pc.aTotal;
            pc.cumI[pc.generated & mask] = pc.iTotal;
            ++pc.generated;
        }
    }
}

void
FanoutFeed::trim(CoreId core, std::uint64_t min_idx)
{
    PerCore &pc = per[core];
    // Trim to the chunk boundary below min_idx, not min_idx itself:
    // materializeHier() replays records from the newest hierarchy
    // snapshot at or before a member's cursor, so the records between
    // that boundary and the cursor must stay live.
    const std::uint64_t floor_idx = min_idx & ~(kChunk - 1);
    if (floor_idx > pc.base)
        pc.base = std::min(floor_idx, pc.generated);
    while (!pc.llcIdx.empty() && pc.llcIdx.front() < pc.base)
        pc.llcIdx.pop_front();
    // Keep the newest snapshot at or before the floor: it anchors
    // stream/hierarchy reconstruction for every index a member can
    // still reach.
    while (pc.snaps.size() >= 2 && pc.snaps[1].idx <= floor_idx)
        pc.snaps.pop_front();
    while (pc.hsnaps.size() >= 2 && pc.hsnaps[1].idx <= floor_idx)
        pc.hsnaps.pop_front();
}

/** Canonical pre-step ready time of record @p j for a core whose state
 *  is (@p cursor, @p base_ready, @p base_cum_a); j must be >= cursor
 *  and the records [cursor, j) must all be private-complete. */
static inline Cycle
preReadyOf(const std::vector<std::uint64_t> &cum_a, std::size_t mask,
           std::uint64_t cursor, std::uint64_t base_cum_a,
           Cycle base_ready, std::uint64_t j)
{
    return j == cursor
               ? base_ready
               : base_ready + (cum_a[(j - 1) & mask] - base_cum_a);
}

FanoutFeed::NextEvent
FanoutFeed::nextLlcBounded(CoreId core, std::uint64_t cursor,
                           std::uint64_t base_cum_a, Cycle base_ready,
                           Cycle end)
{
    PerCore &pc = per[core];
    for (;;) {
        const std::size_t mask = pc.ring.size() - 1;
        const auto it = std::lower_bound(pc.llcIdx.begin(),
                                         pc.llcIdx.end(), cursor);
        if (it != pc.llcIdx.end()) {
            const std::uint64_t k = *it;
            const Cycle pre = preReadyOf(pc.cumA, mask, cursor,
                                         base_cum_a, base_ready, k);
            if (pre >= end)
                return NextEvent{};
            return NextEvent{true, k, pre};
        }
        // No LLC-bound record generated yet: if the core provably
        // reaches the quantum boundary first, stop; otherwise generate
        // another chunk and look again.
        if (preReadyOf(pc.cumA, mask, cursor, base_cum_a, base_ready,
                       pc.generated) >= end) {
            return NextEvent{};
        }
        extend(core, pc.generated);
    }
}

/** Shared binary search: first index in [cursor, limit] whose pre-step
 *  ready time satisfies `pre > bound` (strict) or `pre >= bound`. */
static std::uint64_t
firstAtOrPast(const std::vector<std::uint64_t> &cum_a, std::size_t mask,
              std::uint64_t cursor, std::uint64_t base_cum_a,
              Cycle base_ready, std::uint64_t limit, Cycle bound,
              bool strict)
{
    std::uint64_t lo = cursor;
    std::uint64_t hi = limit;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const Cycle pre = preReadyOf(cum_a, mask, cursor, base_cum_a,
                                     base_ready, mid);
        const bool past = strict ? pre > bound : pre >= bound;
        if (past)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

std::uint64_t
FanoutFeed::cursorAtCycle(CoreId core, std::uint64_t cursor,
                          std::uint64_t base_cum_a, Cycle base_ready,
                          Cycle end)
{
    PerCore &pc = per[core];
    while (pc.generated <= cursor ||
           preReadyOf(pc.cumA, pc.ring.size() - 1, cursor, base_cum_a,
                      base_ready, pc.generated) < end) {
        extend(core, pc.generated);
    }
    return firstAtOrPast(pc.cumA, pc.ring.size() - 1, cursor, base_cum_a,
                         base_ready, pc.generated, end, false);
}

std::uint64_t
FanoutFeed::cursorAtKey(CoreId core, std::uint64_t cursor,
                        std::uint64_t base_cum_a, Cycle base_ready,
                        Cycle key_ready, bool strict)
{
    PerCore &pc = per[core];
    while (pc.generated <= cursor ||
           preReadyOf(pc.cumA, pc.ring.size() - 1, cursor, base_cum_a,
                      base_ready, pc.generated) <= key_ready) {
        extend(core, pc.generated);
    }
    return firstAtOrPast(pc.cumA, pc.ring.size() - 1, cursor, base_cum_a,
                         base_ready, pc.generated, key_ready, strict);
}

void
FanoutFeed::materializeHier(CoreId core, std::uint64_t idx,
                            PrivateHierarchy &hier) const
{
    const PerCore &pc = per[core];
    RC_ASSERT(idx <= pc.generated,
              "materializeHier(%llu) beyond generated %llu",
              static_cast<unsigned long long>(idx),
              static_cast<unsigned long long>(pc.generated));
    const HierSnap *anchor = nullptr;
    for (const HierSnap &snap : pc.hsnaps) {
        if (snap.idx > idx)
            break;
        anchor = &snap;
    }
    RC_ASSERT(anchor,
              "no hierarchy snapshot at or before record %llu of core %u",
              static_cast<unsigned long long>(idx), core);
    {
        Deserializer d(anchor->image);
        d.beginSection("hier");
        hier.restore(d);
        d.endSection();
    }
    // Replay the intervening records: a never-diverged member replica
    // is bit-identical to the virgin hierarchy at every index, so the
    // apply path reproduces its exact state (and counters) at idx.
    const std::size_t mask = pc.ring.size() - 1;
    for (std::uint64_t i = anchor->idx; i < idx; ++i) {
        const StepRecord &rec = pc.ring[i & mask];
        const PrivateMissAction act = hier.applyClassify(rec);
        if (act.needLlc) {
            if (act.event == ProtoEvent::UPG) {
                hier.applyUpgraded(rec);
            } else {
                Addr evict_line = 0;
                bool evict_dirty = false;
                (void)hier.applyFill(rec, evict_line, evict_dirty);
            }
        }
    }
}

void
FanoutFeed::saveStreamAt(CoreId core, std::uint64_t idx,
                         Serializer &s) const
{
    const PerCore &pc = per[core];
    const StreamSnap *anchor = nullptr;
    for (const StreamSnap &snap : pc.snaps) {
        if (snap.idx > idx)
            break;
        anchor = &snap;
    }
    RC_ASSERT(anchor,
              "no stream snapshot at or before record %llu of core %u",
              static_cast<unsigned long long>(idx), core);

    std::vector<std::unique_ptr<RefStream>> fresh = factory();
    RC_ASSERT(core < fresh.size(), "stream factory shrank");
    RefStream &stream = *fresh[core];
    {
        Deserializer d(anchor->image);
        d.beginSection("stream");
        stream.restore(d);
        d.endSection();
    }
    for (std::uint64_t i = anchor->idx; i < idx; ++i)
        (void)stream.next();
    stream.save(s);
}

MemRef
ReplayStream::next()
{
    panic("ReplayStream::next: fan-out members consume StepRecords, "
          "never raw references");
}

void
ReplayStream::restore(Deserializer &d)
{
    (void)d;
    throwSimError(SimError::Kind::Snapshot,
                  "fan-out member systems cannot be restored into; "
                  "resumed runs execute independently");
}

FanoutCmp::FanoutCmp(const std::vector<SystemConfig> &configs,
                     StreamFactory factory_)
{
    RC_ASSERT(!configs.empty(), "fan-out needs at least one config");
    const SystemConfig &head = configs.front();
    RC_ASSERT(!head.prefetch.enable,
              "fan-out requires prefetching disabled");
    for (const SystemConfig &c : configs) {
        RC_ASSERT(samePrivatePrefix(head, c),
                  "fan-out members must share the private prefix");
    }

    feed = std::make_unique<FanoutFeed>(head.priv, std::move(factory_));
    RC_ASSERT(feed->numCores() == head.numCores,
              "stream factory produced %u streams for %u cores",
              feed->numCores(), head.numCores);

    members.reserve(configs.size());
    cursors.reserve(configs.size());
    for (const SystemConfig &c : configs) {
        std::vector<std::unique_ptr<RefStream>> streams;
        std::vector<ReplayStream *> views;
        streams.reserve(c.numCores);
        views.reserve(c.numCores);
        for (CoreId i = 0; i < c.numCores; ++i) {
            auto rs = std::make_unique<ReplayStream>(*feed, i);
            views.push_back(rs.get());
            streams.push_back(std::move(rs));
        }
        auto m = std::make_unique<Cmp>(c, std::move(streams));
        m->attachFeed(feed.get());
        members.push_back(std::move(m));
        cursors.push_back(std::move(views));
    }
}

bool
FanoutCmp::samePrivatePrefix(const SystemConfig &a, const SystemConfig &b)
{
    return a.numCores == b.numCores &&
           a.priv.l1Bytes == b.priv.l1Bytes &&
           a.priv.l1Ways == b.priv.l1Ways &&
           a.priv.l1Latency == b.priv.l1Latency &&
           a.priv.l2Bytes == b.priv.l2Bytes &&
           a.priv.l2Ways == b.priv.l2Ways &&
           a.priv.l2Latency == b.priv.l2Latency &&
           a.prefetch.enable == b.prefetch.enable &&
           a.prefetch.degree == b.prefetch.degree &&
           a.prefetch.tableEntries == b.prefetch.tableEntries &&
           a.prefetch.regionShift == b.prefetch.regionShift &&
           a.prefetch.minConfidence == b.prefetch.minConfidence &&
           a.seed == b.seed && a.capacityScale == b.capacityScale;
}

void
FanoutCmp::run(Cycle cycles)
{
    const Cycle start = now();
    for (const auto &m : members) {
        RC_ASSERT(m->now() == start, "fan-out members out of lockstep");
    }
    const Cycle end = start + cycles;
    Cycle target = start;
    while (target < end) {
        target = std::min(target + kQuantum, end);
        for (auto &m : members)
            m->runSlice(target, target == end);

        // Everything every member has consumed can be dropped.
        for (CoreId c = 0; c < feed->numCores(); ++c) {
            std::uint64_t min_idx = cursors.front()[c]->cursor;
            for (const auto &views : cursors)
                min_idx = std::min(min_idx, views[c]->cursor);
            feed->trim(c, min_idx);
        }
    }
}

void
FanoutCmp::beginMeasurement()
{
    for (auto &m : members)
        m->beginMeasurement();
}

} // namespace rc
