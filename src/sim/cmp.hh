/**
 * @file
 * The eight-core CMP system: cores + private hierarchies + crossbar +
 * SLLC + DRAM, with warmup/measurement bookkeeping.
 *
 * The run loop is timestamp-ordered: the core with the earliest ready
 * time processes its next reference atomically (private lookups, SLLC
 * transaction, fills, eviction notifications), charging latency and
 * resource occupancy as it goes.  Identical seeds and streams make runs
 * bit-reproducible across SLLC organizations.
 */

#ifndef RC_SIM_CMP_HH
#define RC_SIM_CMP_HH

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "cache/geometry.hh"
#include "cache/llc_iface.hh"
#include "cache/prefetcher.hh"
#include "mem/memctrl.hh"
#include "sim/core.hh"
#include "sim/crossbar.hh"
#include "sim/system_config.hh"
#include "sim/trace.hh"

namespace rc
{

class Serializer;
class Deserializer;
class FanoutFeed;
class ReplayStream;

/** Per-core/per-level miss rates in misses per kilo-instruction. */
struct MpkiTriple
{
    double l1 = 0.0;   //!< L1 I+D
    double l2 = 0.0;
    double llc = 0.0;  //!< requests the SLLC sent to memory
};

/** The complete simulated system. */
class Cmp : public RecallHandler
{
  public:
    /**
     * @param cfg system description (choose the SLLC via cfg.llcKind).
     * @param streams one reference stream per core (ownership taken).
     */
    Cmp(const SystemConfig &cfg,
        std::vector<std::unique_ptr<RefStream>> streams);

    ~Cmp() override;

    /** Advance simulated time by @p cycles. */
    void run(Cycle cycles);

    /**
     * Advance to absolute cycle @p end without necessarily committing
     * the horizon: run(c) is runSlice(now() + c, true).  FanoutCmp
     * interleaves its members in bounded quanta and commits only the
     * final slice of each run() call, so mid-run hooks observe the same
     * entry-horizon value they would in an unsliced run.
     */
    void runSlice(Cycle end, bool commit);

    /**
     * Fan-out client mode: references come as StepRecords from @p feed
     * (the cores' streams must be the feed's ReplayStreams, matched by
     * core id).  Recorded steps replay into the private hierarchies
     * while the sets they touch are bit-identical to the feed's
     * recording hierarchies; SLLC recalls/downgrades mark sets diverged
     * and those references fall back to the ordinary classify path.
     * Call once, immediately after construction.
     */
    void attachFeed(FanoutFeed *feed);

    /** Snapshot all counters; subsequent measured*() report deltas. */
    void beginMeasurement();

    /** Current simulated horizon. */
    Cycle now() const { return horizon; }

    /** Cycles simulated since beginMeasurement(). */
    Cycle measuredCycles() const { return horizon - snapCycle; }

    /** Instructions retired by @p core since beginMeasurement(). */
    std::uint64_t measuredInstructions(CoreId core) const;

    /** Per-core IPC over the measurement window. */
    double ipc(CoreId core) const;

    /** Sum of per-core IPCs (system throughput). */
    double aggregateIpc() const;

    /** Per-core L1/L2/LLC MPKI over the measurement window (Table 5). */
    MpkiTriple measuredMpki(CoreId core) const;

    /** The SLLC. */
    Sllc &llc() { return *llcPtr; }

    /** The SLLC, const. */
    const Sllc &llc() const { return *llcPtr; }

    /** The memory controller. */
    MemCtrl &memory() { return mem; }

    /** The memory controller, const (telemetry sampling). */
    const MemCtrl &memory() const { return mem; }

    /** Core @p i. */
    Core &core(CoreId i) { return *cores[i]; }

    /** Core @p i, const (integrity walks). */
    const Core &core(CoreId i) const { return *cores[i]; }

    /** Number of cores. */
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores.size());
    }

    /** Crossbar (MSHR stats). */
    const Crossbar &crossbar() const { return xbar; }

    /** Per-core prefetcher (nullptr when disabled). */
    const StridePrefetcher *prefetcher(CoreId i) const
    {
        return i < prefetchers.size() ? prefetchers[i].get() : nullptr;
    }

    /** Prefetch requests actually issued to the SLLC. */
    Counter prefetchesIssued() const { return prefetchIssued; }

    /**
     * Install a periodic consistency hook: after every @p every_n_refs
     * completed references the hook runs with (system, current cycle).
     * References are atomic transactions, so the hook always observes
     * the system at a quiescent point; it may throw SimError to abort
     * the run recoverably (the bench harness quarantines it).  Pass 0
     * to disable.
     */
    void setCheckHook(std::uint64_t every_n_refs,
                      std::function<void(const Cmp &, Cycle)> hook);

    /** References completed since construction (check-hook cadence). */
    std::uint64_t referencesProcessed() const { return refsProcessed; }

    /** Fan-out references replayed from records (diagnostics). */
    std::uint64_t feedReplays() const { return feedReplayed; }

    /** Fan-out references that fell back to real classify. */
    std::uint64_t feedFallbacks() const { return feedFellBack; }

    /**
     * Install a periodic checkpoint hook, symmetric to setCheckHook():
     * runs with (system, current cycle) after every @p every_n_refs
     * completed references, always at a quiescent point.  Pass 0 to
     * disable.
     */
    void setSnapshotHook(std::uint64_t every_n_refs,
                         std::function<void(const Cmp &, Cycle)> hook);

    /**
     * Install a cycle-cadence sampling hook: the hook runs with
     * (system, epoch boundary cycle) once per @p every_cycles of
     * simulated time, at the quiescent point before the first reference
     * at-or-after each boundary (the telemetry epoch sampler snapshots
     * stat deltas here).  Unlike the check/snapshot hooks the cadence
     * is cycles, not references, so epochs are comparable across SLLC
     * organizations with different miss rates.  Pass 0 to disable.
     *
     * The next boundary survives checkpoint/restore: installing a hook
     * after restore() resumes the restored cadence instead of
     * restarting it.
     */
    void setSampleHook(Cycle every_cycles,
                       std::function<void(const Cmp &, Cycle)> hook);

    /**
     * Watchdog heartbeat: when set, the run loop stores the completed
     * reference count into @p counter (relaxed) after every reference,
     * so a monitor thread can observe forward progress.
     */
    void setProgressCounter(std::atomic<std::uint64_t> *counter);

    /**
     * Cooperative abort: when @p flag becomes true the run loop calls
     * @p on_abort (diagnostic state dump) and throws SimError(Hang),
     * which the bench harness routes into its quarantine path.
     */
    void setAbortFlag(const std::atomic<bool> *flag,
                      std::function<void(const Cmp &)> on_abort = {});

    /** Cycle at which the current measurement window opened. */
    Cycle measurementStart() const { return snapCycle; }

    /**
     * Checkpoint the complete mutable simulation state (cores, private
     * hierarchies, SLLC, directory, MSHRs, DRAM, crossbar, streams,
     * stats, measurement snapshots).  Must be called at a quiescent
     * point (between run() calls or from a check/snapshot hook).
     */
    void save(Serializer &s) const;

    /**
     * Restore a save()'d image into a Cmp constructed from the SAME
     * SystemConfig and stream set; construction-derived state is
     * validated, not restored.  Throws SimError(Snapshot) on any
     * mismatch or corruption.  Callers should run the IntegrityChecker
     * immediately afterwards.
     */
    void restore(Deserializer &d);

    /**
     * Latest per-core ready time: every legitimate MSHR entry completes
     * by then, so later completion times are leaks at quiesce.
     */
    Cycle maxCoreReadyAt() const;

    // RecallHandler interface (called by the SLLC).
    bool recall(Addr line_addr, std::uint32_t core_mask) override;
    bool downgrade(Addr line_addr, std::uint32_t core_mask) override;

  private:
    void stepCore(Core &core);
    void stepCoreFanout(Core &core);
    void issuePrefetches(Core &core, Addr demand_line, Cycle when);

    // Fan-out divergence tracking (client mode only).
    bool feedSetsClean(CoreId c, Addr line, bool is_instr) const;
    void feedMarkLine(CoreId c, Addr line);
    void feedMarkL1(CoreId c, Addr line);

    // Express-lane fan-out replay (hook-free fast path only): jump a
    // never-diverged core straight from one LLC-bound record to the
    // next using the feed's prefix sums, leaving its private state
    // stale in between and materializing it only when something must
    // observe it (a recall/downgrade, or the end of a run() call).
    void completeFanoutLlc(Core &core, const StepRecord &rec,
                           const PrivateMissAction &act, bool replayed,
                           Cycle returned);
    void refreshExpressEvent(std::uint32_t c, Cycle end);
    void expressEvent(std::uint32_t c, Cycle end);
    void materializeExpress(CoreId c, bool self_step);
    void finalizeExpress(std::uint32_t c, Cycle end);

    SystemConfig cfg;
    std::vector<std::unique_ptr<RefStream>> ownedStreams;
    MemCtrl mem;
    Crossbar xbar;
    std::unique_ptr<Sllc> llcPtr;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Cycle> readyCache; //!< per-core ready mirror; run() only
    std::vector<std::unique_ptr<StridePrefetcher>> prefetchers;
    std::vector<Addr> prefetchScratch;
    Counter prefetchIssued = 0;

    Cycle horizon = 0;

    // Fan-out client mode: record source, per-core cursor views into
    // the ReplayStreams, and per-core set-divergence flags (one byte
    // per set per store; a reference replays only when the L1 and L2
    // sets it touches are all clean).
    FanoutFeed *feed = nullptr;
    std::vector<ReplayStream *> replays;
    struct DivergedSets
    {
        bool any = false; //!< fast path: nothing marked for this core
        std::vector<std::uint8_t> l1i;
        std::vector<std::uint8_t> l1d;
        std::vector<std::uint8_t> l2;
    };
    std::vector<DivergedSets> diverged;
    std::uint64_t feedReplayed = 0; //!< replayed refs (diagnostics only)
    std::uint64_t feedFellBack = 0; //!< real-classify refs in feed mode

    /**
     * Express-lane state of one fan-out core.  While active, the core's
     * canonical position is (cursor, baseReady) with the feed's
     * cumulative totals through cursor-1 cached in baseCumA/baseCumI;
     * its Core object and private hierarchy are only exact through
     * exactCursor and at the ready times of executed LLC events.  The
     * scheduler sees the core at the pre-step ready time of its next
     * LLC-bound record (eventIdx/eventPreReady).
     */
    struct ExpressCore
    {
        bool active = false;
        bool hasEvent = false;
        std::uint64_t cursor = 0;      //!< next unconsumed record
        std::uint64_t exactCursor = 0; //!< private state exact through
        Cycle baseReady = 0;           //!< canonical pre-ready of cursor
        std::uint64_t baseCumA = 0;    //!< feed cumAIncl(cursor-1)
        std::uint64_t baseCumI = 0;    //!< feed cumIIncl(cursor-1)
        std::uint64_t eventIdx = 0;
        Cycle eventPreReady = 0;
    };
    std::vector<ExpressCore> express;
    bool expressEligible = false; //!< config allows express replay
    bool expressDemoted = false;  //!< a recall deactivated a core mid-burst
    // Scheduling key of the step in flight, so a recall can pin the
    // canonical position of an express core it must materialize.
    bool curKeyValid = false;
    //! The in-flight express step has passed its SLLC response (its
    //! whole record is canonical, not just the classify phase).
    bool curKeyCompletion = false;
    std::uint32_t curKeyIdx = 0;
    Cycle curKeyReady = 0;
    CacheGeometry privL1Geom;
    CacheGeometry privL2Geom;

    // Periodic integrity hook (verify layer).
    std::uint64_t refsProcessed = 0;
    std::uint64_t checkEvery = 0;
    std::function<void(const Cmp &, Cycle)> checkHook;

    // Periodic checkpoint hook (snapshot layer).
    std::uint64_t snapEvery = 0;
    std::function<void(const Cmp &, Cycle)> snapHook;

    // Cycle-cadence sampling hook (telemetry epoch sampler).
    Cycle sampleEvery = 0;
    Cycle sampleNext = 0;
    std::function<void(const Cmp &, Cycle)> sampleHook;

    // Watchdog wiring (heartbeat out, abort in).
    std::atomic<std::uint64_t> *progressPtr = nullptr;
    const std::atomic<bool> *abortPtr = nullptr;
    std::function<void(const Cmp &)> onAbort;

    // Measurement snapshots.
    Cycle snapCycle = 0;
    std::vector<std::uint64_t> snapInstr;
    std::vector<Counter> snapL1Miss;
    std::vector<Counter> snapL2Miss;
    std::vector<Counter> snapLlcMiss;
};

} // namespace rc

#endif // RC_SIM_CMP_HH
