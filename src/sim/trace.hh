/**
 * @file
 * Memory-reference stream interface between workload generators and the
 * CMP timing model.
 */

#ifndef RC_SIM_TRACE_HH
#define RC_SIM_TRACE_HH

#include <cstdint>

#include "common/types.hh"

namespace rc
{

/** One memory reference issued by a core. */
struct MemRef
{
    Addr addr = 0;           //!< byte address (any alignment)
    MemOp op = MemOp::Read;  //!< read or write
    std::uint32_t think = 0; //!< non-memory instructions executed before
                             //!< this reference (1 cycle each)
    bool isInstr = false;    //!< instruction fetch (L1I path, always read)
    Addr pc = 0;             //!< address of the issuing instruction
                             //!< (PC-indexed arena policies; 0 = unknown,
                             //!< e.g. a v1 trace replay)
};

/**
 * Infinite reference stream.  Implementations must be deterministic for
 * a given seed: the simulator replays identical streams across SLLC
 * configurations so speedups compare like with like.
 */
class Serializer;
class Deserializer;

class RefStream
{
  public:
    virtual ~RefStream() = default;

    /** Produce the next reference. */
    virtual MemRef next() = 0;

    /** Short label for reports (e.g. "mcf"). */
    virtual const char *label() const = 0;

    /**
     * Checkpoint the stream cursor.  The default implementations throw
     * SimError(Snapshot): a stream that does not override them cannot
     * be checkpointed, and a run using one fails its checkpoint
     * recoverably rather than silently dropping stream state.
     */
    virtual void save(Serializer &s) const;

    /** Restore a save()'d cursor; default throws SimError(Snapshot). */
    virtual void restore(Deserializer &d);
};

} // namespace rc

#endif // RC_SIM_TRACE_HH
