#include "sim/run_result.hh"

#include "snapshot/serializer.hh"

namespace rc
{

void
saveRunResult(Serializer &s, const RunResult &r)
{
    s.putDouble(r.aggregateIpc);
    s.putU64(r.coreIpc.size());
    for (double v : r.coreIpc)
        s.putDouble(v);
    s.putU64(r.mpki.size());
    for (const MpkiTriple &m : r.mpki) {
        s.putDouble(m.l1);
        s.putDouble(m.l2);
        s.putDouble(m.llc);
    }
    s.putDouble(r.fracNeverEnteredData);
    s.putU64(r.llcAccesses);
    s.putU64(r.llcMemFetches);
    s.putU64(r.dramReads);
}

RunResult
loadRunResult(Deserializer &d)
{
    RunResult r;
    r.aggregateIpc = d.getDouble();
    r.coreIpc.resize(d.getU64());
    for (double &v : r.coreIpc)
        v = d.getDouble();
    r.mpki.resize(d.getU64());
    for (MpkiTriple &m : r.mpki) {
        m.l1 = d.getDouble();
        m.l2 = d.getDouble();
        m.llc = d.getDouble();
    }
    r.fracNeverEnteredData = d.getDouble();
    r.llcAccesses = d.getU64();
    r.llcMemFetches = d.getU64();
    r.dramReads = d.getU64();
    return r;
}

bool
runResultsEqual(const RunResult &a, const RunResult &b)
{
    if (a.aggregateIpc != b.aggregateIpc ||
        a.coreIpc != b.coreIpc ||
        a.fracNeverEnteredData != b.fracNeverEnteredData ||
        a.llcAccesses != b.llcAccesses ||
        a.llcMemFetches != b.llcMemFetches ||
        a.dramReads != b.dramReads ||
        a.mpki.size() != b.mpki.size())
        return false;
    for (std::size_t i = 0; i < a.mpki.size(); ++i) {
        if (a.mpki[i].l1 != b.mpki[i].l1 || a.mpki[i].l2 != b.mpki[i].l2 ||
            a.mpki[i].llc != b.mpki[i].llc)
            return false;
    }
    return true;
}

} // namespace rc
