#include "sim/trace_file.hh"

#include <cstring>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace
{

constexpr char traceMagicPrefix[7] = {'R', 'C', 'T', 'R', 'A', 'C', 'E'};
constexpr std::size_t recordBytesV1 = 12;
constexpr std::size_t recordBytesV2 = 20;

/** Block-buffer capacity: the largest whole-record count under 64 KiB. */
constexpr std::size_t
bufferBytesFor(std::size_t record_bytes)
{
    return (64 * 1024 / record_bytes) * record_bytes;
}

void
encodeV2(const MemRef &ref, unsigned char out[recordBytesV2])
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(ref.addr >> (8 * i));
    for (int i = 0; i < 8; ++i)
        out[8 + i] = static_cast<unsigned char>(ref.pc >> (8 * i));
    RC_ASSERT(ref.think < (1u << 24), "think count exceeds 24 bits");
    out[16] = static_cast<unsigned char>(ref.think);
    out[17] = static_cast<unsigned char>(ref.think >> 8);
    out[18] = static_cast<unsigned char>(ref.think >> 16);
    out[19] = static_cast<unsigned char>(
        (ref.op == MemOp::Write ? 1 : 0) | (ref.isInstr ? 2 : 0));
}

/** Decode one record; @p think_off is 16 for v2 (a PC sits at [8..15])
 *  and 8 for v1 (no PC field, pc = 0). */
MemRef
decode(const unsigned char *in, int think_off)
{
    MemRef ref;
    ref.addr = 0;
    for (int i = 0; i < 8; ++i)
        ref.addr |= static_cast<Addr>(in[i]) << (8 * i);
    if (think_off > 8) { // room for a PC between address and think
        ref.pc = 0;
        for (int i = 0; i < 8; ++i)
            ref.pc |= static_cast<Addr>(in[8 + i]) << (8 * i);
    }
    const unsigned char *t = in + think_off;
    ref.think = t[0] | (std::uint32_t{t[1]} << 8) |
                (std::uint32_t{t[2]} << 16);
    ref.op = (t[3] & 1) ? MemOp::Write : MemOp::Read;
    ref.isInstr = (t[3] & 2) != 0;
    return ref;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file(std::fopen(path.c_str(), "wb"))
{
    if (!file)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    unsigned char header[16] = {};
    std::memcpy(header, traceMagicPrefix, sizeof(traceMagicPrefix));
    header[7] = '2';
    if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header))
        fatal("cannot write trace header to '%s'", path.c_str());
    buf.reserve(bufferBytesFor(recordBytesV2));
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const MemRef &ref)
{
    RC_ASSERT(file, "write on a closed trace");
    unsigned char rec[recordBytesV2];
    encodeV2(ref, rec);
    buf.insert(buf.end(), rec, rec + recordBytesV2);
    if (buf.size() >= bufferBytesFor(recordBytesV2))
        flushBuffer();
    ++written;
}

void
TraceWriter::flushBuffer()
{
    if (buf.empty())
        return;
    if (std::fwrite(buf.data(), 1, buf.size(), file) != buf.size())
        fatal("trace write failed");
    buf.clear();
}

void
TraceWriter::close()
{
    if (file) {
        flushBuffer();
        std::fclose(file);
        file = nullptr;
    }
}

TraceReader::TraceReader(const std::string &path) : name(path)
{
    // A bad trace must not kill a whole sweep: every failure below is a
    // recoverable SimError(Trace) the harness can quarantine per run.
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        throwSimError(SimError::Kind::Trace,
                      "cannot open trace file '%s'", path.c_str());
    unsigned char header[16];
    const std::size_t got = std::fread(header, 1, sizeof(header), file);
    if (got != sizeof(header)) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "'%s' is truncated: %zu header byte(s), expected "
                      "%zu", path.c_str(), got, sizeof(header));
    }
    if (std::memcmp(header, traceMagicPrefix,
                    sizeof(traceMagicPrefix)) != 0) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "'%s' is not a reuse-cache trace file (bad magic)",
                      path.c_str());
    }
    // The version byte selects the record layout; garbage here is as
    // fatal to the replay as a bad magic.
    switch (header[7]) {
      case '1':
        version = 1;
        recBytes = recordBytesV1;
        break;
      case '2':
        version = 2;
        recBytes = recordBytesV2;
        break;
      default:
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "'%s' has unsupported trace version byte 0x%02x "
                      "(expected '1' or '2')", path.c_str(),
                      static_cast<unsigned>(header[7]));
    }
    // Validate the whole-file framing up front: once the byte count is
    // known to be header + N whole records, next() and seekToRecord()
    // reduce to bounds-checked offset arithmetic.
    std::fseek(file, 0, SEEK_END);
    const long fileSize = std::ftell(file);
    const std::size_t body = static_cast<std::size_t>(fileSize) -
                             sizeof(header);
    const std::size_t tail = body % recBytes;
    recordCount = body / recBytes;
    if (tail != 0) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "'%s' ends mid-record: %zu trailing byte(s) after "
                      "%zu full record(s)", path.c_str(), tail,
                      static_cast<std::size_t>(recordCount));
    }
    if (recordCount == 0) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "trace file '%s' contains no records", path.c_str());
    }
    std::fseek(file, sizeof(header), SEEK_SET);
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

void
TraceReader::refill()
{
    const std::size_t cap = bufferBytesFor(recBytes);
    if (rbuf.size() != cap)
        rbuf.resize(cap);
    const std::size_t got = std::fread(rbuf.data(), 1, cap, file);
    // Framing was validated at open, so a refill that yields no whole
    // record means the file shrank or tore underneath the replay.
    if (got < recBytes || got % recBytes != 0)
        throwSimError(SimError::Kind::Trace,
                      "'%s' ends mid-record: short read at record %llu "
                      "(file changed during replay?)", name.c_str(),
                      static_cast<unsigned long long>(pos));
    bufPos = 0;
    bufLen = got;
}

MemRef
TraceReader::next()
{
    if (bufPos == bufLen)
        refill();
    const MemRef ref = decode(rbuf.data() + bufPos,
                              version == 2 ? 16 : 8);
    bufPos += recBytes;
    ++pos;
    if (pos == recordCount) {
        pos = 0;
        ++wrapCount;
        std::fseek(file, 16, SEEK_SET);
        bufPos = bufLen = 0;
    }
    return ref;
}

void
TraceReader::seekToRecord(std::uint64_t n)
{
    pos = n % recordCount;
    wrapCount = n / recordCount;
    bufPos = bufLen = 0;
    if (std::fseek(file, static_cast<long>(16 + pos * recBytes),
                   SEEK_SET) != 0)
        throwSimError(SimError::Kind::Trace,
                      "'%s': cannot seek to record %llu", name.c_str(),
                      static_cast<unsigned long long>(pos));
}

void
TraceReader::save(Serializer &s) const
{
    s.putU64(consumed());
}

void
TraceReader::restore(Deserializer &d)
{
    seekToRecord(d.getU64());
}

void
recordTrace(RefStream &source, std::uint64_t count,
            const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
}

} // namespace rc
