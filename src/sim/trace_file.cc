#include "sim/trace_file.hh"

#include <cstring>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace
{

constexpr char traceMagic[8] = {'R', 'C', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t recordBytes = 12;

/** Block-buffer capacity: the largest whole-record count under 64 KiB. */
constexpr std::size_t bufferBytes = (64 * 1024 / recordBytes) * recordBytes;

void
encode(const MemRef &ref, unsigned char out[recordBytes])
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(ref.addr >> (8 * i));
    RC_ASSERT(ref.think < (1u << 24), "think count exceeds 24 bits");
    out[8] = static_cast<unsigned char>(ref.think);
    out[9] = static_cast<unsigned char>(ref.think >> 8);
    out[10] = static_cast<unsigned char>(ref.think >> 16);
    out[11] = static_cast<unsigned char>(
        (ref.op == MemOp::Write ? 1 : 0) | (ref.isInstr ? 2 : 0));
}

MemRef
decode(const unsigned char in[recordBytes])
{
    MemRef ref;
    ref.addr = 0;
    for (int i = 0; i < 8; ++i)
        ref.addr |= static_cast<Addr>(in[i]) << (8 * i);
    ref.think = in[8] | (std::uint32_t{in[9]} << 8) |
                (std::uint32_t{in[10]} << 16);
    ref.op = (in[11] & 1) ? MemOp::Write : MemOp::Read;
    ref.isInstr = (in[11] & 2) != 0;
    return ref;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file(std::fopen(path.c_str(), "wb"))
{
    if (!file)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    unsigned char header[16] = {};
    std::memcpy(header, traceMagic, sizeof(traceMagic));
    if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header))
        fatal("cannot write trace header to '%s'", path.c_str());
    buf.reserve(bufferBytes);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const MemRef &ref)
{
    RC_ASSERT(file, "write on a closed trace");
    unsigned char rec[recordBytes];
    encode(ref, rec);
    buf.insert(buf.end(), rec, rec + recordBytes);
    if (buf.size() >= bufferBytes)
        flushBuffer();
    ++written;
}

void
TraceWriter::flushBuffer()
{
    if (buf.empty())
        return;
    if (std::fwrite(buf.data(), 1, buf.size(), file) != buf.size())
        fatal("trace write failed");
    buf.clear();
}

void
TraceWriter::close()
{
    if (file) {
        flushBuffer();
        std::fclose(file);
        file = nullptr;
    }
}

TraceReader::TraceReader(const std::string &path) : name(path)
{
    // A bad trace must not kill a whole sweep: every failure below is a
    // recoverable SimError(Trace) the harness can quarantine per run.
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        throwSimError(SimError::Kind::Trace,
                      "cannot open trace file '%s'", path.c_str());
    unsigned char header[16];
    const std::size_t got = std::fread(header, 1, sizeof(header), file);
    if (got != sizeof(header)) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "'%s' is truncated: %zu header byte(s), expected "
                      "%zu", path.c_str(), got, sizeof(header));
    }
    if (std::memcmp(header, traceMagic, sizeof(traceMagic)) != 0) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "'%s' is not a reuse-cache trace file (bad magic)",
                      path.c_str());
    }
    // Validate the whole-file framing up front: once the byte count is
    // known to be header + N whole records, next() and seekToRecord()
    // reduce to bounds-checked offset arithmetic.
    std::fseek(file, 0, SEEK_END);
    const long fileSize = std::ftell(file);
    const std::size_t body = static_cast<std::size_t>(fileSize) -
                             sizeof(header);
    const std::size_t tail = body % recordBytes;
    recordCount = body / recordBytes;
    if (tail != 0) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "'%s' ends mid-record: %zu trailing byte(s) after "
                      "%zu full record(s)", path.c_str(), tail,
                      static_cast<std::size_t>(recordCount));
    }
    if (recordCount == 0) {
        std::fclose(file);
        file = nullptr;
        throwSimError(SimError::Kind::Trace,
                      "trace file '%s' contains no records", path.c_str());
    }
    std::fseek(file, sizeof(header), SEEK_SET);
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

void
TraceReader::refill()
{
    if (rbuf.empty())
        rbuf.resize(bufferBytes);
    const std::size_t got = std::fread(rbuf.data(), 1, bufferBytes, file);
    // Framing was validated at open, so a refill that yields no whole
    // record means the file shrank or tore underneath the replay.
    if (got < recordBytes || got % recordBytes != 0)
        throwSimError(SimError::Kind::Trace,
                      "'%s' ends mid-record: short read at record %llu "
                      "(file changed during replay?)", name.c_str(),
                      static_cast<unsigned long long>(pos));
    bufPos = 0;
    bufLen = got;
}

MemRef
TraceReader::next()
{
    if (bufPos == bufLen)
        refill();
    const MemRef ref = decode(rbuf.data() + bufPos);
    bufPos += recordBytes;
    ++pos;
    if (pos == recordCount) {
        pos = 0;
        ++wrapCount;
        std::fseek(file, 16, SEEK_SET);
        bufPos = bufLen = 0;
    }
    return ref;
}

void
TraceReader::seekToRecord(std::uint64_t n)
{
    pos = n % recordCount;
    wrapCount = n / recordCount;
    bufPos = bufLen = 0;
    if (std::fseek(file, static_cast<long>(16 + pos * recordBytes),
                   SEEK_SET) != 0)
        throwSimError(SimError::Kind::Trace,
                      "'%s': cannot seek to record %llu", name.c_str(),
                      static_cast<unsigned long long>(pos));
}

void
TraceReader::save(Serializer &s) const
{
    s.putU64(consumed());
}

void
TraceReader::restore(Deserializer &d)
{
    seekToRecord(d.getU64());
}

void
recordTrace(RefStream &source, std::uint64_t count,
            const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
}

} // namespace rc
