/**
 * @file
 * Crossbar between the private L2s and the banked SLLC.
 *
 * The baseline SLLC is split into 4 banks interleaved at line
 * granularity (Table 4); each bank has a port that is busy for a couple
 * of cycles per access and a 16-entry MSHR file.  The crossbar adds a
 * fixed link latency each way and serializes accesses contending for the
 * same bank port.
 */

#ifndef RC_SIM_CROSSBAR_HH
#define RC_SIM_CROSSBAR_HH

#include <memory>
#include <vector>

#include "cache/mshr.hh"
#include "sim/system_config.hh"

namespace rc
{

/** Banked-SLLC front end. */
class Crossbar
{
  public:
    explicit Crossbar(const CrossbarConfig &cfg);

    /** Bank servicing @p line_addr. */
    std::uint32_t bankOf(Addr line_addr) const;

    /**
     * Reserve a service slot at the owning bank for a request issued by
     * a private L2 at cycle @p issue.
     * @return cycle at which the bank starts servicing the request
     *         (includes the request-path link latency, port contention
     *         and MSHR back-pressure).
     */
    Cycle requestSlot(Addr line_addr, Cycle issue);

    /**
     * Record a miss in the owning bank's MSHR file so later requests see
     * its occupancy.  Call after the SLLC reports the completion time.
     */
    void noteMiss(Addr line_addr, Cycle start, Cycle done_at);

    /** Response-path link latency back to the core. */
    Cycle responseLatency() const { return cfg.linkLatency; }

    /** Per-bank MSHR files (stats). */
    const std::vector<std::unique_ptr<MshrFile>> &mshrs() const
    {
        return mshrFiles;
    }

    /** Checkpoint bank busy windows and MSHR files. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    CrossbarConfig cfg;
    std::vector<Cycle> bankBusyUntil;
    std::vector<std::unique_ptr<MshrFile>> mshrFiles;
};

} // namespace rc

#endif // RC_SIM_CROSSBAR_HH
