#include "sim/feed_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits.h>
#include <type_traits>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/filelock.hh"
#include "common/log.hh"
#include "sim/fanout.hh"
#include "snapshot/serializer.hh"

namespace rc
{

static_assert(std::is_trivially_copyable_v<StepRecord>,
              "StepRecords are stored and mapped as raw bytes");

namespace
{

constexpr char kMagic[8] = {'R', 'C', 'F', 'E', 'E', 'D', '1', '\0'};
constexpr std::uint32_t kFeedVersion = 1;
//! Fixed header: magic, version, record size, file size, arrays
//! off/len/hash, meta off/len, endian tag, CRC32 of the preceding 68.
constexpr std::uint64_t kHeaderBytes = 72;
//! Arrays start here (first 64-byte boundary past the header) and every
//! per-core array is re-aligned to 64 so mapped loads never straddle.
constexpr std::uint64_t kArraysAlign = 64;
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr const char *kIndexName = "feed.index";
constexpr const char *kIndexHeader = "# rc feed cache index v1\n";

// Fixed header field offsets (bytes).
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffRecordBytes = 12;
constexpr std::size_t kOffFileBytes = 16;
constexpr std::size_t kOffArraysOff = 24;
constexpr std::size_t kOffArraysBytes = 32;
constexpr std::size_t kOffArraysHash = 40;
constexpr std::size_t kOffMetaOff = 48;
constexpr std::size_t kOffMetaBytes = 56;
constexpr std::size_t kOffEndianTag = 64;
constexpr std::size_t kOffHeaderCrc = 68;

std::uint64_t
align64(std::uint64_t v)
{
    return (v + (kArraysAlign - 1)) & ~(kArraysAlign - 1);
}

void
st32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

void
st64(std::uint8_t *p, std::uint64_t v)
{
    st32(p, static_cast<std::uint32_t>(v));
    st32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
ld32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
ld64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(ld32(p)) |
           static_cast<std::uint64_t>(ld32(p + 4)) << 32;
}

/** Streaming form of feedHash64; every update must be word-granular
 *  (the blob layout only ever produces multiple-of-8 spans). */
struct FeedHasher
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    std::uint64_t total = 0;

    void words(const void *data, std::size_t len)
    {
        RC_ASSERT((len & 7) == 0, "feed hash spans must be word-granular");
        const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
        std::uint64_t acc = h;
        for (std::size_t i = 0; i < len; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, p + i, 8);
            acc ^= w;
            acc *= 0xff51afd7ed558ccdull;
            acc ^= acc >> 33;
        }
        h = acc;
        total += len;
    }

    std::uint64_t done() const
    {
        std::uint64_t x = h ^ (total * 0x100000001b3ull);
        x *= 0xc4ceb9fe1a85ec53ull;
        x ^= x >> 29;
        return x;
    }
};

std::uint64_t
fnv1aBytes(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Parse the 16-hex digest out of "feed-<digest>.bin" (false on
 *  anything else, including .lock and .tmp siblings). */
bool
digestFromBlobName(const std::string &name, std::uint64_t &digest)
{
    if (name.size() != 4 + 1 + 16 + 4 || name.rfind("feed-", 0) != 0 ||
        name.substr(name.size() - 4) != ".bin")
        return false;
    char *end = nullptr;
    const std::string hex = name.substr(5, 16);
    digest = std::strtoull(hex.c_str(), &end, 16);
    return end != nullptr && *end == '\0';
}

void
fwriteAll(std::FILE *f, const void *data, std::size_t len,
          const char *path)
{
    if (len != 0 && std::fwrite(data, 1, len, f) != len)
        throwSimError(SimError::Kind::Io,
                      "short write to feed blob '%s': %s", path,
                      std::strerror(errno));
}

} // namespace

void
putFrontEndConfig(Serializer &s, const SystemConfig &c)
{
    s.putU32(c.numCores);
    s.putU64(c.priv.l1Bytes);
    s.putU32(c.priv.l1Ways);
    s.putU64(c.priv.l1Latency);
    s.putU64(c.priv.l2Bytes);
    s.putU32(c.priv.l2Ways);
    s.putU64(c.priv.l2Latency);
    s.putBool(c.prefetch.enable);
    s.putU32(c.prefetch.degree);
    s.putU32(c.prefetch.tableEntries);
    s.putU32(c.prefetch.regionShift);
    s.putU32(c.prefetch.minConfidence);
}

FeedKey
feedKeyOf(const SystemConfig &cfg, const Mix &mix, std::uint64_t seed,
          std::uint32_t scale, std::uint64_t warmup,
          std::uint64_t measure)
{
    Serializer s;
    s.beginSection("feedkey");
    s.beginSection("front");
    putFrontEndConfig(s, cfg);
    s.putU64(cfg.seed);
    s.putU32(cfg.capacityScale);
    s.endSection("front");
    s.beginSection("mix");
    s.putU64(mix.apps.size());
    for (const std::string &app : mix.apps)
        s.putString(app);
    s.endSection("mix");
    s.beginSection("opt");
    s.putU64(seed);
    s.putU32(scale);
    s.putU64(warmup);
    s.putU64(measure);
    s.endSection("opt");
    s.endSection("feedkey");
    // The canonical form is the section-framed payload alone, shorn of
    // the snapshot container header and trailing CRC (the same
    // convention as the service's canonicalBytes()).
    const std::vector<std::uint8_t> img = s.image();
    FeedKey key;
    key.bytes.assign(img.begin() + 12, img.end() - 4);
    key.digest = fnv1aBytes(key.bytes);
    return key;
}

std::string
feedDigestHex(std::uint64_t digest)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

std::uint64_t
feedHash64(const void *data, std::size_t len)
{
    FeedHasher h;
    const std::size_t whole = len & ~static_cast<std::size_t>(7);
    h.words(data, whole);
    if (len & 7) {
        // Zero-pad a trailing partial word (never produced by the blob
        // writer, but keeps the function total for arbitrary input).
        std::uint64_t w = 0;
        std::memcpy(&w, static_cast<const std::uint8_t *>(data) + whole,
                    len & 7);
        h.words(&w, 8);
    }
    return h.done();
}

// --------------------------------------------------------------------
// FeedBlob

FeedBlob::~FeedBlob()
{
    if (base)
        ::munmap(const_cast<std::uint8_t *>(base), mapLen);
}

std::shared_ptr<const FeedBlob>
FeedBlob::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot open feed blob '%s': %s", path.c_str(),
                      std::strerror(errno));
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        throwSimError(SimError::Kind::Snapshot,
                      "cannot stat feed blob '%s': %s", path.c_str(),
                      std::strerror(err));
    }
    const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
    if (size < kHeaderBytes) {
        ::close(fd);
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' is shorter than its header",
                      path.c_str());
    }
    void *m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    const int maperr = errno;
    ::close(fd);
    if (m == MAP_FAILED)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot map feed blob '%s': %s", path.c_str(),
                      std::strerror(maperr));

    // From here the shared_ptr owns the mapping: any validation throw
    // below unwinds through ~FeedBlob and unmaps.
    std::shared_ptr<FeedBlob> blob(new FeedBlob());
    blob->origin = path;
    blob->base = static_cast<const std::uint8_t *>(m);
    blob->mapLen = static_cast<std::size_t>(size);
    const std::uint8_t *h = blob->base;

    if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0)
        throwSimError(SimError::Kind::Snapshot,
                      "'%s' is not an RCFEED1 feed blob", path.c_str());
    if (ld32(h + kOffHeaderCrc) != crc32(h, kOffHeaderCrc))
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' fails its header CRC",
                      path.c_str());
    const std::uint32_t version = ld32(h + kOffVersion);
    if (version != kFeedVersion)
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' carries format version %u, "
                      "expected %u",
                      path.c_str(), version, kFeedVersion);
    if (ld32(h + kOffRecordBytes) != sizeof(StepRecord))
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' was written with %u-byte records, "
                      "this build uses %zu",
                      path.c_str(), ld32(h + kOffRecordBytes),
                      sizeof(StepRecord));
    if (ld32(h + kOffEndianTag) != kEndianTag)
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' has foreign endianness",
                      path.c_str());
    if (ld64(h + kOffFileBytes) != size)
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' is %llu bytes, header claims %llu",
                      path.c_str(),
                      static_cast<unsigned long long>(size),
                      static_cast<unsigned long long>(
                          ld64(h + kOffFileBytes)));
    const std::uint64_t arraysOff = ld64(h + kOffArraysOff);
    const std::uint64_t arraysBytes = ld64(h + kOffArraysBytes);
    const std::uint64_t metaOff = ld64(h + kOffMetaOff);
    const std::uint64_t metaBytes = ld64(h + kOffMetaBytes);
    if (arraysOff < kHeaderBytes || arraysOff + arraysBytes > size ||
        arraysOff + arraysBytes < arraysOff || metaOff < arraysOff ||
        metaOff + metaBytes > size || metaOff + metaBytes < metaOff)
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' declares out-of-bounds regions",
                      path.c_str());
    if (feedHash64(h + arraysOff, arraysBytes) != ld64(h + kOffArraysHash))
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' fails its arrays-region hash",
                      path.c_str());

    // The meta region is a complete snapshot container with its own
    // CRC; the Deserializer constructor validates it up front.
    Deserializer d(std::vector<std::uint8_t>(h + metaOff,
                                             h + metaOff + metaBytes));
    d.beginSection("feedmeta");
    blob->keyDigest = d.getU64();
    {
        const std::string key = d.getString();
        blob->key.assign(key.begin(), key.end());
    }
    const std::uint32_t cores = d.getU32();
    if (cores == 0 || cores > 1024)
        throwSimError(SimError::Kind::Snapshot,
                      "feed blob '%s' claims %u cores", path.c_str(),
                      cores);
    blob->cores.resize(cores);
    const auto arrayAt = [&](std::uint64_t off, std::uint64_t bytes,
                             const char *what) -> const std::uint8_t * {
        if (off < arraysOff || off + bytes > arraysOff + arraysBytes ||
            off + bytes < off || (off & 7) != 0)
            throwSimError(SimError::Kind::Snapshot,
                          "feed blob '%s': %s array out of bounds",
                          path.c_str(), what);
        return h + off;
    };
    for (std::uint32_t c = 0; c < cores; ++c) {
        CoreView &view = blob->cores[c];
        d.beginSection("core");
        view.label = d.getString();
        view.count = d.getU64();
        view.llcCount = d.getU64();
        const std::uint64_t recOff = d.getU64();
        const std::uint64_t aOff = d.getU64();
        const std::uint64_t iOff = d.getU64();
        const std::uint64_t llcOff = d.getU64();
        if (view.llcCount > view.count)
            throwSimError(SimError::Kind::Snapshot,
                          "feed blob '%s': core %u has more LLC-bound "
                          "records than records",
                          path.c_str(), c);
        view.recs = reinterpret_cast<const StepRecord *>(
            arrayAt(recOff, view.count * sizeof(StepRecord), "record"));
        view.cumA = reinterpret_cast<const std::uint64_t *>(
            arrayAt(aOff, view.count * 8, "cumA"));
        view.cumI = reinterpret_cast<const std::uint64_t *>(
            arrayAt(iOff, view.count * 8, "cumI"));
        view.llc = reinterpret_cast<const std::uint64_t *>(
            arrayAt(llcOff, view.llcCount * 8, "llc index"));
        const auto loadSnaps = [&](std::vector<Snap> &out) {
            const std::uint64_t n = d.getU64();
            if (n > (view.count / 64) + 16)
                throwSimError(SimError::Kind::Snapshot,
                              "feed blob '%s': implausible snapshot "
                              "count %llu",
                              path.c_str(),
                              static_cast<unsigned long long>(n));
            out.resize(static_cast<std::size_t>(n));
            for (Snap &snap : out) {
                snap.idx = d.getU64();
                const std::string image = d.getString();
                snap.image.assign(image.begin(), image.end());
            }
        };
        loadSnaps(view.streamSnaps);
        loadSnaps(view.hierSnaps);
        d.endSection("core");
    }
    d.endSection("feedmeta");
    return blob;
}

// --------------------------------------------------------------------
// FeedCache

FeedCache::FeedCache(const std::string &dir) : dir(dir)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        throwSimError(SimError::Kind::Io,
                      "cannot create feed cache directory '%s': %s",
                      dir.c_str(), std::strerror(errno));
    recover();
}

std::shared_ptr<FeedCache>
FeedCache::open(const std::string &dir)
{
    // One instance per canonical directory for the whole process, so
    // the harness, benches and daemon stats all observe one counter
    // set (and share blob mappings) no matter who opened it first.
    static std::mutex regMu;
    static std::unordered_map<std::string, std::shared_ptr<FeedCache>>
        registry;
    std::lock_guard<std::mutex> lock(regMu);
    char buf[PATH_MAX];
    if (::realpath(dir.c_str(), buf)) {
        const auto it = registry.find(buf);
        if (it != registry.end())
            return it->second;
    }
    auto cache = std::make_shared<FeedCache>(dir); // creates the dir
    std::string canon = dir;
    if (::realpath(dir.c_str(), buf))
        canon = buf;
    const auto it = registry.find(canon);
    if (it != registry.end())
        return it->second;
    registry.emplace(canon, cache);
    return cache;
}

std::string
FeedCache::blobPath(std::uint64_t digest) const
{
    return dir + "/feed-" + feedDigestHex(digest) + ".bin";
}

void
FeedCache::recover()
{
    // Same discipline as the result cache: blobs are the source of
    // truth, unindexed blobs are adopted, stale tmps of a killed writer
    // are swept, and the index is rewritten compacted.  Lock files are
    // left alone — a live process may hold them, and replacing a held
    // lock file's inode would split the mutual exclusion.
    std::unordered_set<std::uint64_t> indexed;
    {
        std::FILE *f = std::fopen((dir + "/" + kIndexName).c_str(), "rb");
        if (f) {
            char line[128];
            while (std::fgets(line, sizeof(line), f)) {
                unsigned long long digest = 0;
                if (std::sscanf(line, "entry digest=%llx", &digest) == 1)
                    indexed.insert(digest);
            }
            std::fclose(f);
        }
    }

    DIR *d = ::opendir(dir.c_str());
    if (!d)
        throwSimError(SimError::Kind::Io,
                      "cannot scan feed cache directory '%s': %s",
                      dir.c_str(), std::strerror(errno));
    std::vector<std::string> staleTmp;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
            staleTmp.push_back(dir + "/" + name);
            continue;
        }
        std::uint64_t digest = 0;
        if (!digestFromBlobName(name, digest))
            continue;
        known.insert(digest);
        if (!indexed.count(digest))
            ++counters.recovered;
    }
    ::closedir(d);
    for (const std::string &tmp : staleTmp)
        ::unlink(tmp.c_str());
    persistIndex();
}

std::shared_ptr<const FeedBlob>
FeedCache::lookup(const FeedKey &key)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!known.count(key.digest)) {
            ++counters.misses;
            return nullptr;
        }
        const auto it = resident.find(key.digest);
        if (it != resident.end()) {
            if (std::shared_ptr<const FeedBlob> blob = it->second.lock()) {
                if (blob->keyBytes() == key.bytes) {
                    ++counters.hits;
                    return blob;
                }
                // Digest collision against a valid resident blob.
                ++counters.misses;
                return nullptr;
            }
            resident.erase(it);
        }
    }
    const std::string path = blobPath(key.digest);
    std::shared_ptr<const FeedBlob> blob;
    try {
        blob = FeedBlob::open(path);
        if (blob->digest() != key.digest)
            throwSimError(SimError::Kind::Snapshot,
                          "feed blob '%s' carries a foreign digest",
                          path.c_str());
    } catch (const SimError &) {
        // Torn, truncated, bit-flipped or stale-format blob: drop it
        // and let the caller recompute.  Never a wrong stream.
        ::unlink(path.c_str());
        std::lock_guard<std::mutex> lock(mu);
        known.erase(key.digest);
        resident.erase(key.digest);
        ++counters.corruptDropped;
        ++counters.misses;
        return nullptr;
    }
    if (blob->keyBytes() != key.bytes) {
        // A digest collision, not corruption: the blob is some other
        // key's valid entry.  Miss without unlinking it.
        std::lock_guard<std::mutex> lock(mu);
        ++counters.misses;
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(mu);
    resident[key.digest] = blob;
    ++counters.hits;
    return blob;
}

FeedKeyLease::~FeedKeyLease()
{
    if (fd >= 0) {
        ::flock(fd, LOCK_UN);
        ::close(fd);
    }
}

std::unique_ptr<FeedKeyLease>
FeedCache::lockKey(std::uint64_t digest)
{
    const std::string path = blobPath(digest) + ".lock";
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0666);
    if (fd < 0) {
        warn("feed cache: cannot open key lock '%s': %s", path.c_str(),
             std::strerror(errno));
        return nullptr;
    }
    int rc;
    do {
        rc = ::flock(fd, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        ::close(fd);
        warn("feed cache: cannot lock key '%s': %s", path.c_str(),
             std::strerror(errno));
        return nullptr;
    }
    auto lease = std::unique_ptr<FeedKeyLease>(new FeedKeyLease());
    lease->fd = fd;
    return lease;
}

void
FeedCache::store(const FeedKey &key, const FanoutFeed &feed)
{
    RC_ASSERT(feed.capturing(),
              "feed-cache store needs a capture-mode feed");
    const std::string path = blobPath(key.digest);
    const std::string tmp =
        path + "." + std::to_string(::getpid()) + ".tmp";

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("feed cache: cannot persist %s: %s",
             feedDigestHex(key.digest).c_str(), std::strerror(errno));
        return;
    }
    bool ok = false;
    try {
        const std::uint32_t cores = feed.numCores();
        const std::uint64_t arraysOff = align64(kHeaderBytes);

        // Lay the arrays region out up front so the meta section can
        // carry absolute offsets.
        struct CoreLayout
        {
            std::uint64_t count = 0, llcCount = 0;
            std::uint64_t recOff = 0, aOff = 0, iOff = 0, llcOff = 0;
        };
        std::vector<CoreLayout> lay(cores);
        std::uint64_t off = arraysOff;
        for (std::uint32_t c = 0; c < cores; ++c) {
            const FanoutFeed::PerCore &pc = feed.per[c];
            RC_ASSERT(pc.base == 0,
                      "capture-mode feed was trimmed; cannot store");
            CoreLayout &l = lay[c];
            l.count = pc.generated;
            l.llcCount = pc.llcIdx.size();
            l.recOff = align64(off);
            off = l.recOff + l.count * sizeof(StepRecord);
            l.aOff = align64(off);
            off = l.aOff + l.count * 8;
            l.iOff = align64(off);
            off = l.iOff + l.count * 8;
            l.llcOff = align64(off);
            off = l.llcOff + l.llcCount * 8;
        }
        const std::uint64_t arraysBytes = off - arraysOff;
        const std::uint64_t metaOff = off;

        // Meta region: a complete snapshot container of its own.
        Serializer meta;
        meta.beginSection("feedmeta");
        meta.putU64(key.digest);
        meta.putString(
            std::string(key.bytes.begin(), key.bytes.end()));
        meta.putU32(cores);
        for (std::uint32_t c = 0; c < cores; ++c) {
            const FanoutFeed::PerCore &pc = feed.per[c];
            const CoreLayout &l = lay[c];
            meta.beginSection("core");
            meta.putString(feed.labels[c]);
            meta.putU64(l.count);
            meta.putU64(l.llcCount);
            meta.putU64(l.recOff);
            meta.putU64(l.aOff);
            meta.putU64(l.iOff);
            meta.putU64(l.llcOff);
            meta.putU64(pc.snaps.size());
            for (const FanoutFeed::StreamSnap &snap : pc.snaps) {
                meta.putU64(snap.idx);
                meta.putString(std::string(snap.image.begin(),
                                           snap.image.end()));
            }
            meta.putU64(pc.hsnaps.size());
            for (const FanoutFeed::HierSnap &snap : pc.hsnaps) {
                meta.putU64(snap.idx);
                meta.putString(std::string(snap.image.begin(),
                                           snap.image.end()));
            }
            meta.endSection("core");
        }
        meta.endSection("feedmeta");
        const std::vector<std::uint8_t> metaImg = meta.image();

        // Placeholder header + padding, then the arrays (hashed as
        // written, padding included), then meta; the sealed header is
        // patched in last.
        static const std::uint8_t zeros[kArraysAlign] = {};
        fwriteAll(f, zeros, kHeaderBytes, tmp.c_str());
        fwriteAll(f, zeros, arraysOff - kHeaderBytes, tmp.c_str());
        FeedHasher hash;
        std::uint64_t pos = arraysOff;
        const auto pad = [&](std::uint64_t to) {
            RC_ASSERT(to >= pos && to - pos < kArraysAlign,
                      "feed blob layout drifted while writing");
            fwriteAll(f, zeros, to - pos, tmp.c_str());
            hash.words(zeros, to - pos);
            pos = to;
        };
        const auto emit = [&](const void *data, std::uint64_t bytes) {
            fwriteAll(f, data, bytes, tmp.c_str());
            hash.words(data, bytes);
            pos += bytes;
        };
        for (std::uint32_t c = 0; c < cores; ++c) {
            const FanoutFeed::PerCore &pc = feed.per[c];
            const CoreLayout &l = lay[c];
            pad(l.recOff);
            // Capture mode never trims, so the ring's power-of-2 slot
            // mapping is the identity over [0, generated) and the ring
            // IS the flat record array.
            emit(pc.ring.data(), l.count * sizeof(StepRecord));
            pad(l.aOff);
            emit(pc.cumA.data(), l.count * 8);
            pad(l.iOff);
            emit(pc.cumI.data(), l.count * 8);
            pad(l.llcOff);
            const std::vector<std::uint64_t> llc(pc.llcIdx.begin(),
                                                 pc.llcIdx.end());
            emit(llc.data(), l.llcCount * 8);
        }
        RC_ASSERT(pos == metaOff, "feed blob arrays region drifted");
        fwriteAll(f, metaImg.data(), metaImg.size(), tmp.c_str());

        std::uint8_t hdr[kHeaderBytes];
        std::memcpy(hdr, kMagic, sizeof(kMagic));
        st32(hdr + kOffVersion, kFeedVersion);
        st32(hdr + kOffRecordBytes, sizeof(StepRecord));
        st64(hdr + kOffFileBytes, metaOff + metaImg.size());
        st64(hdr + kOffArraysOff, arraysOff);
        st64(hdr + kOffArraysBytes, arraysBytes);
        st64(hdr + kOffArraysHash, hash.done());
        st64(hdr + kOffMetaOff, metaOff);
        st64(hdr + kOffMetaBytes, metaImg.size());
        st32(hdr + kOffEndianTag, kEndianTag);
        st32(hdr + kOffHeaderCrc, crc32(hdr, kOffHeaderCrc));
        if (std::fseek(f, 0, SEEK_SET) != 0)
            throwSimError(SimError::Kind::Io,
                          "cannot rewind feed blob '%s'", tmp.c_str());
        fwriteAll(f, hdr, kHeaderBytes, tmp.c_str());
        if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0)
            throwSimError(SimError::Kind::Io,
                          "cannot flush feed blob '%s': %s", tmp.c_str(),
                          std::strerror(errno));
        ok = true;
    } catch (const SimError &err) {
        // Failing to persist costs a future front-end recompute,
        // nothing else.
        warn("feed cache: cannot persist %s: %s",
             feedDigestHex(key.digest).c_str(), err.what());
    }
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        if (ok)
            warn("feed cache: cannot land blob '%s': %s", path.c_str(),
                 std::strerror(errno));
        return;
    }
    appendIndex(key.digest);
    std::lock_guard<std::mutex> lock(mu);
    known.insert(key.digest);
    ++counters.stores;
}

void
FeedCache::appendIndex(std::uint64_t digest)
{
    const std::string path = dir + "/" + kIndexName;
    const bool fresh = ::access(path.c_str(), F_OK) != 0;
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f) {
        warn("feed cache: cannot open index '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    char line[64];
    std::snprintf(line, sizeof(line), "entry digest=%s\n",
                  feedDigestHex(digest).c_str());
    try {
        // flock orders this append against other processes sharing the
        // directory; recovery tolerates a torn tail anyway, but
        // well-formed records make post-mortems readable.
        ScopedFileLock flock(::fileno(f));
        if (fresh)
            std::fputs(kIndexHeader, f);
        std::fputs(line, f);
        std::fflush(f);
        ::fsync(::fileno(f));
    } catch (const SimError &err) {
        warn("feed cache: index append skipped: %s", err.what());
    }
    std::fclose(f);
}

void
FeedCache::persistIndex()
{
    std::unordered_set<std::uint64_t> snapshot;
    {
        std::lock_guard<std::mutex> lock(mu);
        snapshot = known;
    }
    const std::string path = dir + "/" + kIndexName;
    // pid-unique tmp (same convention as blob tmps, so recovery sweeps
    // it): two processes compacting at once must not clobber each
    // other's staging file — either rename landing is correct.
    const std::string tmp =
        path + "." + std::to_string(::getpid()) + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("feed cache: cannot rewrite index '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    std::fputs(kIndexHeader, f);
    for (const std::uint64_t digest : snapshot)
        std::fprintf(f, "entry digest=%s\n",
                     feedDigestHex(digest).c_str());
    const bool ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        warn("feed cache: cannot land the compacted index '%s'",
             path.c_str());
    }
}

std::size_t
FeedCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return known.size();
}

FeedCacheStats
FeedCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

// --------------------------------------------------------------------
// Layout-aware blob corruption (fault injection)

void
feedTruncateBlob(const std::string &path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0)
        throwSimError(SimError::Kind::Io,
                      "cannot stat feed blob '%s': %s", path.c_str(),
                      std::strerror(errno));
    // Cut mid-arrays: past the header (so the failure exercises the
    // region bounds check, not the trivial short-file path) but well
    // short of the meta region.
    const off_t keep =
        std::max<off_t>(static_cast<off_t>(kHeaderBytes) + 8,
                        st.st_size / 2);
    if (::truncate(path.c_str(), keep) != 0)
        throwSimError(SimError::Kind::Io,
                      "cannot truncate feed blob '%s': %s", path.c_str(),
                      std::strerror(errno));
}

void
feedFlipBlobByte(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        throwSimError(SimError::Kind::Io,
                      "cannot open feed blob '%s': %s", path.c_str(),
                      std::strerror(errno));
    std::uint8_t hdr[kHeaderBytes];
    if (std::fread(hdr, 1, kHeaderBytes, f) != kHeaderBytes) {
        std::fclose(f);
        throwSimError(SimError::Kind::Io,
                      "cannot read feed blob header '%s'", path.c_str());
    }
    const std::uint64_t arraysOff = ld64(hdr + kOffArraysOff);
    const std::uint64_t arraysBytes = ld64(hdr + kOffArraysBytes);
    const long target =
        static_cast<long>(arraysOff + arraysBytes / 2);
    std::uint8_t b = 0;
    const bool ok = std::fseek(f, target, SEEK_SET) == 0 &&
                    std::fread(&b, 1, 1, f) == 1 &&
                    std::fseek(f, target, SEEK_SET) == 0 &&
                    (b ^= 0x40, std::fwrite(&b, 1, 1, f) == 1) &&
                    std::fflush(f) == 0;
    std::fclose(f);
    if (!ok)
        throwSimError(SimError::Kind::Io,
                      "cannot flip a payload byte in '%s'", path.c_str());
}

void
feedStaleVersionBlob(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        throwSimError(SimError::Kind::Io,
                      "cannot open feed blob '%s': %s", path.c_str(),
                      std::strerror(errno));
    std::uint8_t hdr[kHeaderBytes];
    if (std::fread(hdr, 1, kHeaderBytes, f) != kHeaderBytes) {
        std::fclose(f);
        throwSimError(SimError::Kind::Io,
                      "cannot read feed blob header '%s'", path.c_str());
    }
    // Bump the version word and RE-SEAL the header CRC, so the reader's
    // rejection can only come from the version check itself — the
    // stale-format path, not the corruption path.
    st32(hdr + kOffVersion, kFeedVersion + 1);
    st32(hdr + kOffHeaderCrc, crc32(hdr, kOffHeaderCrc));
    const bool ok = std::fseek(f, 0, SEEK_SET) == 0 &&
                    std::fwrite(hdr, 1, kHeaderBytes, f) ==
                        kHeaderBytes &&
                    std::fflush(f) == 0;
    std::fclose(f);
    if (!ok)
        throwSimError(SimError::Kind::Io,
                      "cannot rewrite feed blob header '%s'",
                      path.c_str());
}

} // namespace rc
