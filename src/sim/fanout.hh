/**
 * @file
 * Single-pass multi-config simulation: one front end generates the
 * private-hierarchy reference outcome stream once, and N complete
 * SLLC+DRAM back ends consume it in lockstep.
 *
 * The front end (FanoutFeed) owns one set of reference streams and one
 * "virgin" private hierarchy per core — virgin because it completes
 * every L2 miss immediately and is never recalled, having no SLLC
 * behind it.  Each reference becomes a StepRecord pinning the outcome
 * kind and the exact ways touched.  Every member Cmp keeps its own
 * private-hierarchy replicas, SLLC, DRAM, crossbar and stats; a member
 * replays records while the sets a record touches are bit-identical to
 * the virgin hierarchy's, and falls back to the ordinary classify path
 * (marking the disturbed sets diverged) once its own SLLC's recalls or
 * downgrades have made them differ.  Replay and fallback produce
 * bit-identical state and stats either way — the record path merely
 * skips the tag scans and LRU victim searches the front end already
 * performed.
 *
 * On top of replay sits the express lane: while a member core has no
 * diverged sets, private hits cannot affect anything outside the core,
 * so only LLC-bound records interact with shared state.  The feed keeps
 * per-record prefix sums of private-side cycle cost and retirement
 * count plus per-chunk images of the virgin hierarchy, letting a member
 * jump straight from one LLC-bound record to the next in O(1) — private
 * state is left stale and materialized (nearest virgin image + record
 * replay) only when a recall/downgrade lands, divergence begins, or the
 * run() commits.  Because the canonical scheduler order among LLC-bound
 * steps is preserved exactly, express members stay bit-identical to
 * independent runs.
 *
 * FanoutCmp drives its members in bounded cycle quanta so the shared
 * record window stays small, and commits each member's horizon only at
 * the end of a run() call so mid-run hooks observe exactly what an
 * unsliced run() would show.
 */

#ifndef RC_SIM_FANOUT_HH
#define RC_SIM_FANOUT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/private_cache.hh"
#include "common/log.hh"
#include "sim/cmp.hh"
#include "sim/feed_cache.hh"
#include "sim/system_config.hh"
#include "sim/trace.hh"

namespace rc
{

/** Builds the per-core reference streams for one mix (used once live,
 *  and again when a checkpoint needs a stream image reconstructed). */
using StreamFactory =
    std::function<std::vector<std::unique_ptr<RefStream>>()>;

/**
 * The shared fan-out front end: streams + virgin private hierarchies,
 * producing per-core StepRecord sequences on demand.
 *
 * Records are generated lazily in chunks as members consume them and
 * trimmed once every member is past them, so the live window is bounded
 * by the members' lockstep quantum.  At each chunk boundary the feed
 * snapshots the underlying stream state; ReplayStream::save() rebuilds
 * a bit-exact stream image for any record index from the nearest
 * snapshot, keeping member checkpoints byte-identical to independent
 * runs'.
 */
class FanoutFeed
{
  public:
    /**
     * @param priv private-hierarchy sizing shared by every member.
     * @param factory stream builder; invoked once immediately (unless
     *        replaying from @p blob), and again per checkpointed stream
     *        image.
     * @param blob a validated feed-cache blob to replay from: records,
     *        prefix sums, the LLC-bound index and all chunk-boundary
     *        snapshots come zero-copy out of the mapping, and no
     *        stream or virgin-hierarchy simulation happens unless a
     *        member consumes past the blob's horizon (goLive()).
     * @param capture retain every record, prefix sum and snapshot for
     *        a later FeedCache::store() instead of trimming; mutually
     *        exclusive with @p blob.
     */
    FanoutFeed(const PrivateConfig &priv, StreamFactory factory,
               std::shared_ptr<const FeedBlob> blob = nullptr,
               bool capture = false);

    ~FanoutFeed();

    /** Record @p idx of @p core, generating on demand. */
    const StepRecord &record(CoreId core, std::uint64_t idx)
    {
        PerCore &pc = per[core];
        if (idx < pc.flatCount)
            return pc.flat[idx];
        if (idx >= pc.generated)
            extend(core, idx);
        return pc.ring[idx & (pc.ring.size() - 1)];
    }

    /**
     * Express-lane prefix sums (see Cmp's express mode): every record
     * has a fixed private-side cycle cost `a = think + latency(kind)`
     * (for LLC-bound records, up to the SLLC issue point) and a fixed
     * retirement count `i = think + (isInstr ? 0 : 1)`; cumAIncl/
     * cumIIncl return the running totals through record @p idx.  A
     * member that knows its canonical ready time and cumulative totals
     * at one record index can therefore jump to any later index in
     * O(1), provided no LLC-bound record (whose completion time depends
     * on the member's own SLLC) lies in between.
     */
    std::uint64_t cumAIncl(CoreId core, std::uint64_t idx) const
    {
        const PerCore &pc = per[core];
        if (idx < pc.flatCount)
            return pc.flatA[idx];
        RC_ASSERT(idx >= pc.base && idx < pc.generated,
                  "cumAIncl(%llu) outside live window [%llu, %llu)",
                  static_cast<unsigned long long>(idx),
                  static_cast<unsigned long long>(pc.base),
                  static_cast<unsigned long long>(pc.generated));
        return pc.cumA[idx & (pc.ring.size() - 1)];
    }

    /** Running retirement total through record @p idx (see cumAIncl). */
    std::uint64_t cumIIncl(CoreId core, std::uint64_t idx) const
    {
        const PerCore &pc = per[core];
        if (idx < pc.flatCount)
            return pc.flatI[idx];
        RC_ASSERT(idx >= pc.base && idx < pc.generated,
                  "cumIIncl(%llu) outside live window",
                  static_cast<unsigned long long>(idx));
        return pc.cumI[idx & (pc.ring.size() - 1)];
    }

    /** Next LLC-bound record of @p core at or after @p cursor, if its
     *  canonical pre-step ready time lands before @p end. */
    struct NextEvent
    {
        bool hasEvent = false;
        std::uint64_t idx = 0;  //!< record index of the LLC-bound step
        Cycle preReady = 0;     //!< core ready time just before it
    };

    /**
     * Find the next LLC-bound record for a core whose canonical state
     * is (@p cursor, @p base_ready) with cumulative cost @p base_cum_a
     * through record cursor-1 (0 when cursor is 0).  Generates records
     * as needed, but never past the point where the core's ready time
     * provably reaches @p end.
     */
    NextEvent nextLlcBounded(CoreId core, std::uint64_t cursor,
                             std::uint64_t base_cum_a, Cycle base_ready,
                             Cycle end);

    /** First record index >= @p cursor whose pre-step ready time
     *  reaches @p end (the canonical cursor at a quantum boundary). */
    std::uint64_t cursorAtCycle(CoreId core, std::uint64_t cursor,
                                std::uint64_t base_cum_a,
                                Cycle base_ready, Cycle end);

    /**
     * First record index >= @p cursor scheduled after another core's
     * step at ready time @p key_ready: with @p strict set the boundary
     * is preReady > key_ready (this core wins ready-time ties), without
     * it preReady >= key_ready (the other core wins ties).  Used to pin
     * the canonical position of an express core when a recall from a
     * concurrent step must observe its private state.
     */
    std::uint64_t cursorAtKey(CoreId core, std::uint64_t cursor,
                              std::uint64_t base_cum_a, Cycle base_ready,
                              Cycle key_ready, bool strict);

    /**
     * Rebuild exact private-hierarchy state as of record @p idx into
     * @p hier: restore the newest virgin-hierarchy image at or before
     * @p idx and replay the intervening records.  Only valid for a
     * member core that has never diverged from the feed (its state is
     * bit-identical to the virgin hierarchy's at every record index).
     */
    void materializeHier(CoreId core, std::uint64_t idx,
                         PrivateHierarchy &hier) const;

    /** Drop records below index @p min_idx (every member is past them),
     *  along with stream snapshots no checkpoint can need any more. */
    void trim(CoreId core, std::uint64_t min_idx);

    /** Label of @p core's underlying stream. */
    const char *label(CoreId core) const
    {
        return labels[core].c_str();
    }

    /** Number of per-core streams the factory produced. */
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(per.size());
    }

    /**
     * Serialize @p core's underlying stream exactly as it stood before
     * record @p idx was generated: rebuild a fresh stream, restore the
     * nearest chunk-boundary snapshot at or before @p idx and advance
     * the difference.  Called by ReplayStream::save() so member
     * checkpoints carry true stream state.
     */
    void saveStreamAt(CoreId core, std::uint64_t idx, Serializer &s) const;

    /** Records generated so far for @p core (tests/diagnostics).  In
     *  replay mode this starts at the blob's record count. */
    std::uint64_t generatedCount(CoreId core) const
    {
        return per[core].generated;
    }

    /** Replaying from a feed-cache blob? */
    bool warm() const { return blob != nullptr; }

    /** Retaining everything for a FeedCache::store()? */
    bool capturing() const { return capture; }

    /** Blob records available to @p core without any simulation. */
    std::uint64_t warmCount(CoreId core) const
    {
        return per[core].flatCount;
    }

  private:
    friend class FeedCache; // store() serializes the captured window
    /** Stream-state image taken at a chunk boundary. */
    struct StreamSnap
    {
        std::uint64_t idx = 0;           //!< first record it precedes
        std::vector<std::uint8_t> image; //!< Serializer::image() bytes
    };

    /** Virgin-hierarchy image taken at a chunk boundary (anchors
     *  express-lane state materialization, see materializeHier()). */
    struct HierSnap
    {
        std::uint64_t idx = 0;           //!< first record it precedes
        std::vector<std::uint8_t> image; //!< Serializer::image() bytes
    };

    struct PerCore
    {
        std::uint64_t base = 0;      //!< oldest ring-resident index
        std::uint64_t generated = 0; //!< next index to generate
        /** Replay mode: zero-copy views into the mapped blob's arrays.
         *  Records [0, flatCount) live here permanently (never
         *  trimmed); the ring only ever holds indices >= flatCount,
         *  generated live past the blob's horizon. */
        const StepRecord *flat = nullptr;
        const std::uint64_t *flatA = nullptr;
        const std::uint64_t *flatI = nullptr;
        const std::uint64_t *flatLlc = nullptr;
        std::uint64_t flatCount = 0;
        std::uint64_t flatLlcCount = 0;
        /** Live record window as a power-of-2 ring: record @c i lives at
         *  slot <tt>i & (ring.size()-1)</tt>, so the members' hot-path
         *  fetch is one masked load with no deque block chasing.  Grown
         *  (doubled, slots remapped) when the window outruns it. */
        std::vector<StepRecord> ring;
        //! Inclusive prefix sums parallel to `ring` (same slot mapping):
        //! cumA = private-side cycles, cumI = retirement counts.
        std::vector<std::uint64_t> cumA;
        std::vector<std::uint64_t> cumI;
        std::uint64_t aTotal = 0; //!< running total feeding cumA
        std::uint64_t iTotal = 0; //!< running total feeding cumI
        //! Absolute indices of LLC-bound records in the live window.
        std::deque<std::uint64_t> llcIdx;
        std::deque<StreamSnap> snaps;
        std::deque<HierSnap> hsnaps;
    };

    /** Generate whole chunks until @p idx exists. */
    void extend(CoreId core, std::uint64_t idx);

    /**
     * Replay mode only: a member consumed past the blob's horizon, so
     * rebuild live front-end state for @p core — fresh streams from the
     * factory, the stream restored from the blob's newest snapshot and
     * advanced, and the virgin hierarchy re-materialized by record
     * replay — then generation continues exactly as a cold run would.
     */
    void goLive(CoreId core);

    /** Prefix sum through @p idx, flat or ring. */
    std::uint64_t cumAt(const PerCore &pc, std::uint64_t idx) const
    {
        return idx < pc.flatCount
                   ? pc.flatA[idx]
                   : pc.cumA[idx & (pc.ring.size() - 1)];
    }

    /** Record @p idx, flat or ring (must already exist). */
    const StepRecord &recAt(const PerCore &pc, std::uint64_t idx) const
    {
        return idx < pc.flatCount
                   ? pc.flat[idx]
                   : pc.ring[idx & (pc.ring.size() - 1)];
    }

    /** Canonical pre-step ready time of record @p j for a core at
     *  (@p cursor, @p base_ready, @p base_cum_a); j >= cursor and
     *  [cursor, j) all private-complete. */
    Cycle preReadyOf(const PerCore &pc, std::uint64_t cursor,
                     std::uint64_t base_cum_a, Cycle base_ready,
                     std::uint64_t j) const
    {
        return j == cursor
                   ? base_ready
                   : base_ready + (cumAt(pc, j - 1) - base_cum_a);
    }

    /** First index in [cursor, limit] whose pre-step ready time passes
     *  @p bound (`>` when strict, else `>=`). */
    std::uint64_t firstAtOrPast(const PerCore &pc, std::uint64_t cursor,
                                std::uint64_t base_cum_a,
                                Cycle base_ready, std::uint64_t limit,
                                Cycle bound, bool strict) const;

    /** Double @p pc's ring and remap the live window into it. */
    static void growRing(PerCore &pc);

    /** Records per generation chunk (and snapshot cadence). */
    static constexpr std::uint64_t kChunk = 4096;

    /** Initial ring capacity (slots; must be a power of two). */
    static constexpr std::size_t kInitialRing = 8192;

    PrivateConfig privCfg;
    StreamFactory factory;
    std::vector<std::unique_ptr<RefStream>> streams;
    std::vector<std::unique_ptr<PrivateHierarchy>> virgin;
    std::vector<std::string> labels;
    std::vector<PerCore> per;
    //! Replay source; owning it keeps the mapping alive for the flat
    //! pointers above.
    std::shared_ptr<const FeedBlob> blob;
    bool capture = false;
};

/**
 * Stand-in RefStream a fan-out member core is constructed with.  The
 * member's run loop reads StepRecords straight from the feed (never
 * next()); the stream exists so checkpoints of member systems carry the
 * same per-core stream sections as independent runs.  The consumption
 * cursor lives here so Cmp::save() can serialize stream state at the
 * exact reference boundary the member has reached.
 */
class ReplayStream final : public RefStream
{
  public:
    ReplayStream(FanoutFeed &feed_, CoreId core_)
        : feed(feed_), coreId(core_)
    {
    }

    /** Never called in fan-out mode; reaching it is a driver bug. */
    MemRef next() override;

    const char *label() const override { return feed.label(coreId); }

    /** Serialize the underlying stream as of this member's cursor. */
    void save(Serializer &s) const override
    {
        feed.saveStreamAt(coreId, cursor, s);
    }

    /** Members are never restored into; resume runs independently. */
    void restore(Deserializer &d) override;

    /** Core this stream stands in for. */
    CoreId core() const { return coreId; }

    /** Next record index to consume (owned by the member's run loop). */
    std::uint64_t cursor = 0;

  private:
    FanoutFeed &feed;
    CoreId coreId;
};

/**
 * One front-end pass fanned out to N SLLC back ends in lockstep.
 *
 * Every member is a complete Cmp (private hierarchies, crossbar, SLLC,
 * DRAM, stats, hooks) attached to the shared feed; run() interleaves
 * the members in bounded cycle quanta so the feed's record window stays
 * small.  Stats, checkpoints and telemetry of each member are
 * bit-identical to an independent Cmp run of the same config.
 */
class FanoutCmp
{
  public:
    /**
     * @param configs one SystemConfig per member; all must agree on the
     *        front-end prefix (samePrivatePrefix()) and have
     *        prefetching disabled.
     * @param factory builds the shared per-core streams.
     * @param blob feed-cache blob to replay the front end from (warm
     *        hit); nullptr simulates the front end as usual.
     * @param capture retain the front end's full record window so the
     *        caller can FeedCache::store() it after the run.
     */
    FanoutCmp(const std::vector<SystemConfig> &configs,
              StreamFactory factory,
              std::shared_ptr<const FeedBlob> blob = nullptr,
              bool capture = false);

    /**
     * Do @p a and @p b share the front-end-invariant config prefix
     * (cores, private hierarchy, prefetch, seed, capacity scale)?  The
     * harness groups runs by this predicate (plus the mix) to decide
     * what can share one fan-out pass.
     */
    static bool samePrivatePrefix(const SystemConfig &a,
                                  const SystemConfig &b);

    /** Number of members. */
    std::size_t size() const { return members.size(); }

    /** Member @p i, for hook installation and result collection. */
    Cmp &member(std::size_t i) { return *members[i]; }

    /** Member @p i, const. */
    const Cmp &member(std::size_t i) const { return *members[i]; }

    /** The shared feed (tests/diagnostics). */
    FanoutFeed &sharedFeed() { return *feed; }

    /** Advance every member by @p cycles, interleaved in quanta. */
    void run(Cycle cycles);

    /** beginMeasurement() on every member. */
    void beginMeasurement();

    /** Common simulated horizon of the members. */
    Cycle now() const { return members.front()->now(); }

  private:
    /** Lockstep quantum: members drift at most this many cycles apart,
     *  bounding the feed's live record window.  Larger quanta amortize
     *  member switches (each member's private metadata stays hot for
     *  the whole slice) at the price of a wider record window. */
    static constexpr Cycle kQuantum = 262144;

    std::unique_ptr<FanoutFeed> feed;
    std::vector<std::unique_ptr<Cmp>> members;
    //! [member][core] cursor views (borrowed from the member's streams).
    std::vector<std::vector<ReplayStream *>> cursors;
};

} // namespace rc

#endif // RC_SIM_FANOUT_HH
