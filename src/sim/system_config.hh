/**
 * @file
 * Whole-system configuration: Table 4 of the paper, plus the SLLC
 * organization selector and the capacity-scaling knob used to keep
 * laptop-scale runs fast.
 */

#ifndef RC_SIM_SYSTEM_CONFIG_HH
#define RC_SIM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/conventional_llc.hh"
#include "cache/prefetcher.hh"
#include "cache/private_cache.hh"
#include "mem/memctrl.hh"
#include "ncid/ncid_cache.hh"
#include "reuse/reuse_cache.hh"

namespace rc
{

/** Which SLLC organization the system instantiates. */
enum class LlcKind : std::uint8_t {
    Conventional,
    Reuse,
    Ncid,
};

/** Crossbar / SLLC banking parameters (Table 4: 4 banks, 16 MSHRs). */
struct CrossbarConfig
{
    std::uint32_t numBanks = 4;
    Cycle linkLatency = 4;      //!< core cluster <-> bank, each way
    Cycle bankOccupancy = 2;    //!< bank port busy time per access
    std::uint32_t mshrPerBank = 16;
};

/**
 * Full system description.  All capacities are PAPER-scale; divide() is
 * applied by the presets to produce the simulated (scaled) sizes while
 * the labels keep paper-equivalent names.
 */
struct SystemConfig
{
    std::uint32_t numCores = 8;

    PrivateConfig priv;        //!< 32 KB L1 I/D, 256 KB L2 (paper scale)
    PrefetcherConfig prefetch; //!< per-core L2 stride prefetcher (off by
                               //!< default; the paper evaluates without
                               //!< prefetching)
    CrossbarConfig xbar;
    MemCtrlConfig memory;      //!< 1 DDR3 channel

    LlcKind llcKind = LlcKind::Conventional;
    ConvLlcConfig conv;        //!< used when llcKind == Conventional
    ReuseCacheConfig reuse;    //!< used when llcKind == Reuse
    NcidConfig ncid;           //!< used when llcKind == Ncid

    std::uint64_t seed = 1;

    /**
     * Capacity divisor applied by the presets to every cache size (and,
     * by convention, to workload working sets).  1 reproduces the paper's
     * exact sizes; the default experiments use 8.
     */
    std::uint32_t capacityScale = 8;

    /** Scale a paper-scale byte capacity. */
    std::uint64_t
    scaled(std::uint64_t paper_bytes) const
    {
        return paper_bytes / capacityScale;
    }
};

/**
 * The paper's baseline (Table 4): conventional 8 MB 16-way LRU SLLC,
 * scaled by @p scale.
 */
SystemConfig baselineSystem(std::uint32_t scale = 8);

/**
 * A reuse-cache system RC-<tag_mbeq>/<data_mb> (paper-scale MB values),
 * scaled by @p scale.
 * @param data_ways data-array associativity; 0 = fully associative.
 */
SystemConfig reuseSystem(double tag_mbeq, double data_mb,
                         std::uint32_t data_ways = 0,
                         std::uint32_t scale = 8);

/**
 * A conventional system with the given capacity and replacement policy
 * (for the DRRIP/NRR comparisons of Section 5.5).
 */
SystemConfig conventionalSystem(double mb, ReplKind repl,
                                std::uint32_t scale = 8);

/** An NCID system with <tag_mbeq> tags and <data_mb> data (Section 5.5). */
SystemConfig ncidSystem(double tag_mbeq, double data_mb,
                        std::uint32_t scale = 8);

} // namespace rc

#endif // RC_SIM_SYSTEM_CONFIG_HH
