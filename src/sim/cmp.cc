#include "sim/cmp.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

namespace
{

std::unique_ptr<Sllc>
makeLlc(const SystemConfig &cfg, MemCtrl &mem)
{
    switch (cfg.llcKind) {
      case LlcKind::Conventional:
        return std::make_unique<ConventionalLlc>(cfg.conv, mem);
      case LlcKind::Reuse:
        return std::make_unique<ReuseCache>(cfg.reuse, mem);
      case LlcKind::Ncid:
        return std::make_unique<NcidCache>(cfg.ncid, mem);
    }
    panic("unknown LLC kind");
}

} // namespace

Cmp::Cmp(const SystemConfig &cfg_,
         std::vector<std::unique_ptr<RefStream>> streams)
    : cfg(cfg_),
      ownedStreams(std::move(streams)),
      mem(cfg_.memory),
      xbar(cfg_.xbar),
      llcPtr(makeLlc(cfg_, mem))
{
    RC_ASSERT(ownedStreams.size() == cfg.numCores,
              "need exactly one stream per core (%u cores, %zu streams)",
              cfg.numCores, ownedStreams.size());
    cores.reserve(cfg.numCores);
    for (CoreId i = 0; i < cfg.numCores; ++i)
        cores.push_back(std::make_unique<Core>(i, cfg.priv,
                                               *ownedStreams[i]));
    llcPtr->setRecallHandler(this);

    if (cfg.prefetch.enable) {
        for (CoreId i = 0; i < cfg.numCores; ++i)
            prefetchers.push_back(std::make_unique<StridePrefetcher>(
                cfg.prefetch, "pf" + std::to_string(i)));
    }

    snapInstr.assign(cfg.numCores, 0);
    snapL1Miss.assign(cfg.numCores, 0);
    snapL2Miss.assign(cfg.numCores, 0);
    snapLlcMiss.assign(cfg.numCores, 0);
}

Cmp::~Cmp() = default;

void
Cmp::issuePrefetches(Core &core, Addr demand_line, Cycle when)
{
    StridePrefetcher &pf = *prefetchers[core.id()];
    prefetchScratch.clear();
    pf.observeMiss(demand_line, prefetchScratch);
    for (Addr cand : prefetchScratch) {
        if (core.priv().present(cand))
            continue;
        // Prefetches ride off the critical path: they consume bank and
        // memory occupancy but never stall the core.
        const Cycle start = xbar.requestSlot(cand, when);
        LlcRequest req{cand, core.id(), ProtoEvent::GETS, start};
        req.prefetch = true;
        const LlcResponse resp = llcPtr->request(req);
        if (resp.memFetched)
            xbar.noteMiss(cand, start, resp.doneAt);
        Addr evict_line = 0;
        bool evict_dirty = false;
        if (core.priv().fillPrefetch(cand, evict_line, evict_dirty)) {
            llcPtr->evictNotify(evict_line, core.id(), evict_dirty,
                                resp.doneAt);
        }
        ++prefetchIssued;
        RC_TEVENT("cmp.prefetch", TraceDomain::Sim, core.id(), start, 0,
                  cand);
    }
}

void
Cmp::stepCore(Core &core)
{
    const MemRef ref = core.nextRef();
    const Cycle issue = core.readyAt() + ref.think;
    const Addr line = lineAlign(ref.addr);

    const PrivateMissAction act =
        core.priv().classify(line, ref.op, ref.isInstr);

    Cycle done;
    if (!act.needLlc) {
        done = issue + act.latency;
    } else {
        const Cycle llc_issue = issue + act.latency;
        const Cycle bank_start = xbar.requestSlot(line, llc_issue);
        const LlcResponse resp = llcPtr->request(
            LlcRequest{line, core.id(), act.event, bank_start});
        if (resp.memFetched)
            xbar.noteMiss(line, bank_start, resp.doneAt);
        const Cycle returned = resp.doneAt + xbar.responseLatency();

        if (act.event == ProtoEvent::UPG) {
            core.priv().upgraded(line);
        } else {
            Addr evict_line = 0;
            bool evict_dirty = false;
            const bool writable = act.event == ProtoEvent::GETX;
            if (core.priv().fill(line, ref.isInstr, writable,
                                 evict_line, evict_dirty)) {
                llcPtr->evictNotify(evict_line, core.id(), evict_dirty,
                                    returned);
            }
        }
        done = returned;
        if (!prefetchers.empty() && !ref.isInstr &&
            act.event != ProtoEvent::UPG) {
            issuePrefetches(core, line, returned);
        }
    }

    core.retire(ref.think + (ref.isInstr ? 0 : 1));
    core.setReadyAt(done);
}

void
Cmp::run(Cycle cycles)
{
    const Cycle end = horizon + cycles;
    if (cores.empty()) {
        horizon = end;
        return;
    }

    // Flat mirror of each core's ready time: the per-reference min-scan
    // walks one contiguous array instead of chasing a unique_ptr per
    // core.  Rebuilt on entry (restore() may have moved the cores) and
    // maintained after every step; stepCore only ever changes the
    // stepped core's ready time.
    const std::uint32_t n = static_cast<std::uint32_t>(cores.size());
    readyCache.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        readyCache[i] = cores[i]->readyAt();

    // Hook-free fast path: identical scheduling (first core carrying
    // the strictly smallest ready time wins), none of the per-reference
    // hook/abort/progress checks.
    if (sampleEvery == 0 && checkEvery == 0 && snapEvery == 0 &&
        !abortPtr && !progressPtr) {
        const Cycle *rc_begin = readyCache.data();
        for (;;) {
            std::uint32_t idx = 0;
            Cycle best = rc_begin[0];
            for (std::uint32_t i = 1; i < n; ++i) {
                if (rc_begin[i] < best) {
                    best = rc_begin[i];
                    idx = i;
                }
            }
            if (best >= end)
                break;
            stepCore(*cores[idx]);
            ++refsProcessed;
            readyCache[idx] = cores[idx]->readyAt();
        }
        horizon = end;
        return;
    }

    for (;;) {
        std::uint32_t idx = 0;
        Cycle best = readyCache[0];
        for (std::uint32_t i = 1; i < n; ++i) {
            if (readyCache[i] < best) {
                best = readyCache[i];
                idx = i;
            }
        }
        if (best >= end)
            break;
        if (abortPtr && abortPtr->load(std::memory_order_relaxed)) {
            if (onAbort)
                onAbort(*this);
            throwSimError(SimError::Kind::Hang,
                          "watchdog abort: run made no forward progress "
                          "(aborted after %llu references)",
                          static_cast<unsigned long long>(refsProcessed));
        }
        // Fire every epoch boundary at or before the reference about to
        // be processed, so samples observe the quiescent pre-reference
        // state of their epoch even when a long stall skips several
        // boundaries at once.
        if (sampleEvery != 0) {
            while (sampleNext <= best) {
                sampleHook(*this, sampleNext);
                sampleNext += sampleEvery;
            }
        }
        Core &next = *cores[idx];
        stepCore(next);
        ++refsProcessed;
        readyCache[idx] = next.readyAt();
        if (progressPtr)
            progressPtr->store(refsProcessed, std::memory_order_relaxed);
        if (checkEvery != 0 && refsProcessed % checkEvery == 0)
            checkHook(*this, next.readyAt());
        if (snapEvery != 0 && refsProcessed % snapEvery == 0)
            snapHook(*this, next.readyAt());
    }
    horizon = end;
}

void
Cmp::setCheckHook(std::uint64_t every_n_refs,
                  std::function<void(const Cmp &, Cycle)> hook)
{
    checkEvery = hook ? every_n_refs : 0;
    checkHook = std::move(hook);
}

void
Cmp::setSnapshotHook(std::uint64_t every_n_refs,
                     std::function<void(const Cmp &, Cycle)> hook)
{
    snapEvery = hook ? every_n_refs : 0;
    snapHook = std::move(hook);
}

void
Cmp::setSampleHook(Cycle every_cycles,
                   std::function<void(const Cmp &, Cycle)> hook)
{
    sampleEvery = hook ? every_cycles : 0;
    sampleHook = std::move(hook);
    if (sampleEvery == 0) {
        sampleNext = 0;
        return;
    }
    // A restored checkpoint carries the next boundary; only a fresh
    // system (or a cadence change that left the boundary behind the
    // horizon) computes it from scratch.
    if (sampleNext <= horizon)
        sampleNext = (horizon / sampleEvery + 1) * sampleEvery;
}

void
Cmp::setProgressCounter(std::atomic<std::uint64_t> *counter)
{
    progressPtr = counter;
}

void
Cmp::setAbortFlag(const std::atomic<bool> *flag,
                  std::function<void(const Cmp &)> on_abort)
{
    abortPtr = flag;
    onAbort = std::move(on_abort);
}

void
Cmp::save(Serializer &s) const
{
    s.beginSection("cmp");

    // Construction parameters: restore() validates these against its
    // own config instead of restoring them, so a checkpoint can never
    // be replayed into a differently-shaped system.
    s.beginSection("meta");
    s.putU32(cfg.numCores);
    s.putU8(static_cast<std::uint8_t>(cfg.llcKind));
    s.putU64(cfg.seed);
    s.putU32(cfg.capacityScale);
    s.putBool(cfg.prefetch.enable);
    s.endSection();

    s.beginSection("clock");
    s.putU64(horizon);
    s.putU64(refsProcessed);
    s.putU64(prefetchIssued);
    s.putU64(sampleNext);
    s.putU64(snapCycle);
    saveVec(s, snapInstr);
    saveVec(s, snapL1Miss);
    saveVec(s, snapL2Miss);
    saveVec(s, snapLlcMiss);
    s.endSection();

    s.beginSection("streams");
    for (const auto &stream : ownedStreams) {
        s.beginSection("stream");
        stream->save(s);
        s.endSection();
    }
    s.endSection();

    s.beginSection("cores");
    for (const auto &core : cores) {
        s.beginSection("core");
        core->save(s);
        s.endSection();
    }
    s.endSection();

    s.beginSection("llc");
    llcPtr->save(s);
    s.endSection();

    s.beginSection("mem");
    mem.save(s);
    s.endSection();

    s.beginSection("xbar");
    xbar.save(s);
    s.endSection();

    s.beginSection("prefetchers");
    s.putU64(prefetchers.size());
    for (const auto &pf : prefetchers)
        pf->save(s);
    s.endSection();

    s.endSection();
}

void
Cmp::restore(Deserializer &d)
{
    d.beginSection("cmp");

    d.beginSection("meta");
    const std::uint32_t ckCores = d.getU32();
    const auto ckKind = static_cast<LlcKind>(d.getU8());
    const std::uint64_t ckSeed = d.getU64();
    const std::uint32_t ckScale = d.getU32();
    const bool ckPrefetch = d.getBool();
    if (ckCores != cfg.numCores || ckKind != cfg.llcKind ||
        ckSeed != cfg.seed || ckScale != cfg.capacityScale ||
        ckPrefetch != cfg.prefetch.enable)
        throwSimError(SimError::Kind::Snapshot,
                      "checkpoint was taken under a different system "
                      "configuration (%u cores, llcKind %u, seed %llu, "
                      "scale %u, prefetch %d; this system: %u/%u/%llu/%u/%d)",
                      ckCores, static_cast<unsigned>(ckKind),
                      static_cast<unsigned long long>(ckSeed), ckScale,
                      ckPrefetch, cfg.numCores,
                      static_cast<unsigned>(cfg.llcKind),
                      static_cast<unsigned long long>(cfg.seed),
                      cfg.capacityScale, cfg.prefetch.enable);
    d.endSection();

    d.beginSection("clock");
    horizon = d.getU64();
    refsProcessed = d.getU64();
    prefetchIssued = d.getU64();
    sampleNext = d.getU64();
    snapCycle = d.getU64();
    restoreVec(d, snapInstr, "instruction snapshots");
    restoreVec(d, snapL1Miss, "L1-miss snapshots");
    restoreVec(d, snapL2Miss, "L2-miss snapshots");
    restoreVec(d, snapLlcMiss, "LLC-miss snapshots");
    d.endSection();

    d.beginSection("streams");
    for (const auto &stream : ownedStreams) {
        d.beginSection("stream");
        stream->restore(d);
        d.endSection();
    }
    d.endSection();

    d.beginSection("cores");
    for (const auto &core : cores) {
        d.beginSection("core");
        core->restore(d);
        d.endSection();
    }
    d.endSection();

    d.beginSection("llc");
    llcPtr->restore(d);
    d.endSection();

    d.beginSection("mem");
    mem.restore(d);
    d.endSection();

    d.beginSection("xbar");
    xbar.restore(d);
    d.endSection();

    d.beginSection("prefetchers");
    const std::uint64_t pfCount = d.getU64();
    if (pfCount != prefetchers.size())
        throwSimError(SimError::Kind::Snapshot,
                      "checkpoint carries %llu prefetcher(s), this system "
                      "has %zu", static_cast<unsigned long long>(pfCount),
                      prefetchers.size());
    for (const auto &pf : prefetchers)
        pf->restore(d);
    d.endSection();

    d.endSection();
}

Cycle
Cmp::maxCoreReadyAt() const
{
    Cycle latest = 0;
    for (const auto &c : cores)
        latest = std::max(latest, c->readyAt());
    return latest;
}

void
Cmp::beginMeasurement()
{
    snapCycle = horizon;
    for (CoreId i = 0; i < cores.size(); ++i) {
        snapInstr[i] = cores[i]->instructions();
        snapL1Miss[i] = cores[i]->priv().l1MissTotal();
        snapL2Miss[i] = cores[i]->priv().l2MissTotal();
        snapLlcMiss[i] = llcPtr->missesBy(i);
    }
}

std::uint64_t
Cmp::measuredInstructions(CoreId core) const
{
    return cores[core]->instructions() - snapInstr[core];
}

double
Cmp::ipc(CoreId core) const
{
    // The zero-measurement-window guard lives here (and only here):
    // aggregateIpc() and every harness consumer funnel through ipc(),
    // so callers never need their own window check.
    const Cycle c = measuredCycles();
    return c ? static_cast<double>(measuredInstructions(core)) /
                   static_cast<double>(c)
             : 0.0;
}

double
Cmp::aggregateIpc() const
{
    double sum = 0.0;
    for (CoreId i = 0; i < cores.size(); ++i)
        sum += ipc(i);
    return sum;
}

MpkiTriple
Cmp::measuredMpki(CoreId core) const
{
    MpkiTriple t;
    const double ki =
        static_cast<double>(measuredInstructions(core)) / 1000.0;
    if (ki <= 0.0)
        return t;
    t.l1 = static_cast<double>(cores[core]->priv().l1MissTotal() -
                               snapL1Miss[core]) / ki;
    t.l2 = static_cast<double>(cores[core]->priv().l2MissTotal() -
                               snapL2Miss[core]) / ki;
    t.llc = static_cast<double>(llcPtr->missesBy(core) -
                                snapLlcMiss[core]) / ki;
    return t;
}

bool
Cmp::recall(Addr line_addr, std::uint32_t core_mask)
{
    bool dirty = false;
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (core_mask & (1u << c))
            dirty |= cores[c]->priv().invalidate(line_addr);
    }
    return dirty;
}

bool
Cmp::downgrade(Addr line_addr, std::uint32_t core_mask)
{
    bool dirty = false;
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (core_mask & (1u << c))
            dirty |= cores[c]->priv().downgrade(line_addr);
    }
    return dirty;
}

} // namespace rc
